GO ?= go

.PHONY: check fmt-check lint lint-json build vet test race bench-smoke bench bench-baseline bench-baseline-delta bench-baseline-wg bench-baseline-closure bench-baseline-interp bench-gate

# The fast CI gate: formatting, build, vet, tests, kernel lint, benchmark
# smoke. The race-detector suite is deliberately NOT in here — it reruns
# every experiment and takes many minutes, so CI runs `make race` as a
# separate parallel job instead of serializing it behind these fast gates.
# Run `make check race` locally for the full gate.
check: fmt-check build vet test lint lint-json bench-smoke

fmt-check:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt: needs formatting:"; echo "$$files"; exit 1; fi

# Static kernel lint: built-in Polybench + merge kernels and on-disk .cl files.
lint:
	$(GO) run ./cmd/fluidilint -builtin $(wildcard examples/*/*.cl)

# The same sources through the machine-readable reporter: -json exits
# non-zero on any diagnostic (including the strided out-of-bounds lint), so
# CI fails on new findings; the JSON schema itself is pinned by Go tests.
lint-json:
	$(GO) run ./cmd/fluidilint -json -builtin $(wildcard examples/*/*.cl) >/dev/null

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Longer timeout: the harness package re-runs every experiment and can
# exceed go test's 600s per-package default on slow machines. Keep this in
# sync with `race` below.
test:
	$(GO) test -timeout 1800s ./...

# Longer timeout: the harness package re-runs every experiment and is far
# slower under the race detector than go test's 600s default allows.
race:
	$(GO) test -race -timeout 1800s ./...

# One iteration of the headline benchmark, as a does-it-still-run smoke.
bench-smoke:
	$(GO) test -bench 'BenchmarkOverall' -benchtime=1x -run '^$$' .

bench:
	$(GO) test -bench . -benchmem -benchtime=3x -run '^$$' .

# Regenerate the BENCH_05.json wall-clock baseline (quick scale, wg backend
# with region fusion on — its default — which is what the bench gate now
# tracks; sparse -jsonout format, zero counters omitted). BENCH_01.json
# (interpreter era), BENCH_02.json (closure era), BENCH_03.json (wg era,
# pre-planner) and BENCH_04.json (delta-refresh era, pre-fusion) are the
# historical baselines each successive engine was measured against;
# regenerate them with the variants below on intentional changes to those
# engines.
bench-baseline:
	$(GO) run ./cmd/fluidibench -quick -backend=wg -jsonout BENCH_05.json all >/dev/null
	@cat BENCH_05.json

bench-baseline-delta:
	$(GO) run ./cmd/fluidibench -quick -backend=wg -wgfuse off -jsonout BENCH_04.json all >/dev/null
	@cat BENCH_04.json

bench-baseline-wg:
	$(GO) run ./cmd/fluidibench -quick -backend=wg -jsonout BENCH_03.json all >/dev/null
	@cat BENCH_03.json

bench-baseline-closure:
	$(GO) run ./cmd/fluidibench -quick -backend=closure -jsonout BENCH_02.json all >/dev/null
	@cat BENCH_02.json

bench-baseline-interp:
	$(GO) run ./cmd/fluidibench -quick -backend=interp -jsonout BENCH_01.json all >/dev/null
	@cat BENCH_01.json

# Compare a fresh quick-scale wg-backend run against the committed
# BENCH_04.json wall clock baseline; fails on regression past tolerance
# (BENCH_GATE_TOL_PCT, default 25%). Non-blocking in CI — wall clock is
# noisy.
bench-gate:
	./scripts/bench_gate.sh
