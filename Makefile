GO ?= go

.PHONY: check fmt-check lint build vet test race bench-smoke bench bench-baseline

# The full CI gate: formatting, build, vet, race-clean tests, kernel lint,
# benchmark smoke.
check: fmt-check build vet race lint bench-smoke

fmt-check:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt: needs formatting:"; echo "$$files"; exit 1; fi

# Static kernel lint: built-in Polybench + merge kernels and on-disk .cl files.
lint:
	$(GO) run ./cmd/fluidilint -builtin examples/quickstart/kernel.cl

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Longer timeout: the harness package re-runs every experiment and is far
# slower under the race detector than go test's 600s default allows.
race:
	$(GO) test -race -timeout 1800s ./...

# One iteration of the headline benchmark, as a does-it-still-run smoke.
bench-smoke:
	$(GO) test -bench 'BenchmarkOverall' -benchtime=1x -run '^$$' .

bench:
	$(GO) test -bench . -benchmem -benchtime=3x -run '^$$' .

# Regenerate the BENCH_01.json wall-clock baseline (quick scale).
bench-baseline:
	$(GO) run ./cmd/fluidibench -quick -jsonout BENCH_01.json all >/dev/null
	@cat BENCH_01.json
