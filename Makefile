GO ?= go

.PHONY: check build vet test race bench-smoke bench bench-baseline

# The full CI gate: build, vet, race-clean tests, benchmark smoke.
check: build vet race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the headline benchmark, as a does-it-still-run smoke.
bench-smoke:
	$(GO) test -bench 'BenchmarkOverall' -benchtime=1x -run '^$$' .

bench:
	$(GO) test -bench . -benchmem -benchtime=3x -run '^$$' .

# Regenerate the BENCH_01.json wall-clock baseline (quick scale).
bench-baseline:
	$(GO) run ./cmd/fluidibench -quick -jsonout BENCH_01.json all >/dev/null
	@cat BENCH_01.json
