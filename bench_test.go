// Benchmarks: one per table and figure of the paper (run at reduced "quick"
// scale so each iteration stays fast; `fluidibench all` regenerates the
// full-scale artifacts), plus micro-benchmarks of the substrate (front end,
// bytecode VM, simulation engine).
//
//	go test -bench=. -benchmem
package main

import (
	"fmt"
	"strconv"
	"testing"

	"fluidicl/internal/clc"
	"fluidicl/internal/core"
	"fluidicl/internal/device"
	"fluidicl/internal/harness"
	"fluidicl/internal/polybench"
	"fluidicl/internal/sched"
	"fluidicl/internal/sim"
	"fluidicl/internal/vm"
)

// benchExperiment runs one harness experiment per iteration and reports a
// headline cell as a custom metric.
func benchExperiment(b *testing.B, id string, metric func(*harness.Table) (string, float64)) {
	b.Helper()
	r := harness.NewRunner()
	r.Quick = true
	var last *harness.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := r.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.StopTimer()
	if metric != nil && last != nil {
		name, v := metric(last)
		b.ReportMetric(v, name)
	}
}

func cell(t *harness.Table, row, col int) float64 {
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		return 0
	}
	return v
}

// ---- Figure 2: static allocation curves (2MM, SYRK) ----

func BenchmarkFig2StaticSplit(b *testing.B) {
	benchExperiment(b, "fig2", func(t *harness.Table) (string, float64) {
		// SYRK at 100% GPU relative to its best split: > 1 means a mixed
		// split wins, the figure's point.
		return "syrk_100pct_vs_best", cell(t, len(t.Rows)-1, 2)
	})
}

// ---- Figure 3: SYRK input-size-dependent best split ----

func BenchmarkFig3SyrkInputs(b *testing.B) {
	benchExperiment(b, "fig3", nil)
}

// ---- Table 1: BICG per-kernel device preference ----

func BenchmarkTable1BicgKernels(b *testing.B) {
	benchExperiment(b, "table1", nil)
}

// ---- Table 2: benchmark inventory ----

func BenchmarkTable2Inventory(b *testing.B) {
	benchExperiment(b, "table2", nil)
}

// ---- §9.1 overall figure ----

func BenchmarkOverallPerformance(b *testing.B) {
	benchExperiment(b, "fig13", func(t *harness.Table) (string, float64) {
		return "fluidicl_geomean_vs_best", cell(t, len(t.Rows)-1, 3)
	})
}

// ---- Figure 14 (§9.2): SYRK input sweep ----

func BenchmarkFig14SyrkSweep(b *testing.B) {
	benchExperiment(b, "fig14", func(t *harness.Table) (string, float64) {
		return "fluidicl_geomean_vs_best", cell(t, len(t.Rows)-1, 3)
	})
}

// ---- Figure 15 (§9.3): optimization ablation ----

func BenchmarkFig15Optimizations(b *testing.B) {
	benchExperiment(b, "fig15", func(t *harness.Table) (string, float64) {
		return "nounroll_geomean_slowdown", cell(t, len(t.Rows)-1, 2)
	})
}

// ---- Table 3 (§9.3): online profiling ----

func BenchmarkTable3OnlineProfiling(b *testing.B) {
	benchExperiment(b, "table3", nil)
}

// ---- Figure 16 (§9.4): SOCL comparison ----

func BenchmarkFig16Socl(b *testing.B) {
	benchExperiment(b, "fig16", func(t *harness.Table) (string, float64) {
		return "eager_geomean_vs_best", cell(t, len(t.Rows)-1, 3)
	})
}

// ---- Figure 17 (§9.5): chunk-size sensitivity ----

func BenchmarkFig17ChunkSize(b *testing.B) {
	benchExperiment(b, "fig17", nil)
}

// ---- Figure 18 (§9.5): step-size sensitivity ----

func BenchmarkFig18StepSize(b *testing.B) {
	benchExperiment(b, "fig18", nil)
}

// ---- per-benchmark FluidiCL executions (full default sizes) ----

func BenchmarkFluidiCL(b *testing.B) {
	for _, name := range []string{"2MM", "BICG", "CORR", "GESUMMV", "SYRK", "SYR2K"} {
		name := name
		b.Run(name, func(b *testing.B) {
			m := sched.DefaultMachine()
			var virt sim.Time
			for i := 0; i < b.N; i++ {
				bench, err := polybench.ByName(name)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sched.RunFluidiCL(m, bench.App, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if err := bench.Verify(res.Outputs); err != nil {
					b.Fatal(err)
				}
				virt = res.Time
			}
			b.ReportMetric(virt*1e3, "virtual_ms")
		})
	}
}

// ---- substrate micro-benchmarks ----

func BenchmarkLexer(b *testing.B) {
	src := benchKernelSrc(64)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := clc.LexAll(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParser(b *testing.B) {
	src := benchKernelSrc(64)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := clc.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSemaAndCompile(b *testing.B) {
	src := benchKernelSrc(64)
	for i := 0; i < b.N; i++ {
		ki, err := clc.FindKernelInfo(src, "bench0")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := vm.Compile(ki); err != nil {
			b.Fatal(err)
		}
	}
}

// benchKernelSrc generates a translation unit with n kernels.
func benchKernelSrc(n int) string {
	src := ""
	for i := 0; i < n; i++ {
		src += fmt.Sprintf(`
__kernel void bench%d(__global float* a, __global float* out, int n) {
    int i = get_global_id(0);
    if (i < n) {
        float s = 0.0f;
        for (int k = 0; k < n; k++) {
            s += a[i * n + k] * 0.5f + (float)k;
        }
        out[i] = s;
    }
}
`, i)
	}
	return src
}

func BenchmarkVMThroughput(b *testing.B) {
	k := vm.MustCompile(`
__kernel void f(__global float* a, __global float* out, int n) {
    int i = get_global_id(0);
    float s = 0.0f;
    for (int k = 0; k < n; k++) {
        s += a[(i + k) % n] * 1.0001f;
    }
    out[i] = s;
}
`, "f")
	n := 256
	a := make([]byte, 4*n)
	out := make([]byte, 4*n)
	nd := vm.NewNDRange1D(n, 32)
	args := []vm.Arg{vm.BufArg(a), vm.BufArg(out), vm.IntArg(int64(n))}
	var st vm.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := k.ExecLaunch(nd, args, vm.ExecOpts{})
		if err != nil {
			b.Fatal(err)
		}
		st = s
	}
	b.StopTimer()
	ops := st.IntOps + st.FloatOps + st.Branches + st.GlobalLoads + st.GlobalStores
	b.ReportMetric(float64(ops), "vm_ops/iter")
}

func BenchmarkSimEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv()
		for p := 0; p < 16; p++ {
			env.Go("worker", func(pr *sim.Proc) {
				for s := 0; s < 100; s++ {
					pr.Sleep(1e-6)
				}
			})
		}
		env.Run()
	}
}

func BenchmarkDeviceLaunch(b *testing.B) {
	k := vm.MustCompile(`
__kernel void f(__global float* a) {
    int i = get_global_id(0);
    a[i] = (float)i;
}
`, "f")
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv()
		d := device.New(env, device.TeslaC2070())
		q := d.NewQueue("bench")
		buf := make([]byte, 4*1024)
		l := &device.Launch{Kernel: k, ND: vm.NewNDRange1D(1024, 64), Args: []vm.Arg{vm.BufArg(buf)}}
		q.Enqueue(l)
		env.Go("host", func(p *sim.Proc) { p.Wait(l.Done) })
		env.Run()
		if l.Result.Err != nil {
			b.Fatal(l.Result.Err)
		}
	}
}
