module fluidicl

go 1.22
