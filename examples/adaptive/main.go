// Adaptive: the paper's §9.2 demonstration — FluidiCL adapts to different
// input sizes of SYRK without any per-input tuning, while the best static
// partitioning shifts from size to size.
//
// For each input size the example sweeps static GPU/CPU splits (what a
// programmer would have to hand-tune) and runs FluidiCL once. FluidiCL's
// dynamic, fluid work movement tracks or beats the best static split at
// every size.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"

	"fluidicl/internal/core"
	"fluidicl/internal/polybench"
	"fluidicl/internal/sched"
)

func main() {
	m := sched.DefaultMachine()
	fmt.Println("SYRK across input sizes: best static split vs FluidiCL (no tuning)")
	fmt.Println()
	fmt.Printf("%-12s %-10s %-12s %-12s %-12s %-10s\n",
		"input", "CPU(ms)", "GPU(ms)", "best static", "FluidiCL(ms)", "vs best")
	for _, n := range []int{64, 96, 128, 160} {
		b := polybench.Syrk(n, n)
		cpu, err := sched.RunSingle(m.CPU, b.App)
		check(err)
		gpu, err := sched.RunSingle(m.GPU, b.App)
		check(err)
		or, err := sched.RunOracle(m, b.App)
		check(err)
		fcl, err := sched.RunFluidiCL(m, b.App, core.Options{})
		check(err)
		check(b.Verify(fcl.Outputs))
		best := cpu.Time
		if gpu.Time < best {
			best = gpu.Time
		}
		fmt.Printf("%-12s %-10.3f %-12.3f %3d%% GPU: %-5.3f %-11.3f %.2fx\n",
			b.InputDesc, cpu.Time*1e3, gpu.Time*1e3,
			or.BestPct, or.Best.Time*1e3, fcl.Time*1e3, best/fcl.Time)
	}
	fmt.Println()
	fmt.Println("note how the best static split changes with input size — the tuning")
	fmt.Println("burden FluidiCL removes (paper §3, Figure 3).")
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
