// Multikernel: the paper's BICG scenario (§3, Table 1) — an application
// whose two kernels each run faster on a different device.
//
// A single-device programmer must pick one device for the whole app (or
// hand-code transfers between per-kernel devices). FluidiCL runs each
// kernel cooperatively: the CPU naturally absorbs most of the row-walking
// kernel, the GPU most of the column-walking kernel, and buffer-version
// tracking keeps the shared matrix coherent across devices with no effort
// from the program.
//
//	go run ./examples/multikernel
package main

import (
	"fmt"

	"fluidicl/internal/core"
	"fluidicl/internal/polybench"
	"fluidicl/internal/sched"
)

func main() {
	m := sched.DefaultMachine()
	b := polybench.Bicg(768)

	cpu, err := sched.RunSingle(m.CPU, b.App)
	check(err)
	check(b.Verify(cpu.Outputs))
	gpu, err := sched.RunSingle(m.GPU, b.App)
	check(err)
	check(b.Verify(gpu.Outputs))

	fmt.Printf("BICG %s — per-kernel single-device times:\n", b.InputDesc)
	for i, l := range b.App.Launches {
		pref := "CPU"
		if gpu.LaunchTimes[i] < cpu.LaunchTimes[i] {
			pref = "GPU"
		}
		fmt.Printf("  %-12s  CPU %7.3f ms   GPU %7.3f ms   → prefers %s\n",
			l.Kernel, cpu.LaunchTimes[i]*1e3, gpu.LaunchTimes[i]*1e3, pref)
	}

	fcl, err := sched.RunFluidiCL(m, b.App, core.Options{})
	check(err)
	check(b.Verify(fcl.Outputs))

	fmt.Printf("\ntotal application time:\n")
	fmt.Printf("  CPU-only  %7.3f ms\n", cpu.Time*1e3)
	fmt.Printf("  GPU-only  %7.3f ms\n", gpu.Time*1e3)
	fmt.Printf("  FluidiCL  %7.3f ms  (%.2fx over the better single device)\n",
		fcl.Time*1e3, min(cpu.Time, gpu.Time)/fcl.Time)
	fmt.Println("\nhow FluidiCL split each kernel:")
	for _, rep := range fcl.Reports {
		note := ""
		if rep.CPUDidAll {
			note = " — CPU completed the entire NDRange first"
		}
		fmt.Printf("  %-12s  GPU executed %2d/%2d work-groups, CPU %2d (in %d subkernels)%s\n",
			rep.Name, rep.GPUExecuted, rep.TotalWGs, rep.CPUWGs, rep.Subkernels, note)
	}
	fmt.Println("\nall results verified against the reference implementation.")
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
