// Profiling: the paper's §6.6/Table 3 demonstration — given more than one
// functionally-identical implementation of a kernel, FluidiCL profiles them
// online on small subkernel allocations and picks the best for the
// remaining work. No offline calibration, no profiling runs.
//
// CORR's correlation kernel walks the data column-wise, which is slow on
// the CPU cache; a hand-optimized version interchanges the loops. FluidiCL
// discovers the better one at run time.
//
//	go run ./examples/profiling
package main

import (
	"fmt"

	"fluidicl/internal/core"
	"fluidicl/internal/polybench"
	"fluidicl/internal/sched"
)

func main() {
	m := sched.DefaultMachine()

	base := polybench.Corr(160, 160)
	gpu, err := sched.RunSingle(m.GPU, base.App)
	check(err)
	cpu, err := sched.RunSingle(m.CPU, base.App)
	check(err)

	// Second-run times, matching the paper's methodology (§8 excludes the
	// first run; profiling learns during it).
	fcl, err := sched.RunFluidiCLRepeat(m, polybench.Corr(160, 160).App, core.Options{}, 2)
	check(err)

	withVar := polybench.CorrWithVariant(160, 160)
	fclPro, err := sched.RunFluidiCLRepeat(m, withVar.App, core.Options{OnlineProfiling: true}, 2)
	check(err)
	check(withVar.Verify(fclPro.Outputs))

	fmt.Println("CORR (160x160) — online profiling of alternate CPU kernels (paper Table 3)")
	fmt.Println()
	fmt.Printf("  %-34s %8.3f ms\n", "GPU only", gpu.Time*1e3)
	fmt.Printf("  %-34s %8.3f ms\n", "CPU only", cpu.Time*1e3)
	fmt.Printf("  %-34s %8.3f ms\n", "FluidiCL (baseline kernel)", fcl.Time*1e3)
	fmt.Printf("  %-34s %8.3f ms\n", "FluidiCL + online profiling", fclPro.Time*1e3)
	fmt.Println()
	variant := "baseline"
	for _, rep := range fclPro.Reports { // last report for k4 wins (second run)
		if rep.Name == "corr_kernel4" && rep.VariantUsed == 1 {
			variant = "loop-interchanged CPU variant"
		}
	}
	fmt.Printf("online profiling selected the %s for corr_kernel4.\n", variant)
	fmt.Println("results are bit-identical with either kernel version (verified).")
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
