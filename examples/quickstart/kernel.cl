__kernel void saxpy(__global float* x, __global float* y, float a, int n) {
    int i = get_global_id(0);
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}
