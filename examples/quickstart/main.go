// Quickstart: run a single-device OpenCL-style program cooperatively on the
// CPU and the GPU with FluidiCL.
//
// The program is written exactly as it would be for one device — create
// buffers, write inputs, enqueue a kernel, read results. FluidiCL
// transparently executes the kernel on both devices, merges the results and
// keeps the buffers coherent.
//
//	go run ./examples/quickstart
package main

import (
	_ "embed"
	"encoding/binary"
	"fmt"
	"math"

	"fluidicl/internal/core"
	"fluidicl/internal/device"
	"fluidicl/internal/sim"
	"fluidicl/internal/vm"
)

// The kernel lives in its own .cl file so `fluidilint` can check it as part
// of scripts/check.sh.
//
//go:embed kernel.cl
var saxpySrc string

func main() {
	// The simulated machine: the paper's Tesla C2070 + Xeon W3550.
	env := sim.NewEnv()
	cpu := device.New(env, device.XeonW3550())
	gpu := device.New(env, device.TeslaC2070())

	// A FluidiCL runtime with the paper's default settings (2% initial
	// chunk, 2% step, in-loop aborts, unrolling, work-group splitting).
	rt := core.MustNew(env, cpu, gpu, core.Options{})

	prog, err := rt.BuildProgram(saxpySrc)
	if err != nil {
		panic(err)
	}
	kernel := prog.MustKernel("saxpy")

	const n = 4096
	x := make([]float32, n)
	y := make([]float32, n)
	for i := range x {
		x[i] = float32(i)
		y[i] = 1
	}

	bufX := rt.CreateBuffer(4 * n)
	bufY := rt.CreateBuffer(4 * n)

	// Host programs run as simulation processes; every FluidiCL call maps
	// to the OpenCL call named in its comment.
	var out []byte
	env.Go("host", func(p *sim.Proc) {
		rt.EnqueueWriteBuffer(p, bufX, f32bytes(x)) // clEnqueueWriteBuffer
		rt.EnqueueWriteBuffer(p, bufY, f32bytes(y))
		err := rt.EnqueueNDRangeKernel(p, kernel, // clEnqueueNDRangeKernel
			vm.NewNDRange1D(n, 64),
			[]core.Arg{
				core.BufArg(bufX), core.BufArg(bufY),
				core.FloatArg(2.0), core.IntArg(n),
			})
		if err != nil {
			panic(err)
		}
		out = rt.EnqueueReadBuffer(p, bufY) // clEnqueueReadBuffer
	})
	env.Run()

	for i := 0; i < n; i++ {
		want := 2*float32(i) + 1
		if got := f32at(out, i); got != want {
			panic(fmt.Sprintf("y[%d] = %v, want %v", i, got, want))
		}
	}
	rep := rt.Reports[0]
	fmt.Printf("saxpy over %d elements: verified.\n", n)
	fmt.Printf("virtual time: %.1f us\n", env.Now()*1e6)
	fmt.Printf("work split: GPU executed %d work-groups, CPU executed %d (of %d), %d CPU subkernels\n",
		rep.GPUExecuted, rep.CPUWGs, rep.TotalWGs, rep.Subkernels)
	fmt.Println("\nTransformed GPU kernel (abort checks injected by FluidiCL):")
	fmt.Println(prog.GPUSrc)
}

func f32bytes(vals []float32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
	}
	return b
}

func f32at(b []byte, i int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
}
