package main

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"sort"

	"fluidicl/internal/core"
	"fluidicl/internal/device"
	"fluidicl/internal/harness"
	"fluidicl/internal/polybench"
	"fluidicl/internal/sched"
	"fluidicl/internal/trace"
)

// outputHash digests a run's output buffers in name-sorted order, matching
// the harness determinism tests' scheme, so hashes are comparable across
// topologies, backends and worker counts.
func outputHash(outputs map[string][]byte) string {
	names := make([]string, 0, len(outputs))
	for name := range outputs {
		names = append(names, name)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		h.Write([]byte(name))
		h.Write([]byte{0})
		h.Write(outputs[name])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// runHash runs every benchmark under FluidiCL on the given topology, twice
// each, and prints one "NAME HASH" line per benchmark. Each run is verified
// bit-exactly against the benchmark's single-device reference outputs, and
// the two runs must agree on output hash and virtual time; any failure exits
// nonzero. Because outputs are reference-verified, the printed hashes are
// identical across every topology — the CI matrix diffs them to prove it.
func runHash(quick bool, topoSpec string) error {
	if topoSpec == "" {
		topoSpec = "cpu+gpu"
	}
	topo, err := device.ParseTopology(topoSpec)
	if err != nil {
		return err
	}
	benches := polybench.AllWithExtras()
	if quick {
		benches = polybench.AllQuick()
	}
	for _, b := range benches {
		first, err := sched.RunTopology(topo, b.App, core.Options{})
		if err != nil {
			return fmt.Errorf("%s on %s: %w", b.Name, topoSpec, err)
		}
		if err := b.Verify(first.Outputs); err != nil {
			return fmt.Errorf("%s on %s: wrong results: %w", b.Name, topoSpec, err)
		}
		again, err := sched.RunTopology(topo, b.App, core.Options{})
		if err != nil {
			return fmt.Errorf("%s on %s (rerun): %w", b.Name, topoSpec, err)
		}
		h1, h2 := outputHash(first.Outputs), outputHash(again.Outputs)
		if h1 != h2 {
			return fmt.Errorf("%s on %s: output hash not deterministic (%s vs %s)", b.Name, topoSpec, h1, h2)
		}
		if first.Time != again.Time {
			return fmt.Errorf("%s on %s: virtual time not deterministic (%v vs %v)", b.Name, topoSpec, first.Time, again.Time)
		}
		fmt.Printf("%s %s\n", b.Name, h1)
	}
	return nil
}

// chromeTraceTopology is chromeTrace on an N-device topology: one compute
// and one link track per device, shared-bus contention visible as link-wait
// spans. The degenerate cpu+gpu topology produces the exact bytes of the
// default chromeTrace path.
func chromeTraceTopology(name string, quick bool, out, topoSpec string) error {
	b, err := benchFor(name, quick)
	if err != nil {
		return err
	}
	topo, err := device.ParseTopology(topoSpec)
	if err != nil {
		return err
	}
	rec := trace.NewRecorder()
	res, err := sched.RunTopologyTraced(topo, b.App, core.Options{}, rec)
	if err != nil {
		return err
	}
	if err := b.Verify(res.Outputs); err != nil {
		return fmt.Errorf("wrong results: %w", err)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := rec.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d events on %d tracks (open in chrome://tracing or ui.perfetto.dev)\n",
		out, len(rec.Events()), len(rec.Tracks()))
	// OverlapFrac's pairwise ratio (BothBusy over the less-busy device) can
	// exceed 1 on more than two devices; report co-execution as the fraction
	// of wall time with at least two devices computing instead.
	coexec := 0.0
	if res.Time > 0 {
		coexec = res.Summary.BothBusy / res.Time
	}
	fmt.Printf("%s %s on %s: %.3f ms virtual, co-exec %.0f%% of wall\n",
		b.Name, b.InputDesc, topo.String(), res.Time*1e3, coexec*100)
	for _, d := range res.Summary.Devices {
		fmt.Printf("  %-28s busy %8.3f ms, %5d wgs, link busy %7.3f ms, wait %7.3f ms\n",
			d.Name, d.Busy*1e3, d.WGsExecuted, d.LinkBusy*1e3, d.LinkWait*1e3)
	}
	return nil
}

// runDistTopology is the -dist table on an N-device topology: one row per
// (benchmark, device) with that device's work-group share, busy time and
// link traffic, so the work-stealing balance across the whole device set is
// visible at a glance.
func runDistTopology(quick, csv bool, topoSpec string) error {
	topo, err := device.ParseTopology(topoSpec)
	if err != nil {
		return err
	}
	benches := polybench.AllWithExtras()
	if quick {
		benches = polybench.AllQuick()
	}
	t := &harness.Table{
		ID:    "dist",
		Title: fmt.Sprintf("FluidiCL work distribution on topology %s", topo.String()),
		Note: "per-benchmark FluidiCL run: one row per device with its share of the\n" +
			"work-groups, virtual busy and link time, and bytes over its host link\n" +
			"(rf-KB: delta-refresh H2D bytes; rf-skip-KB: refresh bytes the planner elided)",
		Columns: []string{"Benchmark", "Device", "WGs", "share", "busy", "link-busy", "link-wait", "H2D-KB", "rf-KB", "D2H-KB", "rf-skip-KB", "time-ms"},
	}
	for _, b := range benches {
		before := core.CounterSnapshot()
		res, err := sched.RunTopology(topo, b.App, core.Options{})
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		delta := core.CounterSnapshot().Sub(before)
		if err := b.Verify(res.Outputs); err != nil {
			return fmt.Errorf("%s: wrong results: %w", b.Name, err)
		}
		// Work-group counts come from the kernel reports (app kernels only);
		// busy/link figures come from the trace meter, indexed in topology
		// device order — the same order Topology.Build registered them.
		wgs := make([]int64, len(topo.Devices))
		var total int64
		for _, rep := range res.Reports {
			if rep.DeviceWGs != nil {
				for i, n := range rep.DeviceWGs {
					wgs[i] += int64(n)
				}
			} else {
				// Twin-path reports (degenerate cpu+gpu topology): CPU is
				// device 0, GPU is device 1.
				wgs[0] += int64(rep.CPUWGs)
				wgs[1] += int64(rep.GPUExecuted)
			}
		}
		for _, n := range wgs {
			total += n
		}
		for i := range topo.Devices {
			share := 0.0
			if total > 0 {
				share = float64(wgs[i]) / float64(total)
			}
			var d trace.DeviceMeter
			if i < len(res.Summary.Devices) {
				d = res.Summary.Devices[i]
			}
			name, timeCol, rfSkipCol := "", "", ""
			if i == 0 {
				name = b.Name
				timeCol = fmt.Sprintf("%.3f", res.Time*1e3)
				// rf-skip is benchmark-level (the planner books skips per
				// buffer and device, not per link), so it rides the first row.
				rfSkipCol = fmt.Sprintf("%.1f", float64(delta.RefreshBytesSkipped)/1024)
			}
			t.AddRow(name,
				d.Name,
				fmt.Sprintf("%d", wgs[i]),
				fmt.Sprintf("%.0f%%", share*100),
				fmt.Sprintf("%.2fms", d.Busy*1e3),
				fmt.Sprintf("%.2fms", d.LinkBusy*1e3),
				fmt.Sprintf("%.2fms", d.LinkWait*1e3),
				fmt.Sprintf("%.1f", float64(d.BytesH2D)/1024),
				fmt.Sprintf("%.1f", float64(d.BytesRefresh)/1024),
				fmt.Sprintf("%.1f", float64(d.BytesD2H)/1024),
				rfSkipCol,
				timeCol)
		}
	}
	emit(t, csv)
	return nil
}
