// Command fluidibench regenerates the tables and figures of "Fluidic
// Kernels: Cooperative Execution of OpenCL Programs on Multiple
// Heterogeneous Devices" (CGO 2014) on the simulated machine.
//
// Usage:
//
//	fluidibench all                 # every experiment, paper order
//	fluidibench fig13               # one experiment (see `fluidibench list`)
//	fluidibench overall             # aliases accepted (overall = fig13)
//	fluidibench -csv fig17          # CSV output
//	fluidibench -quick all          # reduced workloads (smoke test)
//	fluidibench run SYRK            # run one benchmark under every strategy
//	fluidibench list                # list experiments and benchmarks
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"fluidicl/internal/core"
	"fluidicl/internal/device"
	"fluidicl/internal/harness"
	"fluidicl/internal/polybench"
	"fluidicl/internal/sched"
	"fluidicl/internal/sim"
	"fluidicl/internal/trace"
	"fluidicl/internal/vm"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	quick := flag.Bool("quick", false, "use reduced workload sizes")
	workers := flag.Int("workers", 0, "host threads per kernel launch for work-group execution (0 = GOMAXPROCS)")
	parallel := flag.Int("parallel", 0, "concurrent experiment table cells (0 = GOMAXPROCS)")
	jsonOut := flag.String("jsonout", "", "write per-table wall-clock times as JSON to this file")
	traceOut := flag.String("trace", "", "run one benchmark under FluidiCL and write a Chrome trace_event JSON file here")
	dist := flag.Bool("dist", false, "print the per-benchmark CPU/GPU work-distribution table (paper §5.5)")
	backend := flag.String("backend", "", "work-group execution backend: interp, closure, or wg (default closure, or $FLUIDICL_BACKEND)")
	wgfuse := flag.String("wgfuse", "", "fused wg block execution: on or off (default on, or $FLUIDICL_WG_FUSE)")
	topology := flag.String("topology", "", "N-device topology for -trace, -dist and hash, e.g. cpu+gpu, 2cpu+2gpu, 4gpu-bus (default: the paper's cpu+gpu machine)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()

	vm.SetWorkers(*workers)
	switch *wgfuse {
	case "":
	case "on":
		vm.SetWGFuse(true)
	case "off":
		vm.SetWGFuse(false)
	default:
		fatal(fmt.Errorf("-wgfuse: want on or off, got %q", *wgfuse))
	}
	if *backend != "" {
		b, err := vm.ParseBackend(*backend)
		if err != nil {
			fatal(err)
		}
		vm.SetBackend(b)
	}

	if *traceOut != "" {
		if len(args) != 1 {
			fatal(fmt.Errorf("usage: fluidibench -trace out.json [-quick] [-topology T] <benchmark>"))
		}
		var err error
		if *topology != "" {
			err = chromeTraceTopology(args[0], *quick, *traceOut, *topology)
		} else {
			err = chromeTrace(args[0], *quick, *traceOut)
		}
		if err != nil {
			fatal(err)
		}
		return
	}
	if *dist {
		var err error
		if *topology != "" {
			err = runDistTopology(*quick, *csv, *topology)
		} else {
			err = runDist(*quick, *csv)
		}
		if err != nil {
			fatal(err)
		}
		return
	}
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	r := harness.NewRunner()
	r.Quick = *quick
	r.Parallel = *parallel

	switch args[0] {
	case "list":
		fmt.Println("experiments (in paper order):")
		for _, id := range harness.ExperimentIDs {
			fmt.Printf("  %s\n", id)
		}
		fmt.Println("extra experiments (beyond the paper):")
		for _, id := range harness.ExtraExperimentIDs {
			fmt.Printf("  %s\n", id)
		}
		fmt.Println("benchmarks (paper's Table 2 set):")
		for _, b := range polybench.All() {
			fmt.Printf("  %-8s input %-16s %d kernel(s)\n", b.Name, b.InputDesc, len(b.App.Launches))
		}
		fmt.Println("extra benchmarks:")
		for _, b := range polybench.Extras() {
			fmt.Printf("  %-8s input %-16s %d kernel(s)\n", b.Name, b.InputDesc, len(b.App.Launches))
		}
		return
	case "all":
		ids := append(append([]string{}, harness.ExperimentIDs...), harness.ExtraExperimentIDs...)
		var walls []wallEntry
		for _, id := range ids {
			before := core.CounterSnapshot()
			beforeS := trace.GlobalSnapshot()
			start := time.Now()
			t, err := r.Run(id)
			wall := time.Since(start)
			if err != nil {
				writeWalls(*jsonOut, walls)
				fatal(err)
			}
			emit(t, *csv)
			fmt.Printf("[%s: %.2fs wall]\n\n", t.ID, wall.Seconds())
			walls = append(walls, newWallEntry(t.ID, wall.Seconds(),
				core.CounterSnapshot().Sub(before), trace.GlobalSnapshot().Sub(beforeS)))
		}
		writeWalls(*jsonOut, walls)
		return
	case "hash":
		// Stdout stays pure "NAME HASH" lines (the CI matrix diffs them
		// verbatim across topologies); counters go to -jsonout only.
		before := core.CounterSnapshot()
		beforeS := trace.GlobalSnapshot()
		start := time.Now()
		if err := runHash(*quick, *topology); err != nil {
			fatal(err)
		}
		writeWalls(*jsonOut, []wallEntry{newWallEntry("hash", time.Since(start).Seconds(),
			core.CounterSnapshot().Sub(before), trace.GlobalSnapshot().Sub(beforeS))})
		return
	case "run":
		if len(args) < 2 {
			fatal(fmt.Errorf("usage: fluidibench run <benchmark>"))
		}
		if err := runOne(args[1]); err != nil {
			fatal(err)
		}
		return
	case "dump":
		if len(args) < 2 {
			fatal(fmt.Errorf("usage: fluidibench dump <benchmark>"))
		}
		if err := dumpOne(args[1]); err != nil {
			fatal(err)
		}
		return
	case "trace":
		if len(args) < 2 {
			fatal(fmt.Errorf("usage: fluidibench trace <benchmark>"))
		}
		if err := traceOne(args[1]); err != nil {
			fatal(err)
		}
		return
	default:
		before := core.CounterSnapshot()
		beforeS := trace.GlobalSnapshot()
		start := time.Now()
		t, err := r.Run(args[0])
		wall := time.Since(start)
		if err != nil {
			fatal(err)
		}
		emit(t, *csv)
		fmt.Printf("[%s: %.2fs wall]\n", t.ID, wall.Seconds())
		writeWalls(*jsonOut, []wallEntry{newWallEntry(t.ID, wall.Seconds(),
			core.CounterSnapshot().Sub(before), trace.GlobalSnapshot().Sub(beforeS))})
	}
}

// wallEntry is one experiment's host wall-clock cost (not virtual time)
// plus what its FluidiCL runs accumulated: the summary-driven elision
// counters and the trace-meter work distribution (virtual busy times,
// work-group split, link traffic, compute overlap). Everything except
// wall_seconds is virtual and therefore deterministic.
type wallEntry struct {
	ID                string  `json:"id"`
	WallSeconds       float64 `json:"wall_seconds"`
	UploadsSkipped    int64   `json:"uploads_skipped,omitempty"`
	PrimeCopiesElided int64   `json:"prime_copies_elided,omitempty"`
	ShipBytesSkipped  int64   `json:"ship_bytes_skipped,omitempty"`
	MergeWordsElided  int64   `json:"merge_words_elided,omitempty"`
	// Delta-refresh planner activity (N-way topology runs): bytes the
	// planner did not rebroadcast relative to a full per-device refresh,
	// delta scatter-writes enqueued, and the H2D bytes those deltas carried.
	RefreshBytesSkipped int64   `json:"refresh_bytes_skipped,omitempty"`
	RefreshDeltas       int64   `json:"refresh_deltas,omitempty"`
	BytesRefresh        int64   `json:"bytes_refresh,omitempty"`
	FluidiCLRuns        int64   `json:"fluidicl_runs,omitempty"`
	CPUBusySeconds      float64 `json:"cpu_busy_seconds,omitempty"`
	GPUBusySeconds      float64 `json:"gpu_busy_seconds,omitempty"`
	BothBusySeconds     float64 `json:"both_busy_seconds,omitempty"`
	CPUWGs              int64   `json:"cpu_wgs,omitempty"`
	GPUWGs              int64   `json:"gpu_wgs,omitempty"`
	LinkBusySeconds     float64 `json:"link_busy_seconds,omitempty"`
	BytesH2D            int64   `json:"bytes_h2d,omitempty"`
	BytesD2H            int64   `json:"bytes_d2h,omitempty"`
	OverlapFrac         float64 `json:"overlap_frac,omitempty"`
	// VM backend activity: work-groups per execution engine and static
	// superinstruction coverage of the kernels compiled during the run.
	ClosureWGs  int64 `json:"closure_wgs,omitempty"`
	InterpWGs   int64 `json:"interp_wgs,omitempty"`
	FusedInstrs int64 `json:"fused_instrs,omitempty"`
	TotalInstrs int64 `json:"total_instrs,omitempty"`
	// Whole-work-group compilation coverage: work-groups run by the
	// lockstep engine vs fallen back, and how many kernels/regions the
	// compilation pass produced.
	WGLoopWGs     int64 `json:"wg_loop_wgs,omitempty"`
	WGFallbackWGs int64 `json:"wg_fallback_wgs,omitempty"`
	WGKernels     int64 `json:"wg_kernels,omitempty"`
	WGRegions     int64 `json:"wg_regions,omitempty"`
	// Region-fusion coverage (DESIGN.md S20): fused blocks and the compiled
	// instructions they absorbed vs instructions left on per-step dispatch.
	WGFusedBlocks       int64 `json:"wg_fused_blocks,omitempty"`
	WGFusedSteps        int64 `json:"wg_fused_steps,omitempty"`
	WGFuseFallbackSteps int64 `json:"wg_fuse_fallback_steps,omitempty"`
	// Strided-certificate activity: launches whose CPU work-group splitting
	// was un-vetoed by the disjointness certificate, work-groups the
	// certificate admitted to the lockstep engine, and the per-reason
	// attribution of every wg-backend fallback.
	SplitsUnvetoed    int64 `json:"splits_unvetoed,omitempty"`
	WGStridedWGs      int64 `json:"wg_strided_wgs,omitempty"`
	WGCertRejShape    int64 `json:"wg_cert_reject_shape,omitempty"`
	WGCertRejAlias    int64 `json:"wg_cert_reject_alias,omitempty"`
	WGCertRejNoSum    int64 `json:"wg_cert_reject_no_summary,omitempty"`
	WGCertRejLocal    int64 `json:"wg_cert_reject_local_store,omitempty"`
	WGCertRejUnkStore int64 `json:"wg_cert_reject_unknown_store,omitempty"`
	WGCertRejUnkRead  int64 `json:"wg_cert_reject_unknown_read,omitempty"`
	WGCertRejOverlap  int64 `json:"wg_cert_reject_overlap,omitempty"`
	WGCertRejBudget   int64 `json:"wg_cert_reject_budget,omitempty"`
}

func newWallEntry(id string, wall float64, c core.Counters, s trace.GlobalSummary) wallEntry {
	return wallEntry{
		ID:                  id,
		WallSeconds:         wall,
		UploadsSkipped:      c.UploadsSkipped,
		PrimeCopiesElided:   c.PrimeCopiesElided,
		ShipBytesSkipped:    c.ShipBytesSkipped,
		MergeWordsElided:    c.MergeWordsElided,
		RefreshBytesSkipped: c.RefreshBytesSkipped,
		RefreshDeltas:       c.RefreshDeltas,
		BytesRefresh:        s.BytesRefresh,
		FluidiCLRuns:        s.Runs,
		CPUBusySeconds:      s.CPUBusy,
		GPUBusySeconds:      s.GPUBusy,
		BothBusySeconds:     s.BothBusy,
		CPUWGs:              s.CPUWGs,
		GPUWGs:              s.GPUWGs,
		LinkBusySeconds:     s.LinkBusy,
		BytesH2D:            s.BytesH2D,
		BytesD2H:            s.BytesD2H,
		OverlapFrac:         s.OverlapFrac(),
		ClosureWGs:          c.ClosureWGs,
		InterpWGs:           c.InterpWGs,
		FusedInstrs:         c.FusedInstrs,
		TotalInstrs:         c.TotalInstrs,
		WGLoopWGs:           c.WGLoopWGs,
		WGFallbackWGs:       c.WGFallbackWGs,
		WGKernels:           c.WGKernels,
		WGRegions:           c.WGRegions,
		WGFusedBlocks:       c.WGFusedBlocks,
		WGFusedSteps:        c.WGFusedSteps,
		WGFuseFallbackSteps: c.WGFuseFallbackSteps,
		SplitsUnvetoed:      c.SplitsUnvetoed,
		WGStridedWGs:        c.WGStridedWGs,
		WGCertRejShape:      c.WGCertRejShape,
		WGCertRejAlias:      c.WGCertRejAlias,
		WGCertRejNoSum:      c.WGCertRejNoSum,
		WGCertRejLocal:      c.WGCertRejLocal,
		WGCertRejUnkStore:   c.WGCertRejUnkStore,
		WGCertRejUnkRead:    c.WGCertRejUnkRead,
		WGCertRejOverlap:    c.WGCertRejOverlap,
		WGCertRejBudget:     c.WGCertRejBudget,
	}
}

func writeWalls(path string, walls []wallEntry) {
	if path == "" || walls == nil {
		return
	}
	data, err := json.MarshalIndent(walls, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
}

func emit(t *harness.Table, csv bool) {
	if csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t.String())
	}
}

// runOne executes one benchmark under every strategy and prints a summary.
func runOne(name string) error {
	b, err := polybench.ByName(name)
	if err != nil {
		return err
	}
	m := sched.DefaultMachine()
	fresh := func() *polybench.Benchmark {
		nb, _ := polybench.ByName(name)
		return nb
	}

	type row struct {
		label string
		run   func() (*sched.Result, error)
	}
	rows := []row{
		{"CPU-only", func() (*sched.Result, error) { return sched.RunSingle(m.CPU, fresh().App) }},
		{"GPU-only", func() (*sched.Result, error) { return sched.RunSingle(m.GPU, fresh().App) }},
		{"Static 50/50", func() (*sched.Result, error) { return sched.RunStatic(m, fresh().App, 50) }},
		{"SOCL eager", func() (*sched.Result, error) { return sched.RunSocl(m, fresh().App, sched.Eager, nil) }},
		{"SOCL dmda", func() (*sched.Result, error) {
			app := fresh().App
			model, err := sched.CalibrateDmda(m, app)
			if err != nil {
				return nil, err
			}
			return sched.RunSocl(m, app, sched.Dmda, model)
		}},
		{"FluidiCL", func() (*sched.Result, error) { return sched.RunFluidiCL(m, fresh().App, core.Options{}) }},
	}
	fmt.Printf("benchmark %s, input %s, %d kernel(s)\n", b.Name, b.InputDesc, len(b.App.Launches))
	for _, r := range rows {
		res, err := r.run()
		if err != nil {
			return fmt.Errorf("%s: %w", r.label, err)
		}
		if err := b.Verify(res.Outputs); err != nil {
			return fmt.Errorf("%s: wrong results: %w", r.label, err)
		}
		fmt.Printf("  %-12s %10.3f ms  (results verified)\n", r.label, res.Time*1e3)
		for _, rep := range res.Reports {
			fmt.Printf("    kernel %-16s wgs=%4d gpu=%4d (skip %d, abort %d) cpu=%4d in %d subkernel(s)%s\n",
				rep.Name, rep.TotalWGs, rep.GPUExecuted, rep.GPUSkipped, rep.GPUAborted,
				rep.CPUWGs, rep.Subkernels, didAll(rep.CPUDidAll))
		}
	}
	return nil
}

func didAll(b bool) string {
	if b {
		return "  [CPU completed entire NDRange]"
	}
	return ""
}

// benchFor resolves a benchmark name case-insensitively, at full scale or at
// the harness quick scale.
func benchFor(name string, quick bool) (*polybench.Benchmark, error) {
	n := strings.ToUpper(name)
	if quick {
		return polybench.ByNameQuick(n)
	}
	return polybench.ByName(n)
}

// chromeTrace runs one benchmark under FluidiCL with the event recorder
// attached and writes the recording as Chrome trace_event JSON: one track
// per simulated device, one per link, one for the FluidiCL runtime's
// scheduling decisions. The file loads in chrome://tracing and Perfetto.
func chromeTrace(name string, quick bool, out string) error {
	b, err := benchFor(name, quick)
	if err != nil {
		return err
	}
	rec := trace.NewRecorder()
	res, err := sched.RunFluidiCLTraced(sched.DefaultMachine(), b.App, core.Options{}, rec)
	if err != nil {
		return err
	}
	if err := b.Verify(res.Outputs); err != nil {
		return fmt.Errorf("wrong results: %w", err)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := rec.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	cpu := res.Summary.ByKind("CPU")
	gpu := res.Summary.ByKind("GPU")
	fmt.Printf("wrote %s: %d events on %d tracks (open in chrome://tracing or ui.perfetto.dev)\n",
		out, len(rec.Events()), len(rec.Tracks()))
	fmt.Printf("%s %s: %.3f ms virtual; CPU busy %.3f ms (%d wgs), GPU busy %.3f ms (%d wgs), overlap %.0f%%\n",
		b.Name, b.InputDesc, res.Time*1e3,
		cpu.Busy*1e3, cpu.WGsExecuted, gpu.Busy*1e3, gpu.WGsExecuted,
		res.Summary.OverlapFrac()*100)
	return nil
}

// runDist reproduces the paper's §5.5 work-distribution reporting: for every
// Polybench benchmark, one FluidiCL run's CPU-vs-GPU work-group split,
// per-device busy time, link traffic and overhead, and the fraction of the
// smaller device's compute that overlapped the other device's.
func runDist(quick, csv bool) error {
	benches := polybench.AllWithExtras()
	if quick {
		benches = polybench.AllQuick()
	}
	m := sched.DefaultMachine()
	t := &harness.Table{
		ID:    "dist",
		Title: "FluidiCL work distribution and overhead breakdown (paper §5.5)",
		Note: "per-benchmark FluidiCL run: work-groups executed per device (app kernels only),\n" +
			"virtual busy and link time, bytes over the links, and compute overlap",
		Columns: []string{"Benchmark", "CPU-WGs", "GPU-WGs", "CPU-share", "CPU-busy", "GPU-busy", "link-busy", "link-wait", "H2D-KB", "D2H-KB", "overlap", "wg-fb", "wg-reject", "wg-fused", "fuse-cov", "time-ms"},
	}
	for _, b := range benches {
		before := core.CounterSnapshot()
		res, err := sched.RunFluidiCL(m, b.App, core.Options{})
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		delta := core.CounterSnapshot().Sub(before)
		if err := b.Verify(res.Outputs); err != nil {
			return fmt.Errorf("%s: wrong results: %w", b.Name, err)
		}
		var cpuWGs, gpuWGs int64
		for _, rep := range res.Reports {
			cpuWGs += int64(rep.CPUWGs)
			gpuWGs += int64(rep.GPUExecuted)
		}
		share := 0.0
		if cpuWGs+gpuWGs > 0 {
			share = float64(cpuWGs) / float64(cpuWGs+gpuWGs)
		}
		cpu := res.Summary.ByKind("CPU")
		gpu := res.Summary.ByKind("GPU")
		t.AddRow(b.Name,
			fmt.Sprintf("%d", cpuWGs),
			fmt.Sprintf("%d", gpuWGs),
			fmt.Sprintf("%.0f%%", share*100),
			fmt.Sprintf("%.2fms", cpu.Busy*1e3),
			fmt.Sprintf("%.2fms", gpu.Busy*1e3),
			fmt.Sprintf("%.2fms", (cpu.LinkBusy+gpu.LinkBusy)*1e3),
			fmt.Sprintf("%.2fms", (cpu.LinkWait+gpu.LinkWait)*1e3),
			fmt.Sprintf("%.1f", float64(cpu.BytesH2D+gpu.BytesH2D)/1024),
			fmt.Sprintf("%.1f", float64(cpu.BytesD2H+gpu.BytesD2H)/1024),
			fmt.Sprintf("%.0f%%", res.Summary.OverlapFrac()*100),
			fmt.Sprintf("%d", delta.WGFallbackWGs),
			dominantReject(delta),
			fmt.Sprintf("%d", delta.WGFusedBlocks),
			fuseCoverage(delta),
			fmt.Sprintf("%.3f", res.Time*1e3))
	}
	emit(t, csv)
	return nil
}

// fuseCoverage formats the fraction of wg-compiled instructions absorbed
// into fused block closures, or "-" when the run compiled none (e.g. under
// a non-lockstep backend).
func fuseCoverage(c core.Counters) string {
	tot := c.WGFusedSteps + c.WGFuseFallbackSteps
	if tot == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", float64(c.WGFusedSteps)/float64(tot)*100)
}

// dominantReject names the most frequent wg-backend certificate rejection
// in a counter delta, or "-" when nothing fell back (e.g. under a
// non-lockstep backend, where no certificate runs at all).
func dominantReject(c core.Counters) string {
	type rc struct {
		name string
		n    int64
	}
	all := []rc{
		{"shape", c.WGCertRejShape},
		{"alias", c.WGCertRejAlias},
		{"no_summary", c.WGCertRejNoSum},
		{"local_store", c.WGCertRejLocal},
		{"unknown_store", c.WGCertRejUnkStore},
		{"unknown_read", c.WGCertRejUnkRead},
		{"overlap", c.WGCertRejOverlap},
		{"budget", c.WGCertRejBudget},
	}
	best := rc{name: "-"}
	for _, r := range all {
		if r.n > best.n {
			best = r
		}
	}
	return best.name
}

func usage() {
	fmt.Fprintf(os.Stderr, `fluidibench — regenerate the FluidiCL paper's tables and figures

usage:
  fluidibench [-csv] [-quick] [-workers N] [-parallel N] [-backend interp|closure|wg] [-wgfuse on|off] [-jsonout F] <experiment>|all
  fluidibench -trace out.json [-quick] [-topology T] <benchmark>   # Chrome trace_event JSON (chrome://tracing)
  fluidibench -dist [-quick] [-csv] [-topology T]   # work-distribution table (paper §5.5; per-device rows with -topology)
  fluidibench [-quick] [-topology T] hash   # benchmark output hashes (deterministic, topology-invariant)
  fluidibench run <benchmark>     # one benchmark under every strategy
  fluidibench trace <benchmark>   # cooperative-execution timeline (plain text)
  fluidibench dump <benchmark>    # transformed sources + bytecode disassembly
  fluidibench list

experiments: %v
extras: %v
`, harness.ExperimentIDs, harness.ExtraExperimentIDs)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fluidibench:", err)
	os.Exit(1)
}

// dumpOne shows what FluidiCL's compilation pipeline produces for a
// benchmark: the transformed GPU and CPU sources (the source-to-source
// passes' output) and the GPU bytecode disassembly of each kernel.
func dumpOne(name string) error {
	b, err := polybench.ByName(name)
	if err != nil {
		return err
	}
	env := sim.NewEnv()
	m := sched.DefaultMachine()
	rt, err := core.New(env, device.New(env, m.CPU), device.New(env, m.GPU), core.Options{})
	if err != nil {
		return err
	}
	prog, err := rt.BuildProgram(b.App.Source)
	if err != nil {
		return err
	}
	fmt.Printf("benchmark %s — original source:\n%s\n", b.Name, b.App.Source)
	fmt.Printf("==== transformed GPU source (abort checks, unrolled in-loop checks) ====\n%s\n", prog.GPUSrc)
	fmt.Printf("==== transformed CPU source (subkernel range guards) ====\n%s\n", prog.CPUSrc)
	seen := map[string]bool{}
	for _, l := range b.App.Launches {
		if seen[l.Kernel] {
			continue
		}
		seen[l.Kernel] = true
		k, err := prog.CreateKernel(l.Kernel)
		if err != nil {
			return err
		}
		fmt.Printf("==== GPU bytecode: %s ====\n%s\n", l.Kernel, k.DisasmGPU())
	}
	return nil
}

// traceOne runs one benchmark under FluidiCL with event tracing and prints
// the cooperative-execution timeline.
func traceOne(name string) error {
	b, err := polybench.ByName(name)
	if err != nil {
		return err
	}
	env := sim.NewEnv()
	m := sched.DefaultMachine()
	rt, err := core.New(env, device.New(env, m.CPU), device.New(env, m.GPU), core.Options{})
	if err != nil {
		return err
	}
	tr := rt.EnableTrace()
	prog, err := rt.BuildProgram(b.App.Source)
	if err != nil {
		return err
	}
	bufNames := make([]string, 0, len(b.App.Buffers))
	for bn := range b.App.Buffers {
		bufNames = append(bufNames, bn)
	}
	sort.Strings(bufNames)
	bufs := map[string]*core.Buffer{}
	for _, bn := range bufNames {
		bufs[bn] = rt.CreateBuffer(b.App.Buffers[bn])
	}
	kernels := map[string]*core.Kernel{}
	var runErr error
	env.Go("app", func(p *sim.Proc) {
		for _, bn := range bufNames {
			data := b.App.Inputs[bn]
			if data == nil {
				data = make([]byte, b.App.Buffers[bn])
			}
			rt.EnqueueWriteBuffer(p, bufs[bn], data)
		}
		for _, l := range b.App.Launches {
			k := kernels[l.Kernel]
			if k == nil {
				k = prog.MustKernel(l.Kernel)
				kernels[l.Kernel] = k
			}
			args := make([]core.Arg, len(l.Args))
			for i, a := range l.Args {
				switch a.Kind {
				case sched.ArgBuf:
					args[i] = core.BufArg(bufs[a.Name])
				case sched.ArgInt:
					args[i] = core.IntArg(a.I)
				default:
					args[i] = core.FloatArg(a.F)
				}
			}
			if err := rt.EnqueueNDRangeKernel(p, k, l.ND, args); err != nil {
				runErr = err
				return
			}
		}
		for _, bn := range b.App.Outputs {
			rt.EnqueueReadBuffer(p, bufs[bn])
		}
	})
	env.Run()
	if runErr != nil {
		return runErr
	}
	fmt.Printf("cooperative-execution timeline for %s %s:\n\n%s", b.Name, b.InputDesc, tr)
	return nil
}
