// Command fluidilint runs FluidiCL's static kernel analyzer over MiniCL
// sources and reports lint diagnostics with file:line:col positions. It
// exits non-zero when any diagnostic (or parse/sema error) is found, so it
// can gate CI.
//
// Usage:
//
//	fluidilint [flags] file.cl...   # lint MiniCL source files
//	fluidilint -builtin             # lint every shipped kernel source
//	                                # (Polybench suite + the merge kernel)
//	fluidilint -summary file.cl     # also print buffer access summaries
package main

import (
	"flag"
	"fmt"
	"os"

	"fluidicl/internal/analysis"
	"fluidicl/internal/passes"
	"fluidicl/internal/polybench"
)

func main() {
	builtin := flag.Bool("builtin", false, "lint the shipped kernel sources (Polybench suite and the FluidiCL merge kernel)")
	summary := flag.Bool("summary", false, "print per-kernel buffer access summaries and barrier reports")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fluidilint [-summary] [-builtin] [file.cl...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if !*builtin && flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	ndiags := 0
	lint := func(name, src string) {
		ps, err := analysis.AnalyzeSource(src, name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			ndiags++
			return
		}
		for _, d := range ps.Diags {
			fmt.Println(d)
		}
		ndiags += len(ps.Diags)
		if *summary {
			for _, kn := range ps.Order {
				fmt.Print(ps.Kernels[kn])
			}
		}
	}

	if *builtin {
		for _, s := range polybench.Sources() {
			lint("builtin:"+s.Name, s.Src)
		}
		lint("builtin:fcl_merge", passes.MergeKernelSource)
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fluidilint:", err)
			os.Exit(2)
		}
		lint(path, string(data))
	}

	if ndiags > 0 {
		fmt.Fprintf(os.Stderr, "fluidilint: %d diagnostic(s)\n", ndiags)
		os.Exit(1)
	}
}
