// Command fluidilint runs FluidiCL's static kernel analyzer over MiniCL
// sources and reports lint diagnostics with file:line:col positions. It
// exits non-zero when any diagnostic (or parse/sema error) is found, so it
// can gate CI.
//
// Usage:
//
//	fluidilint [flags] file.cl...   # lint MiniCL source files
//	fluidilint -builtin             # lint every shipped kernel source
//	                                # (Polybench suite + the merge kernel)
//	fluidilint -summary file.cl     # also print buffer access summaries
//	fluidilint -json file.cl        # machine-readable diags + summaries
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"fluidicl/internal/analysis"
	"fluidicl/internal/passes"
	"fluidicl/internal/polybench"
)

// The -json output mirrors the analyzer's full result: every diagnostic
// and, per kernel, the per-argument access classification with the strided
// reference/reject lists the runtime's transfer planner and certificates
// consume. Reasons in "rejects" are the analyzer's stable machine-readable
// reason strings (non-affine, loop-carried, indirect, iv-bound, iv-step).
type jsonRef struct {
	Store    bool   `json:"store"`
	AlsoRead bool   `json:"also_read,omitempty"`
	MayOnly  bool   `json:"may_only,omitempty"`
	Guards   int    `json:"guards,omitempty"`
	Form     string `json:"form"`
	Pos      string `json:"pos"`
}

type jsonReject struct {
	Reason string `json:"reason"`
	Store  bool   `json:"store"`
	Pos    string `json:"pos"`
}

type jsonArg struct {
	Name           string       `json:"name"`
	Index          int          `json:"index"`
	Space          string       `json:"space"`
	Elem           string       `json:"elem"`
	Read           bool         `json:"read"`
	Written        bool         `json:"written"`
	SlotExact      bool         `json:"slot_exact"`
	WritesComplete bool         `json:"writes_complete"`
	ReadsComplete  bool         `json:"reads_complete"`
	Refs           []jsonRef    `json:"refs,omitempty"`
	Rejects        []jsonReject `json:"rejects,omitempty"`
}

type jsonKernel struct {
	Name             string    `json:"name"`
	Params           []string  `json:"params"`
	Races            int       `json:"races"`
	LocalStores      bool      `json:"local_stores"`
	DivergentBarrier bool      `json:"divergent_barrier"`
	Args             []jsonArg `json:"args"`
}

type jsonDiag struct {
	Pos     string `json:"pos"`
	Message string `json:"message"`
}

type jsonFile struct {
	Name    string       `json:"name"`
	Error   string       `json:"error,omitempty"`
	Diags   []jsonDiag   `json:"diags"`
	Kernels []jsonKernel `json:"kernels"`
}

type jsonReport struct {
	Files     []jsonFile `json:"files"`
	DiagCount int        `json:"diag_count"`
}

func jsonify(name string, ps *analysis.ProgramSummary, err error) jsonFile {
	f := jsonFile{Name: name, Diags: []jsonDiag{}, Kernels: []jsonKernel{}}
	if err != nil {
		f.Error = err.Error()
		return f
	}
	for _, d := range ps.Diags {
		f.Diags = append(f.Diags, jsonDiag{Pos: fmt.Sprintf("%s:%s", d.File, d.Pos), Message: d.Msg})
	}
	for _, kn := range ps.Order {
		ks := ps.Kernels[kn]
		jk := jsonKernel{
			Name:             ks.Name,
			Params:           ks.Params,
			Races:            ks.Races,
			LocalStores:      ks.LocalStores,
			DivergentBarrier: ks.HasDivergentBarrier(),
			Args:             []jsonArg{},
		}
		for i := range ks.Args {
			a := &ks.Args[i]
			ja := jsonArg{
				Name:           a.Name,
				Index:          a.Index,
				Space:          a.Space.String(),
				Elem:           a.Elem.String(),
				Read:           a.Read,
				Written:        a.Written,
				SlotExact:      a.SlotExact,
				WritesComplete: a.WritesComplete(),
				ReadsComplete:  a.ReadsComplete(),
			}
			for j := range a.Refs {
				r := &a.Refs[j]
				ja.Refs = append(ja.Refs, jsonRef{
					Store:    r.Store,
					AlsoRead: r.AlsoRead,
					MayOnly:  r.MayOnly,
					Guards:   len(r.Guards),
					Form:     r.String(ks.Params),
					Pos:      r.Pos.String(),
				})
			}
			for _, rej := range a.Rejects {
				ja.Rejects = append(ja.Rejects, jsonReject{
					Reason: rej.Reason,
					Store:  rej.Store,
					Pos:    rej.Pos.String(),
				})
			}
			jk.Args = append(jk.Args, ja)
		}
		f.Kernels = append(f.Kernels, jk)
	}
	return f
}

func main() {
	builtin := flag.Bool("builtin", false, "lint the shipped kernel sources (Polybench suite and the FluidiCL merge kernel)")
	summary := flag.Bool("summary", false, "print per-kernel buffer access summaries and barrier reports")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report (diags plus per-argument strided summaries) on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fluidilint [-summary] [-json] [-builtin] [file.cl...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if !*builtin && flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	rep := jsonReport{Files: []jsonFile{}}
	ndiags := 0
	lint := func(name, src string) {
		ps, err := analysis.AnalyzeSource(src, name)
		if *jsonOut {
			rep.Files = append(rep.Files, jsonify(name, ps, err))
		}
		if err != nil {
			if !*jsonOut {
				fmt.Fprintln(os.Stderr, err)
			}
			ndiags++
			return
		}
		if !*jsonOut {
			for _, d := range ps.Diags {
				fmt.Println(d)
			}
		}
		ndiags += len(ps.Diags)
		if *summary && !*jsonOut {
			for _, kn := range ps.Order {
				fmt.Print(ps.Kernels[kn])
			}
		}
	}

	if *builtin {
		for _, s := range polybench.Sources() {
			lint("builtin:"+s.Name, s.Src)
		}
		lint("builtin:fcl_merge", passes.MergeKernelSource)
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fluidilint:", err)
			os.Exit(2)
		}
		lint(path, string(data))
	}

	if *jsonOut {
		rep.DiagCount = ndiags
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "fluidilint:", err)
			os.Exit(2)
		}
	}

	if ndiags > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "fluidilint: %d diagnostic(s)\n", ndiags)
		}
		os.Exit(1)
	}
}
