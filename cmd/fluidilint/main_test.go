package main

import (
	"encoding/json"
	"strings"
	"testing"

	"fluidicl/internal/analysis"
)

// TestJSONReportSchema pins the -json report shape: diagnostics (including
// the strided out-of-bounds lint), per-argument strided refs with their
// rendered forms, and machine-readable reject reasons.
func TestJSONReportSchema(t *testing.T) {
	const src = `
__kernel void mix(__global float* out, __global float* in, __global int* idx, int n) {
    int g = get_global_id(0);
    out[g*2 - 4] = in[g];
    out[idx[g]] = 1.0f;
}
`
	ps, err := analysis.AnalyzeSource(src, "mix.cl")
	if err != nil {
		t.Fatal(err)
	}
	f := jsonify("mix.cl", ps, nil)
	data, err := json.Marshal(jsonReport{Files: []jsonFile{f}, DiagCount: len(ps.Diags)})
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)

	if !strings.Contains(s, "provably out of bounds") {
		t.Errorf("JSON report lacks the strided out-of-bounds diagnostic:\n%s", s)
	}
	if !strings.Contains(s, `"reason":"indirect"`) {
		t.Errorf("JSON report lacks the indirect store reject:\n%s", s)
	}
	if !strings.Contains(s, `"writes_complete":false`) {
		t.Errorf("out must not be writes-complete (indirect store):\n%s", s)
	}
	if !strings.Contains(s, `"form":"store 2*gid0 + -4"`) &&
		!strings.Contains(s, `"form":"store -4 + 2*gid0"`) {
		t.Errorf("JSON report lacks the rendered strided store form:\n%s", s)
	}

	var round jsonReport
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(round.Files) != 1 || len(round.Files[0].Kernels) != 1 {
		t.Fatalf("unexpected report shape: %+v", round)
	}
	k := round.Files[0].Kernels[0]
	if k.Name != "mix" || len(k.Args) != 3 {
		t.Fatalf("unexpected kernel shape: %+v", k)
	}
}
