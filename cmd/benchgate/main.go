// Command benchgate compares a fresh `fluidibench -jsonout` run against a
// committed baseline and fails when any experiment's wall clock regressed
// past a tolerance. scripts/bench_gate.sh wires it into `make bench-gate`
// and the non-blocking CI job.
//
// Only wall_seconds is compared: it is the one host-time (noisy) field, and
// the gate exists to catch performance regressions in the simulator itself.
// The virtual-time fields in the JSON are deterministic and are regression-
// tested by the golden trace and determinism tests instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type entry struct {
	ID          string  `json:"id"`
	WallSeconds float64 `json:"wall_seconds"`
}

func load(path string) (map[string]float64, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var entries []entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := map[string]float64{}
	var order []string
	for _, e := range entries {
		m[e.ID] = e.WallSeconds
		order = append(order, e.ID)
	}
	return m, order, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_02.json", "committed baseline JSON")
	current := flag.String("current", "", "fresh fluidibench -jsonout JSON")
	tolPct := flag.Float64("tol", 25, "allowed wall-clock regression, percent")
	minSec := flag.Float64("min", 0.05, "ignore experiments faster than this baseline wall clock (too noisy to gate)")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	base, order, err := load(*baseline)
	if err != nil {
		fatal(err)
	}
	cur, _, err := load(*current)
	if err != nil {
		fatal(err)
	}
	regressions := 0
	for _, id := range order {
		b := base[id]
		c, ok := cur[id]
		if !ok {
			fmt.Printf("benchgate: %-12s missing from current run\n", id)
			regressions++
			continue
		}
		switch {
		case b < *minSec:
			fmt.Printf("benchgate: %-12s %8.3fs -> %8.3fs (below %.2fs floor, not gated)\n", id, b, c, *minSec)
		case c > b*(1+*tolPct/100):
			fmt.Printf("benchgate: %-12s %8.3fs -> %8.3fs  REGRESSION (+%.0f%%, tolerance %.0f%%)\n",
				id, b, c, (c/b-1)*100, *tolPct)
			regressions++
		default:
			fmt.Printf("benchgate: %-12s %8.3fs -> %8.3fs (%+.0f%%)\n", id, b, c, (c/b-1)*100)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d experiment(s) regressed past %.0f%% tolerance\n", regressions, *tolPct)
		os.Exit(1)
	}
	fmt.Printf("benchgate: all %d experiments within %.0f%% of baseline\n", len(order), *tolPct)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
