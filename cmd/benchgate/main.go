// Command benchgate compares a fresh `fluidibench -jsonout` run against a
// committed baseline and fails when any experiment's wall clock regressed
// past a tolerance. scripts/bench_gate.sh wires it into `make bench-gate`
// and the non-blocking CI job.
//
// Only wall_seconds is compared: it is the one host-time (noisy) field, and
// the gate exists to catch performance regressions in the simulator itself.
// The virtual-time fields in the JSON are deterministic and are regression-
// tested by the golden trace and determinism tests instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type entry struct {
	ID          string  `json:"id"`
	WallSeconds float64 `json:"wall_seconds"`
}

func load(path string) (map[string]float64, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var entries []entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := map[string]float64{}
	var order []string
	for _, e := range entries {
		m[e.ID] = e.WallSeconds
		order = append(order, e.ID)
	}
	return m, order, nil
}

// row is one experiment's gate verdict, serialized by -jsonout so CI can
// archive machine-readable results next to the log.
type row struct {
	ID              string  `json:"id"`
	BaselineSeconds float64 `json:"baseline_seconds"`
	CurrentSeconds  float64 `json:"current_seconds"`
	DeltaPct        float64 `json:"delta_pct"`
	// Status is "ok", "regression", "not_gated" (below the noise floor) or
	// "missing" (absent from the current run).
	Status string `json:"status"`
}

func main() {
	baseline := flag.String("baseline", "BENCH_02.json", "committed baseline JSON")
	current := flag.String("current", "", "fresh fluidibench -jsonout JSON")
	tolPct := flag.Float64("tol", 25, "allowed wall-clock regression, percent")
	minSec := flag.Float64("min", 0.05, "ignore experiments faster than this baseline wall clock (too noisy to gate)")
	jsonOut := flag.String("jsonout", "", "write per-experiment gate verdicts as JSON to this file")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	base, order, err := load(*baseline)
	if err != nil {
		fatal(err)
	}
	cur, _, err := load(*current)
	if err != nil {
		fatal(err)
	}
	var rows []row
	regressions := 0
	for _, id := range order {
		b := base[id]
		c, ok := cur[id]
		r := row{ID: id, BaselineSeconds: b, CurrentSeconds: c}
		if b > 0 {
			r.DeltaPct = (c/b - 1) * 100
		}
		switch {
		case !ok:
			fmt.Printf("benchgate: %-12s missing from current run\n", id)
			r.Status = "missing"
			regressions++
		case b < *minSec:
			fmt.Printf("benchgate: %-12s %8.3fs -> %8.3fs (below %.2fs floor, not gated)\n", id, b, c, *minSec)
			r.Status = "not_gated"
		case c > b*(1+*tolPct/100):
			fmt.Printf("benchgate: %-12s %8.3fs -> %8.3fs  REGRESSION (+%.0f%%, tolerance %.0f%%)\n",
				id, b, c, (c/b-1)*100, *tolPct)
			r.Status = "regression"
			regressions++
		default:
			fmt.Printf("benchgate: %-12s %8.3fs -> %8.3fs (%+.0f%%)\n", id, b, c, (c/b-1)*100)
			r.Status = "ok"
		}
		rows = append(rows, r)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	writeStepSummary(rows, *tolPct, regressions)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d experiment(s) regressed past %.0f%% tolerance\n", regressions, *tolPct)
		os.Exit(1)
	}
	fmt.Printf("benchgate: all %d experiments within %.0f%% of baseline\n", len(order), *tolPct)
}

// writeStepSummary appends a markdown verdict table to the GitHub Actions
// step summary when running in CI ($GITHUB_STEP_SUMMARY set); a no-op
// elsewhere. Write failures only warn — the summary is cosmetic and must
// never flip the gate's exit status.
func writeStepSummary(rows []row, tolPct float64, regressions int) {
	path := os.Getenv("GITHUB_STEP_SUMMARY")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: step summary:", err)
		return
	}
	defer f.Close()
	verdict := fmt.Sprintf("all %d experiments within %.0f%% of baseline", len(rows), tolPct)
	if regressions > 0 {
		verdict = fmt.Sprintf("%d experiment(s) regressed past %.0f%% tolerance", regressions, tolPct)
	}
	fmt.Fprintf(f, "## bench-gate: %s\n\n", verdict)
	fmt.Fprintln(f, "| experiment | baseline | current | delta | status |")
	fmt.Fprintln(f, "|---|---:|---:|---:|---|")
	for _, r := range rows {
		status := r.Status
		if status == "regression" || status == "missing" {
			status = "**" + status + "**"
		}
		fmt.Fprintf(f, "| %s | %.3fs | %.3fs | %+.0f%% | %s |\n",
			r.ID, r.BaselineSeconds, r.CurrentSeconds, r.DeltaPct, status)
	}
	fmt.Fprintln(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
