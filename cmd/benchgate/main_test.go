package main

import (
	"os"
	"path/filepath"
	"testing"
)

// The baseline format changed from dense (every counter present, zeros
// included — BENCH_01..BENCH_04) to sparse (zero counters omitted —
// BENCH_05 onward). The gate must read both, since it compares a fresh
// sparse run against whichever baseline generation is committed.
const denseFixture = `[
  {
    "id": "fig2",
    "wall_seconds": 1.5,
    "uploads_skipped": 0,
    "prime_copies_elided": 0,
    "ship_bytes_skipped": 0,
    "merge_words_elided": 0,
    "fluidicl_runs": 12,
    "cpu_busy_seconds": 0,
    "wg_loop_wgs": 0,
    "wg_fallback_wgs": 0
  },
  {
    "id": "table1",
    "wall_seconds": 0.25,
    "uploads_skipped": 3,
    "fluidicl_runs": 4
  }
]`

const sparseFixture = `[
  {
    "id": "fig2",
    "wall_seconds": 1.6,
    "fluidicl_runs": 12,
    "wg_fused_blocks": 9,
    "wg_fused_steps": 180
  },
  {
    "id": "table1",
    "wall_seconds": 0.24,
    "uploads_skipped": 3
  }
]`

func writeFixture(t *testing.T, name, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadDenseAndSparse(t *testing.T) {
	for _, tc := range []struct {
		name, body string
		fig2       float64
		table1     float64
	}{
		{"dense", denseFixture, 1.5, 0.25},
		{"sparse", sparseFixture, 1.6, 0.24},
	} {
		walls, order, err := load(writeFixture(t, tc.name+".json", tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(order) != 2 || order[0] != "fig2" || order[1] != "table1" {
			t.Fatalf("%s: order = %v", tc.name, order)
		}
		if walls["fig2"] != tc.fig2 || walls["table1"] != tc.table1 {
			t.Fatalf("%s: walls = %v", tc.name, walls)
		}
	}
}

// A sparse current run gated against a dense baseline (and vice versa)
// must agree on IDs and wall clocks; gate() is exercised end to end by
// scripts/bench_gate.sh, so here we only pin the cross-format contract the
// gate depends on: identical ID sets and comparable wall_seconds.
func TestDenseSparseCrossFormat(t *testing.T) {
	dw, dOrder, err := load(writeFixture(t, "dense.json", denseFixture))
	if err != nil {
		t.Fatal(err)
	}
	sw, sOrder, err := load(writeFixture(t, "sparse.json", sparseFixture))
	if err != nil {
		t.Fatal(err)
	}
	if len(dOrder) != len(sOrder) {
		t.Fatalf("ID sets differ: %v vs %v", dOrder, sOrder)
	}
	for i, id := range dOrder {
		if sOrder[i] != id {
			t.Fatalf("ID order differs at %d: %q vs %q", i, id, sOrder[i])
		}
		if dw[id] <= 0 || sw[id] <= 0 {
			t.Fatalf("%s: non-positive wall clock (dense %v, sparse %v)", id, dw[id], sw[id])
		}
	}
}
