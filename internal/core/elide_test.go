package core

import (
	"testing"

	"fluidicl/internal/device"
	"fluidicl/internal/sim"
	"fluidicl/internal/vm"
)

// TestUploadSkippedForFullOverwriteOut crafts the stale-output scenario:
// kernel 1 completes entirely on the CPU (GPU crippled), leaving its out
// buffer CPU-resident, then the same kernel runs again on the same buffer.
// The second launch's upload of the stale GPU copy is dead — the summary
// proves every byte is overwritten — so the runtime must skip it and still
// produce the right answer.
func TestUploadSkippedForFullOverwriteOut(t *testing.T) {
	env := sim.NewEnv()
	gpu := device.TeslaC2070()
	gpu.KernelLaunchOverhead = 20e-3 // slow to start; CPU wins kernel 1
	rt := MustNew(env, device.New(env, device.XeonW3550()), device.New(env, gpu), Options{})
	prog, err := rt.BuildProgram(twoKernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	k1 := prog.MustKernel("k1")
	n := 128
	a := make([]float32, n)
	for i := range a {
		a[i] = 3
	}
	bufA, bufB := rt.CreateBuffer(4*n), rt.CreateBuffer(4*n)
	var out []byte
	env.Go("app", func(p *sim.Proc) {
		rt.EnqueueWriteBuffer(p, bufA, f32buf(a...))
		nd := vm.NewNDRange1D(n, 16)
		for rep := 0; rep < 2; rep++ {
			if err := rt.EnqueueNDRangeKernel(p, k1, nd, []Arg{BufArg(bufA), BufArg(bufB), IntArg(int64(n))}); err != nil {
				t.Error(err)
				return
			}
		}
		out = rt.EnqueueReadBuffer(p, bufB)
	})
	env.Run()
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	if out == nil {
		t.Fatal("app did not complete")
	}
	if !rt.Reports[0].CPUDidAll {
		t.Skip("GPU unexpectedly won kernel 1; scenario not exercised")
	}
	for i := 0; i < n; i++ {
		if got := f32at(out, i); got != 6 {
			t.Fatalf("b[%d] = %v, want 6", i, got)
		}
	}
	if c := rt.Counters(); c.UploadsSkipped == 0 {
		t.Fatalf("stale full-overwrite out buffer was uploaded anyway: %+v", c)
	}
}
