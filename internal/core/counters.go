package core

import (
	"sync/atomic"

	"fluidicl/internal/vm"
)

// Counters tallies the transfer and merge work the runtime elided because
// the static kernel analyzer (package analysis) proved it unnecessary. All
// fields are updated atomically: the CPU scheduler thread and the enqueue
// path both record elisions.
type Counters struct {
	// UploadsSkipped counts host-to-GPU refreshes of stale out buffers that
	// were skipped because the kernel provably overwrites the whole buffer.
	UploadsSkipped int64
	// PrimeCopiesElided counts cpuCopy scratch primes skipped because the
	// narrowed merge window is fully covered by shipped CPU data.
	PrimeCopiesElided int64
	// ShipBytesSkipped counts bytes NOT sent CPU-to-GPU because subkernel
	// ships were narrowed to the slot range the subkernel wrote.
	ShipBytesSkipped int64
	// MergeWordsElided counts 4-byte words excluded from merge-kernel
	// launches by the analyzer-narrowed merge window.
	MergeWordsElided int64
	// SplitsUnvetoed counts launches whose work-group splitting was allowed
	// only because the strided disjointness certificate overturned a
	// conservative race veto.
	SplitsUnvetoed int64
	// RefreshBytesSkipped counts bytes the N-way delta-refresh planner did
	// NOT rebroadcast after kernels, relative to the old full per-device
	// refresh: per out buffer and device, the buffer size minus that
	// device's dirty delta (owner-skip plus unchanged words), plus pending
	// deltas dropped outright under a full-overwrite certificate.
	RefreshBytesSkipped int64
	// RefreshDeltas counts the delta scatter-writes ("refresh" transfers)
	// the planner enqueued to bring a stale device copy current.
	RefreshDeltas int64

	// VM backend activity (process-global, from vm.BackendSnapshot; only
	// CounterSnapshot fills these). ClosureWGs/InterpWGs count work-group
	// executions per engine; FusedInstrs/TotalInstrs report static
	// superinstruction coverage across kernel compilations.
	ClosureWGs  int64
	InterpWGs   int64
	FusedInstrs int64
	TotalInstrs int64

	// Whole-work-group compilation activity. WGLoopWGs counts work-groups
	// the lockstep engine executed; WGFallbackWGs counts wg-backend
	// dispatches that fell back to a per-item engine (uncompiled kernel or
	// failed noninterference certificate); WGKernels/WGRegions report how
	// many compiled kernels lowered to barrier-region loops and how many
	// regions they split into.
	WGLoopWGs     int64
	WGFallbackWGs int64
	WGKernels     int64
	WGRegions     int64

	// WGStridedWGs counts work-groups the strided disjointness certificate
	// admitted to the lockstep engine after the identical-form certificate
	// failed. The WGCertRej* fields attribute every wg-backend fallback to
	// one machine-readable reason (vm.WGReject).
	WGStridedWGs      int64
	WGCertRejShape    int64
	WGCertRejAlias    int64
	WGCertRejNoSum    int64
	WGCertRejLocal    int64
	WGCertRejUnkStore int64
	WGCertRejUnkRead  int64
	WGCertRejOverlap  int64
	WGCertRejBudget   int64

	// Region-fusion coverage of the wg engine (vm wgfuse pass), attributed
	// at wg-compile time: blocks lowered to a single fused closure, the
	// instructions those blocks cover, and body instructions left on the
	// per-step fallback path.
	WGFusedBlocks       int64
	WGFusedSteps        int64
	WGFuseFallbackSteps int64
}

// globalCounters accumulates across every Runtime in the process, so
// harness tools can snapshot deltas around an experiment without plumbing
// runtime handles through.
var globalCounters Counters

// CounterSnapshot returns the process-wide elision counters plus the VM
// backend activity counters.
func CounterSnapshot() Counters {
	b := vm.BackendSnapshot()
	return Counters{
		UploadsSkipped:      atomic.LoadInt64(&globalCounters.UploadsSkipped),
		PrimeCopiesElided:   atomic.LoadInt64(&globalCounters.PrimeCopiesElided),
		ShipBytesSkipped:    atomic.LoadInt64(&globalCounters.ShipBytesSkipped),
		MergeWordsElided:    atomic.LoadInt64(&globalCounters.MergeWordsElided),
		SplitsUnvetoed:      atomic.LoadInt64(&globalCounters.SplitsUnvetoed),
		RefreshBytesSkipped: atomic.LoadInt64(&globalCounters.RefreshBytesSkipped),
		RefreshDeltas:       atomic.LoadInt64(&globalCounters.RefreshDeltas),
		ClosureWGs:          b.ClosureWGs,
		InterpWGs:           b.InterpWGs,
		FusedInstrs:         b.FusedInstrs,
		TotalInstrs:         b.TotalInstrs,
		WGLoopWGs:           b.WGLoopWGs,
		WGFallbackWGs:       b.WGFallbackWGs,
		WGKernels:           b.WGKernels,
		WGRegions:           b.WGRegions,
		WGStridedWGs:        b.WGStridedWGs,
		WGCertRejShape:      b.WGRejects[vm.WGRejShape],
		WGCertRejAlias:      b.WGRejects[vm.WGRejAlias],
		WGCertRejNoSum:      b.WGRejects[vm.WGRejNoSummary],
		WGCertRejLocal:      b.WGRejects[vm.WGRejLocalStore],
		WGCertRejUnkStore:   b.WGRejects[vm.WGRejUnknownStore],
		WGCertRejUnkRead:    b.WGRejects[vm.WGRejUnknownRead],
		WGCertRejOverlap:    b.WGRejects[vm.WGRejOverlap],
		WGCertRejBudget:     b.WGRejects[vm.WGRejBudget],
		WGFusedBlocks:       b.WGFusedBlocks,
		WGFusedSteps:        b.WGFusedSteps,
		WGFuseFallbackSteps: b.WGFuseFallbackSteps,
	}
}

// Sub returns c - o, for before/after snapshots around one experiment.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		UploadsSkipped:      c.UploadsSkipped - o.UploadsSkipped,
		PrimeCopiesElided:   c.PrimeCopiesElided - o.PrimeCopiesElided,
		ShipBytesSkipped:    c.ShipBytesSkipped - o.ShipBytesSkipped,
		MergeWordsElided:    c.MergeWordsElided - o.MergeWordsElided,
		SplitsUnvetoed:      c.SplitsUnvetoed - o.SplitsUnvetoed,
		RefreshBytesSkipped: c.RefreshBytesSkipped - o.RefreshBytesSkipped,
		RefreshDeltas:       c.RefreshDeltas - o.RefreshDeltas,
		ClosureWGs:          c.ClosureWGs - o.ClosureWGs,
		InterpWGs:           c.InterpWGs - o.InterpWGs,
		FusedInstrs:         c.FusedInstrs - o.FusedInstrs,
		TotalInstrs:         c.TotalInstrs - o.TotalInstrs,
		WGLoopWGs:           c.WGLoopWGs - o.WGLoopWGs,
		WGFallbackWGs:       c.WGFallbackWGs - o.WGFallbackWGs,
		WGKernels:           c.WGKernels - o.WGKernels,
		WGRegions:           c.WGRegions - o.WGRegions,
		WGStridedWGs:        c.WGStridedWGs - o.WGStridedWGs,
		WGCertRejShape:      c.WGCertRejShape - o.WGCertRejShape,
		WGCertRejAlias:      c.WGCertRejAlias - o.WGCertRejAlias,
		WGCertRejNoSum:      c.WGCertRejNoSum - o.WGCertRejNoSum,
		WGCertRejLocal:      c.WGCertRejLocal - o.WGCertRejLocal,
		WGCertRejUnkStore:   c.WGCertRejUnkStore - o.WGCertRejUnkStore,
		WGCertRejUnkRead:    c.WGCertRejUnkRead - o.WGCertRejUnkRead,
		WGCertRejOverlap:    c.WGCertRejOverlap - o.WGCertRejOverlap,
		WGCertRejBudget:     c.WGCertRejBudget - o.WGCertRejBudget,
		WGFusedBlocks:       c.WGFusedBlocks - o.WGFusedBlocks,
		WGFusedSteps:        c.WGFusedSteps - o.WGFusedSteps,
		WGFuseFallbackSteps: c.WGFuseFallbackSteps - o.WGFuseFallbackSteps,
	}
}

// Counters returns this runtime's elision counters.
func (r *Runtime) Counters() Counters {
	return Counters{
		UploadsSkipped:    atomic.LoadInt64(&r.ctr.UploadsSkipped),
		PrimeCopiesElided: atomic.LoadInt64(&r.ctr.PrimeCopiesElided),
		ShipBytesSkipped:  atomic.LoadInt64(&r.ctr.ShipBytesSkipped),
		MergeWordsElided:  atomic.LoadInt64(&r.ctr.MergeWordsElided),
		SplitsUnvetoed:    atomic.LoadInt64(&r.ctr.SplitsUnvetoed),
	}
}

func (r *Runtime) countUploadSkipped() {
	atomic.AddInt64(&r.ctr.UploadsSkipped, 1)
	atomic.AddInt64(&globalCounters.UploadsSkipped, 1)
}

func (r *Runtime) countPrimeElided() {
	atomic.AddInt64(&r.ctr.PrimeCopiesElided, 1)
	atomic.AddInt64(&globalCounters.PrimeCopiesElided, 1)
}

func (r *Runtime) countShipBytesSkipped(n int64) {
	atomic.AddInt64(&r.ctr.ShipBytesSkipped, n)
	atomic.AddInt64(&globalCounters.ShipBytesSkipped, n)
}

func (r *Runtime) countSplitUnvetoed() {
	atomic.AddInt64(&r.ctr.SplitsUnvetoed, 1)
	atomic.AddInt64(&globalCounters.SplitsUnvetoed, 1)
}

func (r *Runtime) countMergeWordsElided(n int64) {
	atomic.AddInt64(&r.ctr.MergeWordsElided, n)
	atomic.AddInt64(&globalCounters.MergeWordsElided, n)
}
