// Package core implements FluidiCL, the paper's contribution: an OpenCL-like
// runtime that takes a program written for a single device and executes each
// kernel cooperatively on both the CPU and the GPU (Pandit & Govindarajan,
// "Fluidic Kernels", CGO 2014).
//
// The runtime sits above two vendor-runtime-shaped contexts (package ocl),
// one per device, exactly as the paper's Figure 4 shows. For every kernel
// enqueue it:
//
//   - launches the transformed kernel over the full NDRange on the GPU,
//     whose work-groups abort when the CPU's completion status covers them;
//   - runs a CPU scheduler thread that repeatedly launches subkernels over
//     chunks of work-groups from the highest flattened work-group ID down,
//     with adaptive chunk sizing (§5.1), sending computed data followed by a
//     status message to the GPU after each subkernel (§4.2);
//   - merges the two devices' results on the GPU with a generated
//     diff-merge kernel (§4.3, Fig. 9) and returns the final data to the
//     host on a dedicated device-to-host thread (§5.6);
//   - tracks buffer versions and data location so multi-kernel programs
//     stay coherent without programmer effort (§5.3, §6.2).
package core

import (
	"fmt"
	"sync"

	"fluidicl/internal/analysis"
	"fluidicl/internal/clc"
	"fluidicl/internal/device"
	"fluidicl/internal/ocl"
	"fluidicl/internal/passes"
	"fluidicl/internal/sim"
	"fluidicl/internal/vm"
)

// Options configures the runtime. The zero value selects the paper's
// defaults via New.
type Options struct {
	// InitialChunkPct is the first CPU subkernel's share of the total
	// work-groups, in percent (§5.1; default 2).
	InitialChunkPct float64
	// StepPct is the adaptive chunk-size increment, in percent (default 2).
	// A negative value means a constant chunk size (the paper's "step size
	// of 0%": every subkernel keeps the initial allocation).
	StepPct float64
	// AbortInLoops enables GPU work-group aborts inside innermost loops
	// (§6.4; default on). Setting NoAbortInLoops disables it.
	NoAbortInLoops bool
	// NoUnroll disables loop unrolling around in-loop abort checks (§6.5).
	NoUnroll bool
	// UnrollFactor is the unroll factor (default 4).
	UnrollFactor int
	// NoWorkGroupSplit disables CPU work-group splitting (§6.3).
	NoWorkGroupSplit bool
	// OnlineProfiling enables timing of alternate CPU kernel versions and
	// automatic selection of the fastest (§6.6). Off by default, as in the
	// paper's headline results.
	OnlineProfiling bool
	// Backend selects the VM execution engine for every launch this runtime
	// issues (vm.BackendAuto uses the process default). Both backends
	// produce identical stats and therefore identical virtual time; the
	// knob exists for wall-clock comparison and fallback testing.
	Backend vm.Backend
}

func (o Options) withDefaults() Options {
	if o.InitialChunkPct <= 0 {
		o.InitialChunkPct = 2
	}
	switch {
	case o.StepPct < 0:
		o.StepPct = 0
	case o.StepPct == 0:
		o.StepPct = 2
	}
	if o.UnrollFactor <= 0 {
		o.UnrollFactor = 4
	}
	return o
}

// KernelReport records one cooperative kernel execution, for the
// experiment harness and for tests.
type KernelReport struct {
	KID         int
	Name        string
	TotalWGs    int
	GPUExecuted int
	GPUSkipped  int
	GPUAborted  int
	CPUWGs      int // work-groups completed by CPU subkernels
	Subkernels  int
	CPUDidAll   bool
	VariantUsed int
	// DeviceWGs is the per-device work-group count, indexed by topology
	// device position (N-way runtime only; nil for the twin runtime).
	DeviceWGs []int
	// Delta-refresh planner activity (N-way runtime only): RefreshDeltas
	// counts the delta flushes this kernel's prologue enqueued to bring
	// stale device copies current; RefreshBytesSkipped counts the bytes its
	// commit did not rebroadcast relative to a full per-device refresh.
	RefreshDeltas       int64
	RefreshBytesSkipped int64
	Start, End          sim.Time
}

// Runtime is a FluidiCL instance bound to one CPU and one GPU device.
type Runtime struct {
	Env *sim.Env
	cpu *ocl.Context
	gpu *ocl.Context

	gpuApp *ocl.CommandQueue // application GPU queue: kernels + merges
	gpuHD  *ocl.CommandQueue // host-to-device queue: CPU data + status (§5.4)
	gpuDH  *ocl.CommandQueue // device-to-host queue: merged results (§5.4)
	cpuQ   *ocl.CommandQueue // CPU device queue

	opts      Options
	mergeProg *ocl.Program
	mergeK    *ocl.Kernel
	statusBuf *ocl.Buffer

	pool        *bufferPool
	kernelSeq   int
	deferredErr error // CPU-side failure noticed after a kernel call returned
	trace       *Trace
	fclTrk      int      // recorder track id + 1 for runtime instants (0 = unregistered)
	ctr         Counters // analyzer-enabled elision counters (atomic)

	Reports []*KernelReport
}

// Err returns any deferred error noticed after a kernel call returned: a
// late CPU/GPU-side failure, or a dynamic access that violated the static
// kernel summary an elision relied on. Callers should check it after the
// final kernel completes.
func (r *Runtime) Err() error { return r.deferredErr }

// New creates a FluidiCL runtime over the given devices.
func New(env *sim.Env, cpuDev, gpuDev *device.Device, opts Options) (*Runtime, error) {
	r := &Runtime{
		Env:  env,
		cpu:  ocl.NewContext(env, cpuDev),
		gpu:  ocl.NewContext(env, gpuDev),
		opts: opts.withDefaults(),
	}
	r.gpuApp = r.gpu.CreateQueue("app")
	r.gpuHD = r.gpu.CreateQueue("hd")
	r.gpuDH = r.gpu.CreateQueue("dh")
	r.cpuQ = r.cpu.CreateQueue("app")
	var err error
	r.mergeProg, err = r.gpu.BuildProgram(passes.MergeKernelSource)
	if err != nil {
		return nil, fmt.Errorf("core: building merge kernel: %w", err)
	}
	r.mergeK, err = r.mergeProg.CreateKernel(passes.MergeKernelName)
	if err != nil {
		return nil, err
	}
	r.statusBuf = r.gpu.CreateBuffer(4 * passes.StatusWords)
	r.pool = &bufferPool{ctx: r.gpu}
	return r, nil
}

// MustNew is New for known-good configurations.
func MustNew(env *sim.Env, cpuDev, gpuDev *device.Device, opts Options) *Runtime {
	r, err := New(env, cpuDev, gpuDev, opts)
	if err != nil {
		panic(err)
	}
	return r
}

// ---- buffers ----

// Buffer is a FluidiCL memory object: one buffer per device plus a host
// shadow, with version and location tracking (§5.3, §6.2).
type Buffer struct {
	rt   *Runtime
	Size int

	gpuBuf *ocl.Buffer
	cpuBuf *ocl.Buffer
	host   []byte // host shadow: valid when receivedVersion == expectedVersion

	expectedVersion int // kernel ID expected to produce the next contents
	receivedVersion int // version present in the host shadow / CPU buffer
	gpuVersion      int // version present on the GPU

	locCPU bool // most recent data available on the CPU side
	locGPU bool // most recent data available on the GPU

	cpuReady *sim.Event // fires when receivedVersion reaches expectedVersion
}

// CreateBuffer creates a buffer on both devices (paper §4.1: clCreateBuffer
// is translated into buffer creation on both the CPU and the GPU).
func (r *Runtime) CreateBuffer(size int) *Buffer {
	b := &Buffer{
		rt:     r,
		Size:   size,
		gpuBuf: r.gpu.CreateBuffer(size),
		cpuBuf: r.cpu.CreateBuffer(size),
		host:   make([]byte, size),
		locCPU: true,
		locGPU: true,
	}
	b.cpuReady = r.Env.NewEvent()
	b.cpuReady.Fire()
	return b
}

// EnqueueWriteBuffer writes host data to both devices (§4.1: every
// clEnqueueWriteBuffer becomes two writes). The call snapshots the data and
// returns immediately; the in-order device queues sequence the transfers
// before any later kernel on that device, so each device starts as soon as
// its own copy lands (§5.5's overlap of communication with execution).
func (r *Runtime) EnqueueWriteBuffer(p *sim.Proc, b *Buffer, data []byte) {
	if len(data) > b.Size {
		panic("core: write larger than buffer")
	}
	copy(b.host, data)
	snap := append([]byte(nil), data...)
	r.gpuApp.EnqueueWriteBuffer(b.gpuBuf, snap)
	r.cpuQ.EnqueueWriteBuffer(b.cpuBuf, snap)
	b.locCPU, b.locGPU = true, true
	b.receivedVersion = b.expectedVersion
	if !b.cpuReady.Fired() {
		b.cpuReady.Fire()
	}
}

// EnqueueReadBuffer returns the buffer's current contents. Data location
// tracking (§6.2) avoids a device-to-host transfer when the most recent
// data is already on the CPU side.
func (r *Runtime) EnqueueReadBuffer(p *sim.Proc, b *Buffer) []byte {
	if b.receivedVersion == b.expectedVersion && b.locCPU {
		// Already on the host: no transfer needed.
		out := make([]byte, b.Size)
		copy(out, b.host)
		return out
	}
	// A device-to-host transfer for this version is in flight (or the data
	// lives only on the GPU): wait for readiness.
	p.Wait(b.cpuReady)
	out := make([]byte, b.Size)
	copy(out, b.host)
	return out
}

// Finish drains all runtime queues.
func (r *Runtime) Finish(p *sim.Proc) {
	p.Wait(r.gpuApp.EnqueueMarker())
	p.Wait(r.gpuHD.EnqueueMarker())
	p.Wait(r.gpuDH.EnqueueMarker())
	p.Wait(r.cpuQ.EnqueueMarker())
}

// ---- programs and kernels ----

// Program is a FluidiCL program: the original source compiled twice, once
// per device, each through its transformation pipeline.
type Program struct {
	rt      *Runtime
	Source  string
	info    *clc.ProgramInfo         // analysis of the original source
	Summary *analysis.ProgramSummary // static kernel analyzer results
	gpuProg *ocl.Program
	cpuProg *ocl.Program
	GPUSrc  string // transformed GPU source (for inspection)
	CPUSrc  string // transformed CPU source
}

// transformEntry is one cached run of the twin transformation pipelines:
// the original-source analysis plus the transformed GPU and CPU sources.
// All fields are immutable once built.
type transformEntry struct {
	info   *clc.ProgramInfo
	sum    *analysis.ProgramSummary
	gpuSrc string
	cpuSrc string
}

// transformCache memoizes the pass pipeline by (source, GPU pass options).
// Harness sweeps rebuild the same handful of benchmark programs for every
// table cell; with this cache plus ocl's compile cache, each distinct
// (source, options) pair is parsed, transformed and compiled exactly once
// per process. Virtual time is unaffected — builds happen on the host.
var transformCache struct {
	sync.Mutex
	m map[transformKey]*transformEntry
}

type transformKey struct {
	src  string
	gopt passes.GPUOptions
}

func transformProgram(src string, gopt passes.GPUOptions) (*transformEntry, error) {
	key := transformKey{src: src, gopt: gopt}
	transformCache.Lock()
	defer transformCache.Unlock()
	if e, ok := transformCache.m[key]; ok {
		return e, nil
	}
	orig, err := clc.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := clc.Check(orig)
	if err != nil {
		return nil, err
	}
	sum := analysis.AnalyzeProgram(orig, "")

	gpuAST, err := clc.Parse(src)
	if err != nil {
		return nil, err
	}
	for _, k := range gpuAST.Kernels {
		if _, err := passes.TransformGPU(k, gopt); err != nil {
			return nil, err
		}
	}

	cpuAST, err := clc.Parse(src)
	if err != nil {
		return nil, err
	}
	for _, k := range cpuAST.Kernels {
		if err := passes.TransformCPUWithSummary(k, sum.Kernels[k.Name]); err != nil {
			return nil, err
		}
	}

	e := &transformEntry{info: info, sum: sum, gpuSrc: clc.Print(gpuAST), cpuSrc: clc.Print(cpuAST)}
	if transformCache.m == nil {
		transformCache.m = map[transformKey]*transformEntry{}
	}
	transformCache.m[key] = e
	return e, nil
}

// BuildProgram compiles src for both devices (§4.1: clBuildProgram results
// in kernel compilation for both devices), applying the GPU abort-check and
// CPU range-guard transformations. Transformation and compilation are
// memoized by (source, options) across runtimes.
func (r *Runtime) BuildProgram(src string) (*Program, error) {
	gopt := passes.GPUOptions{
		AbortInLoops: !r.opts.NoAbortInLoops,
		Unroll:       !r.opts.NoAbortInLoops && !r.opts.NoUnroll,
		UnrollFactor: r.opts.UnrollFactor,
	}
	e, err := transformProgram(src, gopt)
	if err != nil {
		return nil, err
	}
	gpuProg, err := r.gpu.BuildProgram(e.gpuSrc)
	if err != nil {
		return nil, fmt.Errorf("core: GPU build: %w", err)
	}
	cpuProg, err := r.cpu.BuildProgram(e.cpuSrc)
	if err != nil {
		return nil, fmt.Errorf("core: CPU build: %w", err)
	}

	return &Program{
		rt: r, Source: src, info: e.info, Summary: e.sum,
		gpuProg: gpuProg, cpuProg: cpuProg,
		GPUSrc: e.gpuSrc, CPUSrc: e.cpuSrc,
	}, nil
}

// Kernel is a FluidiCL kernel: a transformed GPU kernel plus one or more
// CPU subkernel variants (§6.6 allows alternate CPU implementations).
type Kernel struct {
	prog *Program
	Name string
	Info *clc.KernelInfo         // original-source analysis (out/inout params)
	Sum  *analysis.KernelSummary // static analyzer summary of the original
	gpu  *ocl.Kernel
	cpu  []*ocl.Kernel // variant 0 is the original kernel

	// splitOK gates CPU work-group splitting on analyzer facts (no divergent
	// barriers, no inter-work-item race findings) on top of the syntactic
	// no-barrier / no-__local rule.
	splitOK bool
	// chkRead / chkWrite are per-original-parameter access masks (bit i =
	// parameter i may be read / written) unioned over the original kernel's
	// summary and every registered CPU variant's summary. The VM's dynamic
	// access masks are validated against them after each execution.
	chkRead, chkWrite uint64

	profiled   bool
	bestCPUVar int
}

// CreateKernel creates a kernel object by name.
func (p *Program) CreateKernel(name string) (*Kernel, error) {
	info, ok := p.info.Kernels[name]
	if !ok {
		return nil, fmt.Errorf("core: kernel %q not found", name)
	}
	gk, err := p.gpuProg.CreateKernel(name)
	if err != nil {
		return nil, err
	}
	ck, err := p.cpuProg.CreateKernel(name)
	if err != nil {
		return nil, err
	}
	sum := p.Summary.Kernels[name]
	k := &Kernel{
		prog: p, Name: name, Info: info, Sum: sum,
		gpu: gk, cpu: []*ocl.Kernel{ck},
		splitOK: passes.CanSplitWithSummary(info, sum),
	}
	k.chkRead, k.chkWrite = accessMasks(sum)
	return k, nil
}

// accessMasks flattens a kernel summary's per-argument access facts to
// bitmasks over parameter indices (parameters past bit 63 are not tracked,
// matching vm.Stats).
func accessMasks(ks *analysis.KernelSummary) (read, write uint64) {
	if ks == nil {
		return 0, 0
	}
	for i := range ks.Args {
		a := &ks.Args[i]
		if a.Index >= 64 {
			continue
		}
		if a.Read {
			read |= 1 << uint(a.Index)
		}
		if a.Written {
			write |= 1 << uint(a.Index)
		}
	}
	return read, write
}

// MustKernel is CreateKernel for known-good names.
func (p *Program) MustKernel(name string) *Kernel {
	k, err := p.CreateKernel(name)
	if err != nil {
		panic(err)
	}
	return k
}

// DisasmGPU returns the transformed GPU kernel's bytecode disassembly (a
// debugging aid for inspecting what the passes and compiler produced).
func (k *Kernel) DisasmGPU() string { return k.gpu.VM.Disasm() }

// AddCPUVariant registers an alternate CPU implementation of the kernel
// (§6.6). The variant must take the same arguments and be functionally
// identical in terms of output buffers modified; this is validated against
// the original kernel's signature and access analysis.
func (k *Kernel) AddCPUVariant(src, name string) error {
	vinfo, err := clc.FindKernelInfo(src, name)
	if err != nil {
		return err
	}
	if err := sameSignature(k.Info, vinfo); err != nil {
		return fmt.Errorf("core: CPU variant %q: %w", name, err)
	}
	ast, err := clc.Parse(src)
	if err != nil {
		return err
	}
	vk := ast.Kernel(name)
	// The variant gets its own analysis: its guard-drop eligibility depends
	// on its own stores, and the dynamic access cross-check must accept any
	// access either implementation can perform.
	vsum := analysis.AnalyzeKernel(vk, "")
	vr, vw := accessMasks(vsum)
	k.chkRead |= vr
	k.chkWrite |= vw
	k.splitOK = k.splitOK && passes.CanSplitWithSummary(vinfo, vsum)
	if err := passes.TransformCPUWithSummary(vk, vsum); err != nil {
		return err
	}
	prog, err := k.prog.rt.cpu.BuildProgram(clc.Print(ast))
	if err != nil {
		return err
	}
	ck, err := prog.CreateKernel(name)
	if err != nil {
		return err
	}
	k.cpu = append(k.cpu, ck)
	k.profiled = false
	return nil
}

func sameSignature(a, b *clc.KernelInfo) error {
	pa, pb := a.Kernel.Params, b.Kernel.Params
	if len(pa) != len(pb) {
		return fmt.Errorf("parameter count differs (%d vs %d)", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i].Ty != pb[i].Ty {
			return fmt.Errorf("parameter %d type differs (%s vs %s)", i, pa[i].Ty, pb[i].Ty)
		}
	}
	aw, bw := a.WrittenParams(), b.WrittenParams()
	if len(aw) != len(bw) {
		return fmt.Errorf("written-buffer sets differ")
	}
	for i := range aw {
		if pa[posOf(a, aw[i])].Ty != pb[posOf(b, bw[i])].Ty || aw[i] != bw[i] {
			return fmt.Errorf("written-buffer sets differ")
		}
	}
	return nil
}

func posOf(ki *clc.KernelInfo, name string) int {
	for i, p := range ki.Kernel.Params {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// ---- kernel arguments ----

// ArgKind classifies FluidiCL kernel arguments.
type ArgKind int

// Argument kinds.
const (
	ArgBuf ArgKind = iota
	ArgInt
	ArgFloat
)

// Arg is a FluidiCL kernel argument. Buffer arguments carry either a twin
// Buffer (the two-device runtime) or a TopoBuffer (the N-way runtime) —
// scalar arguments are shared between both.
type Arg struct {
	Kind ArgKind
	Buf  *Buffer
	TBuf *TopoBuffer
	I    int64
	F    float64
}

// BufArg makes a buffer argument.
func BufArg(b *Buffer) Arg { return Arg{Kind: ArgBuf, Buf: b} }

// TopoBufArg makes a buffer argument for the N-way runtime.
func TopoBufArg(b *TopoBuffer) Arg { return Arg{Kind: ArgBuf, TBuf: b} }

// argBufSize returns the byte size of a buffer argument's backing object,
// whichever runtime it belongs to, or -1 for a non-buffer / unbound arg.
func argBufSize(a Arg) int {
	switch {
	case a.Kind != ArgBuf:
		return -1
	case a.Buf != nil:
		return a.Buf.Size
	case a.TBuf != nil:
		return a.TBuf.Size
	}
	return -1
}

// IntArg makes an int argument.
func IntArg(v int64) Arg { return Arg{Kind: ArgInt, I: v} }

// FloatArg makes a float argument.
func FloatArg(v float64) Arg { return Arg{Kind: ArgFloat, F: v} }

func (a Arg) gpu() ocl.Arg {
	switch a.Kind {
	case ArgBuf:
		return ocl.BufArg(a.Buf.gpuBuf)
	case ArgInt:
		return ocl.IntArg(a.I)
	default:
		return ocl.FloatArg(a.F)
	}
}

func (a Arg) cpu() ocl.Arg {
	switch a.Kind {
	case ArgBuf:
		return ocl.BufArg(a.Buf.cpuBuf)
	case ArgInt:
		return ocl.IntArg(a.I)
	default:
		return ocl.FloatArg(a.F)
	}
}

// ---- GPU scratch-buffer pool (§6.1) ----

type bufferPool struct {
	ctx     *ocl.Context
	free    []*ocl.Buffer
	Created int
	Reused  int
}

// acquire returns a free buffer of at least size bytes, creating one if
// necessary (smallest adequate buffer first).
func (p *bufferPool) acquire(size int) *ocl.Buffer {
	best := -1
	for i, b := range p.free {
		if b.Size >= size && (best < 0 || b.Size < p.free[best].Size) {
			best = i
		}
	}
	if best >= 0 {
		b := p.free[best]
		p.free = append(p.free[:best], p.free[best+1:]...)
		p.Reused++
		return b
	}
	p.Created++
	return p.ctx.CreateBuffer(size)
}

func (p *bufferPool) release(b *ocl.Buffer) {
	p.free = append(p.free, b)
	// Trim: keep the pool bounded (older unused buffers are freed, §6.1).
	const maxPooled = 16
	if len(p.free) > maxPooled {
		p.free = p.free[len(p.free)-maxPooled:]
	}
}

// PoolStats reports scratch-buffer pool behaviour (created vs reused).
func (r *Runtime) PoolStats() (created, reused int) {
	return r.pool.Created, r.pool.Reused
}
