package core

import (
	"bytes"
	"math/rand"
	"testing"

	"fluidicl/internal/ocl"
)

func spansOf(s *intervalSet) []ocl.Span { return s.spans }

func setEquals(s *intervalSet, want []ocl.Span) bool {
	if len(s.spans) != len(want) {
		return false
	}
	for i, sp := range s.spans {
		if sp != want[i] {
			return false
		}
	}
	return true
}

func TestIntervalSetAddCoalesce(t *testing.T) {
	var s intervalSet
	s.add(0, 4)
	s.add(4, 8) // adjacent: coalesces with the last span
	s.add(12, 16)
	if !setEquals(&s, []ocl.Span{{Off: 0, End: 8}, {Off: 12, End: 16}}) {
		t.Fatalf("spans = %v", spansOf(&s))
	}
	s.add(8, 12) // bridges the gap; swallows both neighbors
	if !setEquals(&s, []ocl.Span{{Off: 0, End: 16}}) {
		t.Fatalf("after bridge: spans = %v", spansOf(&s))
	}
	if s.bytes() != 16 {
		t.Fatalf("bytes = %d, want 16", s.bytes())
	}
	s.add(2, 10) // fully contained: no-op
	if !setEquals(&s, []ocl.Span{{Off: 0, End: 16}}) {
		t.Fatalf("after contained add: spans = %v", spansOf(&s))
	}
}

// TestIntervalSetPureInsertRegression pins the out-of-order insertion bug:
// adding a span that touches no existing span used to clobber the span at
// the insertion point before shifting, silently dropping its bytes (which
// surfaced as stale device data in multi-kernel topology runs).
func TestIntervalSetPureInsertRegression(t *testing.T) {
	var s intervalSet
	s.add(0, 4)
	s.add(100, 104)
	s.add(200, 204)
	s.add(50, 54) // pure insert between existing spans
	want := []ocl.Span{{Off: 0, End: 4}, {Off: 50, End: 54}, {Off: 100, End: 104}, {Off: 200, End: 204}}
	if !setEquals(&s, want) {
		t.Fatalf("spans = %v, want %v", spansOf(&s), want)
	}
}

func TestIntervalSetSubtract(t *testing.T) {
	var s intervalSet
	s.add(0, 100)
	s.subtractRange(20, 30) // punch a hole
	if !setEquals(&s, []ocl.Span{{Off: 0, End: 20}, {Off: 30, End: 100}}) {
		t.Fatalf("after hole: spans = %v", spansOf(&s))
	}
	var o intervalSet
	o.add(0, 25)   // clips the first span away entirely plus nothing of the second
	o.add(90, 200) // clips the tail
	s.subtract(&o)
	if !setEquals(&s, []ocl.Span{{Off: 30, End: 90}}) {
		t.Fatalf("after subtract: spans = %v", spansOf(&s))
	}
	s.subtractRange(0, 1000)
	if !s.empty() {
		t.Fatalf("subtracting a superset left %v", spansOf(&s))
	}
}

func TestIntervalSetAddSetMinus(t *testing.T) {
	var dirty, own, pend intervalSet
	dirty.add(0, 100)
	own.add(40, 60)
	added := pend.addSetMinus(&dirty, &own)
	if added != 80 {
		t.Fatalf("added = %d, want 80", added)
	}
	if !setEquals(&pend, []ocl.Span{{Off: 0, End: 40}, {Off: 60, End: 100}}) {
		t.Fatalf("pend = %v", spansOf(&pend))
	}
	// Unioning into a non-empty set must still report only (a \ b)'s size.
	var more intervalSet
	more.add(90, 120)
	if got := pend.addSetMinus(&more, &own); got != 30 {
		t.Fatalf("second added = %d, want 30", got)
	}
	if !setEquals(&pend, []ocl.Span{{Off: 0, End: 40}, {Off: 60, End: 120}}) {
		t.Fatalf("pend = %v", spansOf(&pend))
	}
}

func TestIntervalSetCapSpans(t *testing.T) {
	var s intervalSet
	for i := 0; i <= pendMaxSpans; i++ {
		s.add(i*10, i*10+4)
	}
	s.capSpans()
	if !setEquals(&s, []ocl.Span{{Off: 0, End: pendMaxSpans*10 + 4}}) {
		t.Fatalf("cap did not collapse to hull: %v", spansOf(&s))
	}
}

// TestIntervalSetRandomizedParity drives the span arithmetic against a naive
// byte-set reference model.
func TestIntervalSetRandomizedParity(t *testing.T) {
	const size = 256
	rng := rand.New(rand.NewSource(7))
	var s intervalSet
	ref := make([]bool, size)
	for step := 0; step < 2000; step++ {
		off := rng.Intn(size)
		end := off + rng.Intn(size-off) + 1
		if rng.Intn(3) == 0 {
			s.subtractRange(off, end)
			for i := off; i < end; i++ {
				ref[i] = false
			}
		} else {
			s.add(off, end)
			for i := off; i < end; i++ {
				ref[i] = true
			}
		}
		got := make([]bool, size)
		prev := -1
		for _, sp := range s.spans {
			if sp.Off <= prev || sp.Off >= sp.End {
				t.Fatalf("step %d: spans not sorted/disjoint: %v", step, s.spans)
			}
			prev = sp.End
			for i := sp.Off; i < sp.End; i++ {
				got[i] = true
			}
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("step %d: byte %d: set=%v ref=%v (spans %v)", step, i, got[i], ref[i], s.spans)
			}
		}
	}
}

// naiveMerge is the reference model for diffMergeChunk: word-compare the
// aligned prefix, byte-compare the tail, copy differing units.
func naiveMerge(data, orig, host []byte, off int, dirty *intervalSet) {
	n := len(data)
	w := 0
	for ; w+4 <= n; w += 4 {
		if !bytes.Equal(data[w:w+4], orig[off+w:off+w+4]) {
			copy(host[off+w:off+w+4], data[w:w+4])
			dirty.add(off+w, off+w+4)
		}
	}
	for ; w < n; w++ {
		if data[w] != orig[off+w] {
			host[off+w] = data[w]
			dirty.add(off+w, off+w+1)
		}
	}
}

// TestDiffMergeChunkOddWindowTail pins the truncation fix: a ship window
// whose length is not a multiple of 4 must still merge its trailing bytes
// (the original word-stepped loop silently dropped them).
func TestDiffMergeChunkOddWindowTail(t *testing.T) {
	const size = 32
	orig := make([]byte, size)
	host := make([]byte, size)
	data := make([]byte, 11) // 2 full words + 3 tail bytes
	off := 8
	copy(data, orig[off:off+len(data)])
	data[1] = 0xAA  // inside the first word
	data[10] = 0xBB // the very last tail byte
	var dirty, own intervalSet
	diffMergeChunk(data, orig, host, off, false, &dirty, &own)
	if host[off+1] != 0xAA {
		t.Fatal("word-aligned change not merged")
	}
	if host[off+10] != 0xBB {
		t.Fatal("trailing byte of a non-word-multiple window was dropped by the merge")
	}
	if !bytes.Equal(host[off:off+len(data)], data) {
		t.Fatalf("window mismatch: host=%x data=%x", host[off:off+len(data)], data)
	}
}

func TestDiffMergeChunkExactCopiesWithoutComparing(t *testing.T) {
	const size = 64
	orig := make([]byte, size)
	host := make([]byte, size)
	data := make([]byte, 16)
	for i := range data {
		data[i] = byte(i + 1)
	}
	// Poison one data word to equal orig: exact mode must copy it anyway and
	// claim the whole window as dirty/owned.
	copy(data[4:8], orig[20:24])
	var dirty, own intervalSet
	diffMergeChunk(data, orig, host, 16, true, &dirty, &own)
	if !bytes.Equal(host[16:32], data) {
		t.Fatal("exact merge did not copy the full window")
	}
	if !setEquals(&dirty, []ocl.Span{{Off: 16, End: 32}}) || !setEquals(&own, []ocl.Span{{Off: 16, End: 32}}) {
		t.Fatalf("exact merge dirty=%v own=%v, want full window", dirty.spans, own.spans)
	}
}

// TestDiffMergeChunkRandomParity checks the 8-byte fast-path merge against
// the naive reference over random windows (odd sizes and offsets included).
func TestDiffMergeChunkRandomParity(t *testing.T) {
	const size = 512
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		orig := make([]byte, size)
		rng.Read(orig)
		host := append([]byte(nil), orig...)
		refHost := append([]byte(nil), orig...)
		off := rng.Intn(size - 1)
		n := rng.Intn(size-off) + 1
		data := append([]byte(nil), orig[off:off+n]...)
		for c := rng.Intn(8); c > 0; c-- {
			data[rng.Intn(n)] ^= byte(1 + rng.Intn(255))
		}
		var dirty, own, refDirty intervalSet
		diffMergeChunk(data, orig, host, off, false, &dirty, &own)
		naiveMerge(data, orig, refHost, off, &refDirty)
		if !bytes.Equal(host, refHost) {
			t.Fatalf("trial %d (off=%d n=%d): merged host differs from reference", trial, off, n)
		}
		// The fast path may widen dirty runs to word granularity but must
		// cover every byte the reference found changed and stay in-window.
		cover := func(b int) bool {
			for _, sp := range dirty.spans {
				if b >= sp.Off && b < sp.End {
					return true
				}
			}
			return false
		}
		for _, sp := range refDirty.spans {
			for b := sp.Off; b < sp.End; b++ {
				if !cover(b) {
					t.Fatalf("trial %d: changed byte %d missing from dirty set %v", trial, b, dirty.spans)
				}
			}
		}
		for _, sp := range dirty.spans {
			if sp.Off < off || sp.End > off+n {
				t.Fatalf("trial %d: dirty span %v escapes window [%d,%d)", trial, sp, off, off+n)
			}
		}
	}
}

// TestMergePathZeroAllocs guards the pooled merge path: once the pools and
// span arrays are primed, a chunk merge plus the planner's set arithmetic
// performs zero heap allocations per operation.
func TestMergePathZeroAllocs(t *testing.T) {
	const size = 4096
	orig := make([]byte, size)
	host := make([]byte, size)
	src := make([]byte, size)
	for i := 0; i < size; i += 64 {
		src[i] = byte(i>>6) + 1 // a changed word every 64 bytes
	}
	var bp bytePool
	var dirty, own, pend intervalSet
	op := func() {
		data := bp.get(1024)
		copy(data, src[512:512+1024])
		dirty.reset()
		own.reset()
		diffMergeChunk(data, orig, host, 512, false, &dirty, &own)
		bp.put(data)
		pend.reset()
		pend.addSetMinus(&dirty, &own)
		pend.subtract(&own)
		pend.subtractRange(600, 700)
		pend.capSpans()
	}
	op() // prime pool slices and span-array capacities
	if allocs := testing.AllocsPerRun(200, op); allocs != 0 {
		t.Fatalf("steady-state merge path allocated %v allocs/op, want 0", allocs)
	}
}

func TestBytePoolReturnsSmallestAdequate(t *testing.T) {
	var p bytePool
	big := make([]byte, 0, 1000)
	small := make([]byte, 0, 100)
	p.put(big)
	p.put(small)
	got := p.get(50)
	if cap(got) != 100 {
		t.Fatalf("get(50) returned cap %d, want the smallest adequate (100)", cap(got))
	}
	if len(got) != 50 {
		t.Fatalf("get(50) returned len %d", len(got))
	}
	if got2 := p.get(500); cap(got2) != 1000 {
		t.Fatalf("get(500) returned cap %d, want 1000", cap(got2))
	}
	if got3 := p.get(2000); cap(got3) < 2000 {
		t.Fatalf("empty-pool get did not allocate adequately (cap %d)", cap(got3))
	}
}
