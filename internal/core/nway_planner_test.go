package core

import (
	"bytes"
	"strings"
	"testing"

	"fluidicl/internal/device"
	"fluidicl/internal/sim"
	"fluidicl/internal/vm"
)

// topoScale builds a 1..N-device TopoRuntime with the scale kernel compiled
// everywhere.
func topoScale(t *testing.T, cfgs ...device.Config) (*sim.Env, *TopoRuntime, *TopoKernel) {
	t.Helper()
	env := sim.NewEnv()
	var devs []*device.Device
	for _, cfg := range cfgs {
		devs = append(devs, device.New(env, cfg))
	}
	rt := MustNewTopo(env, devs, Options{})
	prog, err := rt.BuildProgram(scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	return env, rt, prog.MustKernel("scale")
}

// TestPlannerOwnerSkipSingleDevice: on a one-device topology every merged run
// is owned by the device that computed it, so the planner must never enqueue
// a refresh — the owner's copy is already current — while still accounting
// the skipped rebroadcast bytes.
func TestPlannerOwnerSkipSingleDevice(t *testing.T) {
	const n, m = 256, 3
	env, rt, k := topoScale(t, device.XeonW3550())
	a := make([]float32, n)
	for i := range a {
		a[i] = float32(i%17) + 1
	}
	bufA := rt.CreateBuffer(4 * n)
	bufB := rt.CreateBuffer(4 * n)
	bufC := rt.CreateBuffer(4 * n)
	var out []byte
	env.Go("app", func(p *sim.Proc) {
		rt.EnqueueWriteBuffer(p, bufA, f32buf(a...))
		nd := vm.NewNDRange1D(n, 16)
		if err := rt.EnqueueNDRangeKernel(p, k, nd,
			[]Arg{TopoBufArg(bufA), TopoBufArg(bufB), IntArg(n), IntArg(m)}); err != nil {
			t.Error(err)
			return
		}
		// Second kernel reads the first's output: with one device there is
		// nothing pending, so no flush may be enqueued.
		if err := rt.EnqueueNDRangeKernel(p, k, nd,
			[]Arg{TopoBufArg(bufB), TopoBufArg(bufC), IntArg(n), IntArg(m)}); err != nil {
			t.Error(err)
			return
		}
		out = rt.EnqueueReadBuffer(p, bufC)
	})
	env.Run()
	if out == nil {
		t.Fatal("app did not complete")
	}
	for i := 0; i < n; i++ {
		want := (float32(i%17) + 1) * 0.5 * float32(m) * 0.5 * float32(m)
		if got := f32at(out, i); got != want {
			t.Fatalf("out[%d] = %v, want %v", i, got, want)
		}
	}
	c := rt.Counters()
	if c.RefreshDeltas != 0 {
		t.Fatalf("owner-skip: single device enqueued %d delta refreshes, want 0", c.RefreshDeltas)
	}
	if c.RefreshBytesSkipped == 0 {
		t.Fatal("owner-skip: no refresh bytes accounted as skipped")
	}
}

// TestPlannerZeroChunkDeviceFullDelta: a device that claims no chunks of a
// kernel owns nothing, so its pending set must grow to the full dirty delta
// — and the next kernel touching the buffer there must flush it current
// before launching.
func TestPlannerZeroChunkDeviceFullDelta(t *testing.T) {
	const n, m = 16, 3
	env, rt, k := topoScale(t, device.XeonW3550(), device.XeonW3550())
	a := make([]float32, n)
	for i := range a {
		a[i] = float32(i) + 1
	}
	bufA := rt.CreateBuffer(4 * n)
	bufB := rt.CreateBuffer(4 * n)
	bufC := rt.CreateBuffer(4 * n)
	var devCopy []byte
	env.Go("app", func(p *sim.Proc) {
		rt.EnqueueWriteBuffer(p, bufA, f32buf(a...))
		// One work-group total: the first worker claims it, the second
		// claims nothing.
		nd := vm.NewNDRange1D(n, n)
		if err := rt.EnqueueNDRangeKernel(p, k, nd,
			[]Arg{TopoBufArg(bufA), TopoBufArg(bufB), IntArg(n), IntArg(m)}); err != nil {
			t.Error(err)
			return
		}
		rep1 := rt.Reports[len(rt.Reports)-1]
		loser := -1
		for di, wgs := range rep1.DeviceWGs {
			if wgs == 0 {
				loser = di
			}
		}
		if loser < 0 {
			t.Error("expected one device to claim zero work-groups")
			return
		}
		if bufB.pend[loser].empty() {
			t.Errorf("zero-chunk device %d has an empty pending set after the kernel", loser)
			return
		}
		// Every word the kernel wrote is non-zero over a zero-initialized
		// buffer, so the dirty delta is the whole buffer and the zero-chunk
		// device must be pending all of it.
		if got := bufB.pend[loser].bytes(); got != bufB.Size {
			t.Errorf("zero-chunk device pending %d bytes, want the full dirty delta %d", got, bufB.Size)
		}
		// Kernel 2 reads bufB: the planner must flush the loser's delta
		// before its chunks may run.
		if err := rt.EnqueueNDRangeKernel(p, k, vm.NewNDRange1D(n, 4),
			[]Arg{TopoBufArg(bufB), TopoBufArg(bufC), IntArg(n), IntArg(m)}); err != nil {
			t.Error(err)
			return
		}
		rep2 := rt.Reports[len(rt.Reports)-1]
		if rep2.RefreshDeltas == 0 {
			t.Error("kernel 2 enqueued no delta refresh for the stale device")
		}
		if !bufB.pend[loser].empty() {
			t.Errorf("pending set still non-empty after flush: %v", bufB.pend[loser].spans)
		}
		devCopy = make([]byte, bufB.Size)
		p.Wait(rt.qs[loser].EnqueueReadBuffer(bufB.bufs[loser], devCopy))
	})
	env.Run()
	if devCopy == nil {
		t.Fatal("app did not complete")
	}
	if !bytes.Equal(devCopy, bufB.host) {
		t.Fatal("stale device copy differs from the host shadow after the delta flush")
	}
}

// TestPlannerWindowViolationBlocksRefresh: a chunk whose dynamic writes
// escape its certified ship window must hard-error before any merge lands or
// any delta refresh is enqueued (satellite soundness edge: the narrowed ship
// would otherwise silently drop the out-of-window bytes).
func TestPlannerWindowViolationBlocksRefresh(t *testing.T) {
	const n = 64
	env, rt, k := topoScale(t, device.XeonW3550())
	b := rt.CreateBuffer(4 * n)
	nd := vm.NewNDRange1D(n, 16)
	o := rt.getOut(b, 1, elision{slotExact: true})
	var stats vm.Stats
	stats.ParamWriteMask = 1 << 1
	stats.WrLo[1] = 0
	stats.WrHi[1] = int32(b.Size) // way past chunk [0,0]'s 64-byte slot window
	wg := env.NewWaitGroup()
	err := rt.shipChunk(0, 1, 0, 0, nd, k, []*topoOut{o}, stats, wg)
	if err == nil {
		t.Fatal("out-of-window dynamic write did not hard-error")
	}
	if !strings.Contains(err.Error(), "outside its certified window") {
		t.Fatalf("unexpected error: %v", err)
	}
	if !o.dirty.empty() {
		t.Fatalf("merge state dirtied despite the violation: %v", o.dirty.spans)
	}
	if c := rt.Counters(); c.RefreshDeltas != 0 {
		t.Fatalf("delta refresh enqueued despite the violation: %d", c.RefreshDeltas)
	}
}
