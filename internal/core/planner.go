package core

import (
	"encoding/binary"
	"sort"

	"fluidicl/internal/ocl"
)

// This file is the delta-refresh transfer planner of the N-way topology
// runtime (DESIGN.md S19). After the twin protocol's generalization to N
// devices (nway.go), the post-kernel refresh used to rebroadcast every
// written buffer in full to every device. The planner replaces that with
// dirty-interval accounting: the host-rooted merge records exactly which
// byte runs each kernel changed and which device computed them, and each
// device's copy is brought current lazily — with a single scatter-write of
// only the bytes that device is actually missing — right before the next
// kernel that uses the buffer there.

// pendMaxSpans caps the fragmentation of a per-device pending set: past
// this many intervals the set is collapsed to its hull. Collapsing is
// sound — hull bytes the device already holds are re-sent with their
// current host values — and keeps the span arithmetic O(small).
const pendMaxSpans = 32

// maxPooledBufs caps each free list of the merge-path pools.
const maxPooledBufs = 32

// intervalSet is a set of bytes represented as sorted, disjoint,
// non-adjacent [Off, End) spans. All mutation happens inside the
// cooperative simulation engine, so there is no locking; the backing
// arrays are retained across resets so steady-state operation does not
// allocate (modeled on analysis.coverAcc, with the same O(1) ascending
// append fast path the merge's in-order runs hit).
type intervalSet struct {
	spans   []ocl.Span
	scratch []ocl.Span // spare backing array for subtract's rebuild
	one     [1]ocl.Span
}

func (s *intervalSet) reset()      { s.spans = s.spans[:0] }
func (s *intervalSet) empty() bool { return len(s.spans) == 0 }

// bytes returns the total byte count covered by the set.
func (s *intervalSet) bytes() int {
	n := 0
	for _, sp := range s.spans {
		n += sp.End - sp.Off
	}
	return n
}

// add unions the span [off, end) into the set, coalescing overlapping and
// adjacent spans. Ascending adds (the common case: merge runs arrive in
// window order per chunk) append in O(1).
func (s *intervalSet) add(off, end int) {
	if off >= end {
		return
	}
	sp := s.spans
	n := len(sp)
	if n == 0 || off > sp[n-1].End {
		s.spans = append(sp, ocl.Span{Off: off, End: end})
		return
	}
	if off >= sp[n-1].Off {
		// Overlaps or touches the last span only.
		if end > sp[n-1].End {
			sp[n-1].End = end
		}
		return
	}
	// General out-of-order insert: find the first span that ends at or
	// after off, swallow every span the new interval touches.
	i := sort.Search(n, func(j int) bool { return sp[j].End >= off })
	j := i
	for j < n && sp[j].Off <= end {
		if sp[j].Off < off {
			off = sp[j].Off
		}
		if sp[j].End > end {
			end = sp[j].End
		}
		j++
	}
	if j == i {
		// Touches nothing: pure insertion before sp[i].
		sp = append(sp, ocl.Span{})
		copy(sp[i+1:], sp[i:])
		sp[i] = ocl.Span{Off: off, End: end}
		s.spans = sp
		return
	}
	sp[i] = ocl.Span{Off: off, End: end}
	s.spans = append(sp[:i+1], sp[j:]...)
}

// addSet unions o into s.
func (s *intervalSet) addSet(o *intervalSet) {
	for _, sp := range o.spans {
		s.add(sp.Off, sp.End)
	}
}

// subtractSpans removes the given sorted disjoint spans from s, rebuilding
// into the set's spare backing array (so repeated subtracts ping-pong two
// arrays and never allocate once capacities stabilize).
func (s *intervalSet) subtractSpans(o []ocl.Span) {
	if len(s.spans) == 0 || len(o) == 0 {
		return
	}
	out := s.scratch[:0]
	oi := 0
	for _, sp := range s.spans {
		off := sp.Off
		for oi < len(o) && o[oi].End <= off {
			oi++
		}
		for k := oi; k < len(o) && o[k].Off < sp.End; k++ {
			if o[k].Off > off {
				out = append(out, ocl.Span{Off: off, End: o[k].Off})
			}
			if o[k].End > off {
				off = o[k].End
			}
		}
		if off < sp.End {
			out = append(out, ocl.Span{Off: off, End: sp.End})
		}
	}
	s.scratch = s.spans[:0]
	s.spans = out
}

// subtract removes o's bytes from s.
func (s *intervalSet) subtract(o *intervalSet) { s.subtractSpans(o.spans) }

// subtractRange removes [off, end) from s.
func (s *intervalSet) subtractRange(off, end int) {
	if off >= end {
		return
	}
	s.one[0] = ocl.Span{Off: off, End: end}
	s.subtractSpans(s.one[:])
}

// addSetMinus unions (a \ b) into s and returns the byte count of (a \ b).
// b's spans must be sorted and disjoint (they are: b is an intervalSet).
func (s *intervalSet) addSetMinus(a, b *intervalSet) int {
	total := 0
	bi := 0
	for _, sp := range a.spans {
		off := sp.Off
		for bi < len(b.spans) && b.spans[bi].End <= off {
			bi++
		}
		for k := bi; k < len(b.spans) && b.spans[k].Off < sp.End; k++ {
			if b.spans[k].Off > off {
				s.add(off, b.spans[k].Off)
				total += b.spans[k].Off - off
			}
			if b.spans[k].End > off {
				off = b.spans[k].End
			}
		}
		if off < sp.End {
			s.add(off, sp.End)
			total += sp.End - off
		}
	}
	return total
}

// capSpans collapses the set to its hull once it fragments past
// pendMaxSpans. Over-approximating a pending set is sound: the extra bytes
// are simply re-sent with their current host values.
func (s *intervalSet) capSpans() {
	if len(s.spans) <= pendMaxSpans {
		return
	}
	s.spans = append(s.spans[:0], ocl.Span{Off: s.spans[0].Off, End: s.spans[len(s.spans)-1].End})
}

// bytePool recycles host-side scratch slices across chunks and kernels
// (per-chunk ship buffers, per-kernel orig snapshots, flush snapshots).
// Acquire returns the smallest adequate free slice with stale contents —
// callers fill every byte they read. Plain slices, no locks: every touch
// happens inside the cooperative engine.
type bytePool struct {
	free [][]byte
}

func (p *bytePool) get(n int) []byte {
	best := -1
	for i, b := range p.free {
		if cap(b) >= n && (best < 0 || cap(b) < cap(p.free[best])) {
			best = i
		}
	}
	if best < 0 {
		return make([]byte, n)
	}
	b := p.free[best]
	last := len(p.free) - 1
	p.free[best] = p.free[last]
	p.free = p.free[:last]
	return b[:n]
}

func (p *bytePool) put(b []byte) {
	if cap(b) == 0 || len(p.free) >= maxPooledBufs {
		return
	}
	p.free = append(p.free, b)
}

// spanPool recycles the span slices handed to in-flight scatter transfers
// (the transfer reads them at completion time, so the pending set's backing
// array is detached into the transfer and replaced from this pool).
type spanPool struct {
	free [][]ocl.Span
}

func (p *spanPool) get() []ocl.Span {
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		return s[:0]
	}
	return nil
}

func (p *spanPool) put(s []ocl.Span) {
	if cap(s) == 0 || len(p.free) >= maxPooledBufs {
		return
	}
	p.free = append(p.free, s)
}

// diffMergeChunk folds one shipped chunk window into the host shadow: data
// holds the device bytes of window [off, off+len(data)), orig the pre-kernel
// host snapshot, host the merge target (both full-buffer indexed). A word
// differing from orig was computed by this chunk; equal words are either
// untouched or recomputed identically elsewhere (§4.3's merge, host-rooted).
// Changed runs are copied into host and recorded in dirty and own, feeding
// the delta-refresh planner.
//
// The compare walks 8 bytes at a time and drills into 4-byte words only on
// mismatch; the sub-word tail of a non-word-multiple window is merged
// byte-wise (the original loop silently dropped it). When exact is true the
// caller's footprint certificate proves the chunk wrote every byte of the
// window, so the whole window is copied without comparing.
func diffMergeChunk(data, orig, host []byte, off int, exact bool, dirty, own *intervalSet) {
	n := len(data)
	if n == 0 {
		return
	}
	if exact {
		copy(host[off:off+n], data)
		dirty.add(off, off+n)
		own.add(off, off+n)
		return
	}
	run := -1 // window-relative start of the current changed run
	endRun := func(end int) {
		if run >= 0 {
			copy(host[off+run:off+end], data[run:end])
			dirty.add(off+run, off+end)
			own.add(off+run, off+end)
			run = -1
		}
	}
	w := 0
	for ; w+8 <= n; w += 8 {
		if binary.LittleEndian.Uint64(data[w:]) == binary.LittleEndian.Uint64(orig[off+w:]) {
			endRun(w)
			continue
		}
		if binary.LittleEndian.Uint32(data[w:]) != binary.LittleEndian.Uint32(orig[off+w:]) {
			if run < 0 {
				run = w
			}
		} else {
			endRun(w)
		}
		if binary.LittleEndian.Uint32(data[w+4:]) != binary.LittleEndian.Uint32(orig[off+w+4:]) {
			if run < 0 {
				run = w + 4
			}
		} else {
			endRun(w + 4)
		}
	}
	for ; w+4 <= n; w += 4 {
		if binary.LittleEndian.Uint32(data[w:]) != binary.LittleEndian.Uint32(orig[off+w:]) {
			if run < 0 {
				run = w
			}
		} else {
			endRun(w)
		}
	}
	for ; w < n; w++ {
		if data[w] != orig[off+w] {
			if run < 0 {
				run = w
			}
		} else {
			endRun(w)
		}
	}
	endRun(n)
}
