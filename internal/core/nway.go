package core

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"fluidicl/internal/analysis"
	"fluidicl/internal/clc"
	"fluidicl/internal/device"
	"fluidicl/internal/ocl"
	"fluidicl/internal/passes"
	"fluidicl/internal/sim"
	"fluidicl/internal/vm"
)

// TopoRuntime generalizes the FluidiCL twin protocol to an N-device
// topology. Where the twin runtime races one full-range GPU launch against a
// CPU scheduler stealing from the tail, the N-way runtime treats the
// flattened work-group range as a shared pool with two claim fronts:
// GPU-class devices claim chunks ascending from the grid head, CPU-class
// devices steal descending from the shared tail, and the fronts meet
// somewhere in the middle. Every device runs the range-guarded CPU-transformed
// kernel over its chunks with per-device adaptive chunk sizing (§5.1
// generalized); chunk results ship over each device's interconnect link to
// the host root, narrowed by the same slot-exact / strided write
// certificates the twin runtime uses; the host diff-merges shipped bytes
// against a pre-kernel snapshot (§4.3's merge, rooted at the host instead of
// the GPU) and rebroadcasts the merged result so every device holds current
// data for the next kernel.
//
// The degenerate two-device machine does not go through this path at all:
// package sched routes Topology.Pair() machines to the original twin runtime
// so their results and virtual timings stay bit-identical.
type TopoRuntime struct {
	Env  *sim.Env
	devs []*device.Device
	ctxs []*ocl.Context
	qs   []*ocl.CommandQueue

	opts        Options
	kernelSeq   int
	deferredErr error
	ctr         Counters

	// Merge-path pools (all touched only inside the cooperative engine):
	// bp recycles per-chunk ship buffers, per-kernel orig snapshots and
	// flush snapshots; sp recycles the span slices detached into in-flight
	// scatter refreshes; outFree recycles topoOut bookkeeping; cargs keeps
	// one reusable ocl arg slice per device (chunk launches bind args at
	// enqueue time, so the slice may be rewritten between launches).
	bp      bytePool
	sp      spanPool
	outFree []*topoOut
	cargs   [][]ocl.Arg

	Reports []*KernelReport
}

// NewTopo creates an N-way runtime over an already-built device list (see
// device.Topology.Build). Device order fixes worker spawn order and
// therefore claim tie-breaking, so runs are deterministic.
func NewTopo(env *sim.Env, devs []*device.Device, opts Options) (*TopoRuntime, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("core: topology runtime needs at least one device")
	}
	r := &TopoRuntime{Env: env, devs: devs, opts: opts.withDefaults()}
	for _, d := range devs {
		ctx := ocl.NewContext(env, d)
		r.ctxs = append(r.ctxs, ctx)
		r.qs = append(r.qs, ctx.CreateQueue("app"))
	}
	r.cargs = make([][]ocl.Arg, len(devs))
	return r, nil
}

// MustNewTopo is NewTopo for known-good configurations.
func MustNewTopo(env *sim.Env, devs []*device.Device, opts Options) *TopoRuntime {
	r, err := NewTopo(env, devs, opts)
	if err != nil {
		panic(err)
	}
	return r
}

// Err returns any deferred error (a certificate violation noticed after a
// kernel call returned).
func (r *TopoRuntime) Err() error { return r.deferredErr }

// TopoBuffer is an N-way memory object: one buffer per device plus the host
// shadow the merge is rooted at. The host shadow is always the latest data
// once a kernel call returns; device copies are allowed to go stale and are
// brought current lazily by the delta-refresh planner: ver counts host-shadow
// versions, devVer[di] is the version device di's copy last fully matched
// (the per-device residency table), and pend[di] is the exact byte set device
// di's copy is missing. The invariant maintained by every mutation below is
// that a device copy differs from the host shadow only inside pend[di].
type TopoBuffer struct {
	rt   *TopoRuntime
	Size int
	bufs []*ocl.Buffer
	host []byte

	ver    int
	devVer []int
	pend   []intervalSet
}

// CreateBuffer creates a buffer on every device. Host shadow and device
// copies start zero-filled and therefore identical: every pending set is
// empty.
func (r *TopoRuntime) CreateBuffer(size int) *TopoBuffer {
	b := &TopoBuffer{
		rt: r, Size: size, host: make([]byte, size),
		devVer: make([]int, len(r.ctxs)),
		pend:   make([]intervalSet, len(r.ctxs)),
	}
	for _, ctx := range r.ctxs {
		b.bufs = append(b.bufs, ctx.CreateBuffer(size))
	}
	return b
}

// EnqueueWriteBuffer broadcasts host data to every device. The call
// snapshots the data and returns immediately; each device's in-order queue
// sequences its copy before any later kernel chunk there. The written range
// becomes current everywhere, so it leaves every pending set.
func (r *TopoRuntime) EnqueueWriteBuffer(p *sim.Proc, b *TopoBuffer, data []byte) {
	if len(data) > b.Size {
		panic("core: write larger than buffer")
	}
	copy(b.host, data)
	if len(data) > 0 {
		b.ver++
	}
	snap := append([]byte(nil), data...)
	for i, q := range r.qs {
		q.EnqueueWriteBuffer(b.bufs[i], snap)
		b.pend[i].subtractRange(0, len(data))
		if b.pend[i].empty() {
			b.devVer[i] = b.ver
		}
	}
}

// EnqueueReadBuffer returns the buffer's current contents. Kernel calls
// block until the host-rooted merge completes, so the host shadow is always
// current; the device-to-host transfer cost was already paid by the chunk
// result ships.
func (r *TopoRuntime) EnqueueReadBuffer(p *sim.Proc, b *TopoBuffer) []byte {
	out := make([]byte, b.Size)
	copy(out, b.host)
	return out
}

// Finish drains every device queue.
func (r *TopoRuntime) Finish(p *sim.Proc) {
	for _, q := range r.qs {
		p.Wait(q.EnqueueMarker())
	}
}

// TopoProgram is a program compiled for every device in the topology. All
// devices run the range-guarded CPU transformation of the source: N-way
// chunks are claimed, not raced, so no device needs the GPU abort-check
// transformation — a chunk once claimed is never redundantly recomputed.
type TopoProgram struct {
	rt      *TopoRuntime
	Source  string
	info    *clc.ProgramInfo
	Summary *analysis.ProgramSummary
	progs   []*ocl.Program
	CPUSrc  string
}

// BuildProgram compiles src for every device, applying the CPU range-guard
// transformation once (memoized with the twin runtime's cache) and building
// the result in each device context.
func (r *TopoRuntime) BuildProgram(src string) (*TopoProgram, error) {
	gopt := passes.GPUOptions{
		AbortInLoops: !r.opts.NoAbortInLoops,
		Unroll:       !r.opts.NoAbortInLoops && !r.opts.NoUnroll,
		UnrollFactor: r.opts.UnrollFactor,
	}
	e, err := transformProgram(src, gopt)
	if err != nil {
		return nil, err
	}
	p := &TopoProgram{rt: r, Source: src, info: e.info, Summary: e.sum, CPUSrc: e.cpuSrc}
	for i, ctx := range r.ctxs {
		prog, err := ctx.BuildProgram(e.cpuSrc)
		if err != nil {
			return nil, fmt.Errorf("core: build for device %d: %w", i, err)
		}
		p.progs = append(p.progs, prog)
	}
	return p, nil
}

// TopoKernel is a kernel bound to every device in the topology.
type TopoKernel struct {
	prog *TopoProgram
	Name string
	Info *clc.KernelInfo
	Sum  *analysis.KernelSummary
	ks   []*ocl.Kernel

	splitOK           bool
	chkRead, chkWrite uint64
}

// CreateKernel creates a kernel object by name.
func (p *TopoProgram) CreateKernel(name string) (*TopoKernel, error) {
	info, ok := p.info.Kernels[name]
	if !ok {
		return nil, fmt.Errorf("core: kernel %q not found", name)
	}
	sum := p.Summary.Kernels[name]
	k := &TopoKernel{
		prog: p, Name: name, Info: info, Sum: sum,
		splitOK: passes.CanSplitWithSummary(info, sum),
	}
	k.chkRead, k.chkWrite = accessMasks(sum)
	for _, prog := range p.progs {
		dk, err := prog.CreateKernel(name)
		if err != nil {
			return nil, err
		}
		k.ks = append(k.ks, dk)
	}
	return k, nil
}

// MustKernel is CreateKernel for known-good names.
func (p *TopoProgram) MustKernel(name string) *TopoKernel {
	k, err := p.CreateKernel(name)
	if err != nil {
		panic(err)
	}
	return k
}

// topo lowers a FluidiCL arg to device di's ocl arg.
func (a Arg) topo(di int) ocl.Arg {
	switch a.Kind {
	case ArgBuf:
		return ocl.BufArg(a.TBuf.bufs[di])
	case ArgInt:
		return ocl.IntArg(a.I)
	default:
		return ocl.FloatArg(a.F)
	}
}

// topoOut is the merge bookkeeping for one written buffer of one launch.
// Instances and their interval sets are pooled on the runtime; orig comes
// from the byte pool. Merges write directly into the buffer's host shadow
// (diffing against orig), so there is no separate res copy to commit — on a
// hard certificate error the shadow may hold a partial merge, but every
// later call observes the deferred error, so the partial state is
// unobservable.
type topoOut struct {
	b   *TopoBuffer
	idx int // original parameter index
	el  elision
	// exact: the strided footprint proves the chunk writes every byte of
	// its ship window (MustCover + Monotone ⇒ each chunk hull is exactly
	// tiled by its groups' must-write spans), enabling the compare-free
	// copy fast path in diffMergeChunk.
	exact bool
	// staleShip: at least one device ran this kernel with a stale copy of
	// the buffer because the full-overwrite certificate elided its delta
	// flush; the post-join cross-check must then verify the dynamic write
	// hull covered the whole buffer (mirroring the twin runtime's
	// uploadSkipped check).
	staleShip bool
	orig      []byte // pooled pre-kernel host snapshot; merges diff against it
	dirty     intervalSet
	own       []intervalSet // per-device: runs that device's chunks changed
}

// getOut acquires pooled merge bookkeeping for one written buffer.
func (r *TopoRuntime) getOut(b *TopoBuffer, idx int, el elision) *topoOut {
	var o *topoOut
	if n := len(r.outFree); n > 0 {
		o = r.outFree[n-1]
		r.outFree = r.outFree[:n-1]
	} else {
		o = &topoOut{own: make([]intervalSet, len(r.devs))}
	}
	o.b, o.idx, o.el = b, idx, el
	o.exact = el.writes != nil && el.writes.MustCover && el.writes.Monotone()
	o.staleShip = false
	o.orig = r.bp.get(b.Size)
	copy(o.orig, b.host)
	o.dirty.reset()
	for i := range o.own {
		o.own[i].reset()
	}
	return o
}

// putOut releases o's pooled resources after the post-join commit.
func (r *TopoRuntime) putOut(o *topoOut) {
	r.bp.put(o.orig)
	o.orig = nil
	o.b = nil
	if len(r.outFree) < maxPooledBufs {
		r.outFree = append(r.outFree, o)
	}
}

// flushPend brings every stale device copy of b current before a kernel
// launch: each device with a non-empty pending set receives one scatter
// write of exactly the bytes it is missing, enqueued on its in-order queue
// so it lands before that device's first chunk of the kernel — pipelined
// against other devices' transfers and compute. The pending set's span
// array and a pooled host snapshot travel with the transfer and return to
// their pools when the last refresh retires.
func (r *TopoRuntime) flushPend(b *TopoBuffer, rep *KernelReport) {
	need := 0
	for di := range b.pend {
		if !b.pend[di].empty() {
			need++
		}
	}
	if need == 0 {
		return
	}
	snap := r.bp.get(b.Size)
	for di := range b.pend {
		for _, s := range b.pend[di].spans {
			copy(snap[s.Off:s.End], b.host[s.Off:s.End])
		}
	}
	left := need
	for di := range b.pend {
		ps := &b.pend[di]
		if ps.empty() {
			continue
		}
		// Detach the span array into the transfer; the set continues with a
		// pooled replacement.
		spans := ps.spans
		ps.spans = r.sp.get()
		ps.scratch = ps.scratch[:0]
		r.qs[di].EnqueueWriteBufferSpansTagged(b.bufs[di], spans, snap, "refresh")
		r.qs[di].EnqueueCall(func() {
			r.sp.put(spans)
			if left--; left == 0 {
				r.bp.put(snap)
			}
		})
		b.devVer[di] = b.ver
		r.countRefreshDelta()
		rep.RefreshDeltas++
	}
}

// shipRange returns the [off, end) byte window of o that chunk [lo, hi] must
// ship, narrowed by the launch's elision certificate: slot-exact buffers
// ship exactly the chunk's slot range, strided buffers ship the hull of the
// chunk's group spans, everything else ships in full.
func (o *topoOut) shipRange(nd vm.NDRange, lo, hi int) (off, end int) {
	off, end = 0, o.b.Size
	switch {
	case o.el.slotExact:
		ls := nd.WorkItemsPerGroup()
		off = 4 * ls * lo
		end = 4 * ls * (hi + 1)
	case o.el.writes != nil:
		h := o.el.writes.HullRange(int64(lo), int64(hi)+1)
		if h.Empty() {
			return 0, 0
		}
		off = 4 * int(h.Lo)
		end = 4 * int(h.Hi)
	default:
		return
	}
	if end > o.b.Size {
		end = o.b.Size
	}
	if off > end {
		off = end
	}
	return
}

// EnqueueNDRangeKernel executes the kernel cooperatively on every device of
// the topology and blocks until the merged result is on the host and every
// device's refresh has been enqueued. The claim protocol is deterministic:
// workers run one at a time inside the cooperative engine, so claim
// interleavings are a pure function of virtual launch timings, which are
// themselves a pure function of the VM's deterministic stats.
func (r *TopoRuntime) EnqueueNDRangeKernel(p *sim.Proc, k *TopoKernel, nd vm.NDRange, args []Arg) error {
	if r.deferredErr != nil {
		return r.deferredErr
	}
	if len(args) != len(k.Info.Kernel.Params) {
		return fmt.Errorf("core: kernel %q expects %d args, got %d", k.Name, len(k.Info.Kernel.Params), len(args))
	}
	r.kernelSeq++
	kid := r.kernelSeq
	total := nd.TotalGroups()
	rep := &KernelReport{
		KID: kid, Name: k.Name, TotalWGs: total, Start: p.Now(),
		DeviceWGs: make([]int, len(r.devs)),
	}
	r.Reports = append(r.Reports, rep)

	el := planElisions(k.Info, k.Sum, nd, args)

	// Launch-time split un-veto, exactly as in the twin runtime.
	split := k.splitOK
	if !split && !r.opts.NoWorkGroupSplit &&
		passes.CanSplitWithCertificate(k.Info, k.Sum, launchShape(nd), intParams(args), stridedPlanBudget) {
		split = true
		r.countSplitUnvetoed()
	}

	// Plan the launch's transfers: for every buffer argument, first decide
	// whether stale device copies must be flushed current (the delta
	// refresh), then set up merge bookkeeping for written buffers. A
	// write-only argument whose certificate proves the launch overwrites
	// the whole buffer needs no flush — the generalized N-device form of
	// the twin runtime's stale-upload elision; its pending bytes persist
	// (they may well be overwritten equal and stay stale) and the post-join
	// cross-check verifies the overwrite actually covered the buffer.
	var outs []*topoOut
	for i, param := range k.Info.Kernel.Params {
		if !param.Ty.Ptr {
			continue
		}
		if args[i].Kind != ArgBuf || args[i].TBuf == nil {
			return fmt.Errorf("core: kernel %q arg %d (%s) must be a topology buffer", k.Name, i, param.Name)
		}
		b := args[i].TBuf
		written := k.Info.ParamAccess[param.Name].Written
		stale := false
		if written && el[i].fullOverwrite && total > 0 {
			for di := range b.pend {
				if !b.pend[di].empty() {
					stale = true
					r.countRefreshBytesSkipped(int64(b.pend[di].bytes()))
					rep.RefreshBytesSkipped += int64(b.pend[di].bytes())
					r.countUploadSkipped()
				}
			}
		} else if total > 0 {
			r.flushPend(b, rep)
		}
		if written && total > 0 {
			o := r.getOut(b, i, el[i])
			o.staleShip = stale
			outs = append(outs, o)
		}
	}

	if total == 0 {
		rep.End = p.Now()
		return nil
	}

	// The shared claim pool over flattened work-group IDs: GPU-class devices
	// claim [lo, ...] ascending, CPU-class devices steal [..., hi] descending.
	// Claims mutate lo/hi from worker procs that execute one at a time in the
	// cooperative engine, so no locking is needed and the claim sequence is
	// deterministic.
	lo, hi := 0, total-1
	claim := func(kind device.Kind, want int) (int, int, bool) {
		if lo > hi {
			return 0, 0, false
		}
		n := want
		if n < 1 {
			n = 1
		}
		if rem := hi - lo + 1; n > rem {
			n = rem
		}
		if kind == device.GPU {
			c0 := lo
			lo += n
			return c0, c0 + n - 1, true
		}
		c1 := hi
		hi -= n
		return c1 - n + 1, c1, true
	}

	wg := r.Env.NewWaitGroup()
	var firstErr error
	var dyn vm.Stats // aggregate dynamic stats across every chunk launch
	subkernels := 0

	for di := range r.devs {
		di := di
		dev := r.devs[di]
		wg.Add(1)
		r.Env.Go(fmt.Sprintf("topo-dev%d-k%d", di, kid), func(sp *sim.Proc) {
			defer wg.Done()
			cus := dev.Cfg.ComputeUnits
			chunk := int(math.Round(float64(total) * r.opts.InitialChunkPct / 100))
			if chunk < 1 {
				chunk = 1
			}
			if chunk < cus && total >= cus {
				chunk = cus
			}
			step := int(math.Round(float64(total) * r.opts.StepPct / 100))
			if step < 1 && r.opts.StepPct > 0 {
				step = 1
			}
			prevAvg := math.MaxFloat64
			for firstErr == nil {
				// Launch whole waves (§5.1's resource-utilization concern).
				launchChunk := chunk
				if launchChunk > cus {
					launchChunk = (launchChunk / cus) * cus
				}
				clo, chi, ok := claim(dev.Cfg.Kind, launchChunk)
				if !ok {
					return
				}
				ndSlice := nd.Slice(clo, chi)
				// One reusable arg slice per device: the launch binds args
				// synchronously at enqueue time, so rewriting it for the
				// next chunk is safe.
				cargs := r.cargs[di][:0]
				for _, a := range args {
					cargs = append(cargs, a.topo(di))
				}
				cargs = append(cargs, ocl.IntArg(int64(clo)), ocl.IntArg(int64(chi)))
				r.cargs[di] = cargs
				t0 := sp.Now()
				ev, res := r.qs[di].EnqueueNDRangeKernel(k.ks[di], ndSlice, cargs, ocl.LaunchOpts{
					Split:   dev.Cfg.Kind == device.CPU && !r.opts.NoWorkGroupSplit && split,
					Backend: r.opts.Backend,
				})
				sp.Wait(ev)
				if res.Err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("core: device %d execution of %q: %w", di, k.Name, res.Err)
					}
					return
				}
				dyn.Add(res.Stats)
				n := chi - clo + 1
				rep.DeviceWGs[di] += n
				if dev.Cfg.Kind == device.CPU {
					rep.CPUWGs += n
				} else {
					rep.GPUExecuted += n
				}
				subkernels++

				// Validate the chunk's dynamic writes against the certificate
				// windows its ships rely on, then ship each out buffer's
				// window over this device's link to the host root.
				if err := r.shipChunk(di, kid, clo, chi, nd, k, outs, res.Stats, wg); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}

				// Adaptive chunk sizing (§5.1): grow while time per
				// work-group keeps improving on this device.
				avg := (sp.Now() - t0) / float64(n)
				if avg < prevAvg {
					chunk += step
				}
				prevAvg = avg
			}
		})
	}

	// Blocking kernel call: join every worker and every in-flight ship, then
	// commit the host-rooted merge and rebroadcast.
	wg.Wait(p)
	rep.Subkernels = subkernels
	rep.CPUDidAll = rep.GPUExecuted == 0
	if firstErr != nil {
		r.deferredErr = firstErr
		return firstErr
	}

	// Global dynamic-access cross-check against the static summary every
	// elision relied on (the per-chunk window checks ran in shipChunk).
	if k.Sum != nil {
		origMask := ^uint64(0)
		if n := len(k.Info.Kernel.Params); n < 64 {
			origMask = (1 << uint(n)) - 1
		}
		if bad := dyn.ParamReadMask & origMask &^ k.chkRead; bad != 0 {
			r.deferredErr = fmt.Errorf("core: kernel %q: dynamic read of parameter %d outside the static access summary",
				k.Name, bits.TrailingZeros64(bad))
			return r.deferredErr
		}
		if bad := dyn.ParamWriteMask & origMask &^ k.chkWrite; bad != 0 {
			r.deferredErr = fmt.Errorf("core: kernel %q: dynamic write of parameter %d outside the static access summary",
				k.Name, bits.TrailingZeros64(bad))
			return r.deferredErr
		}
	}

	// A launch that trusted stale device copies under a full-overwrite
	// certificate must additionally prove the overwrite happened: any
	// unwritten byte would have let stale device data masquerade as
	// computed results through the diff-merge. The dynamic write hull must
	// cover the whole buffer (the same post-hoc check the twin runtime
	// applies to its stale-upload elision).
	for _, o := range outs {
		if !o.staleShip || o.idx >= len(dyn.WrLo) {
			continue
		}
		if dyn.ParamWriteMask&(1<<uint(o.idx)) == 0 ||
			int(dyn.WrLo[o.idx]) != 0 || int(dyn.WrHi[o.idx]) < o.b.Size {
			r.deferredErr = fmt.Errorf("core: kernel %q: buffer %q: full-overwrite certificate elided a delta refresh but the dynamic writes covered only bytes [%d,%d) of %d",
				k.Name, k.Info.Kernel.Params[o.idx].Name, dyn.WrLo[o.idx], dyn.WrHi[o.idx], o.b.Size)
			return r.deferredErr
		}
	}

	// Commit: the merges already folded every changed run into the host
	// shadow, which now is the truth for the next kernel. Instead of
	// rebroadcasting it, the planner only books what each device is
	// missing: a device's own runs are current there (owner-skip), every
	// other changed run joins its pending set, and a device whose pending
	// set stayed empty remains version-current — its refresh is skipped
	// entirely. The deltas themselves are flushed lazily by the next kernel
	// that touches the buffer on that device, pipelined on its in-order
	// queue ahead of the chunk launches (§5.5 generalized).
	for _, o := range outs {
		b := o.b
		if !o.dirty.empty() {
			b.ver++
		}
		for di := range r.devs {
			b.pend[di].subtract(&o.own[di])
			added := b.pend[di].addSetMinus(&o.dirty, &o.own[di])
			b.pend[di].capSpans()
			skipped := int64(b.Size - added)
			r.countRefreshBytesSkipped(skipped)
			rep.RefreshBytesSkipped += skipped
			if b.pend[di].empty() {
				b.devVer[di] = b.ver
			}
		}
		r.putOut(o)
	}
	rep.End = p.Now()
	return nil
}

// shipChunk validates one completed chunk's dynamic writes against the
// certificate windows and ships each out buffer's narrowed byte range from
// device di to the host root, diff-merging on arrival. The read is enqueued
// on the device's in-order queue (ordered after the chunk that produced the
// data); a helper process joins the transfer and merges, so the worker never
// blocks on its own ships. wg tracks each in-flight ship so the kernel call
// can join them all.
func (r *TopoRuntime) shipChunk(di, kid, lo, hi int, nd vm.NDRange, k *TopoKernel,
	outs []*topoOut, stats vm.Stats, wg *sim.WaitGroup) error {

	for _, o := range outs {
		off, end := o.shipRange(nd, lo, hi)
		if o.el.slotExact || o.el.writes != nil {
			// The ship was narrowed on a static promise; a dynamic write
			// outside the window means merged results may be silently wrong,
			// which must be a hard error.
			if o.idx < len(stats.WrLo) && stats.ParamWriteMask&(1<<uint(o.idx)) != 0 {
				if int(stats.WrLo[o.idx]) < off || int(stats.WrHi[o.idx]) > end {
					return fmt.Errorf("core: kernel %q: chunk [%d,%d] on device %d wrote buffer %q outside its certified window (bytes [%d,%d) vs [%d,%d))",
						k.Name, lo, hi, di, k.Info.Kernel.Params[o.idx].Name,
						stats.WrLo[o.idx], stats.WrHi[o.idx], off, end)
				}
			}
			r.countShipBytesSkipped(int64(o.b.Size - (end - off)))
			r.countMergeWordsElided(int64(o.b.Size-(end-off)) / 4)
		}
		if end == off {
			continue
		}
		o := o
		data := r.bp.get(end - off)
		ev := r.qs[di].EnqueueReadBufferAtTagged(o.b.bufs[di], off, data, "ship")
		wg.Add(1)
		r.Env.Go(fmt.Sprintf("topo-ship-d%d-k%d-lo%d", di, kid, lo), func(mp *sim.Proc) {
			defer wg.Done()
			mp.Wait(ev)
			// Host-rooted diff-merge (§4.3): a word differing from the
			// pre-kernel snapshot was computed by this chunk; equal words are
			// either untouched or recomputed identically elsewhere. Hull
			// over-approximation is safe: bytes inside the window that this
			// chunk did not write still hold pre-kernel data on the device —
			// the flush at kernel start made the device copy current — which
			// compares equal to orig. Changed runs land directly in the host
			// shadow and feed the delta-refresh planner's dirty/own sets;
			// merge procs run one at a time in the cooperative engine, so no
			// locking is needed and the merge order is deterministic.
			diffMergeChunk(data, o.orig, o.b.host, off, o.exact, &o.dirty, &o.own[di])
			r.bp.put(data)
		})
	}
	return nil
}

// ---- counters ----

// Counters returns this runtime's elision counters.
func (r *TopoRuntime) Counters() Counters {
	return Counters{
		UploadsSkipped:      atomic.LoadInt64(&r.ctr.UploadsSkipped),
		ShipBytesSkipped:    atomic.LoadInt64(&r.ctr.ShipBytesSkipped),
		MergeWordsElided:    atomic.LoadInt64(&r.ctr.MergeWordsElided),
		SplitsUnvetoed:      atomic.LoadInt64(&r.ctr.SplitsUnvetoed),
		RefreshBytesSkipped: atomic.LoadInt64(&r.ctr.RefreshBytesSkipped),
		RefreshDeltas:       atomic.LoadInt64(&r.ctr.RefreshDeltas),
	}
}

func (r *TopoRuntime) countUploadSkipped() {
	atomic.AddInt64(&r.ctr.UploadsSkipped, 1)
	atomic.AddInt64(&globalCounters.UploadsSkipped, 1)
}

func (r *TopoRuntime) countRefreshBytesSkipped(n int64) {
	atomic.AddInt64(&r.ctr.RefreshBytesSkipped, n)
	atomic.AddInt64(&globalCounters.RefreshBytesSkipped, n)
}

func (r *TopoRuntime) countRefreshDelta() {
	atomic.AddInt64(&r.ctr.RefreshDeltas, 1)
	atomic.AddInt64(&globalCounters.RefreshDeltas, 1)
}

func (r *TopoRuntime) countShipBytesSkipped(n int64) {
	atomic.AddInt64(&r.ctr.ShipBytesSkipped, n)
	atomic.AddInt64(&globalCounters.ShipBytesSkipped, n)
}

func (r *TopoRuntime) countMergeWordsElided(n int64) {
	atomic.AddInt64(&r.ctr.MergeWordsElided, n)
	atomic.AddInt64(&globalCounters.MergeWordsElided, n)
}

func (r *TopoRuntime) countSplitUnvetoed() {
	atomic.AddInt64(&r.ctr.SplitsUnvetoed, 1)
	atomic.AddInt64(&globalCounters.SplitsUnvetoed, 1)
}
