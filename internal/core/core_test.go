package core

import (
	"encoding/binary"
	"math"
	"testing"

	"fluidicl/internal/device"
	"fluidicl/internal/sim"
	"fluidicl/internal/vm"
)

func f32buf(vals ...float32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
	}
	return b
}

func f32at(b []byte, i int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
}

const scaleSrc = `
__kernel void scale(__global float* a, __global float* out, int n, int m) {
    int i = get_global_id(0);
    if (i < n) {
        float s = 0.0f;
        for (int k = 0; k < m; k++) {
            s += a[i] * 0.5f;
        }
        out[i] = s;
    }
}
`

// runScale executes the scale kernel through FluidiCL on the given device
// configs and returns the result plus the runtime (for reports).
func runScale(t *testing.T, cpuCfg, gpuCfg device.Config, n, m int, opts Options) ([]byte, *Runtime, sim.Time) {
	t.Helper()
	env := sim.NewEnv()
	rt := MustNew(env, device.New(env, cpuCfg), device.New(env, gpuCfg), opts)
	prog, err := rt.BuildProgram(scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	k := prog.MustKernel("scale")
	a := make([]float32, n)
	for i := range a {
		a[i] = float32(i%17) + 1
	}
	bufA := rt.CreateBuffer(4 * n)
	bufOut := rt.CreateBuffer(4 * n)
	var out []byte
	var end sim.Time
	env.Go("app", func(p *sim.Proc) {
		rt.EnqueueWriteBuffer(p, bufA, f32buf(a...))
		if err := rt.EnqueueNDRangeKernel(p, k, vm.NewNDRange1D(n, 16),
			[]Arg{BufArg(bufA), BufArg(bufOut), IntArg(int64(n)), IntArg(int64(m))}); err != nil {
			t.Error(err)
			return
		}
		out = rt.EnqueueReadBuffer(p, bufOut)
		end = p.Now()
	})
	env.Run()
	if out == nil {
		t.Fatal("app did not complete")
	}
	return out, rt, end
}

func checkScale(t *testing.T, out []byte, n, m int) {
	t.Helper()
	for i := 0; i < n; i++ {
		a := float32(i%17) + 1
		var want float32
		for k := 0; k < m; k++ {
			want += a * 0.5
		}
		if got := f32at(out, i); got != want {
			t.Fatalf("out[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestCooperativeExecutionCorrect(t *testing.T) {
	n, m := 512, 200
	out, rt, _ := runScale(t, device.XeonW3550(), device.TeslaC2070(), n, m, Options{})
	checkScale(t, out, n, m)
	rep := rt.Reports[0]
	if rep.TotalWGs != 32 {
		t.Fatalf("TotalWGs = %d", rep.TotalWGs)
	}
	covered := rep.GPUExecuted + rep.CPUWGs
	if covered < rep.TotalWGs {
		t.Fatalf("coverage: gpu=%d cpu=%d total=%d", rep.GPUExecuted, rep.CPUWGs, rep.TotalWGs)
	}
}

func TestBothDevicesParticipateWhenBalanced(t *testing.T) {
	// Equalize the devices so a split is profitable, with work-groups heavy
	// enough to outweigh transfer overheads.
	cpu := device.XeonW3550()
	gpu := device.TeslaC2070()
	gpu.ComputeUnits = 2 // weaken GPU so the CPU gets a meaningful share
	n, m := 1024, 3000
	out, rt, _ := runScale(t, cpu, gpu, n, m, Options{})
	checkScale(t, out, n, m)
	rep := rt.Reports[0]
	if rep.CPUWGs == 0 {
		t.Fatal("CPU executed nothing on a balanced machine")
	}
	if rep.GPUExecuted == 0 {
		t.Fatal("GPU executed nothing on a balanced machine")
	}
	if rep.Subkernels < 2 {
		t.Fatalf("subkernels = %d, want several", rep.Subkernels)
	}
}

func TestCPUDoesAllWhenGPUHopeless(t *testing.T) {
	gpu := device.TeslaC2070()
	gpu.ClockHz /= 5000
	gpu.MemBytesPerSec /= 5000
	gpu.KernelLaunchOverhead = 50e-3 // GPU takes forever to even start
	n, m := 256, 100
	out, rt, _ := runScale(t, device.XeonW3550(), gpu, n, m, Options{})
	checkScale(t, out, n, m)
	rep := rt.Reports[0]
	if !rep.CPUDidAll {
		t.Fatalf("expected CPU to complete everything: %+v", rep)
	}
}

func TestGPUDoesAllWhenCPUHopeless(t *testing.T) {
	cpu := device.XeonW3550()
	cpu.ClockHz /= 10000
	cpu.SeqBytesPerSec /= 10000
	cpu.RandBytesPerSec /= 10000
	cpu.KernelLaunchOverhead = 100e-3
	n, m := 256, 100
	out, rt, _ := runScale(t, cpu, device.TeslaC2070(), n, m, Options{})
	checkScale(t, out, n, m)
	rep := rt.Reports[0]
	if rep.CPUDidAll {
		t.Fatal("CPU cannot have done everything")
	}
	if rep.GPUExecuted < rep.TotalWGs-rep.CPUWGs {
		t.Fatalf("GPU under-covered: %+v", rep)
	}
}

const twoKernelSrc = `
__kernel void k1(__global float* a, __global float* b, int n) {
    int i = get_global_id(0);
    if (i < n) { b[i] = a[i] * 2.0f; }
}
__kernel void k2(__global float* b, __global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) { c[i] = b[i] + 1.0f; }
}
`

func TestMultiKernelCoherence(t *testing.T) {
	// Kernel 2 consumes kernel 1's output; FluidiCL must keep the buffer
	// coherent across devices without programmer effort.
	env := sim.NewEnv()
	rt := MustNew(env, device.New(env, device.XeonW3550()), device.New(env, device.TeslaC2070()), Options{})
	prog, err := rt.BuildProgram(twoKernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := prog.MustKernel("k1"), prog.MustKernel("k2")
	n := 256
	a := make([]float32, n)
	for i := range a {
		a[i] = float32(i)
	}
	bufA, bufB, bufC := rt.CreateBuffer(4*n), rt.CreateBuffer(4*n), rt.CreateBuffer(4*n)
	var out []byte
	env.Go("app", func(p *sim.Proc) {
		rt.EnqueueWriteBuffer(p, bufA, f32buf(a...))
		nd := vm.NewNDRange1D(n, 16)
		if err := rt.EnqueueNDRangeKernel(p, k1, nd, []Arg{BufArg(bufA), BufArg(bufB), IntArg(int64(n))}); err != nil {
			t.Error(err)
			return
		}
		if err := rt.EnqueueNDRangeKernel(p, k2, nd, []Arg{BufArg(bufB), BufArg(bufC), IntArg(int64(n))}); err != nil {
			t.Error(err)
			return
		}
		out = rt.EnqueueReadBuffer(p, bufC)
	})
	env.Run()
	if out == nil {
		t.Fatal("app did not complete")
	}
	for i := 0; i < n; i++ {
		want := float32(i)*2 + 1
		if got := f32at(out, i); got != want {
			t.Fatalf("c[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestMultiKernelAfterCPUDidAll(t *testing.T) {
	// First kernel completes entirely on the CPU (GPU crippled), leaving
	// the GPU stale; the second kernel must still see correct inputs.
	env := sim.NewEnv()
	gpu := device.TeslaC2070()
	gpu.KernelLaunchOverhead = 20e-3 // slow to start; CPU wins kernel 1
	rt := MustNew(env, device.New(env, device.XeonW3550()), device.New(env, gpu), Options{})
	prog, err := rt.BuildProgram(twoKernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := prog.MustKernel("k1"), prog.MustKernel("k2")
	n := 128
	a := make([]float32, n)
	for i := range a {
		a[i] = 3
	}
	bufA, bufB, bufC := rt.CreateBuffer(4*n), rt.CreateBuffer(4*n), rt.CreateBuffer(4*n)
	var out []byte
	env.Go("app", func(p *sim.Proc) {
		rt.EnqueueWriteBuffer(p, bufA, f32buf(a...))
		nd := vm.NewNDRange1D(n, 16)
		if err := rt.EnqueueNDRangeKernel(p, k1, nd, []Arg{BufArg(bufA), BufArg(bufB), IntArg(int64(n))}); err != nil {
			t.Error(err)
			return
		}
		if err := rt.EnqueueNDRangeKernel(p, k2, nd, []Arg{BufArg(bufB), BufArg(bufC), IntArg(int64(n))}); err != nil {
			t.Error(err)
			return
		}
		out = rt.EnqueueReadBuffer(p, bufC)
	})
	env.Run()
	if out == nil {
		t.Fatal("app did not complete")
	}
	if !rt.Reports[0].CPUDidAll {
		t.Skip("GPU unexpectedly won kernel 1; scenario not exercised")
	}
	for i := 0; i < n; i++ {
		if got := f32at(out, i); got != 7 {
			t.Fatalf("c[%d] = %v, want 7", i, got)
		}
	}
}

func TestReadAvoidsTransferWhenDataOnCPU(t *testing.T) {
	// After a kernel, the DH thread brings data home; a read then costs no
	// additional virtual time (§6.2).
	n, m := 256, 100
	env := sim.NewEnv()
	rt := MustNew(env, device.New(env, device.XeonW3550()), device.New(env, device.TeslaC2070()), Options{})
	prog, _ := rt.BuildProgram(scaleSrc)
	k := prog.MustKernel("scale")
	bufA, bufOut := rt.CreateBuffer(4*n), rt.CreateBuffer(4*n)
	var tRead1, tRead2 sim.Time
	env.Go("app", func(p *sim.Proc) {
		rt.EnqueueWriteBuffer(p, bufA, f32buf(make([]float32, n)...))
		if err := rt.EnqueueNDRangeKernel(p, k, vm.NewNDRange1D(n, 16),
			[]Arg{BufArg(bufA), BufArg(bufOut), IntArg(int64(n)), IntArg(int64(m))}); err != nil {
			t.Error(err)
			return
		}
		rt.EnqueueReadBuffer(p, bufOut) // waits for DH
		tRead1 = p.Now()
		rt.EnqueueReadBuffer(p, bufOut) // location-tracked: free
		tRead2 = p.Now()
	})
	env.Run()
	if tRead2 != tRead1 {
		t.Fatalf("second read cost %v, want 0 (location tracking)", tRead2-tRead1)
	}
}

func TestBufferPoolReuse(t *testing.T) {
	// Repeated kernels reuse GPU scratch buffers instead of creating new
	// ones every launch (§6.1).
	env := sim.NewEnv()
	rt := MustNew(env, device.New(env, device.XeonW3550()), device.New(env, device.TeslaC2070()), Options{})
	prog, _ := rt.BuildProgram(scaleSrc)
	k := prog.MustKernel("scale")
	n := 256
	bufA, bufOut := rt.CreateBuffer(4*n), rt.CreateBuffer(4*n)
	env.Go("app", func(p *sim.Proc) {
		rt.EnqueueWriteBuffer(p, bufA, f32buf(make([]float32, n)...))
		for iter := 0; iter < 5; iter++ {
			if err := rt.EnqueueNDRangeKernel(p, k, vm.NewNDRange1D(n, 16),
				[]Arg{BufArg(bufA), BufArg(bufOut), IntArg(int64(n)), IntArg(100)}); err != nil {
				t.Error(err)
				return
			}
			rt.EnqueueReadBuffer(p, bufOut)
		}
	})
	env.Run()
	created, reused := rt.PoolStats()
	// 5 kernels × 2 scratch buffers = 10 acquisitions; the pool must serve
	// most from reuse (releases land asynchronously, so up to two kernels'
	// worth of scratch can exist at once).
	if created > 4 {
		t.Fatalf("created %d scratch buffers, want <= 4", created)
	}
	if reused < 6 {
		t.Fatalf("reused only %d times across 5 kernels", reused)
	}
}

const variantSrc = `
__kernel void work(__global float* a, __global float* out, int n) {
    int i = get_global_id(0);
    if (i < n) {
        float s = 0.0f;
        for (int k = 0; k < n; k++) { s += a[k * n + i]; }
        out[i] = s;
    }
}
`

// cpuFriendlySrc computes the same result with row-sequential access.
const variantCPUSrc = `
__kernel void work_cpu(__global float* a, __global float* out, int n) {
    int i = get_global_id(0);
    if (i < n) {
        float s = 0.0f;
        for (int k = 0; k < n; k++) { s += a[i + k * n]; }
        out[i] = s;
    }
}
`

func TestOnlineProfilingPicksFasterVariant(t *testing.T) {
	// Note: both variants compute identical sums; the "CPU variant" here is
	// textually different but accesses the same elements, so correctness is
	// trivially preserved; profiling must still pick the faster-measured one.
	env := sim.NewEnv()
	cpu := device.XeonW3550()
	rt := MustNew(env, device.New(env, cpu), device.New(env, device.TeslaC2070()), Options{OnlineProfiling: true})
	prog, err := rt.BuildProgram(variantSrc)
	if err != nil {
		t.Fatal(err)
	}
	k := prog.MustKernel("work")
	if err := k.AddCPUVariant(variantCPUSrc, "work_cpu"); err != nil {
		t.Fatal(err)
	}
	n := 128
	a := make([]float32, n*n)
	for i := range a {
		a[i] = float32(i % 7)
	}
	bufA, bufOut := rt.CreateBuffer(4*n*n), rt.CreateBuffer(4*n)
	var out []byte
	env.Go("app", func(p *sim.Proc) {
		rt.EnqueueWriteBuffer(p, bufA, f32buf(a...))
		for iter := 0; iter < 3; iter++ {
			if err := rt.EnqueueNDRangeKernel(p, k, vm.NewNDRange1D(n, 8),
				[]Arg{BufArg(bufA), BufArg(bufOut), IntArg(int64(n))}); err != nil {
				t.Error(err)
				return
			}
		}
		out = rt.EnqueueReadBuffer(p, bufOut)
	})
	env.Run()
	if out == nil {
		t.Fatal("app did not complete")
	}
	for i := 0; i < n; i++ {
		var want float32
		for kk := 0; kk < n; kk++ {
			want += a[kk*n+i]
		}
		if got := f32at(out, i); got != want {
			t.Fatalf("out[%d] = %v, want %v", i, got, want)
		}
	}
	if !k.profiled {
		t.Skip("CPU saw too few subkernels to finish profiling in this configuration")
	}
}

func TestAddCPUVariantValidatesSignature(t *testing.T) {
	env := sim.NewEnv()
	rt := MustNew(env, device.New(env, device.XeonW3550()), device.New(env, device.TeslaC2070()), Options{})
	prog, _ := rt.BuildProgram(variantSrc)
	k := prog.MustKernel("work")
	bad := `__kernel void b(__global float* a, int n) { a[0] = (float)n; }`
	if err := k.AddCPUVariant(bad, "b"); err == nil {
		t.Fatal("mismatched variant accepted")
	}
}

func TestKernelArgCountValidation(t *testing.T) {
	env := sim.NewEnv()
	rt := MustNew(env, device.New(env, device.XeonW3550()), device.New(env, device.TeslaC2070()), Options{})
	prog, _ := rt.BuildProgram(scaleSrc)
	k := prog.MustKernel("scale")
	var gotErr error
	env.Go("app", func(p *sim.Proc) {
		gotErr = rt.EnqueueNDRangeKernel(p, k, vm.NewNDRange1D(16, 16), []Arg{IntArg(1)})
	})
	env.Run()
	if gotErr == nil {
		t.Fatal("arg count mismatch accepted")
	}
}

func TestVMErrorPropagates(t *testing.T) {
	env := sim.NewEnv()
	rt := MustNew(env, device.New(env, device.XeonW3550()), device.New(env, device.TeslaC2070()), Options{})
	prog, err := rt.BuildProgram(`
__kernel void oob(__global float* a) { a[get_global_id(0) + 1000000] = 1.0f; }
`)
	if err != nil {
		t.Fatal(err)
	}
	k := prog.MustKernel("oob")
	buf := rt.CreateBuffer(64)
	var gotErr error
	env.Go("app", func(p *sim.Proc) {
		gotErr = rt.EnqueueNDRangeKernel(p, k, vm.NewNDRange1D(16, 16), []Arg{BufArg(buf)})
	})
	env.Run()
	if gotErr == nil {
		t.Fatal("kernel fault not reported")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	n, m := 512, 300
	out1, rt1, end1 := runScale(t, device.XeonW3550(), device.TeslaC2070(), n, m, Options{})
	out2, rt2, end2 := runScale(t, device.XeonW3550(), device.TeslaC2070(), n, m, Options{})
	if string(out1) != string(out2) {
		t.Fatal("nondeterministic results")
	}
	if end1 != end2 {
		t.Fatalf("nondeterministic timing: %v vs %v", end1, end2)
	}
	if rt1.Reports[0].Subkernels != rt2.Reports[0].Subkernels {
		t.Fatal("nondeterministic scheduling")
	}
}

func TestTransformedSourcesExposed(t *testing.T) {
	env := sim.NewEnv()
	rt := MustNew(env, device.New(env, device.XeonW3550()), device.New(env, device.TeslaC2070()), Options{})
	prog, err := rt.BuildProgram(scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"fcl_status", "fcl_kid", "fcl_fgid"} {
		if !contains(prog.GPUSrc, frag) {
			t.Fatalf("GPU source missing %q:\n%s", frag, prog.GPUSrc)
		}
	}
	// scale writes out[] slot-exactly, so the analyzer lets TransformCPU
	// drop the range-guard prologue; the lo/hi parameters stay in the ABI.
	for _, frag := range []string{"fcl_lo", "fcl_hi"} {
		if !contains(prog.CPUSrc, frag) {
			t.Fatalf("CPU source missing %q:\n%s", frag, prog.CPUSrc)
		}
	}
	if contains(prog.CPUSrc, "fcl_fgid") {
		t.Fatalf("CPU source kept the range guard despite a slot-exact write-only summary:\n%s", prog.CPUSrc)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.InitialChunkPct != 2 || o.StepPct != 2 || o.UnrollFactor != 4 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestTwoDimensionalKernel(t *testing.T) {
	env := sim.NewEnv()
	rt := MustNew(env, device.New(env, device.XeonW3550()), device.New(env, device.TeslaC2070()), Options{})
	prog, err := rt.BuildProgram(`
__kernel void mat(__global float* a, __global float* b, int n) {
    int j = get_global_id(0);
    int i = get_global_id(1);
    if (i < n && j < n) { b[i * n + j] = a[i * n + j] * 3.0f; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	k := prog.MustKernel("mat")
	n := 64
	a := make([]float32, n*n)
	for i := range a {
		a[i] = float32(i % 13)
	}
	bufA, bufB := rt.CreateBuffer(4*n*n), rt.CreateBuffer(4*n*n)
	var out []byte
	env.Go("app", func(p *sim.Proc) {
		rt.EnqueueWriteBuffer(p, bufA, f32buf(a...))
		if err := rt.EnqueueNDRangeKernel(p, k, vm.NewNDRange2D(n, n, 8, 8),
			[]Arg{BufArg(bufA), BufArg(bufB), IntArg(int64(n))}); err != nil {
			t.Error(err)
			return
		}
		out = rt.EnqueueReadBuffer(p, bufB)
	})
	env.Run()
	if out == nil {
		t.Fatal("app did not complete")
	}
	for i := range a {
		if got := f32at(out, i); got != a[i]*3 {
			t.Fatalf("b[%d] = %v, want %v", i, got, a[i]*3)
		}
	}
}

func TestTraceTimelineInvariants(t *testing.T) {
	env := sim.NewEnv()
	rt := MustNew(env, device.New(env, device.XeonW3550()), device.New(env, device.TeslaC2070()), Options{})
	tr := rt.EnableTrace()
	prog, err := rt.BuildProgram(scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	k := prog.MustKernel("scale")
	n, m := 512, 300
	bufA, bufOut := rt.CreateBuffer(4*n), rt.CreateBuffer(4*n)
	env.Go("app", func(p *sim.Proc) {
		rt.EnqueueWriteBuffer(p, bufA, f32buf(make([]float32, n)...))
		if err := rt.EnqueueNDRangeKernel(p, k, vm.NewNDRange1D(n, 16),
			[]Arg{BufArg(bufA), BufArg(bufOut), IntArg(int64(n)), IntArg(int64(m))}); err != nil {
			t.Error(err)
			return
		}
		rt.EnqueueReadBuffer(p, bufOut)
	})
	env.Run()

	if len(tr.Events) == 0 {
		t.Fatal("no trace events recorded")
	}
	// Subkernel launches must strictly precede their status arrivals, and
	// status arrivals must be in decreasing done-from order.
	launches := tr.Find("CPU subkernel launch")
	statuses := tr.Find("status arrived")
	if len(launches) == 0 {
		t.Fatal("no CPU subkernels launched")
	}
	if len(statuses) > len(launches) {
		t.Fatalf("%d statuses for %d launches", len(statuses), len(launches))
	}
	for i, s := range statuses {
		if s.T <= launches[i].T {
			t.Fatalf("status %d at %v not after its subkernel launch at %v", i, s.T, launches[i].T)
		}
		if i > 0 && s.T < statuses[i-1].T {
			t.Fatal("status arrivals out of order")
		}
	}
	// The kernel-done event must exist and precede the call return.
	done := tr.Find("GPU kernel done")
	ret := tr.Find("kernel call returns")
	if len(done) != 1 || len(ret) != 1 {
		t.Fatalf("done=%d returns=%d, want 1/1\n%s", len(done), len(ret), tr)
	}
	if ret[0].T < done[0].T {
		t.Fatal("call returned before GPU kernel completed")
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	n, m := 64, 10
	_, rt, _ := runScale(t, device.XeonW3550(), device.TeslaC2070(), n, m, Options{})
	if rt.trace != nil {
		t.Fatal("trace enabled without EnableTrace")
	}
}

func TestDisasmGPUMentionsTransforms(t *testing.T) {
	env := sim.NewEnv()
	rt := MustNew(env, device.New(env, device.XeonW3550()), device.New(env, device.TeslaC2070()), Options{})
	prog, err := rt.BuildProgram(scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	k := prog.MustKernel("scale")
	d := k.DisasmGPU()
	for _, frag := range []string{"kernel scale", "fcl_status", "ret"} {
		if !contains(d, frag) {
			t.Fatalf("disassembly missing %q:\n%s", frag, d)
		}
	}
}

func TestEarlyReturnWhenGPUStuckBehindUpload(t *testing.T) {
	// A GPU with a glacial host link never starts the kernel before the
	// CPU finishes everything; the blocking call must return without
	// waiting for the zombie GPU launch.
	gpu := device.TeslaC2070()
	gpu.Link.BytesPerSec = 1e6 // ~1 MB/s: the upload takes ages
	gpu.Link.LatencySec = 1e-3
	n, m := 256, 50
	out, rt, end := runScale(t, device.XeonW3550(), gpu, n, m, Options{})
	checkScale(t, out, n, m)
	rep := rt.Reports[0]
	if !rep.CPUDidAll {
		t.Fatalf("expected CPU-did-all: %+v", rep)
	}
	// The app must finish far sooner than the GPU upload alone (4*256
	// bytes at 1MB/s plus latency exceeds 1ms; CPU needs ~100us).
	if end > 1e-3 {
		t.Fatalf("app took %v: it waited for the stuck GPU", end)
	}
}

func TestZombieKernelDoesNotCorruptNextKernel(t *testing.T) {
	// After an early return, the abandoned GPU launch eventually runs and
	// writes stale data; the next kernel must still see correct inputs.
	gpu := device.TeslaC2070()
	gpu.Link.BytesPerSec = 2e7 // slow enough that the CPU wins kernel 1
	gpu.Link.LatencySec = 200e-6
	env := sim.NewEnv()
	rt := MustNew(env, device.New(env, device.XeonW3550()), device.New(env, gpu), Options{})
	prog, err := rt.BuildProgram(twoKernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := prog.MustKernel("k1"), prog.MustKernel("k2")
	n := 128
	a := make([]float32, n)
	for i := range a {
		a[i] = 5
	}
	bufA, bufB, bufC := rt.CreateBuffer(4*n), rt.CreateBuffer(4*n), rt.CreateBuffer(4*n)
	var out []byte
	env.Go("app", func(p *sim.Proc) {
		rt.EnqueueWriteBuffer(p, bufA, f32buf(a...))
		nd := vm.NewNDRange1D(n, 16)
		if err := rt.EnqueueNDRangeKernel(p, k1, nd, []Arg{BufArg(bufA), BufArg(bufB), IntArg(int64(n))}); err != nil {
			t.Error(err)
			return
		}
		if err := rt.EnqueueNDRangeKernel(p, k2, nd, []Arg{BufArg(bufB), BufArg(bufC), IntArg(int64(n))}); err != nil {
			t.Error(err)
			return
		}
		out = rt.EnqueueReadBuffer(p, bufC)
	})
	env.Run()
	if out == nil {
		t.Fatal("app did not complete")
	}
	for i := 0; i < n; i++ {
		if got := f32at(out, i); got != 11 {
			t.Fatalf("c[%d] = %v, want 11", i, got)
		}
	}
}

func TestFinishDrainsAllQueues(t *testing.T) {
	env := sim.NewEnv()
	rt := MustNew(env, device.New(env, device.XeonW3550()), device.New(env, device.TeslaC2070()), Options{})
	prog, _ := rt.BuildProgram(scaleSrc)
	k := prog.MustKernel("scale")
	n := 256
	bufA, bufOut := rt.CreateBuffer(4*n), rt.CreateBuffer(4*n)
	var afterKernel, afterFinish sim.Time
	env.Go("app", func(p *sim.Proc) {
		rt.EnqueueWriteBuffer(p, bufA, f32buf(make([]float32, n)...))
		if err := rt.EnqueueNDRangeKernel(p, k, vm.NewNDRange1D(n, 16),
			[]Arg{BufArg(bufA), BufArg(bufOut), IntArg(int64(n)), IntArg(200)}); err != nil {
			t.Error(err)
			return
		}
		afterKernel = p.Now()
		rt.Finish(p)
		afterFinish = p.Now()
	})
	env.Run()
	if afterFinish < afterKernel {
		t.Fatal("Finish went backwards")
	}
	// After Finish, the DH transfer must have completed: a read is free.
	if bufOut.receivedVersion != bufOut.expectedVersion {
		t.Fatal("Finish returned with DH still pending")
	}
}

func TestDeferredCPUErrorSurfaces(t *testing.T) {
	// A kernel whose CPU subkernel faults after the GPU already finished
	// must surface the error on the next runtime call.
	env := sim.NewEnv()
	cpu := device.XeonW3550()
	rt := MustNew(env, device.New(env, cpu), device.New(env, device.TeslaC2070()), Options{})
	// Out-of-bounds only for the top work-group (which the CPU claims
	// first); the GPU never reaches it because... it does — both fault.
	// Use an input-dependent fault instead: index i*stride with a stride
	// buffer the kernel reads; all work-items in the top groups fault.
	prog, err := rt.BuildProgram(`
__kernel void f(__global float* a, int n) {
    int i = get_global_id(0);
    if (i >= n - 16) {
        a[i + 1000000] = 1.0f; // top work-group faults
    } else {
        a[i] = 1.0f;
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	k := prog.MustKernel("f")
	n := 256
	buf := rt.CreateBuffer(4 * n)
	var err1 error
	env.Go("app", func(p *sim.Proc) {
		err1 = rt.EnqueueNDRangeKernel(p, k, vm.NewNDRange1D(n, 16), []Arg{BufArg(buf), IntArg(int64(n))})
	})
	env.Run()
	// Both devices eventually hit the faulting group; the error must
	// surface either directly or as a deferred error.
	if err1 == nil && rt.deferredErr == nil {
		t.Fatal("fault never surfaced")
	}
}

func TestOnlineProfilingProbesUseSmallAllocations(t *testing.T) {
	env := sim.NewEnv()
	cpu := device.XeonW3550()
	gpu := device.TeslaC2070()
	gpu.ComputeUnits = 2 // let the CPU run several subkernels
	rt := MustNew(env, device.New(env, cpu), device.New(env, gpu), Options{OnlineProfiling: true})
	tr := rt.EnableTrace()
	prog, err := rt.BuildProgram(variantSrc)
	if err != nil {
		t.Fatal(err)
	}
	k := prog.MustKernel("work")
	if err := k.AddCPUVariant(variantCPUSrc, "work_cpu"); err != nil {
		t.Fatal(err)
	}
	n := 128
	bufA, bufOut := rt.CreateBuffer(4*n*n), rt.CreateBuffer(4*n)
	env.Go("app", func(p *sim.Proc) {
		rt.EnqueueWriteBuffer(p, bufA, f32buf(make([]float32, n*n)...))
		if err := rt.EnqueueNDRangeKernel(p, k, vm.NewNDRange1D(n, 8),
			[]Arg{BufArg(bufA), BufArg(bufOut), IntArg(int64(n))}); err != nil {
			t.Error(err)
		}
	})
	env.Run()
	launches := tr.Find("CPU subkernel launch")
	if len(launches) < 2 {
		t.Skip("not enough subkernels to observe probing")
	}
	// The first two launches are profiling probes over 2 work-groups each
	// (variant 0 then variant 1).
	if !contains(launches[0].What, "variant 0") {
		t.Fatalf("first probe = %q", launches[0].What)
	}
	if !contains(launches[1].What, "variant 1") {
		t.Fatalf("second probe = %q, want variant 1", launches[1].What)
	}
}

// TestCounterSnapshotWGBackend checks that the whole-work-group compilation
// counters surface through core.CounterSnapshot when a runtime executes
// under the wg backend: a certifiable kernel counts lockstep work-groups
// and compiled regions, while an uncertifiable scatter kernel shows up as
// fallbacks. (The strict zero-lockstep assertion for fallback kernels lives
// at the vm layer, where no runtime-internal merge launches can interfere.)
func TestCounterSnapshotWGBackend(t *testing.T) {
	n, m := 64, 4
	before := CounterSnapshot()
	out, _, _ := runScale(t, device.XeonW3550(), device.TeslaC2070(), n, m,
		Options{Backend: vm.BackendWG})
	checkScale(t, out, n, m)
	after := CounterSnapshot()
	d := after.Sub(before)
	if d.WGLoopWGs == 0 {
		t.Errorf("wg backend ran but WGLoopWGs stayed 0: %+v", d)
	}
	// WGKernels/WGRegions count compilations, which the two-layer compile
	// cache may have satisfied during earlier tests in this package — check
	// the absolute process-wide totals, not the delta.
	if after.WGKernels == 0 || after.WGRegions == 0 {
		t.Errorf("wg compilation counters stayed 0: %+v", after)
	}

	// A data-dependent scatter store cannot be certified noninterfering, so
	// every wg-backend dispatch of this kernel must fall back.
	const scatterSrc = `
__kernel void scatter(__global int* idx, __global float* out, int n) {
    int i = get_global_id(0);
    if (i < n) {
        out[idx[i]] = 1.0f;
    }
}
`
	before = CounterSnapshot()
	env := sim.NewEnv()
	rt := MustNew(env, device.New(env, device.XeonW3550()),
		device.New(env, device.TeslaC2070()), Options{Backend: vm.BackendWG})
	prog, err := rt.BuildProgram(scatterSrc)
	if err != nil {
		t.Fatal(err)
	}
	k := prog.MustKernel("scatter")
	idx := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(idx[4*i:], uint32(i))
	}
	bufIdx, bufOut := rt.CreateBuffer(4*n), rt.CreateBuffer(4*n)
	env.Go("app", func(p *sim.Proc) {
		rt.EnqueueWriteBuffer(p, bufIdx, idx)
		if err := rt.EnqueueNDRangeKernel(p, k, vm.NewNDRange1D(n, 16),
			[]Arg{BufArg(bufIdx), BufArg(bufOut), IntArg(int64(n))}); err != nil {
			t.Error(err)
		}
		rt.EnqueueReadBuffer(p, bufOut)
	})
	env.Run()
	d = CounterSnapshot().Sub(before)
	if d.WGFallbackWGs == 0 {
		t.Errorf("uncertifiable scatter kernel recorded no wg fallbacks: %+v", d)
	}
}
