package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"fluidicl/internal/analysis"
	"fluidicl/internal/clc"
	"fluidicl/internal/ocl"
	"fluidicl/internal/passes"
	"fluidicl/internal/sim"
	"fluidicl/internal/vm"
)

// statusUpdate is one CPU-completion message as observed at the GPU (the
// moment its transfer landed).
type statusUpdate struct {
	t        sim.Time
	doneFrom int
}

// statusLog implements device.AbortQuery over the time-ordered list of
// status arrivals for one kernel execution. The same arrivals also update
// the GPU-resident status buffer that the transformed kernel's abort checks
// read, so the timing view and the functional view always agree.
type statusLog struct {
	env     *sim.Env
	updates []statusUpdate
	changed *sim.Event
}

func newStatusLog(env *sim.Env) *statusLog {
	return &statusLog{env: env, changed: env.NewEvent()}
}

// record notes a status arrival at the current virtual time.
func (s *statusLog) record(doneFrom int) {
	s.updates = append(s.updates, statusUpdate{t: s.env.Now(), doneFrom: doneFrom})
	old := s.changed
	s.changed = s.env.NewEvent()
	old.Fire()
}

// DoneAt reports whether fgid was CPU-complete as of time t.
func (s *statusLog) DoneAt(fgid int, t sim.Time) bool {
	for _, u := range s.updates {
		if u.t <= t && fgid >= u.doneFrom {
			return true
		}
	}
	return false
}

// DoneSince returns the earliest arrival after `after` covering fgid.
func (s *statusLog) DoneSince(fgid int, after sim.Time) (sim.Time, bool) {
	for _, u := range s.updates {
		if u.t > after && fgid >= u.doneFrom {
			return u.t, true
		}
	}
	return 0, false
}

// Changed returns the (unfired) event for the next status arrival.
func (s *statusLog) Changed() *sim.Event { return s.changed }

func encodeStatus(kid, doneFrom int32) []byte {
	b := make([]byte, 4*passes.StatusWords)
	binary.LittleEndian.PutUint32(b[4*passes.StatusKernelID:], uint32(kid))
	binary.LittleEndian.PutUint32(b[4*passes.StatusDoneFrom:], uint32(doneFrom))
	return b
}

// schedOutcome is what the CPU scheduler thread reports back.
type schedOutcome struct {
	didAll      bool
	cpuWGs      int
	subkernels  int
	variantUsed int
	lastHD      *sim.Event
	err         error
	stats       vm.Stats // aggregate dynamic stats of all CPU subkernels
}

// elision is what the static kernel summary lets the runtime skip for one
// buffer argument of one launch (indexed by original parameter position).
type elision struct {
	// slotExact: the argument is a write-only __global buffer whose every
	// store is provably at the work-item's own flattened global id, in a 1-D
	// launch. CPU subkernel ships narrow to the chunk's slot range, the
	// cpuCopy scratch prime is skipped, and the merge window narrows to
	// [loFinal*localSize, totalItems).
	slotExact bool
	// fullOverwrite: additionally, the launch has at least one work-item per
	// buffer word, so the kernel overwrites the whole buffer and a stale
	// GPU copy never needs refreshing before the launch.
	fullOverwrite bool
	// uploadSkipped: a stale-GPU-copy upload was actually elided for this
	// launch, so the post-hoc cross-check must verify the dynamic writes
	// covered the whole buffer.
	uploadSkipped bool
	// writes is the launch-level strided write footprint of a written
	// __global buffer whose stores are fully summarized but not slot-exact
	// (nil otherwise). Ships narrow to the hull of the chunk's group spans
	// and the merge window narrows to the hull of every group at or above
	// loFinal. Unlike the slot-exact case the cpuCopy prime is kept: the
	// hulls over-approximate, so the merge may read words no ship delivered,
	// and those must compare equal to orig.
	writes *analysis.ArgWrites
}

// stridedPlanBudget bounds the footprint evaluations one launch may spend
// on transfer planning and split certification.
const stridedPlanBudget = 1 << 20

// launchShape converts a full launch geometry to the analyzer's form.
func launchShape(nd vm.NDRange) analysis.LaunchShape {
	sh := analysis.LaunchShape{Dims: nd.Dims}
	for d := 0; d < 3; d++ {
		sh.Local[d] = int64(nd.LocalSize[d])
		sh.NumGroups[d] = int64(nd.NumGroups[d])
		sh.Count[d] = int64(nd.NumGroups[d])
	}
	return sh
}

// intParams extracts scalar int argument values by parameter position (the
// analyzer's uniform-expression parameters).
func intParams(args []Arg) []int64 {
	params := make([]int64, len(args))
	for i := range args {
		if args[i].Kind == ArgInt {
			params[i] = args[i].I
		}
	}
	return params
}

// planElisions derives the per-argument elision plan for one launch from
// the kernel's static summary. Every elision taken here is re-validated
// against the VM's dynamic access stats when the launch completes
// (crossCheck for the twin runtime, per-chunk checks for the N-way runtime);
// a violation is a hard runtime error. Buffer size lookup goes through
// argBufSize so both the twin and topology buffer types plan identically.
func planElisions(info *clc.KernelInfo, sum *analysis.KernelSummary, nd vm.NDRange, args []Arg) []elision {
	el := make([]elision, len(args))
	if sum == nil {
		return el
	}
	items := nd.TotalGroups() * nd.WorkItemsPerGroup()
	sh := launchShape(nd)
	params := intParams(args)
	for i, param := range info.Kernel.Params {
		if !param.Ty.Ptr || args[i].Kind != ArgBuf || argBufSize(args[i]) < 0 {
			continue
		}
		sa := sum.Arg(param.Name)
		if sa == nil || sa.Space != clc.SpaceGlobal || !sa.Written {
			continue
		}
		size := argBufSize(args[i])
		if nd.Dims == 1 && sa.WriteOnly() && sa.SlotExact {
			el[i].slotExact = true
			el[i].fullOverwrite = 4*items >= size
			continue
		}
		// Strided fallback: evaluate the launch-level write footprint from
		// the interval-set summary. Works for any launch rank and for
		// read-write buffers (narrowing ships and merges never changes what
		// the kernel reads), but the upload of a stale GPU copy may only be
		// skipped for a write-only buffer whose must-writes cover every word
		// and whose group spans ascend (see elision.writes and
		// ArgWrites.Monotone).
		if !sa.WritesComplete() {
			continue
		}
		aw, ok := sum.EvalArgWrites(sum.ArgIndex(param.Name), sh, params,
			int64(size/4), stridedPlanBudget)
		if !ok {
			continue
		}
		el[i].writes = &aw
		el[i].fullOverwrite = sa.WriteOnly() && aw.MustCover && aw.Monotone() &&
			size%4 == 0
	}
	return el
}

// crossCheck validates the VM's dynamic access stats for one completed
// launch against the static summary the runtime's elisions relied on. Any
// violation — a read or write of a parameter the analyzer called
// untouched, a "slot-exact" store landing outside its work-group chunk, or
// a "full-overwrite" kernel leaving buffer words unwritten after an upload
// was skipped — is a hard error: it means results may be silently wrong,
// so it must fail tests rather than pass unnoticed.
func crossCheck(k *Kernel, nd vm.NDRange, args []Arg, el []elision, out *schedOutcome, gpuStats vm.Stats) error {
	if k.Sum == nil {
		return nil
	}
	var dyn vm.Stats
	dyn.Add(out.stats)
	dyn.Add(gpuStats)
	origMask := ^uint64(0)
	if n := len(k.Info.Kernel.Params); n < 64 {
		origMask = (1 << uint(n)) - 1
	}
	if bad := dyn.ParamReadMask & origMask &^ k.chkRead; bad != 0 {
		return fmt.Errorf("core: kernel %q: dynamic read of parameter %d outside the static access summary",
			k.Name, bits.TrailingZeros64(bad))
	}
	if bad := dyn.ParamWriteMask & origMask &^ k.chkWrite; bad != 0 {
		return fmt.Errorf("core: kernel %q: dynamic write of parameter %d outside the static access summary",
			k.Name, bits.TrailingZeros64(bad))
	}
	ls := nd.WorkItemsPerGroup()
	items := nd.TotalGroups() * ls
	for i := range el {
		if i >= len(vm.Stats{}.WrLo) {
			continue
		}
		name := k.Info.Kernel.Params[i].Name
		written := dyn.ParamWriteMask&(1<<uint(i)) != 0
		switch {
		case el[i].slotExact:
			if written && int(dyn.WrHi[i]) > 4*items {
				return fmt.Errorf("core: kernel %q: slot-exact buffer %q written past its work-items' slots (byte %d > %d)",
					k.Name, name, dyn.WrHi[i], 4*items)
			}
			// Every CPU store must stay inside the chunks the CPU was
			// assigned: ship narrowing only forwarded those byte ranges to
			// the merge.
			if out.stats.ParamWriteMask&(1<<uint(i)) != 0 {
				if cpuLo := 4 * ls * (nd.TotalGroups() - out.cpuWGs); int(out.stats.WrLo[i]) < cpuLo {
					return fmt.Errorf("core: kernel %q: slot-exact buffer %q written below the CPU's chunk (byte %d < %d)",
						k.Name, name, out.stats.WrLo[i], cpuLo)
				}
			}
		case el[i].writes != nil:
			w := el[i].writes
			if written && (int64(dyn.WrLo[i]) < 4*w.Hull.Lo || int64(dyn.WrHi[i]) > 4*w.Hull.Hi) {
				return fmt.Errorf("core: kernel %q: buffer %q written outside its strided launch hull (bytes [%d,%d) vs [%d,%d))",
					k.Name, name, dyn.WrLo[i], dyn.WrHi[i], 4*w.Hull.Lo, 4*w.Hull.Hi)
			}
			// CPU stores must stay inside the hull of the group suffix the
			// CPU was assigned: ships forwarded only those spans' bytes.
			if out.stats.ParamWriteMask&(1<<uint(i)) != 0 && out.cpuWGs > 0 {
				h := w.HullRange(int64(nd.TotalGroups()-out.cpuWGs), int64(len(w.GroupSpans)))
				if int64(out.stats.WrLo[i]) < 4*h.Lo || int64(out.stats.WrHi[i]) > 4*h.Hi {
					return fmt.Errorf("core: kernel %q: buffer %q: CPU writes escaped its chunks' strided spans (bytes [%d,%d) vs [%d,%d))",
						k.Name, name, out.stats.WrLo[i], out.stats.WrHi[i], 4*h.Lo, 4*h.Hi)
				}
			}
		default:
			continue
		}
		if el[i].uploadSkipped {
			// The stale-GPU-copy upload was elided on the promise that the
			// kernel overwrites the whole buffer; verify the combined write
			// range covered it (CPU-only when the CPU computed everything,
			// since the result is then read from the CPU buffer alone).
			cov := dyn
			if out.didAll {
				cov = out.stats
			}
			sz := args[i].Buf.Size
			if cov.ParamWriteMask&(1<<uint(i)) == 0 || cov.WrLo[i] != 0 || int(cov.WrHi[i]) < sz {
				return fmt.Errorf("core: kernel %q: upload of buffer %q was skipped but dynamic writes did not cover it",
					k.Name, name)
			}
		}
	}
	return nil
}

// EnqueueNDRangeKernel executes the kernel cooperatively on both devices
// and blocks until the kernel is complete (§7: kernel calls are blocking;
// the device-to-host transfer of results proceeds asynchronously so the
// next kernel can overlap it, §5.5).
func (r *Runtime) EnqueueNDRangeKernel(p *sim.Proc, k *Kernel, nd vm.NDRange, args []Arg) error {
	if r.deferredErr != nil {
		return r.deferredErr
	}
	if len(args) != len(k.Info.Kernel.Params) {
		return fmt.Errorf("core: kernel %q expects %d args, got %d", k.Name, len(k.Info.Kernel.Params), len(args))
	}
	r.kernelSeq++
	kid := r.kernelSeq
	rep := &KernelReport{KID: kid, Name: k.Name, TotalWGs: nd.TotalGroups(), Start: p.Now()}
	r.Reports = append(r.Reports, rep)
	r.tracef(kid, "enqueue kernel %s (%d work-groups)", k.Name, nd.TotalGroups())

	// Classify buffer arguments using the compile-time access analysis and
	// derive the analyzer-driven elision plan for this launch.
	el := planElisions(k.Info, k.Sum, nd, args)

	// Launch-time split un-veto: a kernel vetoed by a conservative race
	// finding may still split its work-groups across CPU threads when the
	// strided certificate proves this launch's per-item footprints pairwise
	// disjoint within every group.
	split := k.splitOK
	if !split && !r.opts.NoWorkGroupSplit &&
		passes.CanSplitWithCertificate(k.Info, k.Sum, launchShape(nd), intParams(args), stridedPlanBudget) {
		split = true
		r.countSplitUnvetoed()
		r.tracef(kid, "work-group splitting un-vetoed by the strided disjointness certificate")
	}
	var outBufs []*Buffer
	var outEl []elision // per outBufs entry
	var inputReady []*sim.Event
	for i, param := range k.Info.Kernel.Params {
		if !param.Ty.Ptr {
			continue
		}
		if args[i].Kind != ArgBuf || args[i].Buf == nil {
			return fmt.Errorf("core: kernel %q arg %d (%s) must be a buffer", k.Name, i, param.Name)
		}
		b := args[i].Buf
		acc := k.Info.ParamAccess[param.Name]
		if acc.Read {
			// The CPU scheduler must wait for this buffer's current version
			// to be available CPU-side (§5.3). Capture the readiness event
			// before out-buffer bookkeeping replaces it.
			inputReady = append(inputReady, b.cpuReady)
		}
		if acc.Written {
			outBufs = append(outBufs, b)
			outEl = append(outEl, el[i])
		}
		// GPU-side readiness: if the most recent data lives only on the
		// CPU (previous kernel ran entirely there), upload it first. The
		// write is ordered before the kernel by the in-order app queue.
		// When the analyzer proved the kernel overwrites every word of the
		// buffer, the stale GPU copy never becomes visible — both devices
		// recompute their slots from unwritten inputs — and the upload is
		// skipped (the merge compares CPU data against the same stale
		// bytes the scratches were primed from, so untouched words keep
		// whatever the GPU holds and touched words take a freshly computed
		// value from one device or the other).
		if !b.locGPU {
			if el[i].fullOverwrite {
				el[i].uploadSkipped = true
				r.countUploadSkipped()
				r.tracef(kid, "upload of stale out buffer %q skipped (full-overwrite summary)", param.Name)
			} else {
				snap := append([]byte(nil), b.host...)
				r.gpuApp.EnqueueWriteBufferTagged(b.gpuBuf, snap, "upload")
				b.locGPU = true
				b.gpuVersion = b.receivedVersion
			}
		}
	}

	// Scratch buffers for merging (§4.1, §6.1): per out buffer, a copy of
	// the unmodified data and a landing area for CPU-computed data. Both
	// start as copies of the current contents so unreceived regions compare
	// equal in the diff step. For a slot-exact out buffer the cpuCopy prime
	// is elided: the narrowed merge window reads only words the CPU ships.
	scratches := make([]scratchPair, len(outBufs))
	for i, b := range outBufs {
		sc := scratchPair{buf: b, el: outEl[i], orig: r.pool.acquire(b.Size), cpuCopy: r.pool.acquire(b.Size)}
		r.gpuApp.EnqueueCopyBuffer(b.gpuBuf, sc.orig)
		if sc.el.slotExact {
			r.countPrimeElided()
		} else {
			r.gpuApp.EnqueueCopyBuffer(b.gpuBuf, sc.cpuCopy)
		}
		scratches[i] = sc
	}

	// The status buffer is not reset between kernels: a stale status names
	// the previous kernel's ID and the abort check ignores it (§5.3's
	// version-based discarding of stale messages).

	// Out-buffer version bookkeeping (§5.3).
	for _, b := range outBufs {
		b.expectedVersion = kid
		b.locCPU = false
		b.cpuReady = r.Env.NewEvent()
	}

	// Launch the transformed kernel over the full NDRange on the GPU.
	slog := newStatusLog(r.Env)
	gpuArgs := make([]ocl.Arg, 0, len(args)+passes.GPUExtraArgs)
	for _, a := range args {
		gpuArgs = append(gpuArgs, a.gpu())
	}
	gpuArgs = append(gpuArgs, ocl.BufArg(r.statusBuf), ocl.IntArg(int64(kid)))
	gpuDone, gpuRes := r.gpuApp.EnqueueNDRangeKernel(k.gpu, nd, gpuArgs, ocl.LaunchOpts{
		Abort:    slog,
		MidAbort: !r.opts.NoAbortInLoops,
		Backend:  r.opts.Backend,
	})

	// CPU scheduler thread (§4.2, §5.1).
	outcome := &schedOutcome{variantUsed: k.bestCPUVar}
	sched := r.Env.Go(fmt.Sprintf("fcl-cpu-sched-k%d", kid), func(sp *sim.Proc) {
		r.runCPUScheduler(sp, k, kid, nd, args, outBufs, scratches, slog, gpuDone, inputReady, split, outcome)
	})

	// Blocking kernel call: the kernel is complete as soon as EITHER the
	// GPU kernel finishes OR the CPU has computed the entire NDRange (the
	// GPU kernel then keeps draining on its queue, its results ignored,
	// §4.2 — it may not even have started yet if its input upload is still
	// on the bus). A laggard CPU subkernel likewise keeps running on the
	// CPU device queue and the next kernel's subkernels queue behind it.
	firstDone := r.Env.NewEvent()
	r.Env.Go(fmt.Sprintf("fcl-watch-gpu-k%d", kid), func(wp *sim.Proc) {
		wp.Wait(gpuDone)
		firstDone.Fire()
	})
	r.Env.Go(fmt.Sprintf("fcl-watch-cpu-k%d", kid), func(wp *sim.Proc) {
		wp.Wait(sched.Done)
		// Return without the GPU only when its kernel has not even begun
		// (still behind its input upload on the bus); a started kernel
		// drains quickly once the final status lands, and waiting for it
		// avoids leaving a zombie launch in front of the next kernel.
		if (outcome.didAll && !gpuRes.Started) || outcome.err != nil {
			firstDone.Fire()
		}
	})
	p.Wait(firstDone)

	// Report fields finalize when each side completes.
	r.Env.Go(fmt.Sprintf("fcl-report-k%d", kid), func(fp *sim.Proc) {
		fp.Wait(sched.Done)
		rep.CPUWGs = outcome.cpuWGs
		rep.Subkernels = outcome.subkernels
		rep.CPUDidAll = outcome.didAll
		rep.VariantUsed = outcome.variantUsed
		if outcome.err != nil {
			r.deferredErr = fmt.Errorf("core: CPU execution of %q: %w", k.Name, outcome.err)
		}
		fp.Wait(gpuDone)
		rep.GPUExecuted = gpuRes.Executed
		rep.GPUSkipped = gpuRes.Skipped
		rep.GPUAborted = gpuRes.Aborted
		if gpuRes.Err != nil {
			r.deferredErr = fmt.Errorf("core: GPU execution of %q: %w", k.Name, gpuRes.Err)
		}
		if err := crossCheck(k, nd, args, el, outcome, gpuRes.Stats); err != nil && r.deferredErr == nil {
			r.deferredErr = err
		}
	})
	if gpuDone.Fired() {
		r.tracef(kid, "GPU kernel done (executed %d, skipped %d, aborted %d)",
			gpuRes.Executed, gpuRes.Skipped, gpuRes.Aborted)
		if gpuRes.Err != nil {
			return fmt.Errorf("core: GPU execution of %q: %w", k.Name, gpuRes.Err)
		}
	}
	if outcome.err != nil {
		return fmt.Errorf("core: CPU execution of %q: %w", k.Name, outcome.err)
	}

	// "CPU computed the entire NDRange first" (§4.2): either the GPU is
	// still running (the CPU beat it outright), or both finished and the
	// GPU did not cover the whole range itself.
	if sched.Done.Fired() && outcome.didAll &&
		(!gpuDone.Fired() || gpuRes.Executed < nd.TotalGroups()) {
		// The CPU computed the entire NDRange first: the final data is
		// already on the CPU; the GPU's partial results are ignored and no
		// device-to-host transfer is needed (§4.2, §4.4).
		r.tracef(kid, "CPU completed entire NDRange first; GPU results ignored")
		for _, b := range outBufs {
			ev := r.cpuQ.EnqueueReadBuffer(b.cpuBuf, b.host)
			p.Wait(ev)
			b.receivedVersion = kid
			b.locCPU = true
			b.locGPU = false
			b.cpuReady.Fire()
		}
		r.releaseScratchesWhenSafe(sched.Done, gpuDone, scratches, outcome, nil)
		rep.End = p.Now()
		r.tracef(kid, "kernel call returns (CPU-did-all path)")
		return nil
	}

	// Data merge on the GPU (§4.3). If no status update had arrived by GPU
	// completion, the GPU executed every work-group itself, so the merge is
	// a no-op and is skipped (data that lands later duplicates values the
	// GPU already computed).
	doMerge := len(slog.updates) > 0
	if doMerge {
		r.tracef(kid, "enqueue data merge for %d buffer(s)", len(scratches))
	} else {
		r.tracef(kid, "merge skipped (no CPU data arrived)")
	}
	// loFinal is the lowest flattened work-group ID whose CPU data has been
	// shipped; slot-exact buffers narrow their merge window to the word
	// range those work-groups could have written.
	loFinal := 0
	if doMerge {
		loFinal = slog.updates[0].doneFrom
		for _, u := range slog.updates {
			if u.doneFrom < loFinal {
				loFinal = u.doneFrom
			}
		}
	}
	var mergeEvents []*sim.Event
	dhCopies := make([]*ocl.Buffer, len(scratches))
	for i, sc := range scratches {
		if doMerge {
			words := sc.buf.Size / 4
			mergeLo, mergeHi := 0, words
			if sc.el.slotExact {
				// CPU subkernels covered [loFinal, total) and each work-item
				// writes exactly its own word, so only words in
				// [loFinal*localSize, totalItems) can differ from orig.
				ls := nd.WorkItemsPerGroup()
				if items := nd.TotalGroups() * ls; items < mergeHi {
					mergeHi = items
				}
				if mergeLo = loFinal * ls; mergeLo > mergeHi {
					mergeLo = mergeHi
				}
				r.countMergeWordsElided(int64(words - (mergeHi - mergeLo)))
			} else if w := sc.el.writes; w != nil {
				// CPU subkernels covered flat groups [loFinal, total); only
				// words inside the union of those groups' may-write spans
				// were shipped, so only they can differ from orig (the
				// cpuCopy prime filled everything else with orig).
				h := w.HullRange(int64(loFinal), int64(len(w.GroupSpans)))
				if h.Empty() {
					mergeLo, mergeHi = 0, 0
				} else {
					if int(h.Lo) > mergeLo {
						mergeLo = int(h.Lo)
					}
					if int(h.Hi) < mergeHi {
						mergeHi = int(h.Hi)
					}
					if mergeLo > mergeHi {
						mergeLo = mergeHi
					}
				}
				r.countMergeWordsElided(int64(words - (mergeHi - mergeLo)))
			}
			if span := mergeHi - mergeLo; span > 0 {
				local := 64
				global := ((span + local - 1) / local) * local
				margs := []ocl.Arg{
					ocl.BufArg(sc.cpuCopy), ocl.BufArg(sc.buf.gpuBuf), ocl.BufArg(sc.orig),
					ocl.IntArg(int64(mergeHi)), ocl.IntArg(int64(mergeLo)),
				}
				ev, _ := r.gpuApp.EnqueueNDRangeKernel(r.mergeK, vm.NewNDRange1D(global, local), margs, ocl.LaunchOpts{Backend: r.opts.Backend})
				mergeEvents = append(mergeEvents, ev)
			}
		}
		// Snapshot the merged result device-side so the device-to-host
		// transfer can overlap the next kernel's writes to the same buffer
		// (§5.5: copies of out buffers are made at the end of the kernel).
		dhCopies[i] = r.pool.acquire(sc.buf.Size)
		ev := r.gpuApp.EnqueueCopyBuffer(sc.buf.gpuBuf, dhCopies[i])
		mergeEvents = append(mergeEvents, ev)
		sc.buf.gpuVersion = kid
		sc.buf.locGPU = true
	}
	var dhDone *sim.Event
	if len(outBufs) > 0 {
		dhDone = r.Env.NewEvent()
		r.Env.Go(fmt.Sprintf("fcl-dh-k%d", kid), func(dp *sim.Proc) {
			dp.WaitAll(mergeEvents...)
			for i, b := range outBufs {
				ev := r.gpuDH.EnqueueReadBuffer(dhCopies[i], b.host)
				dp.Wait(ev)
				r.tracef(kid, "device-to-host transfer of out buffer %d complete", i)
				// Refresh the CPU device's copy so subsequent kernels can
				// execute there too (§4.4). No need to wait: the in-order
				// CPU queue sequences this write before any later
				// subkernel, even behind a laggard subkernel of this
				// kernel whose results are being ignored.
				r.cpuQ.EnqueueWriteBufferTagged(b.cpuBuf, b.host, "refresh")
				b.receivedVersion = kid
				b.locCPU = true
				b.cpuReady.Fire()
				r.pool.release(dhCopies[i])
			}
			dhDone.Fire()
		})
	}
	r.releaseScratchesWhenSafe(sched.Done, gpuDone, scratches, outcome, dhDone)
	rep.End = p.Now()
	r.tracef(kid, "kernel call returns (merge path)")
	return nil
}

// scratchPair holds the per-out-buffer GPU scratch buffers used by the
// merge step — the unmodified original and the CPU-data landing area —
// plus the launch's elision plan for the buffer.
type scratchPair struct {
	buf     *Buffer
	el      elision
	orig    *ocl.Buffer
	cpuCopy *ocl.Buffer
}

// releaseScratchesWhenSafe returns scratch buffers to the pool once no
// in-flight transfer, queued copy or merge can still touch them: after the
// CPU scheduler exits, its last host-to-device transfer lands, the GPU
// kernel (and the scratch-priming copies queued before it) completes, and
// the DH thread (if any) finishes.
func (r *Runtime) releaseScratchesWhenSafe(schedDone, gpuDone *sim.Event, scratches []scratchPair, out *schedOutcome, dhDone *sim.Event) {
	if len(scratches) == 0 {
		return
	}
	r.Env.Go("fcl-scratch-release", func(p *sim.Proc) {
		p.Wait(schedDone)
		p.Wait(gpuDone)
		if out.lastHD != nil {
			p.Wait(out.lastHD)
		}
		if dhDone != nil {
			p.Wait(dhDone)
		}
		for _, sc := range scratches {
			r.pool.release(sc.orig)
			r.pool.release(sc.cpuCopy)
		}
	})
}

// runCPUScheduler is the CPU scheduler thread (§4.2): it waits for input
// buffers to be CPU-resident, then repeatedly launches subkernels over
// work-group ranges from the top of the flattened ID space downward,
// shipping computed data followed by a status message to the GPU after each
// subkernel, until either end of the range is met or the GPU finishes.
func (r *Runtime) runCPUScheduler(sp *sim.Proc, k *Kernel, kid int, nd vm.NDRange,
	args []Arg, outBufs []*Buffer, scratches []scratchPair,
	slog *statusLog, gpuDone *sim.Event, inputReady []*sim.Event, split bool, out *schedOutcome) {

	// Wait for the most recent versions of all inputs to reach the CPU
	// (§5.3). The GPU proceeds meanwhile — it always has current data.
	for _, ev := range inputReady {
		sp.Wait(ev)
	}
	r.tracef(kid, "CPU scheduler: inputs ready")
	if gpuDone.Fired() {
		r.tracef(kid, "CPU scheduler: GPU already finished; exiting")
		return
	}

	total := nd.TotalGroups()
	cus := r.cpu.Dev.Cfg.ComputeUnits
	chunk := int(math.Round(float64(total) * r.opts.InitialChunkPct / 100))
	if chunk < 1 {
		chunk = 1
	}
	// §5.1: never launch fewer work-groups than the CPU has compute units
	// (work-group splitting, when allowed, handles the sub-CU tail).
	if chunk < cus && total >= cus {
		chunk = cus
	}
	step := int(math.Round(float64(total) * r.opts.StepPct / 100))
	if step < 1 && r.opts.StepPct > 0 {
		step = 1
	}

	profiling := r.opts.OnlineProfiling && len(k.cpu) > 1 && !k.profiled
	varTimes := make([]float64, len(k.cpu))
	varTried := 0
	curVar := k.bestCPUVar

	hi := total - 1
	prevAvg := math.MaxFloat64
	for hi >= 0 && !gpuDone.Fired() {
		// Launch whole waves: a chunk that is not a multiple of the CPU's
		// compute units leaves threads idle in its final wave (§5.1's
		// resource-utilization concern).
		launchChunk := chunk
		if launchChunk > cus {
			launchChunk = (launchChunk / cus) * cus
		}
		if profiling && varTried < len(k.cpu) {
			// Online profiling probes each kernel version on a small
			// allocation (§6.6: "running each kernel version for a small
			// allocation size"); work-group splitting keeps the cores busy.
			launchChunk = 2
			if launchChunk > total {
				launchChunk = total
			}
		}
		lo := hi - launchChunk + 1
		if lo < 0 {
			lo = 0
		}
		if profiling && varTried < len(k.cpu) {
			curVar = varTried
		}
		ndSlice := nd.Slice(lo, hi)
		cargs := make([]ocl.Arg, 0, len(args)+passes.CPUExtraArgs)
		for _, a := range args {
			cargs = append(cargs, a.cpu())
		}
		cargs = append(cargs, ocl.IntArg(int64(lo)), ocl.IntArg(int64(hi)))
		r.tracef(kid, "CPU subkernel launch: work-groups [%d, %d] (variant %d)", lo, hi, curVar)
		t0 := sp.Now()
		ev, res := r.cpuQ.EnqueueNDRangeKernel(k.cpu[curVar], ndSlice, cargs, ocl.LaunchOpts{
			// Work-group splitting needs the analyzer's blessing on top of
			// the user knob: a divergent barrier or a race finding makes
			// splitting one group across threads unsafe — unless this
			// launch's disjointness certificate overturned the race veto.
			Split:   !r.opts.NoWorkGroupSplit && split,
			Backend: r.opts.Backend,
		})
		sp.Wait(ev)
		if res.Err != nil {
			out.err = res.Err
			return
		}
		out.stats.Add(res.Stats)
		nWGs := hi - lo + 1
		dur := sp.Now() - t0
		avg := dur / float64(nWGs)
		out.subkernels++
		out.cpuWGs += nWGs

		if profiling && varTried < len(k.cpu) {
			varTimes[varTried] = avg
			varTried++
			if varTried == len(k.cpu) {
				best := 0
				for i, t := range varTimes {
					if t < varTimes[best] {
						best = i
					}
				}
				k.bestCPUVar = best
				k.profiled = true
				curVar = best
			}
		}
		out.variantUsed = curVar

		// Ship computed data, then the status message, on the in-order hd
		// queue — the GPU treats a work-group as complete only once its
		// data has arrived (§4.2). Intermediate copies (the staging reads)
		// let the next subkernel proceed while transfers are in flight
		// (§5.5): the scheduler does not wait for any of this.
		if !gpuDone.Fired() {
			out.lastHD = r.shipToGPU(kid, lo, hi, nd, outBufs, scratches, slog)
		}

		// Adaptive chunk sizing (§5.1): grow while time per work-group
		// keeps improving.
		if avg < prevAvg {
			chunk += step
		}
		prevAvg = avg
		hi = lo - 1
	}
	if hi < 0 {
		out.didAll = true
	}
}

// shipToGPU stages one subkernel's out-buffer data off the CPU device and
// sends it, followed by the status message, to the GPU over the in-order hd
// queue. The staging reads are enqueued on the CPU queue (ordered after the
// subkernel that produced the data); a helper process waits for them and
// then enqueues the hd transfers, so the scheduler never blocks. The
// returned event fires when the status message has landed at the GPU.
//
// A slot-exact buffer's ship is narrowed to the byte range the subkernel's
// work-groups [lo, hi] could have written — [4*localSize*lo,
// 4*localSize*(hi+1)) clamped to the buffer — since every work-item writes
// exactly its own word; earlier (higher) chunks were shipped by earlier
// subkernels. Other buffers ship in full, as before.
//
// Ordering across subkernels is preserved without extra synchronization:
// staging reads serialize on the in-order CPU queue, so the helper for
// subkernel N enqueues its hd transfers strictly before subkernel N+1's.
func (r *Runtime) shipToGPU(kid, lo, hi int, nd vm.NDRange, outBufs []*Buffer, scratches []scratchPair, slog *statusLog) *sim.Event {
	type staged struct {
		data []byte
		off  int
		ev   *sim.Event
		dst  *ocl.Buffer
	}
	var stages []staged
	for i, b := range outBufs {
		off, end := 0, b.Size
		if scratches[i].el.slotExact {
			ls := nd.WorkItemsPerGroup()
			off = 4 * ls * lo
			end = 4 * ls * (hi + 1)
			if end > b.Size {
				end = b.Size
			}
			if off > end {
				off = end
			}
			r.countShipBytesSkipped(int64(b.Size - (end - off)))
		} else if w := scratches[i].el.writes; w != nil {
			// Strided summary: ship the hull of the chunk's group spans.
			// Unwritten bytes inside the hull carry the CPU's pre-kernel
			// data, which the merge compares equal to orig (or, after a
			// skipped upload, promotes as the buffer's true surviving value —
			// monotone spans guarantee no lower, not-yet-executed group can
			// own a shipped byte in that case).
			h := w.HullRange(int64(lo), int64(hi)+1)
			if h.Empty() {
				off, end = 0, 0
			} else {
				off = 4 * int(h.Lo)
				end = 4 * int(h.Hi)
				if end > b.Size {
					end = b.Size
				}
				if off > end {
					off = end
				}
			}
			r.countShipBytesSkipped(int64(b.Size - (end - off)))
		}
		if end == off {
			continue // every slot of this chunk lies past the buffer's end
		}
		data := make([]byte, end-off)
		stages = append(stages, staged{
			data: data,
			off:  off,
			ev:   r.cpuQ.EnqueueReadBufferAt(b.cpuBuf, off, data),
			dst:  scratches[i].cpuCopy,
		})
	}
	shipped := r.Env.NewEvent()
	r.Env.Go(fmt.Sprintf("fcl-ship-k%d-lo%d", kid, lo), func(wp *sim.Proc) {
		for _, s := range stages {
			wp.Wait(s.ev)
		}
		for _, s := range stages {
			r.gpuHD.EnqueueWriteBufferAtTagged(s.dst, s.off, s.data, "ship")
		}
		st := encodeStatus(int32(kid), int32(lo))
		stEv := r.gpuHD.EnqueueWriteBufferTagged(r.statusBuf, st, "status")
		r.gpuHD.EnqueueCall(func() {
			slog.record(lo)
			r.tracef(kid, "status arrived at GPU: work-groups >= %d complete on CPU", lo)
		})
		wp.Wait(stEv)
		shipped.Fire()
	})
	return shipped
}
