package core

import (
	"fmt"
	"sort"
	"strings"

	"fluidicl/internal/sim"
	"fluidicl/internal/trace"
)

// TraceEvent is one timestamped runtime event.
type TraceEvent struct {
	T    sim.Time
	KID  int
	What string
}

// Trace records the runtime's cooperative-execution timeline when enabled
// with EnableTrace. It is an observability aid: `fluidibench trace <bench>`
// prints it, and tests assert orderings on it (e.g. "status messages always
// follow their data").
type Trace struct {
	Events []TraceEvent
}

// EnableTrace turns on event recording for subsequent kernel executions.
func (r *Runtime) EnableTrace() *Trace {
	r.trace = &Trace{}
	return r.trace
}

func (r *Runtime) tracef(kid int, format string, args ...interface{}) {
	rec := r.Env.Trace
	if r.trace == nil && rec == nil {
		return
	}
	what := fmt.Sprintf(format, args...)
	if r.trace != nil {
		r.trace.Events = append(r.trace.Events, TraceEvent{
			T:    r.Env.Now(),
			KID:  kid,
			What: what,
		})
	}
	if rec != nil {
		// Every FluidiCL scheduling decision (subkernel dispatch, ships,
		// merges, elisions, completion races) also lands on the runtime's
		// own recorder track, as instants on the shared virtual clock.
		rec.Instant(r.fclTrack(rec), what, r.Env.Now(),
			trace.KV{K: "kid", V: int64(kid)})
	}
}

// fclTrack returns (registering on first use) the recorder track carrying
// the FluidiCL runtime's scheduling decisions.
func (r *Runtime) fclTrack(rec *trace.Recorder) int {
	if r.fclTrk == 0 {
		r.fclTrk = rec.Track("FluidiCL runtime") + 1
	}
	return r.fclTrk - 1
}

// String renders the timeline, one event per line, time-ordered.
func (t *Trace) String() string {
	evs := make([]TraceEvent, len(t.Events))
	copy(evs, t.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	var b strings.Builder
	for _, e := range evs {
		fmt.Fprintf(&b, "%10.3f us  k%-2d %s\n", e.T*1e6, e.KID, e.What)
	}
	return b.String()
}

// Find returns the events whose description contains substr, time-ordered.
func (t *Trace) Find(substr string) []TraceEvent {
	var out []TraceEvent
	for _, e := range t.Events {
		if strings.Contains(e.What, substr) {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}
