package polybench

import (
	"fmt"

	"fluidicl/internal/sched"
	"fluidicl/internal/vm"
)

const syr2kSrc = `
// SYR2K: C = alpha * (A * B^T + B * A^T) + beta * C — like SYRK but with
// twice the memory traffic per iteration.
__kernel void syr2k_kernel(__global float* A, __global float* B, __global float* C,
                           int n, int m, float alpha, float beta)
{
    int j = get_global_id(0);
    int i = get_global_id(1);
    if (i < n && j < n) {
        float acc = C[i * n + j] * beta;
        for (int k = 0; k < m; k++) {
            acc += alpha * A[i * m + k] * B[j * m + k];
            acc += alpha * B[i * m + k] * A[j * m + k];
        }
        C[i * n + j] = acc;
    }
}
`

// Syr2k builds the SYR2K benchmark with an n x n output and inner dimension m.
func Syr2k(n, m int) *Benchmark {
	alpha, beta := float32(1.5), float32(1.2)
	A := newGen(51).slice(n * m)
	B := newGen(52).slice(n * m)
	C0 := newGen(53).slice(n * n)

	C := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			acc := C0[i*n+j] * beta
			for k := 0; k < m; k++ {
				acc += alpha * A[i*m+k] * B[j*m+k]
				acc += alpha * B[i*m+k] * A[j*m+k]
			}
			C[i*n+j] = acc
		}
	}

	local := 8
	nd := vm.NewNDRange2D(roundUp(n, local), roundUp(n, local), local, local)
	app := &sched.App{
		Name:   "SYR2K",
		Source: syr2kSrc,
		Buffers: map[string]int{
			"A": 4 * n * m, "B": 4 * n * m, "C": 4 * n * n,
		},
		Inputs: map[string][]byte{
			"A": f32enc(A), "B": f32enc(B), "C": f32enc(C0),
		},
		Launches: []sched.Launch{
			{Kernel: "syr2k_kernel", ND: nd, Args: []sched.ArgSpec{
				sched.Buf("A"), sched.Buf("B"), sched.Buf("C"),
				sched.Int(int64(n)), sched.Int(int64(m)),
				sched.Float(float64(alpha)), sched.Float(float64(beta)),
			}},
		},
		Outputs: []string{"C"},
	}
	return &Benchmark{
		Name:      "SYR2K",
		App:       app,
		Expected:  map[string][]byte{"C": f32enc(C)},
		InputDesc: fmt.Sprintf("(%d, %d)", n, m),
	}
}
