package polybench

// NamedSource is one MiniCL translation unit with a display name, for tools
// (fluidilint, the analyzer's golden tests) that sweep every shipped kernel
// source.
type NamedSource struct {
	Name string
	Src  string
}

// Sources returns every kernel source the suite ships: the paper's six
// benchmarks, the extras, and the hand-optimized CPU variant of CORR's
// correlation kernel.
func Sources() []NamedSource {
	return []NamedSource{
		{"2MM", twommSrc},
		{"BICG", bicgSrc},
		{"CORR", corrSrc},
		{"CORR-cpu-variant", CorrCPUVariantSrc},
		{"GESUMMV", gesummvSrc},
		{"SYRK", syrkSrc},
		{"SYR2K", syr2kSrc},
		{"ATAX", ataxSrc},
		{"MVT", mvtSrc},
		{"GEMM", gemmSrc},
		{"2DCONV", twoDConvSrc},
	}
}
