package polybench

import (
	"fmt"

	"fluidicl/internal/sched"
	"fluidicl/internal/vm"
)

const gesummvSrc = `
// GESUMMV: y = alpha * A * x + beta * B * x, one row per work-item.
// Row-major row walks are sequential for the CPU cache but uncoalesced
// across GPU work-items: this benchmark runs best on the CPU (paper §9.1).
__kernel void gesummv(__global float* A, __global float* B, __global float* x,
                      __global float* y, int n, float alpha, float beta)
{
    int i = get_global_id(0);
    if (i < n) {
        float t = 0.0f;
        float yv = 0.0f;
        for (int j = 0; j < n; j++) {
            t += A[i * n + j] * x[j];
            yv += B[i * n + j] * x[j];
        }
        y[i] = alpha * t + beta * yv;
    }
}
`

// Gesummv builds the GESUMMV benchmark over n x n matrices.
func Gesummv(n int) *Benchmark {
	alpha, beta := float32(1.5), float32(1.2)
	A := newGen(31).slice(n * n)
	B := newGen(32).slice(n * n)
	x := newGen(33).slice(n)

	y := make([]float32, n)
	for i := 0; i < n; i++ {
		var t, yv float32
		for j := 0; j < n; j++ {
			t += A[i*n+j] * x[j]
			yv += B[i*n+j] * x[j]
		}
		y[i] = alpha*t + beta*yv
	}

	local := 16
	nd := vm.NewNDRange1D(roundUp(n, local), local)
	app := &sched.App{
		Name:   "GESUMMV",
		Source: gesummvSrc,
		Buffers: map[string]int{
			"A": 4 * n * n, "B": 4 * n * n, "x": 4 * n, "y": 4 * n,
		},
		Inputs: map[string][]byte{
			"A": f32enc(A), "B": f32enc(B), "x": f32enc(x),
		},
		Launches: []sched.Launch{
			{Kernel: "gesummv", ND: nd, Args: []sched.ArgSpec{
				sched.Buf("A"), sched.Buf("B"), sched.Buf("x"), sched.Buf("y"),
				sched.Int(int64(n)), sched.Float(float64(alpha)), sched.Float(float64(beta)),
			}},
		},
		Outputs: []string{"y"},
	}
	return &Benchmark{
		Name:      "GESUMMV",
		App:       app,
		Expected:  map[string][]byte{"y": f32enc(y)},
		InputDesc: fmt.Sprintf("(%d)", n),
	}
}
