package polybench

import (
	"fmt"
	"math"

	"fluidicl/internal/sched"
	"fluidicl/internal/vm"
)

const corrSrc = `
// CORR: Pearson correlation matrix of an n x m data set, in four kernels
// (column means, column standard deviations, normalization, correlation).
__kernel void corr_mean(__global float* data, __global float* mean, int m, int n)
{
    int j = get_global_id(0);
    if (j < m) {
        float acc = 0.0f;
        for (int i = 0; i < n; i++) {
            acc += data[i * m + j];
        }
        mean[j] = acc / (float)n;
    }
}

__kernel void corr_std(__global float* data, __global float* mean, __global float* std,
                       int m, int n)
{
    int j = get_global_id(0);
    if (j < m) {
        float acc = 0.0f;
        for (int i = 0; i < n; i++) {
            float v = data[i * m + j] - mean[j];
            acc += v * v;
        }
        float s = sqrt(acc / (float)n);
        if (s <= 0.005f) {
            s = 1.0f;
        }
        std[j] = s;
    }
}

__kernel void corr_reduce(__global float* data, __global float* mean, __global float* std,
                          int m, int n, float sqrtn)
{
    int j = get_global_id(0);
    int i = get_global_id(1);
    if (i < n && j < m) {
        data[i * m + j] = (data[i * m + j] - mean[j]) / (sqrtn * std[j]);
    }
}

__kernel void corr_kernel4(__global float* data, __global float* symmat, int m, int n)
{
    int j1 = get_global_id(0);
    if (j1 < m) {
        symmat[j1 * m + j1] = 1.0f;
        for (int j2 = j1 + 1; j2 < m; j2++) {
            float acc = 0.0f;
            for (int i = 0; i < n; i++) {
                acc += data[i * m + j1] * data[i * m + j2];
            }
            symmat[j1 * m + j2] = acc;
            symmat[j2 * m + j1] = acc;
        }
    }
}
`

// CorrCPUVariantSrc is the hand-optimized CPU version of the correlation
// kernel used for the online-profiling experiment (paper §9.3, Table 3):
// its loops are interchanged for cache locality, accumulating a row of
// partial sums per work-item so the inner loop walks data sequentially.
// It is bit-identical in results to corr_kernel4 (the per-pair accumulation
// order over i is unchanged).
const CorrCPUVariantSrc = `
__kernel void corr_kernel4_cpu(__global float* data, __global float* symmat, int m, int n)
{
    int j1 = get_global_id(0);
    if (j1 < m) {
        float acc[256];
        for (int j2 = j1 + 1; j2 < m; j2++) {
            acc[j2] = 0.0f;
        }
        for (int i = 0; i < n; i++) {
            float d1 = data[i * m + j1];
            for (int j2 = j1 + 1; j2 < m; j2++) {
                acc[j2] += d1 * data[i * m + j2];
            }
        }
        symmat[j1 * m + j1] = 1.0f;
        for (int j2 = j1 + 1; j2 < m; j2++) {
            symmat[j1 * m + j2] = acc[j2];
            symmat[j2 * m + j1] = acc[j2];
        }
    }
}
`

// Corr builds the CORR benchmark over an n-point, m-feature data set
// (m <= 256; the CPU-variant kernel carries a 256-slot accumulator).
func Corr(m, n int) *Benchmark {
	if m > 256 {
		panic("polybench: Corr requires m <= 256")
	}
	data := newGen(21).slice(n * m)

	// Reference, mirroring kernel float32 op order exactly.
	mean := make([]float32, m)
	for j := 0; j < m; j++ {
		var acc float32
		for i := 0; i < n; i++ {
			acc += data[i*m+j]
		}
		mean[j] = acc / float32(n)
	}
	std := make([]float32, m)
	for j := 0; j < m; j++ {
		var acc float32
		for i := 0; i < n; i++ {
			v := data[i*m+j] - mean[j]
			acc += v * v
		}
		s := float32(math.Sqrt(float64(acc / float32(n))))
		if s <= 0.005 {
			s = 1.0
		}
		std[j] = s
	}
	sqrtn := float32(math.Sqrt(float64(float32(n))))
	norm := make([]float32, len(data))
	copy(norm, data)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			norm[i*m+j] = (norm[i*m+j] - mean[j]) / (sqrtn * std[j])
		}
	}
	symmat := make([]float32, m*m)
	for j1 := 0; j1 < m; j1++ {
		symmat[j1*m+j1] = 1.0
		for j2 := j1 + 1; j2 < m; j2++ {
			var acc float32
			for i := 0; i < n; i++ {
				acc += norm[i*m+j1] * norm[i*m+j2]
			}
			symmat[j1*m+j2] = acc
			symmat[j2*m+j1] = acc
		}
	}

	local1 := 8
	nd1 := vm.NewNDRange1D(roundUp(m, local1), local1)
	nd2 := vm.NewNDRange2D(roundUp(m, 8), roundUp(n, 8), 8, 8)
	app := &sched.App{
		Name:   "CORR",
		Source: corrSrc,
		Buffers: map[string]int{
			"data": 4 * n * m, "mean": 4 * m, "std": 4 * m, "symmat": 4 * m * m,
		},
		Inputs: map[string][]byte{"data": f32enc(data)},
		Launches: []sched.Launch{
			{Kernel: "corr_mean", ND: nd1, Args: []sched.ArgSpec{
				sched.Buf("data"), sched.Buf("mean"), sched.Int(int64(m)), sched.Int(int64(n)),
			}},
			{Kernel: "corr_std", ND: nd1, Args: []sched.ArgSpec{
				sched.Buf("data"), sched.Buf("mean"), sched.Buf("std"), sched.Int(int64(m)), sched.Int(int64(n)),
			}},
			{Kernel: "corr_reduce", ND: nd2, Args: []sched.ArgSpec{
				sched.Buf("data"), sched.Buf("mean"), sched.Buf("std"),
				sched.Int(int64(m)), sched.Int(int64(n)), sched.Float(float64(sqrtn)),
			}},
			{Kernel: "corr_kernel4", ND: nd1, Args: []sched.ArgSpec{
				sched.Buf("data"), sched.Buf("symmat"), sched.Int(int64(m)), sched.Int(int64(n)),
			}},
		},
		Outputs: []string{"symmat"},
	}
	return &Benchmark{
		Name:      "CORR",
		App:       app,
		Expected:  map[string][]byte{"symmat": f32enc(symmat)},
		InputDesc: fmt.Sprintf("(%d, %d)", m, n),
	}
}

// CorrWithVariant returns CORR with the hand-optimized CPU kernel
// registered as an alternate version of corr_kernel4 (for §9.3/Table 3).
func CorrWithVariant(m, n int) *Benchmark {
	b := Corr(m, n)
	b.App.Variants = append(b.App.Variants, sched.Variant{
		Kernel: "corr_kernel4",
		Source: CorrCPUVariantSrc,
		Name:   "corr_kernel4_cpu",
	})
	return b
}
