package polybench

import (
	"fmt"

	"fluidicl/internal/sched"
	"fluidicl/internal/vm"
)

// Extra benchmarks beyond the paper's six, exercising the same FluidiCL API
// on further Polybench kernels (the paper's §1 motivation — more programs
// become portable across devices — invites a broader suite). They are not
// part of the Table 2 set; `fluidibench run <name>` and the test suite use
// them.

// Extras returns the additional benchmarks.
func Extras() []*Benchmark {
	return []*Benchmark{
		Atax(512),
		Mvt(512),
		Gemm(96, 96, 96),
		TwoDConv(192),
	}
}

// AllWithExtras returns the paper's six plus the extras.
func AllWithExtras() []*Benchmark {
	return append(All(), Extras()...)
}

const ataxSrc = `
// ATAX: y = A^T (A x). Kernel 1 walks rows (CPU-friendly); kernel 2 reads
// columns across adjacent work-items (GPU-friendly).
__kernel void atax_kernel1(__global float* A, __global float* x, __global float* tmp, int n)
{
    int i = get_global_id(0);
    if (i < n) {
        float acc = 0.0f;
        for (int j = 0; j < n; j++) {
            acc += A[i * n + j] * x[j];
        }
        tmp[i] = acc;
    }
}

__kernel void atax_kernel2(__global float* A, __global float* tmp, __global float* y, int n)
{
    int j = get_global_id(0);
    if (j < n) {
        float acc = 0.0f;
        for (int i = 0; i < n; i++) {
            acc += A[i * n + j] * tmp[i];
        }
        y[j] = acc;
    }
}
`

// Atax builds the ATAX benchmark over an n x n matrix.
func Atax(n int) *Benchmark {
	A := newGen(61).slice(n * n)
	x := newGen(62).slice(n)

	tmp := make([]float32, n)
	for i := 0; i < n; i++ {
		var acc float32
		for j := 0; j < n; j++ {
			acc += A[i*n+j] * x[j]
		}
		tmp[i] = acc
	}
	y := make([]float32, n)
	for j := 0; j < n; j++ {
		var acc float32
		for i := 0; i < n; i++ {
			acc += A[i*n+j] * tmp[i]
		}
		y[j] = acc
	}

	local := 16
	nd := vm.NewNDRange1D(roundUp(n, local), local)
	app := &sched.App{
		Name:   "ATAX",
		Source: ataxSrc,
		Buffers: map[string]int{
			"A": 4 * n * n, "x": 4 * n, "tmp": 4 * n, "y": 4 * n,
		},
		Inputs: map[string][]byte{"A": f32enc(A), "x": f32enc(x)},
		Launches: []sched.Launch{
			{Kernel: "atax_kernel1", ND: nd, Args: []sched.ArgSpec{
				sched.Buf("A"), sched.Buf("x"), sched.Buf("tmp"), sched.Int(int64(n)),
			}},
			{Kernel: "atax_kernel2", ND: nd, Args: []sched.ArgSpec{
				sched.Buf("A"), sched.Buf("tmp"), sched.Buf("y"), sched.Int(int64(n)),
			}},
		},
		Outputs: []string{"y"},
	}
	return &Benchmark{
		Name:      "ATAX",
		App:       app,
		Expected:  map[string][]byte{"y": f32enc(y)},
		InputDesc: fmt.Sprintf("(%d, %d)", n, n),
	}
}

const mvtSrc = `
// MVT: x1 = x1 + A y1;  x2 = x2 + A^T y2. Independent kernels with opposite
// access patterns — a scheduler-friendliness stress.
__kernel void mvt_kernel1(__global float* A, __global float* x1, __global float* y1, int n)
{
    int i = get_global_id(0);
    if (i < n) {
        float acc = x1[i];
        for (int j = 0; j < n; j++) {
            acc += A[i * n + j] * y1[j];
        }
        x1[i] = acc;
    }
}

__kernel void mvt_kernel2(__global float* A, __global float* x2, __global float* y2, int n)
{
    int i = get_global_id(0);
    if (i < n) {
        float acc = x2[i];
        for (int j = 0; j < n; j++) {
            acc += A[j * n + i] * y2[j];
        }
        x2[i] = acc;
    }
}
`

// Mvt builds the MVT benchmark over an n x n matrix.
func Mvt(n int) *Benchmark {
	A := newGen(71).slice(n * n)
	x1 := newGen(72).slice(n)
	x2 := newGen(73).slice(n)
	y1 := newGen(74).slice(n)
	y2 := newGen(75).slice(n)

	rx1 := make([]float32, n)
	for i := 0; i < n; i++ {
		acc := x1[i]
		for j := 0; j < n; j++ {
			acc += A[i*n+j] * y1[j]
		}
		rx1[i] = acc
	}
	rx2 := make([]float32, n)
	for i := 0; i < n; i++ {
		acc := x2[i]
		for j := 0; j < n; j++ {
			acc += A[j*n+i] * y2[j]
		}
		rx2[i] = acc
	}

	local := 16
	nd := vm.NewNDRange1D(roundUp(n, local), local)
	app := &sched.App{
		Name:   "MVT",
		Source: mvtSrc,
		Buffers: map[string]int{
			"A": 4 * n * n, "x1": 4 * n, "x2": 4 * n, "y1": 4 * n, "y2": 4 * n,
		},
		Inputs: map[string][]byte{
			"A": f32enc(A), "x1": f32enc(x1), "x2": f32enc(x2),
			"y1": f32enc(y1), "y2": f32enc(y2),
		},
		Launches: []sched.Launch{
			{Kernel: "mvt_kernel1", ND: nd, Args: []sched.ArgSpec{
				sched.Buf("A"), sched.Buf("x1"), sched.Buf("y1"), sched.Int(int64(n)),
			}},
			{Kernel: "mvt_kernel2", ND: nd, Args: []sched.ArgSpec{
				sched.Buf("A"), sched.Buf("x2"), sched.Buf("y2"), sched.Int(int64(n)),
			}},
		},
		Outputs: []string{"x1", "x2"},
	}
	return &Benchmark{
		Name:      "MVT",
		App:       app,
		Expected:  map[string][]byte{"x1": f32enc(rx1), "x2": f32enc(rx2)},
		InputDesc: fmt.Sprintf("(%d, %d)", n, n),
	}
}

const gemmSrc = `
// GEMM: C = alpha * A * B + beta * C.
__kernel void gemm_kernel(__global float* A, __global float* B, __global float* C,
                          int ni, int nj, int nk, float alpha, float beta)
{
    int j = get_global_id(0);
    int i = get_global_id(1);
    if (i < ni && j < nj) {
        float acc = C[i * nj + j] * beta;
        for (int k = 0; k < nk; k++) {
            acc += alpha * A[i * nk + k] * B[k * nj + j];
        }
        C[i * nj + j] = acc;
    }
}
`

// Gemm builds the GEMM benchmark: (ni x nk) * (nk x nj).
func Gemm(ni, nj, nk int) *Benchmark {
	alpha, beta := float32(1.5), float32(1.2)
	A := newGen(81).slice(ni * nk)
	B := newGen(82).slice(nk * nj)
	C0 := newGen(83).slice(ni * nj)

	C := make([]float32, ni*nj)
	for i := 0; i < ni; i++ {
		for j := 0; j < nj; j++ {
			acc := C0[i*nj+j] * beta
			for k := 0; k < nk; k++ {
				acc += alpha * A[i*nk+k] * B[k*nj+j]
			}
			C[i*nj+j] = acc
		}
	}

	local := 8
	nd := vm.NewNDRange2D(roundUp(nj, local), roundUp(ni, local), local, local)
	app := &sched.App{
		Name:   "GEMM",
		Source: gemmSrc,
		Buffers: map[string]int{
			"A": 4 * ni * nk, "B": 4 * nk * nj, "C": 4 * ni * nj,
		},
		Inputs: map[string][]byte{"A": f32enc(A), "B": f32enc(B), "C": f32enc(C0)},
		Launches: []sched.Launch{
			{Kernel: "gemm_kernel", ND: nd, Args: []sched.ArgSpec{
				sched.Buf("A"), sched.Buf("B"), sched.Buf("C"),
				sched.Int(int64(ni)), sched.Int(int64(nj)), sched.Int(int64(nk)),
				sched.Float(float64(alpha)), sched.Float(float64(beta)),
			}},
		},
		Outputs: []string{"C"},
	}
	return &Benchmark{
		Name:      "GEMM",
		App:       app,
		Expected:  map[string][]byte{"C": f32enc(C)},
		InputDesc: fmt.Sprintf("(%d, %d, %d)", ni, nj, nk),
	}
}

const twoDConvSrc = `
// 2DCONV: 3x3 stencil over an n x n image (interior points only).
__kernel void conv2d_kernel(__global float* A, __global float* B, int n)
{
    int j = get_global_id(0);
    int i = get_global_id(1);
    if (i > 0 && i < n - 1 && j > 0 && j < n - 1) {
        float c11 = 0.2f;  float c12 = -0.3f; float c13 = 0.4f;
        float c21 = -0.5f; float c22 = 0.6f;  float c23 = -0.7f;
        float c31 = 0.8f;  float c32 = -0.9f; float c33 = 0.1f;
        B[i * n + j] = c11 * A[(i - 1) * n + (j - 1)] + c12 * A[(i - 1) * n + j]
                     + c13 * A[(i - 1) * n + (j + 1)] + c21 * A[i * n + (j - 1)]
                     + c22 * A[i * n + j]             + c23 * A[i * n + (j + 1)]
                     + c31 * A[(i + 1) * n + (j - 1)] + c32 * A[(i + 1) * n + j]
                     + c33 * A[(i + 1) * n + (j + 1)];
    }
}
`

// TwoDConv builds a 3x3 convolution over an n x n image.
func TwoDConv(n int) *Benchmark {
	A := newGen(91).slice(n * n)
	B := make([]float32, n*n)
	c := []float32{0.2, -0.3, 0.4, -0.5, 0.6, -0.7, 0.8, -0.9, 0.1}
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			B[i*n+j] = c[0]*A[(i-1)*n+(j-1)] + c[1]*A[(i-1)*n+j] +
				c[2]*A[(i-1)*n+(j+1)] + c[3]*A[i*n+(j-1)] +
				c[4]*A[i*n+j] + c[5]*A[i*n+(j+1)] +
				c[6]*A[(i+1)*n+(j-1)] + c[7]*A[(i+1)*n+j] +
				c[8]*A[(i+1)*n+(j+1)]
		}
	}

	local := 8
	nd := vm.NewNDRange2D(roundUp(n, local), roundUp(n, local), local, local)
	app := &sched.App{
		Name:    "2DCONV",
		Source:  twoDConvSrc,
		Buffers: map[string]int{"A": 4 * n * n, "B": 4 * n * n},
		Inputs:  map[string][]byte{"A": f32enc(A)},
		Launches: []sched.Launch{
			{Kernel: "conv2d_kernel", ND: nd, Args: []sched.ArgSpec{
				sched.Buf("A"), sched.Buf("B"), sched.Int(int64(n)),
			}},
		},
		Outputs: []string{"B"},
	}
	return &Benchmark{
		Name:      "2DCONV",
		App:       app,
		Expected:  map[string][]byte{"B": f32enc(B)},
		InputDesc: fmt.Sprintf("(%d, %d)", n, n),
	}
}
