// Package polybench provides the six benchmarks the paper evaluates
// FluidiCL on (§8, Table 2): 2MM, BICG, CORR, GESUMMV, SYRK and SYR2K from
// the Polybench suite, written in MiniCL with deterministic inputs and
// bit-exact float32 reference implementations.
//
// The OCR of the paper garbles the first benchmark's name; by kernel count
// (two) and behaviour (runs best entirely on the GPU) we take it to be 2MM.
// Default sizes are scaled down from the paper's (kernels here run on an
// interpreter); every experiment records the sizes it used.
//
// Access-pattern notes (these drive which device wins, as in the paper):
//   - 2MM's matmul kernels read B/tmp coalesced across adjacent work-items:
//     GPU-friendly.
//   - BICG's first kernel walks rows per work-item (uncoalesced on GPU,
//     cache-friendly on CPU); its second kernel reads columns across
//     work-items (coalesced): the two kernels prefer different devices
//     (Table 1).
//   - GESUMMV is row-per-work-item matrix-vector: CPU-friendly.
//   - SYRK/SYR2K mix a broadcast row with an uncoalesced row: both devices
//     are mediocre, so cooperative splits win.
package polybench

import (
	"encoding/binary"
	"fmt"
	"math"

	"fluidicl/internal/sched"
)

// Benchmark couples an application with its reference outputs.
type Benchmark struct {
	Name      string
	App       *sched.App
	Expected  map[string][]byte
	InputDesc string
}

// Verify compares a run's outputs with the reference, bit-exactly.
func (b *Benchmark) Verify(outputs map[string][]byte) error {
	for name, want := range b.Expected {
		got, ok := outputs[name]
		if !ok {
			return fmt.Errorf("%s: output %q missing", b.Name, name)
		}
		if len(got) != len(want) {
			return fmt.Errorf("%s: output %q has %d bytes, want %d", b.Name, name, len(got), len(want))
		}
		for i := 0; i < len(want); i += 4 {
			if binary.LittleEndian.Uint32(got[i:]) != binary.LittleEndian.Uint32(want[i:]) {
				return fmt.Errorf("%s: output %q differs at word %d: got %v, want %v",
					b.Name, name, i/4, f32dec(got, i/4), f32dec(want, i/4))
			}
		}
	}
	return nil
}

// All returns the six default benchmarks in the paper's Table 2 order.
func All() []*Benchmark {
	return []*Benchmark{
		TwoMM(128, 128, 128),
		Bicg(768),
		Corr(160, 160),
		Gesummv(768),
		Syrk(128, 128),
		Syr2k(128, 128),
	}
}

// AllQuick returns reduced-scale variants of every benchmark (the paper's
// six plus the extras), matching the harness quick scale: same kernels and
// schedules, small enough for fast gates.
func AllQuick() []*Benchmark {
	return []*Benchmark{
		TwoMM(48, 48, 48),
		Bicg(192),
		Corr(64, 64),
		Gesummv(192),
		Syrk(64, 64),
		Syr2k(48, 48),
		Atax(192),
		Mvt(192),
		Gemm(48, 48, 48),
		TwoDConv(64),
	}
}

// ByName returns the default-size benchmark with the given name (the
// paper's six plus the extras).
func ByName(name string) (*Benchmark, error) {
	for _, b := range AllWithExtras() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("polybench: unknown benchmark %q", name)
}

// ByNameQuick returns the reduced-scale variant with the given name.
func ByNameQuick(name string) (*Benchmark, error) {
	for _, b := range AllQuick() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("polybench: unknown benchmark %q", name)
}

// ---- deterministic input data ----

// dataGen is a small LCG producing reproducible float32 values in [0.25, 1.25).
type dataGen struct{ state uint32 }

func newGen(seed uint32) *dataGen { return &dataGen{state: seed*2654435761 + 1} }

func (g *dataGen) next() float32 {
	g.state = g.state*1664525 + 1013904223
	return 0.25 + float32(g.state>>16)/65536.0
}

func (g *dataGen) slice(n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = g.next()
	}
	return out
}

// ---- float32 <-> bytes ----

func f32enc(vals []float32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
	}
	return b
}

func f32dec(b []byte, i int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
}
