package polybench

import (
	"fmt"

	"fluidicl/internal/sched"
	"fluidicl/internal/vm"
)

const bicgSrc = `
// BICG: q = A * p  and  s = A^T * r.
// Kernel 1 walks a row per work-item (uncoalesced on the GPU, sequential on
// the CPU); kernel 2 reads A down a column per work-item, which adjacent
// work-items access coalesced. The two kernels prefer different devices —
// the paper's Table 1 scenario.
__kernel void bicgKernel1(__global float* A, __global float* p, __global float* q, int n)
{
    int i = get_global_id(0);
    if (i < n) {
        float acc = 0.0f;
        for (int j = 0; j < n; j++) {
            acc += A[i * n + j] * p[j];
        }
        q[i] = acc;
    }
}

__kernel void bicgKernel2(__global float* A, __global float* r, __global float* s, int n)
{
    int j = get_global_id(0);
    if (j < n) {
        float acc = 0.0f;
        for (int i = 0; i < n; i++) {
            acc += r[i] * A[i * n + j];
        }
        s[j] = acc;
    }
}
`

// Bicg builds the BICG benchmark over an n x n matrix.
func Bicg(n int) *Benchmark {
	A := newGen(11).slice(n * n)
	p := newGen(12).slice(n)
	r := newGen(13).slice(n)

	q := make([]float32, n)
	for i := 0; i < n; i++ {
		var acc float32
		for j := 0; j < n; j++ {
			acc += A[i*n+j] * p[j]
		}
		q[i] = acc
	}
	s := make([]float32, n)
	for j := 0; j < n; j++ {
		var acc float32
		for i := 0; i < n; i++ {
			acc += r[i] * A[i*n+j]
		}
		s[j] = acc
	}

	local := 16
	nd := vm.NewNDRange1D(roundUp(n, local), local)
	app := &sched.App{
		Name:   "BICG",
		Source: bicgSrc,
		Buffers: map[string]int{
			"A": 4 * n * n, "p": 4 * n, "r": 4 * n, "q": 4 * n, "s": 4 * n,
		},
		Inputs: map[string][]byte{
			"A": f32enc(A), "p": f32enc(p), "r": f32enc(r),
		},
		Launches: []sched.Launch{
			{Kernel: "bicgKernel1", ND: nd, Args: []sched.ArgSpec{
				sched.Buf("A"), sched.Buf("p"), sched.Buf("q"), sched.Int(int64(n)),
			}},
			{Kernel: "bicgKernel2", ND: nd, Args: []sched.ArgSpec{
				sched.Buf("A"), sched.Buf("r"), sched.Buf("s"), sched.Int(int64(n)),
			}},
		},
		Outputs: []string{"q", "s"},
	}
	return &Benchmark{
		Name:      "BICG",
		App:       app,
		Expected:  map[string][]byte{"q": f32enc(q), "s": f32enc(s)},
		InputDesc: fmt.Sprintf("(%d, %d)", n, n),
	}
}
