package polybench

import (
	"fmt"

	"fluidicl/internal/sched"
	"fluidicl/internal/vm"
)

const syrkSrc = `
// SYRK: C = alpha * A * A^T + beta * C over an n x n output with inner
// dimension m. The A[i*m+k] read broadcasts across a warp while A[j*m+k]
// is uncoalesced, so the GPU is memory-bound here while the CPU streams
// both rows — neither device dominates, and cooperative splits win
// (paper Figures 2-3).
__kernel void syrk_kernel(__global float* A, __global float* C, int n, int m,
                          float alpha, float beta)
{
    int j = get_global_id(0);
    int i = get_global_id(1);
    if (i < n && j < n) {
        float acc = C[i * n + j] * beta;
        for (int k = 0; k < m; k++) {
            acc += alpha * A[i * m + k] * A[j * m + k];
        }
        C[i * n + j] = acc;
    }
}
`

// Syrk builds the SYRK benchmark with an n x n output and inner dimension m.
func Syrk(n, m int) *Benchmark {
	alpha, beta := float32(1.5), float32(1.2)
	A := newGen(41).slice(n * m)
	C0 := newGen(42).slice(n * n)

	C := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			acc := C0[i*n+j] * beta
			for k := 0; k < m; k++ {
				acc += alpha * A[i*m+k] * A[j*m+k]
			}
			C[i*n+j] = acc
		}
	}

	local := 8
	nd := vm.NewNDRange2D(roundUp(n, local), roundUp(n, local), local, local)
	app := &sched.App{
		Name:   "SYRK",
		Source: syrkSrc,
		Buffers: map[string]int{
			"A": 4 * n * m, "C": 4 * n * n,
		},
		Inputs: map[string][]byte{
			"A": f32enc(A), "C": f32enc(C0),
		},
		Launches: []sched.Launch{
			{Kernel: "syrk_kernel", ND: nd, Args: []sched.ArgSpec{
				sched.Buf("A"), sched.Buf("C"), sched.Int(int64(n)), sched.Int(int64(m)),
				sched.Float(float64(alpha)), sched.Float(float64(beta)),
			}},
		},
		Outputs: []string{"C"},
	}
	return &Benchmark{
		Name:      "SYRK",
		App:       app,
		Expected:  map[string][]byte{"C": f32enc(C)},
		InputDesc: fmt.Sprintf("(%d, %d)", n, m),
	}
}
