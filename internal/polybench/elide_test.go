package polybench

import (
	"testing"

	"fluidicl/internal/core"
	"fluidicl/internal/device"
	"fluidicl/internal/sched"
)

// TestFluidiCLElisionsBicg pins a machine/size combination where the
// analyzer's slot-exact write-only classification of BICG's q and s
// provably pays off: both diff-baseline copies are elided, the CPU's
// result shipments are narrowed to the completed work-groups' slots, and
// the data merge runs over a sub-range of each buffer — all with the
// output still verifying against the sequential reference.
func TestFluidiCLElisionsBicg(t *testing.T) {
	m := sched.Machine{CPU: device.XeonDual(), GPU: device.TeslaC2070()}
	b := Bicg(128)
	r, err := sched.RunFluidiCL(m, b.App, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(r.Outputs); err != nil {
		t.Fatalf("elided run produced wrong output: %v", err)
	}
	c := r.Counters
	if c.PrimeCopiesElided != 2 {
		t.Errorf("PrimeCopiesElided = %d, want 2 (q and s)", c.PrimeCopiesElided)
	}
	if c.ShipBytesSkipped == 0 {
		t.Error("no ship bytes skipped: CPU result transfers were not narrowed")
	}
	if c.MergeWordsElided == 0 {
		t.Error("no merge words elided: merge ran over the full buffers")
	}
}

// TestFluidiCLCountersZeroWithoutSlotExactOuts checks the negative space:
// SYRK's C argument is read-write (C[i*n+j] = beta*C[..] + ...), so none
// of the summary-driven elisions may fire, and the conservative diff+merge
// pipeline still verifies.
func TestFluidiCLCountersZeroWithoutSlotExactOuts(t *testing.T) {
	m := sched.DefaultMachine()
	b := Syrk(48, 48)
	r, err := sched.RunFluidiCL(m, b.App, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(r.Outputs); err != nil {
		t.Fatal(err)
	}
	if c := r.Counters; c != (core.Counters{}) {
		t.Errorf("read-write out buffer must not trigger elisions: %+v", c)
	}
}
