package polybench

import (
	"testing"

	"fluidicl/internal/core"
	"fluidicl/internal/device"
	"fluidicl/internal/sched"
)

// TestFluidiCLElisionsBicg pins a machine/size combination where the
// analyzer's slot-exact write-only classification of BICG's q and s
// provably pays off: both diff-baseline copies are elided, the CPU's
// result shipments are narrowed to the completed work-groups' slots, and
// the data merge runs over a sub-range of each buffer — all with the
// output still verifying against the sequential reference.
func TestFluidiCLElisionsBicg(t *testing.T) {
	m := sched.Machine{CPU: device.XeonDual(), GPU: device.TeslaC2070()}
	b := Bicg(128)
	r, err := sched.RunFluidiCL(m, b.App, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(r.Outputs); err != nil {
		t.Fatalf("elided run produced wrong output: %v", err)
	}
	c := r.Counters
	if c.PrimeCopiesElided != 2 {
		t.Errorf("PrimeCopiesElided = %d, want 2 (q and s)", c.PrimeCopiesElided)
	}
	if c.ShipBytesSkipped == 0 {
		t.Error("no ship bytes skipped: CPU result transfers were not narrowed")
	}
	if c.MergeWordsElided == 0 {
		t.Error("no merge words elided: merge ran over the full buffers")
	}
}

// TestFluidiCLCountersStridedReadWrite checks that the strided summary
// reaches where slot-exact classification cannot: SYRK's C argument is
// read-write (C[i*n+j] = beta*C[..] + ...), so the upload-skip and
// prime-copy elisions must not fire — but its row-major strided write
// footprint still narrows the CPU's result shipments and the merge
// window, with the output verifying against the sequential reference.
func TestFluidiCLCountersStridedReadWrite(t *testing.T) {
	m := sched.DefaultMachine()
	b := Syrk(48, 48)
	r, err := sched.RunFluidiCL(m, b.App, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(r.Outputs); err != nil {
		t.Fatal(err)
	}
	c := r.Counters
	if c.UploadsSkipped != 0 {
		t.Errorf("UploadsSkipped = %d, want 0 (read-write C must be uploaded)", c.UploadsSkipped)
	}
	if c.PrimeCopiesElided != 0 {
		t.Errorf("PrimeCopiesElided = %d, want 0 (strided hulls over-approximate; the prime must stay)", c.PrimeCopiesElided)
	}
	if c.ShipBytesSkipped == 0 {
		t.Error("no ship bytes skipped: strided summary did not narrow the read-write C's shipments")
	}
	if c.MergeWordsElided == 0 {
		t.Error("no merge words elided: strided summary did not narrow the merge window")
	}
}
