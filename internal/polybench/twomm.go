package polybench

import (
	"fmt"

	"fluidicl/internal/sched"
	"fluidicl/internal/vm"
)

const twommSrc = `
// 2MM: tmp = alpha * A * B;  D = beta * tmp * C
// Both kernels read their right-hand matrix coalesced across adjacent
// work-items, so the GPU runs them well.
__kernel void mm2_kernel1(__global float* A, __global float* B, __global float* tmp,
                          int ni, int nj, int nk, float alpha)
{
    int j = get_global_id(0);
    int i = get_global_id(1);
    if (i < ni && j < nj) {
        float acc = 0.0f;
        for (int k = 0; k < nk; k++) {
            acc += alpha * A[i * nk + k] * B[k * nj + j];
        }
        tmp[i * nj + j] = acc;
    }
}

__kernel void mm2_kernel2(__global float* tmp, __global float* C, __global float* D,
                          int ni, int nj, int nl, float beta)
{
    int j = get_global_id(0);
    int i = get_global_id(1);
    if (i < ni && j < nl) {
        float acc = 0.0f;
        for (int k = 0; k < nj; k++) {
            acc += beta * tmp[i * nj + k] * C[k * nl + j];
        }
        D[i * nl + j] = acc;
    }
}
`

// TwoMM builds the 2MM benchmark: two chained matrix multiplications
// (ni x nk) * (nk x nj) then (ni x nj) * (nj x nl), with nl = nj.
func TwoMM(ni, nj, nk int) *Benchmark {
	nl := nj
	alpha, beta := float32(1.5), float32(1.2)
	A := newGen(1).slice(ni * nk)
	B := newGen(2).slice(nk * nj)
	C := newGen(3).slice(nj * nl)

	// Reference, mirroring the kernels' float32 operation order.
	tmp := make([]float32, ni*nj)
	for i := 0; i < ni; i++ {
		for j := 0; j < nj; j++ {
			var acc float32
			for k := 0; k < nk; k++ {
				acc += alpha * A[i*nk+k] * B[k*nj+j]
			}
			tmp[i*nj+j] = acc
		}
	}
	D := make([]float32, ni*nl)
	for i := 0; i < ni; i++ {
		for j := 0; j < nl; j++ {
			var acc float32
			for k := 0; k < nj; k++ {
				acc += beta * tmp[i*nj+k] * C[k*nl+j]
			}
			D[i*nl+j] = acc
		}
	}

	local := 8
	nd1 := vm.NewNDRange2D(roundUp(nj, local), roundUp(ni, local), local, local)
	nd2 := vm.NewNDRange2D(roundUp(nl, local), roundUp(ni, local), local, local)
	app := &sched.App{
		Name:   "2MM",
		Source: twommSrc,
		Buffers: map[string]int{
			"A": 4 * ni * nk, "B": 4 * nk * nj, "C": 4 * nj * nl,
			"tmp": 4 * ni * nj, "D": 4 * ni * nl,
		},
		Inputs: map[string][]byte{
			"A": f32enc(A), "B": f32enc(B), "C": f32enc(C),
		},
		Launches: []sched.Launch{
			{Kernel: "mm2_kernel1", ND: nd1, Args: []sched.ArgSpec{
				sched.Buf("A"), sched.Buf("B"), sched.Buf("tmp"),
				sched.Int(int64(ni)), sched.Int(int64(nj)), sched.Int(int64(nk)),
				sched.Float(float64(alpha)),
			}},
			{Kernel: "mm2_kernel2", ND: nd2, Args: []sched.ArgSpec{
				sched.Buf("tmp"), sched.Buf("C"), sched.Buf("D"),
				sched.Int(int64(ni)), sched.Int(int64(nj)), sched.Int(int64(nl)),
				sched.Float(float64(beta)),
			}},
		},
		Outputs: []string{"D"},
	}
	return &Benchmark{
		Name:      "2MM",
		App:       app,
		Expected:  map[string][]byte{"D": f32enc(D)},
		InputDesc: fmt.Sprintf("(%d, %d, %d)", ni, nj, nk),
	}
}

func roundUp(n, m int) int { return ((n + m - 1) / m) * m }
