package polybench

import (
	"testing"

	"fluidicl/internal/core"
	"fluidicl/internal/sched"
)

// small returns reduced-size benchmarks for fast cross-scheduler testing.
func small() []*Benchmark {
	return []*Benchmark{
		TwoMM(48, 48, 48),
		Bicg(128),
		Corr(48, 64),
		Gesummv(128),
		Syrk(48, 48),
		Syr2k(48, 48),
	}
}

func TestReferenceAgainstCPUDevice(t *testing.T) {
	m := sched.DefaultMachine()
	for _, b := range small() {
		r, err := sched.RunSingle(m.CPU, b.App)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := b.Verify(r.Outputs); err != nil {
			t.Fatalf("CPU-only: %v", err)
		}
		if r.Time <= 0 {
			t.Fatalf("%s: no time elapsed", b.Name)
		}
	}
}

func TestReferenceAgainstGPUDevice(t *testing.T) {
	m := sched.DefaultMachine()
	for _, b := range small() {
		r, err := sched.RunSingle(m.GPU, b.App)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := b.Verify(r.Outputs); err != nil {
			t.Fatalf("GPU-only: %v", err)
		}
	}
}

func TestStaticPartitionCorrect(t *testing.T) {
	m := sched.DefaultMachine()
	for _, b := range small() {
		for _, pct := range []int{30, 50, 80} {
			r, err := sched.RunStatic(m, b.App, pct)
			if err != nil {
				t.Fatalf("%s @%d%%: %v", b.Name, pct, err)
			}
			if err := b.Verify(r.Outputs); err != nil {
				t.Fatalf("static %d%%: %v", pct, err)
			}
		}
	}
}

func TestFluidiCLCorrect(t *testing.T) {
	m := sched.DefaultMachine()
	for _, b := range small() {
		r, err := sched.RunFluidiCL(m, b.App, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := b.Verify(r.Outputs); err != nil {
			t.Fatalf("FluidiCL: %v", err)
		}
		if len(r.Reports) != len(b.App.Launches) {
			t.Fatalf("%s: %d reports for %d launches", b.Name, len(r.Reports), len(b.App.Launches))
		}
	}
}

func TestSoclEagerCorrect(t *testing.T) {
	m := sched.DefaultMachine()
	for _, b := range small() {
		r, err := sched.RunSocl(m, b.App, sched.Eager, nil)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := b.Verify(r.Outputs); err != nil {
			t.Fatalf("eager: %v", err)
		}
	}
}

func TestSoclDmdaCorrect(t *testing.T) {
	m := sched.DefaultMachine()
	for _, b := range small() {
		model, err := sched.CalibrateDmda(m, b.App)
		if err != nil {
			t.Fatalf("%s calibration: %v", b.Name, err)
		}
		r, err := sched.RunSocl(m, b.App, sched.Dmda, model)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := b.Verify(r.Outputs); err != nil {
			t.Fatalf("dmda: %v", err)
		}
	}
}

func TestCorrVariantBitIdentical(t *testing.T) {
	// The hand-optimized CPU kernel must produce bit-identical results.
	m := sched.DefaultMachine()
	b := CorrWithVariant(48, 64)
	r, err := sched.RunFluidiCL(m, b.App, core.Options{OnlineProfiling: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(r.Outputs); err != nil {
		t.Fatalf("with CPU variant: %v", err)
	}
}

func TestDefaultBenchmarksMetadata(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("got %d benchmarks, want 6", len(all))
	}
	wantNames := []string{"2MM", "BICG", "CORR", "GESUMMV", "SYRK", "SYR2K"}
	wantKernels := []int{2, 2, 4, 1, 1, 1}
	for i, b := range all {
		if b.Name != wantNames[i] {
			t.Fatalf("benchmark %d = %s, want %s", i, b.Name, wantNames[i])
		}
		if len(b.App.Launches) != wantKernels[i] {
			t.Fatalf("%s has %d kernels, want %d", b.Name, len(b.App.Launches), wantKernels[i])
		}
		if len(b.Expected) == 0 {
			t.Fatalf("%s has no reference outputs", b.Name)
		}
	}
	if _, err := ByName("SYRK"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("NOPE"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	b := Gesummv(32)
	m := sched.DefaultMachine()
	r, err := sched.RunSingle(m.CPU, b.App)
	if err != nil {
		t.Fatal(err)
	}
	r.Outputs["y"][0] ^= 0x40
	if err := b.Verify(r.Outputs); err == nil {
		t.Fatal("corrupted output accepted")
	}
	delete(r.Outputs, "y")
	if err := b.Verify(r.Outputs); err == nil {
		t.Fatal("missing output accepted")
	}
}

func TestDataGenDeterministic(t *testing.T) {
	a := newGen(7).slice(100)
	b := newGen(7).slice(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("data generation not deterministic")
		}
		if a[i] < 0.25 || a[i] >= 1.25 {
			t.Fatalf("value %v out of range", a[i])
		}
	}
	c := newGen(8).slice(100)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 10 {
		t.Fatal("different seeds produce suspiciously similar data")
	}
}

func smallExtras() []*Benchmark {
	return []*Benchmark{
		Atax(128),
		Mvt(128),
		Gemm(48, 48, 48),
		TwoDConv(64),
	}
}

func TestExtrasCorrectEverywhere(t *testing.T) {
	m := sched.DefaultMachine()
	for _, b := range smallExtras() {
		cpu, err := sched.RunSingle(m.CPU, b.App)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := b.Verify(cpu.Outputs); err != nil {
			t.Fatalf("CPU: %v", err)
		}
		gpu, err := sched.RunSingle(m.GPU, b.App)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := b.Verify(gpu.Outputs); err != nil {
			t.Fatalf("GPU: %v", err)
		}
		fcl, err := sched.RunFluidiCL(m, b.App, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := b.Verify(fcl.Outputs); err != nil {
			t.Fatalf("FluidiCL: %v", err)
		}
		st, err := sched.RunStatic(m, b.App, 50)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := b.Verify(st.Outputs); err != nil {
			t.Fatalf("static: %v", err)
		}
	}
}

func TestAtaxKernelsPreferDifferentDevices(t *testing.T) {
	m := sched.DefaultMachine()
	b := Atax(512)
	cpu, err := sched.RunSingle(m.CPU, b.App)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := sched.RunSingle(m.GPU, b.App)
	if err != nil {
		t.Fatal(err)
	}
	if cpu.LaunchTimes[0] >= gpu.LaunchTimes[0] {
		t.Fatalf("atax_kernel1 should prefer CPU: cpu=%v gpu=%v", cpu.LaunchTimes[0], gpu.LaunchTimes[0])
	}
	if gpu.LaunchTimes[1] >= cpu.LaunchTimes[1] {
		t.Fatalf("atax_kernel2 should prefer GPU: cpu=%v gpu=%v", cpu.LaunchTimes[1], gpu.LaunchTimes[1])
	}
}

func TestByNameFindsExtras(t *testing.T) {
	for _, name := range []string{"ATAX", "MVT", "GEMM", "2DCONV"} {
		if _, err := ByName(name); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(AllWithExtras()); got != 10 {
		t.Fatalf("AllWithExtras = %d benchmarks, want 10", got)
	}
}
