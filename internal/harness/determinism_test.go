package harness

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"testing"

	"fluidicl/internal/core"
	"fluidicl/internal/sched"
	"fluidicl/internal/sim"
	"fluidicl/internal/vm"
)

// renderWith runs one experiment at the given worker/parallel setting and
// returns the rendered table.
func renderWith(t *testing.T, id string, workers, parallel int) string {
	t.Helper()
	vm.SetWorkers(workers)
	defer vm.SetWorkers(0)
	r := NewRunner()
	r.Quick = true
	r.Parallel = parallel
	tab, err := r.Run(id)
	if err != nil {
		t.Fatalf("%s (workers=%d, parallel=%d): %v", id, workers, parallel, err)
	}
	return tab.String()
}

// TestExperimentsDeterministicAcrossWorkers is the determinism regression
// test: every virtual-time table must render identically whether work-groups
// execute on one host thread or many, and whether table cells run
// sequentially or concurrently.
func TestExperimentsDeterministicAcrossWorkers(t *testing.T) {
	ids := []string{"fig13"}
	if !testing.Short() {
		ids = []string{"fig2", "fig3", "table1", "table2", "fig13", "fig14"}
	}
	for _, id := range ids {
		seq := renderWith(t, id, 1, 1)
		par := renderWith(t, id, 4, 4)
		if seq != par {
			t.Errorf("%s: table differs between sequential and parallel execution\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", id, seq, par)
		}
	}
}

// outputHash digests a run's output buffers in name order.
func outputHash(outputs map[string][]byte) string {
	names := make([]string, 0, len(outputs))
	for n := range outputs {
		names = append(names, n)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, n := range names {
		fmt.Fprintf(h, "%s:%d:", n, len(outputs[n]))
		h.Write(outputs[n])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestFluidiCLOutputsByteIdenticalAcrossWorkers hashes the actual result
// buffers of full FluidiCL runs (the cooperative CPU+GPU path, aborts,
// rollbacks and merges included) under both worker counts.
func TestFluidiCLOutputsByteIdenticalAcrossWorkers(t *testing.T) {
	r := NewRunner()
	r.Quick = true
	for _, b := range r.benchmarks() {
		run := func(workers int) (string, sim.Time) {
			vm.SetWorkers(workers)
			defer vm.SetWorkers(0)
			res, err := sched.RunFluidiCL(r.M, b.App, core.Options{})
			if err != nil {
				t.Fatalf("%s (workers=%d): %v", b.Name, workers, err)
			}
			if err := b.Verify(res.Outputs); err != nil {
				t.Fatalf("%s (workers=%d): %v", b.Name, workers, err)
			}
			return outputHash(res.Outputs), res.Time
		}
		seqHash, seqTime := run(1)
		parHash, parTime := run(8)
		if seqHash != parHash {
			t.Errorf("%s: output buffers differ between workers=1 and workers=8", b.Name)
		}
		if seqTime != parTime {
			t.Errorf("%s: virtual time differs: seq=%v par=%v", b.Name, seqTime, parTime)
		}
		if t.Failed() {
			break
		}
	}
}
