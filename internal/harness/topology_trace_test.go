package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"fluidicl/internal/core"
	"fluidicl/internal/device"
	"fluidicl/internal/polybench"
	"fluidicl/internal/sched"
	"fluidicl/internal/trace"
	"fluidicl/internal/vm"
)

// topologyTraceBytes runs the quick-scale 2DCONV benchmark on the shared-bus
// four-GPU topology with the given host worker count and returns the
// serialized Chrome trace.
func topologyTraceBytes(t *testing.T, workers int) []byte {
	t.Helper()
	vm.SetWorkers(workers)
	defer vm.SetWorkers(0)
	b, err := polybench.ByNameQuick("2DCONV")
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	res, err := sched.RunTopologyTraced(device.MustParseTopology("4gpu-bus"), b.App, core.Options{}, rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(res.Outputs); err != nil {
		t.Fatalf("traced topology run produced wrong results: %v", err)
	}
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenTopologyChromeTrace pins the multi-link topology trace the same
// three ways as the twin-machine golden: one compute track and one link
// track per device of the four-GPU shared-bus topology; identical bytes
// whether work-groups execute on one host thread or many; byte-for-byte
// equal to the committed golden file so every change to the N-way timeline
// (claim order, bus contention spans, ships, refreshes) is a reviewable
// diff. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/harness -run TestGoldenTopologyChromeTrace.
func TestGoldenTopologyChromeTrace(t *testing.T) {
	seq := topologyTraceBytes(t, 1)
	par := topologyTraceBytes(t, 8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("topology trace bytes differ between workers=1 (%d bytes) and workers=8 (%d bytes)", len(seq), len(par))
	}

	if !json.Valid(seq) {
		t.Fatal("trace is not valid JSON")
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(seq, &parsed); err != nil {
		t.Fatal(err)
	}
	tracks := map[string]bool{}
	for _, e := range parsed.TraceEvents {
		if e.Name == "thread_name" {
			tracks[e.Args["name"].(string)] = true
		}
	}
	topo := device.MustParseTopology("4gpu-bus")
	for _, d := range topo.Devices {
		for _, want := range []string{d.Name, d.Name + " link"} {
			if !tracks[want] {
				t.Errorf("trace is missing track %q (have %v)", want, tracks)
			}
		}
	}

	golden := filepath.Join("testdata", "trace_2dconv_quick_4gpu_bus.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, seq, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(seq))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file: %v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(seq, want) {
		t.Fatalf("topology trace differs from golden %s (got %d bytes, want %d); if the timeline change is intentional, regenerate with UPDATE_GOLDEN=1",
			golden, len(seq), len(want))
	}
}

// TestTopologyTracedMatchesUntraced: attaching a recorder to a topology run
// must not perturb the simulation.
func TestTopologyTracedMatchesUntraced(t *testing.T) {
	topo := device.MustParseTopology("2cpu+2gpu")
	b1, _ := polybench.ByNameQuick("BICG")
	b2, _ := polybench.ByNameQuick("BICG")
	plain, err := sched.RunTopology(topo, b1.App, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := sched.RunTopologyTraced(topo, b2.App, core.Options{}, trace.NewRecorder())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Time != traced.Time {
		t.Fatalf("virtual time changed under tracing: %v vs %v", plain.Time, traced.Time)
	}
	if outputHash(plain.Outputs) != outputHash(traced.Outputs) {
		t.Fatal("outputs changed under tracing")
	}
}
