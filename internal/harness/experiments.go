package harness

import (
	"fmt"

	"fluidicl/internal/core"
	"fluidicl/internal/device"
	"fluidicl/internal/polybench"
	"fluidicl/internal/sched"
	"fluidicl/internal/sim"
)

// Runner executes experiments on one simulated machine.
type Runner struct {
	M sched.Machine
	// Quick shrinks workloads (used by the Go benchmark harness so each
	// testing.B iteration stays fast). Full-size runs are the default.
	Quick bool
	// Parallel caps how many table cells run concurrently. Each cell is a
	// complete, independent simulation (its own sim.Env), so running them
	// side by side changes nothing about any cell's virtual times or
	// outputs. 0 means GOMAXPROCS; 1 recovers the fully sequential runner.
	Parallel int
}

// NewRunner creates a Runner on the paper's machine (§8).
func NewRunner() *Runner { return &Runner{M: sched.DefaultMachine()} }

// benchmarks returns the six Table 2 benchmarks at the active scale.
func (r *Runner) benchmarks() []*polybench.Benchmark {
	if r.Quick {
		return []*polybench.Benchmark{
			polybench.TwoMM(48, 48, 48),
			polybench.Bicg(192),
			polybench.Corr(64, 64),
			polybench.Gesummv(192),
			polybench.Syrk(64, 64),
			polybench.Syr2k(48, 48),
		}
	}
	return polybench.All()
}

func (r *Runner) syrkSizes() [][2]int {
	if r.Quick {
		return [][2]int{{32, 32}, {48, 48}, {64, 64}}
	}
	// Sizes start where the work-group count exceeds the GPU's residency
	// (below that, every work-group is in flight from the start and
	// cooperative execution cannot shorten the GPU's critical path).
	return [][2]int{{96, 96}, {128, 128}, {160, 160}, {192, 192}, {224, 224}}
}

// verify runs fn and checks its outputs against the reference.
func verify(b *polybench.Benchmark, res *sched.Result, err error) (*sched.Result, error) {
	if err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	if err := b.Verify(res.Outputs); err != nil {
		return nil, err
	}
	return res, nil
}

func (r *Runner) single(b *polybench.Benchmark, gpu bool) (*sched.Result, error) {
	cfg := r.M.CPU
	if gpu {
		cfg = r.M.GPU
	}
	res, err := sched.RunSingle(cfg, b.App)
	return verify(b, res, err)
}

func (r *Runner) fluidicl(b *polybench.Benchmark, opts core.Options) (*sched.Result, error) {
	res, err := sched.RunFluidiCL(r.M, b.App, opts)
	return verify(b, res, err)
}

// ---- Figure 2: static work-allocation curves for 2MM and SYRK ----

// Fig2 reproduces Figure 2: normalized execution time of 2MM and SYRK as
// the percentage of work allocated to the GPU varies (static splits).
func (r *Runner) Fig2() (*Table, error) {
	benches := []*polybench.Benchmark{polybench.TwoMM(96, 96, 96), polybench.Syrk(128, 128)}
	if r.Quick {
		benches = []*polybench.Benchmark{polybench.TwoMM(48, 48, 48), polybench.Syrk(64, 64)}
	}
	t := &Table{
		ID:    "fig2",
		Title: "Normalized execution time vs GPU work allocation (2MM, SYRK)",
		Note: "Static splits, x% of work-groups on the GPU; each curve normalized to its own best.\n" +
			"Paper shape: 2MM is best at 100% GPU; SYRK is best with a mixed split.",
		Columns: []string{"GPU%", "2MM", "SYRK"},
	}
	const nPct = 11
	times := make([][]sim.Time, len(benches))
	for i := range times {
		times[i] = make([]sim.Time, nPct)
	}
	err := r.cells(len(benches)*nPct, func(c int) error {
		i, j := c/nPct, c%nPct
		b := benches[i]
		res, err := sched.RunStatic(r.M, b.App, j*10)
		if _, err = verify(b, res, err); err != nil {
			return err
		}
		times[i][j] = res.Time
		return nil
	})
	if err != nil {
		return nil, err
	}
	mins := make([]sim.Time, len(benches))
	for i := range benches {
		for _, tm := range times[i] {
			if mins[i] == 0 || tm < mins[i] {
				mins[i] = tm
			}
		}
	}
	for j := 0; j < nPct; j++ {
		t.AddRow(fmt.Sprintf("%d", j*10),
			f2(times[0][j]/mins[0]),
			f2(times[1][j]/mins[1]))
	}
	return t, nil
}

// Fig3 reproduces Figure 3: SYRK's best static split shifts with input size.
func (r *Runner) Fig3() (*Table, error) {
	small, large := polybench.Syrk(64, 64), polybench.Syrk(192, 192)
	if r.Quick {
		small, large = polybench.Syrk(48, 48), polybench.Syrk(80, 80)
	}
	t := &Table{
		ID:    "fig3",
		Title: "SYRK static allocation curves for two input sizes",
		Note: "Each curve normalized to its own best split.\n" +
			"Paper shape: the best-performing split differs between the two input sizes.",
		Columns: []string{"GPU%", "SYRK(" + small.InputDesc + ")", "SYRK(" + large.InputDesc + ")"},
	}
	const nPct = 11
	benches := []*polybench.Benchmark{small, large}
	var times [2][nPct]sim.Time
	err := r.cells(len(benches)*nPct, func(c int) error {
		i, j := c/nPct, c%nPct
		b := benches[i]
		res, err := sched.RunStatic(r.M, b.App, j*10)
		if _, err = verify(b, res, err); err != nil {
			return err
		}
		times[i][j] = res.Time
		return nil
	})
	if err != nil {
		return nil, err
	}
	mins := [2]sim.Time{}
	for i := range benches {
		for _, tm := range times[i] {
			if mins[i] == 0 || tm < mins[i] {
				mins[i] = tm
			}
		}
	}
	for j := 0; j < nPct; j++ {
		t.AddRow(fmt.Sprintf("%d", j*10), f2(times[0][j]/mins[0]), f2(times[1][j]/mins[1]))
	}
	return t, nil
}

// Table1 reproduces Table 1: BICG's two kernels prefer different devices.
func (r *Runner) Table1() (*Table, error) {
	b := polybench.Bicg(768)
	if r.Quick {
		b = polybench.Bicg(192)
	}
	var devRes [2]*sched.Result
	err := r.cells(2, func(i int) error {
		res, err := r.single(b, i == 1)
		devRes[i] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	cpuRes, gpuRes := devRes[0], devRes[1]
	t := &Table{
		ID:    "table1",
		Title: "Kernel running times for BICG (ms)",
		Note: "Paper shape: each of BICG's two kernels runs faster on a different device.\n" +
			"Input " + b.InputDesc + ".",
		Columns: []string{"Kernel", "CPU Only", "GPU Only", "Faster"},
	}
	for i, l := range b.App.Launches {
		faster := "CPU"
		if gpuRes.LaunchTimes[i] < cpuRes.LaunchTimes[i] {
			faster = "GPU"
		}
		t.AddRow(l.Kernel, ms(cpuRes.LaunchTimes[i]), ms(gpuRes.LaunchTimes[i]), faster)
	}
	return t, nil
}

// Table2 reproduces Table 2: the benchmark inventory.
func (r *Runner) Table2() (*Table, error) {
	t := &Table{
		ID:      "table2",
		Title:   "Benchmarks used in this work",
		Note:    "Sizes scaled down from the paper's (kernels execute on an interpreter).",
		Columns: []string{"Benchmark", "Input Size", "Kernels", "Work-groups"},
	}
	for _, b := range r.benchmarks() {
		wgs := ""
		for i, l := range b.App.Launches {
			if i > 0 {
				wgs += ", "
			}
			wgs += fmt.Sprintf("%d", l.ND.TotalGroups())
		}
		t.AddRow(b.Name, b.InputDesc, fmt.Sprintf("%d", len(b.App.Launches)), wgs)
	}
	return t, nil
}

// Overall reproduces the §9.1 overall-performance figure: CPU-only,
// GPU-only, FluidiCL and OracleSP per benchmark, normalized to the better
// single device, plus the geomean and headline speedups.
func (r *Runner) Overall() (*Table, error) {
	t := &Table{
		ID:      "fig13",
		Title:   "Overall performance of FluidiCL (normalized to best single device)",
		Columns: []string{"Benchmark", "CPU", "GPU", "FluidiCL", "OracleSP"},
	}
	var nCPU, nGPU, nFCL, nOSP []float64
	var vsGPU, vsCPU, vsBest []float64
	benches := r.benchmarks()
	// Four independent simulations per benchmark: cpu, gpu, fluidicl, oracle.
	rs := make([][4]*sched.Result, len(benches))
	err := r.cells(len(benches)*4, func(c int) error {
		i, k := c/4, c%4
		b := benches[i]
		var res *sched.Result
		var err error
		switch k {
		case 0:
			res, err = r.single(b, false)
		case 1:
			res, err = r.single(b, true)
		case 2:
			res, err = r.fluidicl(b, core.Options{})
		default:
			var or *sched.OracleResult
			or, err = sched.RunOracle(r.M, b.App)
			if err != nil {
				return err
			}
			if err := b.Verify(or.Best.Outputs); err != nil {
				return err
			}
			res = or.Best
		}
		rs[i][k] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		cpuRes, gpuRes, fclRes, oraRes := rs[i][0], rs[i][1], rs[i][2], rs[i][3]
		best := minT(cpuRes.Time, gpuRes.Time)
		t.AddRow(b.Name,
			f2(cpuRes.Time/best), f2(gpuRes.Time/best),
			f2(fclRes.Time/best), f2(oraRes.Time/best))
		nCPU = append(nCPU, cpuRes.Time/best)
		nGPU = append(nGPU, gpuRes.Time/best)
		nFCL = append(nFCL, fclRes.Time/best)
		nOSP = append(nOSP, oraRes.Time/best)
		vsGPU = append(vsGPU, gpuRes.Time/fclRes.Time)
		vsCPU = append(vsCPU, cpuRes.Time/fclRes.Time)
		vsBest = append(vsBest, best/fclRes.Time)
	}
	t.AddRow("GeoMean", f2(geomean(nCPU)), f2(geomean(nGPU)), f2(geomean(nFCL)), f2(geomean(nOSP)))
	t.Note = fmt.Sprintf(
		"FluidiCL geomean speedup: %.2fx over GPU-only, %.2fx over CPU-only, %.2fx over the best device.\n"+
			"Paper: 1.64x over GPU, 1.88x over CPU, 1.04x over the best; within ~3%% of the best device everywhere.",
		geomean(vsGPU), geomean(vsCPU), geomean(vsBest))
	return t, nil
}

// Fig14 reproduces §9.2: SYRK across input sizes.
func (r *Runner) Fig14() (*Table, error) {
	t := &Table{
		ID:      "fig14",
		Title:   "SYRK across input sizes (normalized to best single device)",
		Note:    "Paper shape: FluidiCL beats both single devices at every size (geomean ~1.4x over the best).",
		Columns: []string{"Input", "CPU", "GPU", "FluidiCL"},
	}
	var nCPU, nGPU, nFCL []float64
	sizes := r.syrkSizes()
	benches := make([]*polybench.Benchmark, len(sizes))
	for i, sz := range sizes {
		benches[i] = polybench.Syrk(sz[0], sz[1])
	}
	rs := make([][3]*sched.Result, len(benches))
	err := r.cells(len(benches)*3, func(c int) error {
		i, k := c/3, c%3
		b := benches[i]
		var res *sched.Result
		var err error
		switch k {
		case 0:
			res, err = r.single(b, false)
		case 1:
			res, err = r.single(b, true)
		default:
			res, err = r.fluidicl(b, core.Options{})
		}
		rs[i][k] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		cpuRes, gpuRes, fclRes := rs[i][0], rs[i][1], rs[i][2]
		best := minT(cpuRes.Time, gpuRes.Time)
		t.AddRow(b.InputDesc, f2(cpuRes.Time/best), f2(gpuRes.Time/best), f2(fclRes.Time/best))
		nCPU = append(nCPU, cpuRes.Time/best)
		nGPU = append(nGPU, gpuRes.Time/best)
		nFCL = append(nFCL, fclRes.Time/best)
	}
	t.AddRow("GeoMean", f2(geomean(nCPU)), f2(geomean(nGPU)), f2(geomean(nFCL)))
	return t, nil
}

// Fig15 reproduces §9.3: the effect of in-loop work-group aborts and loop
// unrolling, normalized to the all-optimizations configuration.
func (r *Runner) Fig15() (*Table, error) {
	t := &Table{
		ID:    "fig15",
		Title: "Effect of work-group abort in loops and loop unrolling (normalized to AllOpt)",
		Note: "NoAbortUnroll: abort checks only at work-group entry. NoUnroll: checks inside\n" +
			"loops every iteration. AllOpt: in-loop checks amortized by unrolling.\n" +
			"Paper shape: NoAbortUnroll and NoUnroll are both slower than AllOpt on most benchmarks.",
		Columns: []string{"Benchmark", "NoAbortUnroll", "NoUnroll", "AllOpt"},
	}
	var a, bcol, c []float64
	benches := r.benchmarks()
	optCfgs := []core.Options{{NoAbortInLoops: true}, {NoUnroll: true}, {}}
	rs := make([][3]*sched.Result, len(benches))
	err := r.cells(len(benches)*3, func(cell int) error {
		i, k := cell/3, cell%3
		res, err := r.fluidicl(benches[i], optCfgs[k])
		rs[i][k] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		noAbort, noUnroll, allOpt := rs[i][0], rs[i][1], rs[i][2]
		t.AddRow(b.Name,
			f2(noAbort.Time/allOpt.Time), f2(noUnroll.Time/allOpt.Time), f2(1.0))
		a = append(a, noAbort.Time/allOpt.Time)
		bcol = append(bcol, noUnroll.Time/allOpt.Time)
		c = append(c, 1.0)
	}
	t.AddRow("GeoMean", f2(geomean(a)), f2(geomean(bcol)), f2(geomean(c)))
	return t, nil
}

// Table3 reproduces §9.3's Table 3: online profiling picks the
// hand-optimized CPU kernel for CORR.
func (r *Runner) Table3() (*Table, error) {
	mkPlain := func() *polybench.Benchmark {
		if r.Quick {
			return polybench.Corr(64, 64)
		}
		return polybench.Corr(128, 128)
	}
	mkVar := func() *polybench.Benchmark {
		if r.Quick {
			return polybench.CorrWithVariant(64, 64)
		}
		return polybench.CorrWithVariant(128, 128)
	}
	var rs [4]*sched.Result
	err := r.cells(4, func(k int) error {
		var res *sched.Result
		var err error
		switch k {
		case 0:
			res, err = r.single(mkPlain(), true)
		case 1:
			res, err = r.single(mkPlain(), false)
		case 2:
			res, err = r.fluidicl(mkPlain(), core.Options{})
		default:
			// Two runs in one runtime; the first (excluded per §8's
			// methodology) is when online profiling identifies the better
			// CPU kernel.
			vb := mkVar()
			res, err = sched.RunFluidiCLRepeat(r.M, vb.App, core.Options{OnlineProfiling: true}, 2)
			res, err = verify(vb, res, err)
		}
		rs[k] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	gpuRes, cpuRes, fcl, fclPro := rs[0], rs[1], rs[2], rs[3]
	t := &Table{
		ID:    "table3",
		Title: "CORR with a choice of CPU kernels (ms)",
		Note: "FCL+Pro adds a loop-interchanged CPU kernel and online profiling (§6.6);\n" +
			"measured on the second run, as the paper's methodology excludes the first (§8).\n" +
			"Paper shape: FCL+Pro outperforms plain FluidiCL by using the better CPU kernel.",
		Columns: []string{"GPU", "CPU", "FluidiCL", "FCL+Pro"},
	}
	t.AddRow(ms(gpuRes.Time), ms(cpuRes.Time), ms(fcl.Time), ms(fclPro.Time))
	return t, nil
}

// Fig16 reproduces §9.4: comparison with the SOCL/StarPU schedulers.
func (r *Runner) Fig16() (*Table, error) {
	t := &Table{
		ID:      "fig16",
		Title:   "Comparison with SOCL (normalized to best single device)",
		Columns: []string{"Benchmark", "CPU", "GPU", "SOCLDefault", "SOCLdmda", "FluidiCL"},
	}
	var nEager, nDmda, nFCL []float64
	var fclVsEager, fclVsDmda []float64
	benches := r.benchmarks()
	// Five cells per benchmark; dmda calibration and its measured run form
	// one cell, as the model feeds the run.
	rs := make([][5]*sched.Result, len(benches))
	err := r.cells(len(benches)*5, func(c int) error {
		i, k := c/5, c%5
		b := benches[i]
		var res *sched.Result
		var err error
		switch k {
		case 0:
			res, err = r.single(b, false)
		case 1:
			res, err = r.single(b, true)
		case 2:
			res, err = sched.RunSocl(r.M, b.App, sched.Eager, nil)
			res, err = verify(b, res, err)
		case 3:
			var model sched.DmdaModel
			model, err = sched.CalibrateDmda(r.M, b.App)
			if err != nil {
				return err
			}
			res, err = sched.RunSocl(r.M, b.App, sched.Dmda, model)
			res, err = verify(b, res, err)
		default:
			res, err = r.fluidicl(b, core.Options{})
		}
		rs[i][k] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		cpuRes, gpuRes, eager, dmda, fcl := rs[i][0], rs[i][1], rs[i][2], rs[i][3], rs[i][4]
		best := minT(cpuRes.Time, gpuRes.Time)
		t.AddRow(b.Name,
			f2(cpuRes.Time/best), f2(gpuRes.Time/best),
			f2(eager.Time/best), f2(dmda.Time/best), f2(fcl.Time/best))
		nEager = append(nEager, eager.Time/best)
		nDmda = append(nDmda, dmda.Time/best)
		nFCL = append(nFCL, fcl.Time/best)
		fclVsEager = append(fclVsEager, eager.Time/fcl.Time)
		fclVsDmda = append(fclVsDmda, dmda.Time/fcl.Time)
	}
	t.AddRow("GeoMean", "", "", f2(geomean(nEager)), f2(geomean(nDmda)), f2(geomean(nFCL)))
	t.Note = fmt.Sprintf(
		"FluidiCL vs SOCL-eager: %.2fx; vs SOCL-dmda: %.2fx (geomean; no calibration needed).\n"+
			"Paper: 2.67x over the eager scheduler, 1.26x over calibrated dmda.",
		geomean(fclVsEager), geomean(fclVsDmda))
	return t, nil
}

// Fig17 reproduces §9.5: sensitivity to the initial chunk size.
func (r *Runner) Fig17() (*Table, error) {
	chunks := []float64{2, 5, 10, 25, 50, 75}
	cols := []string{"Benchmark"}
	for _, c := range chunks {
		cols = append(cols, fmt.Sprintf("%.0f%%", c))
	}
	t := &Table{
		ID:    "fig17",
		Title: "Sensitivity to initial chunk size (normalized to 2%)",
		Note: "Step size fixed at 2%. Paper shape: large initial chunks hurt benchmarks that\n" +
			"need cooperative execution; the chosen 2% is within a few % of the best everywhere.",
		Columns: cols,
	}
	benches := r.benchmarks()
	nc := len(chunks)
	times := make([][]sim.Time, len(benches))
	for i := range times {
		times[i] = make([]sim.Time, nc)
	}
	err := r.cells(len(benches)*nc, func(c int) error {
		i, j := c/nc, c%nc
		res, err := r.fluidicl(benches[i], core.Options{InitialChunkPct: chunks[j]})
		if err != nil {
			return err
		}
		times[i][j] = res.Time
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		base := times[i][0]
		row := []string{b.Name}
		for _, tm := range times[i] {
			row = append(row, f2(tm/base))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig18 reproduces §9.5: sensitivity to the adaptive step size.
func (r *Runner) Fig18() (*Table, error) {
	steps := []float64{-1, 1, 2, 5, 9} // -1 encodes a constant chunk (0%)
	cols := []string{"Benchmark", "0%", "1%", "2%", "5%", "9%"}
	t := &Table{
		ID:    "fig18",
		Title: "Sensitivity to chunk step size (normalized to 2%)",
		Note: "Initial chunk 2%; 0% means the allocation never grows.\n" +
			"Paper shape: the chosen 2% step is within ~10% of the best in most cases.",
		Columns: cols,
	}
	benches := r.benchmarks()
	ns := len(steps)
	times := make([][]sim.Time, len(benches))
	for i := range times {
		times[i] = make([]sim.Time, ns)
	}
	err := r.cells(len(benches)*ns, func(c int) error {
		i, j := c/ns, c%ns
		res, err := r.fluidicl(benches[i], core.Options{StepPct: steps[j]})
		if err != nil {
			return err
		}
		times[i][j] = res.Time
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		base := times[i][2] // the 2% column
		row := []string{b.Name}
		for _, tm := range times[i] {
			row = append(row, f2(tm/base))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// ExperimentIDs are the paper's artifacts in paper order.
var ExperimentIDs = []string{
	"fig2", "fig3", "table1", "table2", "fig13", "fig14", "fig15", "table3", "fig16", "fig17", "fig18",
}

// ExtraExperimentIDs are additional experiments beyond the paper's
// artifacts (design-choice ablations, machine portability).
var ExtraExperimentIDs = []string{"ablation", "portability"}

// Run executes one experiment by ID.
func (r *Runner) Run(id string) (*Table, error) {
	switch id {
	case "fig2":
		return r.Fig2()
	case "fig3":
		return r.Fig3()
	case "table1":
		return r.Table1()
	case "table2":
		return r.Table2()
	case "fig13", "overall":
		return r.Overall()
	case "fig14", "inputs":
		return r.Fig14()
	case "fig15", "opts":
		return r.Fig15()
	case "table3", "profiling":
		return r.Table3()
	case "fig16", "socl":
		return r.Fig16()
	case "fig17", "chunk":
		return r.Fig17()
	case "fig18", "step":
		return r.Fig18()
	case "ablation":
		return r.Ablation()
	case "portability":
		return r.Portability()
	}
	return nil, fmt.Errorf("harness: unknown experiment %q", id)
}

// All runs every experiment: the paper's artifacts in paper order, then the
// extra experiments.
func (r *Runner) All() ([]*Table, error) {
	var out []*Table
	for _, id := range append(append([]string{}, ExperimentIDs...), ExtraExperimentIDs...) {
		t, err := r.Run(id)
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Ablation is not a paper artifact: it isolates FluidiCL design choices the
// paper describes but does not plot — CPU work-group splitting (§6.3) and
// adaptive chunk growth (§5.1) — alongside the §6.4 aborts, normalized to
// the full configuration.
func (r *Runner) Ablation() (*Table, error) {
	configs := []struct {
		name string
		opts core.Options
	}{
		{"Full", core.Options{}},
		{"NoSplit", core.Options{NoWorkGroupSplit: true}},
		{"ConstChunk", core.Options{StepPct: -1}},
		{"NoLoopAborts", core.Options{NoAbortInLoops: true}},
	}
	cols := []string{"Benchmark"}
	for _, c := range configs {
		cols = append(cols, c.name)
	}
	t := &Table{
		ID:      "ablation",
		Title:   "FluidiCL design-choice ablations (normalized to the full configuration)",
		Note:    "Not a paper artifact; isolates §6.3 work-group splitting, §5.1 adaptive growth\nand §6.4 in-loop aborts.",
		Columns: cols,
	}
	gms := make([][]float64, len(configs))
	benches := r.benchmarks()
	nc := len(configs)
	times := make([][]sim.Time, len(benches))
	for i := range times {
		times[i] = make([]sim.Time, nc)
	}
	err := r.cells(len(benches)*nc, func(c int) error {
		i, j := c/nc, c%nc
		res, err := r.fluidicl(benches[i], configs[j].opts)
		if err != nil {
			return err
		}
		times[i][j] = res.Time
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		row := []string{b.Name}
		base := times[i][0]
		for j := range configs {
			row = append(row, f2(times[i][j]/base))
			gms[j] = append(gms[j], times[i][j]/base)
		}
		t.AddRow(row...)
	}
	gmRow := []string{"GeoMean"}
	for i := range configs {
		gmRow = append(gmRow, f2(geomean(gms[i])))
	}
	t.AddRow(gmRow...)
	return t, nil
}

// Portability exercises the paper's claim that FluidiCL "is completely
// portable across different machines" and "does not require prior training
// or profiling": the same untouched runtime configuration runs the suite on
// three simulated machines with very different CPU/GPU balances, and on
// each one FluidiCL must track (or beat) the better single device.
func (r *Runner) Portability() (*Table, error) {
	machines := []struct {
		name string
		m    sched.Machine
	}{
		{"C2070+W3550", sched.Machine{CPU: device.XeonW3550(), GPU: device.TeslaC2070()}},
		{"GT440+W3550", sched.Machine{CPU: device.XeonW3550(), GPU: device.GT440()}},
		{"C2070+2xX5570", sched.Machine{CPU: device.XeonDual(), GPU: device.TeslaC2070()}},
	}
	t := &Table{
		ID:    "portability",
		Title: "Portability across machines (FluidiCL geomean vs best single device)",
		Note: "Not a paper artifact; tests the paper's portability claim. The same runtime\n" +
			"defaults run on three machines with very different device balances.",
		Columns: []string{"Machine", "CPU", "GPU", "FluidiCL"},
	}
	benches := r.benchmarks()
	nb := len(benches)
	// One flat cell per (machine, benchmark, strategy).
	rs := make([][3]*sched.Result, len(machines)*nb)
	err := r.cells(len(machines)*nb*3, func(c int) error {
		mi, rest := c/(nb*3), c%(nb*3)
		bi, k := rest/3, rest%3
		sub := &Runner{M: machines[mi].m, Quick: r.Quick, Parallel: 1}
		b := benches[bi]
		var res *sched.Result
		var err error
		switch k {
		case 0:
			res, err = sub.single(b, false)
		case 1:
			res, err = sub.single(b, true)
		default:
			res, err = sub.fluidicl(b, core.Options{})
		}
		if err != nil {
			return fmt.Errorf("%s: %w", machines[mi].name, err)
		}
		rs[mi*nb+bi][k] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for mi, mc := range machines {
		var nCPU, nGPU, nFCL []float64
		for bi := range benches {
			cell := rs[mi*nb+bi]
			best := minT(cell[0].Time, cell[1].Time)
			nCPU = append(nCPU, cell[0].Time/best)
			nGPU = append(nGPU, cell[1].Time/best)
			nFCL = append(nFCL, cell[2].Time/best)
		}
		t.AddRow(mc.name, f2(geomean(nCPU)), f2(geomean(nGPU)), f2(geomean(nFCL)))
	}
	return t, nil
}
