package harness

import (
	"strconv"
	"strings"
	"testing"
)

func quickRunner() *Runner {
	r := NewRunner()
	r.Quick = true
	return r
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "demo", Note: "note line",
		Columns: []string{"A", "BB"},
	}
	tab.AddRow("1", "2")
	s := tab.String()
	for _, want := range []string{"demo", "note line", "A", "BB", "1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "A,BB\n1,2\n") {
		t.Fatalf("CSV = %q", csv)
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g != 4 {
		t.Fatalf("geomean = %v, want 4", g)
	}
	if g := geomean([]float64{1, 1, 1}); g != 1 {
		t.Fatalf("geomean = %v, want 1", g)
	}
}

func TestTable2Inventory(t *testing.T) {
	tab, err := quickRunner().Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(tab.Rows))
	}
	if tab.Rows[0][0] != "2MM" || tab.Rows[5][0] != "SYR2K" {
		t.Fatalf("unexpected order: %v", tab.Rows)
	}
}

func TestTable1BicgKernelsPreferDifferentDevices(t *testing.T) {
	tab, err := quickRunner().Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(tab.Rows))
	}
	// The paper's Table 1 scenario: the two kernels prefer different devices.
	if tab.Rows[0][3] == tab.Rows[1][3] {
		t.Fatalf("both BICG kernels prefer %s; want opposite preferences\n%s", tab.Rows[0][3], tab)
	}
}

func TestOverallShapes(t *testing.T) {
	tab, err := quickRunner().Overall()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 { // 6 benchmarks + geomean
		t.Fatalf("%d rows, want 7\n%s", len(tab.Rows), tab)
	}
	// Quick-scale kernels run tens of microseconds, so fixed per-kernel
	// costs (uploads, subkernel launches, zombie-kernel drains) dominate;
	// this test only guards against order-of-magnitude breakage. The real
	// paper-shape bounds are asserted at full scale in
	// TestOverallShapesFullScale.
	for _, row := range tab.Rows[:6] {
		fcl := parseF(t, row[3])
		if fcl > 3.0 {
			t.Errorf("%s: FluidiCL %.2fx worse than best single device\n%s", row[0], fcl, tab)
		}
	}
	t.Logf("\n%s", tab)
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := quickRunner().Run("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentAliases(t *testing.T) {
	r := quickRunner()
	a, err := r.Run("table2")
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "table2" {
		t.Fatalf("ID = %s", a.ID)
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad float %q", s)
	}
	return v
}

func TestOverallShapesFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment; skipped with -short")
	}
	tab, err := NewRunner().Overall()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	// Paper headline shapes at full scale: FluidiCL within ~15% of the
	// best device on every benchmark (paper: ~3% on hardware-scale
	// kernels), and at least matching the best device in geomean.
	for _, row := range tab.Rows[:6] {
		if fcl := parseF(t, row[3]); fcl > 1.2 {
			t.Errorf("%s: FluidiCL %.2fx worse than best single device", row[0], fcl)
		}
	}
	gm := parseF(t, tab.Rows[6][3])
	if gm > 1.0 {
		t.Errorf("FluidiCL geomean %.2f, want <= 1.0 (paper: beats the best device overall)", gm)
	}
	// FluidiCL must beat each single device overall (paper: 1.64x over
	// GPU-only, 1.88x over CPU-only).
	if cpu := parseF(t, tab.Rows[6][1]); cpu <= gm {
		t.Errorf("CPU-only geomean %.2f not worse than FluidiCL %.2f", cpu, gm)
	}
	if gpu := parseF(t, tab.Rows[6][2]); gpu <= gm {
		t.Errorf("GPU-only geomean %.2f not worse than FluidiCL %.2f", gpu, gm)
	}
}

func TestFig15OptimizationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment; skipped with -short")
	}
	tab, err := NewRunner().Fig15()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	// Paper shape: disabling in-loop aborts or unrolling does not help in
	// geomean; AllOpt is the best configuration overall.
	gmNoAbort := parseF(t, tab.Rows[6][1])
	gmNoUnroll := parseF(t, tab.Rows[6][2])
	if gmNoAbort < 0.99 {
		t.Errorf("NoAbortUnroll geomean %.3f beats AllOpt; expected >= 1", gmNoAbort)
	}
	if gmNoUnroll < 0.99 {
		t.Errorf("NoUnroll geomean %.3f beats AllOpt; expected >= 1", gmNoUnroll)
	}
}

func TestFig16SoclShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment; skipped with -short")
	}
	tab, err := NewRunner().Fig16()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	// Paper shape: FluidiCL clearly beats the eager scheduler and at least
	// matches calibrated dmda in geomean.
	gmEager := parseF(t, tab.Rows[6][3])
	gmDmda := parseF(t, tab.Rows[6][4])
	gmFCL := parseF(t, tab.Rows[6][5])
	if gmFCL >= gmEager {
		t.Errorf("FluidiCL (%.2f) does not beat SOCL-eager (%.2f)", gmFCL, gmEager)
	}
	if gmFCL > gmDmda*1.02 {
		t.Errorf("FluidiCL (%.2f) clearly worse than SOCL-dmda (%.2f)", gmFCL, gmDmda)
	}
}

func TestFig2CurveShape(t *testing.T) {
	tab, err := quickRunner().Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 11 {
		t.Fatalf("%d rows, want 11 (0..100%%)", len(tab.Rows))
	}
	// 2MM must be best at (or very near) 100% GPU: the last row's 2MM cell
	// should be the minimum of its column.
	last := parseF(t, tab.Rows[10][1])
	for i := 0; i < 9; i++ {
		if parseF(t, tab.Rows[i][1]) < last-0.02 {
			t.Fatalf("2MM best split is not ~100%% GPU:\n%s", tab)
		}
	}
}

func TestAblationRuns(t *testing.T) {
	tab, err := quickRunner().Ablation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("%d rows, want 7", len(tab.Rows))
	}
	// The Full column is the normalization baseline.
	for _, row := range tab.Rows {
		if row[1] != "1.00" {
			t.Fatalf("Full column not 1.00: %v", row)
		}
	}
	if _, err := quickRunner().Run("ablation"); err != nil {
		t.Fatal(err)
	}
}

func TestFig17And18Structure(t *testing.T) {
	r := quickRunner()
	t17, err := r.Fig17()
	if err != nil {
		t.Fatal(err)
	}
	if len(t17.Columns) != 7 || len(t17.Rows) != 6 {
		t.Fatalf("fig17 shape: %d cols %d rows", len(t17.Columns), len(t17.Rows))
	}
	t18, err := r.Fig18()
	if err != nil {
		t.Fatal(err)
	}
	if len(t18.Columns) != 6 || len(t18.Rows) != 6 {
		t.Fatalf("fig18 shape: %d cols %d rows", len(t18.Columns), len(t18.Rows))
	}
	// The 2% column of fig18 is the baseline.
	for _, row := range t18.Rows {
		if row[3] != "1.00" {
			t.Fatalf("fig18 2%% column not 1.00: %v", row)
		}
	}
}

func TestTable3Runs(t *testing.T) {
	tab, err := quickRunner().Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || len(tab.Rows[0]) != 4 {
		t.Fatalf("table3 shape wrong: %v", tab.Rows)
	}
	for _, cell := range tab.Rows[0] {
		if parseF(t, cell) <= 0 {
			t.Fatalf("non-positive time in table3: %v", tab.Rows[0])
		}
	}
}
