package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fluidicl/internal/core"
	"fluidicl/internal/polybench"
	"fluidicl/internal/sched"
	"fluidicl/internal/trace"
	"fluidicl/internal/vm"
)

// chromeTraceBytes runs the quick-scale 2DCONV benchmark under FluidiCL with
// the given host worker count and returns the serialized Chrome trace.
func chromeTraceBytes(t *testing.T, workers int) []byte {
	t.Helper()
	vm.SetWorkers(workers)
	defer vm.SetWorkers(0)
	b, err := polybench.ByNameQuick("2DCONV")
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	res, err := sched.RunFluidiCLTraced(sched.DefaultMachine(), b.App, core.Options{}, rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(res.Outputs); err != nil {
		t.Fatalf("traced run produced wrong results: %v", err)
	}
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenChromeTrace pins the trace bytes three ways: they must be valid
// trace_event JSON with one track per simulated device, one per link and one
// for the runtime; identical whether work-groups execute on one host thread
// or many (recording happens only inside the deterministic simulation); and
// byte-for-byte equal to the committed golden file, so any change to the
// simulation's event timeline shows up as a reviewable diff. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/harness -run TestGoldenChromeTrace.
func TestGoldenChromeTrace(t *testing.T) {
	seq := chromeTraceBytes(t, 1)
	par := chromeTraceBytes(t, 8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("trace bytes differ between workers=1 (%d bytes) and workers=8 (%d bytes)", len(seq), len(par))
	}

	if !json.Valid(seq) {
		t.Fatal("trace is not valid JSON")
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(seq, &parsed); err != nil {
		t.Fatal(err)
	}
	tracks := map[string]bool{}
	for _, e := range parsed.TraceEvents {
		if e.Name == "thread_name" {
			tracks[e.Args["name"].(string)] = true
		}
	}
	m := sched.DefaultMachine()
	for _, want := range []string{m.CPU.Name, m.CPU.Name + " link", m.GPU.Name, m.GPU.Name + " link", "FluidiCL runtime"} {
		if !tracks[want] {
			t.Errorf("trace is missing track %q (have %v)", want, tracks)
		}
	}

	golden := filepath.Join("testdata", "trace_2dconv_quick.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, seq, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(seq))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file: %v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(seq, want) {
		t.Fatalf("trace differs from golden %s (got %d bytes, want %d); if the timeline change is intentional, regenerate with UPDATE_GOLDEN=1",
			golden, len(seq), len(want))
	}
}

// TestTracedRunMatchesUntraced: attaching a recorder must not perturb the
// simulation — virtual completion time and outputs are identical.
func TestTracedRunMatchesUntraced(t *testing.T) {
	b1, _ := polybench.ByNameQuick("BICG")
	b2, _ := polybench.ByNameQuick("BICG")
	plain, err := sched.RunFluidiCL(sched.DefaultMachine(), b1.App, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := sched.RunFluidiCLTraced(sched.DefaultMachine(), b2.App, core.Options{}, trace.NewRecorder())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Time != traced.Time {
		t.Fatalf("virtual time changed under tracing: %v vs %v", plain.Time, traced.Time)
	}
	if outputHash(plain.Outputs) != outputHash(traced.Outputs) {
		t.Fatal("outputs changed under tracing")
	}
}

// TestResultSummaryPopulated: every strategy attaches a meter summary, and
// FluidiCL's reflects cooperative execution (both devices busy, both
// directions of link traffic).
func TestResultSummaryPopulated(t *testing.T) {
	b, _ := polybench.ByNameQuick("SYRK")
	res, err := sched.RunFluidiCL(sched.DefaultMachine(), b.App, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cpu := res.Summary.ByKind("CPU")
	gpu := res.Summary.ByKind("GPU")
	if cpu.Busy <= 0 || gpu.Busy <= 0 {
		t.Fatalf("expected both devices busy: CPU %v, GPU %v", cpu.Busy, gpu.Busy)
	}
	if cpu.BytesH2D+gpu.BytesH2D == 0 {
		t.Fatal("no host-to-device traffic metered")
	}
	if gpu.BytesD2H == 0 {
		t.Fatal("no device-to-host traffic metered on the GPU")
	}
	if res.Summary.BothBusy <= 0 {
		t.Fatal("no compute overlap metered for a cooperative run")
	}

	single, err := sched.RunSingle(sched.DefaultMachine().GPU, mustQuick(t, "SYRK").App)
	if err != nil {
		t.Fatal(err)
	}
	g := single.Summary.ByKind("GPU")
	if g.Busy <= 0 || g.WGsExecuted == 0 {
		t.Fatalf("single-device summary empty: %+v", g)
	}
	if single.Summary.BothBusy != 0 {
		t.Fatalf("single-device run reports overlap %v", single.Summary.BothBusy)
	}
}

func mustQuick(t *testing.T, name string) *polybench.Benchmark {
	t.Helper()
	b, err := polybench.ByNameQuick(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestQuickNamesCoverAll: every full-scale benchmark has a quick variant
// under the same name (fluidibench -quick resolution relies on this).
func TestQuickNamesCoverAll(t *testing.T) {
	quick := map[string]bool{}
	for _, b := range polybench.AllQuick() {
		quick[b.Name] = true
	}
	for _, b := range polybench.AllWithExtras() {
		if !quick[b.Name] {
			t.Errorf("benchmark %s has no quick variant", b.Name)
		}
	}
	if !quick[strings.ToUpper("2dconv")] {
		t.Error("2DCONV missing from quick set")
	}
}
