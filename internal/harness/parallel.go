package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelism returns how many experiment cells may run concurrently:
// Runner.Parallel when set, else GOMAXPROCS.
func (r *Runner) parallelism() int {
	if r.Parallel > 0 {
		return r.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// cells runs fn(0) .. fn(n-1), each cell a self-contained simulation, on up
// to parallelism() goroutines. Every cell owns its own sim.Env, so cells
// never share mutable state; each fn writes its result into a distinct slot
// of a caller-owned slice. The returned error is the lowest-index one —
// exactly the error the sequential loop would have surfaced first.
func (r *Runner) cells(n int, fn func(i int) error) error {
	return parallelFor(r.parallelism(), n, fn)
}

// parallelFor is the generic worker loop behind Runner.cells.
func parallelFor(workers, n int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
