// Package harness regenerates every table and figure in the paper's
// motivation and evaluation sections (the per-experiment index lives in
// DESIGN.md §3). Each experiment returns a Table whose rows are the same
// series the paper plots; EXPERIMENTS.md records paper-vs-measured shapes.
//
// Every experiment also verifies the outputs of every run against the
// benchmark's bit-exact reference — performance numbers from wrong results
// would be meaningless.
package harness

import (
	"fmt"
	"math"
	"strings"

	"fluidicl/internal/sim"
)

// Table is one regenerated paper artifact.
type Table struct {
	ID      string // e.g. "fig13"
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		for _, line := range strings.Split(t.Note, "\n") {
			fmt.Fprintf(&b, "   %s\n", line)
		}
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteString("\n")
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteString("\n")
	}
	return b.String()
}

// geomean returns the geometric mean of positive values.
func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range vals {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// f2 formats a ratio with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// ms formats a virtual time in milliseconds.
func ms(t sim.Time) string { return fmt.Sprintf("%.3f", t*1e3) }

func minT(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}
