package passes

import (
	"encoding/binary"
	"math"
	"testing"

	"fluidicl/internal/clc"
	"fluidicl/internal/vm"
)

const testKernelSrc = `
__kernel void scale(__global float* a, __global float* out, int n, int m) {
    int i = get_global_id(0);
    if (i < n) {
        float s = 0.0f;
        for (int k = 0; k < m; k++) {
            s += a[i] * 0.5f;
        }
        out[i] = s;
    }
}
`

func compileTransformed(t *testing.T, src, name string, gpu bool, opt GPUOptions) *vm.Kernel {
	t.Helper()
	prog, err := clc.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	k := prog.Kernel(name)
	if gpu {
		if _, err := TransformGPU(k, opt); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := TransformCPU(k); err != nil {
			t.Fatal(err)
		}
	}
	ki, err := clc.CheckKernel(k)
	if err != nil {
		t.Fatalf("transformed kernel does not type-check: %v\n%s", err, clc.PrintKernel(k))
	}
	ck, err := vm.Compile(ki)
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

func f32buf(vals ...float32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
	}
	return b
}

func f32at(b []byte, i int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
}

func statusBuf(kid, doneFrom int32) []byte {
	b := make([]byte, 4*StatusWords)
	binary.LittleEndian.PutUint32(b[4*StatusKernelID:], uint32(kid))
	binary.LittleEndian.PutUint32(b[4*StatusDoneFrom:], uint32(doneFrom))
	return b
}

func TestTransformCPURangeGuard(t *testing.T) {
	ck := compileTransformed(t, testKernelSrc, "scale", false, GPUOptions{})
	n := 64 // 8 groups of 8
	a := make([]float32, n)
	for i := range a {
		a[i] = 2
	}
	ab := f32buf(a...)
	out := make([]byte, 4*n)
	nd := vm.NewNDRange1D(n, 8)
	// Only groups 3..5 (work-items 24..47) should execute.
	args := []vm.Arg{
		vm.BufArg(ab), vm.BufArg(out), vm.IntArg(int64(n)), vm.IntArg(4),
		vm.IntArg(3), vm.IntArg(5),
	}
	if _, err := ck.ExecLaunch(nd, args, vm.ExecOpts{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got := f32at(out, i)
		g := i / 8
		if g >= 3 && g <= 5 {
			if got != 4 {
				t.Fatalf("out[%d] = %v, want 4 (in range)", i, got)
			}
		} else if got != 0 {
			t.Fatalf("out[%d] = %v, want 0 (outside range)", i, got)
		}
	}
}

func TestTransformGPUEntryAbort(t *testing.T) {
	ck := compileTransformed(t, testKernelSrc, "scale", true, GPUOptions{})
	n := 64
	ab := f32buf(make([]float32, n)...)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(ab[4*i:], math.Float32bits(2))
	}
	out := make([]byte, 4*n)
	nd := vm.NewNDRange1D(n, 8)
	kid := int32(7)
	// CPU has completed groups >= 5.
	status := statusBuf(kid, 5)
	args := []vm.Arg{
		vm.BufArg(ab), vm.BufArg(out), vm.IntArg(int64(n)), vm.IntArg(4),
		vm.BufArg(status), vm.IntArg(int64(kid)),
	}
	if _, err := ck.ExecLaunch(nd, args, vm.ExecOpts{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got := f32at(out, i)
		if i/8 < 5 {
			if got != 4 {
				t.Fatalf("out[%d] = %v, want 4 (GPU executes)", i, got)
			}
		} else if got != 0 {
			t.Fatalf("out[%d] = %v, want 0 (aborted: CPU completed)", i, got)
		}
	}
}

func TestTransformGPUStaleStatusIgnored(t *testing.T) {
	ck := compileTransformed(t, testKernelSrc, "scale", true, GPUOptions{})
	n := 16
	ab := f32buf(make([]float32, n)...)
	out := make([]byte, 4*n)
	nd := vm.NewNDRange1D(n, 8)
	// Status belongs to a previous kernel (kid mismatch) — must be ignored.
	status := statusBuf(3, 0)
	args := []vm.Arg{
		vm.BufArg(ab), vm.BufArg(out), vm.IntArg(int64(n)), vm.IntArg(1),
		vm.BufArg(status), vm.IntArg(9),
	}
	st, err := ck.ExecLaunch(nd, args, vm.ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if st.GlobalStores != int64(n) {
		t.Fatalf("stores = %d, want %d (stale status must not abort)", st.GlobalStores, n)
	}
}

func TestSemanticsPreservedByGPUTransform(t *testing.T) {
	// With an invalid status, all transform variants must produce results
	// identical to the original kernel.
	variants := []GPUOptions{
		{},
		{AbortInLoops: true},
		{AbortInLoops: true, Unroll: true},
		{AbortInLoops: true, Unroll: true, UnrollFactor: 3},
	}
	n, m := 32, 7
	mkInput := func() []byte {
		a := make([]float32, n)
		for i := range a {
			a[i] = float32(i)*0.25 + 1
		}
		return f32buf(a...)
	}
	ref := vm.MustCompile(testKernelSrc, "scale")
	refOut := make([]byte, 4*n)
	nd := vm.NewNDRange1D(n, 8)
	if _, err := ref.ExecLaunch(nd, []vm.Arg{vm.BufArg(mkInput()), vm.BufArg(refOut), vm.IntArg(int64(n)), vm.IntArg(int64(m))}, vm.ExecOpts{}); err != nil {
		t.Fatal(err)
	}
	for vi, opt := range variants {
		ck := compileTransformed(t, testKernelSrc, "scale", true, opt)
		out := make([]byte, 4*n)
		status := statusBuf(-1, NoCPUWork)
		args := []vm.Arg{
			vm.BufArg(mkInput()), vm.BufArg(out), vm.IntArg(int64(n)), vm.IntArg(int64(m)),
			vm.BufArg(status), vm.IntArg(1),
		}
		if _, err := ck.ExecLaunch(nd, args, vm.ExecOpts{}); err != nil {
			t.Fatalf("variant %d: %v", vi, err)
		}
		if string(out) != string(refOut) {
			t.Fatalf("variant %d (%+v): results differ from reference", vi, opt)
		}
	}
}

func TestInLoopAbortReducesWork(t *testing.T) {
	// With status marking every group complete, the entry check returns
	// before any loop work; compare FloatOps against an untouched status.
	ck := compileTransformed(t, testKernelSrc, "scale", true, GPUOptions{AbortInLoops: true})
	n, m := 32, 1000
	nd := vm.NewNDRange1D(n, 8)
	run := func(doneFrom int32) vm.Stats {
		out := make([]byte, 4*n)
		args := []vm.Arg{
			vm.BufArg(f32buf(make([]float32, n)...)), vm.BufArg(out),
			vm.IntArg(int64(n)), vm.IntArg(int64(m)),
			vm.BufArg(statusBuf(1, doneFrom)), vm.IntArg(1),
		}
		st, err := ck.ExecLaunch(nd, args, vm.ExecOpts{})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	full := run(NoCPUWork)
	aborted := run(0)
	if aborted.FloatOps*10 > full.FloatOps {
		t.Fatalf("aborted FloatOps=%d vs full=%d; abort saves no work", aborted.FloatOps, full.FloatOps)
	}
}

func TestUnrollReducesCheckLoads(t *testing.T) {
	// The abort check reads fcl_status; with unrolling the in-loop check
	// runs once per UnrollFactor iterations, so global loads drop.
	n, m := 8, 64
	nd := vm.NewNDRange1D(n, 8)
	run := func(opt GPUOptions) vm.Stats {
		ck := compileTransformed(t, testKernelSrc, "scale", true, opt)
		out := make([]byte, 4*n)
		args := []vm.Arg{
			vm.BufArg(f32buf(make([]float32, n)...)), vm.BufArg(out),
			vm.IntArg(int64(n)), vm.IntArg(int64(m)),
			vm.BufArg(statusBuf(-1, NoCPUWork)), vm.IntArg(1),
		}
		st, err := ck.ExecLaunch(nd, args, vm.ExecOpts{})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	noUnroll := run(GPUOptions{AbortInLoops: true})
	unrolled := run(GPUOptions{AbortInLoops: true, Unroll: true, UnrollFactor: 4})
	if unrolled.GlobalLoads >= noUnroll.GlobalLoads {
		t.Fatalf("unrolled loads=%d, no-unroll loads=%d; unroll should reduce check loads",
			unrolled.GlobalLoads, noUnroll.GlobalLoads)
	}
}

func TestLoopCheckCountsInnermostOnly(t *testing.T) {
	src := `
__kernel void nested(__global float* a, int n) {
    int i = get_global_id(0);
    for (int x = 0; x < n; x++) {
        for (int y = 0; y < n; y++) {
            a[i] += 1.0f;
        }
    }
    for (int z = 0; z < n; z++) { a[i] += 2.0f; }
}
`
	prog := clc.MustParse(src)
	k := prog.Kernel("nested")
	checks, err := TransformGPU(k, GPUOptions{AbortInLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	if checks != 2 {
		t.Fatalf("loop checks = %d, want 2 (innermost loops only)", checks)
	}
}

func TestWhileLoopGetsCheck(t *testing.T) {
	src := `
__kernel void w(__global float* a, int n) {
    int i = 0;
    while (i < n) { a[0] += 1.0f; i++; }
}
`
	prog := clc.MustParse(src)
	k := prog.Kernel("w")
	checks, err := TransformGPU(k, GPUOptions{AbortInLoops: true, Unroll: true})
	if err != nil {
		t.Fatal(err)
	}
	if checks != 1 {
		t.Fatalf("checks = %d, want 1", checks)
	}
}

func TestBreakingLoopNotUnrolledButStillChecked(t *testing.T) {
	src := `
__kernel void b(__global float* a, int n) {
    for (int i = 0; i < n; i++) {
        if (a[i] > 100.0f) { break; }
        a[i] += 1.0f;
    }
}
`
	prog := clc.MustParse(src)
	k := prog.Kernel("b")
	checks, err := TransformGPU(k, GPUOptions{AbortInLoops: true, Unroll: true})
	if err != nil {
		t.Fatal(err)
	}
	if checks != 1 {
		t.Fatalf("checks = %d, want 1", checks)
	}
	// Kernel must still compile and behave identically with inert status.
	ki, err := clc.CheckKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := vm.Compile(ki)
	if err != nil {
		t.Fatal(err)
	}
	buf := f32buf(1, 200, 3, 4)
	args := []vm.Arg{vm.BufArg(buf), vm.IntArg(4), vm.BufArg(statusBuf(-1, NoCPUWork)), vm.IntArg(1)}
	if _, err := ck.ExecLaunch(vm.NewNDRange1D(1, 1), args, vm.ExecOpts{}); err != nil {
		t.Fatal(err)
	}
	if f32at(buf, 0) != 2 || f32at(buf, 1) != 200 || f32at(buf, 2) != 3 {
		t.Fatalf("break semantics broken: %v %v %v", f32at(buf, 0), f32at(buf, 1), f32at(buf, 2))
	}
}

func TestNamespaceCollision(t *testing.T) {
	src := `__kernel void f(__global float* fcl_status) { fcl_status[0] = 1.0f; }`
	prog := clc.MustParse(src)
	if _, err := TransformGPU(prog.Kernels[0], GPUOptions{}); err == nil {
		t.Fatal("fcl_ collision not detected")
	}
	prog2 := clc.MustParse(src)
	if err := TransformCPU(prog2.Kernels[0]); err == nil {
		t.Fatal("fcl_ collision not detected (CPU)")
	}
}

func TestMergeKernel(t *testing.T) {
	mk := vm.MustCompile(MergeKernelSource, MergeKernelName)
	// orig = [1 2 3 4]; CPU computed elements 2,3 (values 30, 40); GPU
	// computed elements 0,1 (values 10, 20). After merge the GPU buffer
	// holds [10 20 30 40].
	orig := f32buf(1, 2, 3, 4)
	cpu := f32buf(1, 2, 30, 40)
	gpu := f32buf(10, 20, 3, 4)
	args := []vm.Arg{vm.BufArg(cpu), vm.BufArg(gpu), vm.BufArg(orig), vm.IntArg(4), vm.IntArg(0)}
	if _, err := mk.ExecLaunch(vm.NewNDRange1D(4, 4), args, vm.ExecOpts{}); err != nil {
		t.Fatal(err)
	}
	want := []float32{10, 20, 30, 40}
	for i, w := range want {
		if got := f32at(gpu, i); got != w {
			t.Fatalf("gpu[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestMergeKernelHandlesNaN(t *testing.T) {
	mk := vm.MustCompile(MergeKernelSource, MergeKernelName)
	nan := float32(math.NaN())
	orig := f32buf(nan, 1)
	cpu := f32buf(nan, 5) // element 0 unchanged (still NaN), element 1 computed
	gpu := f32buf(nan, 1)
	args := []vm.Arg{vm.BufArg(cpu), vm.BufArg(gpu), vm.BufArg(orig), vm.IntArg(2), vm.IntArg(0)}
	if _, err := mk.ExecLaunch(vm.NewNDRange1D(2, 2), args, vm.ExecOpts{}); err != nil {
		t.Fatal(err)
	}
	if got := f32at(gpu, 1); got != 5 {
		t.Fatalf("gpu[1] = %v, want 5", got)
	}
	// Word-wise comparison: identical NaN bits compare equal, so element 0
	// is (correctly) treated as unmodified.
	if !math.IsNaN(float64(f32at(gpu, 0))) {
		t.Fatalf("gpu[0] = %v, want NaN preserved", f32at(gpu, 0))
	}
}

func TestCanSplit(t *testing.T) {
	plain, err := clc.FindKernelInfo(`__kernel void f(__global float* a) { a[0] = 1.0f; }`, "f")
	if err != nil {
		t.Fatal(err)
	}
	if !CanSplit(plain) {
		t.Fatal("plain kernel should be splittable")
	}
	barr, err := clc.FindKernelInfo(`__kernel void f(__global float* a) { barrier(); a[0] = 1.0f; }`, "f")
	if err != nil {
		t.Fatal(err)
	}
	if CanSplit(barr) {
		t.Fatal("kernel with barrier must not be splittable")
	}
	loc, err := clc.FindKernelInfo(`__kernel void f(__global float* a) { __local float t[8]; t[0] = 1.0f; a[0] = t[0]; }`, "f")
	if err != nil {
		t.Fatal(err)
	}
	if CanSplit(loc) {
		t.Fatal("kernel with __local data must not be splittable")
	}
}

func TestTransformedSourcePrintsAndReparses(t *testing.T) {
	prog := clc.MustParse(testKernelSrc)
	k := prog.Kernel("scale")
	if _, err := TransformGPU(k, GPUOptions{AbortInLoops: true, Unroll: true}); err != nil {
		t.Fatal(err)
	}
	src := clc.PrintKernel(k)
	prog2, err := clc.Parse(src)
	if err != nil {
		t.Fatalf("transformed source does not re-parse: %v\n%s", err, src)
	}
	if _, err := clc.Check(prog2); err != nil {
		t.Fatalf("transformed source does not re-check: %v\n%s", err, src)
	}
}
