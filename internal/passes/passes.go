// Package passes implements FluidiCL's source-to-source kernel
// transformations (paper §5, §6). The paper applied these by hand and noted
// they "can easily be done by a source-to-source compiler"; here they are
// automated as AST-to-AST passes over MiniCL kernels:
//
//   - TransformGPU injects the flattened-group-ID computation and the
//     CPU-completion abort check at work-group entry (Fig. 8), optionally
//     inside innermost loops (§6.4), optionally rearranged so the in-loop
//     check runs once per UnrollFactor iterations (§6.5, Figs. 11-12).
//   - TransformCPU injects the subkernel range guard (Fig. 7): work-groups
//     outside the [fcl_lo, fcl_hi] flattened range return immediately
//     (§5.2's offset-calculation scheme launches rectangular slices that
//     may cover more groups than requested).
//   - MergeKernel is the generated data-merge kernel (Fig. 9) that combines
//     CPU- and GPU-computed buffers on the GPU.
package passes

import (
	"fmt"
	"strings"

	"fluidicl/internal/analysis"
	"fluidicl/internal/clc"
)

// Status-buffer layout (int32 words). The CPU scheduler writes this buffer
// to the GPU after each subkernel's data; the GPU kernel polls it.
const (
	StatusKernelID = 0 // kernel ID the status words refer to
	StatusDoneFrom = 1 // lowest flattened work-group ID completed on CPU
	StatusWords    = 2
)

// NoCPUWork is the DoneFrom value meaning "nothing completed on CPU yet".
const NoCPUWork = int32(1 << 30)

// GPUOptions configures the GPU-side transformation.
type GPUOptions struct {
	// AbortInLoops inserts the abort check inside innermost loops (§6.4).
	AbortInLoops bool
	// Unroll rearranges in-loop checks so they execute once per
	// UnrollFactor iterations (§6.5). Only meaningful with AbortInLoops.
	Unroll bool
	// UnrollFactor is the iteration chunk per in-loop check (default 4).
	UnrollFactor int
}

// Injected parameter names (the fcl_ namespace is reserved).
const (
	ParamStatus = "fcl_status"
	ParamKID    = "fcl_kid"
	ParamLo     = "fcl_lo"
	ParamHi     = "fcl_hi"
)

// GPUExtraArgs and CPUExtraArgs are the number of parameters the transforms
// append to a kernel's signature.
const (
	GPUExtraArgs = 2 // fcl_status, fcl_kid
	CPUExtraArgs = 2 // fcl_lo, fcl_hi
)

// TransformGPU mutates k into its FluidiCL GPU form and reports how many
// in-loop abort checks were inserted. The caller must re-run clc.Check
// before compiling.
func TransformGPU(k *clc.Kernel, opt GPUOptions) (loopChecks int, err error) {
	if err := checkNamespace(k); err != nil {
		return 0, err
	}
	if opt.UnrollFactor <= 0 {
		opt.UnrollFactor = 4
	}
	k.Params = append(k.Params,
		&clc.Param{Name: ParamStatus, Ty: clc.PointerType(clc.Int, clc.SpaceGlobal)},
		&clc.Param{Name: ParamKID, Ty: clc.ScalarType(clc.Int)},
	)
	prologue := mustStmts(flatIDDecl() + `
if (fcl_status[0] == fcl_kid && fcl_fgid >= fcl_status[1]) { return; }
`)
	if opt.AbortInLoops {
		u := &unroller{opt: opt}
		u.visitBlock(k.Body)
		loopChecks = u.checks
	}
	k.Body.Stmts = append(prologue, k.Body.Stmts...)
	return loopChecks, nil
}

// TransformCPU mutates k into its FluidiCL CPU subkernel form: work-groups
// whose flattened ID falls outside [fcl_lo, fcl_hi] return immediately.
// The caller must re-run clc.Check before compiling.
func TransformCPU(k *clc.Kernel) error { return TransformCPUWithSummary(k, nil) }

// TransformCPUWithSummary is TransformCPU informed by the static analyzer:
// when the summary proves the kernel idempotent under re-execution of any
// work-item subset (every written buffer is write-only with slot-exact
// stores), the range guard is redundant — work-groups outside [fcl_lo,
// fcl_hi] that a rectangular NDRange slice over-covers simply recompute
// their own output words from unwritten inputs — and is dropped, saving the
// guard and flattened-ID computation on every CPU work-item. The fcl_lo /
// fcl_hi parameters are always appended so the launch ABI is uniform.
func TransformCPUWithSummary(k *clc.Kernel, ks *analysis.KernelSummary) error {
	if err := checkNamespace(k); err != nil {
		return err
	}
	k.Params = append(k.Params,
		&clc.Param{Name: ParamLo, Ty: clc.ScalarType(clc.Int)},
		&clc.Param{Name: ParamHi, Ty: clc.ScalarType(clc.Int)},
	)
	if CanDropRangeGuard(ks) {
		return nil
	}
	prologue := mustStmts(flatIDDecl() + `
if (fcl_fgid < fcl_lo || fcl_fgid > fcl_hi) { return; }
`)
	k.Body.Stmts = append(prologue, k.Body.Stmts...)
	return nil
}

// CanDropRangeGuard reports whether the analyzer proved the subkernel range
// guard redundant: all output buffers are write-only __global arguments
// with slot-exact stores (work-item i writes exactly word i), no barriers,
// and no race findings, so extra work-items recompute identical values.
func CanDropRangeGuard(ks *analysis.KernelSummary) bool {
	return ks != nil && ks.WritesSlotExactOnly() &&
		len(ks.Barriers) == 0 && ks.Races == 0
}

// flatIDDecl is the paper's flattened work-group ID computation (Fig. 5)
// expressed in plain kernel source.
func flatIDDecl() string {
	return `
int fcl_fgid = get_group_id(2) * (get_num_groups(1) * get_num_groups(0))
             + get_group_id(1) * get_num_groups(0)
             + get_group_id(0);
`
}

// abortCheckStmt builds one in-loop abort check (a fresh AST each call).
func abortCheckStmt() clc.Stmt {
	return mustStmts(`if (fcl_status[0] == fcl_kid && fcl_fgid >= fcl_status[1]) { return; }`)[0]
}

// checkNamespace rejects kernels that already use fcl_-prefixed names (they
// would collide with injected parameters and variables). All collisions —
// parameters and body declarations — are reported together in one error,
// each with its source position, so one run shows the complete list.
func checkNamespace(k *clc.Kernel) error {
	var diags clc.DiagList
	for _, p := range k.Params {
		if strings.HasPrefix(p.Name, "fcl_") {
			diags = append(diags, clc.Diag{Pos: p.Pos, Msg: fmt.Sprintf(
				"kernel %q: parameter %q collides with the reserved fcl_ namespace", k.Name, p.Name)})
		}
	}
	collectDecls(k.Body, func(d *clc.DeclStmt) {
		if strings.HasPrefix(d.Name, "fcl_") {
			diags = append(diags, clc.Diag{Pos: d.Pos, Msg: fmt.Sprintf(
				"kernel %q: variable %q collides with the reserved fcl_ namespace", k.Name, d.Name)})
		}
	})
	if len(diags) > 0 {
		return diags
	}
	return nil
}

// collectDecls calls fn for every declaration statement in the subtree.
func collectDecls(s clc.Stmt, fn func(*clc.DeclStmt)) {
	switch s := s.(type) {
	case *clc.Block:
		for _, st := range s.Stmts {
			collectDecls(st, fn)
		}
	case *clc.DeclStmt:
		fn(s)
	case *clc.IfStmt:
		collectDecls(s.Then, fn)
		if s.Else != nil {
			collectDecls(s.Else, fn)
		}
	case *clc.ForStmt:
		if s.Init != nil {
			collectDecls(s.Init, fn)
		}
		collectDecls(s.Body, fn)
	case *clc.WhileStmt:
		collectDecls(s.Body, fn)
	}
}

// mustStmts parses a statement sequence by wrapping it in a dummy kernel.
// Identifiers need not resolve (sema runs later on the full kernel).
func mustStmts(src string) []clc.Stmt {
	prog, err := clc.Parse("__kernel void fcl_tmpl() {\n" + src + "\n}")
	if err != nil {
		panic(fmt.Sprintf("passes: bad statement template: %v\n%s", err, src))
	}
	return prog.Kernels[0].Body.Stmts
}

// unroller walks the kernel body inserting in-loop abort checks into
// innermost loops, optionally restructured so the check amortizes over
// UnrollFactor iterations.
type unroller struct {
	opt    GPUOptions
	checks int
	nextID int
}

func (u *unroller) visitBlock(b *clc.Block) {
	for i, s := range b.Stmts {
		b.Stmts[i] = u.visitStmt(s)
	}
}

func (u *unroller) visitStmt(s clc.Stmt) clc.Stmt {
	switch s := s.(type) {
	case *clc.Block:
		u.visitBlock(s)
		return s
	case *clc.IfStmt:
		u.visitBlock(s.Then)
		if s.Else != nil {
			s.Else = u.visitStmt(s.Else)
		}
		return s
	case *clc.ForStmt:
		if hasLoop(s.Body) {
			u.visitBlock(s.Body)
			return s
		}
		return u.transformInnermostFor(s)
	case *clc.WhileStmt:
		if hasLoop(s.Body) {
			u.visitBlock(s.Body)
			return s
		}
		// Innermost while: prepend check (no unrolling for while loops).
		u.checks++
		s.Body.Stmts = append([]clc.Stmt{abortCheckStmt()}, s.Body.Stmts...)
		return s
	default:
		return s
	}
}

// transformInnermostFor inserts the abort check into an innermost for loop.
// With Unroll enabled and a transformable loop, the check is placed so it
// runs once per UnrollFactor iterations (the structure of the paper's
// Fig. 12); otherwise the check runs every iteration (Fig. 11 with checks,
// i.e. the NoUnroll configuration).
func (u *unroller) transformInnermostFor(s *clc.ForStmt) clc.Stmt {
	u.checks++
	canUnroll := u.opt.Unroll && s.Cond != nil && !hasLoopEscape(s.Body)
	if !canUnroll {
		s.Body.Stmts = append([]clc.Stmt{abortCheckStmt()}, s.Body.Stmts...)
		return s
	}

	ctr := fmt.Sprintf("fcl_u%d", u.nextID)
	u.nextID++

	// Inner loop: for (int fcl_uN = 0; fcl_uN < UF; fcl_uN++) {
	//     if (!(cond)) { break; }
	//     <original body>
	//     <post>
	// }
	innerStmts := mustStmts(fmt.Sprintf(`for (int %s = 0; %s < %d; %s++) { }`,
		ctr, ctr, u.opt.UnrollFactor, ctr))
	inner := innerStmts[0].(*clc.ForStmt)

	guardCond := &clc.UnaryExpr{Op: clc.NOT, X: clc.CloneExpr(s.Cond)}
	guard := &clc.IfStmt{
		Cond: guardCond,
		Then: &clc.Block{Stmts: []clc.Stmt{&clc.BreakStmt{}}},
	}
	inner.Body.Stmts = append(inner.Body.Stmts, guard)
	inner.Body.Stmts = append(inner.Body.Stmts, s.Body.Stmts...)
	if s.Post != nil {
		inner.Body.Stmts = append(inner.Body.Stmts, s.Post)
	}

	// Outer loop keeps init and cond; the inner loop advances the induction
	// variable, so the outer post is empty.
	outer := &clc.ForStmt{
		Pos:  s.Pos,
		Init: s.Init,
		Cond: s.Cond,
		Body: &clc.Block{Stmts: []clc.Stmt{abortCheckStmt(), inner}},
	}
	return outer
}

// hasLoop reports whether any loop statement occurs in the subtree.
func hasLoop(s clc.Stmt) bool {
	switch s := s.(type) {
	case *clc.Block:
		for _, st := range s.Stmts {
			if hasLoop(st) {
				return true
			}
		}
	case *clc.IfStmt:
		if hasLoop(s.Then) {
			return true
		}
		if s.Else != nil && hasLoop(s.Else) {
			return true
		}
	case *clc.ForStmt, *clc.WhileStmt:
		return true
	}
	return false
}

// hasLoopEscape reports whether the loop body contains a break or continue
// belonging to this loop (innermost bodies contain no nested loops, so any
// break/continue found belongs to the loop under transformation).
func hasLoopEscape(s clc.Stmt) bool {
	switch s := s.(type) {
	case *clc.Block:
		for _, st := range s.Stmts {
			if hasLoopEscape(st) {
				return true
			}
		}
	case *clc.IfStmt:
		if hasLoopEscape(s.Then) {
			return true
		}
		if s.Else != nil && hasLoopEscape(s.Else) {
			return true
		}
	case *clc.BreakStmt, *clc.ContinueStmt:
		return true
	}
	return false
}

// MergeKernelSource is the FluidiCL data-merge kernel (paper Fig. 9) at
// 4-byte word granularity: every buffer element type in MiniCL is one
// 32-bit word, so word-wise comparison is exact. Comparing words as ints
// sidesteps NaN != NaN. The fcl_lo parameter offsets the merged window so
// the runtime can launch a narrowed merge over only the word range the CPU
// could have written (analyzer-proved slot-exact buffers); a full merge
// passes fcl_lo = 0.
const MergeKernelSource = `
__kernel void fcl_merge(__global int* fcl_cpu, __global int* fcl_gpu,
                        __global int* fcl_orig, int fcl_nwords, int fcl_lo)
{
    int i = get_global_id(0) + fcl_lo;
    if (i < fcl_nwords && fcl_cpu[i] != fcl_orig[i]) {
        fcl_gpu[i] = fcl_cpu[i];
    }
}
`

// MergeKernelName is the merge kernel's name.
const MergeKernelName = "fcl_merge"

// CanSplit reports whether the CPU work-group splitting optimization (§6.3)
// may be applied: splitting one work-group across CPU hardware threads is
// legal when work-items cannot communicate (no barriers, no __local data).
func CanSplit(ki *clc.KernelInfo) bool {
	return !ki.HasBarrier && len(ki.LocalArrays) == 0
}

// CanSplitWithSummary refines CanSplit with analyzer facts: splitting is
// additionally refused when the analyzer found a barrier under divergent
// control flow (work-items of one group would deadlock or desynchronize if
// executed on different threads) or any inter-work-item race finding
// (splitting changes the interleaving the racy kernel happens to rely on).
// A nil summary falls back to the syntactic CanSplit rule.
func CanSplitWithSummary(ki *clc.KernelInfo, ks *analysis.KernelSummary) bool {
	if !CanSplit(ki) {
		return false
	}
	if ks == nil {
		return true
	}
	return !ks.HasDivergentBarrier() && ks.Races == 0
}

// CanSplitWithCertificate refines CanSplitWithSummary for one concrete
// launch: the race findings that veto splitting are conservative, so a
// launch whose strided footprints are certified pairwise disjoint within
// every work-group (no two items of a group touch a common word, so no
// thread assignment can change what any item reads or writes) may split
// after all. A divergent barrier still vetoes unconditionally — splitting
// changes barrier pairing regardless of memory disjointness.
func CanSplitWithCertificate(ki *clc.KernelInfo, ks *analysis.KernelSummary,
	sh analysis.LaunchShape, params []int64, budget int64) bool {
	if CanSplitWithSummary(ki, ks) {
		return true
	}
	if !CanSplit(ki) || ks == nil || ks.HasDivergentBarrier() {
		return false
	}
	return ks.CertifyGroupDisjoint(sh, params, budget).OK
}
