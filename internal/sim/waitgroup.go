package sim

// WaitGroup counts outstanding simulation tasks; Wait parks the calling
// process until the count returns to zero. Unlike WaitAll over a fixed event
// slice, the set of tasks may grow while others are already waiting (the
// N-way runtime joins a dynamically sized set of device workers and in-flight
// result ships). All methods run in engine context, so plain fields suffice.
type WaitGroup struct {
	env     *Env
	n       int
	waiters []*Event
}

// NewWaitGroup creates a WaitGroup with a zero count.
func (e *Env) NewWaitGroup() *WaitGroup { return &WaitGroup{env: e} }

// Add increases the outstanding-task count by n (n may be negative; Done is
// Add(-1)). When the count reaches zero, every waiter wakes at the current
// virtual time.
func (w *WaitGroup) Add(n int) {
	w.n += n
	if w.n < 0 {
		panic("sim: WaitGroup count went negative")
	}
	if w.n == 0 {
		for _, ev := range w.waiters {
			ev.fire()
		}
		w.waiters = nil
	}
}

// Done decrements the count by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Count returns the outstanding-task count.
func (w *WaitGroup) Count() int { return w.n }

// Wait parks p until the count is zero. A zero count returns immediately
// without yielding.
func (w *WaitGroup) Wait(p *Proc) {
	if w.n == 0 {
		return
	}
	ev := w.env.NewEvent()
	w.waiters = append(w.waiters, ev)
	p.Wait(ev)
}
