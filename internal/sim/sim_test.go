package sim

import (
	"testing"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEnv()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEnv()
	var at Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(1.5)
		at = p.Now()
	})
	e.Run()
	if at != 1.5 {
		t.Fatalf("woke at %v, want 1.5", at)
	}
	if e.Now() != 1.5 {
		t.Fatalf("final clock %v, want 1.5", e.Now())
	}
}

func TestSequentialSleeps(t *testing.T) {
	e := NewEnv()
	var times []Time
	e.Go("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(1)
			times = append(times, p.Now())
		}
	})
	e.Run()
	want := []Time{1, 2, 3}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestDeterministicOrderingAtSameTime(t *testing.T) {
	// Two processes scheduled at the same instant must run in spawn order,
	// and that order must be stable across repeated runs.
	var first []string
	for trial := 0; trial < 20; trial++ {
		e := NewEnv()
		var order []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Go(name, func(p *Proc) {
				p.Sleep(1)
				order = append(order, name)
			})
		}
		e.Run()
		if trial == 0 {
			first = order
		} else {
			for i := range first {
				if order[i] != first[i] {
					t.Fatalf("trial %d: order %v differs from first %v", trial, order, first)
				}
			}
		}
	}
	if len(first) != 3 || first[0] != "a" || first[1] != "b" || first[2] != "c" {
		t.Fatalf("order = %v, want [a b c]", first)
	}
}

func TestEventWakesWaiters(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	var wokeAt Time
	e.Go("waiter", func(p *Proc) {
		p.Wait(ev)
		wokeAt = p.Now()
	})
	e.Go("firer", func(p *Proc) {
		p.Sleep(2)
		ev.Fire()
	})
	e.Run()
	if wokeAt != 2 {
		t.Fatalf("waiter woke at %v, want 2", wokeAt)
	}
	if !ev.Fired() || ev.FiredAt() != 2 {
		t.Fatalf("event fired=%v at=%v, want true at 2", ev.Fired(), ev.FiredAt())
	}
}

func TestWaitOnFiredEventReturnsImmediately(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	var at Time
	e.Go("p", func(p *Proc) {
		ev.Fire()
		p.Wait(ev) // must not block
		p.Wait(ev) // double-wait also fine
		at = p.Now()
	})
	e.Run()
	if at != 0 {
		t.Fatalf("woke at %v, want 0", at)
	}
}

func TestFireAt(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	ev.FireAt(3)
	var at Time
	e.Go("p", func(p *Proc) {
		p.Wait(ev)
		at = p.Now()
	})
	e.Run()
	if at != 3 {
		t.Fatalf("woke at %v, want 3", at)
	}
}

func TestBlockedProcessDoesNotLeakOrHang(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent() // never fired
	reached := false
	e.Go("stuck", func(p *Proc) {
		p.Wait(ev)
		reached = true
	})
	e.Run() // must terminate
	if reached {
		t.Fatal("process past an unfired event")
	}
}

func TestNeverStartedProcessUnwindsAtShutdown(t *testing.T) {
	e := NewEnv()
	e.Go("a", func(p *Proc) {})
	// spawn from within a process after the engine has stopped stepping it
	e.RunUntil(0)
	// Spawning after shutdown must panic cleanly rather than leak.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Go after shutdown")
		}
	}()
	e.Go("late", func(p *Proc) {})
}

func TestDoneEvent(t *testing.T) {
	e := NewEnv()
	p1 := e.Go("worker", func(p *Proc) { p.Sleep(5) })
	var joinedAt Time
	e.Go("joiner", func(p *Proc) {
		p.Wait(p1.Done)
		joinedAt = p.Now()
	})
	e.Run()
	if joinedAt != 5 {
		t.Fatalf("joined at %v, want 5", joinedAt)
	}
}

func TestAfterCallback(t *testing.T) {
	e := NewEnv()
	var at Time = -1
	e.After(4, func() { at = e.Now() })
	e.Go("p", func(p *Proc) { p.Sleep(10) })
	e.Run()
	if at != 4 {
		t.Fatalf("callback at %v, want 4", at)
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	e := NewEnv()
	var count int
	e.Go("p", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(1)
			count++
		}
	})
	e.RunUntil(3.5)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
}

func TestQueuePutGet(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e)
	var got []int
	e.Go("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	e.Go("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(1)
			q.Put(i)
		}
		q.Close()
	})
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
}

func TestQueueGetBlocksUntilPut(t *testing.T) {
	e := NewEnv()
	q := NewQueue[string](e)
	var at Time
	e.Go("consumer", func(p *Proc) {
		v, ok := q.Get(p)
		if !ok || v != "x" {
			t.Errorf("Get = %q, %v", v, ok)
		}
		at = p.Now()
	})
	e.Go("producer", func(p *Proc) {
		p.Sleep(7)
		q.Put("x")
	})
	e.Run()
	if at != 7 {
		t.Fatalf("consumer unblocked at %v, want 7", at)
	}
}

func TestQueueTryGet(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue returned ok")
	}
	q.Put(42)
	v, ok := q.TryGet()
	if !ok || v != 42 {
		t.Fatalf("TryGet = %d, %v; want 42, true", v, ok)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
}

func TestResourceSerializes(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		e.Go("user", func(p *Proc) {
			r.Acquire(p)
			p.Sleep(2)
			r.Release()
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	want := []Time{2, 4, 6}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceCapacityTwoOverlaps(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		e.Go("user", func(p *Proc) {
			r.Acquire(p)
			p.Sleep(2)
			r.Release()
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	want := []Time{2, 2, 4, 4}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceReleaseWithoutAcquirePanics(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Release()
}

func TestWaitAll(t *testing.T) {
	e := NewEnv()
	e1, e2 := e.NewEvent(), e.NewEvent()
	e1.FireAt(1)
	e2.FireAt(5)
	var at Time
	e.Go("p", func(p *Proc) {
		p.WaitAll(e1, e2)
		at = p.Now()
	})
	e.Run()
	if at != 5 {
		t.Fatalf("WaitAll completed at %v, want 5", at)
	}
}

func TestWaitUntilEventFirst(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	ev.FireAt(2)
	var fired bool
	var at Time
	e.Go("p", func(p *Proc) {
		fired = p.WaitUntil(ev, 10)
		at = p.Now()
	})
	e.Run()
	if !fired || at != 2 {
		t.Fatalf("fired=%v at=%v, want true at 2", fired, at)
	}
}

func TestWaitUntilDeadlineFirst(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	ev.FireAt(10)
	var fired bool
	var at Time
	e.Go("p", func(p *Proc) {
		fired = p.WaitUntil(ev, 3)
		at = p.Now()
		p.Sleep(20) // survive past the event fire; no double resume allowed
	})
	e.Run()
	if fired || at != 3 {
		t.Fatalf("fired=%v at=%v, want false at 3", fired, at)
	}
	if e.Now() != 23 {
		t.Fatalf("end clock %v, want 23", e.Now())
	}
}

func TestWaitUntilSimultaneous(t *testing.T) {
	// Event and deadline at the same instant: either outcome is fine, but
	// the process must be resumed exactly once.
	e := NewEnv()
	ev := e.NewEvent()
	ev.FireAt(5)
	wakes := 0
	e.Go("p", func(p *Proc) {
		p.WaitUntil(ev, 5)
		wakes++
		p.Sleep(1)
		wakes++
	})
	e.Run()
	if wakes != 2 {
		t.Fatalf("wakes = %d, want 2", wakes)
	}
	if e.Now() != 6 {
		t.Fatalf("end clock %v, want 6", e.Now())
	}
}

func TestWaitUntilAlreadyFired(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	var fired bool
	e.Go("p", func(p *Proc) {
		ev.Fire()
		fired = p.WaitUntil(ev, 100)
	})
	e.Run()
	if !fired || e.Now() != 0 {
		t.Fatalf("fired=%v now=%v, want true at 0", fired, e.Now())
	}
}

func TestWaitUntilPastDeadline(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	var fired, reached bool
	e.Go("p", func(p *Proc) {
		p.Sleep(5)
		fired = p.WaitUntil(ev, 3) // deadline already in the past
		reached = true
	})
	e.Run()
	if fired || !reached {
		t.Fatalf("fired=%v reached=%v", fired, reached)
	}
}

func TestWaitUntilRepeated(t *testing.T) {
	// A process repeatedly using WaitUntil against fresh events must see
	// deterministic wakeups with no stale timers.
	e := NewEnv()
	var log []Time
	events := make([]*Event, 3)
	for i := range events {
		events[i] = e.NewEvent()
	}
	events[0].FireAt(1)
	events[2].FireAt(8)
	e.Go("p", func(p *Proc) {
		for i, ev := range events {
			p.WaitUntil(ev, Time(3*(i+1)))
			log = append(log, p.Now())
		}
	})
	e.Run()
	want := []Time{1, 6, 8}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}
