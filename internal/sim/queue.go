package sim

// Queue is an unbounded FIFO message queue between simulation processes.
// Put never blocks; Get blocks the calling process until an item arrives.
// It is the building block for command queues and scheduler mailboxes.
type Queue[T any] struct {
	env    *Env
	items  []T
	notify *Event
	closed bool
}

// NewQueue creates an empty queue in env.
func NewQueue[T any](env *Env) *Queue[T] {
	return &Queue[T]{env: env}
}

// Put appends an item and wakes one pending Get, if any.
func (q *Queue[T]) Put(item T) {
	if q.closed {
		panic("sim: Put on closed Queue")
	}
	q.items = append(q.items, item)
	if q.notify != nil {
		q.notify.fire()
		q.notify = nil
	}
}

// Close marks the queue closed. Pending and future Gets return the zero
// value and false once the queue drains.
func (q *Queue[T]) Close() {
	q.closed = true
	if q.notify != nil {
		q.notify.fire()
		q.notify = nil
	}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Get removes and returns the oldest item, blocking the calling process
// while the queue is empty. It returns ok=false when the queue is closed
// and drained.
func (q *Queue[T]) Get(p *Proc) (item T, ok bool) {
	for len(q.items) == 0 {
		if q.closed {
			var zero T
			return zero, false
		}
		if q.notify == nil {
			q.notify = q.env.NewEvent()
		}
		p.Wait(q.notify)
	}
	item = q.items[0]
	q.items = q.items[1:]
	return item, true
}

// TryGet removes and returns the oldest item without blocking.
func (q *Queue[T]) TryGet() (item T, ok bool) {
	if len(q.items) == 0 {
		return item, false
	}
	item = q.items[0]
	q.items = q.items[1:]
	return item, true
}

// Resource is a counted resource (e.g. a bus, a pool of compute units).
// Acquire blocks the calling process until a unit is free.
type Resource struct {
	env      *Env
	capacity int
	inUse    int
	waiters  []*Event
}

// NewResource creates a resource with the given capacity (>= 1).
func NewResource(env *Env, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: Resource capacity must be >= 1")
	}
	return &Resource{env: env, capacity: capacity}
}

// Acquire takes one unit, blocking the calling process until one is free.
func (r *Resource) Acquire(p *Proc) {
	for r.inUse >= r.capacity {
		ev := r.env.NewEvent()
		r.waiters = append(r.waiters, ev)
		p.Wait(ev)
	}
	r.inUse++
}

// Release returns one unit and wakes the oldest waiter, if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release without Acquire")
	}
	r.inUse--
	if len(r.waiters) > 0 {
		ev := r.waiters[0]
		r.waiters = r.waiters[1:]
		ev.fire()
	}
}

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }
