// Package sim provides a deterministic, process-based discrete-event
// simulation engine. It is the substrate on which the simulated CPU, GPU,
// PCIe link, OpenCL command queues and the FluidiCL host threads run.
//
// The engine is cooperative: exactly one simulation process executes at a
// time, and control transfers between the engine and a process over
// unbuffered channels, so runs are fully deterministic. Events scheduled for
// the same virtual time are ordered by schedule sequence number.
//
// Virtual time is a float64 number of seconds. All time arithmetic happens
// single-threadedly inside the engine, so float64 accumulation is
// deterministic across runs.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"fluidicl/internal/trace"
)

// Time is a point in virtual time, in seconds since the start of the run.
type Time = float64

// Duration is a span of virtual time, in seconds.
type Duration = float64

// Forever is a time later than any event the engine will ever schedule.
const Forever Time = math.MaxFloat64

// killed is the sentinel used to unwind parked processes at shutdown.
type killed struct{}

// event is a scheduled engine action: either waking a process or running a
// callback (used by timers and deferred event firing).
type event struct {
	at       Time
	seq      int64
	p        *Proc // process to wake, if non-nil
	fn       func()
	canceled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Env is a simulation environment: a virtual clock plus the set of processes
// and pending events that advance it.
type Env struct {
	now    Time
	heap   eventHeap
	seq    int64
	parked chan struct{} // a running process signals here when it yields
	live   map[*Proc]bool
	dead   bool

	// Meter accumulates always-on aggregate metrics (device busy time,
	// work-group counts, link traffic). By value so metering never
	// allocates; devices register themselves on construction.
	Meter trace.Meter

	// Trace, when non-nil, records individual events for export. Set it
	// before constructing devices (they register their tracks at
	// construction); a nil recorder is fully inert.
	Trace *trace.Recorder
}

// NewEnv creates an empty simulation environment at time zero.
func NewEnv() *Env {
	return &Env{parked: make(chan struct{}), live: make(map[*Proc]bool)}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

func (e *Env) schedule(at Time, p *Proc, fn func()) *event {
	if at < e.now {
		at = e.now
	}
	e.seq++
	ev := &event{at: at, seq: e.seq, p: p, fn: fn}
	heap.Push(&e.heap, ev)
	return ev
}

// At schedules fn to run at virtual time t (or now, if t is in the past).
// fn runs in engine context and must not block; to start blocking work, have
// fn spawn a process with Go.
func (e *Env) At(t Time, fn func()) { e.schedule(t, nil, fn) }

// After schedules fn to run d seconds from now.
func (e *Env) After(d Duration, fn func()) { e.At(e.now+d, fn) }

// Proc is a simulation process: a goroutine that runs user code and yields
// to the engine whenever it sleeps or waits.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	killch chan struct{}
	Done   *Event // fires when the process function returns
}

// Go spawns a new simulation process running fn. The process becomes
// runnable at the current virtual time and starts executing when the engine
// reaches it. The returned Proc's Done event fires when fn returns.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	if e.dead {
		panic("sim: Go called on a finished Env")
	}
	p := &Proc{
		env:    e,
		name:   name,
		resume: make(chan struct{}),
		killch: make(chan struct{}),
	}
	p.Done = e.NewEvent()
	e.live[p] = true
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killed); ok {
					// Unwound at shutdown: do not touch engine state;
					// the engine is no longer listening on parked.
					return
				}
				panic(fmt.Sprintf("sim process %q: %v", p.name, r))
			}
		}()
		select {
		case <-p.resume: // wait for first scheduling
		case <-p.killch:
			return
		}
		fn(p)
		delete(p.env.live, p)
		p.Done.fire()
		p.env.parked <- struct{}{}
	}()
	e.schedule(e.now, p, nil)
	return p
}

// step runs the single earliest pending event. It reports false when the
// event heap is empty.
func (e *Env) step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(*event)
	if ev.canceled {
		return true
	}
	e.now = ev.at
	switch {
	case ev.p != nil:
		ev.p.resume <- struct{}{}
		<-e.parked
	case ev.fn != nil:
		ev.fn()
	}
	return true
}

// Run executes events until none remain, then shuts the environment down,
// unwinding any processes still blocked on events that never fired.
func (e *Env) Run() { e.RunUntil(Forever) }

// RunUntil executes events with timestamps <= t, then shuts down.
func (e *Env) RunUntil(t Time) {
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.step()
	}
	e.shutdown()
}

// shutdown unwinds every parked process so no goroutines leak.
func (e *Env) shutdown() {
	if e.dead {
		return
	}
	e.dead = true
	// Every live process is parked inside yield() or awaiting its first
	// scheduling; closing its kill channel unwinds it so no goroutine leaks.
	for p := range e.live {
		close(p.killch)
	}
	e.live = nil
}

// yield parks the calling process and returns control to the engine. The
// process resumes when the engine sends on its resume channel.
func (p *Proc) yield() {
	p.env.parked <- struct{}{}
	select {
	case <-p.resume:
	case <-p.killch:
		panic(killed{})
	}
}

// Sleep suspends the process for d seconds of virtual time.
func (p *Proc) Sleep(d Duration) {
	p.env.schedule(p.env.now+d, p, nil)
	p.yield()
}

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.Now() }

// Env returns the process's environment.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Wait blocks the process until ev has fired. If ev has already fired, Wait
// returns immediately without yielding.
func (p *Proc) Wait(ev *Event) {
	if ev.fired {
		return
	}
	ev.waiters = append(ev.waiters, &waiter{p: p})
	p.yield()
}

// WaitAll waits for every event in evs.
func (p *Proc) WaitAll(evs ...*Event) {
	for _, ev := range evs {
		p.Wait(ev)
	}
}

// WaitUntil blocks until ev fires or the virtual clock reaches deadline,
// whichever comes first. It reports whether ev fired (true) or the deadline
// was reached (false). If ev has already fired, it returns true immediately.
// If deadline is not after the current time, it returns ev.Fired() without
// yielding.
func (p *Proc) WaitUntil(ev *Event, deadline Time) bool {
	if ev.fired {
		return true
	}
	if deadline <= p.env.now {
		return false
	}
	w := &waiter{p: p}
	timer := p.env.schedule(deadline, p, nil)
	ev.waiters = append(ev.waiters, w)
	p.yield()
	if ev.fired {
		// Exactly one of {timer, w.wake} resumed us; cancel both — the
		// consumed one ignores the flag, the pending one is suppressed.
		timer.canceled = true
		if w.wake != nil {
			w.wake.canceled = true
		}
		return true
	}
	// Timer resumed us; make sure a future fire skips this record.
	w.dropped = true
	return false
}

// waiter is one parked process's registration on an Event. wake is the heap
// entry fire() created for it (nil until fired); dropped suppresses the wake
// for processes that stopped waiting (deadline expired).
type waiter struct {
	p       *Proc
	wake    *event
	dropped bool
}

// Event is a one-shot simulation event. Processes can wait on it; firing it
// wakes all waiters at the current virtual time.
type Event struct {
	env     *Env
	fired   bool
	at      Time
	waiters []*waiter
}

// NewEvent creates an unfired event.
func (e *Env) NewEvent() *Event { return &Event{env: e, at: -1} }

// Fire marks the event fired at the current virtual time and wakes waiters.
// Firing an already-fired event is a no-op.
func (ev *Event) Fire() { ev.fire() }

func (ev *Event) fire() {
	if ev.fired {
		return
	}
	ev.fired = true
	ev.at = ev.env.now
	for _, w := range ev.waiters {
		if !w.dropped {
			w.wake = ev.env.schedule(ev.env.now, w.p, nil)
		}
	}
	ev.waiters = nil
}

// FireAt schedules the event to fire at virtual time t.
func (ev *Event) FireAt(t Time) {
	ev.env.schedule(t, nil, ev.fire)
}

// Fired reports whether the event has fired.
func (ev *Event) Fired() bool { return ev.fired }

// FiredAt returns the virtual time at which the event fired. It panics if
// the event has not fired.
func (ev *Event) FiredAt() Time {
	if !ev.fired {
		panic("sim: FiredAt on unfired event")
	}
	return ev.at
}
