package trace

import (
	"bufio"
	"io"
	"strconv"
)

// WriteChrome serializes the recording in the Chrome trace_event JSON object
// format, loadable in chrome://tracing and Perfetto. Everything runs inside
// one simulated process (pid 0); each recorder track becomes one named
// thread (tid = track id), so the viewer shows one lane per simulated device
// plus one per link.
//
// The output is deliberately hand-serialized rather than encoding/json: a
// fixed field order, a fixed float format (microseconds with three decimal
// places, i.e. nanosecond resolution of virtual time) and events in record
// order make the bytes a pure function of the recording, so identical runs
// produce byte-identical files — a golden test in internal/harness pins
// this.
func (r *Recorder) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	bw.WriteString(`{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"fluidicl (simulated)"}}`)
	var tracks []string
	var events []Event
	if r != nil {
		tracks = r.Tracks()
		events = r.Events()
	}
	for i, t := range tracks {
		bw.WriteString(",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":")
		bw.WriteString(strconv.Itoa(i))
		bw.WriteString(",\"args\":{\"name\":")
		bw.WriteString(strconv.Quote(t))
		bw.WriteString("}}")
		// Pin lane order in the viewer to track registration order.
		bw.WriteString(",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":")
		bw.WriteString(strconv.Itoa(i))
		bw.WriteString(",\"args\":{\"sort_index\":")
		bw.WriteString(strconv.Itoa(i))
		bw.WriteString("}}")
	}
	for _, e := range events {
		bw.WriteString(",\n{\"name\":")
		bw.WriteString(strconv.Quote(e.Name))
		bw.WriteString(",\"ph\":\"")
		bw.WriteByte(e.Ph)
		bw.WriteString("\",\"ts\":")
		bw.WriteString(us(e.Start))
		if e.Ph == PhSpan {
			bw.WriteString(",\"dur\":")
			bw.WriteString(us(e.Dur))
		}
		bw.WriteString(",\"pid\":0,\"tid\":")
		bw.WriteString(strconv.Itoa(e.Track))
		if e.Ph == PhInstant {
			bw.WriteString(",\"s\":\"t\"") // thread-scoped instant
		}
		if len(e.Args) > 0 {
			bw.WriteString(",\"args\":{")
			for i, kv := range e.Args {
				if i > 0 {
					bw.WriteByte(',')
				}
				bw.WriteString(strconv.Quote(kv.K))
				bw.WriteByte(':')
				bw.WriteString(strconv.FormatInt(kv.V, 10))
			}
			bw.WriteByte('}')
		}
		bw.WriteByte('}')
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// us formats a virtual-seconds value as trace_event microseconds with fixed
// three-decimal precision (deterministic across platforms for identical
// float64 inputs).
func us(sec float64) string {
	return strconv.FormatFloat(sec*1e6, 'f', 3, 64)
}
