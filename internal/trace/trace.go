// Package trace is the observability layer of the simulated FluidiCL stack:
// a low-overhead, virtual-time event recorder plus an always-on aggregate
// meter.
//
// Two levels of instrumentation coexist:
//
//   - Meter (meter.go) is a plain-struct accumulator embedded by value in
//     sim.Env. It is always on, allocation-free, and feeds the per-run
//     trace.Summary (per-device busy time, work-group counts, bytes moved
//     per direction, compute-overlap fraction) attached to sched.Result.
//
//   - Recorder (this file) captures individual events — kernel launches,
//     buffer transfers, link contention, FluidiCL scheduling decisions — for
//     export as Chrome trace_event JSON (chrome.go). It is opt-in: a nil
//     *Recorder is a valid, inert recorder, and every method on it returns
//     immediately, so the disabled path adds zero allocations (pinned by
//     TestDisabledTracingZeroAllocs). Callers that would build an event name
//     or argument list must guard on Enabled() first so those costs are only
//     paid when recording.
//
// The recorder is safe for concurrent use (the host-parallel work-group
// engine records from multiple goroutines), and recording does not perturb
// the simulation: no virtual time is charged, so runs with and without a
// recorder produce identical timelines, and identical runs produce
// byte-identical trace files (pinned by a golden test in internal/harness).
package trace

import "sync"

// Event phases, mirroring the Chrome trace_event "ph" field.
const (
	PhSpan    byte = 'X' // complete event: Start + Dur
	PhInstant byte = 'i' // instantaneous event at Start
)

// KV is one integer argument attached to an event (rendered in the Chrome
// "args" object). Arguments are integers only so recording never formats.
type KV struct {
	K string
	V int64
}

// Event is one recorded occurrence on a track. Times are virtual seconds.
type Event struct {
	Track int
	Name  string
	Ph    byte
	Start float64
	Dur   float64
	Args  []KV
}

// Recorder collects events on named tracks. The zero value is ready to use;
// a nil *Recorder is a valid disabled recorder.
type Recorder struct {
	mu     sync.Mutex
	tracks []string
	events []Event
}

// NewRecorder returns an empty, enabled recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Enabled reports whether recording is active (false for a nil receiver).
// Callers must check it before doing any work that exists only to feed the
// recorder — formatting names, gathering arguments — so the disabled path
// stays allocation-free.
func (r *Recorder) Enabled() bool { return r != nil }

// Track returns the id of the named track, registering it on first use.
// Track ids are assigned in first-registration order, which is deterministic
// for deterministic callers. Returns -1 on a nil recorder.
func (r *Recorder) Track(name string) int {
	if r == nil {
		return -1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, t := range r.tracks {
		if t == name {
			return i
		}
	}
	r.tracks = append(r.tracks, name)
	return len(r.tracks) - 1
}

// Span records a complete event covering [start, end] on a track. No-op on a
// nil recorder or a negative track id.
func (r *Recorder) Span(track int, name string, start, end float64, args ...KV) {
	if r == nil || track < 0 {
		return
	}
	r.add(Event{Track: track, Name: name, Ph: PhSpan, Start: start, Dur: end - start, Args: args})
}

// Instant records an instantaneous event at time t on a track. No-op on a
// nil recorder or a negative track id.
func (r *Recorder) Instant(track int, name string, t float64, args ...KV) {
	if r == nil || track < 0 {
		return
	}
	r.add(Event{Track: track, Name: name, Ph: PhInstant, Start: t, Args: args})
}

func (r *Recorder) add(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a snapshot copy of the recorded events, in record order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Tracks returns a snapshot copy of the registered track names, in id order.
func (r *Recorder) Tracks() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.tracks))
	copy(out, r.tracks)
	return out
}
