package trace

import "sync"

// GlobalSummary is a flattened, process-wide accumulation of FluidiCL run
// summaries: the CPU/GPU rollup of every Summary passed to AccumulateGlobal
// since process start. fluidibench snapshots it around each experiment
// (mirroring core's CounterSnapshot pattern) so -jsonout can report the work
// distribution per experiment even though the harness runs table cells on
// concurrent goroutines.
type GlobalSummary struct {
	Runs     int64
	CPUBusy  float64
	GPUBusy  float64
	BothBusy float64
	CPUWGs   int64
	GPUWGs   int64
	LinkBusy float64
	LinkWait float64
	BytesH2D int64
	BytesD2H int64
	// BytesRefresh is the subset of BytesH2D carried by "refresh"-tagged
	// coherence transfers (see DeviceMeter.BytesRefresh).
	BytesRefresh int64
}

var global struct {
	sync.Mutex
	s GlobalSummary
}

// AccumulateGlobal folds one run's summary into the process-wide totals.
func AccumulateGlobal(s Summary) {
	cpu := s.ByKind("CPU")
	gpu := s.ByKind("GPU")
	global.Lock()
	g := &global.s
	g.Runs++
	g.CPUBusy += cpu.Busy
	g.GPUBusy += gpu.Busy
	g.BothBusy += s.BothBusy
	g.CPUWGs += cpu.WGsExecuted
	g.GPUWGs += gpu.WGsExecuted
	g.LinkBusy += cpu.LinkBusy + gpu.LinkBusy
	g.LinkWait += cpu.LinkWait + gpu.LinkWait
	g.BytesH2D += cpu.BytesH2D + gpu.BytesH2D
	g.BytesD2H += cpu.BytesD2H + gpu.BytesD2H
	g.BytesRefresh += cpu.BytesRefresh + gpu.BytesRefresh
	global.Unlock()
}

// GlobalSnapshot returns the current process-wide totals.
func GlobalSnapshot() GlobalSummary {
	global.Lock()
	defer global.Unlock()
	return global.s
}

// Sub returns g minus o, for before/after snapshot deltas.
func (g GlobalSummary) Sub(o GlobalSummary) GlobalSummary {
	return GlobalSummary{
		Runs:         g.Runs - o.Runs,
		CPUBusy:      g.CPUBusy - o.CPUBusy,
		GPUBusy:      g.GPUBusy - o.GPUBusy,
		BothBusy:     g.BothBusy - o.BothBusy,
		CPUWGs:       g.CPUWGs - o.CPUWGs,
		GPUWGs:       g.GPUWGs - o.GPUWGs,
		LinkBusy:     g.LinkBusy - o.LinkBusy,
		LinkWait:     g.LinkWait - o.LinkWait,
		BytesH2D:     g.BytesH2D - o.BytesH2D,
		BytesD2H:     g.BytesD2H - o.BytesD2H,
		BytesRefresh: g.BytesRefresh - o.BytesRefresh,
	}
}

// OverlapFrac returns BothBusy as a fraction of the smaller of the CPU and
// GPU busy totals (0 when either device never computed).
func (g GlobalSummary) OverlapFrac() float64 {
	minBusy := g.CPUBusy
	if g.GPUBusy < minBusy {
		minBusy = g.GPUBusy
	}
	if minBusy <= 0 {
		return 0
	}
	return g.BothBusy / minBusy
}
