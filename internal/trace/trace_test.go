package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// TestDisabledTracingZeroAllocs pins the contract the whole stack relies on:
// with no recorder attached, every instrumentation call — nil-recorder
// methods and meter updates — allocates nothing, so always-on metering and
// the disabled trace path add zero allocs/op to hot loops (and therefore to
// BenchmarkOverallPerformance at the repo root).
func TestDisabledTracingZeroAllocs(t *testing.T) {
	var rec *Recorder // disabled
	var m Meter
	mi := m.AddDevice("dev", "GPU")
	allocs := testing.AllocsPerRun(1000, func() {
		if rec.Enabled() {
			t.Fatal("nil recorder claims enabled")
		}
		rec.Span(0, "x", 0, 1)
		rec.Instant(0, "x", 0)
		m.LaunchBegin(mi, 1)
		m.LaunchEnd(mi, 1, 2, 3, 1, 0)
		m.TransferEnd(mi, 0.1, 0.2, 64, true, false)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %v allocs/op, want 0", allocs)
	}
}

// BenchmarkDisabledTracing is the benchmark-shaped guard for the same
// contract; run with -benchmem to see the 0 B/op, 0 allocs/op.
func BenchmarkDisabledTracing(b *testing.B) {
	var rec *Recorder
	var m Meter
	mi := m.AddDevice("dev", "CPU")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Span(0, "x", 0, 1)
		rec.Instant(0, "x", 0)
		m.LaunchBegin(mi, 1)
		m.LaunchEnd(mi, 1, 2, 3, 1, 0)
		m.TransferEnd(mi, 0.1, 0.2, 64, false, false)
	}
}

// TestConcurrentRecording exercises one recorder from many goroutines; run
// under -race (make race / scripts/check.sh) it proves recording is
// race-clean, which the host-parallel harness requires.
func TestConcurrentRecording(t *testing.T) {
	rec := NewRecorder()
	var wg sync.WaitGroup
	const goroutines, events = 8, 200
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			trk := rec.Track(fmt.Sprintf("track-%d", g%3))
			for i := 0; i < events; i++ {
				rec.Span(trk, "span", float64(i), float64(i+1), KV{K: "i", V: int64(i)})
				rec.Instant(trk, "inst", float64(i))
			}
		}()
	}
	wg.Wait()
	if got := len(rec.Events()); got != goroutines*events*2 {
		t.Fatalf("recorded %d events, want %d", got, goroutines*events*2)
	}
	if got := len(rec.Tracks()); got != 3 {
		t.Fatalf("registered %d tracks, want 3", got)
	}
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("WriteChrome produced invalid JSON")
	}
}

func TestRecorderTrackReuse(t *testing.T) {
	rec := NewRecorder()
	a := rec.Track("a")
	b := rec.Track("b")
	if a == b {
		t.Fatalf("distinct names share a track id: %d", a)
	}
	if again := rec.Track("a"); again != a {
		t.Fatalf("re-registering %q: got id %d, want %d", "a", again, a)
	}
}

func TestWriteChromeDeterministic(t *testing.T) {
	rec := NewRecorder()
	trk := rec.Track("dev")
	rec.Span(trk, "k", 0, 1.5e-6, KV{K: "bytes", V: 64})
	rec.Instant(trk, "i", 2e-6)
	var a, b bytes.Buffer
	if err := rec.WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two serializations of the same recording differ")
	}
	if !json.Valid(a.Bytes()) {
		t.Fatalf("invalid JSON:\n%s", a.String())
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	// 1 process_name + 2 per track + 2 events.
	if got := len(parsed.TraceEvents); got != 5 {
		t.Fatalf("got %d trace events, want 5", got)
	}
}

// TestNilRecorderWriteChrome: exporting a nil recorder still yields a valid
// (empty) trace file.
func TestNilRecorderWriteChrome(t *testing.T) {
	var rec *Recorder
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("nil recorder produced invalid JSON")
	}
}

func TestMeterOverlap(t *testing.T) {
	var m Meter
	cpu := m.AddDevice("cpu", "CPU")
	gpu := m.AddDevice("gpu", "GPU")
	// GPU computes [0,10]; CPU computes [2,6] entirely inside it.
	m.LaunchBegin(gpu, 0)
	m.LaunchBegin(cpu, 2)
	m.LaunchEnd(cpu, 2, 6, 4, 0, 0)
	m.LaunchEnd(gpu, 0, 10, 8, 1, 1)
	s := m.Summary()
	if s.BothBusy != 4 {
		t.Fatalf("BothBusy = %v, want 4", s.BothBusy)
	}
	if got := s.OverlapFrac(); got != 1 {
		t.Fatalf("OverlapFrac = %v, want 1 (CPU fully overlapped)", got)
	}
	c := s.ByKind("CPU")
	g := s.ByKind("GPU")
	if c.Busy != 4 || c.WGsExecuted != 4 {
		t.Fatalf("CPU rollup = %+v", c)
	}
	if g.Busy != 10 || g.WGsExecuted != 8 || g.WGsSkipped != 1 || g.WGsAborted != 1 {
		t.Fatalf("GPU rollup = %+v", g)
	}
}

func TestMeterTransferDirections(t *testing.T) {
	var m Meter
	d := m.AddDevice("gpu", "GPU")
	m.TransferEnd(d, 1, 2, 100, true, true)
	m.TransferEnd(d, 0, 3, 50, false, false)
	s := m.Summary().ByKind("GPU")
	if s.BytesH2D != 100 || s.BytesD2H != 50 {
		t.Fatalf("bytes H2D=%d D2H=%d, want 100/50", s.BytesH2D, s.BytesD2H)
	}
	if s.LinkWait != 1 || s.LinkBusy != 5 {
		t.Fatalf("link wait=%v busy=%v, want 1/5", s.LinkWait, s.LinkBusy)
	}
}

func TestGlobalSummaryAccumulate(t *testing.T) {
	before := GlobalSnapshot()
	var m Meter
	cpu := m.AddDevice("cpu", "CPU")
	gpu := m.AddDevice("gpu", "GPU")
	m.LaunchBegin(cpu, 0)
	m.LaunchEnd(cpu, 0, 3, 6, 0, 0)
	m.TransferEnd(gpu, 0, 1, 4096, true, false)
	AccumulateGlobal(m.Summary())
	got := GlobalSnapshot().Sub(before)
	if got.Runs != 1 || got.CPUBusy != 3 || got.CPUWGs != 6 || got.BytesH2D != 4096 {
		t.Fatalf("delta = %+v", got)
	}
}
