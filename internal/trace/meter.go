package trace

// maxDevices bounds the fixed-size device array inside Meter. A Meter is
// embedded by value in sim.Env so that metering never allocates; the largest
// topology the experiments build has four devices, so eight is generous.
// Devices registered beyond the bound are simply not metered.
const maxDevices = 8

// DeviceMeter accumulates per-device aggregates. All times are virtual
// seconds; "link" fields cover the device's host interconnect.
type DeviceMeter struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"` // "CPU" or "GPU"
	Busy        float64 `json:"busy_seconds"`
	Launches    int64   `json:"launches"`
	WGsExecuted int64   `json:"wgs_executed"`
	WGsSkipped  int64   `json:"wgs_skipped"`
	WGsAborted  int64   `json:"wgs_aborted"`
	LinkBusy    float64 `json:"link_busy_seconds"`
	LinkWait    float64 `json:"link_wait_seconds"`
	BytesH2D    int64   `json:"bytes_h2d"`
	BytesD2H    int64   `json:"bytes_d2h"`
	// BytesRefresh is the subset of BytesH2D carried by "refresh"-tagged
	// transfers: post-kernel coherence traffic (the N-way delta refresh, or
	// the old full rebroadcast) as opposed to input uploads and result ships.
	BytesRefresh int64 `json:"bytes_refresh"`
}

// Meter is the always-on aggregate accumulator. It lives by value inside
// sim.Env; devices register themselves at construction and report launches
// and transfers as they retire. All updates happen inside the cooperative
// simulation engine, so plain fields suffice — and nothing here allocates.
type Meter struct {
	ndev int
	dev  [maxDevices]DeviceMeter

	// Compute-overlap tracking. Each device runs at most one launch at a
	// time (launches serialize on the device's in-order queue process), so
	// counting active launches counts busy devices. When the count rises to
	// two, at least two devices are computing; the time until it drops back
	// below two is accumulated as BothBusy — the paper's §5.5 overlap that
	// hides transfer and scheduling overhead, generalized to "two or more
	// devices busy" on an N-device topology (the 3->2 transition records
	// nothing and the 2->1 transition closes the whole interval, so the
	// accumulator is exact for any device count).
	active    int
	bothSince float64
	bothBusy  float64
}

// AddDevice registers a device and returns its meter index, or -1 when the
// device table is full (such devices are silently unmetered).
func (m *Meter) AddDevice(name, kind string) int {
	if m.ndev >= maxDevices {
		return -1
	}
	m.dev[m.ndev] = DeviceMeter{Name: name, Kind: kind}
	m.ndev++
	return m.ndev - 1
}

// LaunchBegin marks device i starting a kernel launch at virtual time now.
func (m *Meter) LaunchBegin(i int, now float64) {
	if i < 0 {
		return
	}
	m.active++
	if m.active == 2 {
		m.bothSince = now
	}
}

// LaunchEnd marks device i finishing the launch begun at start, together
// with the launch's work-group disposition.
func (m *Meter) LaunchEnd(i int, start, end float64, executed, skipped, aborted int) {
	if i < 0 {
		return
	}
	d := &m.dev[i]
	d.Busy += end - start
	d.Launches++
	d.WGsExecuted += int64(executed)
	d.WGsSkipped += int64(skipped)
	d.WGsAborted += int64(aborted)
	if m.active == 2 {
		m.bothBusy += end - m.bothSince
	}
	m.active--
}

// TransferEnd records a completed link transfer on device i: wait seconds
// spent queued behind other link traffic, busy seconds on the wire, and the
// payload size. toDevice distinguishes host-to-device from device-to-host;
// refresh marks post-kernel coherence traffic ("refresh"-labeled transfers)
// so delta-refresh savings are visible separately from input uploads.
func (m *Meter) TransferEnd(i int, wait, busy float64, bytes int, toDevice, refresh bool) {
	if i < 0 {
		return
	}
	d := &m.dev[i]
	d.LinkWait += wait
	d.LinkBusy += busy
	if toDevice {
		d.BytesH2D += int64(bytes)
		if refresh {
			d.BytesRefresh += int64(bytes)
		}
	} else {
		d.BytesD2H += int64(bytes)
	}
}

// Summary snapshots the meter into the exported per-run aggregate.
func (m *Meter) Summary() Summary {
	s := Summary{BothBusy: m.bothBusy}
	s.Devices = make([]DeviceMeter, m.ndev)
	copy(s.Devices[:], m.dev[:m.ndev])
	return s
}

// Summary is the per-run aggregate attached to sched.Result next to the
// elision Counters: who computed for how long, how work-groups were split
// across devices, how many bytes moved in each direction, and how much of
// the computation overlapped across devices.
type Summary struct {
	Devices []DeviceMeter `json:"devices,omitempty"`
	// BothBusy is the virtual time during which at least two devices were
	// computing simultaneously (the §5.5 overlap).
	BothBusy float64 `json:"both_busy_seconds"`
}

// ByKind sums the device meters of the given kind ("CPU" or "GPU") into one.
func (s Summary) ByKind(kind string) DeviceMeter {
	out := DeviceMeter{Kind: kind}
	for _, d := range s.Devices {
		if d.Kind != kind {
			continue
		}
		if out.Name == "" {
			out.Name = d.Name
		}
		out.Busy += d.Busy
		out.Launches += d.Launches
		out.WGsExecuted += d.WGsExecuted
		out.WGsSkipped += d.WGsSkipped
		out.WGsAborted += d.WGsAborted
		out.LinkBusy += d.LinkBusy
		out.LinkWait += d.LinkWait
		out.BytesH2D += d.BytesH2D
		out.BytesD2H += d.BytesD2H
		out.BytesRefresh += d.BytesRefresh
	}
	return out
}

// OverlapFrac returns BothBusy as a fraction of the smaller device busy
// time — 1.0 means the less-busy device computed entirely in the shadow of
// the other, 0 means the devices took strict turns.
func (s Summary) OverlapFrac() float64 {
	minBusy := 0.0
	for i, d := range s.Devices {
		if i == 0 || d.Busy < minBusy {
			minBusy = d.Busy
		}
	}
	if minBusy <= 0 {
		return 0
	}
	return s.BothBusy / minBusy
}

// Add accumulates o into s field-by-field, matching devices by kind (the
// harness runs many independent simulations per experiment; their summaries
// add into one per-experiment aggregate).
func (s *Summary) Add(o Summary) {
	s.BothBusy += o.BothBusy
	for _, od := range o.Devices {
		merged := false
		for i := range s.Devices {
			if s.Devices[i].Kind == od.Kind {
				d := &s.Devices[i]
				d.Busy += od.Busy
				d.Launches += od.Launches
				d.WGsExecuted += od.WGsExecuted
				d.WGsSkipped += od.WGsSkipped
				d.WGsAborted += od.WGsAborted
				d.LinkBusy += od.LinkBusy
				d.LinkWait += od.LinkWait
				d.BytesH2D += od.BytesH2D
				d.BytesD2H += od.BytesD2H
				d.BytesRefresh += od.BytesRefresh
				merged = true
				break
			}
		}
		if !merged {
			s.Devices = append(s.Devices, od)
		}
	}
}
