// Package clc implements the front end of MiniCL, an OpenCL-C-subset kernel
// language: lexer, parser, AST and semantic analysis. Kernels written in
// MiniCL are compiled to bytecode by package vm and executed on the
// simulated devices in package device.
//
// The supported subset covers what the Polybench kernels and the
// FluidiCL-generated kernels (merge kernel, transformed kernels) need:
// scalar int/float/bool values, __global and __local pointers and arrays,
// if/for/while control flow, the OpenCL work-item builtins and a small math
// library. Atomics are intentionally absent (FluidiCL's stated limitation).
package clc

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INTLIT
	FLOATLIT

	// keywords
	KwKernel  // __kernel or kernel
	KwGlobal  // __global or global
	KwLocal   // __local or local
	KwPrivate // __private or private
	KwConst   // const (accepted and ignored)
	KwVoid
	KwInt
	KwFloat
	KwBool
	KwIf
	KwElse
	KwFor
	KwWhile
	KwReturn
	KwBreak
	KwContinue
	KwTrue
	KwFalse

	// punctuation and operators
	LPAREN
	RPAREN
	LBRACE
	RBRACE
	LBRACKET
	RBRACKET
	COMMA
	SEMI
	QUESTION
	COLON

	ASSIGN     // =
	PLUSEQ     // +=
	MINUSEQ    // -=
	STAREQ     // *=
	SLASHEQ    // /=
	PLUSPLUS   // ++
	MINUSMINUS // --

	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %

	EQ  // ==
	NEQ // !=
	LT  // <
	LEQ // <=
	GT  // >
	GEQ // >=

	ANDAND // &&
	OROR   // ||
	NOT    // !
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INTLIT: "int literal", FLOATLIT: "float literal",
	KwKernel: "__kernel", KwGlobal: "__global", KwLocal: "__local", KwPrivate: "__private",
	KwConst: "const", KwVoid: "void", KwInt: "int", KwFloat: "float", KwBool: "bool",
	KwIf: "if", KwElse: "else", KwFor: "for", KwWhile: "while", KwReturn: "return",
	KwBreak: "break", KwContinue: "continue", KwTrue: "true", KwFalse: "false",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}", LBRACKET: "[", RBRACKET: "]",
	COMMA: ",", SEMI: ";", QUESTION: "?", COLON: ":",
	ASSIGN: "=", PLUSEQ: "+=", MINUSEQ: "-=", STAREQ: "*=", SLASHEQ: "/=",
	PLUSPLUS: "++", MINUSMINUS: "--",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	EQ: "==", NEQ: "!=", LT: "<", LEQ: "<=", GT: ">", GEQ: ">=",
	ANDAND: "&&", OROR: "||", NOT: "!",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"__kernel": KwKernel, "kernel": KwKernel,
	"__global": KwGlobal, "global": KwGlobal,
	"__local": KwLocal, "local": KwLocal,
	"__private": KwPrivate, "private": KwPrivate,
	"const": KwConst,
	"void":  KwVoid, "int": KwInt, "float": KwFloat, "bool": KwBool,
	"if": KwIf, "else": KwElse, "for": KwFor, "while": KwWhile,
	"return": KwReturn, "break": KwBreak, "continue": KwContinue,
	"true": KwTrue, "false": KwFalse,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// Error is a front-end diagnostic carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
