package clc

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPrintGoldenSimple(t *testing.T) {
	src := `
__kernel void f(__global float* a, int n) {
    int i = get_global_id(0);
    if (i < n) {
        a[i] = 2.0f;
    }
}
`
	prog := MustParse(src)
	got := Print(prog)
	want := `__kernel void f(__global float* a, int n)
{
    int i = get_global_id(0);
    if ((i < n))
    {
        a[i] = 2.0f;
    }
}
`
	if got != want {
		t.Fatalf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPrintForLoopForms(t *testing.T) {
	src := `
__kernel void f(__global int* a, int n) {
    for (int i = 0; i < n; i++) { a[i] = i; }
    int j = 0;
    for (; j < n; j += 2) { }
    for (;;) { break; }
    while (j > 0) { j--; }
}
`
	prog := MustParse(src)
	out := Print(prog)
	for _, frag := range []string{
		"for (int i = 0; (i < n); i = (i + 1))",
		"for (; (j < n); j += 2)",
		"for (; ; )",
		"while ((j > 0))",
		"break;",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("printed output missing %q:\n%s", frag, out)
		}
	}
	// Must re-parse and re-check cleanly.
	prog2, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
	if _, err := Check(prog2); err != nil {
		t.Fatalf("re-check: %v", err)
	}
}

func TestPrintLocalAndPrivateArrays(t *testing.T) {
	src := `
__kernel void f(__global float* a) {
    __local float tile[32];
    float tmp[4];
    int l = get_local_id(0);
    tile[l] = a[l];
    tmp[0] = tile[l];
    barrier(CLK_LOCAL_MEM_FENCE);
    a[l] = tmp[0];
}
`
	out := Print(MustParse(src))
	for _, frag := range []string{"__local float tile[32];", "float tmp[4];", "barrier(CLK_LOCAL_MEM_FENCE);"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("missing %q in:\n%s", frag, out)
		}
	}
	if _, err := Parse(out); err != nil {
		t.Fatal(err)
	}
}

func TestPrintFloatLiteralsSurviveRoundTrip(t *testing.T) {
	cases := []float64{0, 1, 0.5, 3.14159, 1e-7, 2.5e10, 123456.789}
	for _, v := range cases {
		e := &FloatLit{Val: v}
		s := ExprString(e)
		prog, err := Parse("__kernel void f(__global float* a) { a[0] = " + s + "; }")
		if err != nil {
			t.Fatalf("%v printed as %q does not parse: %v", v, s, err)
		}
		asn := prog.Kernels[0].Body.Stmts[0].(*AssignStmt)
		got := asn.RHS.(*FloatLit).Val
		if got != v {
			t.Fatalf("%v -> %q -> %v: value changed", v, s, got)
		}
	}
	// Negative literals print as a unary minus over a positive literal.
	neg := ExprString(&FloatLit{Val: -2.5})
	prog, err := Parse("__kernel void f(__global float* a) { a[0] = " + neg + "; }")
	if err != nil {
		t.Fatalf("%q does not parse: %v", neg, err)
	}
	u, ok := prog.Kernels[0].Body.Stmts[0].(*AssignStmt).RHS.(*UnaryExpr)
	if !ok || u.Op != MINUS || u.X.(*FloatLit).Val != 2.5 {
		t.Fatalf("negative literal round trip broken: %q", neg)
	}
}

func TestExprStringPrecedenceSafety(t *testing.T) {
	// The printer parenthesizes everything, so operator precedence can
	// never change across a print/parse round trip.
	src := `__kernel void f(__global int* a, int x, int y, int z) { a[0] = x + y * z - x / y; }`
	prog := MustParse(src)
	printed := Print(prog)
	prog2, err := Parse(printed)
	if err != nil {
		t.Fatal(err)
	}
	a1 := ExprString(prog.Kernels[0].Body.Stmts[0].(*AssignStmt).RHS)
	a2 := ExprString(prog2.Kernels[0].Body.Stmts[0].(*AssignStmt).RHS)
	if a1 != a2 {
		t.Fatalf("expression changed across round trip: %s vs %s", a1, a2)
	}
}

func TestCloneIsDeep(t *testing.T) {
	src := `
__kernel void f(__global float* a, int n) {
    for (int i = 0; i < n; i++) {
        if (i > 2) { a[i] = (float)i * 2.0f; } else { a[i] = 0.0f; }
    }
}
`
	prog := MustParse(src)
	k := prog.Kernels[0]
	c := CloneKernel(k)
	before := PrintKernel(k)
	// Mutate the clone thoroughly.
	c.Name = "g"
	c.Params[0].Name = "zzz"
	loop := c.Body.Stmts[0].(*ForStmt)
	loop.Cond = &BoolLit{Val: false}
	loop.Body.Stmts = nil
	after := PrintKernel(k)
	if before != after {
		t.Fatalf("mutating clone changed original:\n%s\nvs\n%s", before, after)
	}
	if PrintKernel(c) == before {
		t.Fatal("clone did not change")
	}
}

func TestCloneStmtCoversAllNodes(t *testing.T) {
	src := `
__kernel void f(__global float* a, __global int* b, int n, float x) {
    int i = get_global_id(0);
    float tmp[2];
    __local int sh[4];
    if (i < n && x > 0.0f) { a[i] = x; } else if (i == 0) { a[0] = 1.0f; }
    for (int k = 0; k < n; k++) {
        while (k < 2) { k++; continue; }
        b[i] = (k > 1) ? k : -k;
        tmp[0] += fmin(x, 1.0f);
        sh[i % 4] = abs(i);
        if (k == 3) { break; }
    }
    barrier();
    return;
}
`
	prog := MustParse(src)
	k := prog.Kernels[0]
	c := CloneKernel(k)
	if PrintKernel(c) != PrintKernel(k) {
		t.Fatal("clone prints differently")
	}
}

func TestLexerNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = LexAll(s) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParserNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse(s) // must not panic
		_, _ = Parse("__kernel void f() { " + s + " }")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSemaMoreTypeRules(t *testing.T) {
	valid := []string{
		`__kernel void f(__global float* a, int n) { a[0] = (n > 0) ? 1.0f : 0.5f; }`,
		`__kernel void f(int n) { int b = n > 3; }`,              // bool -> int conversion
		`__kernel void f(float x) { if (x) { } }`,                // float condition
		`__kernel void f(int n) { float y = n; }`,                // implicit int -> float
		`__kernel void f(__global int* a, bool b) { a[b] = 1; }`, // bool index converts
		`__kernel void f() { int x = true + 2; }`,                // bool promotes in arithmetic
		`__kernel void f(const __global float* a, __global float* o) { o[0] = a[0]; }`,
	}
	for _, src := range valid {
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Check(prog); err != nil {
			t.Fatalf("check %q: %v", src, err)
		}
	}
	invalid := []string{
		`__kernel void f(__global float* a, __global float* b) { float x = a + b; }`, // pointer arithmetic
		`__kernel void f(__global float* a) { if (a) { } }`,                          // pointer condition
		`__kernel void f() { barrier(1, 2); }`,                                       // too many args
		`__kernel void f() { sqrt(); }`,                                              // missing args
		`__kernel void f(__global float* a) { a[1.5f] = 0.0f; }`,                     // float index
		`__kernel void f() { continue; }`,                                            // outside loop
	}
	for _, src := range invalid {
		prog, err := Parse(src)
		if err != nil {
			continue
		}
		if _, err := Check(prog); err == nil {
			t.Fatalf("no error for %q", src)
		}
	}
}

func TestLoopDepthTracking(t *testing.T) {
	src := `
__kernel void f(__global int* a, int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            while (j < 3) { j++; }
        }
    }
}
`
	ki, err := FindKernelInfo(src, "f")
	if err != nil {
		t.Fatal(err)
	}
	if ki.LoopDepth != 3 {
		t.Fatalf("LoopDepth = %d, want 3", ki.LoopDepth)
	}
}

func TestTypeStringForms(t *testing.T) {
	cases := map[string]Type{
		"int":             ScalarType(Int),
		"float":           ScalarType(Float),
		"bool":            ScalarType(Bool),
		"__global float*": PointerType(Float, SpaceGlobal),
		"__local int*":    PointerType(Int, SpaceLocal),
	}
	for want, ty := range cases {
		got := strings.ReplaceAll(ty.String(), " *", "*")
		if got != want {
			t.Fatalf("Type.String() = %q, want %q", got, want)
		}
	}
}

func TestPosReporting(t *testing.T) {
	src := "__kernel void f() {\n    int x = bogus;\n}"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Check(prog)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Fatalf("error %q does not point at line 2", err)
	}
}
