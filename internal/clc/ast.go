package clc

import (
	"fmt"
	"strconv"
	"strings"
)

// ScalarKind is one of MiniCL's scalar element types.
type ScalarKind int

// Scalar kinds.
const (
	Invalid ScalarKind = iota
	Int                // 32-bit in device memory, 64-bit in registers
	Float              // 32-bit IEEE in device memory and arithmetic
	Bool
	Void
)

func (k ScalarKind) String() string {
	switch k {
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case Void:
		return "void"
	}
	return "invalid"
}

// Size returns the in-memory size of the scalar in bytes.
func (k ScalarKind) Size() int {
	switch k {
	case Int, Float:
		return 4
	case Bool:
		return 1
	}
	return 0
}

// AddrSpace is an OpenCL address-space qualifier.
type AddrSpace int

// Address spaces.
const (
	SpaceNone AddrSpace = iota
	SpaceGlobal
	SpaceLocal
	SpacePrivate
)

func (s AddrSpace) String() string {
	switch s {
	case SpaceGlobal:
		return "__global"
	case SpaceLocal:
		return "__local"
	case SpacePrivate:
		return "__private"
	}
	return ""
}

// Type is a MiniCL type: a scalar, or a pointer to a scalar in some address
// space.
type Type struct {
	Kind  ScalarKind
	Ptr   bool
	Space AddrSpace // meaningful when Ptr
}

// ScalarType returns the non-pointer type with kind k.
func ScalarType(k ScalarKind) Type { return Type{Kind: k} }

// PointerType returns a pointer type to k in space.
func PointerType(k ScalarKind, space AddrSpace) Type {
	return Type{Kind: k, Ptr: true, Space: space}
}

func (t Type) String() string {
	if t.Ptr {
		return fmt.Sprintf("%s %s*", t.Space, t.Kind)
	}
	return t.Kind.String()
}

// IsNumeric reports whether the type is a non-pointer int or float.
func (t Type) IsNumeric() bool { return !t.Ptr && (t.Kind == Int || t.Kind == Float) }

// Equal reports type identity.
func (t Type) Equal(o Type) bool { return t == o }

// ---- AST nodes ----

// Node is any AST node.
type Node interface {
	NodePos() Pos
}

// Expr is an expression node. Sema records the expression's type in
// SetType/ExprType.
type Expr interface {
	Node
	exprNode()
	// Type returns the type assigned by semantic analysis (zero Type before).
	Type() Type
	setType(Type)
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

type exprBase struct {
	Pos Pos
	Ty  Type
}

func (e *exprBase) NodePos() Pos   { return e.Pos }
func (e *exprBase) exprNode()      {}
func (e *exprBase) Type() Type     { return e.Ty }
func (e *exprBase) setType(t Type) { e.Ty = t }

// Ident is a variable or parameter reference.
type Ident struct {
	exprBase
	Name string
}

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Val int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	exprBase
	Val float64
}

// BoolLit is true or false.
type BoolLit struct {
	exprBase
	Val bool
}

// BinaryExpr is X op Y.
type BinaryExpr struct {
	exprBase
	Op   Kind
	X, Y Expr
}

// UnaryExpr is op X (MINUS or NOT).
type UnaryExpr struct {
	exprBase
	Op Kind
	X  Expr
}

// CondExpr is Cond ? Then : Else.
type CondExpr struct {
	exprBase
	Cond, Then, Else Expr
}

// CallExpr is a builtin call: Name(Args...).
type CallExpr struct {
	exprBase
	Name string
	Args []Expr
}

// IndexExpr is Base[Idx] where Base names a pointer parameter or an array
// variable.
type IndexExpr struct {
	exprBase
	Base *Ident
	Idx  Expr
}

// CastExpr is (To)X. Sema also inserts implicit casts as CastExpr nodes so
// the compiler only sees explicit conversions.
type CastExpr struct {
	exprBase
	To Type
	X  Expr
}

// ---- statements ----

// Block is { Stmts... }.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

func (s *Block) NodePos() Pos { return s.Pos }
func (s *Block) stmtNode()    {}

// DeclStmt declares a scalar variable or a fixed-size array.
//
//	int i = 0;              Elem=Int, ArrayLen=nil, Init=...
//	__local float t[64];    Elem=Float, Space=SpaceLocal, ArrayLen=IntLit(64)
type DeclStmt struct {
	Pos      Pos
	Name     string
	Elem     ScalarKind
	Space    AddrSpace // SpaceNone/SpacePrivate for scalars and private arrays
	ArrayLen Expr      // nil for scalars; constant expression for arrays
	Init     Expr      // nil if absent (arrays never have initializers)
}

func (s *DeclStmt) NodePos() Pos { return s.Pos }
func (s *DeclStmt) stmtNode()    {}

// AssignStmt is LHS op= RHS, with Op one of ASSIGN, PLUSEQ, MINUSEQ, STAREQ,
// SLASHEQ. LHS is an Ident or IndexExpr.
type AssignStmt struct {
	Pos Pos
	Op  Kind
	LHS Expr
	RHS Expr
}

func (s *AssignStmt) NodePos() Pos { return s.Pos }
func (s *AssignStmt) stmtNode()    {}

// ExprStmt evaluates an expression for effect (builtin calls like barrier()).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

func (s *ExprStmt) NodePos() Pos { return s.Pos }
func (s *ExprStmt) stmtNode()    {}

// IfStmt is if (Cond) Then [else Else]. Else is a *Block or *IfStmt or nil.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *Block
	Else Stmt
}

func (s *IfStmt) NodePos() Pos { return s.Pos }
func (s *IfStmt) stmtNode()    {}

// ForStmt is for (Init; Cond; Post) Body. Init and Post may be nil; Cond may
// be nil (infinite loop).
type ForStmt struct {
	Pos  Pos
	Init Stmt // DeclStmt or AssignStmt or nil
	Cond Expr
	Post Stmt // AssignStmt or nil
	Body *Block
}

func (s *ForStmt) NodePos() Pos { return s.Pos }
func (s *ForStmt) stmtNode()    {}

// WhileStmt is while (Cond) Body.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *Block
}

func (s *WhileStmt) NodePos() Pos { return s.Pos }
func (s *WhileStmt) stmtNode()    {}

// ReturnStmt exits the kernel for the current work-item.
type ReturnStmt struct{ Pos Pos }

func (s *ReturnStmt) NodePos() Pos { return s.Pos }
func (s *ReturnStmt) stmtNode()    {}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

func (s *BreakStmt) NodePos() Pos { return s.Pos }
func (s *BreakStmt) stmtNode()    {}

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

func (s *ContinueStmt) NodePos() Pos { return s.Pos }
func (s *ContinueStmt) stmtNode()    {}

// ---- declarations ----

// Param is a kernel parameter.
type Param struct {
	Pos  Pos
	Name string
	Ty   Type
}

// Kernel is a __kernel function definition.
type Kernel struct {
	Pos    Pos
	Name   string
	Params []*Param
	Body   *Block
}

// Program is a parsed MiniCL translation unit.
type Program struct {
	Kernels []*Kernel
}

// Kernel returns the kernel with the given name, or nil.
func (p *Program) Kernel(name string) *Kernel {
	for _, k := range p.Kernels {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// ---- source printer (used by the source-to-source passes and tests) ----

// Print renders the program back to MiniCL source.
func Print(p *Program) string {
	var b strings.Builder
	for i, k := range p.Kernels {
		if i > 0 {
			b.WriteString("\n")
		}
		printKernel(&b, k)
	}
	return b.String()
}

// PrintKernel renders one kernel to MiniCL source.
func PrintKernel(k *Kernel) string {
	var b strings.Builder
	printKernel(&b, k)
	return b.String()
}

func printKernel(b *strings.Builder, k *Kernel) {
	fmt.Fprintf(b, "__kernel void %s(", k.Name)
	for i, p := range k.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		if p.Ty.Ptr {
			fmt.Fprintf(b, "%s %s* %s", p.Ty.Space, p.Ty.Kind, p.Name)
		} else {
			fmt.Fprintf(b, "%s %s", p.Ty.Kind, p.Name)
		}
	}
	b.WriteString(")\n")
	printBlock(b, k.Body, 0)
}

func ind(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("    ")
	}
}

func printBlock(b *strings.Builder, blk *Block, depth int) {
	ind(b, depth)
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		printStmt(b, s, depth+1)
	}
	ind(b, depth)
	b.WriteString("}\n")
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	switch s := s.(type) {
	case *Block:
		printBlock(b, s, depth)
	case *DeclStmt:
		ind(b, depth)
		if s.Space == SpaceLocal {
			b.WriteString("__local ")
		}
		fmt.Fprintf(b, "%s %s", s.Elem, s.Name)
		if s.ArrayLen != nil {
			fmt.Fprintf(b, "[%s]", ExprString(s.ArrayLen))
		}
		if s.Init != nil {
			fmt.Fprintf(b, " = %s", ExprString(s.Init))
		}
		b.WriteString(";\n")
	case *AssignStmt:
		ind(b, depth)
		op := "="
		switch s.Op {
		case PLUSEQ:
			op = "+="
		case MINUSEQ:
			op = "-="
		case STAREQ:
			op = "*="
		case SLASHEQ:
			op = "/="
		}
		fmt.Fprintf(b, "%s %s %s;\n", ExprString(s.LHS), op, ExprString(s.RHS))
	case *ExprStmt:
		ind(b, depth)
		fmt.Fprintf(b, "%s;\n", ExprString(s.X))
	case *IfStmt:
		ind(b, depth)
		fmt.Fprintf(b, "if (%s)\n", ExprString(s.Cond))
		printBlock(b, s.Then, depth)
		if s.Else != nil {
			ind(b, depth)
			b.WriteString("else\n")
			printStmt(b, s.Else, depth)
		}
	case *ForStmt:
		ind(b, depth)
		b.WriteString("for (")
		if s.Init != nil {
			b.WriteString(strings.TrimSuffix(strings.TrimSpace(stmtInline(s.Init)), ";"))
		}
		b.WriteString("; ")
		if s.Cond != nil {
			b.WriteString(ExprString(s.Cond))
		}
		b.WriteString("; ")
		if s.Post != nil {
			b.WriteString(strings.TrimSuffix(strings.TrimSpace(stmtInline(s.Post)), ";"))
		}
		b.WriteString(")\n")
		printBlock(b, s.Body, depth)
	case *WhileStmt:
		ind(b, depth)
		fmt.Fprintf(b, "while (%s)\n", ExprString(s.Cond))
		printBlock(b, s.Body, depth)
	case *ReturnStmt:
		ind(b, depth)
		b.WriteString("return;\n")
	case *BreakStmt:
		ind(b, depth)
		b.WriteString("break;\n")
	case *ContinueStmt:
		ind(b, depth)
		b.WriteString("continue;\n")
	default:
		ind(b, depth)
		fmt.Fprintf(b, "/* unknown stmt %T */\n", s)
	}
}

func stmtInline(s Stmt) string {
	var b strings.Builder
	printStmt(&b, s, 0)
	return strings.TrimSuffix(b.String(), "\n")
}

// ExprString renders an expression to source form.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case *Ident:
		return e.Name
	case *IntLit:
		return strconv.FormatInt(e.Val, 10)
	case *FloatLit:
		s := strconv.FormatFloat(e.Val, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s + "f"
	case *BoolLit:
		if e.Val {
			return "true"
		}
		return "false"
	case *BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", ExprString(e.X), e.Op, ExprString(e.Y))
	case *UnaryExpr:
		return fmt.Sprintf("(%s%s)", e.Op, ExprString(e.X))
	case *CondExpr:
		return fmt.Sprintf("(%s ? %s : %s)", ExprString(e.Cond), ExprString(e.Then), ExprString(e.Else))
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", e.Base.Name, ExprString(e.Idx))
	case *CastExpr:
		return fmt.Sprintf("((%s)%s)", e.To.Kind, ExprString(e.X))
	}
	return fmt.Sprintf("/*?%T*/", e)
}
