package clc

import "math"

// Fold performs constant folding and light algebraic simplification on a
// kernel's AST, in place: constant subexpressions are evaluated at compile
// time (with the same float32 semantics the VM uses), identities like x*1,
// x+0 and true&&c are simplified, and statically-dead branches are removed.
//
// It runs after Check (it relies on the types sema assigned) and preserves
// semantics exactly — including float32 rounding, short-circuit evaluation
// and the left-to-right evaluation order of effectful expressions (MiniCL
// expressions are effect-free, so reordering concerns do not arise).
// FluidiCL applies it to every kernel before compilation; the transformation
// passes benefit because their injected flattened-ID arithmetic often
// contains constant factors.
func Fold(k *Kernel) {
	k.Body = foldBlock(k.Body)
}

func foldBlock(b *Block) *Block {
	var out []Stmt
	for _, s := range b.Stmts {
		fs := foldStmt(s)
		if fs != nil {
			out = append(out, fs)
		}
	}
	b.Stmts = out
	return b
}

// foldStmt folds a statement; it returns nil when the statement is
// statically dead and can be dropped.
func foldStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *Block:
		return foldBlock(s)
	case *DeclStmt:
		if s.Init != nil {
			s.Init = foldExpr(s.Init)
		}
		return s
	case *AssignStmt:
		s.LHS = foldExpr(s.LHS)
		s.RHS = foldExpr(s.RHS)
		return s
	case *ExprStmt:
		s.X = foldExpr(s.X)
		return s
	case *IfStmt:
		s.Cond = foldExpr(s.Cond)
		s.Then = foldBlock(s.Then)
		if s.Else != nil {
			s.Else = foldStmt(s.Else)
		}
		if v, known := boolConst(s.Cond); known {
			if v {
				return s.Then
			}
			if s.Else != nil {
				return s.Else
			}
			return nil
		}
		return s
	case *ForStmt:
		if s.Init != nil {
			s.Init = foldStmt(s.Init)
		}
		if s.Cond != nil {
			s.Cond = foldExpr(s.Cond)
			// `for (init; false; ...)` never runs its body. An assignment
			// init still takes effect; a declaration init is scoped to the
			// dead loop and disappears with it (keeping it hoisted could
			// collide with a later declaration of the same name).
			if v, known := boolConst(s.Cond); known && !v {
				if _, isDecl := s.Init.(*DeclStmt); s.Init != nil && !isDecl {
					return s.Init
				}
				return nil
			}
		}
		if s.Post != nil {
			s.Post = foldStmt(s.Post)
		}
		s.Body = foldBlock(s.Body)
		return s
	case *WhileStmt:
		s.Cond = foldExpr(s.Cond)
		if v, known := boolConst(s.Cond); known && !v {
			return nil
		}
		s.Body = foldBlock(s.Body)
		return s
	default:
		return s
	}
}

// boolConst reports whether e is a known constant condition.
func boolConst(e Expr) (val, known bool) {
	switch e := e.(type) {
	case *BoolLit:
		return e.Val, true
	case *IntLit:
		return e.Val != 0, true
	case *FloatLit:
		return e.Val != 0, true
	}
	return false, false
}

func foldExpr(e Expr) Expr {
	switch e := e.(type) {
	case *BinaryExpr:
		return foldBinary(e)
	case *UnaryExpr:
		e.X = foldExpr(e.X)
		switch e.Op {
		case MINUS:
			if x, ok := e.X.(*IntLit); ok {
				return retype(&IntLit{Val: -x.Val}, e)
			}
			if x, ok := e.X.(*FloatLit); ok {
				return retype(&FloatLit{Val: -x.Val}, e)
			}
		case NOT:
			if v, known := boolConst(e.X); known {
				return retype(&BoolLit{Val: !v}, e)
			}
		}
		return e
	case *CondExpr:
		e.Cond = foldExpr(e.Cond)
		e.Then = foldExpr(e.Then)
		e.Else = foldExpr(e.Else)
		if v, known := boolConst(e.Cond); known {
			if v {
				return e.Then
			}
			return e.Else
		}
		return e
	case *CallExpr:
		for i := range e.Args {
			e.Args[i] = foldExpr(e.Args[i])
		}
		return foldCall(e)
	case *IndexExpr:
		e.Idx = foldExpr(e.Idx)
		return e
	case *CastExpr:
		e.X = foldExpr(e.X)
		switch x := e.X.(type) {
		case *IntLit:
			if e.To.Kind == Float {
				return retype(&FloatLit{Val: float64(float32(x.Val))}, e)
			}
			if e.To.Kind == Int {
				return x
			}
		case *FloatLit:
			if e.To.Kind == Int {
				f := x.Val
				if math.IsNaN(f) {
					f = 0
				}
				return retype(&IntLit{Val: int64(f)}, e)
			}
			if e.To.Kind == Float {
				return x
			}
		}
		return e
	default:
		return e
	}
}

// retype copies the original expression's checked type and position onto a
// folded replacement so later compilation stages see consistent types.
func retype(n Expr, orig Expr) Expr {
	n.setType(orig.Type())
	switch n := n.(type) {
	case *IntLit:
		n.Pos = orig.NodePos()
	case *FloatLit:
		n.Pos = orig.NodePos()
	case *BoolLit:
		n.Pos = orig.NodePos()
	}
	return n
}

func foldBinary(e *BinaryExpr) Expr {
	e.X = foldExpr(e.X)
	e.Y = foldExpr(e.Y)

	// Short-circuit operators fold only from the left (the right operand
	// must not be evaluated when the left decides).
	if e.Op == ANDAND || e.Op == OROR {
		if v, known := boolConst(e.X); known {
			if e.Op == ANDAND && !v {
				return retype(&BoolLit{Val: false}, e)
			}
			if e.Op == OROR && v {
				return retype(&BoolLit{Val: true}, e)
			}
			// left is neutral: result is truthiness of the right side,
			// but the right side's type may be int — keep the expression
			// shape simple by returning Y when it is already boolean.
			if e.Y.Type().Kind == Bool {
				return e.Y
			}
		}
		return e
	}

	xi, xIsInt := e.X.(*IntLit)
	yi, yIsInt := e.Y.(*IntLit)
	xf, xIsFloat := e.X.(*FloatLit)
	yf, yIsFloat := e.Y.(*FloatLit)

	// Constant-constant folding.
	if xIsInt && yIsInt {
		switch e.Op {
		case PLUS:
			return retype(&IntLit{Val: xi.Val + yi.Val}, e)
		case MINUS:
			return retype(&IntLit{Val: xi.Val - yi.Val}, e)
		case STAR:
			return retype(&IntLit{Val: xi.Val * yi.Val}, e)
		case SLASH:
			if yi.Val != 0 {
				return retype(&IntLit{Val: xi.Val / yi.Val}, e)
			}
		case PERCENT:
			if yi.Val != 0 {
				return retype(&IntLit{Val: xi.Val % yi.Val}, e)
			}
		case LT:
			return retype(&BoolLit{Val: xi.Val < yi.Val}, e)
		case LEQ:
			return retype(&BoolLit{Val: xi.Val <= yi.Val}, e)
		case GT:
			return retype(&BoolLit{Val: xi.Val > yi.Val}, e)
		case GEQ:
			return retype(&BoolLit{Val: xi.Val >= yi.Val}, e)
		case EQ:
			return retype(&BoolLit{Val: xi.Val == yi.Val}, e)
		case NEQ:
			return retype(&BoolLit{Val: xi.Val != yi.Val}, e)
		}
		return e
	}
	if xIsFloat && yIsFloat {
		a, b := float32(xf.Val), float32(yf.Val)
		switch e.Op {
		case PLUS:
			return retype(&FloatLit{Val: float64(a + b)}, e)
		case MINUS:
			return retype(&FloatLit{Val: float64(a - b)}, e)
		case STAR:
			return retype(&FloatLit{Val: float64(a * b)}, e)
		case SLASH:
			return retype(&FloatLit{Val: float64(a / b)}, e)
		case LT:
			return retype(&BoolLit{Val: a < b}, e)
		case LEQ:
			return retype(&BoolLit{Val: a <= b}, e)
		case GT:
			return retype(&BoolLit{Val: a > b}, e)
		case GEQ:
			return retype(&BoolLit{Val: a >= b}, e)
		case EQ:
			return retype(&BoolLit{Val: a == b}, e)
		case NEQ:
			return retype(&BoolLit{Val: a != b}, e)
		}
		return e
	}

	// Algebraic identities. Integer-only for +0/*1/*0: float x+0.0 is NOT
	// an identity (-0.0 + 0.0 == +0.0) and x*0.0 is not constant (NaN/inf),
	// so floats are left alone except for multiplications by exactly 1.0,
	// which are bit-exact identities in IEEE 754.
	switch e.Op {
	case PLUS:
		if yIsInt && yi.Val == 0 {
			return e.X
		}
		if xIsInt && xi.Val == 0 {
			return e.Y
		}
	case MINUS:
		if yIsInt && yi.Val == 0 {
			return e.X
		}
	case STAR:
		if yIsInt && yi.Val == 1 {
			return e.X
		}
		if xIsInt && xi.Val == 1 {
			return e.Y
		}
		if yIsInt && yi.Val == 0 && e.X.Type().Kind == Int {
			if sideEffectFree(e.X) {
				return retype(&IntLit{Val: 0}, e)
			}
		}
		if xIsInt && xi.Val == 0 && e.Y.Type().Kind == Int {
			if sideEffectFree(e.Y) {
				return retype(&IntLit{Val: 0}, e)
			}
		}
		if yIsFloat && yf.Val == 1 && !math.Signbit(yf.Val) {
			return e.X
		}
		if xIsFloat && xf.Val == 1 && !math.Signbit(xf.Val) {
			return e.Y
		}
	case SLASH:
		if yIsInt && yi.Val == 1 {
			return e.X
		}
		if yIsFloat && yf.Val == 1 && !math.Signbit(yf.Val) {
			return e.X
		}
	}
	return e
}

// sideEffectFree reports whether evaluating e can be skipped. MiniCL
// expressions have no side effects, but loads can fault on out-of-range
// indices, so anything containing an index is kept.
func sideEffectFree(e Expr) bool {
	switch e := e.(type) {
	case *IntLit, *FloatLit, *BoolLit, *Ident:
		return true
	case *UnaryExpr:
		return sideEffectFree(e.X)
	case *BinaryExpr:
		// Division/modulo can trap.
		if e.Op == SLASH || e.Op == PERCENT {
			return false
		}
		return sideEffectFree(e.X) && sideEffectFree(e.Y)
	case *CastExpr:
		return sideEffectFree(e.X)
	case *CondExpr:
		return sideEffectFree(e.Cond) && sideEffectFree(e.Then) && sideEffectFree(e.Else)
	}
	return false
}

func foldCall(e *CallExpr) Expr {
	f1 := func(fn func(float64) float64) Expr {
		if x, ok := e.Args[0].(*FloatLit); ok {
			return retype(&FloatLit{Val: float64(float32(fn(float64(float32(x.Val)))))}, e)
		}
		return e
	}
	switch e.Name {
	case "fabs":
		return f1(math.Abs)
	case "sqrt":
		return f1(math.Sqrt)
	case "floor":
		return f1(math.Floor)
	case "ceil":
		return f1(math.Ceil)
	case "abs":
		if x, ok := e.Args[0].(*IntLit); ok {
			v := x.Val
			if v < 0 {
				v = -v
			}
			return retype(&IntLit{Val: v}, e)
		}
	case "min", "max":
		x, okx := e.Args[0].(*IntLit)
		y, oky := e.Args[1].(*IntLit)
		if okx && oky {
			v := x.Val
			if (e.Name == "min") == (y.Val < x.Val) {
				v = y.Val
			}
			return retype(&IntLit{Val: v}, e)
		}
	}
	return e
}
