package clc

import (
	"strings"
	"testing"
)

// foldKernel parses, checks and folds a single-kernel source, returning the
// printed result.
func foldKernel(t *testing.T, src string) string {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(prog); err != nil {
		t.Fatal(err)
	}
	Fold(prog.Kernels[0])
	return PrintKernel(prog.Kernels[0])
}

func wantContains(t *testing.T, out string, frags ...string) {
	t.Helper()
	for _, f := range frags {
		if !strings.Contains(out, f) {
			t.Fatalf("folded output missing %q:\n%s", f, out)
		}
	}
}

func wantNotContains(t *testing.T, out string, frags ...string) {
	t.Helper()
	for _, f := range frags {
		if strings.Contains(out, f) {
			t.Fatalf("folded output still contains %q:\n%s", f, out)
		}
	}
}

func TestFoldIntConstants(t *testing.T) {
	out := foldKernel(t, `__kernel void f(__global int* a) {
        a[0] = 2 + 3 * 4;
        a[1] = (20 / 4) % 3;
        a[2] = -(5 - 9);
    }`)
	wantContains(t, out, "a[0] = 14;", "a[1] = 2;", "a[2] = 4;")
}

func TestFoldFloatConstantsUseFloat32Semantics(t *testing.T) {
	// 16777216 + 1 is not representable in float32: must fold to 16777216.
	out := foldKernel(t, `__kernel void f(__global float* a) {
        a[0] = 16777216.0f + 1.0f;
    }`)
	wantContains(t, out, "a[0] = 1.6777216e+07f;") // 16777216, not ...217
}

func TestFoldIdentities(t *testing.T) {
	out := foldKernel(t, `__kernel void f(__global int* a, int x, __global float* b, float y) {
        a[0] = x + 0;
        a[1] = 0 + x;
        a[2] = x * 1;
        a[3] = x - 0;
        a[4] = x / 1;
        b[0] = y * 1.0f;
        b[1] = 1.0f * y;
        b[2] = y / 1.0f;
    }`)
	wantContains(t, out, "a[0] = x;", "a[1] = x;", "a[2] = x;", "a[3] = x;", "a[4] = x;",
		"b[0] = y;", "b[1] = y;", "b[2] = y;")
	wantNotContains(t, out, "* 1", "+ 0", "- 0", "/ 1")
}

func TestFoldMulByZeroOnlyWhenSafe(t *testing.T) {
	out := foldKernel(t, `__kernel void f(__global int* a, int x, int d) {
        a[0] = x * 0;
        a[1] = (x / d) * 0;
    }`)
	wantContains(t, out, "a[0] = 0;")
	// x/d can trap on d == 0: the multiplication must NOT be folded away.
	wantContains(t, out, "(x / d)")
}

func TestFoldFloatAddZeroNotFolded(t *testing.T) {
	// -0.0f + 0.0f == +0.0f, so x + 0.0f is not an identity.
	out := foldKernel(t, `__kernel void f(__global float* a, float y) {
        a[0] = y + 0.0f;
    }`)
	wantContains(t, out, "(y + 0.0f)")
}

func TestFoldDeadBranches(t *testing.T) {
	out := foldKernel(t, `__kernel void f(__global int* a, int x) {
        if (1 < 2) { a[0] = 1; } else { a[0] = 2; }
        if (false) { a[1] = 3; }
        if (2 == 3) { a[2] = 4; } else { a[2] = 5; }
    }`)
	wantContains(t, out, "a[0] = 1;", "a[2] = 5;")
	wantNotContains(t, out, "a[0] = 2;", "a[1] = 3;", "a[2] = 4;", "if")
}

func TestFoldDeadLoops(t *testing.T) {
	out := foldKernel(t, `__kernel void f(__global int* a, int x) {
        for (int i = 0; false; i++) { a[0] = 9; }
        while (0) { a[1] = 9; }
        x = 0;
        for (x = 7; 1 > 2; ) { a[2] = 9; }
    }`)
	wantNotContains(t, out, "a[0]", "a[1]", "a[2]", "for", "while", "int i")
	// The assignment init of the third loop survives.
	wantContains(t, out, "x = 7;")
}

func TestFoldShortCircuit(t *testing.T) {
	out := foldKernel(t, `__kernel void f(__global int* a, int x) {
        if (false && x / 0 > 1) { a[0] = 1; }
        if (true || x / 0 > 1) { a[1] = 2; }
        if (true && x > 1) { a[2] = 3; }
    }`)
	// Both constant-deciding sides fold; the trap-capable right sides vanish
	// without being evaluated.
	wantNotContains(t, out, "a[0]", "/ 0", "||", "&&")
	wantContains(t, out, "a[1] = 2;")
	wantContains(t, out, "if ((x > 1))")
}

func TestFoldTernary(t *testing.T) {
	out := foldKernel(t, `__kernel void f(__global int* a, int x) {
        a[0] = (3 > 2) ? x : -x;
        a[1] = (3 < 2) ? x : -x;
    }`)
	wantContains(t, out, "a[0] = x;", "a[1] = (-x);")
	wantNotContains(t, out, "?")
}

func TestFoldBuiltins(t *testing.T) {
	out := foldKernel(t, `__kernel void f(__global float* a, __global int* b) {
        a[0] = sqrt(4.0f);
        a[1] = fabs(-3.0f);
        a[2] = floor(2.9f);
        b[0] = abs(-7);
        b[1] = min(3, 5);
        b[2] = max(3, 5);
    }`)
	wantContains(t, out, "a[0] = 2.0f;", "a[1] = 3.0f;", "a[2] = 2.0f;",
		"b[0] = 7;", "b[1] = 3;", "b[2] = 5;")
}

func TestFoldCasts(t *testing.T) {
	out := foldKernel(t, `__kernel void f(__global float* a, __global int* b) {
        a[0] = (float)3;
        b[0] = (int)2.9f;
        b[1] = (int)(-2.9f);
    }`)
	wantContains(t, out, "a[0] = 3.0f;", "b[0] = 2;", "b[1] = -2;")
}

func TestFoldPreservesNonConstants(t *testing.T) {
	src := `__kernel void f(__global float* a, int n) {
        int i = get_global_id(0);
        if (i < n) {
            a[i] = a[i] * 2.0f + 1.0f;
        }
    }`
	out := foldKernel(t, src)
	wantContains(t, out, "get_global_id(0)", "if ((i < n))", "* 2.0f")
}

func TestFoldedProgramStillChecks(t *testing.T) {
	src := `__kernel void f(__global int* a, int x) {
        for (int i = 0; false; i++) { a[0] = 9; }
        int i = 5;   // must not collide with the dead loop's counter
        a[1] = i + 2 * 3;
    }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(prog); err != nil {
		t.Fatal(err)
	}
	Fold(prog.Kernels[0])
	printed := Print(prog)
	prog2, err := Parse(printed)
	if err != nil {
		t.Fatalf("folded output does not parse: %v\n%s", err, printed)
	}
	if _, err := Check(prog2); err != nil {
		t.Fatalf("folded output does not check: %v\n%s", err, printed)
	}
}
