package clc

import (
	"strings"
	"testing"
)

const syrkSrc = `
__kernel void syrk(__global float* A, __global float* C, int n, int m,
                   float alpha, float beta)
{
    int j = get_global_id(0);
    int i = get_global_id(1);
    if (i < n && j < n) {
        C[i * n + j] *= beta;
        float acc = 0.0f;
        for (int k = 0; k < m; k++) {
            acc += alpha * A[i * m + k] * A[j * m + k];
        }
        C[i * n + j] += acc;
    }
}
`

func TestLexBasics(t *testing.T) {
	toks, err := LexAll("int x = 42; float y = 3.5f; // comment\n/* block */ x += 1;")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Kind{KwInt, IDENT, ASSIGN, INTLIT, SEMI, KwFloat, IDENT, ASSIGN, FLOATLIT, SEMI, IDENT, PLUSEQ, INTLIT, SEMI}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexOperators(t *testing.T) {
	src := "== != <= >= && || ++ -- += -= *= /= ? : % !"
	toks, err := LexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{EQ, NEQ, LEQ, GEQ, ANDAND, OROR, PLUSPLUS, MINUSMINUS,
		PLUSEQ, MINUSEQ, STAREQ, SLASHEQ, QUESTION, COLON, PERCENT, NOT}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexFloatForms(t *testing.T) {
	for _, src := range []string{"1.0", "1.", ".5", "1e3", "1.5e-2", "2.0f", "3F"} {
		toks, err := LexAll(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if len(toks) != 1 || toks[0].Kind != FLOATLIT {
			t.Fatalf("%q lexed to %v, want one FLOATLIT", src, toks)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("int\n  x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Fatalf("x at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "/* unterminated", "1e+"} {
		if _, err := LexAll(src); err == nil {
			t.Fatalf("%q: expected lex error", src)
		}
	}
}

func TestParseSyrk(t *testing.T) {
	prog, err := Parse(syrkSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Kernels) != 1 {
		t.Fatalf("got %d kernels, want 1", len(prog.Kernels))
	}
	k := prog.Kernels[0]
	if k.Name != "syrk" || len(k.Params) != 6 {
		t.Fatalf("kernel %q with %d params", k.Name, len(k.Params))
	}
	if !k.Params[0].Ty.Ptr || k.Params[0].Ty.Space != SpaceGlobal || k.Params[0].Ty.Kind != Float {
		t.Fatalf("param A type = %v", k.Params[0].Ty)
	}
	if k.Params[2].Ty.Ptr || k.Params[2].Ty.Kind != Int {
		t.Fatalf("param n type = %v", k.Params[2].Ty)
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	prog, err := Parse(syrkSrc)
	if err != nil {
		t.Fatal(err)
	}
	src2 := Print(prog)
	prog2, err := Parse(src2)
	if err != nil {
		t.Fatalf("re-parse of printed source failed: %v\nsource:\n%s", err, src2)
	}
	src3 := Print(prog2)
	if src2 != src3 {
		t.Fatalf("printer not idempotent:\n%s\n---\n%s", src2, src3)
	}
}

func TestParseMultipleKernels(t *testing.T) {
	src := `
__kernel void k1(__global float* a) { a[get_global_id(0)] = 1.0f; }
__kernel void k2(__global float* a) { a[get_global_id(0)] = 2.0f; }
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Kernels) != 2 || prog.Kernel("k2") == nil || prog.Kernel("nope") != nil {
		t.Fatalf("kernel lookup broken")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                    // no kernels
		"__kernel void f(",                    // truncated
		"__kernel void f() { int x = ; }",     // missing expr
		"__kernel void f() { x = 1 }",         // missing semicolon
		"__kernel void f() { 1 = x; }",        // bad lvalue
		"__kernel void f() { if x { } }",      // missing paren
		"__kernel int f() { }",                // non-void kernel
		"__kernel void f(__global int n) { }", // space on non-pointer
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("no parse error for %q", src)
		}
	}
}

func TestParseForVariants(t *testing.T) {
	src := `
__kernel void f(__global int* a, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += a[i]; }
    for (i2 = 0; i2 < n; i2 = i2 + 2) { }
    for (;;) { break; }
    int i2;
}
`
	// i2 used before decl — parse is fine, sema would reject; parse only.
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseDanglingElse(t *testing.T) {
	src := `
__kernel void f(__global int* a) {
    if (a[0] > 0)
        if (a[1] > 0) a[2] = 1;
        else a[2] = 2;
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	outer := prog.Kernels[0].Body.Stmts[0].(*IfStmt)
	if outer.Else != nil {
		t.Fatal("else bound to outer if, want inner")
	}
	inner := outer.Then.Stmts[0].(*IfStmt)
	if inner.Else == nil {
		t.Fatal("inner if lost its else")
	}
}

func TestParseTernaryAndCast(t *testing.T) {
	src := `
__kernel void f(__global float* a, int n) {
    int i = get_global_id(0);
    a[i] = (i < n) ? (float)i : 0.0f;
}
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestSemaSyrkAccess(t *testing.T) {
	ki, err := FindKernelInfo(syrkSrc, "syrk")
	if err != nil {
		t.Fatal(err)
	}
	a := ki.ParamAccess["A"]
	if a == nil || !a.In() {
		t.Fatalf("A access = %+v, want read-only", a)
	}
	c := ki.ParamAccess["C"]
	if c == nil || !c.InOut() {
		t.Fatalf("C access = %+v, want inout", c)
	}
	if got := ki.WrittenParams(); len(got) != 1 || got[0] != "C" {
		t.Fatalf("WrittenParams = %v, want [C]", got)
	}
	if ki.HasBarrier {
		t.Fatal("syrk reported a barrier")
	}
	if ki.LoopDepth != 1 {
		t.Fatalf("LoopDepth = %d, want 1", ki.LoopDepth)
	}
}

func TestSemaOutOnlyParam(t *testing.T) {
	src := `
__kernel void f(__global float* in, __global float* out, int n) {
    int i = get_global_id(0);
    if (i < n) { out[i] = in[i] * 2.0f; }
}
`
	ki, err := FindKernelInfo(src, "f")
	if err != nil {
		t.Fatal(err)
	}
	if !ki.ParamAccess["in"].In() {
		t.Fatal("in should be read-only")
	}
	if !ki.ParamAccess["out"].Out() {
		t.Fatal("out should be write-only")
	}
}

func TestSemaCompoundAssignMarksInOut(t *testing.T) {
	src := `
__kernel void f(__global float* x) {
    x[get_global_id(0)] += 1.0f;
}
`
	ki, err := FindKernelInfo(src, "f")
	if err != nil {
		t.Fatal(err)
	}
	if !ki.ParamAccess["x"].InOut() {
		t.Fatalf("x access = %+v, want inout", ki.ParamAccess["x"])
	}
}

func TestSemaBarrierAndLocal(t *testing.T) {
	src := `
__kernel void f(__global float* a) {
    __local float tile[64];
    int l = get_local_id(0);
    tile[l] = a[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    a[get_global_id(0)] = tile[63 - l];
}
`
	ki, err := FindKernelInfo(src, "f")
	if err != nil {
		t.Fatal(err)
	}
	if !ki.HasBarrier {
		t.Fatal("barrier not detected")
	}
	if len(ki.LocalArrays) != 1 || ki.LocalArrays[0] != "tile" {
		t.Fatalf("LocalArrays = %v", ki.LocalArrays)
	}
}

func TestSemaRejectsAtomics(t *testing.T) {
	src := `
__kernel void f(__global int* a) {
    atomic_add(a[0], 1);
}
`
	_, err := FindKernelInfo(src, "f")
	if err == nil || !strings.Contains(err.Error(), "atomic") {
		t.Fatalf("err = %v, want atomics rejection", err)
	}
}

func TestSemaErrors(t *testing.T) {
	cases := map[string]string{
		"undefined var":     `__kernel void f(__global int* a) { a[0] = x; }`,
		"redeclaration":     `__kernel void f() { int x; int x; }`,
		"dup param":         `__kernel void f(int a, int a) { }`,
		"not a pointer":     `__kernel void f(int a) { a[0] = 1; }`,
		"float index":       `__kernel void f(__global int* a, float x) { a[x] = 1; }`,
		"unknown builtin":   `__kernel void f() { frobnicate(); }`,
		"mod on float":      `__kernel void f(float x) { int y = 3 % 2; float z = x % 2.0f; }`,
		"break outside":     `__kernel void f() { break; }`,
		"bad array len":     `__kernel void f(int n) { float t[n]; }`,
		"array initializer": `__kernel void f() { float t[4] = 0.0f; }`,
		"local scalar":      `__kernel void f() { __local float x; }`,
		"assign pointer":    `__kernel void f(__global int* a, __global int* b) { a = b; }`,
	}
	for name, src := range cases {
		prog, err := Parse(src)
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if _, err := Check(prog); err == nil {
			t.Errorf("%s: no sema error for %q", name, src)
		}
	}
}

func TestSemaInsertsImplicitCasts(t *testing.T) {
	src := `
__kernel void f(__global float* a, int n) {
    a[0] = n;
    int k = 2.5f;
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(prog); err != nil {
		t.Fatal(err)
	}
	asn := prog.Kernels[0].Body.Stmts[0].(*AssignStmt)
	if _, ok := asn.RHS.(*CastExpr); !ok {
		t.Fatalf("RHS of a[0] = n is %T, want CastExpr", asn.RHS)
	}
	decl := prog.Kernels[0].Body.Stmts[1].(*DeclStmt)
	if _, ok := decl.Init.(*CastExpr); !ok {
		t.Fatalf("init of k is %T, want CastExpr", decl.Init)
	}
}

func TestConstEval(t *testing.T) {
	cases := map[string]int64{
		"4":           4,
		"2 + 3 * 4":   14,
		"(8 / 2) % 3": 1,
		"-5":          -5,
		"16 - 4":      12,
		"2 * (3 + 1)": 8,
	}
	for src, want := range cases {
		toks := "__kernel void f(__global int* a) { a[0] = " + src + "; }"
		prog, err := Parse(toks)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		asn := prog.Kernels[0].Body.Stmts[0].(*AssignStmt)
		got, ok := ConstEval(asn.RHS)
		if !ok || got != want {
			t.Errorf("ConstEval(%s) = %d, %v; want %d", src, got, ok, want)
		}
	}
	// non-constant
	prog := MustParse("__kernel void f(__global int* a, int n) { a[0] = n + 1; }")
	asn := prog.Kernels[0].Body.Stmts[0].(*AssignStmt)
	if _, ok := ConstEval(asn.RHS); ok {
		t.Error("ConstEval accepted non-constant expression")
	}
}

func TestRecheckAfterMutation(t *testing.T) {
	// Passes mutate the AST and re-run Check; make sure double-checking is
	// stable (casts are not re-wrapped, access info is rebuilt).
	prog := MustParse(syrkSrc)
	if _, err := Check(prog); err != nil {
		t.Fatal(err)
	}
	pi, err := Check(prog)
	if err != nil {
		t.Fatalf("second Check failed: %v", err)
	}
	if !pi.Kernels["syrk"].ParamAccess["C"].InOut() {
		t.Fatal("access info lost on re-check")
	}
}
