package clc

// Deep-clone helpers. Transformation passes duplicate condition and body
// subtrees (e.g. loop unrolling), and AST nodes must not be shared between
// two parents because sema mutates nodes in place.

// CloneExpr returns a deep copy of e.
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *Ident:
		c := *e
		return &c
	case *IntLit:
		c := *e
		return &c
	case *FloatLit:
		c := *e
		return &c
	case *BoolLit:
		c := *e
		return &c
	case *BinaryExpr:
		c := *e
		c.X = CloneExpr(e.X)
		c.Y = CloneExpr(e.Y)
		return &c
	case *UnaryExpr:
		c := *e
		c.X = CloneExpr(e.X)
		return &c
	case *CondExpr:
		c := *e
		c.Cond = CloneExpr(e.Cond)
		c.Then = CloneExpr(e.Then)
		c.Else = CloneExpr(e.Else)
		return &c
	case *CallExpr:
		c := *e
		c.Args = make([]Expr, len(e.Args))
		for i, a := range e.Args {
			c.Args[i] = CloneExpr(a)
		}
		return &c
	case *IndexExpr:
		c := *e
		c.Base = CloneExpr(e.Base).(*Ident)
		c.Idx = CloneExpr(e.Idx)
		return &c
	case *CastExpr:
		c := *e
		c.X = CloneExpr(e.X)
		return &c
	}
	panic("clc: CloneExpr: unknown node")
}

// CloneStmt returns a deep copy of s.
func CloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case nil:
		return nil
	case *Block:
		return CloneBlock(s)
	case *DeclStmt:
		c := *s
		c.ArrayLen = CloneExpr(s.ArrayLen)
		c.Init = CloneExpr(s.Init)
		return &c
	case *AssignStmt:
		c := *s
		c.LHS = CloneExpr(s.LHS)
		c.RHS = CloneExpr(s.RHS)
		return &c
	case *ExprStmt:
		c := *s
		c.X = CloneExpr(s.X)
		return &c
	case *IfStmt:
		c := *s
		c.Cond = CloneExpr(s.Cond)
		c.Then = CloneBlock(s.Then)
		c.Else = CloneStmt(s.Else)
		return &c
	case *ForStmt:
		c := *s
		c.Init = CloneStmt(s.Init)
		c.Cond = CloneExpr(s.Cond)
		c.Post = CloneStmt(s.Post)
		c.Body = CloneBlock(s.Body)
		return &c
	case *WhileStmt:
		c := *s
		c.Cond = CloneExpr(s.Cond)
		c.Body = CloneBlock(s.Body)
		return &c
	case *ReturnStmt:
		c := *s
		return &c
	case *BreakStmt:
		c := *s
		return &c
	case *ContinueStmt:
		c := *s
		return &c
	}
	panic("clc: CloneStmt: unknown node")
}

// CloneBlock returns a deep copy of b.
func CloneBlock(b *Block) *Block {
	if b == nil {
		return nil
	}
	c := &Block{Pos: b.Pos, Stmts: make([]Stmt, len(b.Stmts))}
	for i, s := range b.Stmts {
		c.Stmts[i] = CloneStmt(s)
	}
	return c
}

// CloneKernel returns a deep copy of k.
func CloneKernel(k *Kernel) *Kernel {
	c := &Kernel{Pos: k.Pos, Name: k.Name, Body: CloneBlock(k.Body)}
	c.Params = make([]*Param, len(k.Params))
	for i, p := range k.Params {
		cp := *p
		c.Params[i] = &cp
	}
	return c
}
