package clc

import "strconv"

// Parser builds a Program AST from MiniCL source.
type Parser struct {
	toks []Token
	pos  int
	eof  Pos
}

// Parse parses a MiniCL translation unit.
func Parse(src string) (*Program, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	eof := Pos{Line: 1, Col: 1}
	if n := len(toks); n > 0 {
		eof = toks[n-1].Pos
	}
	p := &Parser{toks: toks, eof: eof}
	prog := &Program{}
	for !p.atEOF() {
		k, err := p.parseKernel()
		if err != nil {
			return nil, err
		}
		prog.Kernels = append(prog.Kernels, k)
	}
	if len(prog.Kernels) == 0 {
		return nil, errf(eof, "no kernels in translation unit")
	}
	return prog, nil
}

// MustParse parses src and panics on error; for tests and embedded sources.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *Parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *Parser) cur() Token {
	if p.atEOF() {
		return Token{Kind: EOF, Pos: p.eof}
	}
	return p.toks[p.pos]
}

func (p *Parser) peekAt(n int) Token {
	if p.pos+n >= len(p.toks) {
		return Token{Kind: EOF, Pos: p.eof}
	}
	return p.toks[p.pos+n]
}

func (p *Parser) next() Token {
	t := p.cur()
	p.pos++
	return t
}

func (p *Parser) accept(k Kind) (Token, bool) {
	if p.cur().Kind == k {
		return p.next(), true
	}
	return Token{}, false
}

func (p *Parser) expect(k Kind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errf(t.Pos, "expected %s, found %s %q", k, t.Kind, t.Text)
	}
	p.pos++
	return t, nil
}

func isTypeKw(k Kind) bool { return k == KwInt || k == KwFloat || k == KwBool }

func scalarOf(k Kind) ScalarKind {
	switch k {
	case KwInt:
		return Int
	case KwFloat:
		return Float
	case KwBool:
		return Bool
	}
	return Invalid
}

func isSpaceKw(k Kind) bool { return k == KwGlobal || k == KwLocal || k == KwPrivate }

func spaceOf(k Kind) AddrSpace {
	switch k {
	case KwGlobal:
		return SpaceGlobal
	case KwLocal:
		return SpaceLocal
	case KwPrivate:
		return SpacePrivate
	}
	return SpaceNone
}

func (p *Parser) parseKernel() (*Kernel, error) {
	kw, err := p.expect(KwKernel)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KwVoid); err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	k := &Kernel{Pos: kw.Pos, Name: name.Text}
	if p.cur().Kind != RPAREN {
		for {
			par, err := p.parseParam()
			if err != nil {
				return nil, err
			}
			k.Params = append(k.Params, par)
			if _, ok := p.accept(COMMA); !ok {
				break
			}
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	k.Body = body
	return k, nil
}

func (p *Parser) parseParam() (*Param, error) {
	start := p.cur().Pos
	space := SpaceNone
	// Accept any interleaving of `const` and one address-space qualifier.
	for {
		t := p.cur()
		if t.Kind == KwConst {
			p.next()
			continue
		}
		if isSpaceKw(t.Kind) {
			if space != SpaceNone {
				return nil, errf(t.Pos, "duplicate address-space qualifier")
			}
			space = spaceOf(t.Kind)
			p.next()
			continue
		}
		break
	}
	t := p.cur()
	if !isTypeKw(t.Kind) {
		return nil, errf(t.Pos, "expected parameter type, found %s %q", t.Kind, t.Text)
	}
	elem := scalarOf(t.Kind)
	p.next()
	p.accept(KwConst)
	ty := ScalarType(elem)
	if _, ok := p.accept(STAR); ok {
		if space == SpaceNone {
			// OpenCL defaults kernel pointer params to __global if
			// unqualified in many vendor dialects; be permissive.
			space = SpaceGlobal
		}
		ty = PointerType(elem, space)
	} else if space != SpaceNone {
		return nil, errf(t.Pos, "address-space qualifier on non-pointer parameter")
	}
	p.accept(KwConst)
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	return &Param{Pos: start, Name: name.Text, Ty: ty}, nil
}

func (p *Parser) parseBlock() (*Block, error) {
	lb, err := p.expect(LBRACE)
	if err != nil {
		return nil, err
	}
	blk := &Block{Pos: lb.Pos}
	for p.cur().Kind != RBRACE {
		if p.atEOF() {
			return nil, errf(p.eof, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.next() // RBRACE
	return blk, nil
}

// parseBody parses a statement-or-block and normalizes it to a *Block.
func (p *Parser) parseBody() (*Block, error) {
	if p.cur().Kind == LBRACE {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &Block{Pos: s.NodePos(), Stmts: []Stmt{s}}, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.Kind == LBRACE:
		return p.parseBlock()
	case t.Kind == KwIf:
		return p.parseIf()
	case t.Kind == KwFor:
		return p.parseFor()
	case t.Kind == KwWhile:
		return p.parseWhile()
	case t.Kind == KwReturn:
		p.next()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &ReturnStmt{Pos: t.Pos}, nil
	case t.Kind == KwBreak:
		p.next()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: t.Pos}, nil
	case t.Kind == KwContinue:
		p.next()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: t.Pos}, nil
	case t.Kind == SEMI:
		p.next()
		return &Block{Pos: t.Pos}, nil // empty statement
	case isTypeKw(t.Kind) || isSpaceKw(t.Kind) || t.Kind == KwConst:
		s, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return s, nil
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return s, nil
	}
}

func (p *Parser) parseDecl() (Stmt, error) {
	start := p.cur().Pos
	space := SpaceNone
	for {
		t := p.cur()
		if t.Kind == KwConst {
			p.next()
			continue
		}
		if isSpaceKw(t.Kind) {
			space = spaceOf(t.Kind)
			p.next()
			continue
		}
		break
	}
	t := p.cur()
	if !isTypeKw(t.Kind) {
		return nil, errf(t.Pos, "expected type in declaration, found %s", t.Kind)
	}
	elem := scalarOf(t.Kind)
	p.next()
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Pos: start, Name: name.Text, Elem: elem, Space: space}
	if _, ok := p.accept(LBRACKET); ok {
		n, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.ArrayLen = n
		if _, err := p.expect(RBRACKET); err != nil {
			return nil, err
		}
		return d, nil
	}
	if _, ok := p.accept(ASSIGN); ok {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	return d, nil
}

// parseSimpleStmt parses assignments, increments/decrements and expression
// statements (without the trailing semicolon).
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	start := p.cur().Pos
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	switch t.Kind {
	case ASSIGN, PLUSEQ, MINUSEQ, STAREQ, SLASHEQ:
		p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := checkLValue(lhs); err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: start, Op: t.Kind, LHS: lhs, RHS: rhs}, nil
	case PLUSPLUS, MINUSMINUS:
		p.next()
		if err := checkLValue(lhs); err != nil {
			return nil, err
		}
		// Desugar k++ / k-- to k = k + 1 / k = k - 1.
		op := PLUS
		if t.Kind == MINUSMINUS {
			op = MINUS
		}
		one := &IntLit{Val: 1}
		one.Pos = t.Pos
		rhs := &BinaryExpr{Op: op, X: cloneLValue(lhs), Y: one}
		rhs.Pos = t.Pos
		return &AssignStmt{Pos: start, Op: ASSIGN, LHS: lhs, RHS: rhs}, nil
	default:
		return &ExprStmt{Pos: start, X: lhs}, nil
	}
}

func checkLValue(e Expr) error {
	switch e.(type) {
	case *Ident, *IndexExpr:
		return nil
	}
	return errf(e.NodePos(), "expression is not assignable")
}

// cloneLValue shallow-copies an lvalue expression so desugared forms do not
// alias AST nodes (passes mutate the tree in place).
func cloneLValue(e Expr) Expr {
	switch e := e.(type) {
	case *Ident:
		c := *e
		return &c
	case *IndexExpr:
		c := *e
		b := *e.Base
		c.Base = &b
		return &c
	}
	return e
}

// parsePrefixIncDec handles ++k / --k at statement level.
func (p *Parser) parsePrefixIncDec() (Stmt, error) {
	t := p.next() // ++ or --
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := checkLValue(lhs); err != nil {
		return nil, err
	}
	op := PLUS
	if t.Kind == MINUSMINUS {
		op = MINUS
	}
	one := &IntLit{Val: 1}
	one.Pos = t.Pos
	rhs := &BinaryExpr{Op: op, X: cloneLValue(lhs), Y: one}
	rhs.Pos = t.Pos
	return &AssignStmt{Pos: t.Pos, Op: ASSIGN, LHS: lhs, RHS: rhs}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	t := p.next() // if
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	then, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Pos: t.Pos, Cond: cond, Then: then}
	if _, ok := p.accept(KwElse); ok {
		if p.cur().Kind == KwIf {
			e, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			s.Else = e
		} else {
			e, err := p.parseBody()
			if err != nil {
				return nil, err
			}
			s.Else = e
		}
	}
	return s, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	t := p.next() // for
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	s := &ForStmt{Pos: t.Pos}
	if p.cur().Kind != SEMI {
		var init Stmt
		var err error
		if isTypeKw(p.cur().Kind) {
			init, err = p.parseDecl()
		} else {
			init, err = p.parseSimpleStmt()
		}
		if err != nil {
			return nil, err
		}
		s.Init = init
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	if p.cur().Kind != SEMI {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	if p.cur().Kind != RPAREN {
		var post Stmt
		var err error
		if p.cur().Kind == PLUSPLUS || p.cur().Kind == MINUSMINUS {
			post, err = p.parsePrefixIncDec()
		} else {
			post, err = p.parseSimpleStmt()
		}
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	t := p.next() // while
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: t.Pos, Cond: cond, Body: body}, nil
}

// ---- expressions (precedence climbing) ----

func (p *Parser) parseExpr() (Expr, error) { return p.parseTernary() }

func (p *Parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if _, ok := p.accept(QUESTION); !ok {
		return cond, nil
	}
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	els, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	e := &CondExpr{Cond: cond, Then: then, Else: els}
	e.Pos = cond.NodePos()
	return e, nil
}

func binPrec(k Kind) int {
	switch k {
	case OROR:
		return 1
	case ANDAND:
		return 2
	case EQ, NEQ:
		return 3
	case LT, LEQ, GT, GEQ:
		return 4
	case PLUS, MINUS:
		return 5
	case STAR, SLASH, PERCENT:
		return 6
	}
	return 0
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().Kind
		prec := binPrec(op)
		if prec == 0 || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		e := &BinaryExpr{Op: op, X: lhs, Y: rhs}
		e.Pos = lhs.NodePos()
		lhs = e
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case MINUS, NOT:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		e := &UnaryExpr{Op: t.Kind, X: x}
		e.Pos = t.Pos
		return e, nil
	case PLUS:
		p.next()
		return p.parseUnary()
	case LPAREN:
		// Cast: '(' type ')' unary.
		if isTypeKw(p.peekAt(1).Kind) && p.peekAt(2).Kind == RPAREN {
			p.next()
			ty := ScalarType(scalarOf(p.next().Kind))
			p.next() // RPAREN
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			e := &CastExpr{To: ty, X: x}
			e.Pos = t.Pos
			return e, nil
		}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case INTLIT:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad int literal %q", t.Text)
		}
		e := &IntLit{Val: v}
		e.Pos = t.Pos
		return e, nil
	case FLOATLIT:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad float literal %q", t.Text)
		}
		e := &FloatLit{Val: v}
		e.Pos = t.Pos
		return e, nil
	case KwTrue, KwFalse:
		p.next()
		e := &BoolLit{Val: t.Kind == KwTrue}
		e.Pos = t.Pos
		return e, nil
	case LPAREN:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	case IDENT:
		p.next()
		switch p.cur().Kind {
		case LPAREN:
			p.next()
			call := &CallExpr{Name: t.Text}
			call.Pos = t.Pos
			if p.cur().Kind != RPAREN {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if _, ok := p.accept(COMMA); !ok {
						break
					}
				}
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			return call, nil
		case LBRACKET:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACKET); err != nil {
				return nil, err
			}
			base := &Ident{Name: t.Text}
			base.Pos = t.Pos
			e := &IndexExpr{Base: base, Idx: idx}
			e.Pos = t.Pos
			return e, nil
		default:
			e := &Ident{Name: t.Text}
			e.Pos = t.Pos
			return e, nil
		}
	}
	return nil, errf(t.Pos, "unexpected token %s %q in expression", t.Kind, t.Text)
}
