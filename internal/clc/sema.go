package clc

import (
	"strings"
)

// Builtin describes a MiniCL builtin function signature.
type Builtin struct {
	Name   string
	Params []ScalarKind
	Result ScalarKind
}

// builtins is the MiniCL builtin function table: the OpenCL work-item
// functions plus a small math library.
var builtins = map[string]Builtin{
	"get_global_id":     {"get_global_id", []ScalarKind{Int}, Int},
	"get_local_id":      {"get_local_id", []ScalarKind{Int}, Int},
	"get_group_id":      {"get_group_id", []ScalarKind{Int}, Int},
	"get_num_groups":    {"get_num_groups", []ScalarKind{Int}, Int},
	"get_local_size":    {"get_local_size", []ScalarKind{Int}, Int},
	"get_global_size":   {"get_global_size", []ScalarKind{Int}, Int},
	"get_global_offset": {"get_global_offset", []ScalarKind{Int}, Int},
	"get_work_dim":      {"get_work_dim", nil, Int},
	"barrier":           {"barrier", []ScalarKind{Int}, Void},
	"sqrt":              {"sqrt", []ScalarKind{Float}, Float},
	"fabs":              {"fabs", []ScalarKind{Float}, Float},
	"exp":               {"exp", []ScalarKind{Float}, Float},
	"log":               {"log", []ScalarKind{Float}, Float},
	"floor":             {"floor", []ScalarKind{Float}, Float},
	"ceil":              {"ceil", []ScalarKind{Float}, Float},
	"pow":               {"pow", []ScalarKind{Float, Float}, Float},
	"fmin":              {"fmin", []ScalarKind{Float, Float}, Float},
	"fmax":              {"fmax", []ScalarKind{Float, Float}, Float},
	"min":               {"min", []ScalarKind{Int, Int}, Int},
	"max":               {"max", []ScalarKind{Int, Int}, Int},
	"abs":               {"abs", []ScalarKind{Int}, Int},
}

// builtinConsts are predefined integer constants (barrier fence flags).
var builtinConsts = map[string]int64{
	"CLK_LOCAL_MEM_FENCE":  1,
	"CLK_GLOBAL_MEM_FENCE": 2,
}

// ParamAccess records how a kernel accesses a pointer parameter; FluidiCL
// uses it to classify buffers as in, out or inout (paper §4.1: "out or
// inout variables which can be identified using simple compiler analysis at
// the whole variable level").
type ParamAccess struct {
	Read    bool
	Written bool
}

// In reports a read-only parameter.
func (a ParamAccess) In() bool { return a.Read && !a.Written }

// Out reports a write-only parameter.
func (a ParamAccess) Out() bool { return a.Written && !a.Read }

// InOut reports a read-write parameter.
func (a ParamAccess) InOut() bool { return a.Read && a.Written }

// KernelInfo is the result of semantic analysis for one kernel.
type KernelInfo struct {
	Kernel      *Kernel
	ParamAccess map[string]*ParamAccess // pointer parameters only
	HasBarrier  bool
	LocalArrays []string // names of __local array declarations
	LoopDepth   int      // maximum loop nesting depth
}

// WrittenParams returns the names of pointer parameters the kernel writes
// (out or inout), in declaration order.
func (ki *KernelInfo) WrittenParams() []string {
	var out []string
	for _, p := range ki.Kernel.Params {
		if a, ok := ki.ParamAccess[p.Name]; ok && a.Written {
			out = append(out, p.Name)
		}
	}
	return out
}

// ProgramInfo is the result of semantic analysis for a translation unit.
type ProgramInfo struct {
	Kernels map[string]*KernelInfo
}

// scope is a lexical scope mapping names to types.
type scope struct {
	parent *scope
	vars   map[string]Type
}

func (s *scope) lookup(name string) (Type, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if t, ok := sc.vars[name]; ok {
			return t, true
		}
	}
	return Type{}, false
}

func (s *scope) declare(name string, t Type) bool {
	if _, exists := s.vars[name]; exists {
		return false
	}
	s.vars[name] = t
	return true
}

type checker struct {
	info      *KernelInfo
	scope     *scope
	loopDepth int
}

// Check type-checks the program, inserts implicit conversions as CastExpr
// nodes, and computes per-kernel access information. It must be re-run
// after AST transformation passes so the compiler sees typed nodes.
func Check(p *Program) (*ProgramInfo, error) {
	pi := &ProgramInfo{Kernels: make(map[string]*KernelInfo)}
	seen := make(map[string]bool)
	for _, k := range p.Kernels {
		if seen[k.Name] {
			return nil, errf(k.Pos, "kernel %q redefined", k.Name)
		}
		seen[k.Name] = true
		ki, err := checkKernel(k)
		if err != nil {
			return nil, err
		}
		pi.Kernels[k.Name] = ki
	}
	return pi, nil
}

// CheckKernel type-checks a single kernel in isolation.
func CheckKernel(k *Kernel) (*KernelInfo, error) { return checkKernel(k) }

func checkKernel(k *Kernel) (*KernelInfo, error) {
	c := &checker{
		info: &KernelInfo{
			Kernel:      k,
			ParamAccess: make(map[string]*ParamAccess),
		},
		scope: &scope{vars: make(map[string]Type)},
	}
	for _, p := range k.Params {
		if !c.scope.declare(p.Name, p.Ty) {
			return nil, errf(p.Pos, "duplicate parameter %q", p.Name)
		}
		if p.Ty.Ptr {
			c.info.ParamAccess[p.Name] = &ParamAccess{}
		}
	}
	if err := c.checkBlock(k.Body, false); err != nil {
		return nil, err
	}
	return c.info, nil
}

func (c *checker) pushScope() { c.scope = &scope{parent: c.scope, vars: make(map[string]Type)} }
func (c *checker) popScope()  { c.scope = c.scope.parent }

func (c *checker) checkBlock(b *Block, newScope bool) error {
	if newScope {
		c.pushScope()
		defer c.popScope()
	}
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *Block:
		return c.checkBlock(s, true)
	case *DeclStmt:
		return c.checkDecl(s)
	case *AssignStmt:
		return c.checkAssign(s)
	case *ExprStmt:
		t, err := c.checkExpr(s.X)
		if err != nil {
			return err
		}
		if call, ok := s.X.(*CallExpr); !ok || call.Name != "barrier" {
			if t.Kind == Void {
				return nil
			}
			// Permit other expressions for effect-free evaluation; they are
			// legal C but almost always a mistake in kernels.
		}
		return nil
	case *IfStmt:
		if err := c.checkCond(s.Cond); err != nil {
			return err
		}
		if err := c.checkBlock(s.Then, true); err != nil {
			return err
		}
		if s.Else != nil {
			return c.checkStmt(s.Else)
		}
		return nil
	case *ForStmt:
		c.pushScope()
		defer c.popScope()
		if s.Init != nil {
			if err := c.checkStmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := c.checkCond(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.checkStmt(s.Post); err != nil {
				return err
			}
		}
		c.loopDepth++
		if c.loopDepth > c.info.LoopDepth {
			c.info.LoopDepth = c.loopDepth
		}
		err := c.checkBlock(s.Body, true)
		c.loopDepth--
		return err
	case *WhileStmt:
		if err := c.checkCond(s.Cond); err != nil {
			return err
		}
		c.loopDepth++
		if c.loopDepth > c.info.LoopDepth {
			c.info.LoopDepth = c.loopDepth
		}
		err := c.checkBlock(s.Body, true)
		c.loopDepth--
		return err
	case *ReturnStmt:
		return nil
	case *BreakStmt, *ContinueStmt:
		if c.loopDepth == 0 {
			return errf(s.NodePos(), "break/continue outside loop")
		}
		return nil
	}
	return errf(s.NodePos(), "unknown statement %T", s)
}

func (c *checker) checkDecl(d *DeclStmt) error {
	if d.Elem == Void {
		return errf(d.Pos, "cannot declare void variable")
	}
	if d.ArrayLen != nil {
		if _, err := c.checkExpr(d.ArrayLen); err != nil {
			return err
		}
		n, ok := ConstEval(d.ArrayLen)
		if !ok || n <= 0 {
			return errf(d.Pos, "array length of %q must be a positive integer constant", d.Name)
		}
		if d.Space == SpaceNone {
			d.Space = SpacePrivate
		}
		if d.Space == SpaceGlobal {
			return errf(d.Pos, "cannot declare __global array %q in kernel body", d.Name)
		}
		if d.Space == SpaceLocal {
			c.info.LocalArrays = append(c.info.LocalArrays, d.Name)
		}
		if !c.scope.declare(d.Name, PointerType(d.Elem, d.Space)) {
			return errf(d.Pos, "redeclaration of %q", d.Name)
		}
		if d.Init != nil {
			return errf(d.Pos, "array %q cannot have an initializer", d.Name)
		}
		return nil
	}
	if d.Space == SpaceLocal {
		return errf(d.Pos, "__local scalar %q not supported (use a __local array)", d.Name)
	}
	ty := ScalarType(d.Elem)
	if d.Init != nil {
		it, err := c.checkExpr(d.Init)
		if err != nil {
			return err
		}
		conv, err := c.convert(d.Init, it, ty)
		if err != nil {
			return err
		}
		d.Init = conv
	}
	if !c.scope.declare(d.Name, ty) {
		return errf(d.Pos, "redeclaration of %q", d.Name)
	}
	return nil
}

func (c *checker) checkAssign(a *AssignStmt) error {
	lt, err := c.checkLHS(a.LHS, a.Op != ASSIGN)
	if err != nil {
		return err
	}
	rt, err := c.checkExpr(a.RHS)
	if err != nil {
		return err
	}
	if lt.Ptr {
		return errf(a.Pos, "cannot assign to pointer %s", ExprString(a.LHS))
	}
	conv, err := c.convert(a.RHS, rt, lt)
	if err != nil {
		return err
	}
	a.RHS = conv
	return nil
}

// checkLHS types an assignment target and records write (and, for compound
// assignment, read) access to pointer parameters.
func (c *checker) checkLHS(e Expr, compound bool) (Type, error) {
	switch e := e.(type) {
	case *Ident:
		t, ok := c.scope.lookup(e.Name)
		if !ok {
			return Type{}, errf(e.Pos, "undefined variable %q", e.Name)
		}
		e.setType(t)
		return t, nil
	case *IndexExpr:
		t, err := c.checkIndex(e, true, compound)
		if err != nil {
			return Type{}, err
		}
		return t, nil
	}
	return Type{}, errf(e.NodePos(), "invalid assignment target")
}

func (c *checker) checkCond(e Expr) error {
	t, err := c.checkExpr(e)
	if err != nil {
		return err
	}
	if t.Ptr || (t.Kind != Int && t.Kind != Bool && t.Kind != Float) {
		return errf(e.NodePos(), "condition must be scalar, got %s", t)
	}
	return nil
}

// convert inserts an implicit conversion from t to want around e if needed.
func (c *checker) convert(e Expr, t, want Type) (Expr, error) {
	if t.Equal(want) {
		return e, nil
	}
	if t.Ptr || want.Ptr {
		return nil, errf(e.NodePos(), "cannot convert %s to %s", t, want)
	}
	if t.Kind == Void || want.Kind == Void {
		return nil, errf(e.NodePos(), "cannot use void value")
	}
	cast := &CastExpr{To: want, X: e}
	cast.Pos = e.NodePos()
	cast.setType(want)
	return cast, nil
}

func (c *checker) checkExpr(e Expr) (Type, error) {
	switch e := e.(type) {
	case *IntLit:
		e.setType(ScalarType(Int))
	case *FloatLit:
		e.setType(ScalarType(Float))
	case *BoolLit:
		e.setType(ScalarType(Bool))
	case *Ident:
		if v, ok := builtinConsts[e.Name]; ok {
			_ = v
			e.setType(ScalarType(Int))
			return e.Type(), nil
		}
		t, ok := c.scope.lookup(e.Name)
		if !ok {
			return Type{}, errf(e.Pos, "undefined variable %q", e.Name)
		}
		e.setType(t)
	case *UnaryExpr:
		t, err := c.checkExpr(e.X)
		if err != nil {
			return Type{}, err
		}
		if t.Ptr {
			return Type{}, errf(e.Pos, "invalid operand %s to unary %s", t, e.Op)
		}
		switch e.Op {
		case MINUS:
			if t.Kind != Int && t.Kind != Float {
				return Type{}, errf(e.Pos, "unary - requires numeric operand, got %s", t)
			}
			e.setType(t)
		case NOT:
			if t.Kind != Bool && t.Kind != Int {
				return Type{}, errf(e.Pos, "! requires bool or int operand, got %s", t)
			}
			e.setType(ScalarType(Bool))
		default:
			return Type{}, errf(e.Pos, "unknown unary operator %s", e.Op)
		}
	case *BinaryExpr:
		return c.checkBinary(e)
	case *CondExpr:
		if err := c.checkCond(e.Cond); err != nil {
			return Type{}, err
		}
		tt, err := c.checkExpr(e.Then)
		if err != nil {
			return Type{}, err
		}
		et, err := c.checkExpr(e.Else)
		if err != nil {
			return Type{}, err
		}
		u, err := c.unify(e, tt, et)
		if err != nil {
			return Type{}, err
		}
		th, err := c.convert(e.Then, tt, u)
		if err != nil {
			return Type{}, err
		}
		el, err := c.convert(e.Else, et, u)
		if err != nil {
			return Type{}, err
		}
		e.Then, e.Else = th, el
		e.setType(u)
	case *CallExpr:
		return c.checkCall(e)
	case *IndexExpr:
		return c.checkIndex(e, false, false)
	case *CastExpr:
		t, err := c.checkExpr(e.X)
		if err != nil {
			return Type{}, err
		}
		if t.Ptr || e.To.Ptr {
			return Type{}, errf(e.Pos, "pointer casts are not supported")
		}
		if t.Kind == Void {
			return Type{}, errf(e.Pos, "cannot cast void value")
		}
		e.setType(e.To)
	default:
		return Type{}, errf(e.NodePos(), "unknown expression %T", e)
	}
	return e.Type(), nil
}

func (c *checker) checkBinary(e *BinaryExpr) (Type, error) {
	xt, err := c.checkExpr(e.X)
	if err != nil {
		return Type{}, err
	}
	yt, err := c.checkExpr(e.Y)
	if err != nil {
		return Type{}, err
	}
	if xt.Ptr || yt.Ptr {
		return Type{}, errf(e.Pos, "pointer arithmetic is not supported (index with [])")
	}
	switch e.Op {
	case PLUS, MINUS, STAR, SLASH:
		u, err := c.unify(e, xt, yt)
		if err != nil {
			return Type{}, err
		}
		if u.Kind == Bool {
			u = ScalarType(Int)
		}
		if e.X, err = c.convert(e.X, xt, u); err != nil {
			return Type{}, err
		}
		if e.Y, err = c.convert(e.Y, yt, u); err != nil {
			return Type{}, err
		}
		e.setType(u)
	case PERCENT:
		if xt.Kind != Int || yt.Kind != Int {
			return Type{}, errf(e.Pos, "%% requires int operands, got %s and %s", xt, yt)
		}
		e.setType(ScalarType(Int))
	case EQ, NEQ, LT, LEQ, GT, GEQ:
		u, err := c.unify(e, xt, yt)
		if err != nil {
			return Type{}, err
		}
		if u.Kind == Bool {
			u = ScalarType(Int)
		}
		if e.X, err = c.convert(e.X, xt, u); err != nil {
			return Type{}, err
		}
		if e.Y, err = c.convert(e.Y, yt, u); err != nil {
			return Type{}, err
		}
		e.setType(ScalarType(Bool))
	case ANDAND, OROR:
		for _, op := range []Expr{e.X, e.Y} {
			t := op.Type()
			if t.Ptr || (t.Kind != Bool && t.Kind != Int) {
				return Type{}, errf(e.Pos, "%s requires bool or int operands, got %s", e.Op, t)
			}
		}
		e.setType(ScalarType(Bool))
	default:
		return Type{}, errf(e.Pos, "unknown binary operator %s", e.Op)
	}
	return e.Type(), nil
}

// unify returns the common arithmetic type of two scalars (float wins).
func (c *checker) unify(e Expr, a, b Type) (Type, error) {
	if a.Ptr || b.Ptr {
		return Type{}, errf(e.NodePos(), "cannot unify pointer types")
	}
	if a.Kind == Void || b.Kind == Void {
		return Type{}, errf(e.NodePos(), "cannot use void value")
	}
	if a.Kind == Float || b.Kind == Float {
		return ScalarType(Float), nil
	}
	if a.Kind == Int || b.Kind == Int {
		return ScalarType(Int), nil
	}
	return ScalarType(Bool), nil
}

func (c *checker) checkCall(e *CallExpr) (Type, error) {
	if strings.HasPrefix(e.Name, "atomic_") || strings.HasPrefix(e.Name, "atom_") {
		// FluidiCL's stated limitation (paper §7): kernels using atomic
		// primitives cannot be executed cooperatively.
		return Type{}, errf(e.Pos, "atomic primitives are not supported by FluidiCL (%s)", e.Name)
	}
	b, ok := builtins[e.Name]
	if !ok {
		return Type{}, errf(e.Pos, "unknown function %q", e.Name)
	}
	if e.Name == "barrier" {
		// Accept barrier() and barrier(flags).
		if len(e.Args) > 1 {
			return Type{}, errf(e.Pos, "barrier takes at most one argument")
		}
		for _, a := range e.Args {
			if _, err := c.checkExpr(a); err != nil {
				return Type{}, err
			}
		}
		c.info.HasBarrier = true
		e.setType(ScalarType(Void))
		return e.Type(), nil
	}
	if len(e.Args) != len(b.Params) {
		return Type{}, errf(e.Pos, "%s expects %d arguments, got %d", e.Name, len(b.Params), len(e.Args))
	}
	for i, a := range e.Args {
		at, err := c.checkExpr(a)
		if err != nil {
			return Type{}, err
		}
		conv, err := c.convert(a, at, ScalarType(b.Params[i]))
		if err != nil {
			return Type{}, err
		}
		e.Args[i] = conv
	}
	e.setType(ScalarType(b.Result))
	return e.Type(), nil
}

func (c *checker) checkIndex(e *IndexExpr, write, alsoRead bool) (Type, error) {
	bt, ok := c.scope.lookup(e.Base.Name)
	if !ok {
		return Type{}, errf(e.Base.Pos, "undefined variable %q", e.Base.Name)
	}
	if !bt.Ptr {
		return Type{}, errf(e.Base.Pos, "%q is not a pointer or array", e.Base.Name)
	}
	e.Base.setType(bt)
	it, err := c.checkExpr(e.Idx)
	if err != nil {
		return Type{}, err
	}
	if it.Ptr || (it.Kind != Int && it.Kind != Bool) {
		return Type{}, errf(e.Idx.NodePos(), "index must be int, got %s", it)
	}
	if it.Kind == Bool {
		conv, err := c.convert(e.Idx, it, ScalarType(Int))
		if err != nil {
			return Type{}, err
		}
		e.Idx = conv
	}
	if acc, isParam := c.info.ParamAccess[e.Base.Name]; isParam {
		if write {
			acc.Written = true
			if alsoRead {
				acc.Read = true
			}
		} else {
			acc.Read = true
		}
	}
	e.setType(ScalarType(bt.Kind))
	return e.Type(), nil
}

// ConstEval evaluates an integer constant expression. It returns ok=false
// for non-constant expressions.
func ConstEval(e Expr) (int64, bool) {
	switch e := e.(type) {
	case *IntLit:
		return e.Val, true
	case *BoolLit:
		if e.Val {
			return 1, true
		}
		return 0, true
	case *Ident:
		v, ok := builtinConsts[e.Name]
		return v, ok
	case *UnaryExpr:
		x, ok := ConstEval(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case MINUS:
			return -x, true
		case NOT:
			if x == 0 {
				return 1, true
			}
			return 0, true
		}
	case *BinaryExpr:
		x, okx := ConstEval(e.X)
		y, oky := ConstEval(e.Y)
		if !okx || !oky {
			return 0, false
		}
		switch e.Op {
		case PLUS:
			return x + y, true
		case MINUS:
			return x - y, true
		case STAR:
			return x * y, true
		case SLASH:
			if y == 0 {
				return 0, false
			}
			return x / y, true
		case PERCENT:
			if y == 0 {
				return 0, false
			}
			return x % y, true
		}
	case *CastExpr:
		if e.To.Kind == Int {
			return ConstEval(e.X)
		}
	}
	return 0, false
}

// FindKernelInfo is a convenience wrapper: parse + check + select kernel.
func FindKernelInfo(src, name string) (*KernelInfo, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	pi, err := Check(prog)
	if err != nil {
		return nil, err
	}
	ki, ok := pi.Kernels[name]
	if !ok {
		pos := Pos{Line: 1, Col: 1}
		if len(prog.Kernels) > 0 {
			pos = prog.Kernels[0].Pos
		}
		return nil, errf(pos, "kernel %q not found in translation unit", name)
	}
	return ki, nil
}
