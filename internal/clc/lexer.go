package clc

import (
	"strings"
)

// Lexer turns MiniCL source text into tokens.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// skipSpace consumes whitespace and comments. It returns an error for an
// unterminated block comment.
func (l *Lexer) skipSpace() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpace(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peek()

	switch {
	case isAlpha(c):
		start := l.off
		for l.off < len(l.src) && (isAlpha(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		text := l.src[start:l.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: pos}, nil

	case isDigit(c) || (c == '.' && isDigit(l.peek2())):
		start := l.off
		isFloat := false
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.peek() == '.' {
			isFloat = true
			l.advance()
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		if l.peek() == 'e' || l.peek() == 'E' {
			isFloat = true
			l.advance()
			if l.peek() == '+' || l.peek() == '-' {
				l.advance()
			}
			if !isDigit(l.peek()) {
				return Token{}, errf(pos, "malformed float exponent")
			}
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		text := l.src[start:l.off]
		// OpenCL-style 'f' / 'F' suffix.
		if l.peek() == 'f' || l.peek() == 'F' {
			isFloat = true
			l.advance()
		}
		if isFloat {
			return Token{Kind: FLOATLIT, Text: strings.TrimSuffix(strings.TrimSuffix(text, "f"), "F"), Pos: pos}, nil
		}
		return Token{Kind: INTLIT, Text: text, Pos: pos}, nil
	}

	two := func(k Kind) (Token, error) {
		t := string(l.advance()) + string(l.advance())
		return Token{Kind: k, Text: t, Pos: pos}, nil
	}
	one := func(k Kind) (Token, error) {
		return Token{Kind: k, Text: string(l.advance()), Pos: pos}, nil
	}

	switch c {
	case '(':
		return one(LPAREN)
	case ')':
		return one(RPAREN)
	case '{':
		return one(LBRACE)
	case '}':
		return one(RBRACE)
	case '[':
		return one(LBRACKET)
	case ']':
		return one(RBRACKET)
	case ',':
		return one(COMMA)
	case ';':
		return one(SEMI)
	case '?':
		return one(QUESTION)
	case ':':
		return one(COLON)
	case '+':
		if l.peek2() == '+' {
			return two(PLUSPLUS)
		}
		if l.peek2() == '=' {
			return two(PLUSEQ)
		}
		return one(PLUS)
	case '-':
		if l.peek2() == '-' {
			return two(MINUSMINUS)
		}
		if l.peek2() == '=' {
			return two(MINUSEQ)
		}
		return one(MINUS)
	case '*':
		if l.peek2() == '=' {
			return two(STAREQ)
		}
		return one(STAR)
	case '/':
		if l.peek2() == '=' {
			return two(SLASHEQ)
		}
		return one(SLASH)
	case '%':
		return one(PERCENT)
	case '=':
		if l.peek2() == '=' {
			return two(EQ)
		}
		return one(ASSIGN)
	case '!':
		if l.peek2() == '=' {
			return two(NEQ)
		}
		return one(NOT)
	case '<':
		if l.peek2() == '=' {
			return two(LEQ)
		}
		return one(LT)
	case '>':
		if l.peek2() == '=' {
			return two(GEQ)
		}
		return one(GT)
	case '&':
		if l.peek2() == '&' {
			return two(ANDAND)
		}
	case '|':
		if l.peek2() == '|' {
			return two(OROR)
		}
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

// LexAll tokenizes the whole input (EOF token excluded).
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == EOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}
