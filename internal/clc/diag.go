package clc

import (
	"fmt"
	"sort"
	"strings"
)

// Diag is the shared positioned diagnostic used across the front end, the
// static analyzer and the transformation passes. It renders as
// "file:line:col: message" (or "line:col: message" when File is empty), the
// same shape as parser and sema errors, so every tool in the stack reports
// source locations consistently.
type Diag struct {
	File string
	Pos  Pos
	Msg  string
}

func (d Diag) String() string {
	if d.File == "" {
		return fmt.Sprintf("%s: %s", d.Pos, d.Msg)
	}
	return fmt.Sprintf("%s:%s: %s", d.File, d.Pos, d.Msg)
}

func (d Diag) Error() string { return d.String() }

// DiagList aggregates diagnostics into one error value so callers can
// report every finding from a single run.
type DiagList []Diag

func (l DiagList) Error() string {
	msgs := make([]string, len(l))
	for i, d := range l {
		msgs[i] = d.String()
	}
	return strings.Join(msgs, "\n")
}

// SortDiags orders diagnostics by file, then source position.
func SortDiags(diags []Diag) {
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		return diags[i].Pos.Col < diags[j].Pos.Col
	})
}
