package analysis_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fluidicl/internal/analysis"
	"fluidicl/internal/passes"
	"fluidicl/internal/polybench"
)

var update = flag.Bool("update", false, "rewrite golden files")

// render is the canonical text form of an analysis result: every lint
// diagnostic, then every kernel summary in declaration order.
func render(ps *analysis.ProgramSummary) string {
	var b strings.Builder
	for _, d := range ps.Diags {
		fmt.Fprintln(&b, d.Error())
	}
	for _, kn := range ps.Order {
		b.WriteString(ps.Kernels[kn].String())
	}
	return b.String()
}

func checkGolden(t *testing.T, goldenPath, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("analysis output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", goldenPath, got, want)
	}
}

func slug(name string) string {
	return strings.ToLower(strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			return r
		}
		return '_'
	}, name))
}

// TestPolybenchGolden pins the analyzer's summary for every shipped kernel
// source, and requires all of them to lint clean.
func TestPolybenchGolden(t *testing.T) {
	srcs := polybench.Sources()
	srcs = append(srcs, polybench.NamedSource{Name: "fcl-merge", Src: passes.MergeKernelSource})
	for _, s := range srcs {
		t.Run(s.Name, func(t *testing.T) {
			ps, err := analysis.AnalyzeSource(s.Src, s.Name)
			if err != nil {
				t.Fatal(err)
			}
			if len(ps.Diags) != 0 {
				t.Errorf("shipped kernel source %s has lint diagnostics:\n%s", s.Name, render(ps))
			}
			checkGolden(t, filepath.Join("testdata", "polybench_"+slug(s.Name)+".golden"), render(ps))
		})
	}
}

// TestAdversarialGolden pins the diagnostics for kernels written to trip
// each lint: a barrier under divergent control flow, inter-work-item
// races, a constant out-of-bounds access and unused arguments/variables.
func TestAdversarialGolden(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.cl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no adversarial kernels found: %v", err)
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			ps, err := analysis.AnalyzeSource(string(src), filepath.Base(f))
			if err != nil {
				t.Fatal(err)
			}
			if len(ps.Diags) == 0 {
				t.Errorf("adversarial kernel %s produced no diagnostics", f)
			}
			checkGolden(t, strings.TrimSuffix(f, ".cl")+".golden", render(ps))
		})
	}
}

// TestAdversarialFacts spot-checks the structured facts behind the golden
// text, so a formatting change cannot silently mask a regression.
func TestAdversarialFacts(t *testing.T) {
	mustAnalyze := func(path string) *analysis.ProgramSummary {
		t.Helper()
		src, err := os.ReadFile(filepath.Join("testdata", path))
		if err != nil {
			t.Fatal(err)
		}
		ps, err := analysis.AnalyzeSource(string(src), path)
		if err != nil {
			t.Fatal(err)
		}
		return ps
	}

	bar := mustAnalyze("divergent_barrier.cl")
	if !bar.Kernels["divbar"].HasDivergentBarrier() {
		t.Error("divbar: divergent barrier not detected")
	}
	if bar.Kernels["okbar"].HasDivergentBarrier() {
		t.Error("okbar: uniform barrier misreported as divergent")
	}

	race := mustAnalyze("race.cl")
	if got := race.Kernels["racy"].Races; got < 2 {
		t.Errorf("racy: found %d race diagnostics, want >= 2", got)
	}
	if out := race.Kernels["racy"].Arg("out"); out == nil || out.SlotExact {
		t.Error("racy: out must not be slot-exact (it has racy stores)")
	}

	oob := mustAnalyze("const_oob.cl")
	found := false
	for _, d := range oob.Kernels["oob"].Diags {
		if strings.Contains(d.Msg, "out of bounds") {
			found = true
		}
	}
	if !found {
		t.Error("oob: constant out-of-bounds store not flagged")
	}

	sc := mustAnalyze("strided_scatter.cl")
	if out := sc.Kernels["scatter_columns"].Arg("out"); out == nil ||
		len(out.Refs) != 1 || !out.Refs[0].Store || !out.WritesComplete() {
		t.Error("scatter_columns: want exactly one fully-summarized store ref")
	}
	gi := sc.Kernels["gather_indirect"].Arg("out")
	rejected := false
	if gi != nil {
		for _, r := range gi.Rejects {
			if r.Store && r.Reason == analysis.RejIndirect {
				rejected = true
			}
		}
	}
	if !rejected {
		t.Error("gather_indirect: indirect store must carry an indirect reject")
	}
	sfound := false
	for _, d := range sc.Kernels["strided_oob"].Diags {
		if strings.Contains(d.Msg, "provably out of bounds") {
			sfound = true
		}
	}
	if !sfound {
		t.Error("strided_oob: negative-minimum strided store not flagged")
	}
}
