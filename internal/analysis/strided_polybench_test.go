package analysis_test

import (
	"testing"

	"fluidicl/internal/analysis"
	"fluidicl/internal/polybench"
)

func analyzePolybench(t *testing.T, name string) *analysis.ProgramSummary {
	t.Helper()
	for _, ns := range polybench.Sources() {
		if ns.Name != name {
			continue
		}
		ps, err := analysis.AnalyzeSource(ns.Src, ns.Name+".cl")
		if err != nil {
			t.Fatalf("%s: %v", ns.Name, err)
		}
		return ps
	}
	t.Fatalf("no polybench source %q", name)
	return nil
}

// TestCorrKernel4Strided pins the tentpole's flagship result: corr_kernel4
// scatters into a triangular matrix (diagonal point, row run, strided
// column) — far outside the single-affine-form certificate — yet its strided
// summary is complete and proves per-work-group store disjointness at the
// quick experiment scale, which is what lets the wg backend run it without
// fallback.
func TestCorrKernel4Strided(t *testing.T) {
	ps := analyzePolybench(t, "CORR")
	ks := ps.Kernels["corr_kernel4"]
	if ks == nil {
		t.Fatal("no corr_kernel4 summary")
	}
	symmat := ks.Arg("symmat")
	if symmat == nil {
		t.Fatal("no symmat arg")
	}
	if !symmat.WritesComplete() {
		t.Fatalf("symmat writes not fully summarized: %+v", symmat.Rejects)
	}
	stores := 0
	for _, r := range symmat.Refs {
		if r.Store {
			stores++
			if r.MayOnly {
				t.Fatalf("symmat store is may-only: %s", r.String(ks.Params))
			}
		}
	}
	if stores != 3 {
		t.Fatalf("want 3 symmat store refs (diagonal, row, column), got %d\n%s",
			stores, ks.String())
	}

	// Quick experiment scale: m = n = 64, local size 8 over ceil(m/8) groups.
	m := int64(64)
	sh := analysis.LaunchShape{
		Dims:      1,
		Local:     [3]int64{8, 1, 1},
		NumGroups: [3]int64{(m + 7) / 8, 1, 1},
		Count:     [3]int64{(m + 7) / 8, 1, 1},
	}
	params := []int64{0, 0, m, m} // (data, symmat, m, n)
	if v := ks.CertifyGroupDisjoint(sh, params, 1<<24); !v.OK {
		t.Fatalf("corr_kernel4 quick shape: want certified, got %q at %v", v.Reason, v.Pos)
	}
}

// TestPolybenchStridedCompleteness checks that every written __global
// argument of every shipped kernel either has fully summarized stores or
// carries a machine-readable reject naming the reason — the "explain every
// precision loss" contract.
func TestPolybenchStridedCompleteness(t *testing.T) {
	for _, ns := range polybench.Sources() {
		ps, err := analysis.AnalyzeSource(ns.Src, ns.Name+".cl")
		if err != nil {
			t.Fatalf("%s: %v", ns.Name, err)
		}
		for _, name := range ps.Order {
			ks := ps.Kernels[name]
			for i := range ks.Args {
				a := &ks.Args[i]
				if !a.Written {
					continue
				}
				hasStore := false
				for _, r := range a.Refs {
					if r.Store {
						hasStore = true
					}
				}
				if !hasStore && a.WritesComplete() {
					t.Errorf("%s/%s arg %s: written but no store ref and no reject",
						ns.Name, name, a.Name)
				}
				for _, rej := range a.Rejects {
					if rej.Reason == "" {
						t.Errorf("%s/%s arg %s: reject without a reason", ns.Name, name, a.Name)
					}
				}
			}
		}
	}
}
