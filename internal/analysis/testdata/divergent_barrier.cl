__kernel void divbar(__global float* x, __global float* y, int n)
{
    int i = get_global_id(0);
    float v = x[i];
    if (i < n) {
        barrier(CLK_LOCAL_MEM_FENCE);
        y[i] = v;
    }
}

__kernel void okbar(__global float* x, __global float* y, int n)
{
    int i = get_global_id(0);
    float v = x[i];
    barrier(CLK_LOCAL_MEM_FENCE);
    if (i < n) {
        y[i] = v;
    }
}
