__kernel void racy(__global float* out, __global float* in, int n)
{
    int i = get_global_id(0);
    out[0] = in[i];
    out[n] += in[i];
    out[i] = in[i];
}
