// Strided and scatter kernels for the second-generation access analysis:
// a clean column scatter (exact strided footprint), an indirect gather
// (store reject with reason), a neighbor-overlap stencil (summarized, but
// not work-group disjoint), and a strided store with a provably negative
// minimum index (fires the static out-of-bounds lint).

__kernel void scatter_columns(__global float* out, int n, int rows) {
    int g = get_global_id(0);
    for (int r = 0; r < rows; r++) {
        out[r * n + g] = 1.0f;
    }
}

__kernel void gather_indirect(__global float* out, __global float* in,
                              __global int* idx) {
    int g = get_global_id(0);
    out[idx[g]] = in[g];
}

__kernel void overlap_neighbor(__global float* buf, int n) {
    int g = get_global_id(0);
    if (g + 1 < n) {
        buf[g] = buf[g + 1] * 0.5f;
    }
}

__kernel void strided_oob(__global float* out, int n) {
    int g = get_global_id(0);
    out[g * 2 - 4] = (float)n;
}
