__kernel void oob(__global float* out)
{
    float acc[8];
    acc[0] = 1.0f;
    acc[9] = 2.0f;
    out[get_global_id(0)] = acc[0];
}
