__kernel void unused(__global float* out, __global float* never, int m)
{
    int i = get_global_id(0);
    int dead = (i * 2);
    out[i] = 1.0f;
}
