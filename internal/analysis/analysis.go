// Package analysis implements FluidiCL's static kernel analyzer: a
// dataflow analysis over MiniCL kernel ASTs that produces per-kernel buffer
// access summaries (read-only / write-only / read-write, and how index
// expressions relate to the global id), a barrier report (including
// barriers under work-item-divergent control flow, which is undefined
// behaviour in OpenCL and blocks work-group splitting), and lint
// diagnostics with source positions.
//
// The runtime consumes the summaries to make decisions from proofs instead
// of conservatism: passes uses the barrier/race facts for work-group split
// legality and drops redundant subkernel range guards; core uses
// read-only/write-only facts to skip host transfers and scratch copies and
// to narrow the diff+merge range. The VM's dynamic access stats cross-check
// every summary at run time — a dynamic access outside the static summary
// is a hard failure.
package analysis

import (
	"fmt"
	"strings"

	"fluidicl/internal/clc"
)

// IndexClass classifies the index expressions a kernel uses to access one
// buffer argument, joined over all accesses of a kind (worst wins).
type IndexClass int

// Index classes, ordered worst (least provable) to best.
const (
	// IdxUnknown: at least one index could not be proven affine or uniform
	// (loop-carried values, loads, modulo arithmetic, ...).
	IdxUnknown IndexClass = iota
	// IdxUniform: every index is the same value for all work-items
	// (constants, scalar parameters). Uniform stores are races.
	IdxUniform
	// IdxAffine: every index is an affine function of the global id with
	// uniform (constant or scalar-parameter) coefficients — the access is
	// provably confined to the work-item's own slice of the index space.
	IdxAffine
	// IdxNone: the argument has no accesses of this kind.
	IdxNone
)

func (c IndexClass) String() string {
	switch c {
	case IdxUniform:
		return "uniform"
	case IdxAffine:
		return "affine(gid)"
	case IdxNone:
		return "none"
	}
	return "unknown"
}

func mergeClass(a, b IndexClass) IndexClass {
	if a < b {
		return a
	}
	return b
}

// ArgSummary is the access summary for one pointer parameter.
type ArgSummary struct {
	Name  string
	Index int // parameter position
	Space clc.AddrSpace
	Elem  clc.ScalarKind

	Read    bool
	Written bool

	ReadIdx  IndexClass
	WriteIdx IndexClass

	// SlotExact: every store index is provably exactly the work-item's
	// flattened global id (get_global_id(0) in a 1-D launch, unit
	// coefficient, zero offset). Work-item i writes word i and nothing
	// else, which lets the runtime ship, merge and re-execute the
	// argument's slice by range.
	SlotExact bool

	// Refs are the strided-summary forms of every access the second-
	// generation walker could express (strided.go); Rejects name the sites
	// and reasons where it could not. An argument's writes (reads) are
	// fully summarized iff no Reject with the matching Store flag exists.
	Refs    []StridedRef
	Rejects []Reject
}

// WritesComplete reports that every store to the argument is captured by
// a strided ref.
func (a *ArgSummary) WritesComplete() bool {
	for _, r := range a.Rejects {
		if r.Store {
			return false
		}
	}
	return true
}

// ReadsComplete reports that every load of the argument is captured by a
// strided ref.
func (a *ArgSummary) ReadsComplete() bool {
	for _, r := range a.Rejects {
		if !r.Store {
			return false
		}
	}
	return true
}

// ReadOnly reports a read-never-written argument.
func (a *ArgSummary) ReadOnly() bool { return a.Read && !a.Written }

// WriteOnly reports a written-never-read argument.
func (a *ArgSummary) WriteOnly() bool { return a.Written && !a.Read }

func (a *ArgSummary) accessString() string {
	switch {
	case a.Read && a.Written:
		return "read-write"
	case a.Written:
		return "write-only"
	case a.Read:
		return "read-only"
	}
	return "unused"
}

// BarrierSite is one barrier() call site.
type BarrierSite struct {
	Pos clc.Pos
	// Divergent: the barrier is control-dependent on get_global_id or
	// get_local_id, so work-items of one group may disagree on reaching it
	// — undefined behaviour in OpenCL.
	Divergent bool
}

// KernelSummary is the analyzer's result for one kernel.
type KernelSummary struct {
	Name     string
	Params   []string     // all parameter names, declaration order
	Args     []ArgSummary // pointer parameters, declaration order
	Barriers []BarrierSite
	Races    int // inter-work-item race diagnostics found
	// LocalStores: the kernel stores to a declared __local array, which
	// the strided footprints do not model.
	LocalStores bool
	Diags       []clc.Diag
}

// Arg returns the summary for the named pointer parameter, or nil.
func (ks *KernelSummary) Arg(name string) *ArgSummary {
	for i := range ks.Args {
		if ks.Args[i].Name == name {
			return &ks.Args[i]
		}
	}
	return nil
}

// ArgIndex returns the position of the named pointer parameter within
// Args, or -1.
func (ks *KernelSummary) ArgIndex(name string) int {
	for i := range ks.Args {
		if ks.Args[i].Name == name {
			return i
		}
	}
	return -1
}

// HasDivergentBarrier reports whether any barrier sits under
// work-item-divergent control flow.
func (ks *KernelSummary) HasDivergentBarrier() bool {
	for _, b := range ks.Barriers {
		if b.Divergent {
			return true
		}
	}
	return false
}

// WritesSlotExactOnly reports whether every written pointer argument is a
// write-only __global buffer with slot-exact stores. Such kernels are
// idempotent under re-execution of any work-item subset: re-running item i
// recomputes exactly word i of each output from unwritten inputs.
func (ks *KernelSummary) WritesSlotExactOnly() bool {
	any := false
	for i := range ks.Args {
		a := &ks.Args[i]
		if !a.Written {
			continue
		}
		any = true
		if a.Read || a.Space != clc.SpaceGlobal || !a.SlotExact {
			return false
		}
	}
	return any
}

// String renders the summary in the golden-file format.
func (ks *KernelSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s:\n", ks.Name)
	for i := range ks.Args {
		a := &ks.Args[i]
		fmt.Fprintf(&b, "  arg %-8s %s %s* %s", a.Name, a.Space, a.Elem, a.accessString())
		if a.Read {
			fmt.Fprintf(&b, ", reads %s", a.ReadIdx)
		}
		if a.Written {
			fmt.Fprintf(&b, ", writes %s", a.WriteIdx)
			if a.SlotExact {
				b.WriteString(" slot-exact")
			}
		}
		b.WriteString("\n")
		for j := range a.Refs {
			fmt.Fprintf(&b, "    ref %s\n", a.Refs[j].String(ks.Params))
		}
		for _, rej := range a.Rejects {
			fmt.Fprintf(&b, "    %s\n", rej.String())
		}
	}
	if ks.LocalStores {
		b.WriteString("  local-stores\n")
	}
	for _, site := range ks.Barriers {
		div := ""
		if site.Divergent {
			div = " DIVERGENT"
		}
		fmt.Fprintf(&b, "  barrier at %s%s\n", site.Pos, div)
	}
	for _, d := range ks.Diags {
		fmt.Fprintf(&b, "  diag %s\n", d)
	}
	return b.String()
}

// ProgramSummary is the analyzer's result for a translation unit.
type ProgramSummary struct {
	Kernels map[string]*KernelSummary
	Order   []string   // kernel names in source order
	Diags   []clc.Diag // all kernels' diagnostics, in source order
}

// AnalyzeSource parses, checks and analyzes MiniCL source. file labels
// diagnostics; the returned error covers parse/sema failures only (lint
// findings are in the summary).
func AnalyzeSource(src, file string) (*ProgramSummary, error) {
	prog, err := clc.Parse(src)
	if err != nil {
		return nil, positionError(err, file)
	}
	if _, err := clc.Check(prog); err != nil {
		return nil, positionError(err, file)
	}
	return AnalyzeProgram(prog, file), nil
}

// positionError attaches the file name to a positioned front-end error.
func positionError(err error, file string) error {
	if e, ok := err.(*clc.Error); ok && file != "" {
		return clc.Diag{File: file, Pos: e.Pos, Msg: e.Msg}
	}
	return err
}

// AnalyzeProgram analyzes a parsed program (checked or not).
func AnalyzeProgram(prog *clc.Program, file string) *ProgramSummary {
	ps := &ProgramSummary{Kernels: make(map[string]*KernelSummary)}
	for _, k := range prog.Kernels {
		ks := AnalyzeKernel(k, file)
		ps.Kernels[k.Name] = ks
		ps.Order = append(ps.Order, k.Name)
		ps.Diags = append(ps.Diags, ks.Diags...)
	}
	return ps
}
