package analysis

// Launch-time evaluation of strided summaries: interval-set footprints per
// work-item / work-group / launch, an exact disjointness test on
// arithmetic progressions (extended-gcd alignment plus CRT), hull and
// cover queries for the transfer planner, and the work-group
// noninterference verdict the VM's second-chance certificate consumes.

import "fluidicl/internal/clc"

// Prog is the arithmetic progression {Lo + k*Stride : 0 <= k < N} with
// Stride >= 1 and N >= 1.
type Prog struct {
	Lo, Stride, N int64
}

func (p Prog) hi() int64 { return p.Lo + p.Stride*(p.N-1) }

func (p Prog) contains(v int64) bool {
	return v >= p.Lo && v <= p.hi() && (v-p.Lo)%p.Stride == 0
}

// Pset is a set of int64 indices as a union of arithmetic progressions.
// Exact is false when composition had to over-approximate (the set then
// still contains every real index — sound for disjointness and hulls, not
// for cover).
type Pset struct {
	Progs []Prog
	Exact bool
}

// Empty reports an empty set.
func (s *Pset) Empty() bool { return len(s.Progs) == 0 }

// Hull returns the [lo, hi] word hull, with ok=false when empty.
func (s *Pset) Hull() (lo, hi int64, ok bool) {
	if len(s.Progs) == 0 {
		return 0, 0, false
	}
	lo, hi = s.Progs[0].Lo, s.Progs[0].hi()
	for _, p := range s.Progs[1:] {
		if p.Lo < lo {
			lo = p.Lo
		}
		if h := p.hi(); h > hi {
			hi = h
		}
	}
	return lo, hi, true
}

// maxProgs bounds set growth during composition; past it the set collapses
// to a single gcd-strided hull progression (inexact).
const maxProgs = 16

// compose adds the progression {off*k' : ...} — concretely, stride s2
// taken n2 times starting at relative 0 — to every element of the set.
func (s *Pset) compose(s2, n2 int64) {
	if n2 <= 0 {
		s.Progs = s.Progs[:0]
		return
	}
	if s2 < 0 {
		// Reverse the direction: same set, positive stride.
		shift := s2 * (n2 - 1)
		for i := range s.Progs {
			s.Progs[i].Lo += shift
		}
		s2 = -s2
	}
	if s2 == 0 || n2 == 1 {
		return
	}
	var out []Prog
	exact := s.Exact
	for _, p := range s.Progs {
		switch {
		case p.N == 1:
			out = append(out, Prog{Lo: p.Lo, Stride: s2, N: n2})
		case s2 == p.Stride:
			out = append(out, Prog{Lo: p.Lo, Stride: p.Stride, N: p.N + n2 - 1})
		case s2 >= p.Stride*p.N && n2 <= maxProgs:
			// The new stride clears the old span: n2 shifted copies.
			for k := int64(0); k < n2; k++ {
				out = append(out, Prog{Lo: p.Lo + k*s2, Stride: p.Stride, N: p.N})
			}
		case p.Stride >= s2*n2 && p.N <= maxProgs:
			// Symmetric: old stride clears the new span.
			for k := int64(0); k < p.N; k++ {
				out = append(out, Prog{Lo: p.Lo + k*p.Stride, Stride: s2, N: n2})
			}
		default:
			// Interleaved: gcd-strided hull, over-approximate.
			g := gcd64(p.Stride, s2)
			span := p.Stride*(p.N-1) + s2*(n2-1)
			out = append(out, Prog{Lo: p.Lo, Stride: g, N: span/g + 1})
			exact = false
		}
	}
	if len(out) > maxProgs {
		// Collapse to one hull progression.
		g := out[0].Stride
		lo, hi := out[0].Lo, out[0].hi()
		for _, p := range out[1:] {
			g = gcd64(g, p.Stride)
			g = gcd64(g, absDiff(p.Lo, lo))
			if p.Lo < lo {
				lo = p.Lo
			}
			if h := p.hi(); h > hi {
				hi = h
			}
		}
		if g <= 0 {
			g = 1
		}
		out = []Prog{{Lo: lo, Stride: g, N: (hi-lo)/g + 1}}
		exact = false
	}
	s.Progs = out
	s.Exact = exact
}

func absDiff(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Footprint evaluates the reference's may-footprint (guards ignored) for
// one work-item. ok is false on evaluation failure (missing parameter,
// overflow).
func (r *StridedRef) Footprint(c *EvalCtx, it ItemCtx) (Pset, bool) {
	base, ok := r.Base.Eval(c, it)
	if !ok {
		return Pset{}, false
	}
	s := Pset{Progs: []Prog{{Lo: base, Stride: 1, N: 1}}, Exact: true}
	for _, iv := range r.IVs {
		coef, ok1 := iv.Coef.Eval(c)
		lo, ok2 := iv.Lo.Eval(c, it)
		hi, ok3 := iv.Hi.Eval(c, it)
		if !ok1 || !ok2 || !ok3 || iv.Step <= 0 {
			return Pset{}, false
		}
		if hi <= lo {
			return Pset{Exact: true}, true // zero iterations: empty
		}
		n := (hi-1-lo)/iv.Step + 1
		if coef != 0 && (coef > evalMagLimit/n || coef < -evalMagLimit/n) {
			return Pset{}, false
		}
		// Shift the base by coef*lo, then compose the per-step stride.
		for i := range s.Progs {
			s.Progs[i].Lo += coef * lo
		}
		s.compose(coef*iv.Step, n)
	}
	return s, true
}

// MustHold reports whether the access provably executes for this item:
// not may-only and every affine guard satisfied. ok is false on
// evaluation failure.
func (r *StridedRef) MustHold(c *EvalCtx, it ItemCtx) (hold, ok bool) {
	if r.MayOnly {
		return false, true
	}
	for _, g := range r.Guards {
		h, ok := g.Eval(c, it)
		if !ok {
			return false, false
		}
		if !h {
			return false, true
		}
	}
	return true, true
}

// progsDisjoint reports provable disjointness of two progressions. False
// means "may overlap" — exact for in-range arithmetic, conservative when
// magnitudes defeat the CRT step.
func progsDisjoint(a, b Prog) bool {
	aHi, bHi := a.hi(), b.hi()
	if a.Lo > bHi || b.Lo > aHi {
		return true
	}
	if a.N == 1 {
		return !b.contains(a.Lo)
	}
	if b.N == 1 {
		return !a.contains(b.Lo)
	}
	g := gcd64(a.Stride, b.Stride)
	if (b.Lo-a.Lo)%g != 0 {
		return true
	}
	bg := b.Stride / g
	if bg > 1<<31 || a.Stride > evalMagLimit/bg {
		return false // give up: may overlap
	}
	lcm := a.Stride * bg
	// Solve x = a.Lo + a.Stride*k with x ≡ b.Lo (mod b.Stride):
	// k ≡ d * inv(ag) (mod bg) where d = (b.Lo-a.Lo)/g, ag = a.Stride/g.
	d := (b.Lo - a.Lo) / g
	ag := a.Stride / g
	inv, ok := modInverse(floorMod(ag, bg), bg)
	if !ok {
		return false
	}
	k0 := floorMod(floorMod(d, bg)*inv, bg)
	x0 := a.Lo + a.Stride*k0
	lo := a.Lo
	if b.Lo > lo {
		lo = b.Lo
	}
	if x0 < lo {
		x0 += ((lo - x0 + lcm - 1) / lcm) * lcm
	}
	hi := aHi
	if bHi < hi {
		hi = bHi
	}
	return x0 > hi
}

func floorMod(a, m int64) int64 {
	if m <= 0 {
		return 0
	}
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// modInverse returns a^-1 mod m (m >= 1) via the extended Euclid
// algorithm; ok is false when a and m are not coprime.
func modInverse(a, m int64) (int64, bool) {
	if m == 1 {
		return 0, true
	}
	g, x, _ := extGCD(a, m)
	if g != 1 {
		return 0, false
	}
	return floorMod(x, m), true
}

func extGCD(a, b int64) (g, x, y int64) {
	if b == 0 {
		return a, 1, 0
	}
	g, x1, y1 := extGCD(b, a%b)
	return g, y1, x1 - (a/b)*y1
}

// PsetsDisjoint reports provable disjointness of two footprints.
func PsetsDisjoint(a, b *Pset) bool {
	for _, p := range a.Progs {
		for _, q := range b.Progs {
			if !progsDisjoint(p, q) {
				return false
			}
		}
	}
	return true
}

// ---- launch-level evaluation ----

// LaunchShape describes the (possibly sliced) grid a summary is evaluated
// against. NumGroups is what get_num_groups reports (the full grid);
// Base/Count select the slice of groups actually executed.
type LaunchShape struct {
	Dims      int
	Local     [3]int64
	NumGroups [3]int64
	Base      [3]int64
	Count     [3]int64
}

// Ctx builds the evaluation context for this shape.
func (sh *LaunchShape) Ctx(params []int64) *EvalCtx {
	return &EvalCtx{Params: params, Local: sh.Local, Groups: sh.NumGroups}
}

// Items returns the number of work-items per group.
func (sh *LaunchShape) Items() int64 { return sh.Local[0] * sh.Local[1] * sh.Local[2] }

// groupAt decomposes a flat slice-relative group index (x fastest).
func (sh *LaunchShape) groupAt(flat int64) [3]int64 {
	g0 := sh.Base[0] + flat%sh.Count[0]
	g1 := sh.Base[1] + (flat/sh.Count[0])%sh.Count[1]
	g2 := sh.Base[2] + flat/(sh.Count[0]*sh.Count[1])
	return [3]int64{g0, g1, g2}
}

// itemAt builds the work-item context for local flat index t of group grp.
func (sh *LaunchShape) itemAt(grp [3]int64, t int64) ItemCtx {
	var it ItemCtx
	it.Grp = grp
	it.Lid[0] = t % sh.Local[0]
	it.Lid[1] = (t / sh.Local[0]) % sh.Local[1]
	it.Lid[2] = t / (sh.Local[0] * sh.Local[1])
	for d := 0; d < 3; d++ {
		it.Gid[d] = grp[d]*sh.Local[d] + it.Lid[d]
	}
	return it
}

// Verdict is the outcome of a launch-time certificate query, with a
// machine-readable reason when it fails.
type Verdict struct {
	OK     bool
	Reason string // "local-store", "unknown-store", "unknown-read", "overlap", "budget"
	Pos    clc.Pos
}

// Certificate failure reasons.
const (
	VerdictLocalStore   = "local-store"
	VerdictUnknownStore = "unknown-store"
	VerdictUnknownRead  = "unknown-read"
	VerdictOverlap      = "overlap"
	VerdictBudget       = "budget"
)

// CertifyGroupDisjoint proves per-work-item noninterference within every
// work-group of the launch: for any two items t != u of one group and
// every written global argument, W(t) ∩ W(u) = ∅ and W(t) ∩ R(u) = ∅
// (may-footprints, so real accesses are covered). Arguments that are
// never written are unconstrained (gather-only admission). budget bounds
// the number of footprint evaluations + pairwise tests.
func (ks *KernelSummary) CertifyGroupDisjoint(sh LaunchShape, params []int64, budget int64) Verdict {
	if ks.LocalStores {
		return Verdict{Reason: VerdictLocalStore}
	}
	type argRefs struct {
		w, r []*StridedRef
	}
	var args []argRefs
	for i := range ks.Args {
		a := &ks.Args[i]
		if !a.Written || a.Space != clc.SpaceGlobal {
			continue
		}
		for _, rej := range a.Rejects {
			if rej.Store {
				return Verdict{Reason: VerdictUnknownStore, Pos: rej.Pos}
			}
			return Verdict{Reason: VerdictUnknownRead, Pos: rej.Pos}
		}
		var ar argRefs
		for j := range a.Refs {
			r := &a.Refs[j]
			if r.Store {
				ar.w = append(ar.w, r)
			}
			if !r.Store || r.AlsoRead {
				ar.r = append(ar.r, r)
			}
		}
		if len(ar.w) > 0 {
			args = append(args, ar)
		}
	}
	if len(args) == 0 {
		return Verdict{OK: true}
	}

	L := sh.Items()
	ng := sh.Count[0] * sh.Count[1] * sh.Count[2]
	var pairWork int64
	for _, ar := range args {
		w, r := int64(len(ar.w)), int64(len(ar.r))
		pairWork += w*w + 2*w*r
	}
	if L > 1 && ng*(L*(L-1)/2)*pairWork > budget {
		return Verdict{Reason: VerdictBudget}
	}

	c := sh.Ctx(params)
	// Per-group scratch: footprints of every item's refs.
	type itemFP struct {
		w, r []Pset
	}
	fps := make([][]itemFP, len(args))
	for ai := range fps {
		fps[ai] = make([]itemFP, L)
	}
	for g := int64(0); g < ng; g++ {
		grp := sh.groupAt(g)
		for t := int64(0); t < L; t++ {
			it := sh.itemAt(grp, t)
			for ai, ar := range args {
				fp := &fps[ai][t]
				fp.w, fp.r = fp.w[:0], fp.r[:0]
				for _, ref := range ar.w {
					ps, ok := ref.Footprint(c, it)
					if !ok {
						return Verdict{Reason: VerdictUnknownStore, Pos: ref.Pos}
					}
					fp.w = append(fp.w, ps)
				}
				for _, ref := range ar.r {
					ps, ok := ref.Footprint(c, it)
					if !ok {
						return Verdict{Reason: VerdictUnknownRead, Pos: ref.Pos}
					}
					fp.r = append(fp.r, ps)
				}
			}
		}
		for ai, ar := range args {
			for t := int64(0); t < L; t++ {
				for u := t + 1; u < L; u++ {
					ft, fu := &fps[ai][t], &fps[ai][u]
					for wi := range ft.w {
						for wj := range fu.w {
							if !PsetsDisjoint(&ft.w[wi], &fu.w[wj]) {
								return Verdict{Reason: VerdictOverlap, Pos: ar.w[wi].Pos}
							}
						}
						for rj := range fu.r {
							if !PsetsDisjoint(&ft.w[wi], &fu.r[rj]) {
								return Verdict{Reason: VerdictOverlap, Pos: ar.w[wi].Pos}
							}
						}
					}
					for wj := range fu.w {
						for ri := range ft.r {
							if !PsetsDisjoint(&fu.w[wj], &ft.r[ri]) {
								return Verdict{Reason: VerdictOverlap, Pos: ar.w[wj].Pos}
							}
						}
					}
				}
			}
		}
	}
	return Verdict{OK: true}
}

// ---- hull and cover queries for the transfer planner ----

// Span is a half-open word-index range; empty when Lo >= Hi.
type Span struct {
	Lo, Hi int64
}

// Empty reports an empty span.
func (s Span) Empty() bool { return s.Lo >= s.Hi }

// Union returns the smallest span containing both.
func (s Span) Union(o Span) Span {
	if s.Empty() {
		return o
	}
	if o.Empty() {
		return s
	}
	if o.Lo < s.Lo {
		s.Lo = o.Lo
	}
	if o.Hi > s.Hi {
		s.Hi = o.Hi
	}
	return s
}

// ArgWrites is the launch-level write footprint of one argument.
type ArgWrites struct {
	// GroupSpans[g] is the word hull of every may-write of flat group g
	// (slice-relative flat index, x fastest).
	GroupSpans []Span
	// Hull is the union of all group spans.
	Hull Span
	// MustCover reports that unguarded (must) writes provably cover every
	// word of [0, words): no pre-launch byte of the buffer survives.
	MustCover bool
}

// maxCoverSpans bounds the cover accumulator; kernels whose must-writes
// fragment past this give up on cover (hulls are unaffected).
const maxCoverSpans = 4096

// EvalArgWrites evaluates the write footprint of argument argIdx over the
// launch. ok is false when the argument's stores are not fully summarized
// (a store Reject exists), when evaluation fails, or when the work exceeds
// budget (footprint evaluations).
func (ks *KernelSummary) EvalArgWrites(argIdx int, sh LaunchShape, params []int64, words int64, budget int64) (ArgWrites, bool) {
	if argIdx < 0 || argIdx >= len(ks.Args) {
		return ArgWrites{}, false
	}
	a := &ks.Args[argIdx]
	for _, rej := range a.Rejects {
		if rej.Store {
			return ArgWrites{}, false
		}
	}
	var wrefs []*StridedRef
	for j := range a.Refs {
		if a.Refs[j].Store {
			wrefs = append(wrefs, &a.Refs[j])
		}
	}
	L := sh.Items()
	ng := sh.Count[0] * sh.Count[1] * sh.Count[2]
	if ng <= 0 || L <= 0 {
		return ArgWrites{}, false
	}
	if len(wrefs) == 0 {
		return ArgWrites{GroupSpans: make([]Span, ng)}, true
	}
	if ng*L*int64(len(wrefs)) > budget {
		return ArgWrites{}, false
	}

	c := sh.Ctx(params)
	out := ArgWrites{GroupSpans: make([]Span, ng)}
	var cover coverAcc
	coverOK := words > 0
	for g := int64(0); g < ng; g++ {
		grp := sh.groupAt(g)
		var span Span
		for t := int64(0); t < L; t++ {
			it := sh.itemAt(grp, t)
			for _, ref := range wrefs {
				ps, ok := ref.Footprint(c, it)
				if !ok {
					return ArgWrites{}, false
				}
				if lo, hi, ok := ps.Hull(); ok {
					span = span.Union(Span{Lo: lo, Hi: hi + 1})
				}
				if !coverOK || ps.Empty() {
					continue
				}
				must, ok := ref.MustHold(c, it)
				if !ok || !must || !ps.Exact {
					continue
				}
				for _, p := range ps.Progs {
					if p.Stride == 1 || p.N == 1 {
						if !cover.add(Span{Lo: p.Lo, Hi: p.Lo + (p.N-1)*p.Stride + 1}) {
							coverOK = false
							break
						}
					} else {
						// Strided must-writes: add each element's point only
						// for small counts, else give up on cover.
						if p.N > 64 {
							coverOK = false
							break
						}
						for k := int64(0); k < p.N; k++ {
							if !cover.add(Span{Lo: p.Lo + k*p.Stride, Hi: p.Lo + k*p.Stride + 1}) {
								coverOK = false
								break
							}
						}
					}
				}
			}
		}
		out.GroupSpans[g] = span
		out.Hull = out.Hull.Union(span)
	}
	if coverOK {
		out.MustCover = cover.covers(Span{Lo: 0, Hi: words})
	}
	return out, true
}

// HullRange returns the union of GroupSpans[lo:hi) (indices clamped): the
// word hull of everything flat groups [lo, hi) may write.
func (w *ArgWrites) HullRange(lo, hi int64) Span {
	if lo < 0 {
		lo = 0
	}
	if n := int64(len(w.GroupSpans)); hi > n {
		hi = n
	}
	var s Span
	for g := lo; g < hi; g++ {
		s = s.Union(w.GroupSpans[g])
	}
	return s
}

// Monotone reports that the nonempty group spans are pairwise disjoint and
// ascend with the flat group id: each span begins at or after the previous
// nonempty span's end. Under monotone spans the hull of any group suffix
// [lo, ng) can never overlap a word that a group below lo may write — the
// property that makes narrowed ships sound even when the pre-launch upload
// of a stale GPU copy was elided (the shipped bytes then carry the CPU's
// newer data for words only the shipped chunk's groups can own).
func (w *ArgWrites) Monotone() bool {
	seen := false
	var prevHi int64
	for _, s := range w.GroupSpans {
		if s.Empty() {
			continue
		}
		if seen && s.Lo < prevHi {
			return false
		}
		prevHi = s.Hi
		seen = true
	}
	return true
}

// coverAcc accumulates must-written spans as a sorted disjoint list.
// Insertion is O(1) for the common append-or-extend pattern of row-major
// kernels and O(n) otherwise.
type coverAcc struct {
	spans []Span
}

// add merges sp; returns false when the accumulator fragments past budget.
func (c *coverAcc) add(sp Span) bool {
	if sp.Empty() {
		return true
	}
	n := len(c.spans)
	// Fast path: extend or append at the end.
	if n == 0 || c.spans[n-1].Hi < sp.Lo {
		if n > 0 && c.spans[n-1].Hi == sp.Lo {
			c.spans[n-1].Hi = sp.Hi
			return true
		}
		c.spans = append(c.spans, sp)
		return len(c.spans) <= maxCoverSpans
	}
	if c.spans[n-1].Hi >= sp.Lo && c.spans[n-1].Lo <= sp.Lo {
		if sp.Hi > c.spans[n-1].Hi {
			c.spans[n-1].Hi = sp.Hi
		}
		return true
	}
	// General path: binary search for the first span ending at or after
	// sp.Lo, then merge every overlapping/adjacent span.
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if c.spans[mid].Hi < sp.Lo {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo
	if i == n || c.spans[i].Lo > sp.Hi {
		c.spans = append(c.spans, Span{})
		copy(c.spans[i+1:], c.spans[i:])
		c.spans[i] = sp
		return len(c.spans) <= maxCoverSpans
	}
	j := i
	for j < n && c.spans[j].Lo <= sp.Hi {
		if c.spans[j].Lo < sp.Lo {
			sp.Lo = c.spans[j].Lo
		}
		if c.spans[j].Hi > sp.Hi {
			sp.Hi = c.spans[j].Hi
		}
		j++
	}
	c.spans[i] = sp
	c.spans = append(c.spans[:i+1], c.spans[j:]...)
	return true
}

// covers reports whether the accumulated spans cover want entirely.
func (c *coverAcc) covers(want Span) bool {
	if want.Empty() {
		return true
	}
	for _, sp := range c.spans {
		if sp.Lo <= want.Lo && sp.Hi >= want.Hi {
			return true
		}
	}
	return false
}

// ---- static out-of-bounds lint support ----

// StaticMin returns the smallest index the reference can produce assuming
// every id is >= 0, when that minimum is a compile-time constant (no
// parameter or launch-constant dependence in the relevant terms). ok is
// false when the minimum is not statically known.
func (r *StridedRef) StaticMin() (int64, bool) {
	kc, ok := r.Base.K.isConst()
	if !ok {
		return 0, false
	}
	min := kc
	// Id coefficients must be nonnegative constants so id=0 minimizes.
	for d := 0; d < 3; d++ {
		for _, u := range []*UExpr{r.Base.Gid[d], r.Base.Lid[d], r.Base.Grp[d]} {
			c, ok := u.isConst()
			if !ok || c < 0 {
				return 0, false
			}
		}
	}
	for _, iv := range r.IVs {
		coef, ok1 := iv.Coef.isConst()
		lo, ok2 := iv.Lo.uniformConst()
		hiA, ok3 := iv.Hi.uniformConst()
		if !ok1 || !ok2 || !ok3 {
			return 0, false
		}
		if hiA <= lo {
			return 0, false // zero iterations: no access
		}
		n := (hiA-1-lo)/iv.Step + 1
		last := lo + (n-1)*iv.Step
		if coef >= 0 {
			min += coef * lo
		} else {
			min += coef * last
		}
	}
	return min, true
}

// uniformConst reports a fully constant affine expression's value.
func (a AffExpr) uniformConst() (int64, bool) {
	u, ok := a.uniform()
	if !ok {
		return 0, false
	}
	return u.isConst()
}
