package analysis

import (
	"math/rand"
	"strings"
	"testing"
)

// enumerate expands a progression into its member set.
func enumerate(p Prog) map[int64]bool {
	m := make(map[int64]bool, p.N)
	for k := int64(0); k < p.N; k++ {
		m[p.Lo+k*p.Stride] = true
	}
	return m
}

func bruteDisjoint(a, b Prog) bool {
	am := enumerate(a)
	for v := range enumerate(b) {
		if am[v] {
			return false
		}
	}
	return true
}

// TestProgsDisjointBrute checks the gcd/CRT disjointness test against brute
// force on random small progressions. For in-range arithmetic the test is
// exact, so the verdicts must agree in both directions.
func TestProgsDisjointBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		a := Prog{Lo: rng.Int63n(40) - 20, Stride: 1 + rng.Int63n(12), N: 1 + rng.Int63n(20)}
		b := Prog{Lo: rng.Int63n(40) - 20, Stride: 1 + rng.Int63n(12), N: 1 + rng.Int63n(20)}
		got, want := progsDisjoint(a, b), bruteDisjoint(a, b)
		if got != want {
			t.Fatalf("progsDisjoint(%+v, %+v) = %v, brute force = %v", a, b, got, want)
		}
	}
}

// TestPsetComposeBrute drives compose with random strides and checks the
// resulting set against brute-force enumeration: always a superset, and
// equal whenever the set claims exactness.
func TestPsetComposeBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		base := rng.Int63n(50)
		s := Pset{Progs: []Prog{{Lo: base, Stride: 1, N: 1}}, Exact: true}
		want := map[int64]bool{base: true}
		steps := 1 + rng.Intn(3)
		for j := 0; j < steps; j++ {
			stride := rng.Int63n(15) - 7
			n := 1 + rng.Int63n(8)
			s.compose(stride, n)
			next := make(map[int64]bool)
			for v := range want {
				for k := int64(0); k < n; k++ {
					next[v+k*stride] = true
				}
			}
			want = next
		}
		got := make(map[int64]bool)
		for _, p := range s.Progs {
			for v := range enumerate(p) {
				got[v] = true
			}
		}
		for v := range want {
			if !got[v] {
				t.Fatalf("compose lost member %d (iter %d): progs %+v", v, i, s.Progs)
			}
		}
		if s.Exact {
			for v := range got {
				if !want[v] {
					t.Fatalf("exact set has phantom member %d (iter %d): progs %+v", v, i, s.Progs)
				}
			}
		}
	}
}

// mustAnalyze analyzes source and returns the single kernel's summary.
func mustAnalyze(t *testing.T, src string) *KernelSummary {
	t.Helper()
	ps, err := AnalyzeSource(src, "test.cl")
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if len(ps.Order) != 1 {
		t.Fatalf("want 1 kernel, got %d", len(ps.Order))
	}
	return ps.Kernels[ps.Order[0]]
}

func shape1D(local, groups int64) LaunchShape {
	return LaunchShape{
		Dims:      1,
		Local:     [3]int64{local, 1, 1},
		NumGroups: [3]int64{groups, 1, 1},
		Count:     [3]int64{groups, 1, 1},
	}
}

// TestFootprintStrided checks a strided scatter kernel's footprint against
// brute-force evaluation and verifies its work-group disjointness verdict.
func TestFootprintStrided(t *testing.T) {
	// Work-item g writes words {g, g+n, g+2n, ...}: column g of a row-major
	// n-column matrix. Distinct items touch distinct columns — disjoint.
	ks := mustAnalyze(t, `
__kernel void scatter(__global float* out, int n, int rows) {
    int g = get_global_id(0);
    for (int r = 0; r < rows; r++) {
        out[r * n + g] = 1.0f;
    }
}`)
	a := ks.Arg("out")
	if a == nil || !a.WritesComplete() || len(a.Refs) != 1 {
		t.Fatalf("out: unexpected summary\n%s", ks.String())
	}
	sh := shape1D(4, 2)
	params := []int64{0, 8, 5} // n=8, rows=5
	c := sh.Ctx(params)
	it := sh.itemAt([3]int64{1, 0, 0}, 2) // gid0 = 6
	fp, ok := a.Refs[0].Footprint(c, it)
	if !ok || !fp.Exact {
		t.Fatalf("footprint failed: ok=%v exact=%v", ok, fp.Exact)
	}
	got := make(map[int64]bool)
	for _, p := range fp.Progs {
		for v := range enumerate(p) {
			got[v] = true
		}
	}
	for r := int64(0); r < 5; r++ {
		if !got[r*8+6] {
			t.Fatalf("footprint missing word %d: %+v", r*8+6, fp.Progs)
		}
	}
	if len(got) != 5 {
		t.Fatalf("footprint has %d words, want 5: %+v", len(got), fp.Progs)
	}
	if v := ks.CertifyGroupDisjoint(sh, params, 1<<20); !v.OK {
		t.Fatalf("certify: want OK, got %q at %v", v.Reason, v.Pos)
	}
}

// TestCertifyVerdicts exercises each failure reason of the work-group
// disjointness certificate.
func TestCertifyVerdicts(t *testing.T) {
	sh := shape1D(4, 2)
	cases := []struct {
		name, src, reason string
		params            []int64
	}{
		{
			name: "overlap-group-uniform",
			src: `
__kernel void f(__global float* out) {
    int g = get_group_id(0);
    out[g] = 1.0f;
}`,
			reason: VerdictOverlap,
		},
		{
			name: "overlap-write-read",
			src: `
__kernel void f(__global float* buf, int n) {
    int g = get_global_id(0);
    float v = buf[g + 1];
    buf[g] = v;
}`,
			reason: VerdictOverlap,
			params: []int64{0, 8},
		},
		{
			name: "unknown-store-indirect",
			src: `
__kernel void f(__global float* out, __global int* idx) {
    int g = get_global_id(0);
    out[idx[g]] = 1.0f;
}`,
			reason: VerdictUnknownStore,
		},
		{
			name: "local-store",
			src: `
__kernel void f(__global float* out) {
    __local float tile[8];
    int l = get_local_id(0);
    tile[l] = 1.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = tile[l];
}`,
			reason: VerdictLocalStore,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ks := mustAnalyze(t, tc.src)
			v := ks.CertifyGroupDisjoint(sh, tc.params, 1<<20)
			if v.OK || v.Reason != tc.reason {
				t.Fatalf("want reason %q, got OK=%v reason=%q\n%s", tc.reason, v.OK, v.Reason, ks.String())
			}
		})
	}

	// Budget: same disjoint kernel, but a budget too small for the pair work.
	ks := mustAnalyze(t, `
__kernel void f(__global float* out) {
    out[get_global_id(0)] = 1.0f;
}`)
	if v := ks.CertifyGroupDisjoint(shape1D(64, 64), nil, 10); v.OK || v.Reason != VerdictBudget {
		t.Fatalf("want budget reject, got OK=%v reason=%q", v.OK, v.Reason)
	}
	if v := ks.CertifyGroupDisjoint(shape1D(64, 64), nil, 1<<30); !v.OK {
		t.Fatalf("slot-exact kernel with ample budget: want OK, got %q", v.Reason)
	}
}

// TestCertifyGatherOnly: arguments that are never written are unconstrained,
// even when their reads are indirect.
func TestCertifyGatherOnly(t *testing.T) {
	ks := mustAnalyze(t, `
__kernel void gather(__global float* out, __global float* in, __global int* idx) {
    int g = get_global_id(0);
    out[g] = in[idx[g]];
}`)
	if v := ks.CertifyGroupDisjoint(shape1D(8, 4), nil, 1<<20); !v.OK {
		t.Fatalf("gather-only kernel: want OK, got %q at %v", v.Reason, v.Pos)
	}
	in := ks.Arg("in")
	if in == nil || in.ReadsComplete() {
		t.Fatalf("in: expected an indirect-read reject\n%s", ks.String())
	}
	found := false
	for _, r := range in.Rejects {
		if r.Reason == RejIndirect && !r.Store {
			found = true
		}
	}
	if !found {
		t.Fatalf("in: want a %q read reject, got %+v", RejIndirect, in.Rejects)
	}
}

// TestRangeGuardNegation checks the subkernel range-guard pattern the CPU
// transform emits: the early return's negated condition must become an
// ambient guard on the store (|| decomposes under negation), keeping the
// store a must-access where the guards hold.
func TestRangeGuardNegation(t *testing.T) {
	ks := mustAnalyze(t, `
__kernel void f(__global float* out, int fcl_lo, int fcl_hi) {
    int fgid = get_group_id(0);
    if (fgid < fcl_lo || fgid > fcl_hi) {
        return;
    }
    out[get_global_id(0)] = 1.0f;
}`)
	a := ks.Arg("out")
	if a == nil || len(a.Refs) != 1 || !a.WritesComplete() {
		t.Fatalf("out: unexpected summary\n%s", ks.String())
	}
	ref := &a.Refs[0]
	if ref.MayOnly {
		t.Fatalf("store should be a must-access under its guards\n%s", ks.String())
	}
	if len(ref.Guards) != 2 {
		t.Fatalf("want 2 ambient guards from the negated range check, got %d\n%s",
			len(ref.Guards), ks.String())
	}
	sh := shape1D(4, 8)
	c := sh.Ctx([]int64{0, 2, 5}) // fcl_lo=2, fcl_hi=5
	inRange := sh.itemAt([3]int64{3, 0, 0}, 1)
	outRange := sh.itemAt([3]int64{7, 0, 0}, 1)
	if hold, ok := ref.MustHold(c, inRange); !ok || !hold {
		t.Fatalf("group 3 in [2,5]: want must-hold, got hold=%v ok=%v", hold, ok)
	}
	if hold, ok := ref.MustHold(c, outRange); !ok || hold {
		t.Fatalf("group 7 outside [2,5]: want not-held, got hold=%v ok=%v", hold, ok)
	}
}

// TestEvalArgWrites checks per-group hull spans and must-cover on a guarded
// slot-exact kernel and a 2-D row-major kernel.
func TestEvalArgWrites(t *testing.T) {
	ks := mustAnalyze(t, `
__kernel void f(__global float* out, int n) {
    int g = get_global_id(0);
    if (g < n) {
        out[g] = 1.0f;
    }
}`)
	sh := shape1D(4, 4)
	aw, ok := ks.EvalArgWrites(0, sh, []int64{0, 16}, 16, 1<<20)
	if !ok {
		t.Fatal("EvalArgWrites failed")
	}
	if len(aw.GroupSpans) != 4 {
		t.Fatalf("want 4 group spans, got %d", len(aw.GroupSpans))
	}
	for g, sp := range aw.GroupSpans {
		wantLo, wantHi := int64(g*4), int64(g*4+4)
		if sp.Lo != wantLo || sp.Hi != wantHi {
			t.Fatalf("group %d span [%d,%d), want [%d,%d)", g, sp.Lo, sp.Hi, wantLo, wantHi)
		}
	}
	if aw.Hull.Lo != 0 || aw.Hull.Hi != 16 {
		t.Fatalf("hull [%d,%d), want [0,16)", aw.Hull.Lo, aw.Hull.Hi)
	}
	if !aw.MustCover {
		t.Fatal("n=16 covers the whole buffer: want MustCover")
	}
	// n=12: the guard fails for the last group, so no full cover.
	aw, ok = ks.EvalArgWrites(0, sh, []int64{0, 12}, 16, 1<<20)
	if !ok || aw.MustCover {
		t.Fatalf("n=12 over 16 words: want no MustCover (ok=%v)", ok)
	}

	// Row-major 2-D fill: item (i) writes a whole row; cover via the
	// append-or-extend fast path.
	ks = mustAnalyze(t, `
__kernel void rows(__global float* out, int w) {
    int i = get_global_id(0);
    for (int j = 0; j < w; j++) {
        out[i * w + j] = 0.5f;
    }
}`)
	aw, ok = ks.EvalArgWrites(0, shape1D(4, 2), []int64{0, 8}, 64, 1<<20)
	if !ok || !aw.MustCover {
		t.Fatalf("8 rows x 8 cols: want MustCover, ok=%v must=%v", ok, aw.MustCover)
	}
	if aw.Hull.Lo != 0 || aw.Hull.Hi != 64 {
		t.Fatalf("hull [%d,%d), want [0,64)", aw.Hull.Lo, aw.Hull.Hi)
	}
}

// TestStaticOOBLint: a strided access with a provably negative minimum index
// and no guard produces the out-of-bounds diagnostic.
func TestStaticOOBLint(t *testing.T) {
	ks := mustAnalyze(t, `
__kernel void f(__global float* out) {
    out[get_global_id(0) - 5] = 1.0f;
}`)
	found := false
	for _, d := range ks.Diags {
		if strings.Contains(d.Msg, "provably out of bounds") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want out-of-bounds diag, got %v", ks.Diags)
	}

	// Guarded version must not fire.
	ks = mustAnalyze(t, `
__kernel void f(__global float* out) {
    int g = get_global_id(0);
    if (g >= 5) {
        out[g - 5] = 1.0f;
    }
}`)
	for _, d := range ks.Diags {
		if strings.Contains(d.Msg, "provably out of bounds") {
			t.Fatalf("guarded access should not fire the OOB lint: %v", d)
		}
	}
}

// TestRejectReasons covers the distinct precision-loss reasons the walker
// reports.
func TestRejectReasons(t *testing.T) {
	cases := []struct {
		name, src, reason string
		store             bool
	}{
		{
			name: "indirect",
			src: `
__kernel void f(__global float* out, __global int* idx) {
    out[idx[get_global_id(0)]] = 1.0f;
}`,
			reason: RejIndirect, store: true,
		},
		{
			name: "non-affine",
			src: `
__kernel void f(__global float* out) {
    int g = get_global_id(0);
    out[g * g] = 1.0f;
}`,
			reason: RejNonAffine, store: true,
		},
		{
			name: "loop-carried",
			src: `
__kernel void f(__global float* out, int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        acc = acc * 2 + 1;
        out[acc] = 1.0f;
    }
}`,
			reason: RejLoopCarried, store: true,
		},
		{
			name: "iv-step",
			src: `
__kernel void f(__global float* out, int n, int s) {
    for (int i = 0; i < n; i += s) {
        out[i] = 1.0f;
    }
}`,
			reason: RejIVStep, store: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ks := mustAnalyze(t, tc.src)
			a := ks.Arg("out")
			if a == nil {
				t.Fatal("no out arg")
			}
			for _, r := range a.Rejects {
				if r.Reason == tc.reason && r.Store == tc.store {
					return
				}
			}
			t.Fatalf("want %q store reject, got %+v\n%s", tc.reason, a.Rejects, ks.String())
		})
	}
}
