package analysis_test

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"fluidicl/internal/analysis"
	"fluidicl/internal/clc"
	"fluidicl/internal/polybench"
	"fluidicl/internal/vm"
)

// Differential validation of the static analyzer against the VM's dynamic
// access stats: for random generated kernels, every parameter the VM
// observed being read (written) must be marked readable (writable) in the
// static summary, and a store outside a slot-exact argument's slot range
// disproves the slot-exact claim. The static side may over-approximate;
// the dynamic side must never escape it — that soundness direction is what
// the runtime's transfer/merge elisions rely on.
func TestDynamicAccessWithinStaticSummary(t *testing.T) {
	const trials = 120
	n := 32
	for seed := 0; seed < trials; seed++ {
		src := vm.GenProgram(rand.New(rand.NewSource(int64(2000 + seed))))

		ps, err := analysis.AnalyzeSource(src, "gen")
		if err != nil {
			t.Fatalf("seed %d: analyze: %v\n%s", seed, err, src)
		}
		ks := ps.Kernels["diff"]
		if ks == nil {
			t.Fatalf("seed %d: no summary for kernel diff", seed)
		}

		ki, err := clc.FindKernelInfo(src, "diff")
		if err != nil {
			t.Fatalf("seed %d: check: %v\n%s", seed, err, src)
		}
		k, err := vm.Compile(ki)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}

		fb := make([]byte, 4*n)
		ib := make([]byte, 4*n)
		r := rand.New(rand.NewSource(int64(seed) * 11))
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(fb[4*i:], math.Float32bits(float32(r.Float64()*16-8)))
			binary.LittleEndian.PutUint32(ib[4*i:], uint32(int32(r.Intn(41)-20)))
		}
		nd := vm.NewNDRange1D(n, 16)
		args := []vm.Arg{
			vm.BufArg(fb), vm.BufArg(ib),
			vm.IntArg(int64(n)), vm.IntArg(int64(seed%13 - 6)), vm.FloatArg(float64(seed%17)/3 - 2),
		}
		st, err := k.ExecLaunch(nd, args, vm.ExecOpts{})
		if err != nil {
			t.Fatalf("seed %d: exec: %v\n%s", seed, err, src)
		}

		for ai := range ks.Args {
			sa := &ks.Args[ai]
			slot := uint(sa.Index)
			if st.ParamReadMask&(1<<slot) != 0 && !sa.Read {
				t.Errorf("seed %d: VM read param %q but summary says %s\n%s",
					seed, sa.Name, ks, src)
			}
			if st.ParamWriteMask&(1<<slot) != 0 && !sa.Written {
				t.Errorf("seed %d: VM wrote param %q but summary says %s\n%s",
					seed, sa.Name, ks, src)
			}
			if sa.SlotExact && sa.Index < len(st.WrLo) && st.ParamWriteMask&(1<<slot) != 0 {
				items := nd.TotalGroups() * nd.WorkItemsPerGroup()
				if st.WrLo[sa.Index] < 0 || int(st.WrHi[sa.Index]) > 4*items {
					t.Errorf("seed %d: slot-exact param %q wrote bytes [%d,%d) outside [0,%d)\n%s",
						seed, sa.Name, st.WrLo[sa.Index], st.WrHi[sa.Index], 4*items, src)
				}
			}
		}
	}
}

// TestPolybenchDynamicAgreement executes every Polybench kernel once on the
// VM with benchmark-shaped arguments and checks the dynamic access masks
// against the analyzer's classification of each __global argument — the
// acceptance bar for the summaries the runtime trusts.
func TestPolybenchDynamicAgreement(t *testing.T) {
	type launch struct {
		name   string
		src    string
		kernel string
		nd     vm.NDRange
		// words per buffer argument, scalars given literally
		mk func(n int) []vm.Arg
		n  int
	}
	// A small representative size; local sizes mirror the benchmarks'.
	const n = 64
	bicgSrc := sourceOf(t, "BICG")
	gesummvSrc := sourceOf(t, "GESUMMV")
	ataxSrc := sourceOf(t, "ATAX")
	mvtSrc := sourceOf(t, "MVT")
	gemmSrc := sourceOf(t, "GEMM")
	convSrc := sourceOf(t, "2DCONV")
	syrkSrc := sourceOf(t, "SYRK")
	buf := func(words int) vm.Arg { return vm.BufArg(randBytes(4 * words)) }
	cases := []launch{
		{"bicg1", bicgSrc, "bicgKernel1", vm.NewNDRange1D(n, 16), func(n int) []vm.Arg {
			return []vm.Arg{buf(n * n), buf(n), buf(n), vm.IntArg(int64(n))}
		}, n},
		{"bicg2", bicgSrc, "bicgKernel2", vm.NewNDRange1D(n, 16), func(n int) []vm.Arg {
			return []vm.Arg{buf(n * n), buf(n), buf(n), vm.IntArg(int64(n))}
		}, n},
		{"gesummv", gesummvSrc, "gesummv", vm.NewNDRange1D(n, 16), func(n int) []vm.Arg {
			return []vm.Arg{buf(n * n), buf(n * n), buf(n), buf(n), vm.IntArg(int64(n)), vm.FloatArg(1.5), vm.FloatArg(0.5)}
		}, n},
		{"atax1", ataxSrc, "atax_kernel1", vm.NewNDRange1D(n, 16), func(n int) []vm.Arg {
			return []vm.Arg{buf(n * n), buf(n), buf(n), vm.IntArg(int64(n))}
		}, n},
		{"atax2", ataxSrc, "atax_kernel2", vm.NewNDRange1D(n, 16), func(n int) []vm.Arg {
			return []vm.Arg{buf(n * n), buf(n), buf(n), vm.IntArg(int64(n))}
		}, n},
		{"mvt1", mvtSrc, "mvt_kernel1", vm.NewNDRange1D(n, 16), func(n int) []vm.Arg {
			return []vm.Arg{buf(n * n), buf(n), buf(n), vm.IntArg(int64(n))}
		}, n},
		{"gemm", gemmSrc, "gemm_kernel", vm.NewNDRange2D(n, n, 8, 8), func(n int) []vm.Arg {
			return []vm.Arg{buf(n * n), buf(n * n), buf(n * n),
				vm.IntArg(int64(n)), vm.IntArg(int64(n)), vm.IntArg(int64(n)),
				vm.FloatArg(1.5), vm.FloatArg(0.5)}
		}, n},
		{"conv", convSrc, "conv2d_kernel", vm.NewNDRange2D(n, n, 8, 8), func(n int) []vm.Arg {
			return []vm.Arg{buf(n * n), buf(n * n), vm.IntArg(int64(n))}
		}, n},
		{"syrk", syrkSrc, "syrk_kernel", vm.NewNDRange2D(n, n, 8, 8), func(n int) []vm.Arg {
			return []vm.Arg{buf(n * n), buf(n * n), vm.IntArg(int64(n)), vm.IntArg(int64(n)),
				vm.FloatArg(1.5), vm.FloatArg(0.5)}
		}, n},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ps, err := analysis.AnalyzeSource(c.src, c.name)
			if err != nil {
				t.Fatal(err)
			}
			ks := ps.Kernels[c.kernel]
			if ks == nil {
				t.Fatalf("no summary for %s", c.kernel)
			}
			ki, err := clc.FindKernelInfo(c.src, c.kernel)
			if err != nil {
				t.Fatal(err)
			}
			k, err := vm.Compile(ki)
			if err != nil {
				t.Fatal(err)
			}
			st, err := k.ExecLaunch(c.nd, c.mk(c.n), vm.ExecOpts{})
			if err != nil {
				t.Fatal(err)
			}
			for ai := range ks.Args {
				sa := &ks.Args[ai]
				slot := uint(sa.Index)
				dynR := st.ParamReadMask&(1<<slot) != 0
				dynW := st.ParamWriteMask&(1<<slot) != 0
				if dynR && !sa.Read {
					t.Errorf("%s: VM read %q but summary classifies it %s", c.kernel, sa.Name, ks)
				}
				if dynW && !sa.Written {
					t.Errorf("%s: VM wrote %q but summary classifies it %s", c.kernel, sa.Name, ks)
				}
				// The benchmarks exercise every access their kernels contain,
				// so the static classification must also not claim accesses
				// that never happen: the summaries are exact here, which is
				// what "classifies every __global argument correctly" means.
				if sa.Read && !dynR {
					t.Errorf("%s: summary says %q is read but the VM never read it", c.kernel, sa.Name)
				}
				if sa.Written && !dynW {
					t.Errorf("%s: summary says %q is written but the VM never wrote it", c.kernel, sa.Name)
				}
			}
		})
	}
}

func sourceOf(t *testing.T, name string) string {
	t.Helper()
	for _, s := range polybench.Sources() {
		if s.Name == name {
			return s.Src
		}
	}
	t.Fatalf("no shipped source named %q", name)
	return ""
}

func randBytes(n int) []byte {
	b := make([]byte, n)
	r := rand.New(rand.NewSource(42))
	for i := 0; i+4 <= n; i += 4 {
		binary.LittleEndian.PutUint32(b[i:], math.Float32bits(float32(r.Float64()*2-1)))
	}
	return b
}
