package analysis

// Strided affine access analysis: the second-generation summary built on
// top of the direction/affinity facts in interp.go. Where the abstract
// interpreter only classifies index expressions (uniform / affine /
// unknown), the strided walker keeps them symbolic: every global-buffer
// access becomes a StridedRef — an affine base over gid/lid/group-id whose
// coefficients are uniform integer expressions, plus one bounded strided
// term per enclosing induction loop — or a structured Reject naming the
// reason and site where precision was lost. Launch-time evaluation of the
// refs (footprint.go) gives exact per-work-item interval sets that the wg
// certificate, the transfer planner and the split veto consume.

import (
	"fmt"
	"sort"
	"strings"

	"fluidicl/internal/clc"
)

// ---- uniform integer expressions ----

// UOp is a UExpr node kind.
type UOp byte

// UExpr node kinds. uLaunch evaluates a per-launch constant (local size,
// group count per dimension) that builtins like get_local_size expose.
const (
	uConst UOp = iota
	uParam     // scalar int kernel parameter, by parameter position
	uLaunch
	uAdd
	uSub
	uMul
	uDiv
	uMod
)

// Launch-constant codes for uLaunch nodes: C = code*3 + dim.
const (
	lcLocalSize = iota // get_local_size(dim)
	lcNumGroups        // get_num_groups(dim)
)

// UExpr is a uniform (work-item-invariant) integer expression over scalar
// int parameters and launch constants. A nil *UExpr is the constant 0.
type UExpr struct {
	Op   UOp
	C    int64 // constant value, parameter index, or launch-constant code
	X, Y *UExpr
}

// UConst returns the constant expression v, with nil standing for 0.
func UConst(v int64) *UExpr {
	if v == 0 {
		return nil
	}
	return &UExpr{Op: uConst, C: v}
}

// UParam returns the expression reading scalar parameter i.
func UParam(i int) *UExpr { return &UExpr{Op: uParam, C: int64(i)} }

func uLaunchConst(code, dim int) *UExpr {
	return &UExpr{Op: uLaunch, C: int64(code*3 + dim)}
}

func (u *UExpr) isConst() (int64, bool) {
	if u == nil {
		return 0, true
	}
	if u.Op == uConst {
		return u.C, true
	}
	return 0, false
}

func uBin(op UOp, x, y *UExpr) *UExpr {
	xc, xk := x.isConst()
	yc, yk := y.isConst()
	if xk && yk {
		switch op {
		case uAdd:
			return UConst(xc + yc)
		case uSub:
			return UConst(xc - yc)
		case uMul:
			return UConst(xc * yc)
		case uDiv:
			if yc != 0 {
				return UConst(xc / yc)
			}
		case uMod:
			if yc != 0 {
				return UConst(xc % yc)
			}
		}
	}
	switch op {
	case uAdd:
		if xk && xc == 0 {
			return y
		}
		if yk && yc == 0 {
			return x
		}
	case uSub:
		if yk && yc == 0 {
			return x
		}
	case uMul:
		if (xk && xc == 0) || (yk && yc == 0) {
			return nil
		}
		if xk && xc == 1 {
			return y
		}
		if yk && yc == 1 {
			return x
		}
	}
	return &UExpr{Op: op, X: x, Y: y}
}

// UAdd returns x + y with light constant folding.
func UAdd(x, y *UExpr) *UExpr { return uBin(uAdd, x, y) }

// USub returns x - y with light constant folding.
func USub(x, y *UExpr) *UExpr { return uBin(uSub, x, y) }

// UMul returns x * y with light constant folding.
func UMul(x, y *UExpr) *UExpr { return uBin(uMul, x, y) }

// EvalCtx carries the concrete launch state a summary is evaluated
// against: the scalar int parameter values (by kernel parameter position;
// entries for non-int parameters are ignored) and the launch geometry.
type EvalCtx struct {
	Params []int64
	Local  [3]int64
	Groups [3]int64
}

// Eval evaluates the expression; ok is false on a missing parameter,
// division by zero, or magnitude overflow past the analysis range.
func (u *UExpr) Eval(c *EvalCtx) (int64, bool) {
	if u == nil {
		return 0, true
	}
	switch u.Op {
	case uConst:
		return u.C, true
	case uParam:
		if int(u.C) >= len(c.Params) {
			return 0, false
		}
		return c.Params[u.C], true
	case uLaunch:
		code, dim := int(u.C)/3, int(u.C)%3
		switch code {
		case lcLocalSize:
			return c.Local[dim], true
		case lcNumGroups:
			return c.Groups[dim], true
		}
		return 0, false
	}
	x, okx := u.X.Eval(c)
	y, oky := u.Y.Eval(c)
	if !okx || !oky {
		return 0, false
	}
	var v int64
	switch u.Op {
	case uAdd:
		v = x + y
	case uSub:
		v = x - y
	case uMul:
		v = x * y
	case uDiv:
		if y == 0 {
			return 0, false
		}
		v = x / y
	case uMod:
		if y == 0 {
			return 0, false
		}
		v = x % y
	default:
		return 0, false
	}
	if v > evalMagLimit || v < -evalMagLimit {
		return 0, false
	}
	return v, true
}

// evalMagLimit bounds evaluated magnitudes so downstream interval
// arithmetic cannot overflow int64.
const evalMagLimit = int64(1) << 40

// String renders the expression with parameter names from names (by
// parameter position; falls back to p<i>).
func (u *UExpr) String(names []string) string {
	if u == nil {
		return "0"
	}
	switch u.Op {
	case uConst:
		return fmt.Sprintf("%d", u.C)
	case uParam:
		if int(u.C) < len(names) {
			return names[u.C]
		}
		return fmt.Sprintf("p%d", u.C)
	case uLaunch:
		code, dim := int(u.C)/3, int(u.C)%3
		if code == lcLocalSize {
			return fmt.Sprintf("lsz%d", dim)
		}
		return fmt.Sprintf("ngr%d", dim)
	}
	ops := map[UOp]string{uAdd: "+", uSub: "-", uMul: "*", uDiv: "/", uMod: "%"}
	return fmt.Sprintf("(%s%s%s)", u.X.String(names), ops[u.Op], u.Y.String(names))
}

// ---- affine expressions over work-item ids ----

// AffExpr is K + Σ Gid[d]*gid_d + Σ Lid[d]*lid_d + Σ Grp[d]*grp_d with
// uniform coefficients. The zero value is the constant 0.
type AffExpr struct {
	K   *UExpr
	Gid [3]*UExpr
	Lid [3]*UExpr
	Grp [3]*UExpr
}

func affConst(v int64) AffExpr { return AffExpr{K: UConst(v)} }

func (a AffExpr) add(b AffExpr) AffExpr {
	r := AffExpr{K: UAdd(a.K, b.K)}
	for d := 0; d < 3; d++ {
		r.Gid[d] = UAdd(a.Gid[d], b.Gid[d])
		r.Lid[d] = UAdd(a.Lid[d], b.Lid[d])
		r.Grp[d] = UAdd(a.Grp[d], b.Grp[d])
	}
	return r
}

func (a AffExpr) sub(b AffExpr) AffExpr {
	r := AffExpr{K: USub(a.K, b.K)}
	for d := 0; d < 3; d++ {
		r.Gid[d] = USub(a.Gid[d], b.Gid[d])
		r.Lid[d] = USub(a.Lid[d], b.Lid[d])
		r.Grp[d] = USub(a.Grp[d], b.Grp[d])
	}
	return r
}

func (a AffExpr) scale(u *UExpr) AffExpr {
	r := AffExpr{K: UMul(a.K, u)}
	for d := 0; d < 3; d++ {
		r.Gid[d] = UMul(a.Gid[d], u)
		r.Lid[d] = UMul(a.Lid[d], u)
		r.Grp[d] = UMul(a.Grp[d], u)
	}
	return r
}

// uniform reports whether the expression has no id dependence, and if so
// returns it as a UExpr.
func (a AffExpr) uniform() (*UExpr, bool) {
	for d := 0; d < 3; d++ {
		if a.Gid[d] != nil || a.Lid[d] != nil || a.Grp[d] != nil {
			return nil, false
		}
	}
	return a.K, true
}

// ItemCtx is the concrete identity of one work-item.
type ItemCtx struct {
	Gid, Lid, Grp [3]int64
}

// Eval evaluates the expression for one work-item.
func (a AffExpr) Eval(c *EvalCtx, it ItemCtx) (int64, bool) {
	v, ok := a.K.Eval(c)
	if !ok {
		return 0, false
	}
	for d := 0; d < 3; d++ {
		for _, t := range [3]struct {
			u  *UExpr
			id int64
		}{{a.Gid[d], it.Gid[d]}, {a.Lid[d], it.Lid[d]}, {a.Grp[d], it.Grp[d]}} {
			if t.u == nil {
				continue
			}
			cv, ok := t.u.Eval(c)
			if !ok {
				return 0, false
			}
			v += cv * t.id
			if v > evalMagLimit || v < -evalMagLimit {
				return 0, false
			}
		}
	}
	return v, true
}

// String renders the expression with parameter names.
func (a AffExpr) String(names []string) string {
	var parts []string
	emit := func(u *UExpr, id string) {
		if u == nil {
			return
		}
		if c, ok := u.isConst(); ok && c == 1 {
			parts = append(parts, id)
			return
		}
		parts = append(parts, u.String(names)+"*"+id)
	}
	for d := 0; d < 3; d++ {
		emit(a.Gid[d], fmt.Sprintf("gid%d", d))
	}
	for d := 0; d < 3; d++ {
		emit(a.Lid[d], fmt.Sprintf("lid%d", d))
	}
	for d := 0; d < 3; d++ {
		emit(a.Grp[d], fmt.Sprintf("grp%d", d))
	}
	if k, ok := a.K.isConst(); !ok || k != 0 || len(parts) == 0 {
		parts = append(parts, a.K.String(names))
	}
	return strings.Join(parts, " + ")
}

// ---- strided references ----

// IVRange is one induction-variable term of a strided reference: the index
// contribution is Coef*iv where iv iterates Lo, Lo+Step, ... while < Hi.
// Lo and Hi are affine in ids and parameters but never in other IVs.
type IVRange struct {
	Coef   *UExpr
	Lo, Hi AffExpr // half-open iteration range
	Step   int64   // positive constant
}

// GuardOp relates a guard expression to zero.
type GuardOp byte

// Guard operators: the access executes only if E <op> 0.
const (
	GuardGE GuardOp = iota // E >= 0
	GuardGT                // E > 0
	GuardEQ                // E == 0
	GuardNE                // E != 0
)

func (o GuardOp) String() string {
	switch o {
	case GuardGE:
		return ">=0"
	case GuardGT:
		return ">0"
	case GuardEQ:
		return "==0"
	}
	return "!=0"
}

// Guard is one affine condition the access is control-dependent on.
type Guard struct {
	E  AffExpr
	Op GuardOp
}

// Eval reports whether the guard holds for one work-item.
func (g Guard) Eval(c *EvalCtx, it ItemCtx) (bool, bool) {
	v, ok := g.E.Eval(c, it)
	if !ok {
		return false, false
	}
	switch g.Op {
	case GuardGE:
		return v >= 0, true
	case GuardGT:
		return v > 0, true
	case GuardEQ:
		return v == 0, true
	}
	return v != 0, true
}

// StridedRef is one global-buffer access in strided-summary form.
type StridedRef struct {
	Store    bool
	AlsoRead bool // compound assignment: the store reads the old value too
	Base     AffExpr
	IVs      []IVRange
	// Guards are the affine conditions the access is control-dependent on.
	// The may-footprint ignores them (sound over-approximation); the
	// must-footprint requires them all to hold.
	Guards []Guard
	// MayOnly marks control dependence the walker could not express as
	// affine guards: the access still bounds the may-footprint but never
	// contributes to the must-footprint.
	MayOnly bool
	Pos     clc.Pos
}

// String renders the reference in the golden-file format.
func (r *StridedRef) String(names []string) string {
	var b strings.Builder
	if r.Store {
		if r.AlsoRead {
			b.WriteString("update ")
		} else {
			b.WriteString("store ")
		}
	} else {
		b.WriteString("load  ")
	}
	b.WriteString(r.Base.String(names))
	for i, iv := range r.IVs {
		fmt.Fprintf(&b, " + %s*i%d", iv.Coef.String(names), i)
	}
	for i, iv := range r.IVs {
		fmt.Fprintf(&b, " {i%d in [%s, %s)", i, iv.Lo.String(names), iv.Hi.String(names))
		if iv.Step != 1 {
			fmt.Fprintf(&b, " step %d", iv.Step)
		}
		b.WriteString("}")
	}
	for _, g := range r.Guards {
		fmt.Fprintf(&b, " if %s%s", g.E.String(names), g.Op)
	}
	if r.MayOnly {
		b.WriteString(" may-only")
	}
	return b.String()
}

// Reject reasons emitted where the strided walker loses precision.
const (
	RejNonAffine   = "non-affine"   // index not affine in ids/params/IVs
	RejLoopCarried = "loop-carried" // index uses a loop-mutated non-IV value
	RejIndirect    = "indirect"     // index derived from a memory load
	RejIVBound     = "iv-bound"     // loop bound not affine in ids/params
	RejIVStep      = "iv-step"      // loop step not a positive constant
)

// Reject is one site where the strided analysis lost precision: an access
// it could not summarize. Any consumer needing complete coverage of an
// argument's reads or writes must treat a Reject of that kind as TOP.
type Reject struct {
	Reason string
	Store  bool
	Pos    clc.Pos
}

func (r Reject) String() string {
	kind := "load"
	if r.Store {
		kind = "store"
	}
	return fmt.Sprintf("reject %s %s at %s", kind, r.Reason, r.Pos)
}

// ---- the walker ----

// sval is the strided walker's symbolic value of a scalar int expression:
// an affine expression plus coefficients over the in-scope induction
// variables. why carries the reject reason when !ok.
type sval struct {
	ok  bool
	why string
	aff AffExpr
	ivs []ivCoef
}

type ivCoef struct {
	iv   *ivInfo
	coef *UExpr
}

// ivInfo is one recognized induction loop in scope.
type ivInfo struct {
	id   int
	rng  IVRange // Coef unused here; Lo/Hi/Step describe the iteration range
	dead bool    // loop exited: values still referencing it are stale
}

func sErr(why string) sval { return sval{why: why} }

func sAff(a AffExpr) sval { return sval{ok: true, aff: a} }

func (v sval) add(w sval) sval {
	if !v.ok || !w.ok {
		return sErr(firstWhy(v, w))
	}
	r := sval{ok: true, aff: v.aff.add(w.aff), ivs: append([]ivCoef(nil), v.ivs...)}
	for _, t := range w.ivs {
		r = r.addIV(t.iv, t.coef)
	}
	return r
}

func (v sval) sub(w sval) sval {
	if !v.ok || !w.ok {
		return sErr(firstWhy(v, w))
	}
	r := sval{ok: true, aff: v.aff.sub(w.aff), ivs: append([]ivCoef(nil), v.ivs...)}
	for _, t := range w.ivs {
		r = r.addIV(t.iv, UMul(t.coef, UConst(-1)))
	}
	return r
}

func (v sval) addIV(iv *ivInfo, coef *UExpr) sval {
	for i, t := range v.ivs {
		if t.iv == iv {
			v.ivs[i].coef = UAdd(t.coef, coef)
			return v
		}
	}
	v.ivs = append(v.ivs, ivCoef{iv: iv, coef: coef})
	return v
}

func (v sval) mul(w sval) sval {
	if !v.ok || !w.ok {
		return sErr(firstWhy(v, w))
	}
	if u, ok := w.pureUniform(); ok {
		return v.scale(u)
	}
	if u, ok := v.pureUniform(); ok {
		return w.scale(u)
	}
	return sErr(RejNonAffine)
}

func (v sval) scale(u *UExpr) sval {
	r := sval{ok: true, aff: v.aff.scale(u)}
	for _, t := range v.ivs {
		r.ivs = append(r.ivs, ivCoef{iv: t.iv, coef: UMul(t.coef, u)})
	}
	return r
}

// pureUniform reports whether the value has no id or IV dependence.
func (v sval) pureUniform() (*UExpr, bool) {
	if !v.ok || len(v.ivs) != 0 {
		return nil, false
	}
	return v.aff.uniform()
}

// pureAff reports whether the value has no IV dependence.
func (v sval) pureAff() (AffExpr, bool) {
	if !v.ok || len(v.ivs) != 0 {
		return AffExpr{}, false
	}
	return v.aff, true
}

func (v sval) live() bool {
	if !v.ok {
		return false
	}
	for _, t := range v.ivs {
		if t.iv.dead {
			return false
		}
	}
	return true
}

func firstWhy(vs ...sval) string {
	for _, v := range vs {
		if !v.ok && v.why != "" {
			return v.why
		}
	}
	return RejNonAffine
}

func (v sval) equal(w sval) bool {
	if v.ok != w.ok {
		return false
	}
	if !v.ok {
		return true
	}
	if len(v.ivs) != len(w.ivs) {
		return false
	}
	for i := range v.ivs {
		if v.ivs[i].iv != w.ivs[i].iv || !uEq(v.ivs[i].coef, w.ivs[i].coef) {
			return false
		}
	}
	return affEq(v.aff, w.aff)
}

func uEq(a, b *UExpr) bool {
	if a == nil || b == nil {
		ac, aok := a.isConst()
		bc, bok := b.isConst()
		return aok && bok && ac == bc
	}
	return a.Op == b.Op && a.C == b.C && uEq(a.X, b.X) && uEq(a.Y, b.Y)
}

func affEq(a, b AffExpr) bool {
	if !uEq(a.K, b.K) {
		return false
	}
	for d := 0; d < 3; d++ {
		if !uEq(a.Gid[d], b.Gid[d]) || !uEq(a.Lid[d], b.Lid[d]) || !uEq(a.Grp[d], b.Grp[d]) {
			return false
		}
	}
	return true
}

// strider walks one kernel and fills the strided refs and rejects of the
// summary's args. It runs a single forward pass (no fixpoint): loops are
// either recognized induction loops — whose body is walked once with the
// IV symbolic — or opaque regions whose assigned variables are
// invalidated.
type strider struct {
	k   *clc.Kernel
	sum *KernelSummary

	env       map[string]sval
	argIdx    map[string]int // pointer param name -> index into sum.Args
	arrays    map[string]clc.AddrSpace
	guards    []Guard
	mayDepth  int  // unrepresentable control-flow nesting
	maySticky bool // a return under unknown control poisons what follows
	nextIV    int
	// noRecord suppresses ref/reject recording while probing expressions
	// that the main walk evaluates again (guard atoms, loop headers).
	noRecord bool
}

// analyzeStrided computes strided refs and rejects for every global
// pointer argument of k, recording them into sum (which interp.go has
// already populated with direction facts).
func analyzeStrided(k *clc.Kernel, sum *KernelSummary) {
	s := &strider{
		k:      k,
		sum:    sum,
		env:    make(map[string]sval),
		argIdx: make(map[string]int),
		arrays: make(map[string]clc.AddrSpace),
	}
	sum.Params = make([]string, len(k.Params))
	for i, p := range k.Params {
		sum.Params[i] = p.Name
		if p.Ty.Ptr {
			s.argIdx[p.Name] = sum.argPos(p.Name)
		} else if p.Ty.Kind == clc.Int {
			s.env[p.Name] = sAff(AffExpr{K: UParam(i)})
		}
	}
	s.block(k.Body)
}

// argPos returns the index into Args for the named pointer parameter.
func (ks *KernelSummary) argPos(name string) int {
	for i := range ks.Args {
		if ks.Args[i].Name == name {
			return i
		}
	}
	return -1
}

// blockResult says how a block terminates for path-sensitivity purposes.
type blockResult int

const (
	fellThrough blockResult = iota
	returned                // every path through the block returns
)

func (s *strider) mayOnly() bool { return s.mayDepth > 0 || s.maySticky }

func (s *strider) block(b *clc.Block) blockResult {
	for _, st := range b.Stmts {
		if s.stmt(st) == returned {
			return returned
		}
	}
	return fellThrough
}

func (s *strider) stmt(st clc.Stmt) blockResult {
	switch st := st.(type) {
	case *clc.Block:
		return s.block(st)
	case *clc.DeclStmt:
		s.decl(st)
	case *clc.AssignStmt:
		s.assign(st)
	case *clc.ExprStmt:
		s.expr(st.X)
	case *clc.IfStmt:
		return s.ifStmt(st)
	case *clc.ForStmt:
		s.forStmt(st)
	case *clc.WhileStmt:
		s.whileStmt(st)
	case *clc.ReturnStmt:
		return returned
	case *clc.BreakStmt, *clc.ContinueStmt:
		// Handled by the enclosing loop's escape scan.
	}
	return fellThrough
}

func (s *strider) decl(d *clc.DeclStmt) {
	if d.ArrayLen != nil {
		s.arrays[d.Name] = d.Space
		return
	}
	if d.Elem != clc.Int {
		if d.Init != nil {
			s.expr(d.Init) // record loads in float/bool initializers
		}
		return
	}
	v := sAff(affConst(0)) // registers are zeroed
	if d.Init != nil {
		v = s.expr(d.Init)
	}
	s.env[d.Name] = v
}

func (s *strider) assign(a *clc.AssignStmt) {
	rhs := s.expr(a.RHS)
	switch lhs := a.LHS.(type) {
	case *clc.Ident:
		if lhs.Type().Kind != clc.Int || lhs.Type().Ptr {
			return
		}
		v := rhs
		if a.Op != clc.ASSIGN {
			old, ok := s.env[lhs.Name]
			if !ok {
				old = sErr(RejNonAffine)
			}
			switch a.Op {
			case clc.PLUSEQ:
				v = old.add(rhs)
			case clc.MINUSEQ:
				v = old.sub(rhs)
			case clc.STAREQ:
				v = old.mul(rhs)
			default:
				v = sErr(RejNonAffine)
			}
		}
		s.env[lhs.Name] = v
	case *clc.IndexExpr:
		idx := s.expr(lhs.Idx)
		s.recordRef(lhs, idx, true, a.Op != clc.ASSIGN, a.Pos)
	}
}

func (s *strider) ifStmt(st *clc.IfStmt) blockResult {
	s.expr(st.Cond) // record loads in the condition exactly once
	s.noRecord = true
	thenGuards, thenOK := condGuards(s, st.Cond, false)
	elseGuards, elseOK := condGuards(s, st.Cond, true)
	s.noRecord = false

	pre := s.snapshot()
	preGuards := len(s.guards)

	if thenOK {
		s.guards = append(s.guards, thenGuards...)
	} else {
		s.mayDepth++
	}
	thenRet := s.block(st.Then)
	thenEnv := s.snapshot()
	s.guards = s.guards[:preGuards]
	if !thenOK {
		s.mayDepth--
	}

	elseRet := fellThrough
	elseEnv := pre
	if st.Else != nil {
		s.restore(pre)
		if elseOK {
			s.guards = append(s.guards, elseGuards...)
		} else {
			s.mayDepth++
		}
		elseRet = s.stmt(st.Else)
		elseEnv = s.snapshot()
		s.guards = s.guards[:preGuards]
		if !elseOK {
			s.mayDepth--
		}
	}

	thenHasRet := scanForReturn(st.Then)
	elseHasRet := st.Else != nil && stmtHasReturn(st.Else)
	switch {
	case thenRet == returned && elseRet == returned:
		return returned
	case thenRet == returned:
		// Only the else path continues: its guards become ambient.
		s.restore(elseEnv)
		if elseOK {
			s.guards = append(s.guards, elseGuards...)
		} else {
			s.maySticky = true
		}
		if elseHasRet {
			s.maySticky = true
		}
	case elseRet == returned:
		s.restore(thenEnv)
		if thenOK {
			s.guards = append(s.guards, thenGuards...)
		} else {
			s.maySticky = true
		}
		if thenHasRet {
			s.maySticky = true
		}
	default:
		s.mergeEnvs(pre, thenEnv, elseEnv)
		// A return buried on some path of either branch means later
		// statements only run for a subset of items the guards don't
		// describe: must-facts after this point would over-claim.
		if thenHasRet || elseHasRet {
			s.maySticky = true
		}
	}
	return fellThrough
}

func stmtHasReturn(st clc.Stmt) bool {
	switch st := st.(type) {
	case *clc.Block:
		return scanForReturn(st)
	case *clc.IfStmt:
		if scanForReturn(st.Then) {
			return true
		}
		return st.Else != nil && stmtHasReturn(st.Else)
	case *clc.ReturnStmt:
		return true
	case *clc.ForStmt:
		return scanForReturn(st.Body)
	case *clc.WhileStmt:
		return scanForReturn(st.Body)
	}
	return false
}

// condGuards turns a condition (or, when negate, its negation) into a
// conjunction of affine guards. Conjunctions decompose on && (and on ||
// when negated); anything else — including mixed forms and non-affine
// atoms — reports !ok.
func condGuards(s *strider, cond clc.Expr, negate bool) ([]Guard, bool) {
	switch e := cond.(type) {
	case *clc.BinaryExpr:
		switch e.Op {
		case clc.ANDAND:
			if negate {
				return nil, false // !(a && b) is a disjunction
			}
			l, ok1 := condGuards(s, e.X, false)
			r, ok2 := condGuards(s, e.Y, false)
			return append(l, r...), ok1 && ok2
		case clc.OROR:
			if !negate {
				return nil, false // a || b is a disjunction
			}
			l, ok1 := condGuards(s, e.X, true)
			r, ok2 := condGuards(s, e.Y, true)
			return append(l, r...), ok1 && ok2
		case clc.LT, clc.LEQ, clc.GT, clc.GEQ, clc.EQ, clc.NEQ:
			x, xok := s.expr(e.X).pureAff()
			y, yok := s.expr(e.Y).pureAff()
			if !xok || !yok {
				return nil, false
			}
			g, ok := compareGuard(e.Op, x, y, negate)
			if !ok {
				return nil, false
			}
			return []Guard{g}, true
		}
	case *clc.UnaryExpr:
		if e.Op == clc.NOT {
			return condGuards(s, e.X, !negate)
		}
	}
	return nil, false
}

func compareGuard(op clc.Kind, x, y AffExpr, negate bool) (Guard, bool) {
	if negate {
		switch op {
		case clc.LT:
			op = clc.GEQ
		case clc.LEQ:
			op = clc.GT
		case clc.GT:
			op = clc.LEQ
		case clc.GEQ:
			op = clc.LT
		case clc.EQ:
			op = clc.NEQ
		case clc.NEQ:
			op = clc.EQ
		}
	}
	switch op {
	case clc.LT: // x < y  <=>  y - x > 0
		return Guard{E: y.sub(x), Op: GuardGT}, true
	case clc.LEQ: // x <= y  <=>  y - x >= 0
		return Guard{E: y.sub(x), Op: GuardGE}, true
	case clc.GT:
		return Guard{E: x.sub(y), Op: GuardGT}, true
	case clc.GEQ:
		return Guard{E: x.sub(y), Op: GuardGE}, true
	case clc.EQ:
		return Guard{E: x.sub(y), Op: GuardEQ}, true
	case clc.NEQ:
		return Guard{E: x.sub(y), Op: GuardNE}, true
	}
	return Guard{}, false
}

func (s *strider) forStmt(st *clc.ForStmt) {
	// Recognize the induction pattern: for (iv = Lo; iv < Hi; iv += Step)
	// with Lo/Hi affine and Step a positive constant, and iv not otherwise
	// assigned in the body.
	s.noRecord = true
	iv, ok, why := s.inductionLoop(st)
	s.noRecord = false
	if !ok {
		if why == "" {
			why = RejLoopCarried
		}
		if st.Init != nil {
			// Record loads in the init expression (the probe suppressed
			// them), then conservatively forget whatever init assigns —
			// the probe may have bailed before or after modelling it.
			switch init := st.Init.(type) {
			case *clc.DeclStmt:
				if init.Init != nil {
					s.expr(init.Init)
				}
			case *clc.AssignStmt:
				s.expr(init.RHS)
			}
			s.invalidateAssignedStmt(st.Init, why)
		}
		s.opaqueLoopReason(st.Cond, st.Body, st.Post, why)
		return
	}

	// Walk the body once with the IV symbolic. Variables the body assigns
	// are invalidated first (single pass, no fixpoint).
	name := iv.name
	s.invalidateAssigned(st.Body, RejLoopCarried)
	if st.Post != nil {
		s.invalidateAssignedStmt(st.Post, RejLoopCarried)
	}
	info := &ivInfo{id: s.nextIV, rng: iv.rng}
	s.nextIV++
	s.env[name] = sval{ok: true, ivs: []ivCoef{{iv: info, coef: UConst(1)}}}

	escapes := hasEscape(st.Body)
	if escapes {
		s.mayDepth++
	}
	s.block(st.Body)
	if escapes {
		s.mayDepth--
	}
	info.dead = true
	s.env[name] = sErr(RejLoopCarried)
	s.dropDead()
	if scanForReturn(st.Body) {
		// Items may have exited inside the loop: code after it only runs
		// for a subset the guards don't describe.
		s.maySticky = true
	}
}

type inductionIV struct {
	name string
	rng  IVRange
}

func (s *strider) inductionLoop(st *clc.ForStmt) (inductionIV, bool, string) {
	var name string
	var lo sval
	switch init := st.Init.(type) {
	case *clc.DeclStmt:
		if init.ArrayLen != nil || init.Elem != clc.Int {
			return inductionIV{}, false, RejLoopCarried
		}
		name = init.Name
		lo = sAff(affConst(0))
		if init.Init != nil {
			lo = s.expr(init.Init)
		}
		s.env[name] = lo
	case *clc.AssignStmt:
		id, ok := init.LHS.(*clc.Ident)
		if !ok || init.Op != clc.ASSIGN {
			return inductionIV{}, false, RejLoopCarried
		}
		name = id.Name
		lo = s.expr(init.RHS)
		s.env[name] = lo
	default:
		return inductionIV{}, false, RejLoopCarried
	}
	loAff, ok := lo.pureAff()
	if !ok {
		return inductionIV{}, false, RejIVBound
	}

	cmp, ok := st.Cond.(*clc.BinaryExpr)
	if !ok || (cmp.Op != clc.LT && cmp.Op != clc.LEQ) {
		return inductionIV{}, false, RejLoopCarried
	}
	lhs, ok := cmp.X.(*clc.Ident)
	if !ok || lhs.Name != name {
		return inductionIV{}, false, RejLoopCarried
	}
	hiAff, ok := s.expr(cmp.Y).pureAff()
	if !ok {
		return inductionIV{}, false, RejIVBound
	}
	if cmp.Op == clc.LEQ {
		hiAff = hiAff.add(affConst(1))
	}

	step, ok := postStep(st.Post, name)
	if !ok || step <= 0 {
		return inductionIV{}, false, RejIVStep
	}
	if assignsTo(st.Body, name) {
		return inductionIV{}, false, RejLoopCarried
	}
	return inductionIV{name: name, rng: IVRange{Lo: loAff, Hi: hiAff, Step: step}}, true, ""
}

// postStep matches iv += c, iv = iv + c, iv = iv - c as the loop post and
// returns the signed step.
func postStep(post clc.Stmt, name string) (int64, bool) {
	as, ok := post.(*clc.AssignStmt)
	if !ok {
		return 0, false
	}
	id, ok := as.LHS.(*clc.Ident)
	if !ok || id.Name != name {
		return 0, false
	}
	switch as.Op {
	case clc.PLUSEQ:
		if lit, ok := as.RHS.(*clc.IntLit); ok {
			return lit.Val, true
		}
	case clc.MINUSEQ:
		if lit, ok := as.RHS.(*clc.IntLit); ok {
			return -lit.Val, true
		}
	case clc.ASSIGN:
		bin, ok := as.RHS.(*clc.BinaryExpr)
		if !ok {
			return 0, false
		}
		x, xok := bin.X.(*clc.Ident)
		lit, lok := bin.Y.(*clc.IntLit)
		if !xok || !lok || x.Name != name {
			return 0, false
		}
		switch bin.Op {
		case clc.PLUS:
			return lit.Val, true
		case clc.MINUS:
			return -lit.Val, true
		}
	}
	return 0, false
}

func (s *strider) whileStmt(st *clc.WhileStmt) {
	s.opaqueLoopReason(st.Cond, st.Body, nil, RejLoopCarried)
}

// opaqueLoopReason walks a loop the walker cannot model: every variable
// the body (or post) assigns is invalidated with the given reject reason,
// and all refs inside are may-only.
func (s *strider) opaqueLoopReason(cond clc.Expr, body *clc.Block, post clc.Stmt, why string) {
	if why == "" {
		why = RejLoopCarried
	}
	s.invalidateAssigned(body, why)
	if post != nil {
		s.invalidateAssignedStmt(post, why)
	}
	if cond != nil {
		s.expr(cond)
	}
	s.mayDepth++
	s.block(body)
	if post != nil {
		s.stmt(post)
	}
	s.mayDepth--
	s.invalidateAssigned(body, why)
	if post != nil {
		s.invalidateAssignedStmt(post, why)
	}
	if scanForReturn(body) {
		s.maySticky = true
	}
}

// ---- env plumbing ----

func (s *strider) snapshot() map[string]sval {
	m := make(map[string]sval, len(s.env))
	for k, v := range s.env {
		m[k] = v
	}
	return m
}

func (s *strider) restore(m map[string]sval) {
	s.env = make(map[string]sval, len(m))
	for k, v := range m {
		s.env[k] = v
	}
}

func (s *strider) mergeEnvs(pre, thenEnv, elseEnv map[string]sval) {
	s.env = make(map[string]sval, len(pre))
	for name := range pre {
		tv, ok1 := thenEnv[name]
		ev, ok2 := elseEnv[name]
		if !ok1 {
			tv = pre[name]
		}
		if !ok2 {
			ev = pre[name]
		}
		if tv.equal(ev) {
			s.env[name] = tv
		} else {
			s.env[name] = sErr(RejNonAffine)
		}
	}
}

// invalidateAssigned marks every scalar the statement tree assigns as
// unknown with the given reason.
func (s *strider) invalidateAssigned(b *clc.Block, why string) {
	for _, st := range b.Stmts {
		s.invalidateAssignedStmt(st, why)
	}
}

func (s *strider) invalidateAssignedStmt(st clc.Stmt, why string) {
	switch st := st.(type) {
	case *clc.Block:
		s.invalidateAssigned(st, why)
	case *clc.DeclStmt:
		if st.ArrayLen == nil {
			s.env[st.Name] = sErr(why)
		}
	case *clc.AssignStmt:
		if id, ok := st.LHS.(*clc.Ident); ok {
			s.env[id.Name] = sErr(why)
		}
	case *clc.IfStmt:
		s.invalidateAssigned(st.Then, why)
		if st.Else != nil {
			s.invalidateAssignedStmt(st.Else, why)
		}
	case *clc.ForStmt:
		if st.Init != nil {
			s.invalidateAssignedStmt(st.Init, why)
		}
		if st.Post != nil {
			s.invalidateAssignedStmt(st.Post, why)
		}
		s.invalidateAssigned(st.Body, why)
	case *clc.WhileStmt:
		s.invalidateAssigned(st.Body, why)
	}
}

func assignsTo(b *clc.Block, name string) bool {
	found := false
	var scan func(st clc.Stmt)
	scan = func(st clc.Stmt) {
		switch st := st.(type) {
		case *clc.Block:
			for _, s := range st.Stmts {
				scan(s)
			}
		case *clc.DeclStmt:
			if st.Name == name {
				found = true
			}
		case *clc.AssignStmt:
			if id, ok := st.LHS.(*clc.Ident); ok && id.Name == name {
				found = true
			}
		case *clc.IfStmt:
			scan(st.Then)
			if st.Else != nil {
				scan(st.Else)
			}
		case *clc.ForStmt:
			if st.Init != nil {
				scan(st.Init)
			}
			if st.Post != nil {
				scan(st.Post)
			}
			scan(st.Body)
		case *clc.WhileStmt:
			scan(st.Body)
		}
	}
	for _, st := range b.Stmts {
		scan(st)
	}
	return found
}

func hasEscape(b *clc.Block) bool {
	found := false
	var scan func(st clc.Stmt)
	scan = func(st clc.Stmt) {
		switch st := st.(type) {
		case *clc.Block:
			for _, s := range st.Stmts {
				scan(s)
			}
		case *clc.BreakStmt, *clc.ContinueStmt, *clc.ReturnStmt:
			found = true
		case *clc.IfStmt:
			scan(st.Then)
			if st.Else != nil {
				scan(st.Else)
			}
		// Nested loops contain their own breaks/continues; a nested
		// return still escapes this loop.
		case *clc.ForStmt:
			if scanForReturn(st.Body) {
				found = true
			}
		case *clc.WhileStmt:
			if scanForReturn(st.Body) {
				found = true
			}
		}
	}
	for _, st := range b.Stmts {
		scan(st)
	}
	return found
}

func scanForReturn(b *clc.Block) bool {
	found := false
	var scan func(st clc.Stmt)
	scan = func(st clc.Stmt) {
		switch st := st.(type) {
		case *clc.Block:
			for _, s := range st.Stmts {
				scan(s)
			}
		case *clc.ReturnStmt:
			found = true
		case *clc.IfStmt:
			scan(st.Then)
			if st.Else != nil {
				scan(st.Else)
			}
		case *clc.ForStmt:
			scan(st.Body)
		case *clc.WhileStmt:
			scan(st.Body)
		}
	}
	scan(b)
	return found
}

func (s *strider) dropDead() {
	for name, v := range s.env {
		if v.ok && !v.live() {
			s.env[name] = sErr(RejLoopCarried)
		}
	}
}

// ---- expressions ----

func (s *strider) expr(e clc.Expr) sval {
	switch e := e.(type) {
	case *clc.IntLit:
		return sAff(affConst(e.Val))
	case *clc.FloatLit, *clc.BoolLit:
		return sErr(RejNonAffine)
	case *clc.Ident:
		if v, ok := s.env[e.Name]; ok {
			if v.ok && !v.live() {
				// Stale reference to a dead loop IV; keep sharper reasons
				// already attached to not-ok values.
				return sErr(RejLoopCarried)
			}
			return v
		}
		return sErr(RejNonAffine)
	case *clc.UnaryExpr:
		x := s.expr(e.X)
		if e.Op == clc.MINUS {
			return sAff(affConst(0)).sub(x)
		}
		return sErr(RejNonAffine)
	case *clc.BinaryExpr:
		x := s.expr(e.X)
		y := s.expr(e.Y)
		switch e.Op {
		case clc.PLUS:
			return x.add(y)
		case clc.MINUS:
			return x.sub(y)
		case clc.STAR:
			return x.mul(y)
		case clc.SLASH, clc.PERCENT:
			xu, okx := x.pureUniform()
			yu, oky := y.pureUniform()
			if okx && oky {
				op := uDiv
				if e.Op == clc.PERCENT {
					op = uMod
				}
				return sAff(AffExpr{K: &UExpr{Op: op, X: xu, Y: yu}})
			}
			return sErr(RejNonAffine)
		default:
			return sErr(RejNonAffine)
		}
	case *clc.CondExpr:
		s.expr(e.Cond)
		t := s.expr(e.Then)
		f := s.expr(e.Else)
		if t.equal(f) {
			return t
		}
		return sErr(RejNonAffine)
	case *clc.CallExpr:
		return s.call(e)
	case *clc.IndexExpr:
		idx := s.expr(e.Idx)
		s.recordRef(e, idx, false, false, e.NodePos())
		return sErr(RejIndirect)
	case *clc.CastExpr:
		if e.To.Kind == clc.Int {
			return s.expr(e.X)
		}
		s.expr(e.X)
		return sErr(RejNonAffine)
	}
	return sErr(RejNonAffine)
}

func (s *strider) call(e *clc.CallExpr) sval {
	for _, a := range e.Args {
		s.expr(a)
	}
	dim, dimOK := int64(0), false
	if len(e.Args) >= 1 {
		if v, ok := clc.ConstEval(e.Args[0]); ok && v >= 0 && v < 3 {
			dim, dimOK = v, true
		}
	}
	switch e.Name {
	case "get_global_id":
		if dimOK {
			var a AffExpr
			a.Gid[dim] = UConst(1)
			return sAff(a)
		}
	case "get_local_id":
		if dimOK {
			var a AffExpr
			a.Lid[dim] = UConst(1)
			return sAff(a)
		}
	case "get_group_id":
		if dimOK {
			var a AffExpr
			a.Grp[dim] = UConst(1)
			return sAff(a)
		}
	case "get_local_size":
		if dimOK {
			return sAff(AffExpr{K: uLaunchConst(lcLocalSize, int(dim))})
		}
	case "get_num_groups":
		if dimOK {
			return sAff(AffExpr{K: uLaunchConst(lcNumGroups, int(dim))})
		}
	case "get_global_size":
		if dimOK {
			return sAff(AffExpr{K: UMul(uLaunchConst(lcLocalSize, int(dim)), uLaunchConst(lcNumGroups, int(dim)))})
		}
	}
	return sErr(RejNonAffine)
}

// ---- ref recording ----

func (s *strider) recordRef(e *clc.IndexExpr, idx sval, store, alsoRead bool, pos clc.Pos) {
	if s.noRecord {
		return
	}
	if sp, isArr := s.arrays[e.Base.Name]; isArr {
		if store && sp == clc.SpaceLocal {
			s.sum.LocalStores = true
		}
		return
	}
	i, isParam := s.argIdx[e.Base.Name]
	if !isParam || i < 0 {
		return
	}
	arg := &s.sum.Args[i]
	if !idx.live() {
		why := RejLoopCarried
		if idx.ok {
			why = RejLoopCarried // stale IV reference
		} else if idx.why != "" {
			why = idx.why
		}
		arg.Rejects = append(arg.Rejects, Reject{Reason: why, Store: store, Pos: pos})
		if store && alsoRead {
			arg.Rejects = append(arg.Rejects, Reject{Reason: why, Store: false, Pos: pos})
		}
		return
	}

	ref := StridedRef{
		Store:    store,
		AlsoRead: alsoRead,
		Base:     idx.aff,
		Guards:   append([]Guard(nil), s.guards...),
		MayOnly:  s.mayOnly(),
		Pos:      pos,
	}
	// Deterministic IV ordering by introduction id.
	ivs := append([]ivCoef(nil), idx.ivs...)
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].iv.id < ivs[b].iv.id })
	for _, t := range ivs {
		if c, ok := t.coef.isConst(); ok && c == 0 {
			continue
		}
		r := t.iv.rng
		r.Coef = t.coef
		ref.IVs = append(ref.IVs, r)
	}
	arg.Refs = append(arg.Refs, ref)
}
