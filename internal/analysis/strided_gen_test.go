package analysis_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"fluidicl/internal/analysis"
	"fluidicl/internal/clc"
	"fluidicl/internal/vm"
)

// Generative differential validation of the strided summaries: random
// strided/scatter kernels with a known ground-truth access model are
// analyzed, executed, and brute-forced. Three properties are checked per
// kernel:
//
//  1. soundness of the hulls — the VM's dynamic write range stays inside
//     the launch-level hull EvalArgWrites computes (the property core's
//     transfer narrowing relies on), and every brute-force written word is
//     covered by the per-item may-footprint;
//  2. soundness of the disjointness verdict — when CertifyGroupDisjoint
//     says OK, the brute-force per-item footprints really are pairwise
//     disjoint within every group (the property the wg second-chance
//     certificate and the split un-veto rely on);
//  3. exactness on the clean subclass — for unguarded kernels whose
//     per-item footprints evaluate as exact interval sets, the verdict
//     agrees with brute force in BOTH directions: truly disjoint footprints
//     must be certified, not just rejected conservatively.
//
// Each kernel also runs under the wg backend and must produce the same
// bytes and Stats as the interpreter, whether the certificate admits it to
// the lockstep engine or it falls back.

const (
	genGlobal = 32 // 1-D launch: 4 groups of 8
	genLocal  = 8
	genWords  = 2048
)

// genTerm is base + cg*gid + cl*lid + cgr*grp (+ ci*i inside a loop).
type genTerm struct {
	base, cg, cl, cgr, ci int64
}

func (t genTerm) at(g, i int64) int64 {
	lid, grp := g%genLocal, g/genLocal
	return t.base + t.cg*g + t.cl*lid + t.cgr*grp + t.ci*i
}

// expr renders the index expression in MiniCL.
func (t genTerm) expr(withLoop bool) string {
	parts := []string{fmt.Sprintf("%d", t.base)}
	if t.cg != 0 {
		parts = append(parts, fmt.Sprintf("%d*g", t.cg))
	}
	if t.cl != 0 {
		parts = append(parts, fmt.Sprintf("%d*l", t.cl))
	}
	if t.cgr != 0 {
		parts = append(parts, fmt.Sprintf("%d*w", t.cgr))
	}
	if withLoop && t.ci != 0 {
		parts = append(parts, fmt.Sprintf("%d*i", t.ci))
	}
	return strings.Join(parts, " + ")
}

// genLoop is for (int i = lo0+lo1*g; i < hi0+hi1*g; i += step).
type genLoop struct {
	lo0, lo1, hi0, hi1, step int64
}

type genStore struct {
	idx  genTerm
	loop *genLoop // nil: single store
}

type genKernel struct {
	src      string
	stores   []genStore
	outReads []genTerm // reads of out (unguarded, g-affine)
	guarded  bool
	gcut     int64
}

// genStrided builds one random strided/scatter kernel plus its ground-truth
// access model. Coefficient ranges keep every index inside [0, genWords).
func genStrided(r *rand.Rand) genKernel {
	var k genKernel
	nStores := 1 + r.Intn(2)
	for s := 0; s < nStores; s++ {
		t := genTerm{base: 130 + int64(r.Intn(256))}
		if r.Intn(2) == 0 {
			t.cg = int64(r.Intn(13) - 4) // [-4, 8]
		} else {
			t.cl = int64(r.Intn(9))  // [0, 8]
			t.cgr = int64(r.Intn(9)) // [0, 8]
		}
		st := genStore{idx: t}
		if r.Intn(2) == 0 {
			st.idx.ci = 1 + int64(r.Intn(6))
			st.loop = &genLoop{
				lo0:  int64(r.Intn(4)),
				lo1:  int64(r.Intn(2)),
				hi0:  8 + int64(r.Intn(8)),
				hi1:  int64(r.Intn(2)),
				step: 1 + int64(r.Intn(3)),
			}
		}
		k.stores = append(k.stores, st)
	}
	if r.Intn(3) == 0 {
		k.outReads = append(k.outReads, genTerm{base: int64(r.Intn(64)), cg: int64(r.Intn(9))})
	}
	if r.Intn(3) == 0 {
		k.guarded = true
		k.gcut = int64(4 + r.Intn(genGlobal))
	}

	var b strings.Builder
	b.WriteString("__kernel void gen(__global float* out, __global float* in, int n) {\n")
	b.WriteString("    int g = get_global_id(0);\n")
	b.WriteString("    int l = get_local_id(0);\n")
	b.WriteString("    int w = get_group_id(0);\n")
	b.WriteString("    float acc = in[g];\n")
	for _, rd := range k.outReads {
		fmt.Fprintf(&b, "    acc = acc + out[%s];\n", rd.expr(false))
	}
	if k.guarded {
		fmt.Fprintf(&b, "    if (g < %d) {\n", k.gcut)
	}
	for _, st := range k.stores {
		if st.loop == nil {
			fmt.Fprintf(&b, "    out[%s] = acc + 1.0f;\n", st.idx.expr(false))
			continue
		}
		lo := fmt.Sprintf("%d", st.loop.lo0)
		if st.loop.lo1 != 0 {
			lo += fmt.Sprintf(" + %d*g", st.loop.lo1)
		}
		hi := fmt.Sprintf("%d", st.loop.hi0)
		if st.loop.hi1 != 0 {
			hi += fmt.Sprintf(" + %d*g", st.loop.hi1)
		}
		fmt.Fprintf(&b, "    for (int i = %s; i < %s; i += %d) {\n", lo, hi, st.loop.step)
		fmt.Fprintf(&b, "        out[%s] = acc * 0.5f;\n", st.idx.expr(true))
		b.WriteString("    }\n")
	}
	if k.guarded {
		b.WriteString("    }\n")
	}
	b.WriteString("}\n")
	k.src = b.String()
	return k
}

// bruteWrites returns the exact set of words item g writes.
func (k *genKernel) bruteWrites(g int64) map[int64]bool {
	w := map[int64]bool{}
	if k.guarded && g >= k.gcut {
		return w
	}
	for _, st := range k.stores {
		if st.loop == nil {
			w[st.idx.at(g, 0)] = true
			continue
		}
		lo := st.loop.lo0 + st.loop.lo1*g
		hi := st.loop.hi0 + st.loop.hi1*g
		for i := lo; i < hi; i += st.loop.step {
			w[st.idx.at(g, i)] = true
		}
	}
	return w
}

// bruteReads returns the exact set of out-words item g reads.
func (k *genKernel) bruteReads(g int64) map[int64]bool {
	r := map[int64]bool{}
	for _, rd := range k.outReads {
		r[rd.at(g, 0)] = true
	}
	return r
}

// bruteGroupDisjoint reports whether, within every group, distinct items'
// writes are pairwise disjoint from each other and from the others' reads.
func (k *genKernel) bruteGroupDisjoint() bool {
	for grp := int64(0); grp < genGlobal/genLocal; grp++ {
		base := grp * genLocal
		for t := int64(0); t < genLocal; t++ {
			wt := k.bruteWrites(base + t)
			for u := t + 1; u < genLocal; u++ {
				wu := k.bruteWrites(base + u)
				ru := k.bruteReads(base + u)
				rt := k.bruteReads(base + t)
				for word := range wt {
					if wu[word] || ru[word] {
						return false
					}
				}
				for word := range wu {
					if rt[word] {
						return false
					}
				}
			}
		}
	}
	return true
}

func genShape() analysis.LaunchShape {
	return analysis.LaunchShape{
		Dims:      1,
		Local:     [3]int64{genLocal, 1, 1},
		NumGroups: [3]int64{genGlobal / genLocal, 1, 1},
		Count:     [3]int64{genGlobal / genLocal, 1, 1},
	}
}

func TestGenerativeStridedDifferential(t *testing.T) {
	const trials = 200
	params := []int64{0, 0, genWords}
	sh := genShape()
	exactAgreed := 0
	for seed := 0; seed < trials; seed++ {
		r := rand.New(rand.NewSource(int64(7000 + seed)))
		gk := genStrided(r)

		ps, err := analysis.AnalyzeSource(gk.src, "gen")
		if err != nil {
			t.Fatalf("seed %d: analyze: %v\n%s", seed, err, gk.src)
		}
		ks := ps.Kernels["gen"]
		outArg := ks.Arg("out")
		if outArg == nil || !outArg.WritesComplete() {
			t.Fatalf("seed %d: out's affine stores were not fully summarized\n%s\n%s", seed, gk.src, ks)
		}

		// Per-item may-footprints must cover the brute-force writes; exact
		// footprints must equal them.
		ctx := sh.Ctx(params)
		allExact := true
		for g := int64(0); g < genGlobal; g++ {
			it := analysis.ItemCtx{
				Gid: [3]int64{g, 0, 0},
				Lid: [3]int64{g % genLocal, 0, 0},
				Grp: [3]int64{g / genLocal, 0, 0},
			}
			covered := map[int64]bool{}
			for ri := range outArg.Refs {
				ref := &outArg.Refs[ri]
				if !ref.Store {
					continue
				}
				psenum, ok := ref.Footprint(ctx, it)
				if !ok {
					t.Fatalf("seed %d: footprint evaluation failed\n%s", seed, gk.src)
				}
				if !psenum.Exact {
					allExact = false
				}
				for _, p := range psenum.Progs {
					for j := int64(0); j < p.N; j++ {
						covered[p.Lo+j*p.Stride] = true
					}
				}
			}
			brute := gk.bruteWrites(g)
			for word := range brute {
				if !covered[word] {
					t.Fatalf("seed %d: item %d writes word %d outside its may-footprint\n%s\n%s",
						seed, g, word, gk.src, ks)
				}
			}
			// Unguarded single-item footprints that claim exactness must not
			// over-cover either (loops with dynamically empty ranges aside:
			// the footprint clamps to empty exactly like the brute force).
			if !gk.guarded && allExact {
				for word := range covered {
					if !brute[word] {
						t.Fatalf("seed %d: item %d: exact footprint claims word %d the kernel never writes\n%s\n%s",
							seed, g, word, gk.src, ks)
					}
				}
			}
		}

		// Launch-level hull vs the VM's dynamic write range.
		aw, ok := ks.EvalArgWrites(ks.ArgIndex("out"), sh, params, genWords, 1<<22)
		if !ok {
			t.Fatalf("seed %d: EvalArgWrites failed\n%s", seed, gk.src)
		}
		ki, err := clc.FindKernelInfo(gk.src, "gen")
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, gk.src)
		}
		kc, err := vm.Compile(ki)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, gk.src)
		}
		mkArgs := func() []vm.Arg {
			out := make([]byte, 4*genWords)
			in := make([]byte, 4*genWords)
			for i := 0; i < genWords; i++ {
				binary.LittleEndian.PutUint32(in[4*i:], math.Float32bits(float32(i%19)*0.5-4))
				binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(float32(i%7)))
			}
			return []vm.Arg{vm.BufArg(out), vm.BufArg(in), vm.IntArg(genWords)}
		}
		nd := vm.NewNDRange1D(genGlobal, genLocal)
		argsI := mkArgs()
		stI, err := kc.ExecLaunch(nd, argsI, vm.ExecOpts{Backend: vm.BackendInterp})
		if err != nil {
			t.Fatalf("seed %d: exec: %v\n%s", seed, err, gk.src)
		}
		if stI.ParamWriteMask&1 != 0 {
			if int64(stI.WrLo[0]) < 4*aw.Hull.Lo || int64(stI.WrHi[0]) > 4*aw.Hull.Hi {
				t.Fatalf("seed %d: dynamic writes [%d,%d) escape the launch hull [%d,%d)\n%s",
					seed, stI.WrLo[0], stI.WrHi[0], 4*aw.Hull.Lo, 4*aw.Hull.Hi, gk.src)
			}
		}

		// Disjointness verdict vs brute force.
		brute := gk.bruteGroupDisjoint()
		v := ks.CertifyGroupDisjoint(sh, params, 1<<22)
		if v.OK && !brute {
			t.Fatalf("seed %d: certificate claims disjoint but brute force found an overlap\n%s\n%s",
				seed, gk.src, ks)
		}
		if !gk.guarded && allExact && len(gk.outReads) == 0 {
			// Clean subclass: unguarded, exact footprints, no out reads —
			// the verdict must be exact, not merely conservative.
			if v.OK != brute {
				t.Fatalf("seed %d: exact-subclass verdict %v (reason %q) disagrees with brute force %v\n%s\n%s",
					seed, v.OK, v.Reason, brute, gk.src, ks)
			}
			if v.OK == brute {
				exactAgreed++
			}
		}

		// Backend parity: wg (certified or fallen back) must match interp,
		// with region fusion on (the default; runs first, so the fused jams
		// see the kernel's cold scratch state) and off. The interpreter is
		// the referee: both wg modes must reproduce its bytes and Stats
		// exactly, which also pins fused vs unfused against each other.
		argsW := mkArgs()
		vm.SetWGFuse(true)
		stW, err := kc.ExecLaunch(nd, argsW, vm.ExecOpts{Backend: vm.BackendWG})
		if err != nil {
			t.Fatalf("seed %d: wg exec: %v\n%s", seed, err, gk.src)
		}
		if !bytes.Equal(argsI[0].Buf, argsW[0].Buf) {
			t.Fatalf("seed %d: wg backend produced different bytes\n%s", seed, gk.src)
		}
		if stI != stW {
			t.Fatalf("seed %d: wg backend produced different Stats\n%s", seed, gk.src)
		}
		argsU := mkArgs()
		vm.SetWGFuse(false)
		stU, err := kc.ExecLaunch(nd, argsU, vm.ExecOpts{Backend: vm.BackendWG})
		vm.SetWGFuse(true)
		if err != nil {
			t.Fatalf("seed %d: wg unfused exec: %v\n%s", seed, err, gk.src)
		}
		if !bytes.Equal(argsI[0].Buf, argsU[0].Buf) {
			t.Fatalf("seed %d: unfused wg backend produced different bytes\n%s", seed, gk.src)
		}
		if stI != stU {
			t.Fatalf("seed %d: unfused wg backend produced different Stats\n  interp %+v\n  unfused %+v\n%s",
				seed, stI, stU, gk.src)
		}
	}
	if exactAgreed == 0 {
		t.Error("no trial exercised the exact subclass; generator drifted")
	}
}
