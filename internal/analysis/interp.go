package analysis

import (
	"fmt"
	"strings"

	"fluidicl/internal/clc"
)

// av is the abstract value of a scalar expression. The flags form a small
// product lattice; joins only clear the positive flags and set the taints,
// so fixpoints over loops converge in a few passes.
type av struct {
	gidExact bool // exactly get_global_id(0): unit coefficient, zero offset
	affine   bool // affine in the global-id dims with uniform coefficients
	uniform  bool // same value for every work-item of the NDRange
	wiU      bool // same value for every work-item of one work-group
	idDep    bool // derived from get_global_id/get_local_id (divergence taint)
	loopDep  bool // varies across iterations of an enclosing loop
}

// uniformVal is the abstract value of constants and scalar parameters.
// Uniform values are trivially affine (all global-id coefficients zero).
func uniformVal() av { return av{affine: true, uniform: true, wiU: true} }

func unknownVal() av { return av{} }

// meet joins two control-flow paths: provable facts survive only if both
// paths prove them; taints survive if either path carries them.
func meet(a, b av) av {
	return av{
		gidExact: a.gidExact && b.gidExact,
		affine:   a.affine && b.affine,
		uniform:  a.uniform && b.uniform,
		wiU:      a.wiU && b.wiU,
		idDep:    a.idDep || b.idDep,
		loopDep:  a.loopDep || b.loopDep,
	}
}

// taint marks a value as work-item-dependent through control flow.
func taint(a av) av { return av{idDep: true, loopDep: a.loopDep} }

// class maps an abstract index value to its report class.
func class(a av) IndexClass {
	switch {
	case a.loopDep:
		return IdxUnknown
	case a.affine && a.idDep:
		return IdxAffine
	case a.uniform:
		return IdxUniform
	}
	return IdxUnknown
}

// arrayInfo describes a __local or __private array declared in the body.
type arrayInfo struct {
	length int64
	local  bool
}

type analyzer struct {
	k    *clc.Kernel
	file string
	sum  *KernelSummary

	env    map[string]av
	arrays map[string]arrayInfo
	argIdx map[string]int // pointer param name -> index into sum.Args

	divDepth  int  // enclosing conditions that are work-item-divergent
	divSticky bool // a tainted return/break poisons everything after it

	// loopEscape is set when a break/continue executes under divergent
	// control inside the current loop: the rest of the loop body is then
	// control-dependent on work-item identity.
	loopEscape bool

	reads    map[string]bool    // scalar vars read anywhere
	declPos  map[string]clc.Pos // scalar var declaration positions
	declared []string           // declaration order for deterministic diags
	usedArgs map[string]bool    // params referenced anywhere
}

func (a *analyzer) divergent() bool { return a.divDepth > 0 || a.divSticky }

func (a *analyzer) diag(pos clc.Pos, format string, args ...interface{}) {
	a.sum.Diags = append(a.sum.Diags, clc.Diag{File: a.file, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// AnalyzeKernel runs the abstract interpretation over one kernel.
func AnalyzeKernel(k *clc.Kernel, file string) *KernelSummary {
	a := &analyzer{
		k:    k,
		file: file,
		sum:  &KernelSummary{Name: k.Name},

		env:      make(map[string]av),
		arrays:   make(map[string]arrayInfo),
		argIdx:   make(map[string]int),
		reads:    make(map[string]bool),
		declPos:  make(map[string]clc.Pos),
		usedArgs: make(map[string]bool),
	}
	for i, p := range k.Params {
		if p.Ty.Ptr {
			a.argIdx[p.Name] = len(a.sum.Args)
			a.sum.Args = append(a.sum.Args, ArgSummary{
				Name: p.Name, Index: i, Space: p.Ty.Space, Elem: p.Ty.Kind,
				ReadIdx: IdxNone, WriteIdx: IdxNone,
			})
		} else {
			a.env[p.Name] = uniformVal()
		}
	}
	a.block(k.Body)
	a.lintUnused()
	analyzeStrided(k, a.sum)
	a.lintStridedOOB()
	a.dedup()
	clc.SortDiags(a.sum.Diags)
	return a.sum
}

// lintStridedOOB reports strided accesses whose statically known minimum
// index is negative on every launch: unguarded, parameter-free refs with
// nonnegative id coefficients and a constant negative base or strided low
// bound (e.g. a[gid0 - 1], a[i] for i in [-1, n)).
func (a *analyzer) lintStridedOOB() {
	for i := range a.sum.Args {
		arg := &a.sum.Args[i]
		for j := range arg.Refs {
			ref := &arg.Refs[j]
			if len(ref.Guards) > 0 || ref.MayOnly {
				continue
			}
			if min, ok := ref.StaticMin(); ok && min < 0 {
				a.diag(ref.Pos, "strided access to %q provably out of bounds: minimum index %d is negative",
					arg.Name, min)
			}
		}
	}
}

// dedup collapses duplicates introduced by loop fixpoint re-analysis: the
// same site may be visited several times. Barrier sites keep the worst
// (divergent) verdict seen; race counts are recomputed from unique diags.
func (a *analyzer) dedup() {
	sites := make(map[clc.Pos]int)
	var barriers []BarrierSite
	for _, s := range a.sum.Barriers {
		if i, ok := sites[s.Pos]; ok {
			barriers[i].Divergent = barriers[i].Divergent || s.Divergent
			continue
		}
		sites[s.Pos] = len(barriers)
		barriers = append(barriers, s)
	}
	a.sum.Barriers = barriers

	seen := make(map[clc.Diag]bool)
	races := 0
	var diags []clc.Diag
	for _, d := range a.sum.Diags {
		if seen[d] {
			continue
		}
		seen[d] = true
		diags = append(diags, d)
		if strings.Contains(d.Msg, "inter-work-item") {
			races++
		}
	}
	a.sum.Diags = diags
	a.sum.Races = races
}

// ---- statements ----

func (a *analyzer) block(b *clc.Block) {
	for _, s := range b.Stmts {
		a.stmt(s)
	}
}

func (a *analyzer) stmt(s clc.Stmt) {
	switch s := s.(type) {
	case *clc.Block:
		a.block(s)
	case *clc.DeclStmt:
		a.decl(s)
	case *clc.AssignStmt:
		a.assign(s)
	case *clc.ExprStmt:
		a.expr(s.X)
	case *clc.IfStmt:
		a.ifStmt(s)
	case *clc.ForStmt:
		a.forStmt(s)
	case *clc.WhileStmt:
		a.whileStmt(s)
	case *clc.ReturnStmt:
		if a.divergent() {
			// Work-items disagree on exiting: everything after this point
			// is control-dependent on work-item identity.
			a.divSticky = true
		}
	case *clc.BreakStmt, *clc.ContinueStmt:
		if a.divergent() {
			a.loopEscape = true
		}
	}
}

func (a *analyzer) decl(d *clc.DeclStmt) {
	if d.ArrayLen != nil {
		n, _ := clc.ConstEval(d.ArrayLen)
		a.arrays[d.Name] = arrayInfo{length: n, local: d.Space == clc.SpaceLocal}
		return
	}
	a.declPos[d.Name] = d.Pos
	a.declared = append(a.declared, d.Name)
	v := uniformVal() // registers are zeroed: an uninitialized scalar is 0
	if d.Init != nil {
		v = a.expr(d.Init)
	}
	if a.divergent() {
		// The declaration itself only runs on some work-items; the scope
		// is confined to the divergent region, so the value stays as
		// computed there (within the region all running items agree as far
		// as the flags prove).
		_ = v
	}
	a.env[d.Name] = v
}

func (a *analyzer) assign(s *clc.AssignStmt) {
	rhs := a.expr(s.RHS)
	switch lhs := s.LHS.(type) {
	case *clc.Ident:
		a.usedArgs[lhs.Name] = true
		v := rhs
		if s.Op != clc.ASSIGN {
			// Compound assignment reads the old value too.
			a.reads[lhs.Name] = true
			old, ok := a.env[lhs.Name]
			if !ok {
				old = unknownVal()
			}
			v = binOpVal(opOfCompound(s.Op), old, rhs)
		}
		if a.divergent() {
			// Assigned under id-dependent control: the merged value is
			// work-item-dependent.
			v = taint(v)
		}
		a.env[lhs.Name] = v
	case *clc.IndexExpr:
		idx := a.expr(lhs.Idx)
		a.recordAccess(lhs, idx, true, s.Op != clc.ASSIGN, s.NodePos())
	}
}

func (a *analyzer) ifStmt(s *clc.IfStmt) {
	cond := a.expr(s.Cond)
	tainted := cond.idDep
	if tainted {
		a.divDepth++
	}
	pre := a.snapshot()
	a.block(s.Then)
	thenEnv := a.snapshot()
	a.restore(pre)
	if s.Else != nil {
		a.stmt(s.Else)
	}
	elseEnv := a.snapshot()
	a.mergeEnvs(pre, thenEnv, elseEnv, tainted || cond.loopDep)
	if tainted {
		a.divDepth--
	}
}

func (a *analyzer) forStmt(s *clc.ForStmt) {
	if s.Init != nil {
		a.stmt(s.Init)
	}
	a.loop(s.Cond, func() {
		a.block(s.Body)
		if s.Post != nil {
			a.stmt(s.Post)
		}
	})
}

func (a *analyzer) whileStmt(s *clc.WhileStmt) {
	a.loop(s.Cond, func() { a.block(s.Body) })
}

// loop runs the body to a fixpoint. Values assigned in the body are
// loop-carried (loopDep); if the loop condition is id-dependent, or an
// escape fires under divergent control, body re-analysis happens under
// divergent context (work-items disagree on which iterations run).
func (a *analyzer) loop(cond clc.Expr, body func()) {
	condTaint := false
	if cond != nil {
		condTaint = a.expr(cond).idDep
	}
	prevEscape := a.loopEscape
	a.loopEscape = false
	for pass := 0; pass < 4; pass++ {
		if condTaint || a.loopEscape {
			a.divDepth++
		}
		pre := a.snapshot()
		body()
		post := a.snapshot()
		if condTaint || a.loopEscape {
			a.divDepth--
		}
		// Loop-head join: anything the body changed is loop-carried.
		stable := true
		for name, pv := range pre {
			nv := meet(pv, post[name])
			if post[name] != pv {
				nv.loopDep = true
				nv.gidExact = false
				if condTaint || a.loopEscape {
					nv = av{idDep: true, loopDep: true}
				}
			}
			if nv != a.env[name] {
				stable = false
			}
			a.env[name] = nv
		}
		if cond != nil {
			if v := a.expr(cond); v.idDep {
				condTaint = true
			}
		}
		if stable {
			break
		}
	}
	a.loopEscape = prevEscape || a.loopEscape
}

func (a *analyzer) snapshot() map[string]av {
	m := make(map[string]av, len(a.env))
	for k, v := range a.env {
		m[k] = v
	}
	return m
}

func (a *analyzer) restore(m map[string]av) {
	a.env = make(map[string]av, len(m))
	for k, v := range m {
		a.env[k] = v
	}
}

// mergeEnvs joins the two branch environments. Under a tainted condition,
// any variable either branch changed becomes work-item-dependent.
func (a *analyzer) mergeEnvs(pre, thenEnv, elseEnv map[string]av, tainted bool) {
	a.env = make(map[string]av, len(pre))
	for name, pv := range pre {
		tv, ok1 := thenEnv[name]
		if !ok1 {
			tv = pv
		}
		ev, ok2 := elseEnv[name]
		if !ok2 {
			ev = pv
		}
		nv := meet(tv, ev)
		if tainted && (tv != pv || ev != pv) {
			nv = taint(nv)
		}
		a.env[name] = nv
	}
}

// ---- expressions ----

func (a *analyzer) expr(e clc.Expr) av {
	switch e := e.(type) {
	case *clc.IntLit, *clc.FloatLit, *clc.BoolLit:
		return uniformVal()
	case *clc.Ident:
		a.usedArgs[e.Name] = true
		a.reads[e.Name] = true
		if v, ok := a.env[e.Name]; ok {
			return v
		}
		return uniformVal() // builtin constants (CLK_*)
	case *clc.UnaryExpr:
		x := a.expr(e.X)
		if e.Op == clc.MINUS {
			return av{affine: x.affine, uniform: x.uniform, wiU: x.wiU,
				idDep: x.idDep, loopDep: x.loopDep}
		}
		return av{affine: x.uniform, uniform: x.uniform, wiU: x.wiU,
			idDep: x.idDep, loopDep: x.loopDep}
	case *clc.BinaryExpr:
		x := a.expr(e.X)
		y := a.expr(e.Y)
		return binOpVal(e.Op, x, y)
	case *clc.CondExpr:
		c := a.expr(e.Cond)
		t := a.expr(e.Then)
		f := a.expr(e.Else)
		v := meet(t, f)
		if c.idDep {
			v = taint(v)
		}
		v.idDep = v.idDep || c.idDep
		v.loopDep = v.loopDep || c.loopDep
		v.uniform = v.uniform && c.uniform
		v.wiU = v.wiU && c.wiU
		v.gidExact = false
		return v
	case *clc.CallExpr:
		return a.call(e)
	case *clc.IndexExpr:
		idx := a.expr(e.Idx)
		a.recordAccess(e, idx, false, false, e.NodePos())
		// Loaded content is arbitrary; it is id-dependent if the location
		// read differs per work-item.
		return av{idDep: idx.idDep, loopDep: idx.loopDep}
	case *clc.CastExpr:
		x := a.expr(e.X)
		if e.To.Kind != clc.Int {
			x.gidExact = false
			x.affine = x.uniform
		}
		return x
	}
	return unknownVal()
}

func opOfCompound(op clc.Kind) clc.Kind {
	switch op {
	case clc.PLUSEQ:
		return clc.PLUS
	case clc.MINUSEQ:
		return clc.MINUS
	case clc.STAREQ:
		return clc.STAR
	case clc.SLASHEQ:
		return clc.SLASH
	}
	return op
}

func binOpVal(op clc.Kind, x, y av) av {
	v := av{
		uniform: x.uniform && y.uniform,
		wiU:     x.wiU && y.wiU,
		idDep:   x.idDep || y.idDep,
		loopDep: x.loopDep || y.loopDep,
	}
	switch op {
	case clc.PLUS, clc.MINUS:
		v.affine = x.affine && y.affine
	case clc.STAR:
		v.affine = (x.affine && y.uniform) || (x.uniform && y.affine)
	default:
		// Division, modulo, comparisons, logic: affine only if uniform.
		v.affine = v.uniform
	}
	return v
}

func (a *analyzer) call(e *clc.CallExpr) av {
	// Evaluate arguments (records accesses and reads).
	args := make([]av, len(e.Args))
	for i, arg := range e.Args {
		args[i] = a.expr(arg)
	}
	switch e.Name {
	case "barrier":
		a.sum.Barriers = append(a.sum.Barriers, BarrierSite{Pos: e.Pos, Divergent: a.divergent()})
		if a.divergent() {
			a.diag(e.Pos, "barrier under control flow dependent on get_global_id/get_local_id: "+
				"work-items of a group may disagree on reaching it (undefined behaviour; blocks work-group splitting)")
		}
		return av{}
	case "get_global_id":
		dim, isConst := constArg(e, 0)
		return av{gidExact: isConst && dim == 0, affine: true, idDep: true}
	case "get_local_id":
		return av{idDep: true}
	case "get_group_id":
		return av{wiU: true}
	case "get_num_groups", "get_local_size", "get_global_size",
		"get_global_offset", "get_work_dim":
		return uniformVal()
	}
	// Math builtins: uniform in, uniform out; any id-dependent input makes
	// the result id-dependent. Never affine (non-linear).
	v := uniformVal()
	v.affine = false
	for _, x := range args {
		v.uniform = v.uniform && x.uniform
		v.wiU = v.wiU && x.wiU
		v.idDep = v.idDep || x.idDep
		v.loopDep = v.loopDep || x.loopDep
	}
	v.affine = v.uniform
	return v
}

func constArg(e *clc.CallExpr, i int) (int64, bool) {
	if i >= len(e.Args) {
		return 0, false
	}
	return clc.ConstEval(e.Args[i])
}

// ---- access recording and lints ----

func (a *analyzer) recordAccess(e *clc.IndexExpr, idx av, write, alsoRead bool, pos clc.Pos) {
	a.usedArgs[e.Base.Name] = true
	cls := class(idx)

	if ai, isArr := a.arrays[e.Base.Name]; isArr {
		// Declared __local/__private array: constant bounds are checkable.
		if v, ok := clc.ConstEval(e.Idx); ok && (v < 0 || v >= ai.length) {
			a.diag(e.Idx.NodePos(), "index %d out of bounds for array %q of length %d",
				v, e.Base.Name, ai.length)
		}
		if ai.local && write {
			a.lintRace(e, idx, alsoRead, pos, "__local array")
		}
		return
	}

	i, isParam := a.argIdx[e.Base.Name]
	if !isParam {
		return
	}
	arg := &a.sum.Args[i]
	if write {
		slotOK := idx.gidExact && !idx.loopDep
		if !arg.Written {
			arg.SlotExact = slotOK
		} else {
			arg.SlotExact = arg.SlotExact && slotOK
		}
		arg.Written = true
		arg.WriteIdx = mergeClass(arg.WriteIdx, cls)
		a.lintRace(e, idx, alsoRead, pos, fmt.Sprintf("%s buffer", arg.Space))
	}
	if !write || alsoRead {
		arg.Read = true
		arg.ReadIdx = mergeClass(arg.ReadIdx, cls)
	}
}

func (a *analyzer) lintRace(e *clc.IndexExpr, idx av, alsoRead bool, pos clc.Pos, what string) {
	if !idx.wiU || a.divergent() {
		return
	}
	kind := "write/write"
	if alsoRead {
		kind = "read/write and write/write"
	}
	a.sum.Races++
	a.diag(pos, "inter-work-item %s race: every work-item of a group stores to %s %s[%s] at the same index",
		kind, what, e.Base.Name, clc.ExprString(e.Idx))
}

func (a *analyzer) lintUnused() {
	for _, p := range a.k.Params {
		if !a.usedArgs[p.Name] {
			a.diag(p.Pos, "kernel argument %q is never used", p.Name)
		}
	}
	for _, name := range a.declared {
		if !a.reads[name] {
			a.diag(a.declPos[name], "value of %q is assigned but never read", name)
		}
	}
}
