package sched

import (
	"fmt"

	"fluidicl/internal/clc"
	"fluidicl/internal/device"
	"fluidicl/internal/ocl"
	"fluidicl/internal/sim"
)

// Policy selects the SOCL-like scheduling policy (§9.4).
type Policy int

// Policies.
const (
	// Eager is StarPU's default greedy policy: a ready task goes to the
	// worker that has been idle longest (CPU workers first on ties, as
	// StarPU registers them first). It is speed-oblivious.
	Eager Policy = iota
	// Dmda (deque model data aware) uses a calibrated per-device execution
	// model plus predicted transfer costs to place each task.
	Dmda
)

func (p Policy) String() string {
	if p == Eager {
		return "eager"
	}
	return "dmda"
}

// DmdaModel is the calibrated performance model: per (kernel, launch size),
// the measured execution time on each device kind.
type DmdaModel map[string]map[device.Kind]sim.Time

func dmdaKey(l Launch) string {
	return fmt.Sprintf("%s@%d", l.Kernel, l.ND.TotalGroups())
}

// CalibrateDmda builds the dmda performance model by running the
// application on each device and recording per-kernel execution times —
// the calibration step the paper notes dmda requires ("running the
// application with at least ten different input sizes", §9.4; we calibrate
// with the exact launches, which favours dmda). Calibration time is not
// counted toward the measured run, matching the paper's methodology.
func CalibrateDmda(m Machine, app *App) (DmdaModel, error) {
	model := DmdaModel{}
	for _, cfg := range []device.Config{m.CPU, m.GPU} {
		r, err := RunSingle(cfg, app)
		if err != nil {
			return nil, err
		}
		if len(r.LaunchTimes) != len(app.Launches) {
			return nil, fmt.Errorf("sched: calibration recorded %d launches, want %d", len(r.LaunchTimes), len(app.Launches))
		}
		for i, l := range app.Launches {
			key := dmdaKey(l)
			if model[key] == nil {
				model[key] = map[device.Kind]sim.Time{}
			}
			// Average over repeated identical launches.
			if prev, ok := model[key][cfg.Kind]; ok {
				model[key][cfg.Kind] = (prev + r.LaunchTimes[i]) / 2
			} else {
				model[key][cfg.Kind] = r.LaunchTimes[i]
			}
		}
	}
	return model, nil
}

// RunSocl executes the app under the SOCL-like task scheduler: each kernel
// launch is one task placed wholly on one device, with automatic data
// management (lazy transfers through the host). model is required for Dmda
// and ignored for Eager.
func RunSocl(m Machine, app *App, policy Policy, model DmdaModel) (*Result, error) {
	if policy == Dmda && model == nil {
		return nil, fmt.Errorf("sched: dmda requires a calibrated model")
	}
	env := sim.NewEnv()
	cpuCtx := ocl.NewContext(env, device.New(env, m.CPU))
	gpuCtx := ocl.NewContext(env, device.New(env, m.GPU))
	cpuProg, err := cpuCtx.BuildProgram(app.Source)
	if err != nil {
		return nil, err
	}
	gpuProg, err := gpuCtx.BuildProgram(app.Source)
	if err != nil {
		return nil, err
	}
	info := cpuProg.Info
	cpuQ := cpuCtx.CreateQueue("app")
	gpuQ := gpuCtx.CreateQueue("app")

	bufNames := sortedBufferNames(app.Buffers)
	bufs := map[string]*sbuf{}
	for _, name := range bufNames {
		size := app.Buffers[name]
		bufs[name] = &sbuf{size: size, cpu: cpuCtx.CreateBuffer(size), gpu: gpuCtx.CreateBuffer(size), host: make([]byte, size)}
	}

	res := &Result{Outputs: map[string][]byte{}}
	var runErr error

	env.Go("app", func(p *sim.Proc) {
		// SOCL-style: inputs start host-side; transfers happen on demand.
		for _, name := range bufNames {
			b := bufs[name]
			data := app.Inputs[name]
			if data == nil {
				data = make([]byte, b.size)
			}
			copy(b.host, data)
		}
		toHost := func(b *sbuf) {
			switch {
			case b.onGPU:
				p.Wait(gpuQ.EnqueueReadBuffer(b.gpu, b.host))
			case b.onCPU:
				p.Wait(cpuQ.EnqueueReadBuffer(b.cpu, b.host))
			}
		}
		ensure := func(b *sbuf, gpu bool) {
			if gpu && !b.onGPU {
				toHost(b)
				p.Wait(gpuQ.EnqueueWriteBuffer(b.gpu, b.host))
				b.onGPU = true
			}
			if !gpu && !b.onCPU {
				toHost(b)
				p.Wait(cpuQ.EnqueueWriteBuffer(b.cpu, b.host))
				b.onCPU = true
			}
		}

		var cpuLastDone, gpuLastDone sim.Time
		for _, l := range app.Launches {
			ki := info.Kernels[l.Kernel]
			useGPU := false
			switch policy {
			case Eager:
				// Longest-idle worker gets the task; ties go to the CPU.
				useGPU = gpuLastDone < cpuLastDone
			case Dmda:
				useGPU = dmdaChoosesGPU(m, l, ki, bufs, model)
			}
			ensureAll(p, ki, l, bufs, ensure, useGPU)
			var prog *ocl.Program
			var q *ocl.CommandQueue
			if useGPU {
				prog, q = gpuProg, gpuQ
			} else {
				prog, q = cpuProg, cpuQ
			}
			args := soclArgs(l, bufs, useGPU)
			ev, lr := q.EnqueueNDRangeKernel(prog.MustKernel(l.Kernel), l.ND, args, ocl.LaunchOpts{Split: !useGPU})
			p.Wait(ev)
			if lr.Err != nil {
				runErr = lr.Err
				return
			}
			for _, name := range writtenBufNames(ki, l) {
				b := bufs[name]
				b.onGPU = useGPU
				b.onCPU = !useGPU
			}
			if useGPU {
				gpuLastDone = p.Now()
			} else {
				cpuLastDone = p.Now()
			}
		}
		for _, name := range app.Outputs {
			b := bufs[name]
			toHost(b)
			out := make([]byte, b.size)
			copy(out, b.host)
			res.Outputs[name] = out
		}
		res.Time = p.Now()
	})
	env.Run()
	if runErr != nil {
		return nil, runErr
	}
	if res.Time == 0 && len(app.Launches) > 0 {
		return nil, fmt.Errorf("sched: SOCL run of %s did not complete", app.Name)
	}
	res.Summary = env.Meter.Summary()
	return res, nil
}

func ensureAll(p *sim.Proc, ki *clc.KernelInfo, l Launch, bufs map[string]*sbuf, ensure func(*sbuf, bool), gpu bool) {
	for i, param := range ki.Kernel.Params {
		if !param.Ty.Ptr {
			continue
		}
		acc := ki.ParamAccess[param.Name]
		if acc.Read || acc.Written {
			ensure(bufs[l.Args[i].Name], gpu)
		}
	}
}

func soclArgs(l Launch, bufs map[string]*sbuf, gpu bool) []ocl.Arg {
	args := make([]ocl.Arg, len(l.Args))
	for i, a := range l.Args {
		switch a.Kind {
		case ArgBuf:
			if gpu {
				args[i] = ocl.BufArg(bufs[a.Name].gpu)
			} else {
				args[i] = ocl.BufArg(bufs[a.Name].cpu)
			}
		case ArgInt:
			args[i] = ocl.IntArg(a.I)
		default:
			args[i] = ocl.FloatArg(a.F)
		}
	}
	return args
}

// dmdaChoosesGPU predicts completion on each device (transfer of missing
// inputs + modelled execution) and picks the faster.
func dmdaChoosesGPU(m Machine, l Launch, ki *clc.KernelInfo, bufs map[string]*sbuf, model DmdaModel) bool {
	exec := model[dmdaKey(l)]
	predict := func(gpu bool) sim.Time {
		var t sim.Time
		link := m.CPU.Link
		kind := device.CPU
		if gpu {
			link = m.GPU.Link
			kind = device.GPU
		}
		for i, param := range ki.Kernel.Params {
			if !param.Ty.Ptr {
				continue
			}
			b := bufs[l.Args[i].Name]
			present := b.onGPU
			if !gpu {
				present = b.onCPU
			}
			if !present {
				// Missing data: fetch from the owner to host, then up.
				if b.onGPU {
					t += m.GPU.Link.TransferTime(b.size)
				} else if b.onCPU {
					t += m.CPU.Link.TransferTime(b.size)
				}
				t += link.TransferTime(b.size)
			}
		}
		if exec != nil {
			t += exec[kind]
		}
		return t
	}
	return predict(true) < predict(false)
}
