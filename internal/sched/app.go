// Package sched defines a device-agnostic application description and the
// baseline execution strategies the paper compares FluidiCL against:
//
//   - single-device execution through a vendor runtime (CPU-only, GPU-only);
//   - static work partitioning with x% of work-groups on the GPU, and the
//     OracleSP sweep that picks the best static split (§9.1);
//   - a StarPU/SOCL-like task scheduler with the `eager` policy and the
//     history-model-based `dmda` policy that requires calibration (§9.4).
package sched

import (
	"fmt"
	"sort"

	"fluidicl/internal/core"
	"fluidicl/internal/device"
	"fluidicl/internal/sim"
	"fluidicl/internal/trace"
	"fluidicl/internal/vm"
)

// ArgKind classifies launch arguments.
type ArgKind int

// Argument kinds.
const (
	ArgBuf ArgKind = iota
	ArgInt
	ArgFloat
)

// ArgSpec is one kernel argument in an application description.
type ArgSpec struct {
	Kind ArgKind
	Name string // buffer name for ArgBuf
	I    int64
	F    float64
}

// Buf references a named application buffer.
func Buf(name string) ArgSpec { return ArgSpec{Kind: ArgBuf, Name: name} }

// Int is an int argument.
func Int(v int64) ArgSpec { return ArgSpec{Kind: ArgInt, I: v} }

// Float is a float argument.
func Float(v float64) ArgSpec { return ArgSpec{Kind: ArgFloat, F: v} }

// Launch is one kernel enqueue in program order.
type Launch struct {
	Kernel string
	ND     vm.NDRange
	Args   []ArgSpec
}

// Variant is an alternate CPU implementation of a kernel (§6.6).
type Variant struct {
	Kernel string // kernel it replaces
	Source string
	Name   string
}

// App is a single-device OpenCL program: sources, buffers, input data and a
// sequence of kernel launches. Every execution strategy runs the same App.
type App struct {
	Name     string
	Source   string
	Buffers  map[string]int    // name -> size in bytes
	Inputs   map[string][]byte // initial contents (missing buffers start zeroed)
	Launches []Launch
	Outputs  []string // buffers read back at the end
	Variants []Variant
}

// Result is one application execution: total virtual running time (data
// transfers included, platform initialization excluded — the paper's
// methodology, §8) and the final output buffers.
type Result struct {
	Time    sim.Time
	Outputs map[string][]byte
	// LaunchTimes records per-launch kernel durations (single-device runs
	// only; used for Table 1 and dmda calibration).
	LaunchTimes []sim.Time
	Reports     []*core.KernelReport // FluidiCL runs only
	// Counters reports the transfer/merge work the FluidiCL runtime elided
	// based on static kernel summaries (FluidiCL runs only).
	Counters core.Counters
	// Summary aggregates the run's trace meter: per-device busy time and
	// work-group counts, bytes moved per link direction, and the fraction of
	// compute that overlapped across devices.
	Summary trace.Summary
}

// sortedBufferNames returns the app's buffer names in lexical order. Buffer
// setup iterates in this order (not map order) so that the sequence of
// enqueued transfers — and therefore recorded traces — is deterministic.
func sortedBufferNames(buffers map[string]int) []string {
	names := make([]string, 0, len(buffers))
	for name := range buffers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Machine bundles the device models for a run.
type Machine struct {
	CPU device.Config
	GPU device.Config
}

// DefaultMachine is the paper's experimental system (§8): a Tesla C2070
// and a quad-core Xeon W3550 with hyper-threading.
func DefaultMachine() Machine {
	return Machine{CPU: device.XeonW3550(), GPU: device.TeslaC2070()}
}

// RunFluidiCL executes the app under the FluidiCL runtime.
func RunFluidiCL(m Machine, app *App, opts core.Options) (*Result, error) {
	return RunFluidiCLRepeat(m, app, opts, 1)
}

// RunFluidiCLRepeat executes the app `times` times in one FluidiCL runtime
// and reports the last iteration (the paper's methodology excludes the
// first run, §8 — which is also when online profiling learns which kernel
// version is fastest, §6.6).
func RunFluidiCLRepeat(m Machine, app *App, opts core.Options, times int) (*Result, error) {
	return runFluidiCL(m, app, opts, times, nil)
}

// RunFluidiCLTraced is RunFluidiCL with an event recorder attached to the
// simulation: every launch, transfer, link-contention span and FluidiCL
// scheduling decision lands in rec for export (e.g. rec.WriteChrome).
// Recording does not perturb the simulation, so Result is identical to an
// untraced run.
func RunFluidiCLTraced(m Machine, app *App, opts core.Options, rec *trace.Recorder) (*Result, error) {
	return runFluidiCL(m, app, opts, 1, rec)
}

func runFluidiCL(m Machine, app *App, opts core.Options, times int, rec *trace.Recorder) (*Result, error) {
	env := sim.NewEnv()
	env.Trace = rec // before device.New, so devices register their tracks
	rt, err := core.New(env, device.New(env, m.CPU), device.New(env, m.GPU), opts)
	if err != nil {
		return nil, err
	}
	prog, err := rt.BuildProgram(app.Source)
	if err != nil {
		return nil, err
	}
	kernels := map[string]*core.Kernel{}
	for _, l := range app.Launches {
		if _, ok := kernels[l.Kernel]; ok {
			continue
		}
		k, err := prog.CreateKernel(l.Kernel)
		if err != nil {
			return nil, err
		}
		kernels[l.Kernel] = k
	}
	for _, v := range app.Variants {
		k, ok := kernels[v.Kernel]
		if !ok {
			return nil, fmt.Errorf("sched: variant for unknown kernel %q", v.Kernel)
		}
		if err := k.AddCPUVariant(v.Source, v.Name); err != nil {
			return nil, err
		}
	}
	bufNames := sortedBufferNames(app.Buffers)
	bufs := map[string]*core.Buffer{}
	for _, name := range bufNames {
		bufs[name] = rt.CreateBuffer(app.Buffers[name])
	}
	if times < 1 {
		times = 1
	}
	res := &Result{Outputs: map[string][]byte{}}
	var runErr error
	env.Go("app", func(p *sim.Proc) {
		for iter := 0; iter < times; iter++ {
			start := p.Now()
			for _, name := range bufNames {
				b := bufs[name]
				data := app.Inputs[name]
				if data == nil {
					data = make([]byte, app.Buffers[name])
				}
				rt.EnqueueWriteBuffer(p, b, data)
			}
			for _, l := range app.Launches {
				args := make([]core.Arg, len(l.Args))
				for i, a := range l.Args {
					switch a.Kind {
					case ArgBuf:
						args[i] = core.BufArg(bufs[a.Name])
					case ArgInt:
						args[i] = core.IntArg(a.I)
					default:
						args[i] = core.FloatArg(a.F)
					}
				}
				if err := rt.EnqueueNDRangeKernel(p, kernels[l.Kernel], l.ND, args); err != nil {
					runErr = err
					return
				}
			}
			for _, name := range app.Outputs {
				res.Outputs[name] = rt.EnqueueReadBuffer(p, bufs[name])
			}
			res.Time = p.Now() - start
		}
	})
	env.Run()
	if runErr != nil {
		return nil, runErr
	}
	if err := rt.Err(); err != nil {
		// Deferred failures include dynamic accesses that violated the
		// static summary an elision relied on — results are suspect.
		return nil, err
	}
	if res.Time == 0 && len(app.Launches) > 0 {
		return nil, fmt.Errorf("sched: FluidiCL run of %s did not complete", app.Name)
	}
	res.Reports = rt.Reports
	res.Counters = rt.Counters()
	res.Summary = env.Meter.Summary()
	trace.AccumulateGlobal(res.Summary)
	return res, nil
}
