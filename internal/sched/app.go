// Package sched defines a device-agnostic application description and the
// baseline execution strategies the paper compares FluidiCL against:
//
//   - single-device execution through a vendor runtime (CPU-only, GPU-only);
//   - static work partitioning with x% of work-groups on the GPU, and the
//     OracleSP sweep that picks the best static split (§9.1);
//   - a StarPU/SOCL-like task scheduler with the `eager` policy and the
//     history-model-based `dmda` policy that requires calibration (§9.4).
package sched

import (
	"fmt"

	"fluidicl/internal/core"
	"fluidicl/internal/device"
	"fluidicl/internal/sim"
	"fluidicl/internal/vm"
)

// ArgKind classifies launch arguments.
type ArgKind int

// Argument kinds.
const (
	ArgBuf ArgKind = iota
	ArgInt
	ArgFloat
)

// ArgSpec is one kernel argument in an application description.
type ArgSpec struct {
	Kind ArgKind
	Name string // buffer name for ArgBuf
	I    int64
	F    float64
}

// Buf references a named application buffer.
func Buf(name string) ArgSpec { return ArgSpec{Kind: ArgBuf, Name: name} }

// Int is an int argument.
func Int(v int64) ArgSpec { return ArgSpec{Kind: ArgInt, I: v} }

// Float is a float argument.
func Float(v float64) ArgSpec { return ArgSpec{Kind: ArgFloat, F: v} }

// Launch is one kernel enqueue in program order.
type Launch struct {
	Kernel string
	ND     vm.NDRange
	Args   []ArgSpec
}

// Variant is an alternate CPU implementation of a kernel (§6.6).
type Variant struct {
	Kernel string // kernel it replaces
	Source string
	Name   string
}

// App is a single-device OpenCL program: sources, buffers, input data and a
// sequence of kernel launches. Every execution strategy runs the same App.
type App struct {
	Name     string
	Source   string
	Buffers  map[string]int    // name -> size in bytes
	Inputs   map[string][]byte // initial contents (missing buffers start zeroed)
	Launches []Launch
	Outputs  []string // buffers read back at the end
	Variants []Variant
}

// Result is one application execution: total virtual running time (data
// transfers included, platform initialization excluded — the paper's
// methodology, §8) and the final output buffers.
type Result struct {
	Time    sim.Time
	Outputs map[string][]byte
	// LaunchTimes records per-launch kernel durations (single-device runs
	// only; used for Table 1 and dmda calibration).
	LaunchTimes []sim.Time
	Reports     []*core.KernelReport // FluidiCL runs only
	// Counters reports the transfer/merge work the FluidiCL runtime elided
	// based on static kernel summaries (FluidiCL runs only).
	Counters core.Counters
}

// Machine bundles the device models for a run.
type Machine struct {
	CPU device.Config
	GPU device.Config
}

// DefaultMachine is the paper's experimental system (§8): a Tesla C2070
// and a quad-core Xeon W3550 with hyper-threading.
func DefaultMachine() Machine {
	return Machine{CPU: device.XeonW3550(), GPU: device.TeslaC2070()}
}

// RunFluidiCL executes the app under the FluidiCL runtime.
func RunFluidiCL(m Machine, app *App, opts core.Options) (*Result, error) {
	return RunFluidiCLRepeat(m, app, opts, 1)
}

// RunFluidiCLRepeat executes the app `times` times in one FluidiCL runtime
// and reports the last iteration (the paper's methodology excludes the
// first run, §8 — which is also when online profiling learns which kernel
// version is fastest, §6.6).
func RunFluidiCLRepeat(m Machine, app *App, opts core.Options, times int) (*Result, error) {
	env := sim.NewEnv()
	rt, err := core.New(env, device.New(env, m.CPU), device.New(env, m.GPU), opts)
	if err != nil {
		return nil, err
	}
	prog, err := rt.BuildProgram(app.Source)
	if err != nil {
		return nil, err
	}
	kernels := map[string]*core.Kernel{}
	for _, l := range app.Launches {
		if _, ok := kernels[l.Kernel]; ok {
			continue
		}
		k, err := prog.CreateKernel(l.Kernel)
		if err != nil {
			return nil, err
		}
		kernels[l.Kernel] = k
	}
	for _, v := range app.Variants {
		k, ok := kernels[v.Kernel]
		if !ok {
			return nil, fmt.Errorf("sched: variant for unknown kernel %q", v.Kernel)
		}
		if err := k.AddCPUVariant(v.Source, v.Name); err != nil {
			return nil, err
		}
	}
	bufs := map[string]*core.Buffer{}
	for name, size := range app.Buffers {
		bufs[name] = rt.CreateBuffer(size)
	}
	if times < 1 {
		times = 1
	}
	res := &Result{Outputs: map[string][]byte{}}
	var runErr error
	env.Go("app", func(p *sim.Proc) {
		for iter := 0; iter < times; iter++ {
			start := p.Now()
			for name, b := range bufs {
				data := app.Inputs[name]
				if data == nil {
					data = make([]byte, app.Buffers[name])
				}
				rt.EnqueueWriteBuffer(p, b, data)
			}
			for _, l := range app.Launches {
				args := make([]core.Arg, len(l.Args))
				for i, a := range l.Args {
					switch a.Kind {
					case ArgBuf:
						args[i] = core.BufArg(bufs[a.Name])
					case ArgInt:
						args[i] = core.IntArg(a.I)
					default:
						args[i] = core.FloatArg(a.F)
					}
				}
				if err := rt.EnqueueNDRangeKernel(p, kernels[l.Kernel], l.ND, args); err != nil {
					runErr = err
					return
				}
			}
			for _, name := range app.Outputs {
				res.Outputs[name] = rt.EnqueueReadBuffer(p, bufs[name])
			}
			res.Time = p.Now() - start
		}
	})
	env.Run()
	if runErr != nil {
		return nil, runErr
	}
	if err := rt.Err(); err != nil {
		// Deferred failures include dynamic accesses that violated the
		// static summary an elision relied on — results are suspect.
		return nil, err
	}
	if res.Time == 0 && len(app.Launches) > 0 {
		return nil, fmt.Errorf("sched: FluidiCL run of %s did not complete", app.Name)
	}
	res.Reports = rt.Reports
	res.Counters = rt.Counters()
	return res, nil
}
