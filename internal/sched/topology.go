package sched

import (
	"fmt"

	"fluidicl/internal/core"
	"fluidicl/internal/device"
	"fluidicl/internal/sim"
	"fluidicl/internal/trace"
)

// RunTopology executes the app under FluidiCL on an N-device topology.
//
// The degenerate two-device machine — exactly one CPU and one GPU on
// dedicated, config-default links — runs through the original twin-execution
// protocol, so its results, virtual timings and traces are bit-identical to
// RunFluidiCL on the equivalent Machine. Every other topology runs the N-way
// work-stealing runtime (core.TopoRuntime).
func RunTopology(topo device.Topology, app *App, opts core.Options) (*Result, error) {
	return runTopology(topo, app, opts, nil)
}

// RunTopologyTraced is RunTopology with an event recorder attached: every
// chunk launch, link transfer (including contention waits on a shared bus)
// and refresh lands in rec for export. Recording does not perturb the
// simulation, so Result is identical to an untraced run.
func RunTopologyTraced(topo device.Topology, app *App, opts core.Options, rec *trace.Recorder) (*Result, error) {
	return runTopology(topo, app, opts, rec)
}

func runTopology(topo device.Topology, app *App, opts core.Options, rec *trace.Recorder) (*Result, error) {
	if cpu, gpu, ok := topo.Pair(); ok {
		return runFluidiCL(Machine{CPU: cpu, GPU: gpu}, app, opts, 1, rec)
	}
	if len(topo.Devices) == 0 {
		return nil, fmt.Errorf("sched: topology %q has no devices", topo.String())
	}
	env := sim.NewEnv()
	env.Trace = rec // before Build, so devices register their tracks
	rt, err := core.NewTopo(env, topo.Build(env), opts)
	if err != nil {
		return nil, err
	}
	prog, err := rt.BuildProgram(app.Source)
	if err != nil {
		return nil, err
	}
	kernels := map[string]*core.TopoKernel{}
	for _, l := range app.Launches {
		if _, ok := kernels[l.Kernel]; ok {
			continue
		}
		k, err := prog.CreateKernel(l.Kernel)
		if err != nil {
			return nil, err
		}
		kernels[l.Kernel] = k
	}
	// CPU kernel variants (§6.6) are a twin-protocol feature: the N-way
	// runtime runs the original kernel on every device. Variants are
	// functionally identical by contract, so ignoring them never changes
	// results, only (potentially) CPU-side timing.
	bufNames := sortedBufferNames(app.Buffers)
	bufs := map[string]*core.TopoBuffer{}
	for _, name := range bufNames {
		bufs[name] = rt.CreateBuffer(app.Buffers[name])
	}
	res := &Result{Outputs: map[string][]byte{}}
	var runErr error
	env.Go("app", func(p *sim.Proc) {
		start := p.Now()
		for _, name := range bufNames {
			b := bufs[name]
			data := app.Inputs[name]
			if data == nil {
				data = make([]byte, app.Buffers[name])
			}
			rt.EnqueueWriteBuffer(p, b, data)
		}
		for _, l := range app.Launches {
			args := make([]core.Arg, len(l.Args))
			for i, a := range l.Args {
				switch a.Kind {
				case ArgBuf:
					args[i] = core.TopoBufArg(bufs[a.Name])
				case ArgInt:
					args[i] = core.IntArg(a.I)
				default:
					args[i] = core.FloatArg(a.F)
				}
			}
			if err := rt.EnqueueNDRangeKernel(p, kernels[l.Kernel], l.ND, args); err != nil {
				runErr = err
				return
			}
		}
		rt.Finish(p)
		for _, name := range app.Outputs {
			res.Outputs[name] = rt.EnqueueReadBuffer(p, bufs[name])
		}
		res.Time = p.Now() - start
	})
	env.Run()
	if runErr != nil {
		return nil, runErr
	}
	if err := rt.Err(); err != nil {
		return nil, err
	}
	if res.Time == 0 && len(app.Launches) > 0 {
		return nil, fmt.Errorf("sched: topology run of %s did not complete", app.Name)
	}
	res.Reports = rt.Reports
	res.Counters = rt.Counters()
	res.Summary = env.Meter.Summary()
	trace.AccumulateGlobal(res.Summary)
	return res, nil
}
