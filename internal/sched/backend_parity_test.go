// Acceptance test for the closure backend (external package: polybench
// imports sched). The two work-group execution backends must be
// observationally identical through the whole stack: same output buffers,
// same virtual time, and byte-identical Chrome traces on every quick-scale
// Polybench experiment.
package sched_test

import (
	"bytes"
	"testing"

	"fluidicl/internal/core"
	"fluidicl/internal/polybench"
	"fluidicl/internal/sched"
	"fluidicl/internal/trace"
	"fluidicl/internal/vm"
)

func TestBackendParityFluidiCL(t *testing.T) {
	for _, b := range polybench.AllQuick() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			type runOut struct {
				res   *sched.Result
				chrom []byte
			}
			run := func(be vm.Backend) runOut {
				rec := trace.NewRecorder()
				res, err := sched.RunFluidiCLTraced(sched.DefaultMachine(), b.App,
					core.Options{Backend: be}, rec)
				if err != nil {
					t.Fatalf("%v backend: %v", be, err)
				}
				var buf bytes.Buffer
				if err := rec.WriteChrome(&buf); err != nil {
					t.Fatal(err)
				}
				return runOut{res, buf.Bytes()}
			}
			ri := run(vm.BackendInterp)
			rc := run(vm.BackendClosure)
			if ri.res.Time != rc.res.Time {
				t.Errorf("virtual time diverges: interp=%v closure=%v", ri.res.Time, rc.res.Time)
			}
			for name, want := range ri.res.Outputs {
				if got := rc.res.Outputs[name]; !bytes.Equal(got, want) {
					t.Errorf("output %q differs between backends", name)
				}
			}
			if err := b.Verify(rc.res.Outputs); err != nil {
				t.Errorf("closure backend output wrong: %v", err)
			}
			if !bytes.Equal(ri.chrom, rc.chrom) {
				t.Errorf("Chrome traces differ between backends (%d vs %d bytes)",
					len(ri.chrom), len(rc.chrom))
			}
		})
	}
}
