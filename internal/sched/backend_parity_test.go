// Acceptance test for the closure and wg backends (external package:
// polybench imports sched). Every work-group execution backend must be
// observationally identical through the whole stack: same output buffers,
// same virtual time, and byte-identical Chrome traces on every quick-scale
// Polybench experiment.
package sched_test

import (
	"bytes"
	"testing"

	"fluidicl/internal/core"
	"fluidicl/internal/polybench"
	"fluidicl/internal/sched"
	"fluidicl/internal/trace"
	"fluidicl/internal/vm"
)

// TestCorrFullyCertifiedWG pins the strided certificate's headline win:
// CORR's correlation kernel stores to the diagonal, a row run, and a
// strided column — three different affine forms that the identical-form
// certificate rejects — yet its per-work-item footprints are pairwise
// disjoint, so the disjointness certificate admits every work-group to the
// lockstep engine and the quick-scale experiment runs with zero wg-backend
// fallbacks.
func TestCorrFullyCertifiedWG(t *testing.T) {
	b, err := polybench.ByNameQuick("CORR")
	if err != nil {
		t.Fatal(err)
	}
	before := core.CounterSnapshot()
	res, err := sched.RunFluidiCL(sched.DefaultMachine(), b.App, core.Options{Backend: vm.BackendWG})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(res.Outputs); err != nil {
		t.Fatal(err)
	}
	delta := core.CounterSnapshot().Sub(before)
	if delta.WGFallbackWGs != 0 {
		t.Errorf("WGFallbackWGs = %d, want 0: CORR must run fully certified under the wg backend (rejects: shape=%d alias=%d no_sum=%d local=%d unk_store=%d unk_read=%d overlap=%d budget=%d)",
			delta.WGFallbackWGs, delta.WGCertRejShape, delta.WGCertRejAlias, delta.WGCertRejNoSum,
			delta.WGCertRejLocal, delta.WGCertRejUnkStore, delta.WGCertRejUnkRead,
			delta.WGCertRejOverlap, delta.WGCertRejBudget)
	}
	if delta.WGStridedWGs == 0 {
		t.Error("WGStridedWGs = 0: no work-group was admitted by the strided disjointness certificate")
	}
	if delta.WGLoopWGs == 0 {
		t.Error("WGLoopWGs = 0: the lockstep engine never ran")
	}
}

func TestBackendParityFluidiCL(t *testing.T) {
	for _, b := range polybench.AllQuick() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			type runOut struct {
				res   *sched.Result
				chrom []byte
			}
			run := func(be vm.Backend) runOut {
				rec := trace.NewRecorder()
				res, err := sched.RunFluidiCLTraced(sched.DefaultMachine(), b.App,
					core.Options{Backend: be}, rec)
				if err != nil {
					t.Fatalf("%v backend: %v", be, err)
				}
				var buf bytes.Buffer
				if err := rec.WriteChrome(&buf); err != nil {
					t.Fatal(err)
				}
				return runOut{res, buf.Bytes()}
			}
			ri := run(vm.BackendInterp)
			for _, be := range []vm.Backend{vm.BackendClosure, vm.BackendWG} {
				rc := run(be)
				if ri.res.Time != rc.res.Time {
					t.Errorf("virtual time diverges: interp=%v %v=%v", ri.res.Time, be, rc.res.Time)
				}
				for name, want := range ri.res.Outputs {
					if got := rc.res.Outputs[name]; !bytes.Equal(got, want) {
						t.Errorf("output %q differs between interp and %v", name, be)
					}
				}
				if err := b.Verify(rc.res.Outputs); err != nil {
					t.Errorf("%v backend output wrong: %v", be, err)
				}
				if !bytes.Equal(ri.chrom, rc.chrom) {
					t.Errorf("Chrome traces differ between interp and %v (%d vs %d bytes)",
						be, len(ri.chrom), len(rc.chrom))
				}
			}
		})
	}
}

// TestWGFuseParityFluidiCL pins the region-fusion pass (DESIGN.md S20)
// against the per-step lockstep engine through the whole stack: with the
// wg backend on both devices, a fused run and an unfused run of every
// quick-scale Polybench app must produce the same output bytes, the same
// virtual time, and byte-identical Chrome traces. Fused runs first so the
// jams execute against cold per-kernel scratch pools, the state in which
// a mis-reserved columnar log historically diverged.
func TestWGFuseParityFluidiCL(t *testing.T) {
	defer vm.SetWGFuse(true)
	for _, b := range polybench.AllQuick() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			type runOut struct {
				res   *sched.Result
				chrom []byte
			}
			run := func(fuse bool) runOut {
				vm.SetWGFuse(fuse)
				rec := trace.NewRecorder()
				res, err := sched.RunFluidiCLTraced(sched.DefaultMachine(), b.App,
					core.Options{Backend: vm.BackendWG}, rec)
				if err != nil {
					t.Fatalf("wgfuse=%v: %v", fuse, err)
				}
				var buf bytes.Buffer
				if err := rec.WriteChrome(&buf); err != nil {
					t.Fatal(err)
				}
				return runOut{res, buf.Bytes()}
			}
			rf := run(true)
			ru := run(false)
			if rf.res.Time != ru.res.Time {
				t.Errorf("virtual time diverges: fused=%v unfused=%v", rf.res.Time, ru.res.Time)
			}
			for name, want := range ru.res.Outputs {
				if got := rf.res.Outputs[name]; !bytes.Equal(got, want) {
					t.Errorf("output %q differs between fused and unfused wg", name)
				}
			}
			if err := b.Verify(rf.res.Outputs); err != nil {
				t.Errorf("fused wg output wrong: %v", err)
			}
			if !bytes.Equal(rf.chrom, ru.chrom) {
				t.Errorf("Chrome traces differ between fused and unfused wg (%d vs %d bytes)",
					len(rf.chrom), len(ru.chrom))
			}
		})
	}
}
