// Acceptance tests for the N-device topology runtime (external package:
// polybench imports sched). The degenerate two-device topology must be
// bit-identical to the twin protocol; every larger topology must produce
// bit-exact Polybench results, deterministically, on every VM backend.
package sched_test

import (
	"bytes"
	"testing"

	"fluidicl/internal/core"
	"fluidicl/internal/device"
	"fluidicl/internal/polybench"
	"fluidicl/internal/sched"
	"fluidicl/internal/trace"
	"fluidicl/internal/vm"
)

// TestTopologyPairBitIdentical pins the tentpole's compatibility guarantee:
// RunTopology("cpu+gpu") routes through the original twin protocol, so
// outputs, virtual time, kernel reports and the full Chrome trace are
// byte-identical to RunFluidiCL on the default machine.
func TestTopologyPairBitIdentical(t *testing.T) {
	topo := device.MustParseTopology("cpu+gpu")
	for _, name := range []string{"2DCONV", "BICG", "CORR"} {
		b, err := polybench.ByNameQuick(name)
		if err != nil {
			t.Fatal(err)
		}
		recTwin, recTopo := trace.NewRecorder(), trace.NewRecorder()
		twin, err := sched.RunFluidiCLTraced(sched.DefaultMachine(), b.App, core.Options{}, recTwin)
		if err != nil {
			t.Fatal(err)
		}
		topoRes, err := sched.RunTopologyTraced(topo, b.App, core.Options{}, recTopo)
		if err != nil {
			t.Fatal(err)
		}
		if twin.Time != topoRes.Time {
			t.Fatalf("%s: cpu+gpu topology time %v != twin time %v", name, topoRes.Time, twin.Time)
		}
		for out, want := range twin.Outputs {
			if !bytes.Equal(topoRes.Outputs[out], want) {
				t.Fatalf("%s: cpu+gpu topology output %q differs from twin run", name, out)
			}
		}
		var twinTrace, topoTrace bytes.Buffer
		if err := recTwin.WriteChrome(&twinTrace); err != nil {
			t.Fatal(err)
		}
		if err := recTopo.WriteChrome(&topoTrace); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(twinTrace.Bytes(), topoTrace.Bytes()) {
			t.Fatalf("%s: cpu+gpu topology trace differs from twin trace (%d vs %d bytes)",
				name, topoTrace.Len(), twinTrace.Len())
		}
	}
}

// TestTopologyQuickSuite runs the full quick-scale Polybench suite on a
// four-device topology and verifies bit-exact results plus run-to-run
// determinism of outputs and virtual time.
func TestTopologyQuickSuite(t *testing.T) {
	topo := device.MustParseTopology("2cpu+2gpu")
	for _, b := range polybench.AllQuick() {
		first, err := sched.RunTopology(topo, b.App, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := b.Verify(first.Outputs); err != nil {
			t.Fatalf("2cpu+2gpu: %v", err)
		}
		again, err := sched.RunTopology(topo, b.App, core.Options{})
		if err != nil {
			t.Fatalf("%s (rerun): %v", b.Name, err)
		}
		if first.Time != again.Time {
			t.Fatalf("%s: virtual time not deterministic: %v vs %v", b.Name, first.Time, again.Time)
		}
		for out, want := range first.Outputs {
			if !bytes.Equal(again.Outputs[out], want) {
				t.Fatalf("%s: output %q not deterministic across reruns", b.Name, out)
			}
		}
		if len(first.Reports) == 0 {
			t.Fatalf("%s: no kernel reports", b.Name)
		}
		for _, rep := range first.Reports {
			if len(rep.DeviceWGs) != 4 {
				t.Fatalf("%s: report has %d device rows, want 4", b.Name, len(rep.DeviceWGs))
			}
			sum := 0
			for _, n := range rep.DeviceWGs {
				sum += n
			}
			if sum != rep.TotalWGs {
				t.Fatalf("%s kernel %s: device work-group counts sum to %d, want %d",
					b.Name, rep.Name, sum, rep.TotalWGs)
			}
		}
	}
}

// TestTopologyShapes verifies a spread of topology shapes — heterogeneous
// three-device, shared-bus four-GPU, and a single device — all produce
// bit-exact results.
func TestTopologyShapes(t *testing.T) {
	for _, spec := range []string{"cpu+2gpu", "4gpu-bus", "gpu", "bigcpu+gt440+gpu"} {
		topo := device.MustParseTopology(spec)
		for _, name := range []string{"2DCONV", "GESUMMV"} {
			b, err := polybench.ByNameQuick(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sched.RunTopology(topo, b.App, core.Options{})
			if err != nil {
				t.Fatalf("%s on %s: %v", name, spec, err)
			}
			if err := b.Verify(res.Outputs); err != nil {
				t.Fatalf("%s: %v", spec, err)
			}
		}
	}
}

// TestTopologyWorkerCountInvariant pins host-parallelism independence: the
// simulation's claim protocol and virtual clock must not observe how many
// host threads execute work-groups.
func TestTopologyWorkerCountInvariant(t *testing.T) {
	topo := device.MustParseTopology("2cpu+2gpu")
	b, err := polybench.ByNameQuick("SYRK")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *sched.Result {
		vm.SetWorkers(workers)
		defer vm.SetWorkers(0)
		res, err := sched.RunTopology(topo, b.App, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(1), run(8)
	if seq.Time != par.Time {
		t.Fatalf("virtual time depends on host workers: %v vs %v", seq.Time, par.Time)
	}
	for out, want := range seq.Outputs {
		if !bytes.Equal(par.Outputs[out], want) {
			t.Fatalf("output %q depends on host workers", out)
		}
	}
}

// TestTopologyBackendParity runs one benchmark on a three-device topology
// under every VM backend: outputs and virtual time must be identical.
func TestTopologyBackendParity(t *testing.T) {
	topo := device.MustParseTopology("cpu+2gpu")
	b, err := polybench.ByNameQuick("ATAX")
	if err != nil {
		t.Fatal(err)
	}
	var ref *sched.Result
	for _, be := range []vm.Backend{vm.BackendInterp, vm.BackendClosure, vm.BackendWG} {
		res, err := sched.RunTopology(topo, b.App, core.Options{Backend: be})
		if err != nil {
			t.Fatalf("backend %v: %v", be, err)
		}
		if err := b.Verify(res.Outputs); err != nil {
			t.Fatalf("backend %v: %v", be, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Time != ref.Time {
			t.Fatalf("backend %v: time %v differs from reference %v", be, res.Time, ref.Time)
		}
		for out, want := range ref.Outputs {
			if !bytes.Equal(res.Outputs[out], want) {
				t.Fatalf("backend %v: output %q differs", be, out)
			}
		}
	}
}

// TestTopologyElisionCounters verifies the certificate-narrowed ships fire
// on a topology run: 2DCONV's slot-exact output must skip ship bytes.
func TestTopologyElisionCounters(t *testing.T) {
	topo := device.MustParseTopology("cpu+2gpu")
	b, err := polybench.ByNameQuick("2DCONV")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.RunTopology(topo, b.App, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(res.Outputs); err != nil {
		t.Fatal(err)
	}
	if res.Counters.ShipBytesSkipped == 0 {
		t.Fatal("expected narrowed ships to skip bytes on a topology run")
	}
}

// TestTopologyDeltaRefreshPlanner pins the delta-refresh planner's effect on
// a multi-kernel benchmark: chained kernels on a >2-device topology must
// skip refresh bytes (owner-skip plus unchanged-word elision) and enqueue at
// least one delta scatter-write, while results stay bit-exact.
func TestTopologyDeltaRefreshPlanner(t *testing.T) {
	topo := device.MustParseTopology("2cpu+2gpu")
	b, err := polybench.ByNameQuick("2MM")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.RunTopology(topo, b.App, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(res.Outputs); err != nil {
		t.Fatal(err)
	}
	if res.Counters.RefreshBytesSkipped == 0 {
		t.Fatal("multi-kernel topology run skipped no refresh bytes")
	}
	if res.Counters.RefreshDeltas == 0 {
		t.Fatal("multi-kernel topology run enqueued no delta refreshes")
	}
}
