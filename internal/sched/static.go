package sched

import (
	"fmt"

	"fluidicl/internal/clc"
	"fluidicl/internal/device"
	"fluidicl/internal/ocl"
	"fluidicl/internal/passes"
	"fluidicl/internal/sim"
	"fluidicl/internal/vm"
)

// RunStatic executes the app with a fixed work partitioning: gpuPct percent
// of every kernel's work-groups on the GPU (from flattened ID 0 upward) and
// the rest on the CPU. This is the manual static partitioning of the
// paper's Figures 2-3 and the building block of OracleSP (§9.1).
//
// Coherence is handled the way a careful manual implementation would: both
// kernel halves run concurrently, the CPU half's data is shipped to the GPU
// and merged there with the same diff-merge kernel FluidiCL uses, and
// buffers move lazily between devices based on location tracking.
func RunStatic(m Machine, app *App, gpuPct int) (*Result, error) {
	if gpuPct <= 0 {
		return RunSingle(m.CPU, app)
	}
	if gpuPct >= 100 {
		return RunSingle(m.GPU, app)
	}

	env := sim.NewEnv()
	cpuCtx := ocl.NewContext(env, device.New(env, m.CPU))
	gpuCtx := ocl.NewContext(env, device.New(env, m.GPU))

	// Guarded program: a range-guard transform on both devices lets each
	// execute an arbitrary flattened work-group interval.
	guarded, info, err := buildGuarded(app.Source)
	if err != nil {
		return nil, err
	}
	cpuProg, err := cpuCtx.BuildProgram(guarded)
	if err != nil {
		return nil, err
	}
	gpuProg, err := gpuCtx.BuildProgram(guarded)
	if err != nil {
		return nil, err
	}
	mergeProg, err := gpuCtx.BuildProgram(passes.MergeKernelSource)
	if err != nil {
		return nil, err
	}
	mergeK := mergeProg.MustKernel(passes.MergeKernelName)

	cpuQ := cpuCtx.CreateQueue("app")
	gpuQ := gpuCtx.CreateQueue("app")

	bufNames := sortedBufferNames(app.Buffers)
	bufs := map[string]*sbuf{}
	for _, name := range bufNames {
		size := app.Buffers[name]
		bufs[name] = &sbuf{size: size, cpu: cpuCtx.CreateBuffer(size), gpu: gpuCtx.CreateBuffer(size), host: make([]byte, size)}
	}

	res := &Result{Outputs: map[string][]byte{}}
	var runErr error
	fail := func(err error) { runErr = err }

	env.Go("app", func(p *sim.Proc) {
		for _, name := range bufNames {
			b := bufs[name]
			data := app.Inputs[name]
			if data == nil {
				data = make([]byte, b.size)
			}
			copy(b.host, data)
			evC := cpuQ.EnqueueWriteBuffer(b.cpu, data)
			evG := gpuQ.EnqueueWriteBuffer(b.gpu, data)
			p.WaitAll(evC, evG)
			b.onCPU, b.onGPU = true, true
		}

		// toHost / toDev move the canonical copy as needed.
		toHost := func(b *sbuf) {
			switch {
			case b.onGPU:
				p.Wait(gpuQ.EnqueueReadBuffer(b.gpu, b.host))
			case b.onCPU:
				p.Wait(cpuQ.EnqueueReadBuffer(b.cpu, b.host))
			}
		}
		ensure := func(b *sbuf, gpu bool) {
			if gpu && !b.onGPU {
				toHost(b)
				p.Wait(gpuQ.EnqueueWriteBuffer(b.gpu, b.host))
				b.onGPU = true
			}
			if !gpu && !b.onCPU {
				toHost(b)
				p.Wait(cpuQ.EnqueueWriteBuffer(b.cpu, b.host))
				b.onCPU = true
			}
		}

		for _, l := range app.Launches {
			ki := info.Kernels[l.Kernel]
			total := l.ND.TotalGroups()
			g := total * gpuPct / 100
			if g < 1 {
				g = 1
			}
			if g > total-1 {
				g = total - 1
			}

			// Move inputs where they are needed.
			for i, param := range ki.Kernel.Params {
				if !param.Ty.Ptr {
					continue
				}
				b := bufs[l.Args[i].Name]
				acc := ki.ParamAccess[param.Name]
				if acc.Read || acc.Written {
					ensure(b, true)
					ensure(b, false)
				}
			}

			// Scratch for merging the CPU half into the GPU buffers.
			type scr struct {
				b             *sbuf
				orig, cpuCopy *ocl.Buffer
			}
			var scrs []scr
			for _, name := range writtenBufNames(ki, l) {
				b := bufs[name]
				s := scr{b: b, orig: gpuCtx.CreateBuffer(b.size), cpuCopy: gpuCtx.CreateBuffer(b.size)}
				gpuQ.EnqueueCopyBuffer(b.gpu, s.orig)
				scrs = append(scrs, s)
			}

			gk := gpuProg.MustKernel(l.Kernel)
			ck := cpuProg.MustKernel(l.Kernel)
			gArgs := guardedArgs(l, bufs, true, 0, g-1)
			cArgs := guardedArgs(l, bufs, false, g, total-1)
			gEv, gRes := gpuQ.EnqueueNDRangeKernel(gk, l.ND.Slice(0, g-1), gArgs, ocl.LaunchOpts{})
			cEv, cRes := cpuQ.EnqueueNDRangeKernel(ck, l.ND.Slice(g, total-1), cArgs, ocl.LaunchOpts{Split: true})
			p.WaitAll(gEv, cEv)
			if gRes.Err != nil {
				fail(gRes.Err)
				return
			}
			if cRes.Err != nil {
				fail(cRes.Err)
				return
			}

			// Ship the CPU half over and merge on the GPU.
			for _, s := range scrs {
				staging := make([]byte, s.b.size)
				p.Wait(cpuQ.EnqueueReadBuffer(s.b.cpu, staging))
				p.Wait(gpuQ.EnqueueWriteBuffer(s.cpuCopy, staging))
				words := s.b.size / 4
				local := 64
				global := ((words + local - 1) / local) * local
				ev, mr := gpuQ.EnqueueNDRangeKernel(mergeK, vm.NewNDRange1D(global, local),
					[]ocl.Arg{ocl.BufArg(s.cpuCopy), ocl.BufArg(s.b.gpu), ocl.BufArg(s.orig), ocl.IntArg(int64(words)), ocl.IntArg(0)},
					ocl.LaunchOpts{})
				p.Wait(ev)
				if mr.Err != nil {
					fail(mr.Err)
					return
				}
				s.b.onGPU = true
				s.b.onCPU = false
			}
		}
		for _, name := range app.Outputs {
			b := bufs[name]
			toHost(b)
			out := make([]byte, b.size)
			copy(out, b.host)
			res.Outputs[name] = out
		}
		res.Time = p.Now()
	})
	env.Run()
	if runErr != nil {
		return nil, runErr
	}
	if res.Time == 0 && len(app.Launches) > 0 {
		return nil, fmt.Errorf("sched: static run of %s did not complete", app.Name)
	}
	res.Summary = env.Meter.Summary()
	return res, nil
}

// buildGuarded applies the range-guard transform to every kernel and
// returns the transformed source plus the original-source analysis.
func buildGuarded(src string) (string, *clc.ProgramInfo, error) {
	orig, err := clc.Parse(src)
	if err != nil {
		return "", nil, err
	}
	info, err := clc.Check(orig)
	if err != nil {
		return "", nil, err
	}
	ast, err := clc.Parse(src)
	if err != nil {
		return "", nil, err
	}
	for _, k := range ast.Kernels {
		if err := passes.TransformCPU(k); err != nil {
			return "", nil, err
		}
	}
	return clc.Print(ast), info, nil
}

func writtenBufNames(ki *clc.KernelInfo, l Launch) []string {
	var out []string
	for i, param := range ki.Kernel.Params {
		if param.Ty.Ptr && ki.ParamAccess[param.Name].Written {
			out = append(out, l.Args[i].Name)
		}
	}
	return out
}

// sbuf is a statically-partitioned buffer: one copy per device plus a host
// shadow with location flags.
type sbuf struct {
	size     int
	cpu, gpu *ocl.Buffer
	host     []byte
	onCPU    bool
	onGPU    bool
}

// guardedArgs binds a launch's args for one device and appends the
// flattened-range guard parameters.
func guardedArgs(l Launch, bufs map[string]*sbuf, gpu bool, lo, hi int) []ocl.Arg {
	args := make([]ocl.Arg, 0, len(l.Args)+2)
	for _, a := range l.Args {
		switch a.Kind {
		case ArgBuf:
			b := bufs[a.Name]
			if gpu {
				args = append(args, ocl.BufArg(b.gpu))
			} else {
				args = append(args, ocl.BufArg(b.cpu))
			}
		case ArgInt:
			args = append(args, ocl.IntArg(a.I))
		default:
			args = append(args, ocl.FloatArg(a.F))
		}
	}
	return append(args, ocl.IntArg(int64(lo)), ocl.IntArg(int64(hi)))
}

// OracleResult is one static-sweep outcome.
type OracleResult struct {
	BestPct int
	Best    *Result
	Curve   map[int]sim.Time // gpuPct -> total time
}

// RunOracle sweeps static partitions from 0% to 100% GPU in steps of 10 and
// returns the best (the paper's OracleSP, §9.1).
func RunOracle(m Machine, app *App) (*OracleResult, error) {
	or := &OracleResult{Curve: map[int]sim.Time{}, BestPct: -1}
	for pct := 0; pct <= 100; pct += 10 {
		r, err := RunStatic(m, app, pct)
		if err != nil {
			return nil, err
		}
		or.Curve[pct] = r.Time
		if or.Best == nil || r.Time < or.Best.Time {
			or.Best = r
			or.BestPct = pct
		}
	}
	return or, nil
}
