package sched

import (
	"encoding/binary"
	"math"
	"testing"

	"fluidicl/internal/core"
	"fluidicl/internal/device"
	"fluidicl/internal/vm"
)

// testApp builds a small two-kernel app: b = 2a, then c = b + 1.
func testApp(n int) *App {
	a := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(a[4*i:], math.Float32bits(float32(i)))
	}
	nd := vm.NewNDRange1D(n, 16)
	return &App{
		Name: "chain",
		Source: `
__kernel void dbl(__global float* a, __global float* b, int n) {
    int i = get_global_id(0);
    if (i < n) { b[i] = a[i] * 2.0f; }
}
__kernel void inc(__global float* b, __global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) { c[i] = b[i] + 1.0f; }
}
`,
		Buffers: map[string]int{"a": 4 * n, "b": 4 * n, "c": 4 * n},
		Inputs:  map[string][]byte{"a": a},
		Launches: []Launch{
			{Kernel: "dbl", ND: nd, Args: []ArgSpec{Buf("a"), Buf("b"), Int(int64(n))}},
			{Kernel: "inc", ND: nd, Args: []ArgSpec{Buf("b"), Buf("c"), Int(int64(n))}},
		},
		Outputs: []string{"c"},
	}
}

func checkChain(t *testing.T, res *Result, n int, label string) {
	t.Helper()
	c, ok := res.Outputs["c"]
	if !ok {
		t.Fatalf("%s: no output c", label)
	}
	for i := 0; i < n; i++ {
		want := float32(i)*2 + 1
		got := math.Float32frombits(binary.LittleEndian.Uint32(c[4*i:]))
		if got != want {
			t.Fatalf("%s: c[%d] = %v, want %v", label, i, got, want)
		}
	}
	if res.Time <= 0 {
		t.Fatalf("%s: no virtual time elapsed", label)
	}
}

func TestRunSingleBothDevices(t *testing.T) {
	n := 128
	m := DefaultMachine()
	for _, cfg := range []device.Config{m.CPU, m.GPU} {
		res, err := RunSingle(cfg, testApp(n))
		if err != nil {
			t.Fatal(err)
		}
		checkChain(t, res, n, cfg.Name)
		if len(res.LaunchTimes) != 2 {
			t.Fatalf("LaunchTimes = %v, want 2 entries", res.LaunchTimes)
		}
	}
}

func TestRunStaticSweepCorrect(t *testing.T) {
	n := 128
	m := DefaultMachine()
	for pct := 0; pct <= 100; pct += 25 {
		res, err := RunStatic(m, testApp(n), pct)
		if err != nil {
			t.Fatalf("pct %d: %v", pct, err)
		}
		checkChain(t, res, n, "static")
	}
}

func TestRunOraclePicksMinimum(t *testing.T) {
	n := 128
	m := DefaultMachine()
	or, err := RunOracle(m, testApp(n))
	if err != nil {
		t.Fatal(err)
	}
	if len(or.Curve) != 11 {
		t.Fatalf("curve has %d points, want 11", len(or.Curve))
	}
	for pct, tm := range or.Curve {
		if tm < or.Best.Time {
			t.Fatalf("curve[%d] = %v below reported best %v", pct, tm, or.Best.Time)
		}
	}
	if or.Curve[or.BestPct] != or.Best.Time {
		t.Fatal("BestPct does not match Best")
	}
	checkChain(t, or.Best, n, "oracle")
}

func TestRunFluidiCLWrapper(t *testing.T) {
	n := 128
	res, err := RunFluidiCL(DefaultMachine(), testApp(n), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkChain(t, res, n, "fluidicl")
	if len(res.Reports) != 2 {
		t.Fatalf("reports = %d, want 2", len(res.Reports))
	}
}

func TestRunFluidiCLRepeatMeasuresLastRun(t *testing.T) {
	n := 128
	app := testApp(n)
	once, err := RunFluidiCL(DefaultMachine(), app, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	thrice, err := RunFluidiCLRepeat(DefaultMachine(), app, core.Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkChain(t, thrice, n, "repeat")
	// The last-iteration duration must be in the same ballpark as a single
	// run, not three times it.
	if thrice.Time > 2*once.Time {
		t.Fatalf("last-run time %v vs single run %v: not measuring one iteration", thrice.Time, once.Time)
	}
}

func TestSoclEagerAlternatesDevices(t *testing.T) {
	n := 128
	m := DefaultMachine()
	res, err := RunSocl(m, testApp(n), Eager, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkChain(t, res, n, "eager")
}

func TestSoclDmdaRequiresModel(t *testing.T) {
	if _, err := RunSocl(DefaultMachine(), testApp(64), Dmda, nil); err == nil {
		t.Fatal("dmda without model accepted")
	}
}

func TestCalibrateAndRunDmda(t *testing.T) {
	n := 128
	m := DefaultMachine()
	app := testApp(n)
	model, err := CalibrateDmda(m, app)
	if err != nil {
		t.Fatal(err)
	}
	if len(model) != 2 { // two distinct kernels
		t.Fatalf("model has %d entries, want 2", len(model))
	}
	for key, per := range model {
		if per[device.CPU] <= 0 || per[device.GPU] <= 0 {
			t.Fatalf("model[%s] incomplete: %v", key, per)
		}
	}
	res, err := RunSocl(m, app, Dmda, model)
	if err != nil {
		t.Fatal(err)
	}
	checkChain(t, res, n, "dmda")
}

func TestDmdaNotWorseThanWorstDevice(t *testing.T) {
	n := 256
	m := DefaultMachine()
	app := testApp(n)
	cpu, err := RunSingle(m.CPU, app)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := RunSingle(m.GPU, app)
	if err != nil {
		t.Fatal(err)
	}
	model, err := CalibrateDmda(m, app)
	if err != nil {
		t.Fatal(err)
	}
	dmda, err := RunSocl(m, app, Dmda, model)
	if err != nil {
		t.Fatal(err)
	}
	worst := cpu.Time
	if gpu.Time > worst {
		worst = gpu.Time
	}
	if dmda.Time > worst*1.1 {
		t.Fatalf("dmda (%v) worse than the worst single device (%v)", dmda.Time, worst)
	}
}

func TestPolicyString(t *testing.T) {
	if Eager.String() != "eager" || Dmda.String() != "dmda" {
		t.Fatal("policy names wrong")
	}
}

func TestFluidiCLVariantForUnknownKernel(t *testing.T) {
	app := testApp(32)
	app.Variants = []Variant{{Kernel: "nope", Source: "x", Name: "y"}}
	if _, err := RunFluidiCL(DefaultMachine(), app, core.Options{}); err == nil {
		t.Fatal("variant for unknown kernel accepted")
	}
}

func TestStaticMixedSplitUsesBothDevices(t *testing.T) {
	// A 50/50 static run should take less time than the slower device
	// running everything (for this compute-heavy app).
	n := 512
	m := DefaultMachine()
	app := &App{
		Name: "heavy",
		Source: `
__kernel void heavy(__global float* a, __global float* out, int n) {
    int i = get_global_id(0);
    if (i < n) {
        float s = 0.0f;
        for (int k = 0; k < 5000; k++) { s += a[i] * 0.999f; }
        out[i] = s;
    }
}
`,
		Buffers:  map[string]int{"a": 4 * n, "out": 4 * n},
		Launches: []Launch{{Kernel: "heavy", ND: vm.NewNDRange1D(n, 16), Args: []ArgSpec{Buf("a"), Buf("out"), Int(int64(n))}}},
		Outputs:  []string{"out"},
	}
	cpu, err := RunSingle(m.CPU, app)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := RunSingle(m.GPU, app)
	if err != nil {
		t.Fatal(err)
	}
	half, err := RunStatic(m, app, 50)
	if err != nil {
		t.Fatal(err)
	}
	worst := cpu.Time
	if gpu.Time > worst {
		worst = gpu.Time
	}
	if half.Time >= worst {
		t.Fatalf("50/50 split (%v) not faster than the slower device (%v)", half.Time, worst)
	}
}
