package sched

import (
	"fmt"

	"fluidicl/internal/device"
	"fluidicl/internal/ocl"
	"fluidicl/internal/sim"
)

// RunSingle executes the app on one device through the plain vendor-runtime
// API — the paper's CPU-only and GPU-only baselines (§8: "we run each
// benchmark using the vendor runtimes directly").
func RunSingle(cfg device.Config, app *App) (*Result, error) {
	env := sim.NewEnv()
	ctx := ocl.NewContext(env, device.New(env, cfg))
	prog, err := ctx.BuildProgram(app.Source)
	if err != nil {
		return nil, err
	}
	q := ctx.CreateQueue("app")
	bufNames := sortedBufferNames(app.Buffers)
	bufs := map[string]*ocl.Buffer{}
	for _, name := range bufNames {
		bufs[name] = ctx.CreateBuffer(app.Buffers[name])
	}
	kernels := map[string]*ocl.Kernel{}
	for _, l := range app.Launches {
		if kernels[l.Kernel] == nil {
			k, err := prog.CreateKernel(l.Kernel)
			if err != nil {
				return nil, err
			}
			kernels[l.Kernel] = k
		}
	}
	res := &Result{Outputs: map[string][]byte{}}
	var runErr error
	env.Go("app", func(p *sim.Proc) {
		for _, name := range bufNames {
			data := app.Inputs[name]
			if data == nil {
				data = make([]byte, app.Buffers[name])
			}
			q.EnqueueWriteBuffer(bufs[name], data)
		}
		for _, l := range app.Launches {
			args := make([]ocl.Arg, len(l.Args))
			for i, a := range l.Args {
				switch a.Kind {
				case ArgBuf:
					args[i] = ocl.BufArg(bufs[a.Name])
				case ArgInt:
					args[i] = ocl.IntArg(a.I)
				default:
					args[i] = ocl.FloatArg(a.F)
				}
			}
			t0 := p.Now()
			ev, lr := q.EnqueueNDRangeKernel(kernels[l.Kernel], l.ND, args, ocl.LaunchOpts{Split: cfg.Kind == device.CPU})
			p.Wait(ev)
			if lr.Err != nil {
				runErr = lr.Err
				return
			}
			res.LaunchTimes = append(res.LaunchTimes, p.Now()-t0)
		}
		for _, name := range app.Outputs {
			out := make([]byte, app.Buffers[name])
			p.Wait(q.EnqueueReadBuffer(bufs[name], out))
			res.Outputs[name] = out
		}
		res.Time = p.Now()
	})
	env.Run()
	if runErr != nil {
		return nil, runErr
	}
	if res.Time == 0 && len(app.Launches) > 0 {
		return nil, fmt.Errorf("sched: single-device run of %s did not complete", app.Name)
	}
	res.Summary = env.Meter.Summary()
	return res, nil
}
