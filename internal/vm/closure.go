package vm

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync/atomic"
)

// ---------------------------------------------------------------------------
// Backend knob
// ---------------------------------------------------------------------------

// Backend selects the work-group execution engine. Both backends execute the
// same bytecode with identical semantics — byte-identical buffers, identical
// Stats (and therefore identical virtual time) — and differ only in host
// wall-clock cost.
type Backend int32

// Backends.
const (
	// BackendAuto resolves to the process default (see SetBackend and the
	// FLUIDICL_BACKEND environment variable).
	BackendAuto Backend = iota
	// BackendInterp is the switch-dispatch bytecode interpreter.
	BackendInterp
	// BackendClosure is the threaded-code engine: at compile time each
	// kernel's bytecode is lowered to an array of Go closures, one per basic
	// block, with common sequences fused into superinstructions (fuse.go).
	BackendClosure
	// BackendWG is the whole-work-group engine: the kernel's CFG is split at
	// barriers into barrier-free regions and each basic block runs as a loop
	// over all work-items of the group against structure-of-arrays register
	// banks (wg.go / wgexec.go). Kernels or launches the per-launch
	// noninterference certificate cannot prove safe fall back to the closure
	// path per work-group.
	BackendWG
)

// String returns the flag spelling of b.
func (b Backend) String() string {
	switch b {
	case BackendInterp:
		return "interp"
	case BackendClosure:
		return "closure"
	case BackendWG:
		return "wg"
	default:
		return "auto"
	}
}

// ParseBackend parses a backend name as accepted by the fluidibench
// -backend flag and the FLUIDICL_BACKEND environment variable.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "interp", "interpreter":
		return BackendInterp, nil
	case "closure", "closures":
		return BackendClosure, nil
	case "wg", "workgroup":
		return BackendWG, nil
	case "auto", "":
		return BackendAuto, nil
	}
	return BackendAuto, fmt.Errorf("vm: unknown backend %q (want interp, closure or wg)", s)
}

// defaultBackend holds the process-wide backend (BackendInterp or
// BackendClosure, never BackendAuto).
var defaultBackend atomic.Int32

func init() {
	b := BackendClosure
	if p, err := ParseBackend(os.Getenv("FLUIDICL_BACKEND")); err == nil && p != BackendAuto {
		b = p
	}
	defaultBackend.Store(int32(b))
}

// DefaultBackend returns the process-wide backend that BackendAuto resolves
// to. The default is BackendClosure, overridable with FLUIDICL_BACKEND.
func DefaultBackend() Backend {
	return Backend(defaultBackend.Load())
}

// SetBackend sets the process-wide default backend. BackendAuto resets to
// the built-in default (closure). Safe to call concurrently; executions
// already in progress keep the backend they resolved at entry.
func SetBackend(b Backend) {
	if b == BackendAuto {
		b = BackendClosure
	}
	defaultBackend.Store(int32(b))
}

// resolve maps BackendAuto to the process default.
func (b Backend) resolve() Backend {
	if b == BackendAuto {
		return DefaultBackend()
	}
	return b
}

// ---------------------------------------------------------------------------
// Backend counters
// ---------------------------------------------------------------------------

// backendCtr tallies process-wide backend activity: how many work-groups ran
// on each engine, and the static superinstruction coverage of every compiled
// kernel. Harness tools (fluidibench -jsonout) surface these through
// core.CounterSnapshot.
var backendCtr struct {
	closureWGs  atomic.Int64
	interpWGs   atomic.Int64
	fusedInstrs atomic.Int64
	totalInstrs atomic.Int64

	wgLoopWGs     atomic.Int64
	wgFallbackWGs atomic.Int64
	wgRegions     atomic.Int64
	wgKernels     atomic.Int64

	// wgStridedWGs counts work-groups admitted to the lockstep engine by
	// the strided disjointness certificate (the identical-form certificate
	// having failed); wgRej counts fallbacks per WGReject reason.
	wgStridedWGs atomic.Int64
	wgRej        [wgRejCount]atomic.Int64

	// Region-fusion coverage (wgfuse.go), attributed at wg-compile time:
	// blocks fused into a single jammed closure, the instructions those
	// blocks cover, and the body instructions left on the per-step
	// fallback path.
	wgFusedBlocks       atomic.Int64
	wgFusedSteps        atomic.Int64
	wgFuseFallbackSteps atomic.Int64
}

// BackendCounters is a snapshot of process-wide backend activity.
type BackendCounters struct {
	// ClosureWGs / InterpWGs count work-group executions per engine.
	ClosureWGs int64
	InterpWGs  int64
	// FusedInstrs / TotalInstrs count static instructions covered by fused
	// superinstructions vs all compiled instructions, across every kernel
	// compilation in the process.
	FusedInstrs int64
	TotalInstrs int64

	// WGLoopWGs counts work-groups executed by the whole-work-group engine;
	// WGFallbackWGs counts work-groups that requested the wg backend but fell
	// back to the per-item path (unsupported kernel shape or a launch the
	// noninterference certificate rejected).
	WGLoopWGs     int64
	WGFallbackWGs int64
	// WGRegions / WGKernels count barrier-free regions and kernels compiled
	// by the work-group compilation pass, across every kernel compilation in
	// the process.
	WGRegions int64
	WGKernels int64

	// WGStridedWGs counts work-groups the strided disjointness certificate
	// admitted after the identical-form certificate failed. WGRejects
	// attributes every fallback to one WGReject reason, indexed by that
	// enum (index WGRejNone is always zero).
	WGStridedWGs int64
	WGRejects    [wgRejCount]int64

	// WGFusedBlocks / WGFusedSteps count basic blocks region-fused by the
	// wg fusion pass (wgfuse.go) and the instructions those blocks cover;
	// WGFuseFallbackSteps counts body instructions compiled on the
	// per-step fallback path instead. All attributed at wg-compile time.
	WGFusedBlocks       int64
	WGFusedSteps        int64
	WGFuseFallbackSteps int64
}

// WGRejectNames returns the reason name for each WGRejects index.
func WGRejectNames() [wgRejCount]string { return wgRejectNames }

// BackendSnapshot returns the process-wide backend counters.
func BackendSnapshot() BackendCounters {
	bc := BackendCounters{
		ClosureWGs:    backendCtr.closureWGs.Load(),
		InterpWGs:     backendCtr.interpWGs.Load(),
		FusedInstrs:   backendCtr.fusedInstrs.Load(),
		TotalInstrs:   backendCtr.totalInstrs.Load(),
		WGLoopWGs:     backendCtr.wgLoopWGs.Load(),
		WGFallbackWGs: backendCtr.wgFallbackWGs.Load(),
		WGRegions:     backendCtr.wgRegions.Load(),
		WGKernels:     backendCtr.wgKernels.Load(),
		WGStridedWGs:  backendCtr.wgStridedWGs.Load(),

		WGFusedBlocks:       backendCtr.wgFusedBlocks.Load(),
		WGFusedSteps:        backendCtr.wgFusedSteps.Load(),
		WGFuseFallbackSteps: backendCtr.wgFuseFallbackSteps.Load(),
	}
	for i := range bc.WGRejects {
		bc.WGRejects[i] = backendCtr.wgRej[i].Load()
	}
	return bc
}

// ---------------------------------------------------------------------------
// Closure machine
// ---------------------------------------------------------------------------

// Driver sentinels returned by block closures in place of a next pc.
const (
	pcRET     = -1 // work-item returned
	pcBARRIER = -2 // work-item reached a barrier (resume pc already stored)
	pcERR     = -3 // execution failed (cmach.err holds the error)
)

// closFn executes one basic block (or fused run) and returns the next pc, or
// a sentinel.
type closFn func(m *cmach) int

// stepFn executes one non-control-flow instruction (or one fused
// superinstruction). It returns false when execution failed; the error is in
// cmach.err.
type stepFn func(m *cmach) bool

// cmach is the closure backend's execution context: everything the
// interpreter's run() kept in locals, hoisted into a struct the compiled
// closures share. One cmach serves a whole work-group; per-work-item fields
// (w, iregs, fregs, lid, firstInWarp) are re-pointed per run.
type cmach struct {
	k     *Kernel
	iregs []int64
	fregs []float64
	w     *wiState

	nd     NDRange
	group  [3]int
	lid    [3]int
	args   []Arg
	locals [][]byte
	tr     *memTracker
	// stat accumulates the group's Stats in place; st points at it (kept as
	// a pointer so fused steps share the interpreter's *Stats helpers). The
	// value is copied out before release.
	stat Stats
	st   *Stats
	def  *DeferredWrites
	undo *UndoLog

	firstInWarp bool
	steps       int64
	maxSteps    int64
	err         error
}

// release drops references to caller-owned memory so a pooled cmach never
// retains buffers or stats beyond the work-group that used it.
func (m *cmach) release() {
	m.iregs, m.fregs, m.w = nil, nil, nil
	m.args, m.locals, m.tr, m.st = nil, nil, nil, nil
	m.def, m.undo, m.err = nil, nil, nil
}

// runClos executes one work-item through the kernel's compiled closures
// until RET or BARRIER, with exactly the semantics of (*Kernel).run.
func (k *Kernel) runClos(m *cmach, w *wiState) (atBarrier bool, err error) {
	if w.pc == 0 {
		for i, p := range k.Params {
			switch p.Kind {
			case ArgInt:
				w.iregs[p.IReg] = m.args[i].I
			case ArgFloat:
				w.fregs[p.FReg] = float64(float32(m.args[i].F))
			}
		}
	}
	m.w = w
	m.iregs = w.iregs
	m.fregs = w.fregs
	m.steps = 0
	m.err = nil
	clos := k.clos
	pc := w.pc
	for pc >= 0 {
		pc = clos[pc](m)
	}
	switch pc {
	case pcRET:
		return false, nil
	case pcBARRIER:
		return true, nil
	default:
		return false, m.err
	}
}

// cdim mirrors the interpreter's dimVal: out-of-range dimensions read 0.
func cdim(vals [3]int, d int64) int64 {
	if d < 0 || d > 2 {
		return 0
	}
	return int64(vals[d])
}

// ---------------------------------------------------------------------------
// Per-instruction step builders
// ---------------------------------------------------------------------------

// buildStep compiles the instruction at pc into a stepFn mirroring the
// interpreter's switch case for it, with operands decoded once at build
// time. Control-flow instructions (JMP/JZ/JNZ/BARRIER/RET) are block
// terminators, not steps, and return nil; so does opNop (no semantics — the
// block's instruction count still covers its step budget).
func (k *Kernel) buildStep(pc int) stepFn {
	in := k.Code[pc]
	a, b, c := in.A, in.B, in.C
	switch in.Op {
	case opLDI:
		imm := in.IImm
		return func(m *cmach) bool { m.iregs[a] = imm; return true }
	case opLDF:
		imm := in.FImm
		return func(m *cmach) bool { m.fregs[a] = imm; return true }
	case opIMOV:
		return func(m *cmach) bool { m.iregs[a] = m.iregs[b]; return true }
	case opFMOV:
		return func(m *cmach) bool { m.fregs[a] = m.fregs[b]; return true }
	case opIADD:
		return func(m *cmach) bool { m.iregs[a] = m.iregs[b] + m.iregs[c]; m.st.IntOps++; return true }
	case opISUB:
		return func(m *cmach) bool { m.iregs[a] = m.iregs[b] - m.iregs[c]; m.st.IntOps++; return true }
	case opIMUL:
		return func(m *cmach) bool { m.iregs[a] = m.iregs[b] * m.iregs[c]; m.st.IntOps++; return true }
	case opIDIV:
		return func(m *cmach) bool {
			if m.iregs[c] == 0 {
				m.err = &execError{m.k.Name, pc, "integer division by zero"}
				return false
			}
			m.iregs[a] = m.iregs[b] / m.iregs[c]
			m.st.IntOps++
			return true
		}
	case opIMOD:
		return func(m *cmach) bool {
			if m.iregs[c] == 0 {
				m.err = &execError{m.k.Name, pc, "integer modulo by zero"}
				return false
			}
			m.iregs[a] = m.iregs[b] % m.iregs[c]
			m.st.IntOps++
			return true
		}
	case opINEG:
		return func(m *cmach) bool { m.iregs[a] = -m.iregs[b]; m.st.IntOps++; return true }
	case opFADD:
		return func(m *cmach) bool {
			m.fregs[a] = float64(float32(m.fregs[b]) + float32(m.fregs[c]))
			m.st.FloatOps++
			return true
		}
	case opFSUB:
		return func(m *cmach) bool {
			m.fregs[a] = float64(float32(m.fregs[b]) - float32(m.fregs[c]))
			m.st.FloatOps++
			return true
		}
	case opFMUL:
		return func(m *cmach) bool {
			m.fregs[a] = float64(float32(m.fregs[b]) * float32(m.fregs[c]))
			m.st.FloatOps++
			return true
		}
	case opFDIV:
		return func(m *cmach) bool {
			m.fregs[a] = float64(float32(m.fregs[b]) / float32(m.fregs[c]))
			m.st.FloatOps++
			return true
		}
	case opFNEG:
		return func(m *cmach) bool { m.fregs[a] = -m.fregs[b]; m.st.FloatOps++; return true }
	case opI2F:
		return func(m *cmach) bool { m.fregs[a] = float64(float32(m.iregs[b])); m.st.IntOps++; return true }
	case opF2I:
		return func(m *cmach) bool {
			f := m.fregs[b]
			if math.IsNaN(f) {
				f = 0
			}
			m.iregs[a] = int64(f) // C truncation toward zero
			m.st.IntOps++
			return true
		}
	case opILT, opILE, opIGT, opIGE, opIEQ, opINE:
		cf := intCmpFn(in.Op)
		return func(m *cmach) bool {
			m.iregs[a] = b2i(cf(m.iregs[b], m.iregs[c]))
			m.st.IntOps++
			return true
		}
	case opFLT, opFLE, opFGT, opFGE, opFEQ, opFNE:
		cf := floatCmpFn(in.Op)
		return func(m *cmach) bool {
			m.iregs[a] = b2i(cf(m.fregs[b], m.fregs[c]))
			m.st.FloatOps++
			return true
		}
	case opNOTB:
		return func(m *cmach) bool { m.iregs[a] = b2i(m.iregs[b] == 0); m.st.IntOps++; return true }
	case opLDGF:
		return k.stepLoadGlobal(pc, in, true)
	case opLDGI:
		return k.stepLoadGlobal(pc, in, false)
	case opSTGF:
		return k.stepStoreGlobal(pc, in, true)
	case opSTGI:
		return k.stepStoreGlobal(pc, in, false)
	case opLDLF, opLDLI, opSTLF, opSTLI:
		return k.stepSlab(pc, in, false)
	case opLDPF, opLDPI, opSTPF, opSTPI:
		return k.stepSlab(pc, in, true)
	case opGID:
		return func(m *cmach) bool {
			d := m.iregs[b]
			m.iregs[a] = cdim(m.group, d)*cdim(m.nd.LocalSize, d) + cdim(m.lid, d)
			m.st.IntOps++
			return true
		}
	case opLID:
		return func(m *cmach) bool { m.iregs[a] = cdim(m.lid, m.iregs[b]); m.st.IntOps++; return true }
	case opGRP:
		return func(m *cmach) bool { m.iregs[a] = cdim(m.group, m.iregs[b]); m.st.IntOps++; return true }
	case opNGR:
		return func(m *cmach) bool {
			d := m.iregs[b]
			if d < 0 || d > 2 {
				m.iregs[a] = 1
			} else {
				m.iregs[a] = int64(m.nd.NumGroups[d])
			}
			m.st.IntOps++
			return true
		}
	case opLSZ:
		return func(m *cmach) bool {
			d := m.iregs[b]
			if d < 0 || d > 2 {
				m.iregs[a] = 1
			} else {
				m.iregs[a] = int64(m.nd.LocalSize[d])
			}
			m.st.IntOps++
			return true
		}
	case opGSZ:
		return func(m *cmach) bool {
			d := m.iregs[b]
			if d < 0 || d > 2 {
				m.iregs[a] = 1
			} else {
				m.iregs[a] = int64(m.nd.NumGroups[d] * m.nd.LocalSize[d])
			}
			m.st.IntOps++
			return true
		}
	case opGOFF:
		return func(m *cmach) bool { m.iregs[a] = 0; return true }
	case opWDIM:
		return func(m *cmach) bool { m.iregs[a] = int64(m.nd.Dims); return true }
	case opSQRT:
		return func(m *cmach) bool {
			m.fregs[a] = float64(float32(math.Sqrt(m.fregs[b])))
			m.st.SpecialOps++
			return true
		}
	case opFABS:
		return func(m *cmach) bool { m.fregs[a] = math.Abs(m.fregs[b]); m.st.SpecialOps++; return true }
	case opEXP:
		return func(m *cmach) bool {
			m.fregs[a] = float64(float32(math.Exp(m.fregs[b])))
			m.st.SpecialOps++
			return true
		}
	case opLOG:
		return func(m *cmach) bool {
			m.fregs[a] = float64(float32(math.Log(m.fregs[b])))
			m.st.SpecialOps++
			return true
		}
	case opFLOOR:
		return func(m *cmach) bool { m.fregs[a] = math.Floor(m.fregs[b]); m.st.SpecialOps++; return true }
	case opCEIL:
		return func(m *cmach) bool { m.fregs[a] = math.Ceil(m.fregs[b]); m.st.SpecialOps++; return true }
	case opPOW:
		return func(m *cmach) bool {
			m.fregs[a] = float64(float32(math.Pow(m.fregs[b], m.fregs[c])))
			m.st.SpecialOps++
			return true
		}
	case opFMIN:
		return func(m *cmach) bool { m.fregs[a] = math.Min(m.fregs[b], m.fregs[c]); m.st.FloatOps++; return true }
	case opFMAX:
		return func(m *cmach) bool { m.fregs[a] = math.Max(m.fregs[b], m.fregs[c]); m.st.FloatOps++; return true }
	case opIMIN:
		return func(m *cmach) bool {
			if m.iregs[b] < m.iregs[c] {
				m.iregs[a] = m.iregs[b]
			} else {
				m.iregs[a] = m.iregs[c]
			}
			m.st.IntOps++
			return true
		}
	case opIMAX:
		return func(m *cmach) bool {
			if m.iregs[b] > m.iregs[c] {
				m.iregs[a] = m.iregs[b]
			} else {
				m.iregs[a] = m.iregs[c]
			}
			m.st.IntOps++
			return true
		}
	case opIABS:
		return func(m *cmach) bool {
			v := m.iregs[b]
			if v < 0 {
				v = -v
			}
			m.iregs[a] = v
			m.st.IntOps++
			return true
		}
	}
	return nil
}

func intCmpFn(op Op) func(x, y int64) bool {
	switch op {
	case opILT:
		return func(x, y int64) bool { return x < y }
	case opILE:
		return func(x, y int64) bool { return x <= y }
	case opIGT:
		return func(x, y int64) bool { return x > y }
	case opIGE:
		return func(x, y int64) bool { return x >= y }
	case opIEQ:
		return func(x, y int64) bool { return x == y }
	default:
		return func(x, y int64) bool { return x != y }
	}
}

func floatCmpFn(op Op) func(x, y float64) bool {
	switch op {
	case opFLT:
		return func(x, y float64) bool { return x < y }
	case opFLE:
		return func(x, y float64) bool { return x <= y }
	case opFGT:
		return func(x, y float64) bool { return x > y }
	case opFGE:
		return func(x, y float64) bool { return x >= y }
	case opFEQ:
		return func(x, y float64) bool { return x == y }
	default:
		return func(x, y float64) bool { return x != y }
	}
}

// stepLoadGlobal compiles opLDGF/opLDGI.
func (k *Kernel) stepLoadGlobal(pc int, in Instr, isF bool) stepFn {
	a, slot, c, memID := in.A, in.B, in.C, in.D
	name := k.Params[slot].Name
	if isF {
		return func(m *cmach) bool {
			buf := m.args[slot].Buf
			off, err := byteOff(m.iregs[c], len(buf))
			if err != nil {
				m.err = &execError{m.k.Name, pc, fmt.Sprintf("load %s: %v", name, err)}
				return false
			}
			bits := binary.LittleEndian.Uint32(buf[off:])
			if d := m.def; d != nil {
				d.noteRead(slot, off)
				if v, ok := d.lookup(slot, off); ok {
					bits = v
				}
			}
			m.fregs[a] = float64(math.Float32frombits(bits))
			m.st.noteGlobalRead(slot)
			m.st.GlobalLoads++
			m.st.GlobalLoadBytes += 4
			m.tr.access(memID, off, m.firstInWarp, m.st)
			return true
		}
	}
	return func(m *cmach) bool {
		buf := m.args[slot].Buf
		off, err := byteOff(m.iregs[c], len(buf))
		if err != nil {
			m.err = &execError{m.k.Name, pc, fmt.Sprintf("load %s: %v", name, err)}
			return false
		}
		bits := binary.LittleEndian.Uint32(buf[off:])
		if d := m.def; d != nil {
			d.noteRead(slot, off)
			if v, ok := d.lookup(slot, off); ok {
				bits = v
			}
		}
		m.iregs[a] = int64(int32(bits))
		m.st.noteGlobalRead(slot)
		m.st.GlobalLoads++
		m.st.GlobalLoadBytes += 4
		m.tr.access(memID, off, m.firstInWarp, m.st)
		return true
	}
}

// stepStoreGlobal compiles opSTGF/opSTGI, including the deferred-write and
// undo-log paths.
func (k *Kernel) stepStoreGlobal(pc int, in Instr, isF bool) stepFn {
	a, slot, c, memID := in.A, in.B, in.C, in.D
	name := k.Params[slot].Name
	return func(m *cmach) bool {
		buf := m.args[slot].Buf
		off, err := byteOff(m.iregs[c], len(buf))
		if err != nil {
			m.err = &execError{m.k.Name, pc, fmt.Sprintf("store %s: %v", name, err)}
			return false
		}
		var bits uint32
		if isF {
			bits = math.Float32bits(float32(m.fregs[a]))
		} else {
			bits = uint32(int32(m.iregs[a]))
		}
		if d := m.def; d != nil {
			d.store(slot, off, bits)
		} else {
			if u := m.undo; u != nil {
				var old [4]byte
				copy(old[:], buf[off:off+4])
				u.recs = append(u.recs, UndoRecord{Buf: buf, Off: int(off), Old: old})
			}
			binary.LittleEndian.PutUint32(buf[off:], bits)
		}
		m.st.noteGlobalWrite(slot, off)
		m.st.GlobalStores++
		m.st.GlobalStoreBytes += 4
		m.tr.access(memID, off, m.firstInWarp, m.st)
		return true
	}
}

// stepSlab compiles local-array and private-array loads and stores.
func (k *Kernel) stepSlab(pc int, in Instr, priv bool) stepFn {
	a, slot, c := in.A, in.B, in.C
	space := "local"
	arrs := k.LocalArrs
	if priv {
		space = "private"
		arrs = k.PrivArrs
	}
	name := arrs[slot].Name
	slab := func(m *cmach) []byte {
		if priv {
			return m.w.priv[slot]
		}
		return m.locals[slot]
	}
	fail := func(m *cmach, what string, err error) bool {
		m.err = &execError{m.k.Name, pc, fmt.Sprintf("%s %s %s: %v", space, what, name, err)}
		return false
	}
	switch in.Op {
	case opLDLF, opLDPF:
		return func(m *cmach) bool {
			buf := slab(m)
			off, err := byteOff(m.iregs[c], len(buf))
			if err != nil {
				return fail(m, "load", err)
			}
			m.fregs[a] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[off:])))
			m.st.LocalAccesses++
			return true
		}
	case opLDLI, opLDPI:
		return func(m *cmach) bool {
			buf := slab(m)
			off, err := byteOff(m.iregs[c], len(buf))
			if err != nil {
				return fail(m, "load", err)
			}
			m.iregs[a] = int64(int32(binary.LittleEndian.Uint32(buf[off:])))
			m.st.LocalAccesses++
			return true
		}
	case opSTLF, opSTPF:
		return func(m *cmach) bool {
			buf := slab(m)
			off, err := byteOff(m.iregs[c], len(buf))
			if err != nil {
				return fail(m, "store", err)
			}
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(float32(m.fregs[a])))
			m.st.LocalAccesses++
			return true
		}
	default: // opSTLI, opSTPI
		return func(m *cmach) bool {
			buf := slab(m)
			off, err := byteOff(m.iregs[c], len(buf))
			if err != nil {
				return fail(m, "store", err)
			}
			binary.LittleEndian.PutUint32(buf[off:], uint32(int32(m.iregs[a])))
			m.st.LocalAccesses++
			return true
		}
	}
}
