package vm_test

import (
	"testing"

	"fluidicl/internal/clc"
	"fluidicl/internal/polybench"
	"fluidicl/internal/sched"
	"fluidicl/internal/vm"
)

// TestWGFuseColdScratchStats guards against a regression where the fused
// jams took several columnar-log subslices before filling them: the second
// reservation could grow (reallocate) the log, orphaning the first
// subslice, so its offsets replayed as zeros and the Seq/Rand/WarpTx
// classification drifted. The bug only fired while the log's backing array
// was still growing — i.e. on the first work-group a fresh scratch machine
// executes — so this test compiles a fresh kernel per backend order and
// runs the fused pass FIRST, before any unfused pass can warm the pool.
func TestWGFuseColdScratchStats(t *testing.T) {
	defer vm.SetWGFuse(true)
	for _, name := range []string{"SYRK", "GESUMMV", "2MM"} {
		bm, err := polybench.ByNameQuick(name)
		if err != nil {
			t.Fatal(err)
		}
		app := bm.App
		for _, l := range app.Launches {
			mkArgs := func() []vm.Arg {
				args := make([]vm.Arg, len(l.Args))
				for i, a := range l.Args {
					switch a.Kind {
					case sched.ArgBuf:
						buf := make([]byte, app.Buffers[a.Name])
						copy(buf, app.Inputs[a.Name])
						args[i] = vm.BufArg(buf)
					case sched.ArgInt:
						args[i] = vm.IntArg(a.I)
					default:
						args[i] = vm.FloatArg(a.F)
					}
				}
				return args
			}
			// Each run compiles its own kernel so the per-kernel scratch
			// pool starts cold, exactly like a scheduler strategy's first
			// work-group.
			run := func(fuse bool) []vm.Stats {
				ki, err := clc.FindKernelInfo(app.Source, l.Kernel)
				if err != nil {
					t.Fatal(err)
				}
				k, err := vm.Compile(ki)
				if err != nil {
					t.Fatal(err)
				}
				vm.SetWGFuse(fuse)
				args := mkArgs()
				n := l.ND.LaunchGroups()
				out := make([]vm.Stats, n)
				for g := 0; g < n; g++ {
					st, err := k.ExecWorkGroup(l.ND, l.ND.GroupAt(g), args, vm.ExecOpts{Backend: vm.BackendWG})
					if err != nil {
						t.Fatal(err)
					}
					out[g] = st
				}
				return out
			}
			stF := run(true)
			stU := run(false)
			for g := range stF {
				if stF[g] != stU[g] {
					t.Errorf("%s %s group %d stats diverge on cold scratch:\n  fused   %+v\n  unfused %+v",
						name, l.Kernel, g, stF[g], stU[g])
				}
			}
		}
	}
}
