package vm

import (
	"fmt"

	"fluidicl/internal/analysis"
	"fluidicl/internal/clc"
)

// Compile lowers a type-checked kernel to bytecode. The kernel's AST must
// have been through clc.Check (directly or via clc.CheckKernel) so that
// expression types and implicit casts are present.
//
// Compilation folds constants (clc.Fold) on a private clone of the AST, so
// the caller's tree is never mutated — which also lets differential tests
// run the unfolded AST through the reference interpreter and compare.
func Compile(ki *clc.KernelInfo) (*Kernel, error) {
	folded := clc.CloneKernel(ki.Kernel)
	clc.Fold(folded)
	c := &compiler{
		k: &Kernel{
			Name:       ki.Kernel.Name,
			HasBarrier: ki.HasBarrier,
			Info:       ki,
		},
		scope: &cscope{vars: map[string]binding{}},
	}
	for i, p := range folded.Params {
		slot := ParamSlot{Name: p.Name}
		if p.Ty.Ptr {
			if p.Ty.Kind == clc.Bool {
				return nil, fmt.Errorf("vm: bool buffers are not supported (param %q)", p.Name)
			}
			slot.Kind = ArgBuffer
			slot.Elem = p.Ty.Kind
			c.scope.vars[p.Name] = binding{kind: bindGlobal, slot: int32(i), elem: p.Ty.Kind}
		} else {
			switch p.Ty.Kind {
			case clc.Float:
				slot.Kind = ArgFloat
				slot.FReg = c.allocFrameF()
				c.scope.vars[p.Name] = binding{kind: bindFloatVar, reg: slot.FReg}
			default: // int, bool
				slot.Kind = ArgInt
				slot.IReg = c.allocFrameI()
				c.scope.vars[p.Name] = binding{kind: bindIntVar, reg: slot.IReg}
			}
		}
		c.k.Params = append(c.k.Params, slot)
	}
	if err := c.block(folded.Body, false); err != nil {
		return nil, err
	}
	c.emit(Instr{Op: opRET})
	c.finalize()
	c.k.sum = analysis.AnalyzeKernel(ki.Kernel, "")
	c.k.buildClosures()
	c.k.buildWG()
	return c.k, nil
}

// MustCompile parses, checks and compiles a single-kernel source; it panics
// on error. For tests and embedded generated kernels.
func MustCompile(src, name string) *Kernel {
	ki, err := clc.FindKernelInfo(src, name)
	if err != nil {
		panic(err)
	}
	k, err := Compile(ki)
	if err != nil {
		panic(err)
	}
	return k
}

type bindKind int

const (
	bindIntVar bindKind = iota
	bindFloatVar
	bindGlobal
	bindLocalArr
	bindPrivArr
)

type binding struct {
	kind bindKind
	reg  int32 // for scalar vars
	slot int32 // param slot or array id
	elem clc.ScalarKind
}

type cscope struct {
	parent *cscope
	vars   map[string]binding
}

func (s *cscope) lookup(name string) (binding, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if b, ok := sc.vars[name]; ok {
			return b, true
		}
	}
	return binding{}, false
}

type loopCtx struct {
	breakPatches    []int
	continuePatches []int
}

type compiler struct {
	k     *Kernel
	scope *cscope

	frameI, frameF int32 // persistent registers (params + declared vars)
	tempI, tempF   int32 // live temps (encoded negative until finalize)
	maxTempI       int32
	maxTempF       int32

	loops []*loopCtx
}

func (c *compiler) allocFrameI() int32 { r := c.frameI; c.frameI++; return r }
func (c *compiler) allocFrameF() int32 { r := c.frameF; c.frameF++; return r }

// Temps are encoded as negative register numbers (-1-idx) and remapped after
// the frame size is known.
func (c *compiler) allocTempI() int32 {
	c.tempI++
	if c.tempI > c.maxTempI {
		c.maxTempI = c.tempI
	}
	return -c.tempI
}

func (c *compiler) allocTempF() int32 {
	c.tempF++
	if c.tempF > c.maxTempF {
		c.maxTempF = c.tempF
	}
	return -c.tempF
}

func (c *compiler) freeTempI(r int32) {
	if r < 0 {
		if -r != c.tempI {
			panic("vm: non-LIFO int temp free")
		}
		c.tempI--
	}
}

func (c *compiler) freeTempF(r int32) {
	if r < 0 {
		if -r != c.tempF {
			panic("vm: non-LIFO float temp free")
		}
		c.tempF--
	}
}

func (c *compiler) emit(in Instr) int {
	c.k.Code = append(c.k.Code, in)
	return len(c.k.Code) - 1
}

func (c *compiler) here() int32 { return int32(len(c.k.Code)) }

func (c *compiler) patch(at int, target int32) { c.k.Code[at].A = target }

// finalize remaps negative temp registers to the top of the frame.
func (c *compiler) finalize() {
	mapI := func(r int32) int32 {
		if r < 0 {
			return c.frameI + (-r - 1)
		}
		return r
	}
	mapF := func(r int32) int32 {
		if r < 0 {
			return c.frameF + (-r - 1)
		}
		return r
	}
	for i := range c.k.Code {
		in := &c.k.Code[i]
		switch in.Op {
		case opLDI, opIMOV, opIADD, opISUB, opIMUL, opIDIV, opIMOD, opINEG,
			opILT, opILE, opIGT, opIGE, opIEQ, opINE, opNOTB,
			opGID, opLID, opGRP, opNGR, opLSZ, opGSZ, opGOFF, opWDIM,
			opIMIN, opIMAX, opIABS:
			in.A = mapI(in.A)
			in.B = mapI(in.B)
			in.C = mapI(in.C)
		case opLDF, opFMOV, opFADD, opFSUB, opFMUL, opFDIV, opFNEG,
			opSQRT, opFABS, opEXP, opLOG, opFLOOR, opCEIL, opPOW, opFMIN, opFMAX:
			in.A = mapF(in.A)
			in.B = mapF(in.B)
			in.C = mapF(in.C)
		case opFLT, opFLE, opFGT, opFGE, opFEQ, opFNE:
			in.A = mapI(in.A)
			in.B = mapF(in.B)
			in.C = mapF(in.C)
		case opI2F:
			in.A = mapF(in.A)
			in.B = mapI(in.B)
		case opF2I:
			in.A = mapI(in.A)
			in.B = mapF(in.B)
		case opJZ, opJNZ:
			in.B = mapI(in.B)
		case opLDGF, opLDLF, opLDPF:
			in.A = mapF(in.A)
			in.C = mapI(in.C)
		case opSTGF, opSTLF, opSTPF:
			in.A = mapF(in.A)
			in.C = mapI(in.C)
		case opLDGI, opLDLI, opLDPI, opSTGI, opSTLI, opSTPI:
			in.A = mapI(in.A)
			in.C = mapI(in.C)
		}
	}
	c.k.NumI = int(c.frameI + c.maxTempI)
	c.k.NumF = int(c.frameF + c.maxTempF)
}

func (c *compiler) pushScope() { c.scope = &cscope{parent: c.scope, vars: map[string]binding{}} }
func (c *compiler) popScope()  { c.scope = c.scope.parent }

// ---- statements ----

func (c *compiler) block(b *clc.Block, newScope bool) error {
	if newScope {
		c.pushScope()
		defer c.popScope()
	}
	for _, s := range b.Stmts {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) stmt(s clc.Stmt) error {
	switch s := s.(type) {
	case *clc.Block:
		return c.block(s, true)
	case *clc.DeclStmt:
		return c.decl(s)
	case *clc.AssignStmt:
		return c.assign(s)
	case *clc.ExprStmt:
		return c.exprStmt(s)
	case *clc.IfStmt:
		return c.ifStmt(s)
	case *clc.ForStmt:
		return c.forStmt(s)
	case *clc.WhileStmt:
		return c.whileStmt(s)
	case *clc.ReturnStmt:
		c.emit(Instr{Op: opRET})
		return nil
	case *clc.BreakStmt:
		if len(c.loops) == 0 {
			return fmt.Errorf("vm: break outside loop")
		}
		l := c.loops[len(c.loops)-1]
		l.breakPatches = append(l.breakPatches, c.emit(Instr{Op: opJMP}))
		return nil
	case *clc.ContinueStmt:
		if len(c.loops) == 0 {
			return fmt.Errorf("vm: continue outside loop")
		}
		l := c.loops[len(c.loops)-1]
		l.continuePatches = append(l.continuePatches, c.emit(Instr{Op: opJMP}))
		return nil
	}
	return fmt.Errorf("vm: cannot compile statement %T", s)
}

func (c *compiler) decl(d *clc.DeclStmt) error {
	if d.ArrayLen != nil {
		n, ok := clc.ConstEval(d.ArrayLen)
		if !ok {
			return fmt.Errorf("vm: array %q length not constant", d.Name)
		}
		if d.Elem == clc.Bool {
			return fmt.Errorf("vm: bool arrays are not supported (%q)", d.Name)
		}
		info := ArrayInfo{Name: d.Name, Elem: d.Elem, Len: int(n)}
		if d.Space == clc.SpaceLocal {
			id := int32(len(c.k.LocalArrs))
			c.k.LocalArrs = append(c.k.LocalArrs, info)
			c.scope.vars[d.Name] = binding{kind: bindLocalArr, slot: id, elem: d.Elem}
		} else {
			id := int32(len(c.k.PrivArrs))
			c.k.PrivArrs = append(c.k.PrivArrs, info)
			c.scope.vars[d.Name] = binding{kind: bindPrivArr, slot: id, elem: d.Elem}
		}
		return nil
	}
	switch d.Elem {
	case clc.Float:
		reg := c.allocFrameF()
		c.scope.vars[d.Name] = binding{kind: bindFloatVar, reg: reg}
		if d.Init != nil {
			r, err := c.exprF(d.Init)
			if err != nil {
				return err
			}
			c.emit(Instr{Op: opFMOV, A: reg, B: r})
			c.freeTempF(r)
		}
	default: // int, bool
		reg := c.allocFrameI()
		c.scope.vars[d.Name] = binding{kind: bindIntVar, reg: reg}
		if d.Init != nil {
			r, err := c.exprI(d.Init)
			if err != nil {
				return err
			}
			c.emit(Instr{Op: opIMOV, A: reg, B: r})
			c.freeTempI(r)
		}
	}
	return nil
}

func compoundOp(op clc.Kind, isFloat bool) Op {
	switch op {
	case clc.PLUSEQ:
		if isFloat {
			return opFADD
		}
		return opIADD
	case clc.MINUSEQ:
		if isFloat {
			return opFSUB
		}
		return opISUB
	case clc.STAREQ:
		if isFloat {
			return opFMUL
		}
		return opIMUL
	case clc.SLASHEQ:
		if isFloat {
			return opFDIV
		}
		return opIDIV
	}
	return opNop
}

func (c *compiler) assign(a *clc.AssignStmt) error {
	switch lhs := a.LHS.(type) {
	case *clc.Ident:
		b, ok := c.scope.lookup(lhs.Name)
		if !ok {
			return fmt.Errorf("vm: undefined %q", lhs.Name)
		}
		switch b.kind {
		case bindFloatVar:
			r, err := c.exprF(a.RHS)
			if err != nil {
				return err
			}
			if a.Op == clc.ASSIGN {
				c.emit(Instr{Op: opFMOV, A: b.reg, B: r})
			} else {
				c.emit(Instr{Op: compoundOp(a.Op, true), A: b.reg, B: b.reg, C: r})
			}
			c.freeTempF(r)
		case bindIntVar:
			r, err := c.exprI(a.RHS)
			if err != nil {
				return err
			}
			if a.Op == clc.ASSIGN {
				c.emit(Instr{Op: opIMOV, A: b.reg, B: r})
			} else {
				c.emit(Instr{Op: compoundOp(a.Op, false), A: b.reg, B: b.reg, C: r})
			}
			c.freeTempI(r)
		default:
			return fmt.Errorf("vm: cannot assign to %q", lhs.Name)
		}
		return nil
	case *clc.IndexExpr:
		bind, ok := c.scope.lookup(lhs.Base.Name)
		if !ok {
			return fmt.Errorf("vm: undefined %q", lhs.Base.Name)
		}
		idx, err := c.exprI(lhs.Idx)
		if err != nil {
			return err
		}
		isFloat := bind.elem == clc.Float
		memID := c.newMemID(bind)
		if a.Op == clc.ASSIGN {
			if isFloat {
				r, err := c.exprF(a.RHS)
				if err != nil {
					return err
				}
				c.emit(Instr{Op: storeOp(bind.kind, true), A: r, B: bind.slot, C: idx, D: memID})
				c.freeTempF(r)
			} else {
				r, err := c.exprI(a.RHS)
				if err != nil {
					return err
				}
				c.emit(Instr{Op: storeOp(bind.kind, false), A: r, B: bind.slot, C: idx, D: memID})
				c.freeTempI(r)
			}
			c.freeTempI(idx)
			return nil
		}
		// Compound: load, op, store (index computed once).
		loadID := c.newMemID(bind)
		if isFloat {
			cur := c.allocTempF()
			c.emit(Instr{Op: loadOp(bind.kind, true), A: cur, B: bind.slot, C: idx, D: loadID})
			r, err := c.exprF(a.RHS)
			if err != nil {
				return err
			}
			c.emit(Instr{Op: compoundOp(a.Op, true), A: cur, B: cur, C: r})
			c.freeTempF(r)
			c.emit(Instr{Op: storeOp(bind.kind, true), A: cur, B: bind.slot, C: idx, D: memID})
			c.freeTempF(cur)
		} else {
			cur := c.allocTempI()
			c.emit(Instr{Op: loadOp(bind.kind, false), A: cur, B: bind.slot, C: idx, D: loadID})
			r, err := c.exprI(a.RHS)
			if err != nil {
				return err
			}
			c.emit(Instr{Op: compoundOp(a.Op, false), A: cur, B: cur, C: r})
			c.freeTempI(r)
			c.emit(Instr{Op: storeOp(bind.kind, false), A: cur, B: bind.slot, C: idx, D: memID})
			c.freeTempI(cur)
		}
		c.freeTempI(idx)
		return nil
	}
	return fmt.Errorf("vm: bad assignment target %T", a.LHS)
}

func (c *compiler) newMemID(b binding) int32 {
	if b.kind != bindGlobal {
		return -1
	}
	id := int32(c.k.NumMemOps)
	c.k.NumMemOps++
	return id
}

func loadOp(k bindKind, isFloat bool) Op {
	switch k {
	case bindGlobal:
		if isFloat {
			return opLDGF
		}
		return opLDGI
	case bindLocalArr:
		if isFloat {
			return opLDLF
		}
		return opLDLI
	default:
		if isFloat {
			return opLDPF
		}
		return opLDPI
	}
}

func storeOp(k bindKind, isFloat bool) Op {
	switch k {
	case bindGlobal:
		if isFloat {
			return opSTGF
		}
		return opSTGI
	case bindLocalArr:
		if isFloat {
			return opSTLF
		}
		return opSTLI
	default:
		if isFloat {
			return opSTPF
		}
		return opSTPI
	}
}

func (c *compiler) exprStmt(s *clc.ExprStmt) error {
	// Only calls are meaningful as statements.
	if call, ok := s.X.(*clc.CallExpr); ok && call.Name == "barrier" {
		c.emit(Instr{Op: opBARRIER})
		return nil
	}
	t := s.X.Type()
	if t.Kind == clc.Float {
		r, err := c.exprF(s.X)
		if err != nil {
			return err
		}
		c.freeTempF(r)
		return nil
	}
	r, err := c.exprI(s.X)
	if err != nil {
		return err
	}
	c.freeTempI(r)
	return nil
}

func (c *compiler) ifStmt(s *clc.IfStmt) error {
	cond, err := c.cond(s.Cond)
	if err != nil {
		return err
	}
	jz := c.emit(Instr{Op: opJZ, B: cond})
	c.freeTempI(cond)
	if err := c.block(s.Then, true); err != nil {
		return err
	}
	if s.Else == nil {
		c.patch(jz, c.here())
		return nil
	}
	jmp := c.emit(Instr{Op: opJMP})
	c.patch(jz, c.here())
	if err := c.stmt(s.Else); err != nil {
		return err
	}
	c.patch(jmp, c.here())
	return nil
}

func (c *compiler) forStmt(s *clc.ForStmt) error {
	c.pushScope()
	defer c.popScope()
	if s.Init != nil {
		if err := c.stmt(s.Init); err != nil {
			return err
		}
	}
	condAt := c.here()
	var jz int = -1
	if s.Cond != nil {
		cond, err := c.cond(s.Cond)
		if err != nil {
			return err
		}
		jz = c.emit(Instr{Op: opJZ, B: cond})
		c.freeTempI(cond)
	}
	l := &loopCtx{}
	c.loops = append(c.loops, l)
	if err := c.block(s.Body, true); err != nil {
		return err
	}
	c.loops = c.loops[:len(c.loops)-1]
	postAt := c.here()
	for _, at := range l.continuePatches {
		c.patch(at, postAt)
	}
	if s.Post != nil {
		if err := c.stmt(s.Post); err != nil {
			return err
		}
	}
	c.emit(Instr{Op: opJMP, A: condAt})
	end := c.here()
	if jz >= 0 {
		c.patch(jz, end)
	}
	for _, at := range l.breakPatches {
		c.patch(at, end)
	}
	return nil
}

func (c *compiler) whileStmt(s *clc.WhileStmt) error {
	condAt := c.here()
	cond, err := c.cond(s.Cond)
	if err != nil {
		return err
	}
	jz := c.emit(Instr{Op: opJZ, B: cond})
	c.freeTempI(cond)
	l := &loopCtx{}
	c.loops = append(c.loops, l)
	if err := c.block(s.Body, true); err != nil {
		return err
	}
	c.loops = c.loops[:len(c.loops)-1]
	for _, at := range l.continuePatches {
		c.patch(at, condAt)
	}
	c.emit(Instr{Op: opJMP, A: condAt})
	end := c.here()
	c.patch(jz, end)
	for _, at := range l.breakPatches {
		c.patch(at, end)
	}
	return nil
}

// ---- expressions ----

// cond compiles a condition into an int register (0 = false).
func (c *compiler) cond(e clc.Expr) (int32, error) {
	if e.Type().Kind == clc.Float {
		r, err := c.exprF(e)
		if err != nil {
			return 0, err
		}
		zero := c.allocTempF()
		c.emit(Instr{Op: opLDF, A: zero, FImm: 0})
		res := c.allocTempI()
		c.emit(Instr{Op: opFNE, A: res, B: r, C: zero})
		// free in LIFO order: res stays live; zero and r are float temps
		c.freeTempF(zero)
		c.freeTempF(r)
		return res, nil
	}
	return c.exprI(e)
}

// exprI compiles an int- or bool-typed expression into an int register.
func (c *compiler) exprI(e clc.Expr) (int32, error) {
	switch e := e.(type) {
	case *clc.IntLit:
		r := c.allocTempI()
		c.emit(Instr{Op: opLDI, A: r, IImm: e.Val})
		return r, nil
	case *clc.BoolLit:
		r := c.allocTempI()
		v := int64(0)
		if e.Val {
			v = 1
		}
		c.emit(Instr{Op: opLDI, A: r, IImm: v})
		return r, nil
	case *clc.Ident:
		if v, ok := builtinConstVal(e.Name); ok {
			r := c.allocTempI()
			c.emit(Instr{Op: opLDI, A: r, IImm: v})
			return r, nil
		}
		b, ok := c.scope.lookup(e.Name)
		if !ok {
			return 0, fmt.Errorf("vm: undefined %q", e.Name)
		}
		if b.kind != bindIntVar {
			return 0, fmt.Errorf("vm: %q is not an int variable", e.Name)
		}
		r := c.allocTempI()
		c.emit(Instr{Op: opIMOV, A: r, B: b.reg})
		return r, nil
	case *clc.UnaryExpr:
		switch e.Op {
		case clc.MINUS:
			r, err := c.exprI(e.X)
			if err != nil {
				return 0, err
			}
			c.emit(Instr{Op: opINEG, A: r, B: r})
			return r, nil
		case clc.NOT:
			r, err := c.cond(e.X)
			if err != nil {
				return 0, err
			}
			c.emit(Instr{Op: opNOTB, A: r, B: r})
			return r, nil
		}
	case *clc.BinaryExpr:
		return c.binaryI(e)
	case *clc.CondExpr:
		return c.ternaryI(e)
	case *clc.CallExpr:
		return c.callI(e)
	case *clc.IndexExpr:
		b, ok := c.scope.lookup(e.Base.Name)
		if !ok {
			return 0, fmt.Errorf("vm: undefined %q", e.Base.Name)
		}
		idx, err := c.exprI(e.Idx)
		if err != nil {
			return 0, err
		}
		c.freeTempI(idx)
		// r may reuse idx's slot; safe because the interpreter reads the
		// index register before writing the destination.
		r := c.allocTempI()
		c.emit(Instr{Op: loadOp(b.kind, false), A: r, B: b.slot, C: idx, D: c.newMemID(b)})
		return r, nil
	case *clc.CastExpr:
		switch e.To.Kind {
		case clc.Int:
			switch e.X.Type().Kind {
			case clc.Float:
				rf, err := c.exprF(e.X)
				if err != nil {
					return 0, err
				}
				c.freeTempF(rf)
				r := c.allocTempI()
				c.emit(Instr{Op: opF2I, A: r, B: rf})
				return r, nil
			default: // int/bool: identity
				return c.exprI(e.X)
			}
		case clc.Bool:
			switch e.X.Type().Kind {
			case clc.Float:
				return c.cond(e.X)
			default:
				// normalize to 0/1
				r, err := c.exprI(e.X)
				if err != nil {
					return 0, err
				}
				z := c.allocTempI()
				c.emit(Instr{Op: opLDI, A: z, IImm: 0})
				c.emit(Instr{Op: opINE, A: r, B: r, C: z})
				c.freeTempI(z)
				return r, nil
			}
		}
	}
	return 0, fmt.Errorf("vm: cannot compile %T as int expression", e)
}

func builtinConstVal(name string) (int64, bool) {
	switch name {
	case "CLK_LOCAL_MEM_FENCE":
		return 1, true
	case "CLK_GLOBAL_MEM_FENCE":
		return 2, true
	}
	return 0, false
}

func intCmpOp(op clc.Kind) Op {
	switch op {
	case clc.LT:
		return opILT
	case clc.LEQ:
		return opILE
	case clc.GT:
		return opIGT
	case clc.GEQ:
		return opIGE
	case clc.EQ:
		return opIEQ
	case clc.NEQ:
		return opINE
	}
	return opNop
}

func floatCmpOp(op clc.Kind) Op {
	switch op {
	case clc.LT:
		return opFLT
	case clc.LEQ:
		return opFLE
	case clc.GT:
		return opFGT
	case clc.GEQ:
		return opFGE
	case clc.EQ:
		return opFEQ
	case clc.NEQ:
		return opFNE
	}
	return opNop
}

func (c *compiler) binaryI(e *clc.BinaryExpr) (int32, error) {
	switch e.Op {
	case clc.PLUS, clc.MINUS, clc.STAR, clc.SLASH, clc.PERCENT:
		rx, err := c.exprI(e.X)
		if err != nil {
			return 0, err
		}
		ry, err := c.exprI(e.Y)
		if err != nil {
			return 0, err
		}
		var op Op
		switch e.Op {
		case clc.PLUS:
			op = opIADD
		case clc.MINUS:
			op = opISUB
		case clc.STAR:
			op = opIMUL
		case clc.SLASH:
			op = opIDIV
		case clc.PERCENT:
			op = opIMOD
		}
		c.emit(Instr{Op: op, A: rx, B: rx, C: ry})
		c.freeTempI(ry)
		return rx, nil
	case clc.EQ, clc.NEQ, clc.LT, clc.LEQ, clc.GT, clc.GEQ:
		// Operand types were unified by sema.
		if e.X.Type().Kind == clc.Float {
			rx, err := c.exprF(e.X)
			if err != nil {
				return 0, err
			}
			ry, err := c.exprF(e.Y)
			if err != nil {
				return 0, err
			}
			c.freeTempF(ry)
			c.freeTempF(rx)
			r := c.allocTempI()
			c.emit(Instr{Op: floatCmpOp(e.Op), A: r, B: rx, C: ry})
			return r, nil
		}
		rx, err := c.exprI(e.X)
		if err != nil {
			return 0, err
		}
		ry, err := c.exprI(e.Y)
		if err != nil {
			return 0, err
		}
		c.emit(Instr{Op: intCmpOp(e.Op), A: rx, B: rx, C: ry})
		c.freeTempI(ry)
		return rx, nil
	case clc.ANDAND:
		r, err := c.cond(e.X)
		if err != nil {
			return 0, err
		}
		jz := c.emit(Instr{Op: opJZ, B: r})
		ry, err := c.cond(e.Y)
		if err != nil {
			return 0, err
		}
		c.emit(Instr{Op: opIMOV, A: r, B: ry})
		c.freeTempI(ry)
		c.patch(jz, c.here())
		return r, nil
	case clc.OROR:
		r, err := c.cond(e.X)
		if err != nil {
			return 0, err
		}
		jnz := c.emit(Instr{Op: opJNZ, B: r})
		ry, err := c.cond(e.Y)
		if err != nil {
			return 0, err
		}
		c.emit(Instr{Op: opIMOV, A: r, B: ry})
		c.freeTempI(ry)
		c.patch(jnz, c.here())
		return r, nil
	}
	return 0, fmt.Errorf("vm: operator %s does not yield int", e.Op)
}

func (c *compiler) ternaryI(e *clc.CondExpr) (int32, error) {
	res := c.allocTempI()
	cond, err := c.cond(e.Cond)
	if err != nil {
		return 0, err
	}
	jz := c.emit(Instr{Op: opJZ, B: cond})
	c.freeTempI(cond)
	rt, err := c.exprI(e.Then)
	if err != nil {
		return 0, err
	}
	c.emit(Instr{Op: opIMOV, A: res, B: rt})
	c.freeTempI(rt)
	jmp := c.emit(Instr{Op: opJMP})
	c.patch(jz, c.here())
	re, err := c.exprI(e.Else)
	if err != nil {
		return 0, err
	}
	c.emit(Instr{Op: opIMOV, A: res, B: re})
	c.freeTempI(re)
	c.patch(jmp, c.here())
	return res, nil
}

func (c *compiler) callI(e *clc.CallExpr) (int32, error) {
	switch e.Name {
	case "get_global_id", "get_local_id", "get_group_id", "get_num_groups",
		"get_local_size", "get_global_size":
		var op Op
		switch e.Name {
		case "get_global_id":
			op = opGID
		case "get_local_id":
			op = opLID
		case "get_group_id":
			op = opGRP
		case "get_num_groups":
			op = opNGR
		case "get_local_size":
			op = opLSZ
		case "get_global_size":
			op = opGSZ
		}
		rd, err := c.exprI(e.Args[0])
		if err != nil {
			return 0, err
		}
		c.emit(Instr{Op: op, A: rd, B: rd})
		return rd, nil
	case "get_global_offset":
		rd, err := c.exprI(e.Args[0])
		if err != nil {
			return 0, err
		}
		c.emit(Instr{Op: opLDI, A: rd, IImm: 0})
		return rd, nil
	case "get_work_dim":
		r := c.allocTempI()
		c.emit(Instr{Op: opWDIM, A: r})
		return r, nil
	case "min", "max":
		rx, err := c.exprI(e.Args[0])
		if err != nil {
			return 0, err
		}
		ry, err := c.exprI(e.Args[1])
		if err != nil {
			return 0, err
		}
		op := opIMIN
		if e.Name == "max" {
			op = opIMAX
		}
		c.emit(Instr{Op: op, A: rx, B: rx, C: ry})
		c.freeTempI(ry)
		return rx, nil
	case "abs":
		rx, err := c.exprI(e.Args[0])
		if err != nil {
			return 0, err
		}
		c.emit(Instr{Op: opIABS, A: rx, B: rx})
		return rx, nil
	}
	return 0, fmt.Errorf("vm: builtin %q does not yield int", e.Name)
}

// exprF compiles a float-typed expression into a float register.
func (c *compiler) exprF(e clc.Expr) (int32, error) {
	switch e := e.(type) {
	case *clc.FloatLit:
		r := c.allocTempF()
		c.emit(Instr{Op: opLDF, A: r, FImm: float64(float32(e.Val))})
		return r, nil
	case *clc.Ident:
		b, ok := c.scope.lookup(e.Name)
		if !ok {
			return 0, fmt.Errorf("vm: undefined %q", e.Name)
		}
		if b.kind != bindFloatVar {
			return 0, fmt.Errorf("vm: %q is not a float variable", e.Name)
		}
		r := c.allocTempF()
		c.emit(Instr{Op: opFMOV, A: r, B: b.reg})
		return r, nil
	case *clc.UnaryExpr:
		if e.Op == clc.MINUS {
			r, err := c.exprF(e.X)
			if err != nil {
				return 0, err
			}
			c.emit(Instr{Op: opFNEG, A: r, B: r})
			return r, nil
		}
	case *clc.BinaryExpr:
		var op Op
		switch e.Op {
		case clc.PLUS:
			op = opFADD
		case clc.MINUS:
			op = opFSUB
		case clc.STAR:
			op = opFMUL
		case clc.SLASH:
			op = opFDIV
		default:
			return 0, fmt.Errorf("vm: operator %s does not yield float", e.Op)
		}
		rx, err := c.exprF(e.X)
		if err != nil {
			return 0, err
		}
		ry, err := c.exprF(e.Y)
		if err != nil {
			return 0, err
		}
		c.emit(Instr{Op: op, A: rx, B: rx, C: ry})
		c.freeTempF(ry)
		return rx, nil
	case *clc.CondExpr:
		res := c.allocTempF()
		cond, err := c.cond(e.Cond)
		if err != nil {
			return 0, err
		}
		jz := c.emit(Instr{Op: opJZ, B: cond})
		c.freeTempI(cond)
		rt, err := c.exprF(e.Then)
		if err != nil {
			return 0, err
		}
		c.emit(Instr{Op: opFMOV, A: res, B: rt})
		c.freeTempF(rt)
		jmp := c.emit(Instr{Op: opJMP})
		c.patch(jz, c.here())
		re, err := c.exprF(e.Else)
		if err != nil {
			return 0, err
		}
		c.emit(Instr{Op: opFMOV, A: res, B: re})
		c.freeTempF(re)
		c.patch(jmp, c.here())
		return res, nil
	case *clc.CallExpr:
		return c.callF(e)
	case *clc.IndexExpr:
		b, ok := c.scope.lookup(e.Base.Name)
		if !ok {
			return 0, fmt.Errorf("vm: undefined %q", e.Base.Name)
		}
		idx, err := c.exprI(e.Idx)
		if err != nil {
			return 0, err
		}
		r := c.allocTempF()
		c.emit(Instr{Op: loadOp(b.kind, true), A: r, B: b.slot, C: idx, D: c.newMemID(b)})
		c.freeTempI(idx)
		return r, nil
	case *clc.CastExpr:
		if e.To.Kind == clc.Float {
			switch e.X.Type().Kind {
			case clc.Float:
				return c.exprF(e.X)
			default:
				ri, err := c.exprI(e.X)
				if err != nil {
					return 0, err
				}
				c.freeTempI(ri)
				r := c.allocTempF()
				c.emit(Instr{Op: opI2F, A: r, B: ri})
				return r, nil
			}
		}
	}
	return 0, fmt.Errorf("vm: cannot compile %T as float expression", e)
}

func (c *compiler) callF(e *clc.CallExpr) (int32, error) {
	var op Op
	switch e.Name {
	case "sqrt":
		op = opSQRT
	case "fabs":
		op = opFABS
	case "exp":
		op = opEXP
	case "log":
		op = opLOG
	case "floor":
		op = opFLOOR
	case "ceil":
		op = opCEIL
	case "pow", "fmin", "fmax":
		rx, err := c.exprF(e.Args[0])
		if err != nil {
			return 0, err
		}
		ry, err := c.exprF(e.Args[1])
		if err != nil {
			return 0, err
		}
		var op2 Op
		switch e.Name {
		case "pow":
			op2 = opPOW
		case "fmin":
			op2 = opFMIN
		case "fmax":
			op2 = opFMAX
		}
		c.emit(Instr{Op: op2, A: rx, B: rx, C: ry})
		c.freeTempF(ry)
		return rx, nil
	default:
		return 0, fmt.Errorf("vm: builtin %q does not yield float", e.Name)
	}
	rx, err := c.exprF(e.Args[0])
	if err != nil {
		return 0, err
	}
	c.emit(Instr{Op: op, A: rx, B: rx})
	return rx, nil
}
