package vm

import (
	"fmt"
	"math"

	"fluidicl/internal/clc"
)

// RefExec is a direct AST interpreter with exactly the semantics the
// bytecode VM implements (float32 arithmetic, C-style truncation, barrier
// phasing is unsupported — it rejects kernels with barriers). It exists as
// an independent oracle: differential tests run random programs through
// both engines and require identical results, so a miscompilation in the
// bytecode compiler cannot hide behind a matching bug.
//
// It is deliberately slow and simple; nothing in the runtime uses it.
type RefExec struct {
	ki *clc.KernelInfo
}

// NewRefExec builds a reference executor for a checked kernel.
func NewRefExec(ki *clc.KernelInfo) (*RefExec, error) {
	if ki.HasBarrier {
		return nil, fmt.Errorf("vm: RefExec does not support barriers")
	}
	return &RefExec{ki: ki}, nil
}

// value is a dynamically-typed scalar.
type value struct {
	f       float64
	i       int64
	isFloat bool
}

func fval(f float64) value { return value{f: float64(float32(f)), isFloat: true} }
func ival(i int64) value   { return value{i: i} }

func (v value) truthy() bool {
	if v.isFloat {
		return v.f != 0
	}
	return v.i != 0
}

// refArray is a mutable array binding (global buffer or local/private array).
// For global buffer args executed speculatively, def is non-nil and loads and
// stores are routed through the deferred-write log instead of the buffer.
type refArray struct {
	buf    []byte
	elem   clc.ScalarKind
	def    *DeferredWrites
	argIdx int32
}

func (a refArray) load(idx int64) (value, error) {
	off := idx * 4
	if idx < 0 || off+4 > int64(len(a.buf)) {
		return value{}, fmt.Errorf("ref: index %d out of range (%d bytes)", idx, len(a.buf))
	}
	bits := uint32(a.buf[off]) | uint32(a.buf[off+1])<<8 | uint32(a.buf[off+2])<<16 | uint32(a.buf[off+3])<<24
	if a.def != nil {
		a.def.noteRead(a.argIdx, int32(off))
		if v, ok := a.def.lookup(a.argIdx, int32(off)); ok {
			bits = v
		}
	}
	if a.elem == clc.Float {
		return fval(float64(math.Float32frombits(bits))), nil
	}
	return ival(int64(int32(bits))), nil
}

func (a refArray) store(idx int64, v value) error {
	off := idx * 4
	if idx < 0 || off+4 > int64(len(a.buf)) {
		return fmt.Errorf("ref: index %d out of range (%d bytes)", idx, len(a.buf))
	}
	var bits uint32
	if a.elem == clc.Float {
		bits = math.Float32bits(float32(v.f))
	} else {
		bits = uint32(int32(v.i))
	}
	if a.def != nil {
		a.def.store(a.argIdx, int32(off), bits)
		return nil
	}
	a.buf[off] = byte(bits)
	a.buf[off+1] = byte(bits >> 8)
	a.buf[off+2] = byte(bits >> 16)
	a.buf[off+3] = byte(bits >> 24)
	return nil
}

// refScope is a lexical scope of scalar variables and array bindings.
type refScope struct {
	parent *refScope
	vars   map[string]*value
	arrs   map[string]refArray
}

func (s *refScope) lookupVar(name string) (*value, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if v, ok := sc.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (s *refScope) lookupArr(name string) (refArray, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if a, ok := sc.arrs[name]; ok {
			return a, true
		}
	}
	return refArray{}, false
}

// control-flow signals
type refSignal int

const (
	sigNone refSignal = iota
	sigReturn
	sigBreak
	sigContinue
)

type refCtx struct {
	nd     NDRange
	group  [3]int
	lid    [3]int
	locals map[string]refArray // per-work-group local arrays
	steps  int64
	max    int64
}

// ExecWorkGroup interprets one work-group, mutating buffer args in place.
func (r *RefExec) ExecWorkGroup(nd NDRange, group [3]int, args []Arg) error {
	return r.execGroup(nd, group, args, nil)
}

// execGroup interprets one work-group. With def non-nil all global buffer
// traffic is routed through the deferred-write log (speculative mode).
func (r *RefExec) execGroup(nd NDRange, group [3]int, args []Arg, def *DeferredWrites) error {
	params := r.ki.Kernel.Params
	if len(args) != len(params) {
		return fmt.Errorf("ref: want %d args, got %d", len(params), len(args))
	}
	// Local arrays shared across the group's work-items.
	locals := map[string]refArray{}
	collectLocalArrays(r.ki.Kernel.Body, locals)

	nWI := nd.WorkItemsPerGroup()
	for wi := 0; wi < nWI; wi++ {
		lx := nd.LocalSize[0]
		ly := nd.LocalSize[1]
		ctx := &refCtx{
			nd:     nd,
			group:  group,
			lid:    [3]int{wi % lx, (wi / lx) % ly, wi / (lx * ly)},
			locals: locals,
			max:    defaultMaxSteps,
		}
		scope := &refScope{vars: map[string]*value{}, arrs: map[string]refArray{}}
		for i, p := range params {
			if p.Ty.Ptr {
				scope.arrs[p.Name] = refArray{buf: args[i].Buf, elem: p.Ty.Kind, def: def, argIdx: int32(i)}
			} else if p.Ty.Kind == clc.Float {
				v := fval(args[i].F)
				scope.vars[p.Name] = &v
			} else {
				v := ival(args[i].I)
				scope.vars[p.Name] = &v
			}
		}
		if _, err := refBlock(ctx, scope, r.ki.Kernel.Body); err != nil {
			return err
		}
	}
	return nil
}

// ExecLaunch interprets every work-group of the launch, mutating buffer args
// in place. With Workers() > 1 groups run speculatively in parallel and
// commit in flattened-group order, producing byte-identical buffers to the
// sequential per-group path.
func (r *RefExec) ExecLaunch(nd NDRange, args []Arg) error {
	n := nd.LaunchGroups()
	if w := Workers(); w > 1 && n > 1 {
		if eng := newEngine(n, args, w, nil); eng != nil {
			defer eng.Release()
			eng.exec = func(i int, d *DeferredWrites) (Stats, error) {
				return Stats{}, r.execGroup(nd, nd.GroupAt(i), args, d)
			}
			for i := 0; i < n; i++ {
				_, err := eng.Result(i)
				eng.Commit(i, nil)
				if err != nil {
					return err
				}
			}
			return nil
		}
	}
	for i := 0; i < n; i++ {
		if err := r.ExecWorkGroup(nd, nd.GroupAt(i), args); err != nil {
			return err
		}
	}
	return nil
}

func collectLocalArrays(b *clc.Block, out map[string]refArray) {
	for _, s := range b.Stmts {
		switch s := s.(type) {
		case *clc.DeclStmt:
			if s.ArrayLen != nil && s.Space == clc.SpaceLocal {
				n, _ := clc.ConstEval(s.ArrayLen)
				out[s.Name] = refArray{buf: make([]byte, n*4), elem: s.Elem}
			}
		case *clc.Block:
			collectLocalArrays(s, out)
		case *clc.IfStmt:
			collectLocalArrays(s.Then, out)
			if e, ok := s.Else.(*clc.Block); ok {
				collectLocalArrays(e, out)
			}
		case *clc.ForStmt:
			collectLocalArrays(s.Body, out)
		case *clc.WhileStmt:
			collectLocalArrays(s.Body, out)
		}
	}
}

func refBlock(ctx *refCtx, sc *refScope, b *clc.Block) (refSignal, error) {
	inner := &refScope{parent: sc, vars: map[string]*value{}, arrs: map[string]refArray{}}
	for _, s := range b.Stmts {
		sig, err := refStmt(ctx, inner, s)
		if err != nil || sig != sigNone {
			return sig, err
		}
	}
	return sigNone, nil
}

func refStmt(ctx *refCtx, sc *refScope, s clc.Stmt) (refSignal, error) {
	ctx.steps++
	if ctx.steps > ctx.max {
		return sigNone, fmt.Errorf("ref: step budget exceeded")
	}
	switch s := s.(type) {
	case *clc.Block:
		return refBlock(ctx, sc, s)
	case *clc.DeclStmt:
		if s.ArrayLen != nil {
			if s.Space == clc.SpaceLocal {
				sc.arrs[s.Name] = ctx.locals[s.Name]
			} else {
				n, _ := clc.ConstEval(s.ArrayLen)
				sc.arrs[s.Name] = refArray{buf: make([]byte, n*4), elem: s.Elem}
			}
			return sigNone, nil
		}
		var v value
		if s.Init != nil {
			ev, err := refExpr(ctx, sc, s.Init)
			if err != nil {
				return sigNone, err
			}
			v = convertTo(ev, s.Elem)
		} else if s.Elem == clc.Float {
			v = fval(0)
		} else {
			v = ival(0)
		}
		sc.vars[s.Name] = &v
		return sigNone, nil
	case *clc.AssignStmt:
		return sigNone, refAssign(ctx, sc, s)
	case *clc.ExprStmt:
		_, err := refExpr(ctx, sc, s.X)
		return sigNone, err
	case *clc.IfStmt:
		c, err := refExpr(ctx, sc, s.Cond)
		if err != nil {
			return sigNone, err
		}
		if c.truthy() {
			return refBlock(ctx, sc, s.Then)
		}
		if s.Else != nil {
			return refStmt(ctx, sc, s.Else)
		}
		return sigNone, nil
	case *clc.ForStmt:
		inner := &refScope{parent: sc, vars: map[string]*value{}, arrs: map[string]refArray{}}
		if s.Init != nil {
			if sig, err := refStmt(ctx, inner, s.Init); err != nil || sig != sigNone {
				return sig, err
			}
		}
		for {
			ctx.steps++
			if ctx.steps > ctx.max {
				return sigNone, fmt.Errorf("ref: step budget exceeded")
			}
			if s.Cond != nil {
				c, err := refExpr(ctx, inner, s.Cond)
				if err != nil {
					return sigNone, err
				}
				if !c.truthy() {
					return sigNone, nil
				}
			}
			sig, err := refBlock(ctx, inner, s.Body)
			if err != nil {
				return sigNone, err
			}
			if sig == sigReturn {
				return sigReturn, nil
			}
			if sig == sigBreak {
				return sigNone, nil
			}
			if s.Post != nil {
				if sig, err := refStmt(ctx, inner, s.Post); err != nil || sig != sigNone {
					return sig, err
				}
			}
		}
	case *clc.WhileStmt:
		for {
			ctx.steps++
			if ctx.steps > ctx.max {
				return sigNone, fmt.Errorf("ref: step budget exceeded")
			}
			c, err := refExpr(ctx, sc, s.Cond)
			if err != nil {
				return sigNone, err
			}
			if !c.truthy() {
				return sigNone, nil
			}
			sig, err := refBlock(ctx, sc, s.Body)
			if err != nil {
				return sigNone, err
			}
			if sig == sigReturn {
				return sigReturn, nil
			}
			if sig == sigBreak {
				return sigNone, nil
			}
		}
	case *clc.ReturnStmt:
		return sigReturn, nil
	case *clc.BreakStmt:
		return sigBreak, nil
	case *clc.ContinueStmt:
		return sigContinue, nil
	}
	return sigNone, fmt.Errorf("ref: unknown statement %T", s)
}

func refAssign(ctx *refCtx, sc *refScope, a *clc.AssignStmt) error {
	switch lhs := a.LHS.(type) {
	case *clc.Ident:
		slot, ok := sc.lookupVar(lhs.Name)
		if !ok {
			return fmt.Errorf("ref: undefined %q", lhs.Name)
		}
		rv, err := refExpr(ctx, sc, a.RHS)
		if err != nil {
			return err
		}
		if a.Op == clc.ASSIGN {
			if slot.isFloat {
				*slot = convertTo(rv, clc.Float)
			} else {
				*slot = convertTo(rv, clc.Int)
			}
			return nil
		}
		*slot = applyCompound(a.Op, *slot, rv)
		return nil
	case *clc.IndexExpr:
		arr, ok := sc.lookupArr(lhs.Base.Name)
		if !ok {
			return fmt.Errorf("ref: undefined array %q", lhs.Base.Name)
		}
		iv, err := refExpr(ctx, sc, lhs.Idx)
		if err != nil {
			return err
		}
		rv, err := refExpr(ctx, sc, a.RHS)
		if err != nil {
			return err
		}
		if a.Op != clc.ASSIGN {
			cur, err := arr.load(iv.i)
			if err != nil {
				return err
			}
			rv = applyCompound(a.Op, cur, rv)
		} else {
			rv = convertTo(rv, arr.elem)
		}
		return arr.store(iv.i, rv)
	}
	return fmt.Errorf("ref: bad assignment target")
}

// applyCompound applies op= with C numeric semantics; the result takes the
// left operand's type.
func applyCompound(op clc.Kind, l, r value) value {
	if l.isFloat {
		rf := convertTo(r, clc.Float)
		switch op {
		case clc.PLUSEQ:
			return fval(float64(float32(l.f) + float32(rf.f)))
		case clc.MINUSEQ:
			return fval(float64(float32(l.f) - float32(rf.f)))
		case clc.STAREQ:
			return fval(float64(float32(l.f) * float32(rf.f)))
		case clc.SLASHEQ:
			return fval(float64(float32(l.f) / float32(rf.f)))
		}
		return l
	}
	ri := convertTo(r, clc.Int)
	switch op {
	case clc.PLUSEQ:
		return ival(l.i + ri.i)
	case clc.MINUSEQ:
		return ival(l.i - ri.i)
	case clc.STAREQ:
		return ival(l.i * ri.i)
	case clc.SLASHEQ:
		if ri.i == 0 {
			return ival(0) // callers compare against VM, which errors first
		}
		return ival(l.i / ri.i)
	}
	return l
}

func convertTo(v value, k clc.ScalarKind) value {
	switch k {
	case clc.Float:
		if v.isFloat {
			return fval(v.f)
		}
		return fval(float64(float32(v.i)))
	case clc.Bool:
		if v.truthy() {
			return ival(1)
		}
		return ival(0)
	default:
		if v.isFloat {
			f := v.f
			if math.IsNaN(f) {
				f = 0
			}
			return ival(int64(f))
		}
		return ival(v.i)
	}
}

func refExpr(ctx *refCtx, sc *refScope, e clc.Expr) (value, error) {
	switch e := e.(type) {
	case *clc.IntLit:
		return ival(e.Val), nil
	case *clc.FloatLit:
		return fval(e.Val), nil
	case *clc.BoolLit:
		if e.Val {
			return ival(1), nil
		}
		return ival(0), nil
	case *clc.Ident:
		if e.Name == "CLK_LOCAL_MEM_FENCE" {
			return ival(1), nil
		}
		if e.Name == "CLK_GLOBAL_MEM_FENCE" {
			return ival(2), nil
		}
		v, ok := sc.lookupVar(e.Name)
		if !ok {
			return value{}, fmt.Errorf("ref: undefined %q", e.Name)
		}
		return *v, nil
	case *clc.UnaryExpr:
		x, err := refExpr(ctx, sc, e.X)
		if err != nil {
			return value{}, err
		}
		switch e.Op {
		case clc.MINUS:
			if x.isFloat {
				return fval(-x.f), nil
			}
			return ival(-x.i), nil
		case clc.NOT:
			if x.truthy() {
				return ival(0), nil
			}
			return ival(1), nil
		}
	case *clc.BinaryExpr:
		return refBinary(ctx, sc, e)
	case *clc.CondExpr:
		c, err := refExpr(ctx, sc, e.Cond)
		if err != nil {
			return value{}, err
		}
		if c.truthy() {
			return refExpr(ctx, sc, e.Then)
		}
		return refExpr(ctx, sc, e.Else)
	case *clc.CallExpr:
		return refCall(ctx, sc, e)
	case *clc.IndexExpr:
		arr, ok := sc.lookupArr(e.Base.Name)
		if !ok {
			return value{}, fmt.Errorf("ref: undefined array %q", e.Base.Name)
		}
		iv, err := refExpr(ctx, sc, e.Idx)
		if err != nil {
			return value{}, err
		}
		return arr.load(iv.i)
	case *clc.CastExpr:
		x, err := refExpr(ctx, sc, e.X)
		if err != nil {
			return value{}, err
		}
		return convertTo(x, e.To.Kind), nil
	}
	return value{}, fmt.Errorf("ref: unknown expression %T", e)
}

func refBinary(ctx *refCtx, sc *refScope, e *clc.BinaryExpr) (value, error) {
	// Short-circuit first.
	if e.Op == clc.ANDAND || e.Op == clc.OROR {
		x, err := refExpr(ctx, sc, e.X)
		if err != nil {
			return value{}, err
		}
		if e.Op == clc.ANDAND && !x.truthy() {
			return ival(0), nil
		}
		if e.Op == clc.OROR && x.truthy() {
			return ival(1), nil
		}
		y, err := refExpr(ctx, sc, e.Y)
		if err != nil {
			return value{}, err
		}
		if y.truthy() {
			return ival(1), nil
		}
		return ival(0), nil
	}
	x, err := refExpr(ctx, sc, e.X)
	if err != nil {
		return value{}, err
	}
	y, err := refExpr(ctx, sc, e.Y)
	if err != nil {
		return value{}, err
	}
	// Sema inserted explicit casts, so operand types agree here.
	if x.isFloat || y.isFloat {
		xf, yf := float32(convertTo(x, clc.Float).f), float32(convertTo(y, clc.Float).f)
		switch e.Op {
		case clc.PLUS:
			return fval(float64(xf + yf)), nil
		case clc.MINUS:
			return fval(float64(xf - yf)), nil
		case clc.STAR:
			return fval(float64(xf * yf)), nil
		case clc.SLASH:
			return fval(float64(xf / yf)), nil
		case clc.EQ:
			return ival(b2i(xf == yf)), nil
		case clc.NEQ:
			return ival(b2i(xf != yf)), nil
		case clc.LT:
			return ival(b2i(xf < yf)), nil
		case clc.LEQ:
			return ival(b2i(xf <= yf)), nil
		case clc.GT:
			return ival(b2i(xf > yf)), nil
		case clc.GEQ:
			return ival(b2i(xf >= yf)), nil
		}
		return value{}, fmt.Errorf("ref: bad float op %s", e.Op)
	}
	xi, yi := x.i, y.i
	switch e.Op {
	case clc.PLUS:
		return ival(xi + yi), nil
	case clc.MINUS:
		return ival(xi - yi), nil
	case clc.STAR:
		return ival(xi * yi), nil
	case clc.SLASH:
		if yi == 0 {
			return value{}, fmt.Errorf("ref: integer division by zero")
		}
		return ival(xi / yi), nil
	case clc.PERCENT:
		if yi == 0 {
			return value{}, fmt.Errorf("ref: integer modulo by zero")
		}
		return ival(xi % yi), nil
	case clc.EQ:
		return ival(b2i(xi == yi)), nil
	case clc.NEQ:
		return ival(b2i(xi != yi)), nil
	case clc.LT:
		return ival(b2i(xi < yi)), nil
	case clc.LEQ:
		return ival(b2i(xi <= yi)), nil
	case clc.GT:
		return ival(b2i(xi > yi)), nil
	case clc.GEQ:
		return ival(b2i(xi >= yi)), nil
	}
	return value{}, fmt.Errorf("ref: bad int op %s", e.Op)
}

func refCall(ctx *refCtx, sc *refScope, e *clc.CallExpr) (value, error) {
	argv := make([]value, len(e.Args))
	for i, a := range e.Args {
		v, err := refExpr(ctx, sc, a)
		if err != nil {
			return value{}, err
		}
		argv[i] = v
	}
	dim := func() int64 {
		if len(argv) > 0 {
			return argv[0].i
		}
		return 0
	}
	at := func(vals [3]int, d int64) int64 {
		if d < 0 || d > 2 {
			return 0
		}
		return int64(vals[d])
	}
	switch e.Name {
	case "get_global_id":
		d := dim()
		return ival(at(ctx.group, d)*at(ctx.nd.LocalSize, d) + at(ctx.lid, d)), nil
	case "get_local_id":
		return ival(at(ctx.lid, dim())), nil
	case "get_group_id":
		return ival(at(ctx.group, dim())), nil
	case "get_num_groups":
		d := dim()
		if d < 0 || d > 2 {
			return ival(1), nil
		}
		return ival(int64(ctx.nd.NumGroups[d])), nil
	case "get_local_size":
		d := dim()
		if d < 0 || d > 2 {
			return ival(1), nil
		}
		return ival(int64(ctx.nd.LocalSize[d])), nil
	case "get_global_size":
		d := dim()
		if d < 0 || d > 2 {
			return ival(1), nil
		}
		return ival(int64(ctx.nd.NumGroups[d] * ctx.nd.LocalSize[d])), nil
	case "get_global_offset":
		return ival(0), nil
	case "get_work_dim":
		return ival(int64(ctx.nd.Dims)), nil
	case "sqrt":
		return fval(math.Sqrt(argv[0].f)), nil
	case "fabs":
		return fval(math.Abs(argv[0].f)), nil
	case "exp":
		return fval(math.Exp(argv[0].f)), nil
	case "log":
		return fval(math.Log(argv[0].f)), nil
	case "floor":
		return fval(math.Floor(argv[0].f)), nil
	case "ceil":
		return fval(math.Ceil(argv[0].f)), nil
	case "pow":
		return fval(math.Pow(argv[0].f, argv[1].f)), nil
	case "fmin":
		return fval(math.Min(argv[0].f, argv[1].f)), nil
	case "fmax":
		return fval(math.Max(argv[0].f, argv[1].f)), nil
	case "min":
		if argv[0].i < argv[1].i {
			return argv[0], nil
		}
		return argv[1], nil
	case "max":
		if argv[0].i > argv[1].i {
			return argv[0], nil
		}
		return argv[1], nil
	case "abs":
		if argv[0].i < 0 {
			return ival(-argv[0].i), nil
		}
		return argv[0], nil
	}
	return value{}, fmt.Errorf("ref: unknown builtin %q", e.Name)
}
