// Backend microbenchmarks over real Polybench kernels (external test
// package: polybench imports sched, which imports vm, so these cannot live
// in package vm).
package vm_test

import (
	"testing"

	"fluidicl/internal/clc"
	"fluidicl/internal/polybench"
	"fluidicl/internal/sched"
	"fluidicl/internal/vm"
)

// benchLaunch is one compiled kernel enqueue with its arguments resolved
// against a concrete buffer set.
type benchLaunch struct {
	k    *vm.Kernel
	nd   vm.NDRange
	args []vm.Arg
}

// benchApp lowers a quick-scale Polybench app to direct vm.ExecLaunch calls,
// bypassing the device/scheduler layers so the benchmark isolates work-group
// execution itself.
func benchApp(b *testing.B, name string) []benchLaunch {
	b.Helper()
	bm, err := polybench.ByNameQuick(name)
	if err != nil {
		b.Fatal(err)
	}
	app := bm.App
	bufs := make(map[string][]byte, len(app.Buffers))
	for bn, size := range app.Buffers {
		buf := make([]byte, size)
		copy(buf, app.Inputs[bn])
		bufs[bn] = buf
	}
	kernels := make(map[string]*vm.Kernel)
	var launches []benchLaunch
	for _, l := range app.Launches {
		k, ok := kernels[l.Kernel]
		if !ok {
			ki, err := clc.FindKernelInfo(app.Source, l.Kernel)
			if err != nil {
				b.Fatal(err)
			}
			if k, err = vm.Compile(ki); err != nil {
				b.Fatal(err)
			}
			kernels[l.Kernel] = k
		}
		args := make([]vm.Arg, len(l.Args))
		for i, a := range l.Args {
			switch a.Kind {
			case sched.ArgBuf:
				args[i] = vm.BufArg(bufs[a.Name])
			case sched.ArgInt:
				args[i] = vm.IntArg(a.I)
			default:
				args[i] = vm.FloatArg(a.F)
			}
		}
		launches = append(launches, benchLaunch{k: k, nd: l.ND, args: args})
	}
	return launches
}

// BenchmarkExecLaunch runs quick-scale Polybench apps end to end on each
// backend. Sequential workers so the numbers measure the execution engine,
// not goroutine scheduling; the acceptance bar is closure >= 1.5x interp on
// at least two kernels.
func BenchmarkExecLaunch(b *testing.B) {
	vm.SetWorkers(1)
	defer vm.SetWorkers(0)
	for _, name := range []string{"SYRK", "GESUMMV", "2MM"} {
		launches := benchApp(b, name)
		for _, be := range []vm.Backend{vm.BackendInterp, vm.BackendClosure, vm.BackendWG} {
			b.Run(name+"/"+be.String(), func(b *testing.B) {
				b.ReportAllocs()
				// Warm the scratch/engine pools before measuring.
				for _, l := range launches {
					if _, err := l.k.ExecLaunch(l.nd, l.args, vm.ExecOpts{Backend: be}); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, l := range launches {
						if _, err := l.k.ExecLaunch(l.nd, l.args, vm.ExecOpts{Backend: be}); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}
