// Backend microbenchmarks over real Polybench kernels (external test
// package: polybench imports sched, which imports vm, so these cannot live
// in package vm).
package vm_test

import (
	"testing"

	"fluidicl/internal/clc"
	"fluidicl/internal/polybench"
	"fluidicl/internal/sched"
	"fluidicl/internal/vm"
)

// benchLaunch is one compiled kernel enqueue with its arguments resolved
// against a concrete buffer set.
type benchLaunch struct {
	k    *vm.Kernel
	nd   vm.NDRange
	args []vm.Arg
}

// benchApp lowers a quick-scale Polybench app to direct vm.ExecLaunch calls,
// bypassing the device/scheduler layers so the benchmark isolates work-group
// execution itself.
func benchApp(b *testing.B, name string) []benchLaunch {
	b.Helper()
	bm, err := polybench.ByNameQuick(name)
	if err != nil {
		b.Fatal(err)
	}
	app := bm.App
	bufs := make(map[string][]byte, len(app.Buffers))
	for bn, size := range app.Buffers {
		buf := make([]byte, size)
		copy(buf, app.Inputs[bn])
		bufs[bn] = buf
	}
	kernels := make(map[string]*vm.Kernel)
	var launches []benchLaunch
	for _, l := range app.Launches {
		k, ok := kernels[l.Kernel]
		if !ok {
			ki, err := clc.FindKernelInfo(app.Source, l.Kernel)
			if err != nil {
				b.Fatal(err)
			}
			if k, err = vm.Compile(ki); err != nil {
				b.Fatal(err)
			}
			kernels[l.Kernel] = k
		}
		args := make([]vm.Arg, len(l.Args))
		for i, a := range l.Args {
			switch a.Kind {
			case sched.ArgBuf:
				args[i] = vm.BufArg(bufs[a.Name])
			case sched.ArgInt:
				args[i] = vm.IntArg(a.I)
			default:
				args[i] = vm.FloatArg(a.F)
			}
		}
		launches = append(launches, benchLaunch{k: k, nd: l.ND, args: args})
	}
	return launches
}

// benchScatter builds an adversarial strided-scatter launch: every store
// walks a whole column of a row-major matrix, so consecutive loop
// iterations touch offsets a full row apart (worst case for the locality
// tracker) while adjacent work-items touch consecutive columns. The body
// matches the scatter jam shape, making this the stress case for fused
// store accounting.
func benchScatter(b *testing.B) []benchLaunch {
	b.Helper()
	const src = `
__kernel void scatter_columns(__global float* out, int n, int rows) {
    int g = get_global_id(0);
    for (int r = 0; r < rows; r++) {
        out[r * n + g] = 1.0f;
    }
}
`
	const n, rows = 1024, 64
	ki, err := clc.FindKernelInfo(src, "scatter_columns")
	if err != nil {
		b.Fatal(err)
	}
	k, err := vm.Compile(ki)
	if err != nil {
		b.Fatal(err)
	}
	return []benchLaunch{{
		k:    k,
		nd:   vm.NewNDRange1D(n, 64),
		args: []vm.Arg{vm.BufArg(make([]byte, n*rows*4)), vm.IntArg(n), vm.IntArg(rows)},
	}}
}

// BenchmarkExecLaunch runs quick-scale Polybench apps end to end on each
// backend. Sequential workers so the numbers measure the execution engine,
// not goroutine scheduling; the acceptance bar is closure >= 1.5x interp on
// at least two kernels.
func BenchmarkExecLaunch(b *testing.B) {
	vm.SetWorkers(1)
	defer vm.SetWorkers(0)
	for _, name := range []string{"SYRK", "GESUMMV", "2MM", "CORR", "SCATTER"} {
		var launches []benchLaunch
		if name == "SCATTER" {
			launches = benchScatter(b)
		} else {
			launches = benchApp(b, name)
		}
		for _, be := range []vm.Backend{vm.BackendInterp, vm.BackendClosure, vm.BackendWG} {
			b.Run(name+"/"+be.String(), func(b *testing.B) {
				b.ReportAllocs()
				// Warm the scratch/engine pools before measuring.
				for _, l := range launches {
					if _, err := l.k.ExecLaunch(l.nd, l.args, vm.ExecOpts{Backend: be}); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, l := range launches {
						if _, err := l.k.ExecLaunch(l.nd, l.args, vm.ExecOpts{Backend: be}); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}
