package vm

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// f32buf builds a little-endian float32 buffer.
func f32buf(vals ...float32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
	}
	return b
}

func f32at(b []byte, i int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
}

func i32buf(vals ...int32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	return b
}

func i32at(b []byte, i int) int32 {
	return int32(binary.LittleEndian.Uint32(b[4*i:]))
}

func TestVectorAdd(t *testing.T) {
	k := MustCompile(`
__kernel void vadd(__global float* a, __global float* b, __global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) { c[i] = a[i] + b[i]; }
}
`, "vadd")
	n := 64
	a := make([]float32, n)
	b := make([]float32, n)
	for i := range a {
		a[i] = float32(i)
		b[i] = float32(2 * i)
	}
	ab, bb, cb := f32buf(a...), f32buf(b...), make([]byte, 4*n)
	nd := NewNDRange1D(n, 16)
	st, err := k.ExecLaunch(nd, []Arg{BufArg(ab), BufArg(bb), BufArg(cb), IntArg(int64(n))}, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := f32at(cb, i); got != float32(3*i) {
			t.Fatalf("c[%d] = %v, want %v", i, got, float32(3*i))
		}
	}
	if st.WorkGroups != 4 || st.WorkItems != 64 {
		t.Fatalf("stats groups=%d items=%d", st.WorkGroups, st.WorkItems)
	}
	if st.GlobalLoads != int64(2*n) || st.GlobalStores != int64(n) {
		t.Fatalf("loads=%d stores=%d", st.GlobalLoads, st.GlobalStores)
	}
}

func TestMatMul2D(t *testing.T) {
	k := MustCompile(`
__kernel void mm(__global float* A, __global float* B, __global float* C, int n) {
    int j = get_global_id(0);
    int i = get_global_id(1);
    if (i < n && j < n) {
        float acc = 0.0f;
        for (int kk = 0; kk < n; kk++) {
            acc += A[i * n + kk] * B[kk * n + j];
        }
        C[i * n + j] = acc;
    }
}
`, "mm")
	n := 8
	A := make([]float32, n*n)
	B := make([]float32, n*n)
	for i := range A {
		A[i] = float32(i%5) * 0.5
		B[i] = float32(i%7) * 0.25
	}
	ab, bb, cb := f32buf(A...), f32buf(B...), make([]byte, 4*n*n)
	nd := NewNDRange2D(n, n, 4, 4)
	if _, err := k.ExecLaunch(nd, []Arg{BufArg(ab), BufArg(bb), BufArg(cb), IntArg(int64(n))}, ExecOpts{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for kk := 0; kk < n; kk++ {
				acc += A[i*n+kk] * B[kk*n+j]
			}
			if got := f32at(cb, i*n+j); got != acc {
				t.Fatalf("C[%d][%d] = %v, want %v", i, j, got, acc)
			}
		}
	}
}

func TestIntOpsAndModulo(t *testing.T) {
	k := MustCompile(`
__kernel void f(__global int* out) {
    int i = get_global_id(0);
    out[i] = (i * 7 + 3) % 5 - (i / 2);
}
`, "f")
	n := 32
	out := make([]byte, 4*n)
	if _, err := k.ExecLaunch(NewNDRange1D(n, 8), []Arg{BufArg(out)}, ExecOpts{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := int32((i*7+3)%5 - i/2)
		if got := i32at(out, i); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestControlFlow(t *testing.T) {
	k := MustCompile(`
__kernel void f(__global int* out, int n) {
    int i = get_global_id(0);
    int acc = 0;
    int j = 0;
    while (true) {
        if (j >= n) { break; }
        if (j % 2 == 0) { j++; continue; }
        acc += j;
        j++;
    }
    out[i] = (acc > 10 && i < 4) ? acc : -acc;
}
`, "f")
	n := 8
	out := make([]byte, 4*n)
	if _, err := k.ExecLaunch(NewNDRange1D(n, 4), []Arg{BufArg(out), IntArg(10)}, ExecOpts{}); err != nil {
		t.Fatal(err)
	}
	// sum of odd j in [0,10) = 1+3+5+7+9 = 25
	for i := 0; i < n; i++ {
		want := int32(25)
		if i >= 4 {
			want = -25
		}
		if got := i32at(out, i); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// b[i] only safe to index when i < n; && must short-circuit.
	k := MustCompile(`
__kernel void f(__global int* b, __global int* out, int n) {
    int i = get_global_id(0);
    if (i < n && b[i] > 0) { out[i] = 1; }
    if (i >= n || b[i % n] < 100) {
        if (i < n) { out[i] += 2; }
    }
}
`, "f")
	n := 4
	b := i32buf(1, -1, 2, -2)
	out := make([]byte, 4*n)
	// launch 8 work-items over out of only 4: indices >= n exercise
	// short-circuiting (b[i] would be out of bounds).
	if _, err := k.ExecLaunch(NewNDRange1D(8, 4), []Arg{BufArg(b), BufArg(out), IntArg(int64(n))}, ExecOpts{}); err != nil {
		t.Fatal(err)
	}
	want := []int32{3, 2, 3, 2}
	for i := 0; i < n; i++ {
		if got := i32at(out, i); got != want[i] {
			t.Fatalf("out[%d] = %d, want %d", i, got, want[i])
		}
	}
}

func TestMathBuiltins(t *testing.T) {
	k := MustCompile(`
__kernel void f(__global float* out, float x) {
    out[0] = sqrt(x);
    out[1] = fabs(-x);
    out[2] = exp(1.0f);
    out[3] = pow(x, 2.0f);
    out[4] = fmax(x, 10.0f);
    out[5] = fmin(x, 1.0f);
    out[6] = floor(2.7f);
    out[7] = ceil(2.2f);
}
`, "f")
	out := make([]byte, 4*8)
	if _, err := k.ExecLaunch(NewNDRange1D(1, 1), []Arg{BufArg(out), FloatArg(4.0)}, ExecOpts{}); err != nil {
		t.Fatal(err)
	}
	want := []float32{2, 4, float32(math.E), 16, 10, 1, 2, 3}
	for i, w := range want {
		got := f32at(out, i)
		if math.Abs(float64(got-w)) > 1e-5 {
			t.Fatalf("out[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestIntMinMaxAbs(t *testing.T) {
	k := MustCompile(`
__kernel void f(__global int* out, int a, int b) {
    out[0] = min(a, b);
    out[1] = max(a, b);
    out[2] = abs(a - b);
}
`, "f")
	out := make([]byte, 12)
	if _, err := k.ExecLaunch(NewNDRange1D(1, 1), []Arg{BufArg(out), IntArg(-3), IntArg(7)}, ExecOpts{}); err != nil {
		t.Fatal(err)
	}
	if i32at(out, 0) != -3 || i32at(out, 1) != 7 || i32at(out, 2) != 10 {
		t.Fatalf("out = [%d %d %d]", i32at(out, 0), i32at(out, 1), i32at(out, 2))
	}
}

func TestBarrierWithLocalMemory(t *testing.T) {
	// Reverse each work-group's elements through local memory.
	k := MustCompile(`
__kernel void rev(__global float* a) {
    __local float tile[16];
    int l = get_local_id(0);
    int g = get_global_id(0);
    tile[l] = a[g];
    barrier(CLK_LOCAL_MEM_FENCE);
    int ls = get_local_size(0);
    a[g] = tile[ls - 1 - l];
}
`, "rev")
	if !k.HasBarrier {
		t.Fatal("HasBarrier not set")
	}
	n := 32
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(i)
	}
	buf := f32buf(vals...)
	st, err := k.ExecLaunch(NewNDRange1D(n, 16), []Arg{BufArg(buf)}, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		grp, l := i/16, i%16
		want := float32(grp*16 + (15 - l))
		if got := f32at(buf, i); got != want {
			t.Fatalf("a[%d] = %v, want %v", i, got, want)
		}
	}
	if st.Barriers == 0 {
		t.Fatal("no barriers counted")
	}
}

func TestBarrierDivergenceDetected(t *testing.T) {
	k := MustCompile(`
__kernel void bad(__global float* a) {
    if (get_local_id(0) < 2) { barrier(); }
    a[get_global_id(0)] = 1.0f;
}
`, "bad")
	buf := make([]byte, 4*4)
	_, err := k.ExecLaunch(NewNDRange1D(4, 4), []Arg{BufArg(buf)}, ExecOpts{})
	if err == nil {
		t.Fatal("divergent barrier not detected")
	}
}

func TestPrivateArray(t *testing.T) {
	k := MustCompile(`
__kernel void f(__global float* out) {
    float tmp[4];
    int i = get_global_id(0);
    for (int j = 0; j < 4; j++) { tmp[j] = (float)(i + j); }
    float s = 0.0f;
    for (int j = 0; j < 4; j++) { s += tmp[j]; }
    out[i] = s;
}
`, "f")
	n := 8
	out := make([]byte, 4*n)
	if _, err := k.ExecLaunch(NewNDRange1D(n, 4), []Arg{BufArg(out)}, ExecOpts{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := float32(4*i + 6)
		if got := f32at(out, i); got != want {
			t.Fatalf("out[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestOutOfBoundsError(t *testing.T) {
	k := MustCompile(`
__kernel void f(__global float* a) { a[get_global_id(0)] = 1.0f; }
`, "f")
	buf := make([]byte, 4*2) // too small for 4 work-items
	_, err := k.ExecLaunch(NewNDRange1D(4, 4), []Arg{BufArg(buf)}, ExecOpts{})
	if err == nil {
		t.Fatal("out-of-bounds store not detected")
	}
}

func TestDivByZeroError(t *testing.T) {
	k := MustCompile(`
__kernel void f(__global int* a, int d) { a[0] = 10 / d; }
`, "f")
	buf := make([]byte, 4)
	if _, err := k.ExecLaunch(NewNDRange1D(1, 1), []Arg{BufArg(buf), IntArg(0)}, ExecOpts{}); err == nil {
		t.Fatal("div by zero not detected")
	}
}

func TestInfiniteLoopGuard(t *testing.T) {
	k := MustCompile(`
__kernel void f(__global int* a) { while (true) { a[0] = 1; } }
`, "f")
	buf := make([]byte, 4)
	_, err := k.ExecLaunch(NewNDRange1D(1, 1), []Arg{BufArg(buf)}, ExecOpts{MaxSteps: 10000})
	if err == nil {
		t.Fatal("infinite loop not caught")
	}
}

func TestArgMismatch(t *testing.T) {
	k := MustCompile(`__kernel void f(__global int* a, int n) { a[0] = n; }`, "f")
	if _, err := k.ExecLaunch(NewNDRange1D(1, 1), []Arg{BufArg(make([]byte, 4))}, ExecOpts{}); err == nil {
		t.Fatal("missing arg not detected")
	}
	if _, err := k.ExecLaunch(NewNDRange1D(1, 1), []Arg{IntArg(1), IntArg(1)}, ExecOpts{}); err == nil {
		t.Fatal("kind mismatch not detected")
	}
}

func TestUndoLogRollback(t *testing.T) {
	k := MustCompile(`
__kernel void f(__global float* a) { a[get_global_id(0)] = 99.0f; }
`, "f")
	buf := f32buf(1, 2, 3, 4)
	orig := append([]byte(nil), buf...)
	var undo UndoLog
	if _, err := k.ExecWorkGroup(NewNDRange1D(4, 4), [3]int{0, 0, 0}, []Arg{BufArg(buf)}, ExecOpts{Undo: &undo}); err != nil {
		t.Fatal(err)
	}
	if f32at(buf, 0) != 99 {
		t.Fatal("store did not happen")
	}
	if undo.Len() != 4 {
		t.Fatalf("undo len = %d, want 4", undo.Len())
	}
	undo.Rollback()
	for i := range orig {
		if buf[i] != orig[i] {
			t.Fatal("rollback did not restore buffer")
		}
	}
	if undo.Len() != 0 {
		t.Fatal("rollback did not clear log")
	}
}

func TestCoalescedVsStridedTransactions(t *testing.T) {
	coal := MustCompile(`
__kernel void c(__global float* a, __global float* b) {
    int i = get_global_id(0);
    b[i] = a[i];
}
`, "c")
	strided := MustCompile(`
__kernel void s(__global float* a, __global float* b, int n) {
    int i = get_global_id(0);
    b[i] = a[i * n];
}
`, "s")
	n := 64
	a := make([]byte, 4*n*n)
	b := make([]byte, 4*n)
	stC, err := coal.ExecWorkGroup(NewNDRange1D(n, n), [3]int{0, 0, 0}, []Arg{BufArg(a), BufArg(b)}, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	stS, err := strided.ExecWorkGroup(NewNDRange1D(n, n), [3]int{0, 0, 0}, []Arg{BufArg(a), BufArg(b), IntArg(int64(n))}, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// The strided kernel's loads hit a new transaction per work-item; the
	// coalesced kernel's loads coalesce within each 32-wide warp.
	if stS.WarpTransactions <= 2*stC.WarpTransactions {
		t.Fatalf("strided transactions (%d) not clearly above coalesced (%d)",
			stS.WarpTransactions, stC.WarpTransactions)
	}
}

func TestSeqVsRandLocality(t *testing.T) {
	seq := MustCompile(`
__kernel void f(__global float* a, __global float* out, int n) {
    int i = get_global_id(0);
    float s = 0.0f;
    for (int k = 0; k < n; k++) { s += a[i * n + k]; }
    out[i] = s;
}
`, "f")
	rnd := MustCompile(`
__kernel void g(__global float* a, __global float* out, int n) {
    int i = get_global_id(0);
    float s = 0.0f;
    for (int k = 0; k < n; k++) { s += a[k * n + i]; }
    out[i] = s;
}
`, "g")
	n := 64
	a := make([]byte, 4*n*n)
	out := make([]byte, 4*n)
	args := []Arg{BufArg(a), BufArg(out), IntArg(int64(n))}
	stSeq, err := seq.ExecWorkGroup(NewNDRange1D(n, n), [3]int{0, 0, 0}, args, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	stRnd, err := rnd.ExecWorkGroup(NewNDRange1D(n, n), [3]int{0, 0, 0}, args, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if stSeq.SeqBytes <= stSeq.RandBytes {
		t.Fatalf("row-major kernel: seq=%d rand=%d, want mostly sequential", stSeq.SeqBytes, stSeq.RandBytes)
	}
	if stRnd.RandBytes <= stRnd.SeqBytes {
		t.Fatalf("column-major kernel: seq=%d rand=%d, want mostly random", stRnd.SeqBytes, stRnd.RandBytes)
	}
}

func TestFlatGroupIDMatchesPaperFigure5(t *testing.T) {
	// 5x5 grid; work-group (row y=4, col x=0) has flattened ID 20.
	nd := NewNDRange2D(5*4, 5*4, 4, 4)
	if got := nd.FlatGroupID([3]int{0, 4, 0}); got != 20 {
		t.Fatalf("flat(0,4) = %d, want 20", got)
	}
	if got := nd.FlatGroupID([3]int{3, 1, 0}); got != 8 {
		t.Fatalf("flat(3,1) = %d, want 8", got)
	}
	for flat := 0; flat < nd.TotalGroups(); flat++ {
		g := nd.GroupFromFlat(flat)
		if nd.FlatGroupID(g) != flat {
			t.Fatalf("round-trip failed for flat=%d", flat)
		}
	}
}

func TestNDRangeSliceCoversRange(t *testing.T) {
	nd := NewNDRange2D(8*4, 6*4, 4, 4) // 8x6 groups
	check := func(lo, hi int) {
		s := nd.Slice(lo, hi)
		covered := map[int]bool{}
		for i := 0; i < s.LaunchGroups(); i++ {
			covered[nd.FlatGroupID(s.GroupAt(i))] = true
		}
		for f := lo; f <= hi; f++ {
			if !covered[f] {
				t.Fatalf("Slice(%d,%d) does not cover %d", lo, hi, f)
			}
		}
	}
	check(0, 0)
	check(5, 7)   // within one row
	check(3, 20)  // spans rows
	check(0, 47)  // everything
	check(40, 47) // tail
}

func TestNDRangeSliceProperty(t *testing.T) {
	nd := NewNDRange2D(7*4, 5*4, 4, 4)
	total := nd.TotalGroups()
	f := func(a, b uint8) bool {
		lo := int(a) % total
		hi := int(b) % total
		if lo > hi {
			lo, hi = hi, lo
		}
		s := nd.Slice(lo, hi)
		covered := map[int]bool{}
		for i := 0; i < s.LaunchGroups(); i++ {
			g := s.GroupAt(i)
			fg := nd.FlatGroupID(g)
			if fg < 0 || fg >= total {
				return false
			}
			covered[fg] = true
		}
		for x := lo; x <= hi; x++ {
			if !covered[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupAtEnumeratesSliceExactly(t *testing.T) {
	nd := NewNDRange2D(4*2, 4*2, 2, 2)
	nd.GroupBase = [3]int{1, 2, 0}
	nd.GroupCount = [3]int{2, 2, 1}
	want := [][3]int{{1, 2, 0}, {2, 2, 0}, {1, 3, 0}, {2, 3, 0}}
	for i, w := range want {
		if g := nd.GroupAt(i); g != w {
			t.Fatalf("GroupAt(%d) = %v, want %v", i, g, w)
		}
	}
}

func TestFloatArithmeticIsFloat32(t *testing.T) {
	k := MustCompile(`
__kernel void f(__global float* out, float a, float b) { out[0] = a + b; }
`, "f")
	out := make([]byte, 4)
	// 1 + 2^-30 is not representable in float32; result must round to 1.
	if _, err := k.ExecLaunch(NewNDRange1D(1, 1), []Arg{BufArg(out), FloatArg(1), FloatArg(math.Pow(2, -30))}, ExecOpts{}); err != nil {
		t.Fatal(err)
	}
	if got := f32at(out, 0); got != 1.0 {
		t.Fatalf("out = %v, want exactly 1.0 (float32 rounding)", got)
	}
}

func TestCastTruncation(t *testing.T) {
	k := MustCompile(`
__kernel void f(__global int* out, float x) {
    out[0] = (int)x;
    out[1] = (int)(-x);
}
`, "f")
	out := make([]byte, 8)
	if _, err := k.ExecLaunch(NewNDRange1D(1, 1), []Arg{BufArg(out), FloatArg(2.9)}, ExecOpts{}); err != nil {
		t.Fatal(err)
	}
	if i32at(out, 0) != 2 || i32at(out, 1) != -2 {
		t.Fatalf("out = [%d %d], want [2 -2]", i32at(out, 0), i32at(out, 1))
	}
}

func TestDeterministicExecution(t *testing.T) {
	k := MustCompile(`
__kernel void f(__global float* a, int n) {
    int i = get_global_id(0);
    float s = 0.0f;
    for (int j = 0; j < n; j++) { s += sqrt((float)(i + j)); }
    a[i] = s;
}
`, "f")
	run := func() ([]byte, Stats) {
		buf := make([]byte, 4*16)
		st, err := k.ExecLaunch(NewNDRange1D(16, 4), []Arg{BufArg(buf), IntArg(10)}, ExecOpts{})
		if err != nil {
			t.Fatal(err)
		}
		return buf, st
	}
	b1, s1 := run()
	b2, s2 := run()
	if string(b1) != string(b2) {
		t.Fatal("nondeterministic results")
	}
	if s1 != s2 {
		t.Fatalf("nondeterministic stats: %+v vs %+v", s1, s2)
	}
}

func Test3DNDRange(t *testing.T) {
	k := MustCompile(`
__kernel void vol(__global float* a, int nx, int ny, int nz) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    int z = get_global_id(2);
    if (x < nx && y < ny && z < nz) {
        a[(z * ny + y) * nx + x] = (float)(x + 10 * y + 100 * z);
    }
}
`, "vol")
	nx, ny, nz := 8, 6, 4
	buf := make([]byte, 4*nx*ny*nz)
	nd := NewNDRange(3, [3]int{nx, ny, nz}, [3]int{4, 2, 2})
	if nd.TotalGroups() != (8/4)*(6/2)*(4/2) {
		t.Fatalf("TotalGroups = %d", nd.TotalGroups())
	}
	if _, err := k.ExecLaunch(nd, []Arg{BufArg(buf), IntArg(int64(nx)), IntArg(int64(ny)), IntArg(int64(nz))}, ExecOpts{}); err != nil {
		t.Fatal(err)
	}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				want := float32(x + 10*y + 100*z)
				if got := f32at(buf, (z*ny+y)*nx+x); got != want {
					t.Fatalf("a[%d,%d,%d] = %v, want %v", x, y, z, got, want)
				}
			}
		}
	}
}

func Test3DFlattenRoundTrip(t *testing.T) {
	nd := NewNDRange(3, [3]int{8, 6, 4}, [3]int{4, 2, 2})
	total := nd.TotalGroups()
	seen := map[int]bool{}
	for i := 0; i < total; i++ {
		g := nd.GroupAt(i)
		f := nd.FlatGroupID(g)
		if f < 0 || f >= total || seen[f] {
			t.Fatalf("flat id %d invalid or duplicated", f)
		}
		seen[f] = true
		if nd.GroupFromFlat(f) != g {
			t.Fatalf("round trip failed for group %v", g)
		}
	}
}

func Test3DSliceCoversRange(t *testing.T) {
	nd := NewNDRange(3, [3]int{8, 6, 4}, [3]int{4, 2, 2}) // 2x3x2 = 12 groups
	for lo := 0; lo < 12; lo++ {
		for hi := lo; hi < 12; hi++ {
			s := nd.Slice(lo, hi)
			covered := map[int]bool{}
			for i := 0; i < s.LaunchGroups(); i++ {
				covered[nd.FlatGroupID(s.GroupAt(i))] = true
			}
			for f := lo; f <= hi; f++ {
				if !covered[f] {
					t.Fatalf("Slice(%d,%d) misses %d", lo, hi, f)
				}
			}
		}
	}
}

func TestWorkItemBuiltinsAgainstSpec(t *testing.T) {
	k := MustCompile(`
__kernel void ids(__global int* out) {
    int i = get_global_id(0);
    out[i * 6 + 0] = get_local_id(0);
    out[i * 6 + 1] = get_group_id(0);
    out[i * 6 + 2] = get_num_groups(0);
    out[i * 6 + 3] = get_local_size(0);
    out[i * 6 + 4] = get_global_size(0);
    out[i * 6 + 5] = get_work_dim();
}
`, "ids")
	n, local := 32, 8
	out := make([]byte, 4*6*n)
	if _, err := k.ExecLaunch(NewNDRange1D(n, local), []Arg{BufArg(out)}, ExecOpts{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got := []int32{i32at(out, i*6), i32at(out, i*6+1), i32at(out, i*6+2), i32at(out, i*6+3), i32at(out, i*6+4), i32at(out, i*6+5)}
		want := []int32{int32(i % local), int32(i / local), int32(n / local), int32(local), int32(n), 1}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("work-item %d builtin %d = %d, want %d", i, j, got[j], want[j])
			}
		}
	}
}

func TestDisasmRoundTrip(t *testing.T) {
	k := MustCompile(`
__kernel void d(__global float* a, __global int* b, int n, float x) {
    __local float tile[8];
    float priv[2];
    int i = get_global_id(0);
    if (i < n) {
        tile[i % 8] = x;
        priv[0] = sqrt(fabs(x));
        barrier();
        a[i] = tile[i % 8] + priv[0];
        b[i] = max(i, 2);
    }
}
`, "d")
	d := k.Disasm()
	for _, frag := range []string{"kernel d:", "param 0: a", "local tile[8]", "private priv[2]",
		"barrier", "sqrt", "imax", "ret", "jz"} {
		if !strings.Contains(d, frag) {
			t.Fatalf("disassembly missing %q:\n%s", frag, d)
		}
	}
	// Every line after the header must parse as "pc mnemonic ...".
	lines := strings.Split(strings.TrimSpace(d), "\n")
	if len(lines) < 10 {
		t.Fatalf("disassembly too short:\n%s", d)
	}
}
