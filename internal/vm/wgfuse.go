package vm

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync/atomic"
)

// Region fusion for the lockstep engine (DESIGN.md S20).
//
// The banked steps of wgsteps.go execute step-major: each step makes its
// own pass over the work-item set, so a k-step block traverses the SoA
// banks k times per dispatch and pays k indirect calls. This pass runs at
// wg-compile time and lowers whole block bodies into a single fused
// closure that loops over the work-items once, with every touched bank
// hoisted into a subslice (one up-front length assertion, bounds checks
// eliminated inside the loop), the ld/fmadd/st sequences jammed into one
// wide inner loop, and pattern-internal scratch registers kept in scalars
// instead of bank slabs when the block-level liveness analysis proves them
// dead at the block exit.
//
// Fusibility proof, in three parts:
//
//  1. Reordering: banked steps are lane-local on registers, and the wg
//     engine only runs launches the noninterference certificate
//     (wgcert.go/wgreject.go) admitted, so cross-item global/local
//     interference inside a region is already excluded. Switching a block
//     from step-major to item-major order therefore cannot change any
//     buffer byte or register trajectory on error-free runs; on error
//     runs, parity is by presence, not text, exactly as documented for
//     the engine itself (wgexec.go).
//  2. Stats: every batched counter (op counts, load/store totals, param
//     masks) is an order-independent sum or mask, so adding the block
//     total once equals adding it per step. The order-sensitive memory-
//     locality tracker is fed through the same recording machinery as the
//     unfused steps (per-item streams in program order, or the columnar
//     log while the phase is uniform), so the phase-end replay sees
//     identical streams.
//  3. Scalar elision: a scratch register's bank write may be dropped only
//     when the register is provably dead at the block exit (wgLiveness, a
//     standard backward dataflow over the bytecode CFG) and the block
//     terminator does not read it (the matchers reject conditional
//     terminators outright).
//
// Blocks that fail the shape match, the operand wiring checks, or the
// liveness requirement fall back per-step, mirroring the wg->closure
// fallback taxonomy; wg_fused_blocks / wg_fused_steps /
// wg_fuse_fallback_steps attribute the coverage. The FLUIDICL_WG_FUSE
// environment variable and the fluidibench -wgfuse flag keep the unfused
// path selectable for differential testing; the fused lists are always
// compiled so the knob can be flipped between launches.

// wgFuseFlag holds the process-wide fused-execution knob (default on).
var wgFuseFlag atomic.Bool

func init() {
	on := true
	switch os.Getenv("FLUIDICL_WG_FUSE") {
	case "off", "0", "false", "no":
		on = false
	}
	wgFuseFlag.Store(on)
}

// WGFuseEnabled reports whether the lockstep engine dispatches the fused
// block closures (the default) or the per-step lists.
func WGFuseEnabled() bool { return wgFuseFlag.Load() }

// SetWGFuse selects fused (true) or per-step (false) wg block execution
// process-wide. Safe to call concurrently; work-groups already running
// keep the mode they resolved at entry.
func SetWGFuse(on bool) { wgFuseFlag.Store(on) }

// runSteps drives a per-step list; fused closures use it as their fallback
// when a dispatch does not meet the fused fast-path preconditions.
func runSteps(m *wmach, set []int32, steps []wstep) bool {
	for _, s := range steps {
		if !s(m, set) {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Block-level liveness
// ---------------------------------------------------------------------------

// wgUseDef returns the int/float register use and def bitmasks of one
// instruction. Unknown opcodes are treated as reading every register and
// defining none, which is conservative for the dead-scratch proof.
func wgUseDef(in Instr) (iu, fu, id, fd uint64) {
	b := func(r int32) uint64 { return 1 << uint(r) }
	switch in.Op {
	case opNop, opRET, opBARRIER, opJMP:
	case opGOFF, opWDIM:
		id = b(in.A)
	case opLDI:
		id = b(in.A)
	case opLDF:
		fd = b(in.A)
	case opIMOV, opINEG, opNOTB, opIABS:
		iu, id = b(in.B), b(in.A)
	case opFMOV, opFNEG, opSQRT, opFABS, opEXP, opLOG, opFLOOR, opCEIL:
		fu, fd = b(in.B), b(in.A)
	case opIADD, opISUB, opIMUL, opIDIV, opIMOD, opIMIN, opIMAX,
		opILT, opILE, opIGT, opIGE, opIEQ, opINE:
		iu, id = b(in.B)|b(in.C), b(in.A)
	case opFADD, opFSUB, opFMUL, opFDIV, opPOW, opFMIN, opFMAX:
		fu, fd = b(in.B)|b(in.C), b(in.A)
	case opFLT, opFLE, opFGT, opFGE, opFEQ, opFNE:
		fu, id = b(in.B)|b(in.C), b(in.A)
	case opI2F:
		iu, fd = b(in.B), b(in.A)
	case opF2I:
		fu, id = b(in.B), b(in.A)
	case opJZ, opJNZ:
		iu = b(in.B)
	case opLDGF, opLDLF, opLDPF:
		iu, fd = b(in.C), b(in.A)
	case opLDGI, opLDLI, opLDPI:
		iu, id = b(in.C), b(in.A)
	case opSTGF, opSTLF, opSTPF:
		iu, fu = b(in.C), b(in.A)
	case opSTGI, opSTLI, opSTPI:
		iu = b(in.C) | b(in.A)
	case opGID, opLID, opGRP, opNGR, opLSZ, opGSZ:
		iu, id = b(in.B), b(in.A)
	default:
		iu, fu = ^uint64(0), ^uint64(0)
	}
	return
}

// wgLiveness computes per-block live-out register masks (int and float) by
// backward dataflow over the bytecode CFG, keyed by block leader pc. Only
// called when NumI and NumF both fit a 64-bit mask.
func (k *Kernel) wgLiveness(wg *wgProgram) (iOut, fOut map[int]uint64) {
	code := k.Code
	n := len(code)
	type lblock struct {
		s, e  int
		succs []int
	}
	var blocks []lblock
	for s := 0; s < n; {
		e := s + 1
		for e < n && !wg.leader[e] {
			e++
		}
		b := lblock{s: s, e: e}
		switch last := code[e-1]; last.Op {
		case opJMP:
			b.succs = []int{int(last.A)}
		case opJZ, opJNZ:
			b.succs = []int{int(last.A)}
			if e < n {
				b.succs = append(b.succs, e)
			}
		case opRET:
		default: // fallthrough and barrier resume at e
			if e < n {
				b.succs = append(b.succs, e)
			}
		}
		blocks = append(blocks, b)
		s = e
	}
	iIn := make(map[int]uint64, len(blocks))
	fIn := make(map[int]uint64, len(blocks))
	iOut = make(map[int]uint64, len(blocks))
	fOut = make(map[int]uint64, len(blocks))
	for changed := true; changed; {
		changed = false
		for bi := len(blocks) - 1; bi >= 0; bi-- {
			b := blocks[bi]
			var io, fo uint64
			for _, sp := range b.succs {
				io |= iIn[sp]
				fo |= fIn[sp]
			}
			li, lf := io, fo
			for pc := b.e - 1; pc >= b.s; pc-- {
				iu, fu, id, fd := wgUseDef(code[pc])
				li = (li &^ id) | iu
				lf = (lf &^ fd) | fu
			}
			if io != iOut[b.s] || fo != fOut[b.s] || li != iIn[b.s] || lf != fIn[b.s] {
				changed = true
				iOut[b.s], fOut[b.s] = io, fo
				iIn[b.s], fIn[b.s] = li, lf
			}
		}
	}
	return iOut, fOut
}

// ---------------------------------------------------------------------------
// Fusion pass
// ---------------------------------------------------------------------------

// fuseWG partitions each block's step list into fusible whole-body jams:
// every block body is matched against the jam shapes below and, when the
// shape, the operand wiring, and the dead-scratch proof all hold, replaced
// by a single fused closure. Blocks that fail any check fall back to the
// per-step list. Counters attribute the outcome per compiled instruction.
func (k *Kernel) fuseWG(wg *wgProgram) {
	var nBlocks, nSteps, nFallback int64
	wide := k.NumI > 64 || k.NumF > 64
	var iOut, fOut map[int]uint64
	if !wide {
		iOut, fOut = k.wgLiveness(wg)
	}
	for _, blk := range wg.blocks {
		if blk == nil {
			continue
		}
		body := blk.body - blk.start
		if body <= 0 {
			continue
		}
		var fs wstep
		if !wide {
			liveI, liveF := iOut[blk.start], fOut[blk.start]
			if fs == nil {
				fs = k.wgfuseMacBody(blk, liveI, liveF)
			}
			if fs == nil {
				fs = k.wgfuseDotPair(blk, liveI, liveF)
			}
			if fs == nil {
				fs = k.wgfuseScatter(blk, liveI, liveF)
			}
			if fs == nil {
				fs = k.wgfuseStoreTail(blk, liveI, liveF)
			}
		}
		if fs != nil {
			blk.fsteps = []wstep{fs}
			wg.fused = append(wg.fused, FusedSpan{Start: blk.start, Len: body, Name: "wg.fuse"})
			nBlocks++
			nSteps += int64(body)
		} else {
			nFallback += int64(body)
		}
	}
	backendCtr.wgFusedBlocks.Add(nBlocks)
	backendCtr.wgFusedSteps.Add(nSteps)
	backendCtr.wgFuseFallbackSteps.Add(nFallback)
}

// wgAff is one parsed affine index group (imov, imov, imul, imov, iadd):
// idx = ib[x]*ib[y] + ib[z], with the five scratch defs recorded.
type wgAff struct {
	x, y, z int
}

// parseWAff validates the operand wiring of the five-instruction affine
// index group at pc and checks that its sources read banks not redefined
// earlier in the jam (*defs accumulates int defs in program order). It
// returns the pristine source registers of idx = x*y + z.
func parseWAff(code []Instr, pc int, defs *uint64) (wgAff, bool) {
	i0, i1, mul, i3, add := code[pc], code[pc+1], code[pc+2], code[pc+3], code[pc+4]
	if mul.B != i0.A || mul.C != i1.A || add.B != mul.A || add.C != i3.A {
		return wgAff{}, false
	}
	b := func(r int32) uint64 { return 1 << uint(r) }
	if *defs&b(i0.B) != 0 {
		return wgAff{}, false
	}
	*defs |= b(i0.A)
	if *defs&b(i1.B) != 0 {
		return wgAff{}, false
	}
	*defs |= b(i1.A) | b(mul.A)
	if *defs&b(i3.B) != 0 {
		return wgAff{}, false
	}
	*defs |= b(i3.A) | b(add.A)
	return wgAff{x: int(i0.B), y: int(i1.B), z: int(i3.B)}, true
}

// parseWInc validates the loop-increment group (imov, ldi, iadd, imov):
// ctr += imm, where ctr is the only bank-visible def.
func parseWInc(code []Instr, pc int, defs *uint64) (ctr int, imm int64, ok bool) {
	i0, ldi, add, i3 := code[pc], code[pc+1], code[pc+2], code[pc+3]
	if add.B != i0.A || add.C != ldi.A || i3.B != add.A || i0.B != i3.A {
		return 0, 0, false
	}
	b := func(r int32) uint64 { return 1 << uint(r) }
	if *defs&b(i0.B) != 0 {
		return 0, 0, false
	}
	*defs |= b(i0.A) | b(ldi.A) | b(add.A) | b(i3.A)
	return int(i3.A), ldi.IImm, true
}

// wgLoadErr formats the fused loads' out-of-range error exactly like the
// unfused superinstructions do.
func wgLoadErr(kname string, pc int, name string, idx int64, bufLen int) *execError {
	return &execError{kname, pc, fmt.Sprintf("load %s: index %d out of range (buffer %d bytes)", name, idx, bufLen)}
}

// wgfuseMacBody jams the multiply-accumulate loop body of the dense matmul
// kernels (SYRK, 2MM, GEMM shapes):
//
//	fmov f, seed
//	aff idx1; ldgf v1; fmul f = f*v1
//	aff idx2; ldgf v2; fmul f = f*v2; fadd acc += f
//	inc ctr
//
// into one loop over the work-items with f, the indices and the loaded
// values held in scalars (dead at block exit by the liveness proof) and
// only acc and ctr written back to their banks.
func (k *Kernel) wgfuseMacBody(blk *wblock, liveI, liveF uint64) wstep {
	pc, end := blk.start, blk.body
	if end-pc != 20 || blk.term.kind != wtJmp {
		return nil
	}
	if !k.opsAt(pc, end,
		opFMOV,
		opIMOV, opIMOV, opIMUL, opIMOV, opIADD, opLDGF, opFMUL,
		opIMOV, opIMOV, opIMUL, opIMOV, opIADD, opLDGF, opFMUL, opFADD,
		opIMOV, opLDI, opIADD, opIMOV) {
		return nil
	}
	code := k.Code
	b := func(r int32) uint64 { return 1 << uint(r) }
	fmv := code[pc]
	var defsI, defsF uint64
	defsF |= b(fmv.A)
	a1, ok := parseWAff(code, pc+1, &defsI)
	if !ok {
		return nil
	}
	ld1, fm1 := code[pc+6], code[pc+7]
	if ld1.C != code[pc+5].A || fm1.B != fmv.A || fm1.C != ld1.A {
		return nil
	}
	defsF |= b(ld1.A) | b(fm1.A)
	a2, ok := parseWAff(code, pc+8, &defsI)
	if !ok {
		return nil
	}
	ld2, fm2, fad := code[pc+13], code[pc+14], code[pc+15]
	if ld2.C != code[pc+12].A || fm2.B != fm1.A || fm2.C != ld2.A {
		return nil
	}
	defsF |= b(ld2.A) | b(fm2.A)
	if fad.A != fad.B || fad.C != fm2.A || defsF&b(fad.B) != 0 {
		return nil
	}
	ctr, incImm, ok := parseWInc(code, pc+16, &defsI)
	if !ok {
		return nil
	}
	// Dead-scratch proof: everything but acc and ctr stays in scalars.
	scratchI := defsI &^ b(int32(ctr))
	scratchF := (defsF | b(fad.A)) &^ b(fad.A)
	if scratchI&liveI != 0 || scratchF&liveF != 0 {
		return nil
	}

	slot1, mem1, ldPC1 := ld1.B, ld1.D, pc+6
	slot2, mem2, ldPC2 := ld2.B, ld2.D, pc+13
	name1, name2 := k.Params[slot1].Name, k.Params[slot2].Name
	kname := k.Name
	var mask uint64
	if slot1 < 64 {
		mask |= 1 << uint(slot1)
	}
	if slot2 < 64 {
		mask |= 1 << uint(slot2)
	}
	seed, accR := int(fmv.B), int(fad.A)
	unfused := blk.steps
	return func(m *wmach, set []int32) bool {
		if !m.full || m.def != nil {
			return runSteps(m, set, unfused)
		}
		n := m.n
		ib, fb := m.ib, m.fb
		buf1, buf2 := m.args[slot1].Buf, m.args[slot2].Buf
		xs1, ys1, zs1 := ib[a1.x*n:a1.x*n+n], ib[a1.y*n:a1.y*n+n], ib[a1.z*n:a1.z*n+n]
		xs2, ys2, zs2 := ib[a2.x*n:a2.x*n+n], ib[a2.y*n:a2.y*n+n], ib[a2.z*n:a2.z*n+n]
		sd := fb[seed*n : seed*n+n]
		acc := fb[accR*n : accR*n+n]
		cb := ib[ctr*n : ctr*n+n]
		var col1, col2 []int32
		rec := m.rec
		if m.colMode {
			// Both columns must be reserved in one step: a second colFor
			// growth could reallocate the log and orphan the first subslice.
			switch {
			case mem1 >= 0 && mem2 >= 0:
				col1, col2 = m.colFor2(mem1, mem2)
			case mem1 >= 0:
				col1 = m.colFor(mem1)
			case mem2 >= 0:
				col2 = m.colFor(mem2)
			}
		}
		for t := 0; t < n; t++ {
			f := sd[t]
			idx1 := xs1[t]*ys1[t] + zs1[t]
			off1 := idx1 * 4
			if idx1 < 0 || off1+4 > int64(len(buf1)) {
				m.err = wgLoadErr(kname, ldPC1, name1, idx1, len(buf1))
				return false
			}
			v := float64(math.Float32frombits(binary.LittleEndian.Uint32(buf1[off1:])))
			f = float64(float32(f) * float32(v))
			idx2 := xs2[t]*ys2[t] + zs2[t]
			off2 := idx2 * 4
			if idx2 < 0 || off2+4 > int64(len(buf2)) {
				m.err = wgLoadErr(kname, ldPC2, name2, idx2, len(buf2))
				return false
			}
			w := float64(math.Float32frombits(binary.LittleEndian.Uint32(buf2[off2:])))
			f = float64(float32(f) * float32(w))
			acc[t] = float64(float32(acc[t]) + float32(f))
			cb[t] += incImm
			if col1 != nil {
				col1[t] = int32(off1)
			} else if mem1 >= 0 {
				rec[t] = append(rec[t], wgAcc{id: mem1, off: int32(off1)})
			}
			if col2 != nil {
				col2[t] = int32(off2)
			} else if mem2 >= 0 {
				rec[t] = append(rec[t], wgAcc{id: mem2, off: int32(off2)})
			}
		}
		cnt := int64(n)
		st := m.st
		st.IntOps += 5 * cnt
		st.FloatOps += 3 * cnt
		st.ParamReadMask |= mask
		st.GlobalLoads += 2 * cnt
		st.GlobalLoadBytes += 8 * cnt
		return true
	}
}

// wgfuseDotPair jams the two-dot-product loop body of GESUMMV-shaped
// kernels:
//
//	aff idxA; ldgf vA; j = x-index; ldgf vx; fmul p = vA*vx; fadd acc1 += p
//	aff idxB; ldgf vB; j = x-index; ldgf vx; fmul p = vB*vx; fadd acc2 += p
//	inc ctr
func (k *Kernel) wgfuseDotPair(blk *wblock, liveI, liveF uint64) wstep {
	pc, end := blk.start, blk.body
	if end-pc != 24 || blk.term.kind != wtJmp {
		return nil
	}
	half := []Op{opIMOV, opIMOV, opIMUL, opIMOV, opIADD, opLDGF, opIMOV, opLDGF, opFMUL, opFADD}
	ops := append(append(append([]Op{}, half...), half...), opIMOV, opLDI, opIADD, opIMOV)
	if !k.opsAt(pc, end, ops...) {
		return nil
	}
	code := k.Code
	b := func(r int32) uint64 { return 1 << uint(r) }
	type dot struct {
		aff          wgAff
		j            int // pristine index register of the x-load
		slotA, slotX int32
		memA, memX   int32
		ldPCA, ldPCX int
		nameA, nameX string
		acc          int
	}
	var defsI, defsF uint64
	parseHalf := func(p int) (dot, bool) {
		var d dot
		aff, ok := parseWAff(code, p, &defsI)
		if !ok {
			return d, false
		}
		ldA, mv, ldX, fm, fa := code[p+5], code[p+6], code[p+7], code[p+8], code[p+9]
		if ldA.C != code[p+4].A || ldX.C != mv.A {
			return d, false
		}
		if defsI&b(mv.B) != 0 {
			return d, false
		}
		defsI |= b(mv.A)
		if fm.B != ldA.A || fm.C != ldX.A {
			return d, false
		}
		defsF |= b(ldA.A) | b(ldX.A) | b(fm.A)
		if fa.A != fa.B || fa.C != fm.A || defsF&b(fa.B) != 0 {
			return d, false
		}
		d.aff, d.j = aff, int(mv.B)
		d.slotA, d.memA, d.ldPCA, d.nameA = ldA.B, ldA.D, p+5, k.Params[ldA.B].Name
		d.slotX, d.memX, d.ldPCX, d.nameX = ldX.B, ldX.D, p+7, k.Params[ldX.B].Name
		d.acc = int(fa.A)
		return d, true
	}
	d1, ok := parseHalf(pc)
	if !ok {
		return nil
	}
	d2, ok := parseHalf(pc + 10)
	if !ok {
		return nil
	}
	ctr, incImm, ok := parseWInc(code, pc+20, &defsI)
	if !ok {
		return nil
	}
	scratchI := defsI &^ b(int32(ctr))
	scratchF := defsF &^ (b(int32(d1.acc)) | b(int32(d2.acc)))
	if scratchI&liveI != 0 || scratchF&liveF != 0 {
		return nil
	}
	var mask uint64
	for _, s := range []int32{d1.slotA, d1.slotX, d2.slotA, d2.slotX} {
		if s < 64 {
			mask |= 1 << uint(s)
		}
	}
	kname := k.Name
	unfused := blk.steps
	return func(m *wmach, set []int32) bool {
		if !m.full || m.def != nil {
			return runSteps(m, set, unfused)
		}
		n := m.n
		ib, fb := m.ib, m.fb
		bufA1, bufX1 := m.args[d1.slotA].Buf, m.args[d1.slotX].Buf
		bufA2, bufX2 := m.args[d2.slotA].Buf, m.args[d2.slotX].Buf
		xs1, ys1, zs1 := ib[d1.aff.x*n:d1.aff.x*n+n], ib[d1.aff.y*n:d1.aff.y*n+n], ib[d1.aff.z*n:d1.aff.z*n+n]
		xs2, ys2, zs2 := ib[d2.aff.x*n:d2.aff.x*n+n], ib[d2.aff.y*n:d2.aff.y*n+n], ib[d2.aff.z*n:d2.aff.z*n+n]
		js1 := ib[d1.j*n : d1.j*n+n]
		js2 := ib[d2.j*n : d2.j*n+n]
		acc1 := fb[d1.acc*n : d1.acc*n+n]
		acc2 := fb[d2.acc*n : d2.acc*n+n]
		cb := ib[ctr*n : ctr*n+n]
		var colA1, colX1, colA2, colX2 []int32
		rec := m.rec
		if m.colMode {
			// Reserve all four columns in one growth step; incremental
			// colFor calls could reallocate the log and orphan earlier
			// subslices.
			nCols := 0
			for _, id := range [4]int32{d1.memA, d1.memX, d2.memA, d2.memX} {
				if id >= 0 {
					nCols++
				}
			}
			j := m.colReserve(nCols)
			take := func(id int32) []int32 {
				m.colIDs = append(m.colIDs, id)
				c := m.colBuf[j*n : (j+1)*n]
				j++
				return c
			}
			if d1.memA >= 0 {
				colA1 = take(d1.memA)
			}
			if d1.memX >= 0 {
				colX1 = take(d1.memX)
			}
			if d2.memA >= 0 {
				colA2 = take(d2.memA)
			}
			if d2.memX >= 0 {
				colX2 = take(d2.memX)
			}
		}
		half := func(t int, xs, ys, zs, js []int64, bufA, bufX []byte, d *dot, acc []float64, colA, colX []int32) bool {
			idx := xs[t]*ys[t] + zs[t]
			offA := idx * 4
			if idx < 0 || offA+4 > int64(len(bufA)) {
				m.err = wgLoadErr(kname, d.ldPCA, d.nameA, idx, len(bufA))
				return false
			}
			vA := float64(math.Float32frombits(binary.LittleEndian.Uint32(bufA[offA:])))
			j := js[t]
			offX := j * 4
			if j < 0 || offX+4 > int64(len(bufX)) {
				m.err = wgLoadErr(kname, d.ldPCX, d.nameX, j, len(bufX))
				return false
			}
			vX := float64(math.Float32frombits(binary.LittleEndian.Uint32(bufX[offX:])))
			p := float64(float32(vA) * float32(vX))
			acc[t] = float64(float32(acc[t]) + float32(p))
			if colA != nil {
				colA[t] = int32(offA)
			} else if d.memA >= 0 {
				rec[t] = append(rec[t], wgAcc{id: d.memA, off: int32(offA)})
			}
			if colX != nil {
				colX[t] = int32(offX)
			} else if d.memX >= 0 {
				rec[t] = append(rec[t], wgAcc{id: d.memX, off: int32(offX)})
			}
			return true
		}
		for t := 0; t < n; t++ {
			if !half(t, xs1, ys1, zs1, js1, bufA1, bufX1, &d1, acc1, colA1, colX1) {
				return false
			}
			if !half(t, xs2, ys2, zs2, js2, bufA2, bufX2, &d2, acc2, colA2, colX2) {
				return false
			}
			cb[t] += incImm
		}
		cnt := int64(n)
		st := m.st
		st.IntOps += 5 * cnt
		st.FloatOps += 4 * cnt
		st.ParamReadMask |= mask
		st.GlobalLoads += 4 * cnt
		st.GlobalLoadBytes += 16 * cnt
		return true
	}
}

// wgfuseScatter jams the strided scatter loop body (scatter_columns shape):
//
//	aff idx; ldf c; stgf buf[idx] = c; inc ctr
func (k *Kernel) wgfuseScatter(blk *wblock, liveI, liveF uint64) wstep {
	pc, end := blk.start, blk.body
	if end-pc != 11 || blk.term.kind != wtJmp {
		return nil
	}
	if !k.opsAt(pc, end, opIMOV, opIMOV, opIMUL, opIMOV, opIADD, opLDF, opSTGF,
		opIMOV, opLDI, opIADD, opIMOV) {
		return nil
	}
	code := k.Code
	b := func(r int32) uint64 { return 1 << uint(r) }
	var defsI, defsF uint64
	aff, ok := parseWAff(code, pc, &defsI)
	if !ok {
		return nil
	}
	ldf, stg := code[pc+5], code[pc+6]
	if stg.C != code[pc+4].A || stg.A != ldf.A {
		return nil
	}
	defsF |= b(ldf.A)
	ctr, incImm, ok := parseWInc(code, pc+7, &defsI)
	if !ok {
		return nil
	}
	if (defsI&^b(int32(ctr)))&liveI != 0 || defsF&liveF != 0 {
		return nil
	}
	slot, mem, stPC := stg.B, stg.D, pc+6
	name := k.Params[slot].Name
	kname := k.Name
	bits := math.Float32bits(float32(ldf.FImm))
	unfused := blk.steps
	return func(m *wmach, set []int32) bool {
		if !m.full || m.def != nil {
			return runSteps(m, set, unfused)
		}
		n := m.n
		ib := m.ib
		buf := m.args[slot].Buf
		xs, ys, zs := ib[aff.x*n:aff.x*n+n], ib[aff.y*n:aff.y*n+n], ib[aff.z*n:aff.z*n+n]
		cb := ib[ctr*n : ctr*n+n]
		var col []int32
		rec := m.rec
		if m.colMode && mem >= 0 {
			col = m.colFor(mem)
		}
		u := m.undo
		st := m.st
		for t := 0; t < n; t++ {
			idx := xs[t]*ys[t] + zs[t]
			off, err := byteOff(idx, len(buf))
			if err != nil {
				m.err = &execError{kname, stPC, fmt.Sprintf("store %s: %v", name, err)}
				return false
			}
			if u != nil {
				var old [4]byte
				copy(old[:], buf[off:off+4])
				u.recs = append(u.recs, UndoRecord{Buf: buf, Off: int(off), Old: old})
			}
			binary.LittleEndian.PutUint32(buf[off:], bits)
			st.noteGlobalWrite(slot, off)
			if col != nil {
				col[t] = off
			} else if mem >= 0 {
				rec[t] = append(rec[t], wgAcc{id: mem, off: off})
			}
			cb[t] += incImm
		}
		cnt := int64(n)
		st.IntOps += 3 * cnt
		st.GlobalStores += cnt
		st.GlobalStoreBytes += 4 * cnt
		return true
	}
}

// wgfuseStoreTail jams the result write-back tail of the matmul kernels:
//
//	aff idx; fmov v, acc; stgf buf[idx] = v
func (k *Kernel) wgfuseStoreTail(blk *wblock, liveI, liveF uint64) wstep {
	pc, end := blk.start, blk.body
	if end-pc != 7 || blk.term.kind == wtCond {
		return nil
	}
	if !k.opsAt(pc, end, opIMOV, opIMOV, opIMUL, opIMOV, opIADD, opFMOV, opSTGF) {
		return nil
	}
	code := k.Code
	b := func(r int32) uint64 { return 1 << uint(r) }
	var defsI uint64
	aff, ok := parseWAff(code, pc, &defsI)
	if !ok {
		return nil
	}
	fmv, stg := code[pc+5], code[pc+6]
	if stg.C != code[pc+4].A || stg.A != fmv.A {
		return nil
	}
	if defsI&liveI != 0 || b(fmv.A)&liveF != 0 {
		return nil
	}
	slot, mem, stPC := stg.B, stg.D, pc+6
	name := k.Params[slot].Name
	kname := k.Name
	src := int(fmv.B)
	unfused := blk.steps
	return func(m *wmach, set []int32) bool {
		if !m.full || m.def != nil {
			return runSteps(m, set, unfused)
		}
		n := m.n
		ib, fb := m.ib, m.fb
		buf := m.args[slot].Buf
		xs, ys, zs := ib[aff.x*n:aff.x*n+n], ib[aff.y*n:aff.y*n+n], ib[aff.z*n:aff.z*n+n]
		sv := fb[src*n : src*n+n]
		var col []int32
		rec := m.rec
		if m.colMode && mem >= 0 {
			col = m.colFor(mem)
		}
		u := m.undo
		st := m.st
		for t := 0; t < n; t++ {
			idx := xs[t]*ys[t] + zs[t]
			off, err := byteOff(idx, len(buf))
			if err != nil {
				m.err = &execError{kname, stPC, fmt.Sprintf("store %s: %v", name, err)}
				return false
			}
			bits := math.Float32bits(float32(sv[t]))
			if u != nil {
				var old [4]byte
				copy(old[:], buf[off:off+4])
				u.recs = append(u.recs, UndoRecord{Buf: buf, Off: int(off), Old: old})
			}
			binary.LittleEndian.PutUint32(buf[off:], bits)
			st.noteGlobalWrite(slot, off)
			if col != nil {
				col[t] = off
			} else if mem >= 0 {
				rec[t] = append(rec[t], wgAcc{id: mem, off: off})
			}
		}
		cnt := int64(n)
		st.IntOps += 2 * cnt
		st.GlobalStores += cnt
		st.GlobalStoreBytes += 4 * cnt
		return true
	}
}
