package vm

import (
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"
)

// ---------------------------------------------------------------------------
// Host-parallelism knob
// ---------------------------------------------------------------------------

// workerCount holds the configured worker count; 0 means GOMAXPROCS.
var workerCount atomic.Int32

// Workers returns the number of host threads work-group execution may use.
// The default (and the value after SetWorkers(0)) is GOMAXPROCS. With 1,
// every launch runs on the original strictly sequential path.
func Workers() int {
	if n := workerCount.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers sets the host worker count for work-group execution. n <= 0
// resets to the GOMAXPROCS default. Safe to call concurrently; launches
// already in progress keep the count they started with.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerCount.Store(int32(n))
}

// ---------------------------------------------------------------------------
// Per-work-group scratch pooling
// ---------------------------------------------------------------------------

// wgScratch is the per-work-group execution state (work-item registers,
// private slabs, local arrays, the memory-locality tracker). It is pooled
// per kernel so repeated work-group executions — and concurrent ones — stop
// allocating. Reused memory is zeroed to be indistinguishable from a fresh
// allocation.
type wgScratch struct {
	single *wiState
	states []*wiState
	locals [][]byte
	tr     *memTracker
	cm     *cmach
	wm     *wmach
	cert   wgCert
}

func (k *Kernel) getScratch() *wgScratch {
	if s, ok := k.scratch.Get().(*wgScratch); ok {
		return s
	}
	return &wgScratch{}
}

func (k *Kernel) putScratch(s *wgScratch) { k.scratch.Put(s) }

func (k *Kernel) newState() *wiState {
	return &wiState{
		iregs: make([]int64, k.NumI),
		fregs: make([]float64, k.NumF),
		priv:  k.allocPriv(),
	}
}

// zero returns w to its freshly-allocated state.
func (w *wiState) zero() {
	clear(w.iregs)
	clear(w.fregs)
	for _, p := range w.priv {
		clear(p)
	}
	w.pc = 0
	w.done = false
}

// singleFor returns the shared work-item state for the non-barrier path,
// zeroed as if freshly allocated (private slabs persist across the group's
// work-items, exactly as before pooling).
func (s *wgScratch) singleFor(k *Kernel) *wiState {
	if s.single == nil {
		s.single = k.newState()
	}
	s.single.zero()
	return s.single
}

// statesFor returns n zeroed per-work-item states for the barrier path.
func (s *wgScratch) statesFor(k *Kernel, n int) []*wiState {
	for len(s.states) < n {
		s.states = append(s.states, k.newState())
	}
	st := s.states[:n]
	for _, w := range st {
		w.zero()
	}
	return st
}

// localsFor returns the group's zeroed __local arrays.
func (s *wgScratch) localsFor(k *Kernel) [][]byte {
	if len(s.locals) != len(k.LocalArrs) {
		s.locals = make([][]byte, len(k.LocalArrs))
	}
	for i, la := range k.LocalArrs {
		n := la.Len * la.Elem.Size()
		if len(s.locals[i]) != n {
			s.locals[i] = make([]byte, n)
		} else {
			clear(s.locals[i])
		}
	}
	return s.locals
}

// cmFor returns the closure backend's execution context. Every field is
// (re)assigned by execWG before use and released after, so no reset is
// needed here.
func (s *wgScratch) cmFor() *cmach {
	if s.cm == nil {
		s.cm = &cmach{}
	}
	return s.cm
}

// trackerFor returns the memory tracker. No explicit reset is needed: the
// first nextWI call of a group (always newWarp) clears every per-mem-op
// series, which is exactly the state a fresh tracker presents.
func (s *wgScratch) trackerFor(k *Kernel) *memTracker {
	if s.tr == nil || len(s.tr.last) != k.NumMemOps {
		s.tr = newMemTracker(k.NumMemOps)
	}
	return s.tr
}

// ---------------------------------------------------------------------------
// Deferred global stores
// ---------------------------------------------------------------------------

// defWrite is one deferred global store, in program order.
type defWrite struct {
	arg int32
	off int32
	val uint32
}

// argSpan is a conservative [lo, hi] byte-offset envelope over one buffer
// argument.
type argSpan struct {
	lo, hi int32
	seen   bool
}

func (s *argSpan) extend(off int32) {
	if !s.seen {
		s.lo, s.hi, s.seen = off, off, true
		return
	}
	if off < s.lo {
		s.lo = off
	}
	if off > s.hi {
		s.hi = off
	}
}

func (s *argSpan) overlaps(o *argSpan) bool {
	return s.seen && o.seen && s.lo <= o.hi && o.lo <= s.hi
}

// DeferredWrites buffers a work-group's global stores instead of applying
// them, so the group can execute speculatively without touching shared
// memory. Loads consult a read-own-write overlay first, so the group sees
// its own stores; every load's offset is folded into a per-argument read
// envelope and every store's into a write envelope, which the launch engine
// uses for conflict detection. Commit applies the log — uncoalesced and in
// program order, so undo recording is byte-for-byte what the sequential
// in-place path would have produced.
type DeferredWrites struct {
	writes []defWrite
	ov     []map[int32]uint32
	hasOv  []bool
	reads  []argSpan
	wspans []argSpan
}

// begin resets the log for a group execution over nArgs arguments.
func (d *DeferredWrites) begin(nArgs int) {
	d.writes = d.writes[:0]
	if cap(d.ov) < nArgs {
		d.ov = make([]map[int32]uint32, nArgs)
		d.hasOv = make([]bool, nArgs)
		d.reads = make([]argSpan, nArgs)
		d.wspans = make([]argSpan, nArgs)
	}
	d.ov = d.ov[:nArgs]
	d.hasOv = d.hasOv[:nArgs]
	d.reads = d.reads[:nArgs]
	d.wspans = d.wspans[:nArgs]
	for i := range d.hasOv {
		if d.hasOv[i] {
			clear(d.ov[i])
			d.hasOv[i] = false
		}
		d.reads[i] = argSpan{}
		d.wspans[i] = argSpan{}
	}
}

// noteRead folds a load offset into the argument's read envelope.
func (d *DeferredWrites) noteRead(arg, off int32) {
	d.reads[arg].extend(off)
}

// lookup returns the group's own latest store to (arg, off), if any.
func (d *DeferredWrites) lookup(arg, off int32) (uint32, bool) {
	if !d.hasOv[arg] {
		return 0, false
	}
	v, ok := d.ov[arg][off]
	return v, ok
}

// store defers one global store.
func (d *DeferredWrites) store(arg, off int32, val uint32) {
	d.writes = append(d.writes, defWrite{arg: arg, off: off, val: val})
	m := d.ov[arg]
	if m == nil {
		m = make(map[int32]uint32)
		d.ov[arg] = m
	}
	m[off] = val
	d.hasOv[arg] = true
	d.wspans[arg].extend(off)
}

// commit applies the write log in program order, recording overwritten words
// into undo (when non-nil) exactly as the in-place path does.
func (d *DeferredWrites) commit(args []Arg, undo *UndoLog) {
	for _, w := range d.writes {
		buf := args[w.arg].Buf
		if undo != nil {
			var old [4]byte
			copy(old[:], buf[w.off:w.off+4])
			undo.recs = append(undo.recs, UndoRecord{Buf: buf, Off: int(w.off), Old: old})
		}
		binary.LittleEndian.PutUint32(buf[w.off:], w.val)
	}
}

// ---------------------------------------------------------------------------
// Speculative wave launch engine
// ---------------------------------------------------------------------------

// specRes is one speculatively executed work-group's buffered outcome.
type specRes struct {
	st  Stats
	err error
}

// LaunchEngine interprets waves of upcoming work-groups concurrently on a
// host worker pool while keeping results byte-identical to sequential
// execution. The contract:
//
//   - The consumer asks for groups strictly in launch order: Result(0),
//     Result(1), ... (skipped groups may simply not be asked for). Result
//     blocks while a wave of groups from i onward executes in parallel, each
//     against a private DeferredWrites log, so shared memory is never
//     touched speculatively.
//   - Commit(i, undo) applies group i's buffered stores in place. Because
//     commits happen one group at a time in launch order, memory passes
//     through exactly the sequence of states the sequential executor
//     produces.
//   - A speculative result is only used if every byte the group read still
//     holds its wave-snapshot value at consume time. Three invalidation
//     sources are tracked: commits of earlier groups in the wave (per-arg
//     write envelopes vs the group's read envelope), rollbacks of
//     mid-aborted groups (NoteUndo extends the same envelopes), and
//     arbitrary external mutations such as status-buffer transfers landing
//     on another queue (the epoch callback; any change marks the wave
//     stale). Invalidated groups re-execute serially at consume time
//     against current memory — which is precisely sequential semantics,
//     just without the speedup.
//
// Callers must run Result/Commit/NoteUndo from a single goroutine; the only
// internal concurrency is the worker pool inside Result, which finishes
// before Result returns.
type LaunchEngine struct {
	args    []Arg
	n       int
	workers int
	wave    int
	epoch   func() uint64
	exec    func(i int, d *DeferredWrites) (Stats, error)

	defs      []*DeferredWrites
	res       []specRes
	waveLo    int
	waveHi    int
	snapEpoch uint64
	stale     bool
	committed []argSpan       // mutation envelopes since the wave snapshot
	argOf     map[*byte]int32 // buffer identity -> argument index
}

// NewLaunchEngine builds an engine for a kernel launch. epoch, when
// non-nil, is sampled at wave start and re-sampled at every consume; any
// change invalidates buffered results (callers bump it on each external
// buffer mutation). A nil engine (with nil error) means speculation is
// unsound for these arguments — two point at the same storage — and the
// caller should use the sequential path. opts.Undo is ignored: undo logs
// are supplied per group at Commit time.
func NewLaunchEngine(k *Kernel, nd NDRange, args []Arg, opts ExecOpts, workers int, epoch func() uint64) (*LaunchEngine, error) {
	if !opts.ArgsChecked {
		if err := k.CheckArgs(args); err != nil {
			return nil, err
		}
		opts.ArgsChecked = true
	}
	opts.Undo = nil
	e := newEngine(nd.LaunchGroups(), args, workers, epoch)
	if e == nil {
		return nil, nil
	}
	e.exec = func(i int, d *DeferredWrites) (Stats, error) {
		o := opts
		o.Def = d
		return k.ExecWorkGroup(nd, nd.GroupAt(i), args, o)
	}
	return e, nil
}

// enginePool recycles LaunchEngines across launches so the deferred-write
// slabs and result slices they grow are reused instead of reallocated per
// launch. Engines enter the pool via Release.
var enginePool = sync.Pool{New: func() any { return &LaunchEngine{} }}

// newEngine builds the executor-agnostic core; the caller fills in exec.
func newEngine(n int, args []Arg, workers int, epoch func() uint64) *LaunchEngine {
	if n <= 0 || workers < 1 {
		return nil
	}
	e := enginePool.Get().(*LaunchEngine)
	if e.argOf == nil {
		e.argOf = make(map[*byte]int32, len(args))
	}
	for i, a := range args {
		if a.Kind != ArgBuffer || len(a.Buf) == 0 {
			continue
		}
		p := &a.Buf[0]
		if _, dup := e.argOf[p]; dup {
			e.Release() // aliased buffer arguments: fall back to sequential
			return nil
		}
		e.argOf[p] = int32(i)
	}
	wave := workers * 4
	if wave > n {
		wave = n
	}
	e.args = args
	e.n = n
	e.workers = workers
	e.wave = wave
	e.epoch = epoch
	if cap(e.committed) >= len(args) {
		e.committed = e.committed[:len(args)]
		for i := range e.committed {
			e.committed[i] = argSpan{}
		}
	} else {
		e.committed = make([]argSpan, len(args))
	}
	return e
}

// Release returns the engine to the pool for reuse by a later launch,
// dropping every reference to caller-owned memory first. The engine must
// not be used afterwards. Releasing a nil engine is a no-op, so callers can
// defer it unconditionally.
func (e *LaunchEngine) Release() {
	if e == nil {
		return
	}
	e.args = nil
	e.exec = nil
	e.epoch = nil
	clear(e.argOf)
	for i := range e.res {
		e.res[i] = specRes{}
	}
	e.res = e.res[:0]
	e.committed = e.committed[:0]
	e.n, e.workers, e.wave = 0, 0, 0
	e.waveLo, e.waveHi = 0, 0
	e.snapEpoch, e.stale = 0, false
	enginePool.Put(e)
}

// runWave executes groups [start, start+wave) concurrently.
func (e *LaunchEngine) runWave(start int) {
	e.waveLo = start
	e.waveHi = start + e.wave
	if e.waveHi > e.n {
		e.waveHi = e.n
	}
	w := e.waveHi - e.waveLo
	for i := range e.committed {
		e.committed[i] = argSpan{}
	}
	e.stale = false
	if e.epoch != nil {
		e.snapEpoch = e.epoch()
	}
	for len(e.defs) < w {
		e.defs = append(e.defs, &DeferredWrites{})
	}
	if cap(e.res) < w {
		e.res = make([]specRes, w)
	}
	e.res = e.res[:w]
	nw := e.workers
	if nw > w {
		nw = w
	}
	if nw <= 1 {
		for i := e.waveLo; i < e.waveHi; i++ {
			e.runSlot(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(int64(e.waveLo))
	var wg sync.WaitGroup
	for t := 0; t < nw; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= e.waveHi {
					return
				}
				e.runSlot(i)
			}
		}()
	}
	wg.Wait()
}

// runSlot executes group i into its wave slot.
func (e *LaunchEngine) runSlot(i int) {
	slot := i - e.waveLo
	d := e.defs[slot]
	d.begin(len(e.args))
	st, err := e.exec(i, d)
	e.res[slot] = specRes{st: st, err: err}
}

// conflicts reports whether d's reads overlap any mutation committed since
// the wave snapshot.
func (e *LaunchEngine) conflicts(d *DeferredWrites) bool {
	for a := range d.reads {
		if d.reads[a].overlaps(&e.committed[a]) {
			return true
		}
	}
	return false
}

// Result returns group i's execution outcome, running a new wave if needed
// and serially re-executing the group when its speculative run has been
// invalidated. i must advance monotonically.
func (e *LaunchEngine) Result(i int) (Stats, error) {
	if i >= e.waveHi {
		e.runWave(i)
	}
	slot := i - e.waveLo
	r := &e.res[slot]
	if e.epoch != nil && e.epoch() != e.snapEpoch {
		e.stale = true
	}
	if e.stale || r.err != nil || e.conflicts(e.defs[slot]) {
		e.runSlot(i)
	}
	return r.st, r.err
}

// Commit applies group i's buffered stores in place (recording into undo
// when non-nil) and folds its write envelope into the wave's mutation
// envelopes. Must follow Result(i).
func (e *LaunchEngine) Commit(i int, undo *UndoLog) {
	slot := i - e.waveLo
	d := e.defs[slot]
	d.commit(e.args, undo)
	for a := range d.wspans {
		s := &d.wspans[a]
		if !s.seen {
			continue
		}
		e.committed[a].extend(s.lo)
		e.committed[a].extend(s.hi)
	}
}

// NoteUndo records an imminent rollback of u's stores as mutations, so
// buffered speculative results that read the affected ranges re-execute.
// Call it immediately before u.Rollback().
func (e *LaunchEngine) NoteUndo(u *UndoLog) {
	for _, rec := range u.recs {
		if len(rec.Buf) == 0 {
			continue
		}
		a, ok := e.argOf[&rec.Buf[0]]
		if !ok {
			e.stale = true // store into memory we don't track: invalidate all
			continue
		}
		e.committed[a].extend(int32(rec.Off))
	}
}
