package vm_test

import (
	"testing"

	"fluidicl/internal/clc"
	"fluidicl/internal/polybench"
	"fluidicl/internal/vm"
)

// TestWGFuseCountersOnHotKernels pins the region-fusion pass to the hot
// Polybench kernels: compiling each one must attribute at least one fused
// block (and its covered instructions) to the backend counters. Coverage
// regressions — a matcher change that silently stops fusing SYRK's inner
// product, say — show up here as a zero delta rather than as an unexplained
// benchmark slowdown. Fallback steps are allowed (not every block matches a
// jam shape); fused coverage is what must not vanish.
func TestWGFuseCountersOnHotKernels(t *testing.T) {
	for _, name := range []string{"SYRK", "GESUMMV", "2MM", "GEMM"} {
		bm, err := polybench.ByNameQuick(name)
		if err != nil {
			t.Fatal(err)
		}
		app := bm.App
		compiled := map[string]bool{}
		for _, l := range app.Launches {
			if compiled[l.Kernel] {
				continue
			}
			compiled[l.Kernel] = true
			ki, err := clc.FindKernelInfo(app.Source, l.Kernel)
			if err != nil {
				t.Fatal(err)
			}
			before := vm.BackendSnapshot()
			if _, err := vm.Compile(ki); err != nil {
				t.Fatal(err)
			}
			after := vm.BackendSnapshot()
			blocks := after.WGFusedBlocks - before.WGFusedBlocks
			steps := after.WGFusedSteps - before.WGFusedSteps
			if blocks <= 0 || steps <= 0 {
				t.Errorf("%s %s: compile attributed wg_fused_blocks=%d wg_fused_steps=%d; want both > 0",
					name, l.Kernel, blocks, steps)
			}
		}
	}
}
