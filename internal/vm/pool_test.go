package vm

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"fluidicl/internal/clc"
)

// withWorkers runs fn with the global worker knob set to n, restoring the
// default afterwards.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	SetWorkers(n)
	defer SetWorkers(0)
	fn()
}

// TestParallelLaunchConflictChain executes a kernel where every work-group
// reads the previous group's output — the worst case for speculation, since
// every speculative result is invalidated and must re-execute serially. The
// parallel path must still produce byte-identical memory and stats.
func TestParallelLaunchConflictChain(t *testing.T) {
	k := MustCompile(`
__kernel void chain(__global int* a, int n) {
    int i = get_global_id(0);
    if (i > 0 && i < n) { a[i] = a[i - 1] + i; }
}
`, "chain")
	n := 64
	nd := NewNDRange1D(n, 1) // one work-item per group: a pure cross-group chain

	run := func(workers int) ([]byte, Stats) {
		buf := make([]byte, 4*n)
		var st Stats
		var err error
		withWorkers(t, workers, func() {
			st, err = k.ExecLaunch(nd, []Arg{BufArg(buf), IntArg(int64(n))}, ExecOpts{})
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return buf, st
	}

	seqBuf, seqSt := run(1)
	parBuf, parSt := run(8)
	if !bytes.Equal(seqBuf, parBuf) {
		t.Fatalf("parallel buffer differs from sequential")
	}
	if seqSt != parSt {
		t.Fatalf("stats differ: seq=%+v par=%+v", seqSt, parSt)
	}
	// Sanity: the chain really is sequential — a[i] = sum(1..i).
	want := int32(0)
	for i := 1; i < n; i++ {
		want += int32(i)
		if got := i32at(seqBuf, i); got != want {
			t.Fatalf("a[%d] = %d, want %d", i, got, want)
		}
	}
}

// TestParallelLaunchAliasedArgsFallBack passes the same buffer twice; the
// engine must refuse to speculate (aliased stores could not be attributed to
// one argument) and the sequential fallback must still be correct.
func TestParallelLaunchAliasedArgsFallBack(t *testing.T) {
	k := MustCompile(`
__kernel void twice(__global int* a, __global int* b, int n) {
    int i = get_global_id(0);
    if (i < n) { b[i] = a[i] + 1; }
}
`, "twice")
	n := 32
	nd := NewNDRange1D(n, 4)
	buf := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(int32(i)))
	}
	args := []Arg{BufArg(buf), BufArg(buf), IntArg(int64(n))}

	if eng, err := NewLaunchEngine(k, nd, args, ExecOpts{}, 4, nil); err != nil || eng != nil {
		t.Fatalf("aliased args: engine=%v err=%v, want nil engine, nil err", eng, err)
	}
	withWorkers(t, 8, func() {
		if _, err := k.ExecLaunch(nd, args, ExecOpts{}); err != nil {
			t.Fatal(err)
		}
	})
	for i := 0; i < n; i++ {
		if got := i32at(buf, i); got != int32(i+1) {
			t.Fatalf("a[%d] = %d, want %d", i, got, i+1)
		}
	}
}

// TestParallelLaunchErrorPartialWrites checks that a faulting launch leaves
// memory in exactly the state the sequential path leaves it in: every group
// before the faulting one committed, the faulting group's stores up to the
// fault applied, later groups not run.
func TestParallelLaunchErrorPartialWrites(t *testing.T) {
	k := MustCompile(`
__kernel void faulty(__global int* a, int n) {
    int i = get_global_id(0);
    a[i] = i + 100;
    if (i == 37) { a[n * n] = 1; }
}
`, "faulty")
	n := 48
	nd := NewNDRange1D(n, 4)

	run := func(workers int) ([]byte, string) {
		buf := make([]byte, 4*n)
		var err error
		withWorkers(t, workers, func() {
			_, err = k.ExecLaunch(nd, []Arg{BufArg(buf), IntArg(int64(n))}, ExecOpts{})
		})
		if err == nil {
			t.Fatalf("workers=%d: expected out-of-range error", workers)
		}
		return buf, err.Error()
	}

	seqBuf, seqErr := run(1)
	parBuf, parErr := run(8)
	if seqErr != parErr {
		t.Fatalf("error differs:\nseq: %s\npar: %s", seqErr, parErr)
	}
	if !bytes.Equal(seqBuf, parBuf) {
		t.Fatalf("post-error buffer differs from sequential")
	}
}

// TestParallelLaunchUndoMatchesSequential runs with an undo log under both
// worker counts; the logs must be byte-for-byte equivalent (as witnessed by
// rolling both back to the identical initial state).
func TestParallelLaunchUndoMatchesSequential(t *testing.T) {
	k := MustCompile(`
__kernel void accum(__global float* a, __global float* b, int n) {
    int i = get_global_id(0);
    if (i < n) { b[i] = b[i] * 0.5f + a[i]; }
}
`, "accum")
	n := 64
	nd := NewNDRange1D(n, 8)

	mk := func() ([]byte, []byte) {
		a := make([]byte, 4*n)
		b := make([]byte, 4*n)
		r := rand.New(rand.NewSource(11))
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(a[4*i:], math.Float32bits(float32(r.Float64()*8-4)))
			binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(float32(r.Float64()*8-4)))
		}
		return a, b
	}

	run := func(workers int) (after, rolledBack []byte, recs int) {
		a, b := mk()
		undo := &UndoLog{}
		var err error
		withWorkers(t, workers, func() {
			_, err = k.ExecLaunch(nd, []Arg{BufArg(a), BufArg(b), IntArg(int64(n))}, ExecOpts{Undo: undo})
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		after = append([]byte{}, b...)
		recs = undo.Len()
		undo.Rollback()
		rolledBack = append([]byte{}, b...)
		return
	}

	seqAfter, seqRolled, seqRecs := run(1)
	parAfter, parRolled, parRecs := run(8)
	if !bytes.Equal(seqAfter, parAfter) {
		t.Fatal("post-run buffers differ")
	}
	if seqRecs != parRecs {
		t.Fatalf("undo record counts differ: seq=%d par=%d", seqRecs, parRecs)
	}
	if !bytes.Equal(seqRolled, parRolled) {
		t.Fatal("rolled-back buffers differ")
	}
}

// TestParallelLaunchRandomProgramsMatchSequential is the speculative engine's
// differential test: random generated kernels (with loops, barriers, local
// arrays, global read/write mixes) run under workers=1 and workers=8 and must
// produce identical buffers, stats and error status.
func TestParallelLaunchRandomProgramsMatchSequential(t *testing.T) {
	const trials = 40
	n := 32
	for seed := 0; seed < trials; seed++ {
		g := &progGen{r: rand.New(rand.NewSource(int64(seed) + 1000))}
		src := g.generate()
		ki, err := clc.FindKernelInfo(src, "diff")
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		k, err := Compile(ki)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		mkBufs := func() ([]byte, []byte) {
			fb := make([]byte, 4*n)
			ib := make([]byte, 4*n)
			r := rand.New(rand.NewSource(int64(seed) * 31))
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint32(fb[4*i:], math.Float32bits(float32(r.Float64()*16-8)))
				binary.LittleEndian.PutUint32(ib[4*i:], uint32(int32(r.Intn(41)-20)))
			}
			return fb, ib
		}
		nd := NewNDRange1D(n, 8)
		p1 := int64(seed%13 - 6)
		fp := float64(seed%17)/3 - 2

		run := func(workers int) ([]byte, []byte, Stats, error) {
			fb, ib := mkBufs()
			var st Stats
			var err error
			withWorkers(t, workers, func() {
				st, err = k.ExecLaunch(nd, []Arg{BufArg(fb), BufArg(ib), IntArg(int64(n)), IntArg(p1), FloatArg(fp)}, ExecOpts{})
			})
			return fb, ib, st, err
		}

		fbS, ibS, stS, errS := run(1)
		fbP, ibP, stP, errP := run(8)
		if (errS == nil) != (errP == nil) {
			t.Fatalf("seed %d: error disagreement: seq=%v par=%v\n%s", seed, errS, errP, src)
		}
		if errS != nil && errS.Error() != errP.Error() {
			t.Fatalf("seed %d: error text differs:\nseq: %v\npar: %v\n%s", seed, errS, errP, src)
		}
		if !bytes.Equal(fbS, fbP) || !bytes.Equal(ibS, ibP) {
			t.Fatalf("seed %d: buffers differ between workers=1 and workers=8\n%s", seed, src)
		}
		if errS == nil && stS != stP {
			t.Fatalf("seed %d: stats differ:\nseq=%+v\npar=%+v\n%s", seed, stS, stP, src)
		}
	}
}

// TestRefExecLaunchParallelMatchesSequential runs the reference interpreter's
// launch path under both worker counts over random programs.
func TestRefExecLaunchParallelMatchesSequential(t *testing.T) {
	const trials = 25
	n := 32
	for seed := 0; seed < trials; seed++ {
		g := &progGen{r: rand.New(rand.NewSource(int64(seed) + 5000))}
		src := g.generate()
		ki, err := clc.FindKernelInfo(src, "diff")
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		ref, err := NewRefExec(ki)
		if err != nil {
			continue // barrier kernels are rejected by RefExec
		}
		mkBufs := func() ([]byte, []byte) {
			fb := make([]byte, 4*n)
			ib := make([]byte, 4*n)
			r := rand.New(rand.NewSource(int64(seed) * 13))
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint32(fb[4*i:], math.Float32bits(float32(r.Float64()*16-8)))
				binary.LittleEndian.PutUint32(ib[4*i:], uint32(int32(r.Intn(41)-20)))
			}
			return fb, ib
		}
		nd := NewNDRange1D(n, 8)
		args := func(fb, ib []byte) []Arg {
			return []Arg{BufArg(fb), BufArg(ib), IntArg(int64(n)), IntArg(3), FloatArg(1.5)}
		}

		fbS, ibS := mkBufs()
		var errS error
		withWorkers(t, 1, func() { errS = ref.ExecLaunch(nd, args(fbS, ibS)) })
		fbP, ibP := mkBufs()
		var errP error
		withWorkers(t, 8, func() { errP = ref.ExecLaunch(nd, args(fbP, ibP)) })

		if (errS == nil) != (errP == nil) {
			t.Fatalf("seed %d: error disagreement: seq=%v par=%v\n%s", seed, errS, errP, src)
		}
		if !bytes.Equal(fbS, fbP) || !bytes.Equal(ibS, ibP) {
			t.Fatalf("seed %d: ref buffers differ between workers=1 and workers=8\n%s", seed, src)
		}
	}
}
