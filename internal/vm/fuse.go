package vm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Threaded-code lowering with superinstruction fusion.
//
// buildClosures compiles a kernel's bytecode into k.clos: one closure per
// basic block, installed at the block's leader pc (interior pcs stay nil —
// the driver only ever enters at leaders: pc 0, jump targets, and
// post-barrier resume points). Each block closure charges the whole block
// against the step budget once, runs its straight-line steps, then executes
// its terminator, which returns the next leader pc or a sentinel.
//
// The peephole pass (matchSuper) greedily fuses the opcode sequences the
// expression compiler actually emits — affine index computation, indexed
// loads feeding multiplies, multiply-add chains, increment idioms,
// get_global_id, and compare+branch terminators — into single closures.
// Fusion is matched on opcode shape only and every fused closure performs
// the exact register writes, stats updates, and memory-op side effects of
// its component instructions in order, so temporaries that live across
// block boundaries (ternary/&&/|| merges) and error-path prefixes behave
// identically to the interpreter.
//
// Step-budget equivalence: the interpreter checks `steps++ > maxSteps`
// before every instruction; a block of n instructions errors iff
// stepsBefore + n > maxSteps for the worst in-block prefix, which is the
// same condition the batched `m.steps += n` check tests. Error *presence*
// is therefore identical; only the reported pc of a budget error (block
// leader vs exact instruction) may differ.

// FusedSpan records one fused superinstruction for disassembly: Len
// consecutive instructions starting at pc Start execute as the single
// closure Name.
type FusedSpan struct {
	Start int
	Len   int
	Name  string
}

// buildClosures lowers k.Code into threaded code. On any shape the lowering
// does not support (unknown opcode, out-of-range jump target, code that can
// fall off the end) it leaves k.clos nil and execution falls back to the
// interpreter.
func (k *Kernel) buildClosures() {
	code := k.Code
	n := len(code)
	if n == 0 || code[n-1].Op != opRET && code[n-1].Op != opJMP {
		return
	}
	for _, in := range code {
		if in.Op < opNop || in.Op > opRET {
			return
		}
		switch in.Op {
		case opJMP, opJZ, opJNZ:
			if in.A < 0 || int(in.A) >= n {
				return
			}
		}
	}

	// Leaders: entry, jump targets, and the instruction after any
	// control transfer (including barrier resume points).
	leader := make([]bool, n+1)
	leader[0] = true
	for pc, in := range code {
		switch in.Op {
		case opJMP, opJZ, opJNZ:
			leader[in.A] = true
			leader[pc+1] = true
		case opBARRIER, opRET:
			leader[pc+1] = true
		}
	}

	clos := make([]closFn, n)
	var fused []FusedSpan
	for start := 0; start < n; {
		end := start + 1
		for end < n && !leader[end] {
			end++
		}
		bc := k.buildBlock(start, end, &fused)
		if bc == nil {
			return
		}
		clos[start] = bc
		start = end
	}
	sort.Slice(fused, func(i, j int) bool { return fused[i].Start < fused[j].Start })
	k.clos = clos
	k.Fused = fused
	var f int64
	for _, s := range fused {
		f += int64(s.Len)
	}
	backendCtr.totalInstrs.Add(int64(n))
	backendCtr.fusedInstrs.Add(f)
}

// buildBlock compiles the basic block code[start:end). The last instruction
// may be a control transfer (terminator); everything before it is
// straight-line.
func (k *Kernel) buildBlock(start, end int, fused *[]FusedSpan) closFn {
	code := k.Code
	nInstr := int64(end - start)
	last := code[end-1]
	bodyEnd := end
	var term closFn
	switch last.Op {
	case opJMP:
		bodyEnd = end - 1
		tgt := int(last.A)
		term = func(m *cmach) int { m.st.Branches++; return tgt }
	case opJZ, opJNZ:
		bodyEnd = end - 1
		term = k.fuseCondBr(start, &bodyEnd, end, fused)
	case opRET:
		bodyEnd = end - 1
		term = func(m *cmach) int { m.w.done = true; return pcRET }
	case opBARRIER:
		bodyEnd = end - 1
		resume := end
		term = func(m *cmach) int { m.w.pc = resume; return pcBARRIER }
	default:
		next := end
		term = func(m *cmach) int { return next }
	}

	var steps []stepFn
	for pc := start; pc < bodyEnd; {
		if fn, ln, name := k.matchSuper(pc, bodyEnd); fn != nil {
			steps = append(steps, fn)
			*fused = append(*fused, FusedSpan{Start: pc, Len: ln, Name: name})
			pc += ln
			continue
		}
		if code[pc].Op == opNop {
			pc++ // no semantics; still counted in nInstr for the budget
			continue
		}
		s := k.buildStep(pc)
		if s == nil {
			return nil
		}
		steps = append(steps, s)
		pc++
	}

	blockStart := start
	kname := k.Name
	switch len(steps) {
	case 0:
		return func(m *cmach) int {
			if m.steps += nInstr; m.steps > m.maxSteps {
				m.err = &execError{kname, blockStart, "instruction budget exceeded (possible infinite loop)"}
				return pcERR
			}
			return term(m)
		}
	case 1:
		s0 := steps[0]
		return func(m *cmach) int {
			if m.steps += nInstr; m.steps > m.maxSteps {
				m.err = &execError{kname, blockStart, "instruction budget exceeded (possible infinite loop)"}
				return pcERR
			}
			if !s0(m) {
				return pcERR
			}
			return term(m)
		}
	case 2:
		s0, s1 := steps[0], steps[1]
		return func(m *cmach) int {
			if m.steps += nInstr; m.steps > m.maxSteps {
				m.err = &execError{kname, blockStart, "instruction budget exceeded (possible infinite loop)"}
				return pcERR
			}
			if !s0(m) || !s1(m) {
				return pcERR
			}
			return term(m)
		}
	case 3:
		s0, s1, s2 := steps[0], steps[1], steps[2]
		return func(m *cmach) int {
			if m.steps += nInstr; m.steps > m.maxSteps {
				m.err = &execError{kname, blockStart, "instruction budget exceeded (possible infinite loop)"}
				return pcERR
			}
			if !s0(m) || !s1(m) || !s2(m) {
				return pcERR
			}
			return term(m)
		}
	case 4:
		s0, s1, s2, s3 := steps[0], steps[1], steps[2], steps[3]
		return func(m *cmach) int {
			if m.steps += nInstr; m.steps > m.maxSteps {
				m.err = &execError{kname, blockStart, "instruction budget exceeded (possible infinite loop)"}
				return pcERR
			}
			if !s0(m) || !s1(m) || !s2(m) || !s3(m) {
				return pcERR
			}
			return term(m)
		}
	default:
		return func(m *cmach) int {
			if m.steps += nInstr; m.steps > m.maxSteps {
				m.err = &execError{kname, blockStart, "instruction budget exceeded (possible infinite loop)"}
				return pcERR
			}
			for _, s := range steps {
				if !s(m) {
					return pcERR
				}
			}
			return term(m)
		}
	}
}

// fuseCondBr builds the terminator for a block ending in JZ/JNZ, folding a
// preceding integer compare (and up to two register moves feeding it) into
// the branch closure. It narrows *bodyEnd past any instructions it absorbs.
func (k *Kernel) fuseCondBr(start int, bodyEnd *int, end int, fused *[]FusedSpan) closFn {
	code := k.Code
	br := code[end-1]
	tgt, next, jb := int(br.A), end, br.B
	jz := br.Op == opJZ
	be := *bodyEnd

	plain := func(m *cmach) int {
		m.st.Branches++
		if (m.iregs[jb] == 0) == jz {
			return tgt
		}
		return next
	}
	if be-start < 1 || !isIntCmp(code[be-1].Op) {
		return plain
	}
	cmp := code[be-1]
	cf := intCmpFn(cmp.Op)
	ca, cb, cc := cmp.A, cmp.B, cmp.C
	// Loop/guard conditions: when the branch tests the compare's own
	// destination, the truth value short-circuits into the branch.
	isLT := cmp.Op == opILT && jb == ca

	if be-start >= 3 && code[be-3].Op == opIMOV && code[be-2].Op == opIMOV {
		m0, m1 := code[be-3], code[be-2]
		a0, b0, a1, b1 := m0.A, m0.B, m1.A, m1.B
		*bodyEnd = be - 3
		*fused = append(*fused, FusedSpan{Start: be - 3, Len: 4, Name: "imov2.cmp.br"})
		if isLT {
			return func(m *cmach) int {
				ir := m.iregs
				ir[a0] = ir[b0]
				ir[a1] = ir[b1]
				taken := ir[cb] < ir[cc]
				ir[ca] = b2i(taken)
				st := m.st
				st.IntOps++
				st.Branches++
				if !taken == jz {
					return tgt
				}
				return next
			}
		}
		return func(m *cmach) int {
			ir := m.iregs
			ir[a0] = ir[b0]
			ir[a1] = ir[b1]
			ir[ca] = b2i(cf(ir[cb], ir[cc]))
			m.st.IntOps++
			m.st.Branches++
			if (ir[jb] == 0) == jz {
				return tgt
			}
			return next
		}
	}

	*bodyEnd = be - 1
	*fused = append(*fused, FusedSpan{Start: be - 1, Len: 2, Name: "cmp.br"})
	if isLT {
		return func(m *cmach) int {
			ir := m.iregs
			taken := ir[cb] < ir[cc]
			ir[ca] = b2i(taken)
			st := m.st
			st.IntOps++
			st.Branches++
			if !taken == jz {
				return tgt
			}
			return next
		}
	}
	return func(m *cmach) int {
		ir := m.iregs
		ir[ca] = b2i(cf(ir[cb], ir[cc]))
		m.st.IntOps++
		m.st.Branches++
		if (ir[jb] == 0) == jz {
			return tgt
		}
		return next
	}
}

func isIntCmp(op Op) bool { return op >= opILT && op <= opINE }

// opsAt reports whether code[pc:pc+len(ops)] lies within [pc, end) and
// matches the opcode sequence exactly.
func (k *Kernel) opsAt(pc, end int, ops ...Op) bool {
	if pc+len(ops) > end {
		return false
	}
	for i, o := range ops {
		if k.Code[pc+i].Op != o {
			return false
		}
	}
	return true
}

// matchSuper tries the superinstruction patterns (longest first) at pc and
// returns a fused stepFn, the number of instructions consumed, and the
// superinstruction mnemonic. All patterns match on opcode shape only and
// inline the exact per-instruction semantics.
func (k *Kernel) matchSuper(pc, end int) (stepFn, int, string) {
	code := k.Code
	switch {
	// a[i*m+k] materialization: two index moves, scale, move, add — then
	// the indexed float load, the multiply consuming it (x*A[..]), and
	// optionally the accumulate (acc += x*A[..]), the matmul/inner-product
	// core.
	case k.opsAt(pc, end, opIMOV, opIMOV, opIMUL, opIMOV, opIADD, opLDGF, opFMUL, opFADD):
		return k.superAffLoad(pc, true, true), 8, "aff.ldgf.fmadd"
	case k.opsAt(pc, end, opIMOV, opIMOV, opIMUL, opIMOV, opIADD, opLDGF, opFMUL):
		return k.superAffLoad(pc, true, false), 7, "aff.ldgf.fmul"
	case k.opsAt(pc, end, opIMOV, opIMOV, opIMUL, opIMOV, opIADD, opLDGF):
		return k.superAffLoad(pc, false, false), 6, "aff.ldgf"
	case k.opsAt(pc, end, opIMOV, opIMOV, opIMUL, opIMOV, opIADD, opLDGI):
		return k.superAffLoad(pc, false, false), 6, "aff.ldgi"
	case k.opsAt(pc, end, opIMOV, opIMOV, opIMUL, opIMOV, opIADD):
		i0, i1, mul, i3, add := code[pc], code[pc+1], code[pc+2], code[pc+3], code[pc+4]
		a0, b0, a1, b1 := i0.A, i0.B, i1.A, i1.B
		ma, mb, mc := mul.A, mul.B, mul.C
		a3, b3 := i3.A, i3.B
		aa, ab, ac := add.A, add.B, add.C
		return func(m *cmach) bool {
			ir := m.iregs
			ir[a0] = ir[b0]
			ir[a1] = ir[b1]
			ir[ma] = ir[mb] * ir[mc]
			m.st.IntOps++
			ir[a3] = ir[b3]
			ir[aa] = ir[ab] + ir[ac]
			m.st.IntOps++
			return true
		}, 5, "aff.idx"
	// k = k + 1 loop increment: IMOV tmp,k; LDI one; IADD; IMOV k,tmp.
	case k.opsAt(pc, end, opIMOV, opLDI, opIADD, opIMOV):
		i0, ldi, add, i3 := code[pc], code[pc+1], code[pc+2], code[pc+3]
		a0, b0 := i0.A, i0.B
		la, imm := ldi.A, ldi.IImm
		aa, ab, ac := add.A, add.B, add.C
		a3, b3 := i3.A, i3.B
		return func(m *cmach) bool {
			ir := m.iregs
			ir[a0] = ir[b0]
			ir[la] = imm
			ir[aa] = ir[ab] + ir[ac]
			m.st.IntOps++
			ir[a3] = ir[b3]
			return true
		}, 4, "inc"
	// int i = get_global_id(0): dim constant, GID, assignment move.
	case k.opsAt(pc, end, opLDI, opGID, opIMOV):
		ldi, gid, mov := code[pc], code[pc+1], code[pc+2]
		la, imm := ldi.A, ldi.IImm
		ga, gb := gid.A, gid.B
		ma, mb := mov.A, mov.B
		return func(m *cmach) bool {
			ir := m.iregs
			ir[la] = imm
			d := ir[gb]
			ir[ga] = cdim(m.group, d)*cdim(m.nd.LocalSize, d) + cdim(m.lid, d)
			m.st.IntOps++
			ir[ma] = ir[mb]
			return true
		}, 3, "gid.imov"
	case k.opsAt(pc, end, opLDI, opGID):
		ldi, gid := code[pc], code[pc+1]
		la, imm := ldi.A, ldi.IImm
		ga, gb := gid.A, gid.B
		return func(m *cmach) bool {
			ir := m.iregs
			ir[la] = imm
			d := ir[gb]
			ir[ga] = cdim(m.group, d)*cdim(m.nd.LocalSize, d) + cdim(m.lid, d)
			m.st.IntOps++
			return true
		}, 2, "gid"
	case k.opsAt(pc, end, opLDGF, opFMUL):
		return k.superLoadFMul(pc), 2, "ldgf.fmul"
	// Fused multiply-add: acc += x*y.
	case k.opsAt(pc, end, opFMUL, opFADD):
		fm, fa2 := code[pc], code[pc+1]
		ma, mb, mc := fm.A, fm.B, fm.C
		aa, ab, ac := fa2.A, fa2.B, fa2.C
		return func(m *cmach) bool {
			fr := m.fregs
			fr[ma] = float64(float32(fr[mb]) * float32(fr[mc]))
			m.st.FloatOps++
			fr[aa] = float64(float32(fr[ab]) + float32(fr[ac]))
			m.st.FloatOps++
			return true
		}, 2, "fmul.fadd"
	// Arith feeding an indexed global store.
	case k.opsAt(pc, end, opFADD, opSTGF):
		fa2 := code[pc]
		aa, ab, ac := fa2.A, fa2.B, fa2.C
		st := k.buildStep(pc + 1)
		return func(m *cmach) bool {
			fr := m.fregs
			fr[aa] = float64(float32(fr[ab]) + float32(fr[ac]))
			m.st.FloatOps++
			return st(m)
		}, 2, "fadd.stgf"
	case k.opsAt(pc, end, opFMUL, opSTGF):
		fm := code[pc]
		ma, mb, mc := fm.A, fm.B, fm.C
		st := k.buildStep(pc + 1)
		return func(m *cmach) bool {
			fr := m.fregs
			fr[ma] = float64(float32(fr[mb]) * float32(fr[mc]))
			m.st.FloatOps++
			return st(m)
		}, 2, "fmul.stgf"
	// Compare whose operands both need moves (loop conditions mid-block).
	case k.opsAt(pc, end, opIMOV, opIMOV) && pc+2 < end && isIntCmp(code[pc+2].Op):
		m0, m1, cmp := code[pc], code[pc+1], code[pc+2]
		a0, b0, a1, b1 := m0.A, m0.B, m1.A, m1.B
		ca, cb, cc := cmp.A, cmp.B, cmp.C
		cf := intCmpFn(cmp.Op)
		return func(m *cmach) bool {
			ir := m.iregs
			ir[a0] = ir[b0]
			ir[a1] = ir[b1]
			ir[ca] = b2i(cf(ir[cb], ir[cc]))
			m.st.IntOps++
			return true
		}, 3, "imov2.cmp"
	}
	return nil, 0, ""
}

// superAffLoad fuses the affine-index prelude with the following indexed
// global load, and optionally the float multiply consuming the loaded value.
// The load is inlined rather than dispatched through the generic step — this
// is the hottest sequence in the Polybench inner loops, and inlining lets
// the computed index flow into the bounds check without a register
// round-trip. Stats updates are the exact per-instruction ones, batched
// (IntOps += 2 for IMUL+IADD; the masks and byte counters commute).
func (k *Kernel) superAffLoad(pc int, withFMul, withFAdd bool) stepFn {
	code := k.Code
	i0, i1, mul, i3, add := code[pc], code[pc+1], code[pc+2], code[pc+3], code[pc+4]
	a0, b0, a1, b1 := i0.A, i0.B, i1.A, i1.B
	ma, mb, mc := mul.A, mul.B, mul.C
	a3, b3 := i3.A, i3.B
	aa, ab, ac := add.A, add.B, add.C
	ld := code[pc+5]
	ldPC := pc + 5
	la, slot, memID := ld.A, ld.B, ld.D
	isF := ld.Op == opLDGF
	name := k.Params[slot].Name
	kname := k.Name
	var readMask uint64
	if slot < 64 {
		readMask = 1 << uint(slot)
	}
	if !withFMul {
		return func(m *cmach) bool {
			ir := m.iregs
			ir[a0] = ir[b0]
			ir[a1] = ir[b1]
			ir[ma] = ir[mb] * ir[mc]
			ir[a3] = ir[b3]
			idx := ir[ab] + ir[ac]
			ir[aa] = idx
			st := m.st
			st.IntOps += 2
			buf := m.args[slot].Buf
			off := idx * 4
			if idx < 0 || off+4 > int64(len(buf)) {
				m.err = &execError{kname, ldPC, fmt.Sprintf("load %s: index %d out of range (buffer %d bytes)", name, idx, len(buf))}
				return false
			}
			bits := binary.LittleEndian.Uint32(buf[off:])
			if d := m.def; d != nil {
				d.noteRead(slot, int32(off))
				if v, ok := d.lookup(slot, int32(off)); ok {
					bits = v
				}
			}
			if isF {
				m.fregs[la] = float64(math.Float32frombits(bits))
			} else {
				ir[la] = int64(int32(bits))
			}
			st.ParamReadMask |= readMask
			st.GlobalLoads++
			st.GlobalLoadBytes += 4
			m.tr.access(memID, int32(off), m.firstInWarp, st)
			return true
		}
	}
	fm := code[pc+6]
	fa, fb, fc := fm.A, fm.B, fm.C
	if !withFAdd {
		return func(m *cmach) bool {
			ir := m.iregs
			ir[a0] = ir[b0]
			ir[a1] = ir[b1]
			ir[ma] = ir[mb] * ir[mc]
			ir[a3] = ir[b3]
			idx := ir[ab] + ir[ac]
			ir[aa] = idx
			st := m.st
			st.IntOps += 2
			buf := m.args[slot].Buf
			off := idx * 4
			if idx < 0 || off+4 > int64(len(buf)) {
				m.err = &execError{kname, ldPC, fmt.Sprintf("load %s: index %d out of range (buffer %d bytes)", name, idx, len(buf))}
				return false
			}
			bits := binary.LittleEndian.Uint32(buf[off:])
			if d := m.def; d != nil {
				d.noteRead(slot, int32(off))
				if v, ok := d.lookup(slot, int32(off)); ok {
					bits = v
				}
			}
			fr := m.fregs
			fr[la] = float64(math.Float32frombits(bits))
			st.ParamReadMask |= readMask
			st.GlobalLoads++
			st.GlobalLoadBytes += 4
			m.tr.access(memID, int32(off), m.firstInWarp, st)
			fr[fa] = float64(float32(fr[fb]) * float32(fr[fc]))
			st.FloatOps++
			return true
		}
	}
	fad := code[pc+7]
	ga, gb, gc := fad.A, fad.B, fad.C
	return func(m *cmach) bool {
		ir := m.iregs
		ir[a0] = ir[b0]
		ir[a1] = ir[b1]
		ir[ma] = ir[mb] * ir[mc]
		ir[a3] = ir[b3]
		idx := ir[ab] + ir[ac]
		ir[aa] = idx
		st := m.st
		st.IntOps += 2
		buf := m.args[slot].Buf
		off := idx * 4
		if idx < 0 || off+4 > int64(len(buf)) {
			m.err = &execError{kname, ldPC, fmt.Sprintf("load %s: index %d out of range (buffer %d bytes)", name, idx, len(buf))}
			return false
		}
		bits := binary.LittleEndian.Uint32(buf[off:])
		if d := m.def; d != nil {
			d.noteRead(slot, int32(off))
			if v, ok := d.lookup(slot, int32(off)); ok {
				bits = v
			}
		}
		fr := m.fregs
		fr[la] = float64(math.Float32frombits(bits))
		st.ParamReadMask |= readMask
		st.GlobalLoads++
		st.GlobalLoadBytes += 4
		m.tr.access(memID, int32(off), m.firstInWarp, st)
		fr[fa] = float64(float32(fr[fb]) * float32(fr[fc]))
		fr[ga] = float64(float32(fr[gb]) + float32(fr[gc]))
		st.FloatOps += 2
		return true
	}
}

// superLoadFMul inlines an indexed float load and the multiply consuming it.
func (k *Kernel) superLoadFMul(pc int) stepFn {
	ld, fm := k.Code[pc], k.Code[pc+1]
	la, slot, lc, memID := ld.A, ld.B, ld.C, ld.D
	fa, fb, fc := fm.A, fm.B, fm.C
	name := k.Params[slot].Name
	kname := k.Name
	var readMask uint64
	if slot < 64 {
		readMask = 1 << uint(slot)
	}
	return func(m *cmach) bool {
		idx := m.iregs[lc]
		buf := m.args[slot].Buf
		off := idx * 4
		if idx < 0 || off+4 > int64(len(buf)) {
			m.err = &execError{kname, pc, fmt.Sprintf("load %s: index %d out of range (buffer %d bytes)", name, idx, len(buf))}
			return false
		}
		bits := binary.LittleEndian.Uint32(buf[off:])
		if d := m.def; d != nil {
			d.noteRead(slot, int32(off))
			if v, ok := d.lookup(slot, int32(off)); ok {
				bits = v
			}
		}
		fr := m.fregs
		fr[la] = float64(math.Float32frombits(bits))
		st := m.st
		st.ParamReadMask |= readMask
		st.GlobalLoads++
		st.GlobalLoadBytes += 4
		m.tr.access(memID, int32(off), m.firstInWarp, st)
		fr[fa] = float64(float32(fr[fb]) * float32(fr[fc]))
		st.FloatOps++
		return true
	}
}
