package vm

import (
	"fluidicl/internal/analysis"
)

// WGReject enumerates the machine-readable reasons a work-group that
// requested the wg backend fell back to a per-item engine. Every fallback
// carries exactly one reason; the per-reason counters surface through
// BackendSnapshot → core.CounterSnapshot → fluidibench.
type WGReject uint8

const (
	// WGRejNone: not rejected (the group ran in lockstep).
	WGRejNone WGReject = iota
	// WGRejShape: the kernel has no whole-work-group compilation (divergent
	// barrier, private arrays without a barrier, or an unsupported step).
	WGRejShape
	// WGRejAlias: two buffer arguments share storage, defeating every
	// disjointness argument.
	WGRejAlias
	// WGRejNoSummary: the identical-form certificate failed and no strided
	// summary is available to try the disjointness certificate.
	WGRejNoSummary
	// WGRejLocalStore: the kernel stores to a __local array, which the
	// strided footprints do not model.
	WGRejLocalStore
	// WGRejUnknownStore: a store site's index escaped the strided analysis
	// (the summary carries the precise Reject reason).
	WGRejUnknownStore
	// WGRejUnknownRead: a load of a written argument escaped the analysis.
	WGRejUnknownRead
	// WGRejOverlap: footprints of two work-items of one group may intersect.
	WGRejOverlap
	// WGRejBudget: the launch shape made the disjointness check too
	// expensive to run.
	WGRejBudget

	wgRejCount = int(WGRejBudget) + 1
)

var wgRejectNames = [wgRejCount]string{
	"none", "shape", "alias", "no_summary", "local_store",
	"unknown_store", "unknown_read", "overlap", "budget",
}

func (r WGReject) String() string {
	if int(r) < wgRejCount {
		return wgRejectNames[r]
	}
	return "unknown"
}

// wgStridedBudget bounds the footprint evaluations + pairwise disjointness
// tests of one second-chance certification. The result is cached per launch
// shape, so this is a one-time cost per (kernel, shape, scalar args).
const wgStridedBudget = 1 << 22

// wgSecondChance runs the strided disjointness certificate after the
// identical-form certificate failed: the launch is admitted when the
// kernel's strided summary proves that within every work-group, no two
// work-items' store footprints intersect each other or any read footprint
// of the same (written) argument. The verdict covers the full grid, so it
// is independent of the launch's group slice and safe to cache under the
// shape key.
func (k *Kernel) wgSecondChance(nd NDRange, args []Arg) (bool, WGReject) {
	sum := k.sum
	if sum == nil {
		return false, WGRejNoSummary
	}
	sh := analysis.LaunchShape{Dims: nd.Dims}
	for d := 0; d < 3; d++ {
		sh.Local[d] = int64(nd.LocalSize[d])
		sh.NumGroups[d] = int64(nd.NumGroups[d])
		sh.Count[d] = int64(nd.NumGroups[d])
	}
	params := make([]int64, len(k.Params))
	for i, p := range k.Params {
		if p.Kind == ArgInt {
			params[i] = args[i].I
		}
	}
	v := sum.CertifyGroupDisjoint(sh, params, wgStridedBudget)
	if v.OK {
		return true, WGRejNone
	}
	switch v.Reason {
	case analysis.VerdictLocalStore:
		return false, WGRejLocalStore
	case analysis.VerdictUnknownStore:
		return false, WGRejUnknownStore
	case analysis.VerdictUnknownRead:
		return false, WGRejUnknownRead
	case analysis.VerdictOverlap:
		return false, WGRejOverlap
	case analysis.VerdictBudget:
		return false, WGRejBudget
	}
	return false, WGRejNoSummary
}
