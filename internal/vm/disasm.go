package vm

import (
	"fmt"
	"strings"
)

// opNames maps opcodes to mnemonics for the disassembler.
var opNames = map[Op]string{
	opNop: "nop", opLDI: "ldi", opLDF: "ldf", opIMOV: "imov", opFMOV: "fmov",
	opIADD: "iadd", opISUB: "isub", opIMUL: "imul", opIDIV: "idiv", opIMOD: "imod", opINEG: "ineg",
	opFADD: "fadd", opFSUB: "fsub", opFMUL: "fmul", opFDIV: "fdiv", opFNEG: "fneg",
	opI2F: "i2f", opF2I: "f2i",
	opILT: "ilt", opILE: "ile", opIGT: "igt", opIGE: "ige", opIEQ: "ieq", opINE: "ine",
	opFLT: "flt", opFLE: "fle", opFGT: "fgt", opFGE: "fge", opFEQ: "feq", opFNE: "fne",
	opNOTB: "notb", opJMP: "jmp", opJZ: "jz", opJNZ: "jnz",
	opLDGF: "ldgf", opSTGF: "stgf", opLDGI: "ldgi", opSTGI: "stgi",
	opLDLF: "ldlf", opSTLF: "stlf", opLDLI: "ldli", opSTLI: "stli",
	opLDPF: "ldpf", opSTPF: "stpf", opLDPI: "ldpi", opSTPI: "stpi",
	opGID: "gid", opLID: "lid", opGRP: "grp", opNGR: "ngr", opLSZ: "lsz", opGSZ: "gsz",
	opGOFF: "goff", opWDIM: "wdim", opBARRIER: "barrier",
	opSQRT: "sqrt", opFABS: "fabs", opEXP: "exp", opLOG: "log",
	opFLOOR: "floor", opCEIL: "ceil", opPOW: "pow", opFMIN: "fmin", opFMAX: "fmax",
	opIMIN: "imin", opIMAX: "imax", opIABS: "iabs", opRET: "ret",
}

// Disasm renders the compiled kernel's bytecode as readable assembly, one
// instruction per line. It is a debugging aid for the compiler and for
// inspecting what the transformation passes produced.
func (k *Kernel) Disasm() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s: %d instrs, %d iregs, %d fregs, %d params",
		k.Name, len(k.Code), k.NumI, k.NumF, len(k.Params))
	if k.HasBarrier {
		b.WriteString(", barriers")
	}
	b.WriteString("\n")
	for i, p := range k.Params {
		switch p.Kind {
		case ArgBuffer:
			fmt.Fprintf(&b, "  param %d: %s (%s buffer)\n", i, p.Name, p.Elem)
		case ArgFloat:
			fmt.Fprintf(&b, "  param %d: %s -> f%d\n", i, p.Name, p.FReg)
		default:
			fmt.Fprintf(&b, "  param %d: %s -> r%d\n", i, p.Name, p.IReg)
		}
	}
	for _, la := range k.LocalArrs {
		fmt.Fprintf(&b, "  local %s[%d] %s\n", la.Name, la.Len, la.Elem)
	}
	for _, pa := range k.PrivArrs {
		fmt.Fprintf(&b, "  private %s[%d] %s\n", pa.Name, pa.Len, pa.Elem)
	}
	fuseAt := make(map[int]FusedSpan, len(k.Fused))
	for _, s := range k.Fused {
		fuseAt[s.Start] = s
	}
	// Whole-work-group compilation annotations: a marker line at every
	// barrier-region entry and a wg-loop suffix at every block the lockstep
	// engine dispatches as a single banked step sequence.
	wgLoopAt := map[int]FusedSpan{}
	wgFuseAt := map[int]FusedSpan{}
	regionAt := map[int]int{}
	if k.wg != nil {
		for _, s := range k.wg.spans {
			wgLoopAt[s.Start] = s
		}
		for _, s := range k.wg.fused {
			wgFuseAt[s.Start] = s
		}
		for ri := range k.wg.regions {
			regionAt[k.wg.regions[ri].entry] = ri
		}
	}
	for pc, in := range k.Code {
		if ri, ok := regionAt[pc]; ok {
			fmt.Fprintf(&b, "      ; -- wg region %d (%d mem accesses) --\n",
				ri, len(k.wg.regions[ri].accs))
		}
		line := disasmInstr(in)
		if s, ok := fuseAt[pc]; ok {
			line = fmt.Sprintf("%s  ; fuse %s (%d instrs)", line, s.Name, s.Len)
		}
		if s, ok := wgLoopAt[pc]; ok {
			line = fmt.Sprintf("%s  ; wg.loop (%d instrs)", line, s.Len)
		}
		if s, ok := wgFuseAt[pc]; ok {
			line = fmt.Sprintf("%s  ; wg.fuse (%d instrs)", line, s.Len)
		}
		fmt.Fprintf(&b, "%4d  %s\n", pc, line)
	}
	return b.String()
}

func disasmInstr(in Instr) string {
	name := opNames[in.Op]
	if name == "" {
		name = fmt.Sprintf("op%d", in.Op)
	}
	switch in.Op {
	case opNop, opRET, opBARRIER:
		return name
	case opLDI:
		return fmt.Sprintf("%-6s r%d, %d", name, in.A, in.IImm)
	case opLDF:
		return fmt.Sprintf("%-6s f%d, %g", name, in.A, in.FImm)
	case opIMOV, opINEG, opNOTB, opIABS:
		return fmt.Sprintf("%-6s r%d, r%d", name, in.A, in.B)
	case opFMOV, opFNEG, opSQRT, opFABS, opEXP, opLOG, opFLOOR, opCEIL:
		return fmt.Sprintf("%-6s f%d, f%d", name, in.A, in.B)
	case opIADD, opISUB, opIMUL, opIDIV, opIMOD,
		opILT, opILE, opIGT, opIGE, opIEQ, opINE, opIMIN, opIMAX:
		return fmt.Sprintf("%-6s r%d, r%d, r%d", name, in.A, in.B, in.C)
	case opFADD, opFSUB, opFMUL, opFDIV, opPOW, opFMIN, opFMAX:
		return fmt.Sprintf("%-6s f%d, f%d, f%d", name, in.A, in.B, in.C)
	case opFLT, opFLE, opFGT, opFGE, opFEQ, opFNE:
		return fmt.Sprintf("%-6s r%d, f%d, f%d", name, in.A, in.B, in.C)
	case opI2F:
		return fmt.Sprintf("%-6s f%d, r%d", name, in.A, in.B)
	case opF2I:
		return fmt.Sprintf("%-6s r%d, f%d", name, in.A, in.B)
	case opJMP:
		return fmt.Sprintf("%-6s @%d", name, in.A)
	case opJZ, opJNZ:
		return fmt.Sprintf("%-6s r%d, @%d", name, in.B, in.A)
	case opLDGF, opLDLF, opLDPF:
		return fmt.Sprintf("%-6s f%d, [%d + r%d]  ; mem#%d", name, in.A, in.B, in.C, in.D)
	case opLDGI, opLDLI, opLDPI:
		return fmt.Sprintf("%-6s r%d, [%d + r%d]  ; mem#%d", name, in.A, in.B, in.C, in.D)
	case opSTGF, opSTLF, opSTPF:
		return fmt.Sprintf("%-6s [%d + r%d], f%d  ; mem#%d", name, in.B, in.C, in.A, in.D)
	case opSTGI, opSTLI, opSTPI:
		return fmt.Sprintf("%-6s [%d + r%d], r%d  ; mem#%d", name, in.B, in.C, in.A, in.D)
	case opGID, opLID, opGRP, opNGR, opLSZ, opGSZ:
		return fmt.Sprintf("%-6s r%d, dim=r%d", name, in.A, in.B)
	case opGOFF, opWDIM:
		return fmt.Sprintf("%-6s r%d", name, in.A)
	}
	return fmt.Sprintf("%-6s a=%d b=%d c=%d", name, in.A, in.B, in.C)
}
