package vm

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fusedTestSrc is a SYRK-shaped kernel whose inner loop exercises the main
// superinstruction patterns: affine indices (i*m+k), indexed loads feeding
// multiplies, a multiply-add chain, the loop-increment idiom, and
// compare+branch terminators.
const fusedTestSrc = `
__kernel void syrk_like(__global float* A, __global float* C, float alpha, int m, int n) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    if (i < n && j < n) {
        float acc = C[i*n + j];
        for (int k = 0; k < m; k++) {
            acc += alpha * A[i*m + k] * A[j*m + k];
        }
        C[i*n + j] = acc;
    }
}
`

func TestParseBackend(t *testing.T) {
	cases := []struct {
		in   string
		want Backend
		ok   bool
	}{
		{"interp", BackendInterp, true},
		{"interpreter", BackendInterp, true},
		{"closure", BackendClosure, true},
		{"closures", BackendClosure, true},
		{"wg", BackendWG, true},
		{"workgroup", BackendWG, true},
		{"auto", BackendAuto, true},
		{"", BackendAuto, true},
		{"jit", BackendAuto, false},
	}
	for _, c := range cases {
		got, err := ParseBackend(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	if BackendInterp.String() != "interp" || BackendClosure.String() != "closure" ||
		BackendWG.String() != "wg" || BackendAuto.String() != "auto" {
		t.Errorf("Backend.String round-trip broken")
	}
}

func TestSetBackend(t *testing.T) {
	orig := DefaultBackend()
	defer SetBackend(orig)
	SetBackend(BackendInterp)
	if DefaultBackend() != BackendInterp {
		t.Fatal("SetBackend(interp) not observed")
	}
	if got := BackendAuto.resolve(); got != BackendInterp {
		t.Fatalf("Auto resolved to %v with interp default", got)
	}
	SetBackend(BackendAuto) // resets to the built-in default
	if DefaultBackend() != BackendClosure {
		t.Fatal("SetBackend(auto) did not reset to closure")
	}
}

func TestClosureLoweringAndFusion(t *testing.T) {
	k := MustCompile(fusedTestSrc, "syrk_like")
	if k.clos == nil {
		t.Fatal("closure lowering rejected the SYRK-shaped kernel")
	}
	if len(k.clos) != len(k.Code) {
		t.Fatalf("clos len %d != code len %d", len(k.clos), len(k.Code))
	}
	if len(k.Fused) == 0 {
		t.Fatal("no superinstructions fused in a SYRK-shaped kernel")
	}
	names := map[string]bool{}
	covered := 0
	for i, s := range k.Fused {
		names[s.Name] = true
		covered += s.Len
		if s.Len < 2 || s.Start < 0 || s.Start+s.Len > len(k.Code) {
			t.Fatalf("bad span %+v", s)
		}
		if i > 0 && k.Fused[i-1].Start >= s.Start {
			t.Fatalf("spans not sorted: %+v before %+v", k.Fused[i-1], s)
		}
	}
	// The inner loop must hit the deep patterns, not just pairs.
	for _, want := range []string{"aff.ldgf.fmul", "inc", "imov2.cmp.br"} {
		if !names[want] {
			t.Errorf("expected superinstruction %q fused; got %v", want, names)
		}
	}
	if covered*2 < len(k.Code) {
		t.Errorf("fusion covers %d/%d instructions; expected at least half", covered, len(k.Code))
	}
	if bs := BackendSnapshot(); bs.TotalInstrs == 0 || bs.FusedInstrs == 0 {
		t.Errorf("backend fusion counters not accumulated: %+v", bs)
	}
}

func TestDisasmFusedGolden(t *testing.T) {
	k := MustCompile(fusedTestSrc, "syrk_like")
	got := k.Disasm()
	if !strings.Contains(got, "; fuse aff.ldgf.fmul") {
		t.Fatalf("disasm lacks fusion annotations:\n%s", got)
	}
	golden := filepath.Join("testdata", "disasm_fused.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if got != string(want) {
		t.Errorf("fused disasm drifted from %s (UPDATE_GOLDEN=1 to regenerate)\ngot:\n%s", golden, got)
	}
}

// runBoth executes one work-group under both backends and returns the two
// buffer states, stats, and errors.
func runBoth(t *testing.T, k *Kernel, nd NDRange, mkArgs func() []Arg) (bufI, bufC []string, stI, stC Stats, errI, errC error) {
	t.Helper()
	if k.clos == nil {
		t.Fatal("kernel not lowered to closures")
	}
	run := func(be Backend) ([]string, Stats, error) {
		args := mkArgs()
		st, err := k.ExecWorkGroup(nd, [3]int{0, 0, 0}, args, ExecOpts{Backend: be})
		var bufs []string
		for _, a := range args {
			if a.Kind == ArgBuffer {
				bufs = append(bufs, string(a.Buf))
			}
		}
		return bufs, st, err
	}
	bufI, stI, errI = run(BackendInterp)
	bufC, stC, errC = run(BackendClosure)
	return
}

func TestClosureBarrierParity(t *testing.T) {
	k := MustCompile(`
__kernel void rev(__global float* a, int n) {
    __local float tmp[16];
    int l = get_local_id(0);
    int g = get_global_id(0);
    tmp[l] = a[g];
    barrier(CLK_LOCAL_MEM_FENCE);
    a[g] = tmp[15 - l] + 1.0f;
}
`, "rev")
	n := 16
	mkArgs := func() []Arg {
		buf := make([]byte, 4*n)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(float32(i)*0.5))
		}
		return []Arg{BufArg(buf), IntArg(int64(n))}
	}
	bufI, bufC, stI, stC, errI, errC := runBoth(t, k, NewNDRange1D(n, 16), mkArgs)
	if errI != nil || errC != nil {
		t.Fatalf("errors: interp=%v closure=%v", errI, errC)
	}
	if stI != stC {
		t.Fatalf("Stats diverge:\ninterp:  %+v\nclosure: %+v", stI, stC)
	}
	for i := range bufI {
		if bufI[i] != bufC[i] {
			t.Fatalf("buffer %d differs between backends", i)
		}
	}
	if stI.Barriers == 0 {
		t.Fatal("barrier phase not counted")
	}
}

func TestClosureErrorParity(t *testing.T) {
	t.Run("oob", func(t *testing.T) {
		k := MustCompile(`__kernel void f(__global float* a, int n) { a[n] = 1.0f; }`, "f")
		_, _, _, _, errI, errC := runBoth(t, k, NewNDRange1D(1, 1), func() []Arg {
			return []Arg{BufArg(make([]byte, 8)), IntArg(99)}
		})
		if errI == nil || errC == nil || errI.Error() != errC.Error() {
			t.Fatalf("error mismatch:\ninterp:  %v\nclosure: %v", errI, errC)
		}
	})
	t.Run("divzero", func(t *testing.T) {
		k := MustCompile(`__kernel void f(__global int* a, int d) { a[0] = 10 / d; }`, "f")
		_, _, _, _, errI, errC := runBoth(t, k, NewNDRange1D(1, 1), func() []Arg {
			return []Arg{BufArg(make([]byte, 4)), IntArg(0)}
		})
		if errI == nil || errC == nil || errI.Error() != errC.Error() {
			t.Fatalf("error mismatch:\ninterp:  %v\nclosure: %v", errI, errC)
		}
	})
	t.Run("budget", func(t *testing.T) {
		// The closure backend charges the step budget per block, so the
		// reported pc may differ from the interpreter's; error presence and
		// message kind must agree (see fuse.go's equivalence note).
		k := MustCompile(`__kernel void f(__global int* a) { while (true) { a[0] = 1; } }`, "f")
		for _, be := range []Backend{BackendInterp, BackendClosure} {
			_, err := k.ExecWorkGroup(NewNDRange1D(1, 1), [3]int{0, 0, 0},
				[]Arg{BufArg(make([]byte, 4))}, ExecOpts{MaxSteps: 10000, Backend: be})
			if err == nil || !strings.Contains(err.Error(), "instruction budget exceeded") {
				t.Fatalf("%v: budget error not raised: %v", be, err)
			}
		}
	})
}

// TestExecLaunchAllocs guards the scratch/engine pooling: after warm-up,
// repeated sequential launches must not allocate per work-group (wiState,
// memTracker, locals and the closure context all come from the kernel's
// scratch pool).
func TestExecLaunchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	k := MustCompile(fusedTestSrc, "syrk_like")
	const m, n = 8, 8
	a := make([]byte, 4*m*n)
	c := make([]byte, 4*n*n)
	args := []Arg{BufArg(a), BufArg(c), FloatArg(1.5), IntArg(m), IntArg(n)}
	nd := NewNDRange2D(n, n, 4, 4)
	defer SetWorkers(0)
	for _, be := range []Backend{BackendInterp, BackendClosure, BackendWG} {
		SetWorkers(1) // sequential path: the parallel engine's goroutines allocate by design
		run := func() {
			if _, err := k.ExecLaunch(nd, args, ExecOpts{Backend: be}); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm the pools
		if avg := testing.AllocsPerRun(20, run); avg >= 1 {
			t.Errorf("%v: ExecLaunch allocates %.1f allocs/op after warm-up", be, avg)
		}
	}
}
