package vm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Banked step builders for the lockstep engine.
//
// buildWStep is buildStep's whole-group twin: each wstep performs the exact
// per-instruction register writes, memory side effects, and Stats updates
// of its scalar counterpart, looped over every work-item in the set against
// the SoA banks. Order-independent counters (op counts, byte totals, masks)
// are batched per set; per-offset ones (write bounds, deferred/undo logs,
// tracker records) stay inside the item loop. matchWSuper mirrors
// fuse.go's superinstruction patterns with banked bodies, so the wg backend
// keeps the closure backend's decode amortization and adds set-level
// dispatch amortization on top.
//
// When m.full is set the dispatched set is the whole group in ascending
// order, so hot steps take a branch that slices each register's bank once
// and runs a plain range loop — identical semantics and identical
// iteration order, but the compiler can hoist the bounds checks and the
// per-element set indirection disappears.

// buildWStep compiles the instruction at pc into a banked wstep. Control
// flow returns nil (handled by terminators), as does opNop.
func (k *Kernel) buildWStep(pc int) wstep {
	in := k.Code[pc]
	a, b, c := in.A, in.B, in.C
	switch in.Op {
	case opLDI:
		imm := in.IImm
		return func(m *wmach, set []int32) bool {
			ab := int(a) * m.n
			ib := m.ib
			if m.full {
				ra := ib[ab : ab+m.n]
				for t := range ra {
					ra[t] = imm
				}
				return true
			}
			for _, t := range set {
				ib[ab+int(t)] = imm
			}
			return true
		}
	case opLDF:
		imm := in.FImm
		return func(m *wmach, set []int32) bool {
			ab := int(a) * m.n
			fb := m.fb
			if m.full {
				ra := fb[ab : ab+m.n]
				for t := range ra {
					ra[t] = imm
				}
				return true
			}
			for _, t := range set {
				fb[ab+int(t)] = imm
			}
			return true
		}
	case opIMOV:
		return func(m *wmach, set []int32) bool {
			ab, bb := int(a)*m.n, int(b)*m.n
			ib := m.ib
			if m.full {
				copy(ib[ab:ab+m.n], ib[bb:bb+m.n])
				return true
			}
			for _, t := range set {
				ib[ab+int(t)] = ib[bb+int(t)]
			}
			return true
		}
	case opFMOV:
		return func(m *wmach, set []int32) bool {
			ab, bb := int(a)*m.n, int(b)*m.n
			fb := m.fb
			if m.full {
				copy(fb[ab:ab+m.n], fb[bb:bb+m.n])
				return true
			}
			for _, t := range set {
				fb[ab+int(t)] = fb[bb+int(t)]
			}
			return true
		}
	case opIADD:
		return func(m *wmach, set []int32) bool {
			n := m.n
			ab, bb, cb := int(a)*n, int(b)*n, int(c)*n
			ib := m.ib
			if m.full {
				ra, rb, rc := ib[ab:ab+n], ib[bb:bb+n], ib[cb:cb+n]
				for t := range ra {
					ra[t] = rb[t] + rc[t]
				}
				m.st.IntOps += int64(n)
				return true
			}
			for _, t := range set {
				ib[ab+int(t)] = ib[bb+int(t)] + ib[cb+int(t)]
			}
			m.st.IntOps += int64(len(set))
			return true
		}
	case opISUB:
		return func(m *wmach, set []int32) bool {
			n := m.n
			ab, bb, cb := int(a)*n, int(b)*n, int(c)*n
			ib := m.ib
			if m.full {
				ra, rb, rc := ib[ab:ab+n], ib[bb:bb+n], ib[cb:cb+n]
				for t := range ra {
					ra[t] = rb[t] - rc[t]
				}
				m.st.IntOps += int64(n)
				return true
			}
			for _, t := range set {
				ib[ab+int(t)] = ib[bb+int(t)] - ib[cb+int(t)]
			}
			m.st.IntOps += int64(len(set))
			return true
		}
	case opIMUL:
		return func(m *wmach, set []int32) bool {
			n := m.n
			ab, bb, cb := int(a)*n, int(b)*n, int(c)*n
			ib := m.ib
			if m.full {
				ra, rb, rc := ib[ab:ab+n], ib[bb:bb+n], ib[cb:cb+n]
				for t := range ra {
					ra[t] = rb[t] * rc[t]
				}
				m.st.IntOps += int64(n)
				return true
			}
			for _, t := range set {
				ib[ab+int(t)] = ib[bb+int(t)] * ib[cb+int(t)]
			}
			m.st.IntOps += int64(len(set))
			return true
		}
	case opIDIV:
		return func(m *wmach, set []int32) bool {
			ab, bb, cb := int(a)*m.n, int(b)*m.n, int(c)*m.n
			ib := m.ib
			for _, t := range set {
				d := ib[cb+int(t)]
				if d == 0 {
					m.err = &execError{m.k.Name, pc, "integer division by zero"}
					return false
				}
				ib[ab+int(t)] = ib[bb+int(t)] / d
			}
			m.st.IntOps += int64(len(set))
			return true
		}
	case opIMOD:
		return func(m *wmach, set []int32) bool {
			ab, bb, cb := int(a)*m.n, int(b)*m.n, int(c)*m.n
			ib := m.ib
			for _, t := range set {
				d := ib[cb+int(t)]
				if d == 0 {
					m.err = &execError{m.k.Name, pc, "integer modulo by zero"}
					return false
				}
				ib[ab+int(t)] = ib[bb+int(t)] % d
			}
			m.st.IntOps += int64(len(set))
			return true
		}
	case opINEG:
		return func(m *wmach, set []int32) bool {
			ab, bb := int(a)*m.n, int(b)*m.n
			ib := m.ib
			for _, t := range set {
				ib[ab+int(t)] = -ib[bb+int(t)]
			}
			m.st.IntOps += int64(len(set))
			return true
		}
	case opFADD:
		return func(m *wmach, set []int32) bool {
			n := m.n
			ab, bb, cb := int(a)*n, int(b)*n, int(c)*n
			fb := m.fb
			if m.full {
				ra, rb, rc := fb[ab:ab+n], fb[bb:bb+n], fb[cb:cb+n]
				for t := range ra {
					ra[t] = float64(float32(rb[t]) + float32(rc[t]))
				}
				m.st.FloatOps += int64(n)
				return true
			}
			for _, t := range set {
				fb[ab+int(t)] = float64(float32(fb[bb+int(t)]) + float32(fb[cb+int(t)]))
			}
			m.st.FloatOps += int64(len(set))
			return true
		}
	case opFSUB:
		return func(m *wmach, set []int32) bool {
			n := m.n
			ab, bb, cb := int(a)*n, int(b)*n, int(c)*n
			fb := m.fb
			if m.full {
				ra, rb, rc := fb[ab:ab+n], fb[bb:bb+n], fb[cb:cb+n]
				for t := range ra {
					ra[t] = float64(float32(rb[t]) - float32(rc[t]))
				}
				m.st.FloatOps += int64(n)
				return true
			}
			for _, t := range set {
				fb[ab+int(t)] = float64(float32(fb[bb+int(t)]) - float32(fb[cb+int(t)]))
			}
			m.st.FloatOps += int64(len(set))
			return true
		}
	case opFMUL:
		return func(m *wmach, set []int32) bool {
			n := m.n
			ab, bb, cb := int(a)*n, int(b)*n, int(c)*n
			fb := m.fb
			if m.full {
				ra, rb, rc := fb[ab:ab+n], fb[bb:bb+n], fb[cb:cb+n]
				for t := range ra {
					ra[t] = float64(float32(rb[t]) * float32(rc[t]))
				}
				m.st.FloatOps += int64(n)
				return true
			}
			for _, t := range set {
				fb[ab+int(t)] = float64(float32(fb[bb+int(t)]) * float32(fb[cb+int(t)]))
			}
			m.st.FloatOps += int64(len(set))
			return true
		}
	case opFDIV:
		return func(m *wmach, set []int32) bool {
			n := m.n
			ab, bb, cb := int(a)*n, int(b)*n, int(c)*n
			fb := m.fb
			if m.full {
				ra, rb, rc := fb[ab:ab+n], fb[bb:bb+n], fb[cb:cb+n]
				for t := range ra {
					ra[t] = float64(float32(rb[t]) / float32(rc[t]))
				}
				m.st.FloatOps += int64(n)
				return true
			}
			for _, t := range set {
				fb[ab+int(t)] = float64(float32(fb[bb+int(t)]) / float32(fb[cb+int(t)]))
			}
			m.st.FloatOps += int64(len(set))
			return true
		}
	case opFNEG:
		return func(m *wmach, set []int32) bool {
			ab, bb := int(a)*m.n, int(b)*m.n
			fb := m.fb
			for _, t := range set {
				fb[ab+int(t)] = -fb[bb+int(t)]
			}
			m.st.FloatOps += int64(len(set))
			return true
		}
	case opI2F:
		return func(m *wmach, set []int32) bool {
			ab, bb := int(a)*m.n, int(b)*m.n
			ib, fb := m.ib, m.fb
			for _, t := range set {
				fb[ab+int(t)] = float64(float32(ib[bb+int(t)]))
			}
			m.st.IntOps += int64(len(set))
			return true
		}
	case opF2I:
		return func(m *wmach, set []int32) bool {
			ab, bb := int(a)*m.n, int(b)*m.n
			ib, fb := m.ib, m.fb
			for _, t := range set {
				f := fb[bb+int(t)]
				if math.IsNaN(f) {
					f = 0
				}
				ib[ab+int(t)] = int64(f) // C truncation toward zero
			}
			m.st.IntOps += int64(len(set))
			return true
		}
	case opILT, opILE, opIGT, opIGE, opIEQ, opINE:
		cf := intCmpFn(in.Op)
		return func(m *wmach, set []int32) bool {
			n := m.n
			ab, bb, cb := int(a)*n, int(b)*n, int(c)*n
			ib := m.ib
			if m.full {
				ra, rb, rc := ib[ab:ab+n], ib[bb:bb+n], ib[cb:cb+n]
				for t := range ra {
					ra[t] = b2i(cf(rb[t], rc[t]))
				}
				m.st.IntOps += int64(n)
				return true
			}
			for _, t := range set {
				ib[ab+int(t)] = b2i(cf(ib[bb+int(t)], ib[cb+int(t)]))
			}
			m.st.IntOps += int64(len(set))
			return true
		}
	case opFLT, opFLE, opFGT, opFGE, opFEQ, opFNE:
		cf := floatCmpFn(in.Op)
		return func(m *wmach, set []int32) bool {
			n := m.n
			ab, bb, cb := int(a)*n, int(b)*n, int(c)*n
			ib, fb := m.ib, m.fb
			if m.full {
				ra, rb, rc := ib[ab:ab+n], fb[bb:bb+n], fb[cb:cb+n]
				for t := range ra {
					ra[t] = b2i(cf(rb[t], rc[t]))
				}
				m.st.FloatOps += int64(n)
				return true
			}
			for _, t := range set {
				ib[ab+int(t)] = b2i(cf(fb[bb+int(t)], fb[cb+int(t)]))
			}
			m.st.FloatOps += int64(len(set))
			return true
		}
	case opNOTB:
		return func(m *wmach, set []int32) bool {
			ab, bb := int(a)*m.n, int(b)*m.n
			ib := m.ib
			for _, t := range set {
				ib[ab+int(t)] = b2i(ib[bb+int(t)] == 0)
			}
			m.st.IntOps += int64(len(set))
			return true
		}
	case opLDGF:
		return k.wstepLoadGlobal(pc, in, true)
	case opLDGI:
		return k.wstepLoadGlobal(pc, in, false)
	case opSTGF:
		return k.wstepStoreGlobal(pc, in, true)
	case opSTGI:
		return k.wstepStoreGlobal(pc, in, false)
	case opLDLF, opLDLI, opSTLF, opSTLI:
		return k.wstepSlab(pc, in, false)
	case opLDPF, opLDPI, opSTPF, opSTPI:
		return k.wstepSlab(pc, in, true)
	case opGID:
		return func(m *wmach, set []int32) bool {
			ab, bb := int(a)*m.n, int(b)*m.n
			ib := m.ib
			for _, t := range set {
				var v int64
				switch ib[bb+int(t)] {
				case 0:
					v = int64(m.group[0])*int64(m.nd.LocalSize[0]) + m.lid0[t]
				case 1:
					v = int64(m.group[1])*int64(m.nd.LocalSize[1]) + m.lid1[t]
				case 2:
					v = int64(m.group[2])*int64(m.nd.LocalSize[2]) + m.lid2[t]
				}
				ib[ab+int(t)] = v
			}
			m.st.IntOps += int64(len(set))
			return true
		}
	case opLID:
		return func(m *wmach, set []int32) bool {
			ab, bb := int(a)*m.n, int(b)*m.n
			ib := m.ib
			for _, t := range set {
				var v int64
				switch ib[bb+int(t)] {
				case 0:
					v = m.lid0[t]
				case 1:
					v = m.lid1[t]
				case 2:
					v = m.lid2[t]
				}
				ib[ab+int(t)] = v
			}
			m.st.IntOps += int64(len(set))
			return true
		}
	case opGRP:
		return func(m *wmach, set []int32) bool {
			ab, bb := int(a)*m.n, int(b)*m.n
			ib := m.ib
			for _, t := range set {
				ib[ab+int(t)] = cdim(m.group, ib[bb+int(t)])
			}
			m.st.IntOps += int64(len(set))
			return true
		}
	case opNGR:
		return func(m *wmach, set []int32) bool {
			ab, bb := int(a)*m.n, int(b)*m.n
			ib := m.ib
			for _, t := range set {
				d := ib[bb+int(t)]
				if d < 0 || d > 2 {
					ib[ab+int(t)] = 1
				} else {
					ib[ab+int(t)] = int64(m.nd.NumGroups[d])
				}
			}
			m.st.IntOps += int64(len(set))
			return true
		}
	case opLSZ:
		return func(m *wmach, set []int32) bool {
			ab, bb := int(a)*m.n, int(b)*m.n
			ib := m.ib
			for _, t := range set {
				d := ib[bb+int(t)]
				if d < 0 || d > 2 {
					ib[ab+int(t)] = 1
				} else {
					ib[ab+int(t)] = int64(m.nd.LocalSize[d])
				}
			}
			m.st.IntOps += int64(len(set))
			return true
		}
	case opGSZ:
		return func(m *wmach, set []int32) bool {
			ab, bb := int(a)*m.n, int(b)*m.n
			ib := m.ib
			for _, t := range set {
				d := ib[bb+int(t)]
				if d < 0 || d > 2 {
					ib[ab+int(t)] = 1
				} else {
					ib[ab+int(t)] = int64(m.nd.NumGroups[d] * m.nd.LocalSize[d])
				}
			}
			m.st.IntOps += int64(len(set))
			return true
		}
	case opGOFF:
		return func(m *wmach, set []int32) bool {
			ab := int(a) * m.n
			ib := m.ib
			for _, t := range set {
				ib[ab+int(t)] = 0
			}
			return true
		}
	case opWDIM:
		return func(m *wmach, set []int32) bool {
			ab := int(a) * m.n
			ib := m.ib
			for _, t := range set {
				ib[ab+int(t)] = int64(m.nd.Dims)
			}
			return true
		}
	case opSQRT:
		return func(m *wmach, set []int32) bool {
			ab, bb := int(a)*m.n, int(b)*m.n
			fb := m.fb
			for _, t := range set {
				fb[ab+int(t)] = float64(float32(math.Sqrt(fb[bb+int(t)])))
			}
			m.st.SpecialOps += int64(len(set))
			return true
		}
	case opFABS:
		return func(m *wmach, set []int32) bool {
			ab, bb := int(a)*m.n, int(b)*m.n
			fb := m.fb
			for _, t := range set {
				fb[ab+int(t)] = math.Abs(fb[bb+int(t)])
			}
			m.st.SpecialOps += int64(len(set))
			return true
		}
	case opEXP:
		return func(m *wmach, set []int32) bool {
			ab, bb := int(a)*m.n, int(b)*m.n
			fb := m.fb
			for _, t := range set {
				fb[ab+int(t)] = float64(float32(math.Exp(fb[bb+int(t)])))
			}
			m.st.SpecialOps += int64(len(set))
			return true
		}
	case opLOG:
		return func(m *wmach, set []int32) bool {
			ab, bb := int(a)*m.n, int(b)*m.n
			fb := m.fb
			for _, t := range set {
				fb[ab+int(t)] = float64(float32(math.Log(fb[bb+int(t)])))
			}
			m.st.SpecialOps += int64(len(set))
			return true
		}
	case opFLOOR:
		return func(m *wmach, set []int32) bool {
			ab, bb := int(a)*m.n, int(b)*m.n
			fb := m.fb
			for _, t := range set {
				fb[ab+int(t)] = math.Floor(fb[bb+int(t)])
			}
			m.st.SpecialOps += int64(len(set))
			return true
		}
	case opCEIL:
		return func(m *wmach, set []int32) bool {
			ab, bb := int(a)*m.n, int(b)*m.n
			fb := m.fb
			for _, t := range set {
				fb[ab+int(t)] = math.Ceil(fb[bb+int(t)])
			}
			m.st.SpecialOps += int64(len(set))
			return true
		}
	case opPOW:
		return func(m *wmach, set []int32) bool {
			ab, bb, cb := int(a)*m.n, int(b)*m.n, int(c)*m.n
			fb := m.fb
			for _, t := range set {
				fb[ab+int(t)] = float64(float32(math.Pow(fb[bb+int(t)], fb[cb+int(t)])))
			}
			m.st.SpecialOps += int64(len(set))
			return true
		}
	case opFMIN:
		return func(m *wmach, set []int32) bool {
			ab, bb, cb := int(a)*m.n, int(b)*m.n, int(c)*m.n
			fb := m.fb
			for _, t := range set {
				fb[ab+int(t)] = math.Min(fb[bb+int(t)], fb[cb+int(t)])
			}
			m.st.FloatOps += int64(len(set))
			return true
		}
	case opFMAX:
		return func(m *wmach, set []int32) bool {
			ab, bb, cb := int(a)*m.n, int(b)*m.n, int(c)*m.n
			fb := m.fb
			for _, t := range set {
				fb[ab+int(t)] = math.Max(fb[bb+int(t)], fb[cb+int(t)])
			}
			m.st.FloatOps += int64(len(set))
			return true
		}
	case opIMIN:
		return func(m *wmach, set []int32) bool {
			ab, bb, cb := int(a)*m.n, int(b)*m.n, int(c)*m.n
			ib := m.ib
			for _, t := range set {
				x, y := ib[bb+int(t)], ib[cb+int(t)]
				if y < x {
					x = y
				}
				ib[ab+int(t)] = x
			}
			m.st.IntOps += int64(len(set))
			return true
		}
	case opIMAX:
		return func(m *wmach, set []int32) bool {
			ab, bb, cb := int(a)*m.n, int(b)*m.n, int(c)*m.n
			ib := m.ib
			for _, t := range set {
				x, y := ib[bb+int(t)], ib[cb+int(t)]
				if y > x {
					x = y
				}
				ib[ab+int(t)] = x
			}
			m.st.IntOps += int64(len(set))
			return true
		}
	case opIABS:
		return func(m *wmach, set []int32) bool {
			ab, bb := int(a)*m.n, int(b)*m.n
			ib := m.ib
			for _, t := range set {
				v := ib[bb+int(t)]
				if v < 0 {
					v = -v
				}
				ib[ab+int(t)] = v
			}
			m.st.IntOps += int64(len(set))
			return true
		}
	}
	return nil
}

// wstepLoadGlobal compiles opLDGF/opLDGI for the whole set.
func (k *Kernel) wstepLoadGlobal(pc int, in Instr, isF bool) wstep {
	a, slot, c, memID := in.A, in.B, in.C, in.D
	name := k.Params[slot].Name
	return func(m *wmach, set []int32) bool {
		n := m.n
		ib := m.ib
		ab, cb := int(a)*n, int(c)*n
		buf := m.args[slot].Buf
		cnt := int64(len(set))
		if m.full && m.def == nil {
			// Uniform full-group fast path: subslice banks, columnar access
			// recording, no deferred-write probes.
			cnt = int64(n)
			sl := ib[cb : cb+n]
			rec := m.rec
			var col []int32
			if m.colMode && memID >= 0 {
				col = m.colFor(memID)
			}
			if isF {
				rl := m.fb[ab : ab+n]
				for t := range sl {
					off, err := byteOff(sl[t], len(buf))
					if err != nil {
						m.err = &execError{m.k.Name, pc, fmt.Sprintf("load %s: %v", name, err)}
						return false
					}
					rl[t] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[off:])))
					if col != nil {
						col[t] = off
					} else if memID >= 0 {
						rec[t] = append(rec[t], wgAcc{id: memID, off: off})
					}
				}
			} else {
				rl := ib[ab : ab+n]
				for t := range sl {
					off, err := byteOff(sl[t], len(buf))
					if err != nil {
						m.err = &execError{m.k.Name, pc, fmt.Sprintf("load %s: %v", name, err)}
						return false
					}
					rl[t] = int64(int32(binary.LittleEndian.Uint32(buf[off:])))
					if col != nil {
						col[t] = off
					} else if memID >= 0 {
						rec[t] = append(rec[t], wgAcc{id: memID, off: off})
					}
				}
			}
		} else {
			for _, t := range set {
				off, err := byteOff(ib[cb+int(t)], len(buf))
				if err != nil {
					m.err = &execError{m.k.Name, pc, fmt.Sprintf("load %s: %v", name, err)}
					return false
				}
				bits := binary.LittleEndian.Uint32(buf[off:])
				if d := m.def; d != nil {
					d.noteRead(slot, off)
					if v, ok := d.lookup(slot, off); ok {
						bits = v
					}
				}
				if isF {
					m.fb[ab+int(t)] = float64(math.Float32frombits(bits))
				} else {
					ib[ab+int(t)] = int64(int32(bits))
				}
				m.recAcc(t, memID, off)
			}
		}
		st := m.st
		st.noteGlobalRead(slot)
		st.GlobalLoads += cnt
		st.GlobalLoadBytes += 4 * cnt
		return true
	}
}

// wstepStoreGlobal compiles opSTGF/opSTGI for the whole set, including the
// deferred-write and undo-log paths.
func (k *Kernel) wstepStoreGlobal(pc int, in Instr, isF bool) wstep {
	a, slot, c, memID := in.A, in.B, in.C, in.D
	name := k.Params[slot].Name
	return func(m *wmach, set []int32) bool {
		n := m.n
		ib := m.ib
		ab, cb := int(a)*n, int(c)*n
		buf := m.args[slot].Buf
		st := m.st
		cnt := int64(len(set))
		if m.full && m.def == nil {
			// Uniform full-group fast path: subslice banks, columnar access
			// recording; the undo log is handled inline.
			cnt = int64(n)
			sl := ib[cb : cb+n]
			rec := m.rec
			var col []int32
			if m.colMode && memID >= 0 {
				col = m.colFor(memID)
			}
			u := m.undo
			for t := range sl {
				off, err := byteOff(sl[t], len(buf))
				if err != nil {
					m.err = &execError{m.k.Name, pc, fmt.Sprintf("store %s: %v", name, err)}
					return false
				}
				var bits uint32
				if isF {
					bits = math.Float32bits(float32(m.fb[ab+t]))
				} else {
					bits = uint32(int32(ib[ab+t]))
				}
				if u != nil {
					var old [4]byte
					copy(old[:], buf[off:off+4])
					u.recs = append(u.recs, UndoRecord{Buf: buf, Off: int(off), Old: old})
				}
				binary.LittleEndian.PutUint32(buf[off:], bits)
				st.noteGlobalWrite(slot, off)
				if col != nil {
					col[t] = off
				} else if memID >= 0 {
					rec[t] = append(rec[t], wgAcc{id: memID, off: off})
				}
			}
		} else {
			for _, t := range set {
				off, err := byteOff(ib[cb+int(t)], len(buf))
				if err != nil {
					m.err = &execError{m.k.Name, pc, fmt.Sprintf("store %s: %v", name, err)}
					return false
				}
				var bits uint32
				if isF {
					bits = math.Float32bits(float32(m.fb[ab+int(t)]))
				} else {
					bits = uint32(int32(ib[ab+int(t)]))
				}
				if d := m.def; d != nil {
					d.store(slot, off, bits)
				} else {
					if u := m.undo; u != nil {
						var old [4]byte
						copy(old[:], buf[off:off+4])
						u.recs = append(u.recs, UndoRecord{Buf: buf, Off: int(off), Old: old})
					}
					binary.LittleEndian.PutUint32(buf[off:], bits)
				}
				st.noteGlobalWrite(slot, off)
				m.recAcc(t, memID, off)
			}
		}
		st.GlobalStores += cnt
		st.GlobalStoreBytes += 4 * cnt
		return true
	}
}

// wstepSlab compiles local-array and private-array loads and stores. Local
// arrays are shared by the group; private arrays give each item its own
// slab of the flattened per-array bank.
func (k *Kernel) wstepSlab(pc int, in Instr, priv bool) wstep {
	a, slot, c := in.A, in.B, in.C
	space := "local"
	arrs := k.LocalArrs
	if priv {
		space = "private"
		arrs = k.PrivArrs
	}
	name := arrs[slot].Name
	isLoad := in.Op == opLDLF || in.Op == opLDLI || in.Op == opLDPF || in.Op == opLDPI
	isF := in.Op == opLDLF || in.Op == opSTLF || in.Op == opLDPF || in.Op == opSTPF
	what := "store"
	if isLoad {
		what = "load"
	}
	return func(m *wmach, set []int32) bool {
		n := m.n
		ib := m.ib
		ab, cb := int(a)*n, int(c)*n
		var buf []byte
		var sz int
		if priv {
			buf = m.priv[slot]
			sz = m.privSz[slot]
		} else {
			buf = m.locals[slot]
			sz = len(buf)
		}
		for _, t := range set {
			slab := buf
			if priv {
				slab = buf[int(t)*sz : (int(t)+1)*sz]
			}
			off, err := byteOff(ib[cb+int(t)], sz)
			if err != nil {
				m.err = &execError{m.k.Name, pc, fmt.Sprintf("%s %s %s: %v", space, what, name, err)}
				return false
			}
			switch {
			case isLoad && isF:
				m.fb[ab+int(t)] = float64(math.Float32frombits(binary.LittleEndian.Uint32(slab[off:])))
			case isLoad:
				ib[ab+int(t)] = int64(int32(binary.LittleEndian.Uint32(slab[off:])))
			case isF:
				binary.LittleEndian.PutUint32(slab[off:], math.Float32bits(float32(m.fb[ab+int(t)])))
			default:
				binary.LittleEndian.PutUint32(slab[off:], uint32(int32(ib[ab+int(t)])))
			}
		}
		m.st.LocalAccesses += int64(len(set))
		return true
	}
}

// matchWSuper is matchSuper's banked twin: the same opcode-shape patterns,
// fused into single set-looping steps. It returns the fused wstep and the
// number of instructions consumed.
func (k *Kernel) matchWSuper(pc, end int) (wstep, int) {
	code := k.Code
	switch {
	case k.opsAt(pc, end, opIMOV, opIMOV, opIMUL, opIMOV, opIADD, opLDGF, opFMUL, opFADD):
		return k.wsuperAffLoad(pc, true, true), 8
	case k.opsAt(pc, end, opIMOV, opIMOV, opIMUL, opIMOV, opIADD, opLDGF, opFMUL):
		return k.wsuperAffLoad(pc, true, false), 7
	case k.opsAt(pc, end, opIMOV, opIMOV, opIMUL, opIMOV, opIADD, opLDGF):
		return k.wsuperAffLoad(pc, false, false), 6
	case k.opsAt(pc, end, opIMOV, opIMOV, opIMUL, opIMOV, opIADD, opLDGI):
		return k.wsuperAffLoad(pc, false, false), 6
	case k.opsAt(pc, end, opIMOV, opIMOV, opIMUL, opIMOV, opIADD):
		i0, i1, mul, i3, add := code[pc], code[pc+1], code[pc+2], code[pc+3], code[pc+4]
		a0, b0, a1, b1 := int(i0.A), int(i0.B), int(i1.A), int(i1.B)
		ma, mb, mc := int(mul.A), int(mul.B), int(mul.C)
		a3, b3 := int(i3.A), int(i3.B)
		aa, ab, ac := int(add.A), int(add.B), int(add.C)
		return func(m *wmach, set []int32) bool {
			n := m.n
			ib := m.ib
			if m.full {
				r0, s0 := ib[a0*n:a0*n+n], ib[b0*n:b0*n+n]
				r1, s1 := ib[a1*n:a1*n+n], ib[b1*n:b1*n+n]
				rm, sm, tm := ib[ma*n:ma*n+n], ib[mb*n:mb*n+n], ib[mc*n:mc*n+n]
				r3, s3 := ib[a3*n:a3*n+n], ib[b3*n:b3*n+n]
				rA, sA, tA := ib[aa*n:aa*n+n], ib[ab*n:ab*n+n], ib[ac*n:ac*n+n]
				for t := range r0 {
					r0[t] = s0[t]
					r1[t] = s1[t]
					rm[t] = sm[t] * tm[t]
					r3[t] = s3[t]
					rA[t] = sA[t] + tA[t]
				}
				m.st.IntOps += 2 * int64(n)
				return true
			}
			for _, ti := range set {
				t := int(ti)
				ib[a0*n+t] = ib[b0*n+t]
				ib[a1*n+t] = ib[b1*n+t]
				ib[ma*n+t] = ib[mb*n+t] * ib[mc*n+t]
				ib[a3*n+t] = ib[b3*n+t]
				ib[aa*n+t] = ib[ab*n+t] + ib[ac*n+t]
			}
			m.st.IntOps += 2 * int64(len(set))
			return true
		}, 5
	case k.opsAt(pc, end, opIMOV, opLDI, opIADD, opIMOV):
		i0, ldi, add, i3 := code[pc], code[pc+1], code[pc+2], code[pc+3]
		a0, b0 := int(i0.A), int(i0.B)
		la, imm := int(ldi.A), ldi.IImm
		aa, ab, ac := int(add.A), int(add.B), int(add.C)
		a3, b3 := int(i3.A), int(i3.B)
		return func(m *wmach, set []int32) bool {
			n := m.n
			ib := m.ib
			if m.full {
				r0, s0 := ib[a0*n:a0*n+n], ib[b0*n:b0*n+n]
				rl := ib[la*n : la*n+n]
				rA, sA, tA := ib[aa*n:aa*n+n], ib[ab*n:ab*n+n], ib[ac*n:ac*n+n]
				r3, s3 := ib[a3*n:a3*n+n], ib[b3*n:b3*n+n]
				for t := range r0 {
					r0[t] = s0[t]
					rl[t] = imm
					rA[t] = sA[t] + tA[t]
					r3[t] = s3[t]
				}
				m.st.IntOps += int64(n)
				return true
			}
			for _, ti := range set {
				t := int(ti)
				ib[a0*n+t] = ib[b0*n+t]
				ib[la*n+t] = imm
				ib[aa*n+t] = ib[ab*n+t] + ib[ac*n+t]
				ib[a3*n+t] = ib[b3*n+t]
			}
			m.st.IntOps += int64(len(set))
			return true
		}, 4
	case k.opsAt(pc, end, opLDI, opGID, opIMOV):
		ldi, gid, mov := code[pc], code[pc+1], code[pc+2]
		la, imm := int(ldi.A), ldi.IImm
		ga, gb := int(gid.A), int(gid.B)
		mva, mvb := int(mov.A), int(mov.B)
		return func(m *wmach, set []int32) bool {
			n := m.n
			ib := m.ib
			for _, ti := range set {
				t := int(ti)
				ib[la*n+t] = imm
				d := ib[gb*n+t]
				var v int64
				switch d {
				case 0:
					v = int64(m.group[0])*int64(m.nd.LocalSize[0]) + m.lid0[t]
				case 1:
					v = int64(m.group[1])*int64(m.nd.LocalSize[1]) + m.lid1[t]
				case 2:
					v = int64(m.group[2])*int64(m.nd.LocalSize[2]) + m.lid2[t]
				}
				ib[ga*n+t] = v
				ib[mva*n+t] = ib[mvb*n+t]
			}
			m.st.IntOps += int64(len(set))
			return true
		}, 3
	case k.opsAt(pc, end, opLDI, opGID):
		ldi, gid := code[pc], code[pc+1]
		la, imm := int(ldi.A), ldi.IImm
		ga, gb := int(gid.A), int(gid.B)
		return func(m *wmach, set []int32) bool {
			n := m.n
			ib := m.ib
			for _, ti := range set {
				t := int(ti)
				ib[la*n+t] = imm
				d := ib[gb*n+t]
				var v int64
				switch d {
				case 0:
					v = int64(m.group[0])*int64(m.nd.LocalSize[0]) + m.lid0[t]
				case 1:
					v = int64(m.group[1])*int64(m.nd.LocalSize[1]) + m.lid1[t]
				case 2:
					v = int64(m.group[2])*int64(m.nd.LocalSize[2]) + m.lid2[t]
				}
				ib[ga*n+t] = v
			}
			m.st.IntOps += int64(len(set))
			return true
		}, 2
	case k.opsAt(pc, end, opLDGF, opFMUL):
		return k.wsuperLoadFMul(pc), 2
	case k.opsAt(pc, end, opFMUL, opFADD):
		fm, fa2 := code[pc], code[pc+1]
		ma, mb, mc := int(fm.A), int(fm.B), int(fm.C)
		aa, ab, ac := int(fa2.A), int(fa2.B), int(fa2.C)
		return func(m *wmach, set []int32) bool {
			n := m.n
			fb := m.fb
			if m.full {
				rm, sm, tm := fb[ma*n:ma*n+n], fb[mb*n:mb*n+n], fb[mc*n:mc*n+n]
				rA, sA, tA := fb[aa*n:aa*n+n], fb[ab*n:ab*n+n], fb[ac*n:ac*n+n]
				for t := range rm {
					rm[t] = float64(float32(sm[t]) * float32(tm[t]))
					rA[t] = float64(float32(sA[t]) + float32(tA[t]))
				}
				m.st.FloatOps += 2 * int64(n)
				return true
			}
			for _, ti := range set {
				t := int(ti)
				fb[ma*n+t] = float64(float32(fb[mb*n+t]) * float32(fb[mc*n+t]))
				fb[aa*n+t] = float64(float32(fb[ab*n+t]) + float32(fb[ac*n+t]))
			}
			m.st.FloatOps += 2 * int64(len(set))
			return true
		}, 2
	case k.opsAt(pc, end, opFADD, opSTGF):
		fa2 := code[pc]
		aa, ab, ac := int(fa2.A), int(fa2.B), int(fa2.C)
		st := k.buildWStep(pc + 1)
		return func(m *wmach, set []int32) bool {
			n := m.n
			fb := m.fb
			if m.full {
				rA, sA, tA := fb[aa*n:aa*n+n], fb[ab*n:ab*n+n], fb[ac*n:ac*n+n]
				for t := range rA {
					rA[t] = float64(float32(sA[t]) + float32(tA[t]))
				}
				m.st.FloatOps += int64(n)
				return st(m, set)
			}
			for _, ti := range set {
				t := int(ti)
				fb[aa*n+t] = float64(float32(fb[ab*n+t]) + float32(fb[ac*n+t]))
			}
			m.st.FloatOps += int64(len(set))
			return st(m, set)
		}, 2
	case k.opsAt(pc, end, opFMUL, opSTGF):
		fm := code[pc]
		ma, mb, mc := int(fm.A), int(fm.B), int(fm.C)
		st := k.buildWStep(pc + 1)
		return func(m *wmach, set []int32) bool {
			n := m.n
			fb := m.fb
			if m.full {
				rm, sm, tm := fb[ma*n:ma*n+n], fb[mb*n:mb*n+n], fb[mc*n:mc*n+n]
				for t := range rm {
					rm[t] = float64(float32(sm[t]) * float32(tm[t]))
				}
				m.st.FloatOps += int64(n)
				return st(m, set)
			}
			for _, ti := range set {
				t := int(ti)
				fb[ma*n+t] = float64(float32(fb[mb*n+t]) * float32(fb[mc*n+t]))
			}
			m.st.FloatOps += int64(len(set))
			return st(m, set)
		}, 2
	case k.opsAt(pc, end, opIMOV, opIMOV) && pc+2 < end && isIntCmp(code[pc+2].Op):
		m0, m1, cmp := code[pc], code[pc+1], code[pc+2]
		a0, b0, a1, b1 := int(m0.A), int(m0.B), int(m1.A), int(m1.B)
		ca, cb, cc := int(cmp.A), int(cmp.B), int(cmp.C)
		cf := intCmpFn(cmp.Op)
		return func(m *wmach, set []int32) bool {
			n := m.n
			ib := m.ib
			if m.full {
				r0, s0 := ib[a0*n:a0*n+n], ib[b0*n:b0*n+n]
				r1, s1 := ib[a1*n:a1*n+n], ib[b1*n:b1*n+n]
				rc2, sc, tc := ib[ca*n:ca*n+n], ib[cb*n:cb*n+n], ib[cc*n:cc*n+n]
				for t := range r0 {
					r0[t] = s0[t]
					r1[t] = s1[t]
					rc2[t] = b2i(cf(sc[t], tc[t]))
				}
				m.st.IntOps += int64(n)
				return true
			}
			for _, ti := range set {
				t := int(ti)
				ib[a0*n+t] = ib[b0*n+t]
				ib[a1*n+t] = ib[b1*n+t]
				ib[ca*n+t] = b2i(cf(ib[cb*n+t], ib[cc*n+t]))
			}
			m.st.IntOps += int64(len(set))
			return true
		}, 3
	}
	return nil, 0
}

// wsuperAffLoad is superAffLoad's banked twin: affine index materialization
// fused with the indexed global load and optionally the multiply/accumulate
// consuming it, looped over the set.
func (k *Kernel) wsuperAffLoad(pc int, withFMul, withFAdd bool) wstep {
	code := k.Code
	i0, i1, mul, i3, add := code[pc], code[pc+1], code[pc+2], code[pc+3], code[pc+4]
	a0, b0, a1, b1 := int(i0.A), int(i0.B), int(i1.A), int(i1.B)
	ma, mb, mc := int(mul.A), int(mul.B), int(mul.C)
	a3, b3 := int(i3.A), int(i3.B)
	aa, ab, ac := int(add.A), int(add.B), int(add.C)
	ld := code[pc+5]
	ldPC := pc + 5
	la, slot, memID := int(ld.A), ld.B, ld.D
	isF := ld.Op == opLDGF
	name := k.Params[slot].Name
	kname := k.Name
	var readMask uint64
	if slot < 64 {
		readMask = 1 << uint(slot)
	}
	var fa, fbr, fc, ga, gb, gc int
	if withFMul {
		fm := code[pc+6]
		fa, fbr, fc = int(fm.A), int(fm.B), int(fm.C)
	}
	if withFAdd {
		fad := code[pc+7]
		ga, gb, gc = int(fad.A), int(fad.B), int(fad.C)
	}
	return func(m *wmach, set []int32) bool {
		n := m.n
		ib, fb := m.ib, m.fb
		buf := m.args[slot].Buf
		def := m.def
		cnt := int64(len(set))
		if m.full && isF && def == nil {
			// Uniform full-group fast path for the float load (the matmul
			// inner loop): banks become subslices hoisted out of the item
			// loop, and no deferred-write probes are needed.
			cnt = int64(n)
			r0, s0 := ib[a0*n:a0*n+n], ib[b0*n:b0*n+n]
			r1, s1 := ib[a1*n:a1*n+n], ib[b1*n:b1*n+n]
			rm, sm, tm := ib[ma*n:ma*n+n], ib[mb*n:mb*n+n], ib[mc*n:mc*n+n]
			r3, s3 := ib[a3*n:a3*n+n], ib[b3*n:b3*n+n]
			rA, sA, tA := ib[aa*n:aa*n+n], ib[ab*n:ab*n+n], ib[ac*n:ac*n+n]
			rl := fb[la*n : la*n+n]
			var rf, sf, tf, rg, sg, tg []float64
			if withFMul {
				rf, sf, tf = fb[fa*n:fa*n+n], fb[fbr*n:fbr*n+n], fb[fc*n:fc*n+n]
			}
			if withFAdd {
				rg, sg, tg = fb[ga*n:ga*n+n], fb[gb*n:gb*n+n], fb[gc*n:gc*n+n]
			}
			rec := m.rec
			var col []int32
			if m.colMode && memID >= 0 {
				col = m.colFor(memID)
			}
			for t := range r0 {
				r0[t] = s0[t]
				r1[t] = s1[t]
				rm[t] = sm[t] * tm[t]
				r3[t] = s3[t]
				idx := sA[t] + tA[t]
				rA[t] = idx
				off := idx * 4
				if idx < 0 || off+4 > int64(len(buf)) {
					m.err = &execError{kname, ldPC, fmt.Sprintf("load %s: index %d out of range (buffer %d bytes)", name, idx, len(buf))}
					return false
				}
				rl[t] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[off:])))
				if col != nil {
					col[t] = int32(off)
				} else if memID >= 0 {
					rec[t] = append(rec[t], wgAcc{id: memID, off: int32(off)})
				}
				if withFMul {
					rf[t] = float64(float32(sf[t]) * float32(tf[t]))
					if withFAdd {
						rg[t] = float64(float32(sg[t]) + float32(tg[t]))
					}
				}
			}
		} else {
			for _, ti := range set {
				t := int(ti)
				ib[a0*n+t] = ib[b0*n+t]
				ib[a1*n+t] = ib[b1*n+t]
				ib[ma*n+t] = ib[mb*n+t] * ib[mc*n+t]
				ib[a3*n+t] = ib[b3*n+t]
				idx := ib[ab*n+t] + ib[ac*n+t]
				ib[aa*n+t] = idx
				off := idx * 4
				if idx < 0 || off+4 > int64(len(buf)) {
					m.err = &execError{kname, ldPC, fmt.Sprintf("load %s: index %d out of range (buffer %d bytes)", name, idx, len(buf))}
					return false
				}
				bits := binary.LittleEndian.Uint32(buf[off:])
				if def != nil {
					def.noteRead(slot, int32(off))
					if v, ok := def.lookup(slot, int32(off)); ok {
						bits = v
					}
				}
				if isF {
					fb[la*n+t] = float64(math.Float32frombits(bits))
				} else {
					ib[la*n+t] = int64(int32(bits))
				}
				m.recAcc(ti, memID, int32(off))
				if withFMul {
					fb[fa*n+t] = float64(float32(fb[fbr*n+t]) * float32(fb[fc*n+t]))
					if withFAdd {
						fb[ga*n+t] = float64(float32(fb[gb*n+t]) + float32(fb[gc*n+t]))
					}
				}
			}
			cnt = int64(len(set))
		}
		st := m.st
		st.IntOps += 2 * cnt
		st.ParamReadMask |= readMask
		st.GlobalLoads += cnt
		st.GlobalLoadBytes += 4 * cnt
		if withFAdd {
			st.FloatOps += 2 * cnt
		} else if withFMul {
			st.FloatOps += cnt
		}
		return true
	}
}

// wsuperLoadFMul inlines an indexed float load and the multiply consuming
// it, looped over the set.
func (k *Kernel) wsuperLoadFMul(pc int) wstep {
	ld, fm := k.Code[pc], k.Code[pc+1]
	la, slot, lc, memID := int(ld.A), ld.B, int(ld.C), ld.D
	fa, fbr, fc := int(fm.A), int(fm.B), int(fm.C)
	name := k.Params[slot].Name
	kname := k.Name
	var readMask uint64
	if slot < 64 {
		readMask = 1 << uint(slot)
	}
	return func(m *wmach, set []int32) bool {
		n := m.n
		ib, fb := m.ib, m.fb
		buf := m.args[slot].Buf
		def := m.def
		cnt := int64(len(set))
		if m.full && def == nil {
			cnt = int64(n)
			sl := ib[lc*n : lc*n+n]
			rl := fb[la*n : la*n+n]
			rf, sf, tf := fb[fa*n:fa*n+n], fb[fbr*n:fbr*n+n], fb[fc*n:fc*n+n]
			rec := m.rec
			var col []int32
			if m.colMode && memID >= 0 {
				col = m.colFor(memID)
			}
			for t := range sl {
				idx := sl[t]
				off := idx * 4
				if idx < 0 || off+4 > int64(len(buf)) {
					m.err = &execError{kname, pc, fmt.Sprintf("load %s: index %d out of range (buffer %d bytes)", name, idx, len(buf))}
					return false
				}
				rl[t] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[off:])))
				if col != nil {
					col[t] = int32(off)
				} else if memID >= 0 {
					rec[t] = append(rec[t], wgAcc{id: memID, off: int32(off)})
				}
				rf[t] = float64(float32(sf[t]) * float32(tf[t]))
			}
		} else {
			for _, ti := range set {
				t := int(ti)
				idx := ib[lc*n+t]
				off := idx * 4
				if idx < 0 || off+4 > int64(len(buf)) {
					m.err = &execError{kname, pc, fmt.Sprintf("load %s: index %d out of range (buffer %d bytes)", name, idx, len(buf))}
					return false
				}
				bits := binary.LittleEndian.Uint32(buf[off:])
				if def != nil {
					def.noteRead(slot, int32(off))
					if v, ok := def.lookup(slot, int32(off)); ok {
						bits = v
					}
				}
				fb[la*n+t] = float64(math.Float32frombits(bits))
				m.recAcc(ti, memID, int32(off))
				fb[fa*n+t] = float64(float32(fb[fbr*n+t]) * float32(fb[fc*n+t]))
			}
		}
		st := m.st
		st.ParamReadMask |= readMask
		st.GlobalLoads += cnt
		st.GlobalLoadBytes += 4 * cnt
		st.FloatOps += cnt
		return true
	}
}
