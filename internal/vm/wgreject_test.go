package vm

import (
	"encoding/binary"
	"testing"
)

// Tests for the strided second-chance certificate and the per-reason
// fallback counters.

// triSrc mirrors CORR's correlation kernel: a triangular scatter (diagonal
// point, row run, strided column) whose store indices are three different
// affine forms — far outside the identical-form certificate — but whose
// per-work-item footprints are pairwise disjoint.
const triSrc = `
__kernel void tri(__global float* data, __global float* symmat, int m, int n) {
    int j1 = get_global_id(0);
    if (j1 < m) {
        symmat[j1*m + j1] = 1.0f;
        for (int j2 = j1 + 1; j2 < m; j2++) {
            float acc = 0.0f;
            for (int i = 0; i < n; i++) {
                acc += data[i*m + j1] * data[i*m + j2];
            }
            symmat[j1*m + j2] = acc;
            symmat[j2*m + j1] = acc;
        }
    }
}
`

func TestWGStridedSecondChance(t *testing.T) {
	k := MustCompile(triSrc, "tri")
	if k.wg == nil {
		t.Fatal("wg compilation rejected the triangular scatter kernel")
	}
	const m, n = 16, 8
	before := BackendSnapshot()
	if err := runWGParity(t, k, NewNDRange1D(m, 8), func() []Arg {
		return []Arg{
			BufArg(floatBuf(n*m, func(i int) float32 { return float32(i%11) * 0.25 })),
			BufArg(make([]byte, 4*m*m)),
			IntArg(m), IntArg(n),
		}
	}); err != nil {
		t.Fatal(err)
	}
	after := BackendSnapshot()
	if got := after.WGLoopWGs - before.WGLoopWGs; got != 2 {
		t.Errorf("WGLoopWGs advanced by %d, want 2 (both groups in lockstep)", got)
	}
	if after.WGStridedWGs == before.WGStridedWGs {
		t.Errorf("WGStridedWGs did not advance: admission did not come from the disjointness certificate")
	}
	if after.WGFallbackWGs != before.WGFallbackWGs {
		t.Errorf("WGFallbackWGs advanced for a certified launch")
	}
}

// TestWGRejectReasons drives one launch per fallback reason and checks that
// exactly that reason's counter advances.
func TestWGRejectReasons(t *testing.T) {
	type tc struct {
		name   string
		src    string
		kernel string
		rej    WGReject
		args   func() []Arg
	}
	cases := []tc{
		{
			name: "shape-divergent-barrier",
			src: `
__kernel void divb(__global float* a, int n) {
    __local float tmp[16];
    int l = get_local_id(0);
    int g = get_global_id(0);
    tmp[l] = a[g];
    if (g >= 0) {
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    a[g] = tmp[15 - l];
}`,
			kernel: "divb",
			rej:    WGRejShape,
			args: func() []Arg {
				return []Arg{BufArg(floatBuf(16, func(i int) float32 { return float32(i) })), IntArg(16)}
			},
		},
		{
			name: "unknown-store-indirect",
			src: `
__kernel void scatter(__global float* a, __global int* idx, int n) {
    int l = get_local_id(0);
    a[idx[l]] = (float)l;
}`,
			kernel: "scatter",
			rej:    WGRejUnknownStore,
			args: func() []Arg {
				ib := make([]byte, 4*16)
				for i := 0; i < 16; i++ {
					binary.LittleEndian.PutUint32(ib[4*i:], uint32(15-i))
				}
				return []Arg{BufArg(make([]byte, 4*16)), BufArg(ib), IntArg(16)}
			},
		},
		{
			name: "overlap-group-uniform",
			src: `
__kernel void ov(__global float* a, int n) {
    int g = get_group_id(0);
    a[g] = a[g] + 1.0f;
}`,
			kernel: "ov",
			rej:    WGRejOverlap,
			args: func() []Arg {
				return []Arg{BufArg(make([]byte, 4*16)), IntArg(16)}
			},
		},
		{
			name: "local-store-mixed-forms",
			src: `
__kernel void lmix(__global float* a, int n) {
    __local float tmp[16];
    int l = get_local_id(0);
    tmp[l] = a[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    tmp[15 - l] = tmp[15 - l] * 0.5f;
    a[get_global_id(0)] = tmp[l];
}`,
			kernel: "lmix",
			rej:    WGRejLocalStore,
			args: func() []Arg {
				return []Arg{BufArg(floatBuf(16, func(i int) float32 { return float32(i) - 4 })), IntArg(16)}
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			k := MustCompile(c.src, c.kernel)
			before := BackendSnapshot()
			if err := runWGParity(t, k, NewNDRange1D(16, 16), c.args); err != nil {
				t.Fatal(err)
			}
			after := BackendSnapshot()
			if after.WGLoopWGs != before.WGLoopWGs {
				t.Errorf("lockstep engine ran a launch that must fall back")
			}
			if got := after.WGRejects[c.rej] - before.WGRejects[c.rej]; got == 0 {
				t.Errorf("reject counter %q did not advance (deltas: %v)",
					c.rej, rejectDeltas(before, after))
			}
			if after.WGFallbackWGs == before.WGFallbackWGs {
				t.Errorf("WGFallbackWGs did not advance")
			}
		})
	}

	// Alias: needs a shared backing buffer, so it does not fit runWGParity.
	k := MustCompile(`
__kernel void axpy(__global float* x, __global float* y, int n) {
    int g = get_global_id(0);
    y[g] = x[g] * 2.0f;
}`, "axpy")
	shared := floatBuf(16, func(i int) float32 { return float32(i) })
	before := BackendSnapshot()
	buf := append([]byte(nil), shared...)
	if _, err := k.ExecLaunch(NewNDRange1D(16, 16),
		[]Arg{BufArg(buf), BufArg(buf), IntArg(16)}, ExecOpts{Backend: BackendWG}); err != nil {
		t.Fatal(err)
	}
	after := BackendSnapshot()
	if after.WGRejects[WGRejAlias] == before.WGRejects[WGRejAlias] {
		t.Errorf("alias reject counter did not advance")
	}
}

func rejectDeltas(before, after BackendCounters) map[string]int64 {
	d := make(map[string]int64)
	names := WGRejectNames()
	for i := range after.WGRejects {
		if delta := after.WGRejects[i] - before.WGRejects[i]; delta != 0 {
			d[names[i]] = delta
		}
	}
	return d
}

// TestWGSecondChanceBudget checks that an over-budget launch shape is
// rejected with the budget reason rather than an unbounded analysis.
func TestWGSecondChanceBudget(t *testing.T) {
	k := MustCompile(triSrc, "tri")
	nd := NewNDRange1D(256*1024, 256)
	args := []Arg{BufArg(nil), BufArg(nil), IntArg(256 * 1024), IntArg(8)}
	ok, rej := k.wgSecondChance(nd, args)
	if ok || rej != WGRejBudget {
		t.Fatalf("huge shape: want budget reject, got ok=%v rej=%v", ok, rej)
	}
}
