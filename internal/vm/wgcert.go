package vm

import (
	"math"
	"sort"
)

// Launch-time noninterference certificate for the lockstep engine.
//
// The lockstep engine executes a barrier-free region for all work-items of
// a group in an order that interleaves items block by block, instead of
// running each item to completion. That reordering is unobservable — same
// buffers, same per-item register trajectories, same Stats after the
// tracker replay — exactly when no work-item reads or writes a global or
// __local location that another item of the same group writes within the
// same region. (Across regions the barrier orders everything in both
// engines, and private arrays are per-item by construction.)
//
// wgCertify proves that property per launch shape with a tiny abstract
// interpretation over the kernel's integer registers: every value is either
// TOP or an affine form c0 + c1*lid0 + c2*lid1 + c3*lid2 + c4*grp0 +
// c5*grp1 + c6*grp2 with concrete int64 coefficients (scalar arguments and
// launch dimensions are known numbers at this point; group ids stay
// symbolic so one certificate covers every group of the launch). A region
// passes if, for every buffer or local array it stores to, all stores and
// all loads of that object use one identical affine index form whose
// lid-coefficients map distinct local ids to distinct indices — then item t
// only ever touches its own location, groups cannot collide with themselves,
// and any per-item-order-preserving schedule commutes.
//
// The certificate depends only on (dims, local size, num groups, scalar
// argument values), so it is cached per pooled scratch under that key.
// Buffer aliasing — two arguments backed by the same storage — would defeat
// the disjointness argument and is re-checked per work-group against the
// actual argument list, mirroring the launch engine's identity check.

// aval is the abstract value of one integer register: TOP (unknown) or an
// affine form over {1, lid0, lid1, lid2, grp0, grp1, grp2}.
type aval struct {
	top bool
	c   [7]int64
}

func aTop() aval          { return aval{top: true} }
func aConst(v int64) aval { return aval{c: [7]int64{v}} }
func (v aval) isConst() bool {
	return !v.top && v.c[1] == 0 && v.c[2] == 0 && v.c[3] == 0 && v.c[4] == 0 && v.c[5] == 0 && v.c[6] == 0
}

func aAdd(x, y aval, sign int64) aval {
	if x.top || y.top {
		return aTop()
	}
	for i := range x.c {
		x.c[i] += sign * y.c[i]
	}
	return x
}

func aMul(x, y aval) aval {
	if x.top || y.top {
		return aTop()
	}
	if y.isConst() {
		for i := range x.c {
			x.c[i] *= y.c[0]
		}
		return x
	}
	if x.isConst() {
		for i := range y.c {
			y.c[i] *= x.c[0]
		}
		return y
	}
	return aTop()
}

func aJoin(x, y aval) aval {
	if x.top || y.top || x.c != y.c {
		return aTop()
	}
	return x
}

// wgCert caches one certificate decision per launch shape, plus the scratch
// the dataflow reuses. It lives inside a pooled wgScratch, so access is
// single-goroutine.
type wgCert struct {
	key    []uint64
	keyTmp []uint64
	valid  bool
	ok     bool
	// second: the cached admission came from the strided disjointness
	// certificate, not the identical-form one. rej is the fallback reason
	// when ok is false.
	second bool
	rej    WGReject

	in      [][]aval // fixpoint in-state per leader pc
	reached []bool
	st      []aval
	work    []int
	accV    map[int]aval
	vals    []int64
}

// wgCertified reports whether this work-group may run on the lockstep
// engine: no aliased buffer arguments, and the cached (or freshly computed)
// certificate for the launch shape holds. When the identical-form
// certificate fails, the strided disjointness certificate (wgreject.go)
// gets a second chance before the launch shape is rejected. The returned
// reason names the fallback cause when the answer is no.
func (k *Kernel) wgCertified(c *wgCert, nd NDRange, args []Arg) (bool, WGReject) {
	for i := range args {
		if args[i].Kind != ArgBuffer || len(args[i].Buf) == 0 {
			continue
		}
		for j := i + 1; j < len(args); j++ {
			if args[j].Kind == ArgBuffer && len(args[j].Buf) != 0 && &args[i].Buf[0] == &args[j].Buf[0] {
				return false, WGRejAlias
			}
		}
	}
	key := c.keyTmp[:0]
	key = append(key, uint64(nd.Dims),
		uint64(nd.LocalSize[0]), uint64(nd.LocalSize[1]), uint64(nd.LocalSize[2]),
		uint64(nd.NumGroups[0]), uint64(nd.NumGroups[1]), uint64(nd.NumGroups[2]))
	for i, p := range k.Params {
		switch p.Kind {
		case ArgInt:
			key = append(key, uint64(args[i].I))
		case ArgFloat:
			key = append(key, math.Float64bits(args[i].F))
		}
	}
	c.keyTmp = key
	if c.valid && len(c.key) == len(key) {
		same := true
		for i := range key {
			if c.key[i] != key[i] {
				same = false
				break
			}
		}
		if same {
			return c.ok, c.rej
		}
	}
	c.ok = k.wgCertify(c, nd, args)
	c.second, c.rej = false, WGRejNone
	if !c.ok {
		c.ok, c.rej = k.wgSecondChance(nd, args)
		c.second = c.ok
	}
	c.key = append(c.key[:0], key...)
	c.valid = true
	return c.ok, c.rej
}

// wgCertify runs the affine dataflow to a fixpoint and checks every region's
// store/load index forms.
func (k *Kernel) wgCertify(c *wgCert, nd NDRange, args []Arg) bool {
	wg := k.wg
	code := k.Code
	n := len(code)

	// Entry state: registers are zeroed at work-group start; scalar int
	// arguments are concrete constants.
	init := make([]aval, k.NumI)
	for i, p := range k.Params {
		if p.Kind == ArgInt {
			init[p.IReg] = aConst(args[i].I)
		}
	}
	if len(c.in) != n {
		c.in = make([][]aval, n)
		c.reached = make([]bool, n)
	}
	for i := range c.reached {
		c.reached[i] = false
	}
	c.in[0] = append(c.in[0][:0], init...)
	c.reached[0] = true
	c.work = append(c.work[:0], 0)

	flow := func(succ int, st []aval) {
		if !c.reached[succ] {
			c.in[succ] = append(c.in[succ][:0], st...)
			c.reached[succ] = true
			c.work = append(c.work, succ)
			return
		}
		changed := false
		dst := c.in[succ]
		for i := range dst {
			j := aJoin(dst[i], st[i])
			if j != dst[i] {
				dst[i] = j
				changed = true
			}
		}
		if changed {
			c.work = append(c.work, succ)
		}
	}

	for len(c.work) > 0 {
		l := c.work[len(c.work)-1]
		c.work = c.work[:len(c.work)-1]
		st := append(c.st[:0], c.in[l]...)
		c.st = st
		pc := l
		for {
			in := code[pc]
			certStep(in, st, nd)
			switch in.Op {
			case opJMP:
				flow(int(in.A), st)
			case opJZ, opJNZ:
				flow(int(in.A), st)
				flow(pc+1, st)
			case opBARRIER:
				flow(pc+1, st)
			case opRET:
			default:
				if pc+1 < n && wg.leader[pc+1] {
					flow(pc+1, st)
				} else if pc+1 < n {
					pc++
					continue
				}
			}
			break
		}
	}

	// Index forms at every recorded access, captured before the accessing
	// instruction executes (a load may overwrite its own index register).
	if c.accV == nil {
		c.accV = make(map[int]aval)
	} else {
		clear(c.accV)
	}
	want := make(map[int]int32)
	for ri := range wg.regions {
		for _, a := range wg.regions[ri].accs {
			want[a.pc] = a.idxReg
		}
	}
	for l := 0; l < n; l++ {
		if !wg.leader[l] || !c.reached[l] {
			continue
		}
		st := append(c.st[:0], c.in[l]...)
		c.st = st
		for pc := l; pc == l || (pc < n && !wg.leader[pc]); pc++ {
			if reg, ok := want[pc]; ok {
				c.accV[pc] = st[reg]
			}
			certStep(code[pc], st, nd)
		}
	}

	for ri := range wg.regions {
		if !k.wgCheckRegion(c, &wg.regions[ri], nd) {
			return false
		}
	}
	return true
}

// wgCheckRegion verifies one region: for every stored-to object, all stores
// and loads use one identical affine index whose lid part is injective over
// the group's local grid.
func (k *Kernel) wgCheckRegion(c *wgCert, r *wgRegion, nd NDRange) bool {
	for i := range r.accs {
		s := &r.accs[i]
		if !s.store {
			continue
		}
		sv, ok := c.accV[s.pc]
		if !ok {
			continue // unreachable under this launch: never executes
		}
		if sv.top {
			return false
		}
		// Every other access (load or store) to the same object in this
		// region must use the identical form.
		for j := range r.accs {
			o := &r.accs[j]
			if o.local != s.local || o.slot != s.slot || i == j {
				continue
			}
			ov, ok := c.accV[o.pc]
			if !ok {
				continue
			}
			if ov.top || ov.c != sv.c {
				return false
			}
		}
		if !lidInjective(c, sv, nd) {
			return false
		}
	}
	return true
}

// lidInjective reports whether v's lid-coefficients map every local id of
// the group to a distinct value (brute force over the local grid; group
// sizes are small and the result is cached with the certificate).
func lidInjective(c *wgCert, v aval, nd NDRange) bool {
	nWI := nd.WorkItemsPerGroup()
	if nWI <= 1 {
		return true
	}
	vals := c.vals[:0]
	for z := 0; z < nd.LocalSize[2]; z++ {
		for y := 0; y < nd.LocalSize[1]; y++ {
			for x := 0; x < nd.LocalSize[0]; x++ {
				vals = append(vals, v.c[1]*int64(x)+v.c[2]*int64(y)+v.c[3]*int64(z))
			}
		}
	}
	c.vals = vals
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for i := 1; i < len(vals); i++ {
		if vals[i] == vals[i-1] {
			return false
		}
	}
	return true
}

// certStep is the abstract transfer function over integer registers for one
// instruction, mirroring the interpreter's concrete semantics.
func certStep(in Instr, st []aval, nd NDRange) {
	switch in.Op {
	case opLDI:
		st[in.A] = aConst(in.IImm)
	case opIMOV:
		st[in.A] = st[in.B]
	case opIADD:
		st[in.A] = aAdd(st[in.B], st[in.C], 1)
	case opISUB:
		st[in.A] = aAdd(st[in.B], st[in.C], -1)
	case opIMUL:
		st[in.A] = aMul(st[in.B], st[in.C])
	case opIDIV:
		if st[in.B].isConst() && st[in.C].isConst() && st[in.C].c[0] != 0 {
			st[in.A] = aConst(st[in.B].c[0] / st[in.C].c[0])
		} else {
			st[in.A] = aTop()
		}
	case opIMOD:
		if st[in.B].isConst() && st[in.C].isConst() && st[in.C].c[0] != 0 {
			st[in.A] = aConst(st[in.B].c[0] % st[in.C].c[0])
		} else {
			st[in.A] = aTop()
		}
	case opINEG:
		st[in.A] = aMul(st[in.B], aConst(-1))
	case opILT, opILE, opIGT, opIGE, opIEQ, opINE:
		if st[in.B].isConst() && st[in.C].isConst() {
			st[in.A] = aConst(b2i(intCmpFn(in.Op)(st[in.B].c[0], st[in.C].c[0])))
		} else {
			st[in.A] = aTop()
		}
	case opNOTB:
		if st[in.B].isConst() {
			st[in.A] = aConst(b2i(st[in.B].c[0] == 0))
		} else {
			st[in.A] = aTop()
		}
	case opFLT, opFLE, opFGT, opFGE, opFEQ, opFNE, opF2I, opLDGI, opLDLI, opLDPI:
		st[in.A] = aTop()
	case opGID:
		if d := st[in.B]; d.isConst() && d.c[0] >= 0 && d.c[0] <= 2 {
			var v aval
			v.c[1+d.c[0]] = 1
			v.c[4+d.c[0]] = int64(nd.LocalSize[d.c[0]])
			st[in.A] = v
		} else if d := st[in.B]; d.isConst() {
			st[in.A] = aConst(0) // out-of-range dim reads 0
		} else {
			st[in.A] = aTop()
		}
	case opLID:
		if d := st[in.B]; d.isConst() && d.c[0] >= 0 && d.c[0] <= 2 {
			var v aval
			v.c[1+d.c[0]] = 1
			st[in.A] = v
		} else if d := st[in.B]; d.isConst() {
			st[in.A] = aConst(0)
		} else {
			st[in.A] = aTop()
		}
	case opGRP:
		if d := st[in.B]; d.isConst() && d.c[0] >= 0 && d.c[0] <= 2 {
			var v aval
			v.c[4+d.c[0]] = 1
			st[in.A] = v
		} else if d := st[in.B]; d.isConst() {
			st[in.A] = aConst(0)
		} else {
			st[in.A] = aTop()
		}
	case opNGR:
		if d := st[in.B]; d.isConst() {
			if d.c[0] >= 0 && d.c[0] <= 2 {
				st[in.A] = aConst(int64(nd.NumGroups[d.c[0]]))
			} else {
				st[in.A] = aConst(1)
			}
		} else {
			st[in.A] = aTop()
		}
	case opLSZ:
		if d := st[in.B]; d.isConst() {
			if d.c[0] >= 0 && d.c[0] <= 2 {
				st[in.A] = aConst(int64(nd.LocalSize[d.c[0]]))
			} else {
				st[in.A] = aConst(1)
			}
		} else {
			st[in.A] = aTop()
		}
	case opGSZ:
		if d := st[in.B]; d.isConst() {
			if d.c[0] >= 0 && d.c[0] <= 2 {
				st[in.A] = aConst(int64(nd.NumGroups[d.c[0]] * nd.LocalSize[d.c[0]]))
			} else {
				st[in.A] = aConst(1)
			}
		} else {
			st[in.A] = aTop()
		}
	case opGOFF:
		st[in.A] = aConst(0)
	case opWDIM:
		st[in.A] = aConst(int64(nd.Dims))
	case opIMIN:
		if st[in.B].isConst() && st[in.C].isConst() {
			st[in.A] = aConst(min(st[in.B].c[0], st[in.C].c[0]))
		} else {
			st[in.A] = aJoin(st[in.B], st[in.C]) // equal forms: min is that form
		}
	case opIMAX:
		if st[in.B].isConst() && st[in.C].isConst() {
			st[in.A] = aConst(max(st[in.B].c[0], st[in.C].c[0]))
		} else {
			st[in.A] = aJoin(st[in.B], st[in.C])
		}
	case opIABS:
		if st[in.B].isConst() {
			v := st[in.B].c[0]
			if v < 0 {
				v = -v
			}
			st[in.A] = aConst(v)
		} else {
			st[in.A] = aTop()
		}
	}
}
