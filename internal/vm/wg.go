package vm

// Whole-work-group compilation.
//
// buildWG lowers a kernel's bytecode into a form the lockstep engine
// (wgexec.go) can run: the CFG is split at barriers into barrier-free
// regions, and every basic block is compiled into a list of banked steps
// (wgsteps.go), each of which loops over all work-items currently at that
// block against structure-of-arrays register banks. One block dispatch then
// serves the whole set of work-items instead of one, which is where the
// engine's speedup over the per-item closure path comes from.
//
// The pass is purely structural; whether a given *launch* may actually run
// in lockstep is decided at execution time by the noninterference
// certificate (wgcert.go), which falls back to the per-item path per
// work-group when it cannot prove that cross-work-item execution order is
// unobservable. Kernels the static analyzer flags with divergent barriers
// are rejected here outright, so unsupported shapes never reach the engine.

// wgTerm kinds.
const (
	wtFall uint8 = iota
	wtJmp
	wtCond
	wtRet
	wtBarrier
)

// wgTerm describes a block terminator for the lockstep engine.
type wgTerm struct {
	kind    uint8
	jz      bool  // for wtCond: branch taken when reg == 0
	condReg int32 // for wtCond
	tgt     int   // wtJmp/wtCond: branch target leader pc
	next    int   // fallthrough / barrier-resume leader pc
}

// wblock is one basic block compiled for whole-group execution.
type wblock struct {
	start  int
	body   int   // end of the block body (terminator excluded)
	nInstr int64 // step-budget charge per work-item
	steps  []wstep
	// fsteps, when non-nil, is the region-fused lowering of steps
	// (wgfuse.go): the whole body jammed into one loop over the work-items.
	// Dispatched instead of steps while WGFuseEnabled.
	fsteps []wstep
	term   wgTerm
}

// wgAccess is one static global- or local-memory access inside a region,
// recorded for the launch-time certificate.
type wgAccess struct {
	pc     int
	idxReg int32
	slot   int32
	local  bool
	store  bool
}

// wgRegion is one barrier-free region: every pc reachable from the entry
// without crossing a barrier or returning. Regions from different entries
// may share pcs; shared accesses are checked in every region that contains
// them, which is conservative.
type wgRegion struct {
	entry int
	accs  []wgAccess
}

// wgProgram is the whole-work-group compilation of a kernel.
type wgProgram struct {
	blocks  []*wblock // indexed by pc; non-nil at block leaders only
	leader  []bool    // leader[pc]: pc starts a basic block
	regions []wgRegion
	// spans lists each block as a wg-loop span for disassembly annotation.
	spans []FusedSpan
	// fused lists each region-fused block body (wgfuse.go) for disassembly.
	fused []FusedSpan
}

// buildWG compiles the whole-work-group program. It requires the closure
// lowering to have accepted the kernel (same bytecode validation), and
// rejects kernels whose barriers the static analyzer reports as divergent:
// those can legally error at runtime, and the per-item engines already
// produce that error with exact semantics.
func (k *Kernel) buildWG() {
	if k.clos == nil {
		return
	}
	if k.HasBarrier {
		if k.sum == nil || k.sum.HasDivergentBarrier() {
			return
		}
	} else if len(k.PrivArrs) > 0 {
		// The per-item engines run a barrier-free group's work-items through
		// one shared state whose private slabs are not cleared between items
		// (wiState.reset), so a read-before-write observes the previous
		// item's leftovers. Lockstep execution cannot reproduce that
		// sequential carry-over; barrier kernels use per-item zeroed slabs in
		// every engine, so only this shape must fall back.
		return
	}
	code := k.Code
	n := len(code)

	leader := make([]bool, n+1)
	leader[0] = true
	for pc, in := range code {
		switch in.Op {
		case opJMP, opJZ, opJNZ:
			leader[in.A] = true
			leader[pc+1] = true
		case opBARRIER, opRET:
			leader[pc+1] = true
		}
	}

	blocks := make([]*wblock, n)
	var spans []FusedSpan
	for start := 0; start < n; {
		end := start + 1
		for end < n && !leader[end] {
			end++
		}
		blk := k.buildWBlock(start, end)
		if blk == nil {
			return
		}
		blocks[start] = blk
		spans = append(spans, FusedSpan{Start: start, Len: end - start, Name: "wg.loop"})
		start = end
	}

	wg := &wgProgram{blocks: blocks, leader: leader[:n], spans: spans}
	wg.buildRegions(code)
	k.fuseWG(wg)
	k.wg = wg
	backendCtr.wgKernels.Add(1)
	backendCtr.wgRegions.Add(int64(len(wg.regions)))
}

// buildWBlock compiles the basic block code[start:end) into banked steps
// plus a terminator descriptor. Unlike the closure backend, conditional
// branches are not fused with their compare: the engine partitions the
// work-item set on the condition register, so the compare stays a normal
// (possibly fused) banked step and the per-instruction stats come out
// identical.
func (k *Kernel) buildWBlock(start, end int) *wblock {
	code := k.Code
	blk := &wblock{start: start, nInstr: int64(end - start)}
	last := code[end-1]
	bodyEnd := end
	switch last.Op {
	case opJMP:
		bodyEnd = end - 1
		blk.term = wgTerm{kind: wtJmp, tgt: int(last.A)}
	case opJZ, opJNZ:
		bodyEnd = end - 1
		blk.term = wgTerm{kind: wtCond, jz: last.Op == opJZ, condReg: last.B, tgt: int(last.A), next: end}
	case opRET:
		bodyEnd = end - 1
		blk.term = wgTerm{kind: wtRet}
	case opBARRIER:
		bodyEnd = end - 1
		blk.term = wgTerm{kind: wtBarrier, next: end}
	default:
		blk.term = wgTerm{kind: wtFall, next: end}
	}
	blk.body = bodyEnd

	for pc := start; pc < bodyEnd; {
		if fn, ln := k.matchWSuper(pc, bodyEnd); fn != nil {
			blk.steps = append(blk.steps, fn)
			pc += ln
			continue
		}
		if code[pc].Op == opNop {
			pc++ // no semantics; still counted in nInstr for the budget
			continue
		}
		s := k.buildWStep(pc)
		if s == nil {
			return nil
		}
		blk.steps = append(blk.steps, s)
		pc++
	}
	return blk
}

// buildRegions computes the barrier-free regions: one per entry (pc 0 and
// the pc after every barrier), each containing the accesses reachable from
// the entry without crossing another barrier or returning.
func (wg *wgProgram) buildRegions(code []Instr) {
	n := len(code)
	entries := []int{0}
	for pc, in := range code {
		if in.Op == opBARRIER {
			entries = append(entries, pc+1)
		}
	}
	visited := make([]bool, n)
	var stack []int
	for _, e := range entries {
		for i := range visited {
			visited[i] = false
		}
		r := wgRegion{entry: e}
		stack = append(stack[:0], e)
		for len(stack) > 0 {
			pc := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if pc >= n || visited[pc] {
				continue
			}
			visited[pc] = true
			in := code[pc]
			switch in.Op {
			case opJMP:
				stack = append(stack, int(in.A))
			case opJZ, opJNZ:
				stack = append(stack, int(in.A), pc+1)
			case opBARRIER, opRET:
				// region boundary: do not continue
			default:
				stack = append(stack, pc+1)
			}
			switch in.Op {
			case opLDGF, opLDGI:
				r.accs = append(r.accs, wgAccess{pc: pc, idxReg: in.C, slot: in.B})
			case opSTGF, opSTGI:
				r.accs = append(r.accs, wgAccess{pc: pc, idxReg: in.C, slot: in.B, store: true})
			case opLDLF, opLDLI:
				r.accs = append(r.accs, wgAccess{pc: pc, idxReg: in.C, slot: in.B, local: true})
			case opSTLF, opSTLI:
				r.accs = append(r.accs, wgAccess{pc: pc, idxReg: in.C, slot: in.B, local: true, store: true})
			}
			// Private-array accesses are per-work-item storage and cannot
			// interfere across items; the certificate ignores them.
		}
		wg.regions = append(wg.regions, r)
	}
}
