package vm

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"fluidicl/internal/clc"
)

// Differential testing: generate random MiniCL kernels, execute them through
// the bytecode compiler with ALL VM backends (switch interpreter, fused
// closures, and the lockstep work-group engine) and through the independent
// AST interpreter (ref.go), and require bit-identical buffer contents — plus
// identical Stats between the VM backends, since Stats feed the virtual-time
// model. A miscompilation would have to be mirrored by an identical bug in
// the other executors to slip through. The wg backend decides per work-group
// whether the lockstep engine may run (noninterference certificate) and
// otherwise falls back to the closure path, so its leg exercises both the
// engine and the fallback seam; a counter delta asserts the engine actually
// ran for some seeds.

func TestDifferentialVMvsReference(t *testing.T) {
	const trials = 50
	n := 32
	wgBefore := BackendSnapshot().WGLoopWGs
	for seed := 0; seed < trials; seed++ {
		src := GenProgram(rand.New(rand.NewSource(int64(seed))))

		ki, err := clc.FindKernelInfo(src, "diff")
		if err != nil {
			t.Fatalf("seed %d: generated program does not check: %v\n%s", seed, err, src)
		}
		k, err := Compile(ki)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		if k.clos == nil {
			t.Fatalf("seed %d: closure lowering rejected compiled kernel\n%s", seed, src)
		}

		mkBufs := func() ([]byte, []byte) {
			fb := make([]byte, 4*n)
			ib := make([]byte, 4*n)
			r := rand.New(rand.NewSource(int64(seed) * 7))
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint32(fb[4*i:], math.Float32bits(float32(r.Float64()*16-8)))
				binary.LittleEndian.PutUint32(ib[4*i:], uint32(int32(r.Intn(41)-20)))
			}
			return fb, ib
		}

		nd := NewNDRange1D(n, 16)
		p1 := int64(seed%13 - 6)
		fp := float64(seed%17)/3 - 2

		runVM := func(be Backend) ([]byte, []byte, Stats, error) {
			fb, ib := mkBufs()
			st, err := k.ExecLaunch(nd,
				[]Arg{BufArg(fb), BufArg(ib), IntArg(int64(n)), IntArg(p1), FloatArg(fp)},
				ExecOpts{Backend: be})
			return fb, ib, st, err
		}
		fbVM, ibVM, stI, vmErr := runVM(BackendInterp)
		fbCl, ibCl, stC, clErr := runVM(BackendClosure)
		fbWG, ibWG, stW, wgErr := runVM(BackendWG)

		ref, err := NewRefExec(ki)
		if err != nil {
			t.Fatal(err)
		}
		fbRef, ibRef := mkBufs()
		var refErr error
		for gi := 0; gi < nd.LaunchGroups() && refErr == nil; gi++ {
			refErr = ref.ExecWorkGroup(nd, nd.GroupAt(gi),
				[]Arg{BufArg(fbRef), BufArg(ibRef), IntArg(int64(n)), IntArg(p1), FloatArg(fp)})
		}

		if (vmErr == nil) != (refErr == nil) {
			t.Fatalf("seed %d: error disagreement: vm=%v ref=%v\n%s", seed, vmErr, refErr, src)
		}
		if (vmErr == nil) != (clErr == nil) {
			t.Fatalf("seed %d: backend error disagreement: interp=%v closure=%v\n%s", seed, vmErr, clErr, src)
		}
		if (vmErr == nil) != (wgErr == nil) {
			t.Fatalf("seed %d: backend error disagreement: interp=%v wg=%v\n%s", seed, vmErr, wgErr, src)
		}
		if vmErr != nil {
			continue
		}
		if stI != stC {
			t.Fatalf("seed %d: Stats diverge between backends:\ninterp:  %+v\nclosure: %+v\n%s",
				seed, stI, stC, src)
		}
		if stI != stW {
			t.Fatalf("seed %d: Stats diverge between backends:\ninterp: %+v\nwg:     %+v\n%s",
				seed, stI, stW, src)
		}
		if string(fbVM) != string(fbCl) || string(ibVM) != string(ibCl) {
			t.Fatalf("seed %d: closure backend buffers differ from interpreter\n%s", seed, src)
		}
		if string(fbVM) != string(fbWG) || string(ibVM) != string(ibWG) {
			t.Fatalf("seed %d: wg backend buffers differ from interpreter\n%s", seed, src)
		}
		for i := 0; i < 4*n; i += 4 {
			vb := binary.LittleEndian.Uint32(fbVM[i:])
			rb := binary.LittleEndian.Uint32(fbRef[i:])
			if vb != rb {
				t.Fatalf("seed %d: fbuf[%d] differs: vm=%v(%#x) ref=%v(%#x)\n%s",
					seed, i/4, math.Float32frombits(vb), vb, math.Float32frombits(rb), rb, src)
			}
			vi := binary.LittleEndian.Uint32(ibVM[i:])
			ri := binary.LittleEndian.Uint32(ibRef[i:])
			if vi != ri {
				t.Fatalf("seed %d: ibuf[%d] differs: vm=%d ref=%d\n%s",
					seed, i/4, int32(vi), int32(ri), src)
			}
		}
	}
	if BackendSnapshot().WGLoopWGs == wgBefore {
		t.Error("no generated seed exercised the lockstep wg engine (all fell back)")
	}
}

func TestDifferentialUndoRollback(t *testing.T) {
	// Property, for every backend: executing any generated work-group with
	// an undo log and rolling back must restore the buffers exactly, and
	// the pre-rollback buffers must match between backends (the closure
	// backend records identical undo entries).
	const trials = 25
	n := 32
	for seed := 0; seed < trials; seed++ {
		src := GenProgram(rand.New(rand.NewSource(int64(1000 + seed))))
		ki, err := clc.FindKernelInfo(src, "diff")
		if err != nil {
			t.Fatal(err)
		}
		k, err := Compile(ki)
		if err != nil {
			t.Fatal(err)
		}
		nd := NewNDRange1D(n, 32)
		var applied [3]string
		for bi, be := range []Backend{BackendInterp, BackendClosure, BackendWG} {
			fb := make([]byte, 4*n)
			ib := make([]byte, 4*n)
			r := rand.New(rand.NewSource(int64(seed)))
			r.Read(fb)
			r.Read(ib)
			fb0 := append([]byte(nil), fb...)
			ib0 := append([]byte(nil), ib...)
			var undo UndoLog
			_, err = k.ExecWorkGroup(nd, [3]int{0, 0, 0},
				[]Arg{BufArg(fb), BufArg(ib), IntArg(int64(n)), IntArg(3), FloatArg(1.5)},
				ExecOpts{Undo: &undo, Backend: be})
			if err != nil {
				applied[bi] = "err"
				continue // e.g. NaN-driven index... impossible by construction, but be safe
			}
			applied[bi] = string(fb) + string(ib)
			undo.Rollback()
			if string(fb) != string(fb0) || string(ib) != string(ib0) {
				t.Fatalf("seed %d (%v): rollback did not restore buffers\n%s", seed, be, src)
			}
		}
		if applied[0] != applied[1] || applied[0] != applied[2] {
			t.Fatalf("seed %d: pre-rollback buffers differ between backends\n%s", seed, src)
		}
	}
}

func TestDifferentialDeferredWrites(t *testing.T) {
	// Property: executing a work-group with a DeferredWrites log and
	// committing must be byte-identical across backends, and identical to
	// in-place execution (the commit applies exactly the stores that would
	// have landed).
	const trials = 25
	n := 32
	for seed := 0; seed < trials; seed++ {
		src := GenProgram(rand.New(rand.NewSource(int64(3000 + seed))))
		ki, err := clc.FindKernelInfo(src, "diff")
		if err != nil {
			t.Fatal(err)
		}
		k, err := Compile(ki)
		if err != nil {
			t.Fatal(err)
		}
		nd := NewNDRange1D(n, 32)
		mkBufs := func() ([]byte, []byte) {
			fb := make([]byte, 4*n)
			ib := make([]byte, 4*n)
			r := rand.New(rand.NewSource(int64(seed) * 11))
			r.Read(fb)
			r.Read(ib)
			return fb, ib
		}
		run := func(be Backend, deferred bool) (string, Stats, error) {
			fb, ib := mkBufs()
			args := []Arg{BufArg(fb), BufArg(ib), IntArg(int64(n)), IntArg(3), FloatArg(1.5)}
			opts := ExecOpts{Backend: be}
			var def DeferredWrites
			if deferred {
				def.begin(len(args))
				opts.Def = &def
			}
			st, err := k.ExecWorkGroup(nd, [3]int{0, 0, 0}, args, opts)
			if err != nil {
				return "", st, err
			}
			if deferred {
				def.commit(args, nil)
			}
			return string(fb) + string(ib), st, nil
		}
		inplace, stPlain, errPlain := run(BackendInterp, false)
		defI, stI, errI := run(BackendInterp, true)
		defC, stC, errC := run(BackendClosure, true)
		defW, stW, errW := run(BackendWG, true)
		if (errPlain == nil) != (errI == nil) || (errI == nil) != (errC == nil) || (errI == nil) != (errW == nil) {
			t.Fatalf("seed %d: error disagreement: plain=%v definterp=%v defclosure=%v defwg=%v\n%s",
				seed, errPlain, errI, errC, errW, src)
		}
		if errPlain != nil {
			continue
		}
		if stI != stC {
			t.Fatalf("seed %d: deferred Stats diverge between backends:\ninterp:  %+v\nclosure: %+v\n%s",
				seed, stI, stC, src)
		}
		if stI != stW {
			t.Fatalf("seed %d: deferred Stats diverge between backends:\ninterp: %+v\nwg:     %+v\n%s",
				seed, stI, stW, src)
		}
		if defI != defC {
			t.Fatalf("seed %d: deferred+commit buffers differ between backends\n%s", seed, src)
		}
		if defI != defW {
			t.Fatalf("seed %d: deferred+commit buffers differ between interp and wg\n%s", seed, src)
		}
		if defI != inplace {
			t.Fatalf("seed %d: deferred+commit differs from in-place execution\n%s", seed, src)
		}
		_ = stPlain // deferred runs add noteRead tracking but Stats must still match each other
	}
}

func TestDifferentialPrintedSourceRoundTrip(t *testing.T) {
	// Property: pretty-printing a generated program and re-parsing it must
	// yield identical execution results (the printer loses nothing).
	const trials = 40
	n := 32
	for seed := 0; seed < trials; seed++ {
		g := &progGen{r: rand.New(rand.NewSource(int64(2000 + seed)))}
		src := g.generate()
		prog, err := clc.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		printed := clc.Print(prog)

		run := func(text string) ([]byte, []byte) {
			ki, err := clc.FindKernelInfo(text, "diff")
			if err != nil {
				t.Fatalf("seed %d: %v\n%s", seed, err, text)
			}
			k, err := Compile(ki)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			fb := make([]byte, 4*n)
			ib := make([]byte, 4*n)
			if _, err := k.ExecLaunch(NewNDRange1D(n, 16),
				[]Arg{BufArg(fb), BufArg(ib), IntArg(int64(n)), IntArg(2), FloatArg(0.5)},
				ExecOpts{}); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return fb, ib
		}
		f1, i1 := run(src)
		f2, i2 := run(printed)
		if string(f1) != string(f2) || string(i1) != string(i2) {
			t.Fatalf("seed %d: printed source behaves differently\noriginal:\n%s\nprinted:\n%s", seed, src, printed)
		}
	}
}
