package vm

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"fluidicl/internal/clc"
)

// Differential testing: generate random MiniCL kernels, execute them through
// the bytecode compiler+VM and through the independent AST interpreter
// (ref.go), and require bit-identical buffer contents. A miscompilation
// would have to be mirrored by an identical interpreter bug to slip through.

// progGen generates random—but deterministic, well-typed, terminating—kernels.
type progGen struct {
	r      *rand.Rand
	b      strings.Builder
	indent int
	// in-scope variable names by type; the first nRO entries of ints are
	// read-only (parameters like n, whose mutation would break the
	// safe-index/safe-divisor invariants).
	ints   []string
	nROInt int
	floats []string
	nVars  int
	nLoops int
	depth  int
}

func (g *progGen) w(format string, args ...interface{}) {
	g.b.WriteString(strings.Repeat("    ", g.indent))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteString("\n")
}

func (g *progGen) freshVar() string {
	g.nVars++
	return fmt.Sprintf("v%d", g.nVars)
}

// intExpr produces a random int-typed expression using in-scope variables.
func (g *progGen) intExpr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(21)-10)
		case 1:
			if len(g.ints) > 0 {
				return g.ints[g.r.Intn(len(g.ints))]
			}
			return "i"
		default:
			return "i"
		}
	}
	switch g.r.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 3:
		// Division and modulo by a guaranteed-nonzero constant.
		return fmt.Sprintf("(%s %s %d)", g.intExpr(depth-1),
			[]string{"/", "%"}[g.r.Intn(2)], g.r.Intn(9)+1)
	case 4:
		return fmt.Sprintf("min(%s, %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 5:
		return fmt.Sprintf("max(abs(%s), %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 6:
		return fmt.Sprintf("(%s ? %s : %s)", g.boolExpr(depth-1), g.intExpr(depth-1), g.intExpr(depth-1))
	default:
		return fmt.Sprintf("(int)%s", g.floatExpr(depth-1))
	}
}

func (g *progGen) floatExpr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%.3ff", g.r.Float64()*8-4)
		case 1:
			if len(g.floats) > 0 {
				return g.floats[g.r.Intn(len(g.floats))]
			}
			return "fp"
		default:
			return "fp"
		}
	}
	switch g.r.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.floatExpr(depth-1), g.floatExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.floatExpr(depth-1), g.floatExpr(depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.floatExpr(depth-1), g.floatExpr(depth-1))
	case 3:
		// Divide by something bounded away from zero.
		return fmt.Sprintf("(%s / (fabs(%s) + 1.0f))", g.floatExpr(depth-1), g.floatExpr(depth-1))
	case 4:
		return fmt.Sprintf("sqrt(fabs(%s))", g.floatExpr(depth-1))
	case 5:
		return fmt.Sprintf("fmin(%s, fmax(%s, -8.0f))", g.floatExpr(depth-1), g.floatExpr(depth-1))
	case 6:
		return fmt.Sprintf("(%s ? %s : %s)", g.boolExpr(depth-1), g.floatExpr(depth-1), g.floatExpr(depth-1))
	default:
		return fmt.Sprintf("(float)%s", g.intExpr(depth-1))
	}
}

func (g *progGen) boolExpr(depth int) string {
	if depth <= 0 {
		return fmt.Sprintf("(%s < %s)", g.intExpr(0), g.intExpr(0))
	}
	switch g.r.Intn(5) {
	case 0:
		return fmt.Sprintf("(%s %s %s)", g.intExpr(depth-1),
			[]string{"<", "<=", ">", ">=", "==", "!="}[g.r.Intn(6)], g.intExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s %s %s)", g.floatExpr(depth-1),
			[]string{"<", "<=", ">", ">="}[g.r.Intn(4)], g.floatExpr(depth-1))
	case 2:
		return fmt.Sprintf("(%s && %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
	case 3:
		return fmt.Sprintf("(%s || %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
	default:
		return fmt.Sprintf("(!%s)", g.boolExpr(depth-1))
	}
}

func (g *progGen) stmts(budget int) {
	for s := 0; s < budget; s++ {
		switch g.r.Intn(10) {
		case 0, 1:
			v := g.freshVar()
			g.w("int %s = %s;", v, g.intExpr(2))
			g.ints = append(g.ints, v)
		case 2, 3:
			v := g.freshVar()
			g.w("float %s = %s;", v, g.floatExpr(2))
			g.floats = append(g.floats, v)
		case 4:
			if len(g.ints) > g.nROInt {
				v := g.ints[g.nROInt+g.r.Intn(len(g.ints)-g.nROInt)]
				g.w("%s %s %s;", v, []string{"=", "+=", "-=", "*="}[g.r.Intn(4)], g.intExpr(2))
			}
		case 5:
			if len(g.floats) > 0 {
				v := g.floats[g.r.Intn(len(g.floats))]
				g.w("%s %s %s;", v, []string{"=", "+=", "-=", "*="}[g.r.Intn(4)], g.floatExpr(2))
			}
		case 6:
			if g.depth < 2 {
				g.depth++
				g.w("if (%s) {", g.boolExpr(2))
				g.indent++
				nI, nF := len(g.ints), len(g.floats)
				g.stmts(budget / 2)
				g.ints, g.floats = g.ints[:nI], g.floats[:nF]
				g.indent--
				if g.r.Intn(2) == 0 {
					g.w("} else {")
					g.indent++
					g.stmts(budget / 2)
					g.ints, g.floats = g.ints[:nI], g.floats[:nF]
					g.indent--
				}
				g.w("}")
				g.depth--
			}
		case 7:
			if g.depth < 2 {
				g.depth++
				g.nLoops++
				l := fmt.Sprintf("l%d", g.nLoops)
				g.w("for (int %s = 0; %s < %d; %s++) {", l, l, g.r.Intn(6)+1, l)
				g.indent++
				// Loop counters are readable but never assignment targets
				// (mutating one could diverge the two engines' step
				// budgets): insert into the read-only prefix.
				g.ints = append(g.ints, "")
				copy(g.ints[g.nROInt+1:], g.ints[g.nROInt:])
				g.ints[g.nROInt] = l
				g.nROInt++
				nI, nF := len(g.ints), len(g.floats)
				g.stmts(budget / 2)
				g.ints, g.floats = g.ints[:nI], g.floats[:nF]
				g.nROInt--
				g.ints = append(g.ints[:g.nROInt], g.ints[g.nROInt+1:]...)
				g.indent--
				g.w("}")
				g.depth--
			}
		case 8:
			// Buffer update at a safe index.
			g.w("fbuf[abs(%s) %% n] = %s;", g.intExpr(1), g.floatExpr(2))
		case 9:
			g.w("ibuf[abs(%s) %% n] = %s;", g.intExpr(1), g.intExpr(2))
		}
	}
}

func (g *progGen) generate() string {
	g.b.Reset()
	g.w("__kernel void diff(__global float* fbuf, __global int* ibuf, int n, int p1, float fp) {")
	g.indent++
	g.w("int i = get_global_id(0);")
	g.w("if (i < n) {")
	g.indent++
	g.ints = []string{"i", "n", "p1"}
	g.nROInt = 2 // i and n are read-only (index and divisor safety)
	g.floats = []string{"fp"}
	g.stmts(8)
	g.w("fbuf[i] = %s;", g.floatExpr(3))
	g.w("ibuf[i] = %s;", g.intExpr(3))
	g.indent--
	g.w("}")
	g.indent--
	g.w("}")
	return g.b.String()
}

func TestDifferentialVMvsReference(t *testing.T) {
	const trials = 50
	n := 32
	for seed := 0; seed < trials; seed++ {
		g := &progGen{r: rand.New(rand.NewSource(int64(seed)))}
		src := g.generate()

		ki, err := clc.FindKernelInfo(src, "diff")
		if err != nil {
			t.Fatalf("seed %d: generated program does not check: %v\n%s", seed, err, src)
		}
		k, err := Compile(ki)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}

		mkBufs := func() ([]byte, []byte) {
			fb := make([]byte, 4*n)
			ib := make([]byte, 4*n)
			r := rand.New(rand.NewSource(int64(seed) * 7))
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint32(fb[4*i:], math.Float32bits(float32(r.Float64()*16-8)))
				binary.LittleEndian.PutUint32(ib[4*i:], uint32(int32(r.Intn(41)-20)))
			}
			return fb, ib
		}

		nd := NewNDRange1D(n, 16)
		p1 := int64(seed%13 - 6)
		fp := float64(seed%17)/3 - 2

		fbVM, ibVM := mkBufs()
		_, vmErr := k.ExecLaunch(nd, []Arg{BufArg(fbVM), BufArg(ibVM), IntArg(int64(n)), IntArg(p1), FloatArg(fp)}, ExecOpts{})

		ref, err := NewRefExec(ki)
		if err != nil {
			t.Fatal(err)
		}
		fbRef, ibRef := mkBufs()
		var refErr error
		for gi := 0; gi < nd.LaunchGroups() && refErr == nil; gi++ {
			refErr = ref.ExecWorkGroup(nd, nd.GroupAt(gi),
				[]Arg{BufArg(fbRef), BufArg(ibRef), IntArg(int64(n)), IntArg(p1), FloatArg(fp)})
		}

		if (vmErr == nil) != (refErr == nil) {
			t.Fatalf("seed %d: error disagreement: vm=%v ref=%v\n%s", seed, vmErr, refErr, src)
		}
		if vmErr != nil {
			continue
		}
		for i := 0; i < 4*n; i += 4 {
			vb := binary.LittleEndian.Uint32(fbVM[i:])
			rb := binary.LittleEndian.Uint32(fbRef[i:])
			if vb != rb {
				t.Fatalf("seed %d: fbuf[%d] differs: vm=%v(%#x) ref=%v(%#x)\n%s",
					seed, i/4, math.Float32frombits(vb), vb, math.Float32frombits(rb), rb, src)
			}
			vi := binary.LittleEndian.Uint32(ibVM[i:])
			ri := binary.LittleEndian.Uint32(ibRef[i:])
			if vi != ri {
				t.Fatalf("seed %d: ibuf[%d] differs: vm=%d ref=%d\n%s",
					seed, i/4, int32(vi), int32(ri), src)
			}
		}
	}
}

func TestDifferentialUndoRollback(t *testing.T) {
	// Property: executing any generated work-group with an undo log and
	// rolling back must restore the buffers exactly.
	const trials = 25
	n := 32
	for seed := 0; seed < trials; seed++ {
		g := &progGen{r: rand.New(rand.NewSource(int64(1000 + seed)))}
		src := g.generate()
		ki, err := clc.FindKernelInfo(src, "diff")
		if err != nil {
			t.Fatal(err)
		}
		k, err := Compile(ki)
		if err != nil {
			t.Fatal(err)
		}
		fb := make([]byte, 4*n)
		ib := make([]byte, 4*n)
		r := rand.New(rand.NewSource(int64(seed)))
		r.Read(fb)
		r.Read(ib)
		fb0 := append([]byte(nil), fb...)
		ib0 := append([]byte(nil), ib...)
		var undo UndoLog
		nd := NewNDRange1D(n, 32)
		_, err = k.ExecWorkGroup(nd, [3]int{0, 0, 0},
			[]Arg{BufArg(fb), BufArg(ib), IntArg(int64(n)), IntArg(3), FloatArg(1.5)},
			ExecOpts{Undo: &undo})
		if err != nil {
			continue // e.g. NaN-driven index... impossible by construction, but be safe
		}
		undo.Rollback()
		if string(fb) != string(fb0) || string(ib) != string(ib0) {
			t.Fatalf("seed %d: rollback did not restore buffers\n%s", seed, src)
		}
	}
}

func TestDifferentialPrintedSourceRoundTrip(t *testing.T) {
	// Property: pretty-printing a generated program and re-parsing it must
	// yield identical execution results (the printer loses nothing).
	const trials = 40
	n := 32
	for seed := 0; seed < trials; seed++ {
		g := &progGen{r: rand.New(rand.NewSource(int64(2000 + seed)))}
		src := g.generate()
		prog, err := clc.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		printed := clc.Print(prog)

		run := func(text string) ([]byte, []byte) {
			ki, err := clc.FindKernelInfo(text, "diff")
			if err != nil {
				t.Fatalf("seed %d: %v\n%s", seed, err, text)
			}
			k, err := Compile(ki)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			fb := make([]byte, 4*n)
			ib := make([]byte, 4*n)
			if _, err := k.ExecLaunch(NewNDRange1D(n, 16),
				[]Arg{BufArg(fb), BufArg(ib), IntArg(int64(n)), IntArg(2), FloatArg(0.5)},
				ExecOpts{}); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return fb, ib
		}
		f1, i1 := run(src)
		f2, i2 := run(printed)
		if string(f1) != string(f2) || string(i1) != string(i2) {
			t.Fatalf("seed %d: printed source behaves differently\noriginal:\n%s\nprinted:\n%s", seed, src, printed)
		}
	}
}
