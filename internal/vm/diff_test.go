package vm

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"fluidicl/internal/clc"
)

// Differential testing: generate random MiniCL kernels, execute them through
// the bytecode compiler+VM and through the independent AST interpreter
// (ref.go), and require bit-identical buffer contents. A miscompilation
// would have to be mirrored by an identical interpreter bug to slip through.

func TestDifferentialVMvsReference(t *testing.T) {
	const trials = 50
	n := 32
	for seed := 0; seed < trials; seed++ {
		src := GenProgram(rand.New(rand.NewSource(int64(seed))))

		ki, err := clc.FindKernelInfo(src, "diff")
		if err != nil {
			t.Fatalf("seed %d: generated program does not check: %v\n%s", seed, err, src)
		}
		k, err := Compile(ki)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}

		mkBufs := func() ([]byte, []byte) {
			fb := make([]byte, 4*n)
			ib := make([]byte, 4*n)
			r := rand.New(rand.NewSource(int64(seed) * 7))
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint32(fb[4*i:], math.Float32bits(float32(r.Float64()*16-8)))
				binary.LittleEndian.PutUint32(ib[4*i:], uint32(int32(r.Intn(41)-20)))
			}
			return fb, ib
		}

		nd := NewNDRange1D(n, 16)
		p1 := int64(seed%13 - 6)
		fp := float64(seed%17)/3 - 2

		fbVM, ibVM := mkBufs()
		_, vmErr := k.ExecLaunch(nd, []Arg{BufArg(fbVM), BufArg(ibVM), IntArg(int64(n)), IntArg(p1), FloatArg(fp)}, ExecOpts{})

		ref, err := NewRefExec(ki)
		if err != nil {
			t.Fatal(err)
		}
		fbRef, ibRef := mkBufs()
		var refErr error
		for gi := 0; gi < nd.LaunchGroups() && refErr == nil; gi++ {
			refErr = ref.ExecWorkGroup(nd, nd.GroupAt(gi),
				[]Arg{BufArg(fbRef), BufArg(ibRef), IntArg(int64(n)), IntArg(p1), FloatArg(fp)})
		}

		if (vmErr == nil) != (refErr == nil) {
			t.Fatalf("seed %d: error disagreement: vm=%v ref=%v\n%s", seed, vmErr, refErr, src)
		}
		if vmErr != nil {
			continue
		}
		for i := 0; i < 4*n; i += 4 {
			vb := binary.LittleEndian.Uint32(fbVM[i:])
			rb := binary.LittleEndian.Uint32(fbRef[i:])
			if vb != rb {
				t.Fatalf("seed %d: fbuf[%d] differs: vm=%v(%#x) ref=%v(%#x)\n%s",
					seed, i/4, math.Float32frombits(vb), vb, math.Float32frombits(rb), rb, src)
			}
			vi := binary.LittleEndian.Uint32(ibVM[i:])
			ri := binary.LittleEndian.Uint32(ibRef[i:])
			if vi != ri {
				t.Fatalf("seed %d: ibuf[%d] differs: vm=%d ref=%d\n%s",
					seed, i/4, int32(vi), int32(ri), src)
			}
		}
	}
}

func TestDifferentialUndoRollback(t *testing.T) {
	// Property: executing any generated work-group with an undo log and
	// rolling back must restore the buffers exactly.
	const trials = 25
	n := 32
	for seed := 0; seed < trials; seed++ {
		src := GenProgram(rand.New(rand.NewSource(int64(1000 + seed))))
		ki, err := clc.FindKernelInfo(src, "diff")
		if err != nil {
			t.Fatal(err)
		}
		k, err := Compile(ki)
		if err != nil {
			t.Fatal(err)
		}
		fb := make([]byte, 4*n)
		ib := make([]byte, 4*n)
		r := rand.New(rand.NewSource(int64(seed)))
		r.Read(fb)
		r.Read(ib)
		fb0 := append([]byte(nil), fb...)
		ib0 := append([]byte(nil), ib...)
		var undo UndoLog
		nd := NewNDRange1D(n, 32)
		_, err = k.ExecWorkGroup(nd, [3]int{0, 0, 0},
			[]Arg{BufArg(fb), BufArg(ib), IntArg(int64(n)), IntArg(3), FloatArg(1.5)},
			ExecOpts{Undo: &undo})
		if err != nil {
			continue // e.g. NaN-driven index... impossible by construction, but be safe
		}
		undo.Rollback()
		if string(fb) != string(fb0) || string(ib) != string(ib0) {
			t.Fatalf("seed %d: rollback did not restore buffers\n%s", seed, src)
		}
	}
}

func TestDifferentialPrintedSourceRoundTrip(t *testing.T) {
	// Property: pretty-printing a generated program and re-parsing it must
	// yield identical execution results (the printer loses nothing).
	const trials = 40
	n := 32
	for seed := 0; seed < trials; seed++ {
		g := &progGen{r: rand.New(rand.NewSource(int64(2000 + seed)))}
		src := g.generate()
		prog, err := clc.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		printed := clc.Print(prog)

		run := func(text string) ([]byte, []byte) {
			ki, err := clc.FindKernelInfo(text, "diff")
			if err != nil {
				t.Fatalf("seed %d: %v\n%s", seed, err, text)
			}
			k, err := Compile(ki)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			fb := make([]byte, 4*n)
			ib := make([]byte, 4*n)
			if _, err := k.ExecLaunch(NewNDRange1D(n, 16),
				[]Arg{BufArg(fb), BufArg(ib), IntArg(int64(n)), IntArg(2), FloatArg(0.5)},
				ExecOpts{}); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return fb, ib
		}
		f1, i1 := run(src)
		f2, i2 := run(printed)
		if string(f1) != string(f2) || string(i1) != string(i2) {
			t.Fatalf("seed %d: printed source behaves differently\noriginal:\n%s\nprinted:\n%s", seed, src, printed)
		}
	}
}
