package vm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// ExecOpts controls one work-group execution.
type ExecOpts struct {
	// Undo, when non-nil, records every global store so the caller can roll
	// the work-group's effects back. Ignored while Def is set (the deferred
	// log records old values at commit time instead).
	Undo *UndoLog
	// MaxSteps bounds interpreted instructions per work-item (0 = default).
	MaxSteps int64
	// Def, when non-nil, redirects every global store into a deferred write
	// log instead of mutating the buffer, and serves the group's own stores
	// back to its loads. The launch engine uses this to execute work-groups
	// speculatively.
	Def *DeferredWrites
	// ArgsChecked skips per-call argument validation; set it only after a
	// successful CheckArgs for the same kernel and argument list.
	ArgsChecked bool
	// Backend selects the execution engine for this call. BackendAuto uses
	// the process default (see SetBackend / FLUIDICL_BACKEND). The closure
	// backend silently falls back to the interpreter for kernels whose
	// bytecode the lowering did not accept.
	Backend Backend
}

const defaultMaxSteps = 256 << 20

// warpSize is the SIMT width used for memory-coalescing estimation.
const warpSize = 32

// cacheLineBytes is the locality threshold for the CPU stride model.
const cacheLineBytes = 64

type execError struct {
	kernel string
	pc     int
	msg    string
}

func (e *execError) Error() string {
	return fmt.Sprintf("vm: kernel %q at pc=%d: %s", e.kernel, e.pc, e.msg)
}

// wiState is one work-item's register state (persisted across barrier
// phases).
type wiState struct {
	iregs []int64
	fregs []float64
	priv  [][]byte
	pc    int
	done  bool
}

// memTracker accumulates locality information per static memory op.
type memTracker struct {
	prev [][]int32 // previous work-item's access offsets, per memID
	cur  [][]int32
	last []int32 // current work-item's previous offset, per memID
	seen []bool  // last[] validity
	occ  []int32 // occurrence counter for current work-item
}

func newMemTracker(n int) *memTracker {
	return &memTracker{
		prev: make([][]int32, n),
		cur:  make([][]int32, n),
		last: make([]int32, n),
		seen: make([]bool, n),
		occ:  make([]int32, n),
	}
}

// nextWI rotates per-work-item state. newWarp resets cross-work-item
// comparison at warp boundaries.
func (t *memTracker) nextWI(newWarp bool) {
	for i := range t.cur {
		if newWarp {
			t.prev[i] = t.prev[i][:0]
		} else {
			t.prev[i], t.cur[i] = t.cur[i], t.prev[i]
		}
		t.cur[i] = t.cur[i][:0]
		t.seen[i] = false
		t.occ[i] = 0
	}
}

// access records one global access at byte offset off and updates stats.
func (t *memTracker) access(memID int32, off int32, firstInWarp bool, st *Stats) {
	if memID < 0 {
		return
	}
	// CPU per-work-item stride locality.
	if t.seen[memID] {
		d := off - t.last[memID]
		if d < 0 {
			d = -d
		}
		if d <= cacheLineBytes {
			st.SeqBytes += 4
		} else {
			st.RandBytes += 4
		}
	} else {
		st.RandBytes += 4
		t.seen[memID] = true
	}
	t.last[memID] = off

	// GPU cross-work-item coalescing within a warp.
	occ := t.occ[memID]
	t.occ[memID]++
	if firstInWarp {
		st.WarpTransactions++
	} else {
		prev := t.prev[memID]
		if int(occ) < len(prev) {
			d := off - prev[occ]
			if d < 0 {
				d = -d
			}
			if d > 4 {
				st.WarpTransactions++
			}
			// d == 4 (adjacent) or d == 0 (broadcast): coalesces into the
			// transaction opened by an earlier lane.
		} else {
			st.WarpTransactions++
		}
	}
	t.cur[memID] = append(t.cur[memID], off)
}

// ExecWorkGroup executes one work-group of the kernel with the given
// arguments against the caller's memory (buffer args are mutated in place).
// group is in full-grid coordinates. It returns the dynamic stats of the
// execution.
func (k *Kernel) ExecWorkGroup(nd NDRange, group [3]int, args []Arg, opts ExecOpts) (Stats, error) {
	if !opts.ArgsChecked {
		if err := k.CheckArgs(args); err != nil {
			return Stats{}, err
		}
	}
	sc := k.getScratch()
	st, err := k.execWG(nd, group, args, opts, sc)
	k.putScratch(sc)
	return st, err
}

// execWG executes one work-group against pooled scratch state, dispatching
// to the backend the options select. Both paths are closure-free on the per
// work-item hot path so warm executions do not allocate.
func (k *Kernel) execWG(nd NDRange, group [3]int, args []Arg, opts ExecOpts, sc *wgScratch) (Stats, error) {
	switch opts.Backend.resolve() {
	case BackendWG:
		if k.wg == nil {
			backendCtr.wgFallbackWGs.Add(1)
			backendCtr.wgRej[WGRejShape].Add(1)
		} else if ok, rej := k.wgCertified(&sc.cert, nd, args); ok {
			if sc.cert.second {
				backendCtr.wgStridedWGs.Add(1)
			}
			return k.execWGLockstep(nd, group, args, opts, sc)
		} else {
			// Uncertified: count the fallback with its reason and take the
			// best per-item path available.
			backendCtr.wgFallbackWGs.Add(1)
			backendCtr.wgRej[rej].Add(1)
		}
		if k.clos != nil {
			return k.execWGClosure(nd, group, args, opts, sc)
		}
	case BackendClosure:
		if k.clos != nil {
			return k.execWGClosure(nd, group, args, opts, sc)
		}
	}
	backendCtr.interpWGs.Add(1)

	var st Stats
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = defaultMaxSteps
	}

	nWI := nd.WorkItemsPerGroup()
	st.WorkGroups = 1
	st.WorkItems = nWI

	// Local arrays, shared by the group's work-items.
	locals := sc.localsFor(k)
	tr := sc.trackerFor(k)
	lx, ly := nd.LocalSize[0], nd.LocalSize[1]

	if !k.HasBarrier {
		w := sc.singleFor(k)
		for wi := 0; wi < nWI; wi++ {
			w.reset(k)
			tr.nextWI(wi%warpSize == 0)
			lid := [3]int{wi % lx, (wi / lx) % ly, wi / (lx * ly)}
			if _, err := k.run(w, nd, group, lid, wi, args, locals, tr, &st, opts, maxSteps); err != nil {
				return st, err
			}
		}
		return st, nil
	}

	// Barrier path: phased execution of persistent per-work-item contexts.
	states := sc.statesFor(k, nWI)
	for {
		anyBarrier, anyDone := false, false
		barrierPC := -1
		for wi, w := range states {
			if w.done {
				anyDone = true
				continue
			}
			tr.nextWI(wi%warpSize == 0)
			lid := [3]int{wi % lx, (wi / lx) % ly, wi / (lx * ly)}
			atBarrier, err := k.run(w, nd, group, lid, wi, args, locals, tr, &st, opts, maxSteps)
			if err != nil {
				return st, err
			}
			if atBarrier {
				anyBarrier = true
				if barrierPC == -1 {
					barrierPC = w.pc
				} else if barrierPC != w.pc {
					return st, &execError{k.Name, w.pc, "work-items diverged to different barriers"}
				}
			} else {
				anyDone = true
			}
		}
		if !anyBarrier {
			return st, nil
		}
		if anyDone {
			return st, &execError{k.Name, barrierPC, "barrier not reached by all work-items"}
		}
		st.Barriers++
	}
}

// execWGClosure is execWG's threaded-code twin: identical phasing, stats
// and error behavior, but work-items run through the kernel's compiled
// closures. The cmach owns the group's Stats so nothing escapes to the
// heap; the value is copied out before the context returns to the pool.
func (k *Kernel) execWGClosure(nd NDRange, group [3]int, args []Arg, opts ExecOpts, sc *wgScratch) (Stats, error) {
	backendCtr.closureWGs.Add(1)
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = defaultMaxSteps
	}
	nWI := nd.WorkItemsPerGroup()

	cm := sc.cmFor()
	cm.k = k
	cm.nd, cm.group = nd, group
	cm.args = args
	cm.locals = sc.localsFor(k)
	cm.tr = sc.trackerFor(k)
	cm.stat = Stats{WorkGroups: 1, WorkItems: nWI}
	cm.st = &cm.stat
	cm.def, cm.undo = opts.Def, opts.Undo
	cm.maxSteps = maxSteps

	err := k.closureWGLoop(cm, sc, nWI)
	st := cm.stat
	cm.release()
	return st, err
}

func (k *Kernel) closureWGLoop(cm *cmach, sc *wgScratch, nWI int) error {
	lx, ly := cm.nd.LocalSize[0], cm.nd.LocalSize[1]

	if !k.HasBarrier {
		w := sc.singleFor(k)
		for wi := 0; wi < nWI; wi++ {
			w.reset(k)
			cm.tr.nextWI(wi%warpSize == 0)
			cm.lid = [3]int{wi % lx, (wi / lx) % ly, wi / (lx * ly)}
			cm.firstInWarp = wi%warpSize == 0
			if _, err := k.runClos(cm, w); err != nil {
				return err
			}
		}
		return nil
	}

	states := sc.statesFor(k, nWI)
	for {
		anyBarrier, anyDone := false, false
		barrierPC := -1
		for wi, w := range states {
			if w.done {
				anyDone = true
				continue
			}
			cm.tr.nextWI(wi%warpSize == 0)
			cm.lid = [3]int{wi % lx, (wi / lx) % ly, wi / (lx * ly)}
			cm.firstInWarp = wi%warpSize == 0
			atBarrier, err := k.runClos(cm, w)
			if err != nil {
				return err
			}
			if atBarrier {
				anyBarrier = true
				if barrierPC == -1 {
					barrierPC = w.pc
				} else if barrierPC != w.pc {
					return &execError{k.Name, w.pc, "work-items diverged to different barriers"}
				}
			} else {
				anyDone = true
			}
		}
		if !anyBarrier {
			return nil
		}
		if anyDone {
			return &execError{k.Name, barrierPC, "barrier not reached by all work-items"}
		}
		cm.stat.Barriers++
	}
}

func (w *wiState) reset(k *Kernel) {
	for i := range w.iregs {
		w.iregs[i] = 0
	}
	for i := range w.fregs {
		w.fregs[i] = 0
	}
	w.pc = 0
	w.done = false
}

func (k *Kernel) allocPriv() [][]byte {
	priv := make([][]byte, len(k.PrivArrs))
	for i, pa := range k.PrivArrs {
		priv[i] = make([]byte, pa.Len*pa.Elem.Size())
	}
	return priv
}

// CheckArgs validates an argument list against the kernel signature. Callers
// that validate once per launch may set ExecOpts.ArgsChecked to skip the
// per-work-group re-validation.
func (k *Kernel) CheckArgs(args []Arg) error {
	if len(args) != len(k.Params) {
		return fmt.Errorf("vm: kernel %q expects %d args, got %d", k.Name, len(k.Params), len(args))
	}
	for i, p := range k.Params {
		if args[i].Kind != p.Kind {
			return fmt.Errorf("vm: kernel %q arg %d (%s): kind mismatch", k.Name, i, p.Name)
		}
		if p.Kind == ArgBuffer && args[i].Buf == nil {
			return fmt.Errorf("vm: kernel %q arg %d (%s): nil buffer", k.Name, i, p.Name)
		}
	}
	return nil
}

// run interprets one work-item until RET or BARRIER. It loads scalar
// parameters into registers at pc 0.
func (k *Kernel) run(w *wiState, nd NDRange, group, lid [3]int, wi int,
	args []Arg, locals [][]byte, tr *memTracker, st *Stats,
	opts ExecOpts, maxSteps int64) (atBarrier bool, err error) {

	if w.pc == 0 {
		for i, p := range k.Params {
			switch p.Kind {
			case ArgInt:
				w.iregs[p.IReg] = args[i].I
			case ArgFloat:
				w.fregs[p.FReg] = float64(float32(args[i].F))
			}
		}
	}

	iregs, fregs := w.iregs, w.fregs
	code := k.Code
	firstInWarp := wi%warpSize == 0
	def := opts.Def
	var steps int64

	dimVal := func(vals [3]int, d int64) int64 {
		if d < 0 || d > 2 {
			return 0
		}
		return int64(vals[d])
	}

	for {
		if w.pc < 0 || w.pc >= len(code) {
			return false, &execError{k.Name, w.pc, "pc out of range"}
		}
		in := &code[w.pc]
		steps++
		if steps > maxSteps {
			return false, &execError{k.Name, w.pc, "instruction budget exceeded (possible infinite loop)"}
		}
		switch in.Op {
		case opNop:
		case opLDI:
			iregs[in.A] = in.IImm
		case opLDF:
			fregs[in.A] = in.FImm
		case opIMOV:
			iregs[in.A] = iregs[in.B]
		case opFMOV:
			fregs[in.A] = fregs[in.B]
		case opIADD:
			iregs[in.A] = iregs[in.B] + iregs[in.C]
			st.IntOps++
		case opISUB:
			iregs[in.A] = iregs[in.B] - iregs[in.C]
			st.IntOps++
		case opIMUL:
			iregs[in.A] = iregs[in.B] * iregs[in.C]
			st.IntOps++
		case opIDIV:
			if iregs[in.C] == 0 {
				return false, &execError{k.Name, w.pc, "integer division by zero"}
			}
			iregs[in.A] = iregs[in.B] / iregs[in.C]
			st.IntOps++
		case opIMOD:
			if iregs[in.C] == 0 {
				return false, &execError{k.Name, w.pc, "integer modulo by zero"}
			}
			iregs[in.A] = iregs[in.B] % iregs[in.C]
			st.IntOps++
		case opINEG:
			iregs[in.A] = -iregs[in.B]
			st.IntOps++
		case opFADD:
			fregs[in.A] = float64(float32(fregs[in.B]) + float32(fregs[in.C]))
			st.FloatOps++
		case opFSUB:
			fregs[in.A] = float64(float32(fregs[in.B]) - float32(fregs[in.C]))
			st.FloatOps++
		case opFMUL:
			fregs[in.A] = float64(float32(fregs[in.B]) * float32(fregs[in.C]))
			st.FloatOps++
		case opFDIV:
			fregs[in.A] = float64(float32(fregs[in.B]) / float32(fregs[in.C]))
			st.FloatOps++
		case opFNEG:
			fregs[in.A] = -fregs[in.B]
			st.FloatOps++
		case opI2F:
			fregs[in.A] = float64(float32(iregs[in.B]))
			st.IntOps++
		case opF2I:
			f := fregs[in.B]
			if math.IsNaN(f) {
				f = 0
			}
			iregs[in.A] = int64(f) // C truncation toward zero
			st.IntOps++
		case opILT:
			iregs[in.A] = b2i(iregs[in.B] < iregs[in.C])
			st.IntOps++
		case opILE:
			iregs[in.A] = b2i(iregs[in.B] <= iregs[in.C])
			st.IntOps++
		case opIGT:
			iregs[in.A] = b2i(iregs[in.B] > iregs[in.C])
			st.IntOps++
		case opIGE:
			iregs[in.A] = b2i(iregs[in.B] >= iregs[in.C])
			st.IntOps++
		case opIEQ:
			iregs[in.A] = b2i(iregs[in.B] == iregs[in.C])
			st.IntOps++
		case opINE:
			iregs[in.A] = b2i(iregs[in.B] != iregs[in.C])
			st.IntOps++
		case opFLT:
			iregs[in.A] = b2i(fregs[in.B] < fregs[in.C])
			st.FloatOps++
		case opFLE:
			iregs[in.A] = b2i(fregs[in.B] <= fregs[in.C])
			st.FloatOps++
		case opFGT:
			iregs[in.A] = b2i(fregs[in.B] > fregs[in.C])
			st.FloatOps++
		case opFGE:
			iregs[in.A] = b2i(fregs[in.B] >= fregs[in.C])
			st.FloatOps++
		case opFEQ:
			iregs[in.A] = b2i(fregs[in.B] == fregs[in.C])
			st.FloatOps++
		case opFNE:
			iregs[in.A] = b2i(fregs[in.B] != fregs[in.C])
			st.FloatOps++
		case opNOTB:
			iregs[in.A] = b2i(iregs[in.B] == 0)
			st.IntOps++
		case opJMP:
			w.pc = int(in.A)
			st.Branches++
			continue
		case opJZ:
			st.Branches++
			if iregs[in.B] == 0 {
				w.pc = int(in.A)
				continue
			}
		case opJNZ:
			st.Branches++
			if iregs[in.B] != 0 {
				w.pc = int(in.A)
				continue
			}
		case opLDGF:
			buf := args[in.B].Buf
			off, err2 := byteOff(iregs[in.C], len(buf))
			if err2 != nil {
				return false, &execError{k.Name, w.pc, fmt.Sprintf("load %s: %v", k.Params[in.B].Name, err2)}
			}
			bits := binary.LittleEndian.Uint32(buf[off:])
			if def != nil {
				def.noteRead(in.B, off)
				if v, ok := def.lookup(in.B, off); ok {
					bits = v
				}
			}
			fregs[in.A] = float64(math.Float32frombits(bits))
			st.noteGlobalRead(in.B)
			st.GlobalLoads++
			st.GlobalLoadBytes += 4
			tr.access(in.D, off, firstInWarp, st)
		case opLDGI:
			buf := args[in.B].Buf
			off, err2 := byteOff(iregs[in.C], len(buf))
			if err2 != nil {
				return false, &execError{k.Name, w.pc, fmt.Sprintf("load %s: %v", k.Params[in.B].Name, err2)}
			}
			bits := binary.LittleEndian.Uint32(buf[off:])
			if def != nil {
				def.noteRead(in.B, off)
				if v, ok := def.lookup(in.B, off); ok {
					bits = v
				}
			}
			iregs[in.A] = int64(int32(bits))
			st.noteGlobalRead(in.B)
			st.GlobalLoads++
			st.GlobalLoadBytes += 4
			tr.access(in.D, off, firstInWarp, st)
		case opSTGF:
			buf := args[in.B].Buf
			off, err2 := byteOff(iregs[in.C], len(buf))
			if err2 != nil {
				return false, &execError{k.Name, w.pc, fmt.Sprintf("store %s: %v", k.Params[in.B].Name, err2)}
			}
			bits := math.Float32bits(float32(fregs[in.A]))
			if def != nil {
				def.store(in.B, off, bits)
			} else {
				if opts.Undo != nil {
					var old [4]byte
					copy(old[:], buf[off:off+4])
					opts.Undo.recs = append(opts.Undo.recs, UndoRecord{Buf: buf, Off: int(off), Old: old})
				}
				binary.LittleEndian.PutUint32(buf[off:], bits)
			}
			st.noteGlobalWrite(in.B, off)
			st.GlobalStores++
			st.GlobalStoreBytes += 4
			tr.access(in.D, off, firstInWarp, st)
		case opSTGI:
			buf := args[in.B].Buf
			off, err2 := byteOff(iregs[in.C], len(buf))
			if err2 != nil {
				return false, &execError{k.Name, w.pc, fmt.Sprintf("store %s: %v", k.Params[in.B].Name, err2)}
			}
			bits := uint32(int32(iregs[in.A]))
			if def != nil {
				def.store(in.B, off, bits)
			} else {
				if opts.Undo != nil {
					var old [4]byte
					copy(old[:], buf[off:off+4])
					opts.Undo.recs = append(opts.Undo.recs, UndoRecord{Buf: buf, Off: int(off), Old: old})
				}
				binary.LittleEndian.PutUint32(buf[off:], bits)
			}
			st.noteGlobalWrite(in.B, off)
			st.GlobalStores++
			st.GlobalStoreBytes += 4
			tr.access(in.D, off, firstInWarp, st)
		case opLDLF:
			buf := locals[in.B]
			off, err2 := byteOff(iregs[in.C], len(buf))
			if err2 != nil {
				return false, &execError{k.Name, w.pc, fmt.Sprintf("local load %s: %v", k.LocalArrs[in.B].Name, err2)}
			}
			fregs[in.A] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[off:])))
			st.LocalAccesses++
		case opLDLI:
			buf := locals[in.B]
			off, err2 := byteOff(iregs[in.C], len(buf))
			if err2 != nil {
				return false, &execError{k.Name, w.pc, fmt.Sprintf("local load %s: %v", k.LocalArrs[in.B].Name, err2)}
			}
			iregs[in.A] = int64(int32(binary.LittleEndian.Uint32(buf[off:])))
			st.LocalAccesses++
		case opSTLF:
			buf := locals[in.B]
			off, err2 := byteOff(iregs[in.C], len(buf))
			if err2 != nil {
				return false, &execError{k.Name, w.pc, fmt.Sprintf("local store %s: %v", k.LocalArrs[in.B].Name, err2)}
			}
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(float32(fregs[in.A])))
			st.LocalAccesses++
		case opSTLI:
			buf := locals[in.B]
			off, err2 := byteOff(iregs[in.C], len(buf))
			if err2 != nil {
				return false, &execError{k.Name, w.pc, fmt.Sprintf("local store %s: %v", k.LocalArrs[in.B].Name, err2)}
			}
			binary.LittleEndian.PutUint32(buf[off:], uint32(int32(iregs[in.A])))
			st.LocalAccesses++
		case opLDPF:
			buf := w.priv[in.B]
			off, err2 := byteOff(iregs[in.C], len(buf))
			if err2 != nil {
				return false, &execError{k.Name, w.pc, fmt.Sprintf("private load %s: %v", k.PrivArrs[in.B].Name, err2)}
			}
			fregs[in.A] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[off:])))
			st.LocalAccesses++
		case opLDPI:
			buf := w.priv[in.B]
			off, err2 := byteOff(iregs[in.C], len(buf))
			if err2 != nil {
				return false, &execError{k.Name, w.pc, fmt.Sprintf("private load %s: %v", k.PrivArrs[in.B].Name, err2)}
			}
			iregs[in.A] = int64(int32(binary.LittleEndian.Uint32(buf[off:])))
			st.LocalAccesses++
		case opSTPF:
			buf := w.priv[in.B]
			off, err2 := byteOff(iregs[in.C], len(buf))
			if err2 != nil {
				return false, &execError{k.Name, w.pc, fmt.Sprintf("private store %s: %v", k.PrivArrs[in.B].Name, err2)}
			}
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(float32(fregs[in.A])))
			st.LocalAccesses++
		case opSTPI:
			buf := w.priv[in.B]
			off, err2 := byteOff(iregs[in.C], len(buf))
			if err2 != nil {
				return false, &execError{k.Name, w.pc, fmt.Sprintf("private store %s: %v", k.PrivArrs[in.B].Name, err2)}
			}
			binary.LittleEndian.PutUint32(buf[off:], uint32(int32(iregs[in.A])))
			st.LocalAccesses++
		case opGID:
			d := iregs[in.B]
			iregs[in.A] = dimVal(group, d)*dimVal(nd.LocalSize, d) + dimVal(lid, d)
			st.IntOps++
		case opLID:
			iregs[in.A] = dimVal(lid, iregs[in.B])
			st.IntOps++
		case opGRP:
			iregs[in.A] = dimVal(group, iregs[in.B])
			st.IntOps++
		case opNGR:
			d := iregs[in.B]
			if d < 0 || d > 2 {
				iregs[in.A] = 1
			} else {
				iregs[in.A] = int64(nd.NumGroups[d])
			}
			st.IntOps++
		case opLSZ:
			d := iregs[in.B]
			if d < 0 || d > 2 {
				iregs[in.A] = 1
			} else {
				iregs[in.A] = int64(nd.LocalSize[d])
			}
			st.IntOps++
		case opGSZ:
			d := iregs[in.B]
			if d < 0 || d > 2 {
				iregs[in.A] = 1
			} else {
				iregs[in.A] = int64(nd.NumGroups[d] * nd.LocalSize[d])
			}
			st.IntOps++
		case opGOFF:
			iregs[in.A] = 0
		case opWDIM:
			iregs[in.A] = int64(nd.Dims)
		case opBARRIER:
			w.pc++
			return true, nil
		case opSQRT:
			fregs[in.A] = float64(float32(math.Sqrt(fregs[in.B])))
			st.SpecialOps++
		case opFABS:
			fregs[in.A] = math.Abs(fregs[in.B])
			st.SpecialOps++
		case opEXP:
			fregs[in.A] = float64(float32(math.Exp(fregs[in.B])))
			st.SpecialOps++
		case opLOG:
			fregs[in.A] = float64(float32(math.Log(fregs[in.B])))
			st.SpecialOps++
		case opFLOOR:
			fregs[in.A] = math.Floor(fregs[in.B])
			st.SpecialOps++
		case opCEIL:
			fregs[in.A] = math.Ceil(fregs[in.B])
			st.SpecialOps++
		case opPOW:
			fregs[in.A] = float64(float32(math.Pow(fregs[in.B], fregs[in.C])))
			st.SpecialOps++
		case opFMIN:
			fregs[in.A] = math.Min(fregs[in.B], fregs[in.C])
			st.FloatOps++
		case opFMAX:
			fregs[in.A] = math.Max(fregs[in.B], fregs[in.C])
			st.FloatOps++
		case opIMIN:
			if iregs[in.B] < iregs[in.C] {
				iregs[in.A] = iregs[in.B]
			} else {
				iregs[in.A] = iregs[in.C]
			}
			st.IntOps++
		case opIMAX:
			if iregs[in.B] > iregs[in.C] {
				iregs[in.A] = iregs[in.B]
			} else {
				iregs[in.A] = iregs[in.C]
			}
			st.IntOps++
		case opIABS:
			v := iregs[in.B]
			if v < 0 {
				v = -v
			}
			iregs[in.A] = v
			st.IntOps++
		case opRET:
			w.done = true
			return false, nil
		default:
			return false, &execError{k.Name, w.pc, fmt.Sprintf("bad opcode %d", in.Op)}
		}
		w.pc++
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func byteOff(idx int64, bufLen int) (int32, error) {
	off := idx * 4
	if idx < 0 || off+4 > int64(bufLen) {
		return 0, fmt.Errorf("index %d out of range (buffer %d bytes)", idx, bufLen)
	}
	return int32(off), nil
}

// ExecLaunch executes every work-group of the launch slice and returns
// aggregate stats. It is a convenience for tests and single-device paths
// that do not need per-group timing. With Workers() > 1 the groups are
// interpreted speculatively in parallel and committed in launch order;
// results (buffers, stats, undo log) are byte-identical to the sequential
// path.
func (k *Kernel) ExecLaunch(nd NDRange, args []Arg, opts ExecOpts) (Stats, error) {
	var total Stats
	if !opts.ArgsChecked {
		if err := k.CheckArgs(args); err != nil {
			return total, err
		}
		opts.ArgsChecked = true
	}
	n := nd.LaunchGroups()
	if w := Workers(); w > 1 && n > 1 && opts.Def == nil {
		undo := opts.Undo
		if eng, err := NewLaunchEngine(k, nd, args, opts, w, nil); err == nil && eng != nil {
			defer eng.Release()
			for i := 0; i < n; i++ {
				st, err := eng.Result(i)
				total.Add(st)
				eng.Commit(i, undo)
				if err != nil {
					return total, err
				}
			}
			return total, nil
		}
	}
	for i := 0; i < n; i++ {
		st, err := k.ExecWorkGroup(nd, nd.GroupAt(i), args, opts)
		total.Add(st)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
