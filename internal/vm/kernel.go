// Package vm compiles MiniCL kernels (package clc) to bytecode and executes
// them one work-group at a time. Execution is real — buffers hold real data
// and kernels compute real results — and simultaneously produces the dynamic
// statistics (instruction mix, per-warp memory-transaction estimates,
// per-work-item stride locality) that the simulated devices turn into
// virtual time.
package vm

import (
	"fmt"
	"sync"

	"fluidicl/internal/analysis"
	"fluidicl/internal/clc"
)

// Op is a bytecode opcode.
type Op uint8

// Opcodes. Register-machine encoding: A is usually the destination register,
// B and C are operands. Separate integer and float register files.
const (
	opNop Op = iota

	opLDI // ireg[A] = IImm
	opLDF // freg[A] = FImm

	opIMOV // ireg[A] = ireg[B]
	opFMOV // freg[A] = freg[B]

	opIADD // ireg[A] = ireg[B] + ireg[C]
	opISUB
	opIMUL
	opIDIV
	opIMOD
	opINEG // ireg[A] = -ireg[B]

	opFADD // freg[A] = f32(freg[B] + freg[C])
	opFSUB
	opFMUL
	opFDIV
	opFNEG

	opI2F // freg[A] = float(ireg[B])
	opF2I // ireg[A] = int(freg[B]), C truncation

	opILT // ireg[A] = ireg[B] < ireg[C]
	opILE
	opIGT
	opIGE
	opIEQ
	opINE

	opFLT // ireg[A] = freg[B] < freg[C]
	opFLE
	opFGT
	opFGE
	opFEQ
	opFNE

	opNOTB // ireg[A] = (ireg[B] == 0)

	opJMP // pc = A
	opJZ  // if ireg[B] == 0: pc = A
	opJNZ // if ireg[B] != 0: pc = A

	// Global memory (slot B = pointer parameter index, C = element index
	// register, D = static memory-op id for locality tracking).
	opLDGF // freg[A] = load f32
	opSTGF // store f32 freg[A]
	opLDGI // ireg[A] = load i32
	opSTGI // store i32 ireg[A]

	// Local memory (slot B = local array id).
	opLDLF
	opSTLF
	opLDLI
	opSTLI

	// Private arrays (slot B = private array id).
	opLDPF
	opSTPF
	opLDPI
	opSTPI

	// Work-item builtins (B = dimension register where applicable).
	opGID  // ireg[A] = get_global_id(ireg[B])
	opLID  // get_local_id
	opGRP  // get_group_id
	opNGR  // get_num_groups
	opLSZ  // get_local_size
	opGSZ  // get_global_size
	opGOFF // get_global_offset (always 0)
	opWDIM // get_work_dim

	opBARRIER

	// Math builtins.
	opSQRT // freg[A] = sqrt(freg[B])
	opFABS
	opEXP
	opLOG
	opFLOOR
	opCEIL
	opPOW  // freg[A] = pow(freg[B], freg[C])
	opFMIN // freg[A] = min(freg[B], freg[C])
	opFMAX
	opIMIN // ireg[A] = min(ireg[B], ireg[C])
	opIMAX
	opIABS // ireg[A] = abs(ireg[B])

	opRET
)

// Instr is one bytecode instruction.
type Instr struct {
	Op   Op
	A    int32
	B    int32
	C    int32
	D    int32 // static memory-op id for loads/stores
	IImm int64
	FImm float64
}

// ArgKind classifies a kernel argument.
type ArgKind int

// Argument kinds.
const (
	ArgInt ArgKind = iota
	ArgFloat
	ArgBuffer
)

// Arg is a bound kernel argument. Buffer arguments reference device-resident
// bytes directly.
type Arg struct {
	Kind ArgKind
	I    int64
	F    float64
	Buf  []byte
}

// IntArg makes an int argument.
func IntArg(v int64) Arg { return Arg{Kind: ArgInt, I: v} }

// FloatArg makes a float argument.
func FloatArg(v float64) Arg { return Arg{Kind: ArgFloat, F: v} }

// BufArg makes a buffer argument backed by mem.
func BufArg(mem []byte) Arg { return Arg{Kind: ArgBuffer, Buf: mem} }

// ParamSlot describes a compiled kernel parameter binding.
type ParamSlot struct {
	Name string
	Kind ArgKind
	Elem clc.ScalarKind // element type for buffers
	IReg int32          // register for scalar int params
	FReg int32          // register for scalar float params
}

// ArrayInfo describes a __local or private array declared in the kernel.
type ArrayInfo struct {
	Name string
	Elem clc.ScalarKind
	Len  int
}

// Kernel is a compiled MiniCL kernel.
type Kernel struct {
	Name       string
	Params     []ParamSlot
	Code       []Instr
	NumI, NumF int
	HasBarrier bool
	LocalArrs  []ArrayInfo // allocated per work-group
	PrivArrs   []ArrayInfo // allocated per work-item
	NumMemOps  int         // static count of global memory instructions
	Info       *clc.KernelInfo

	// Fused lists the superinstructions the closure backend fused, for
	// disassembly annotation; clos is the threaded code itself (one closure
	// per basic block, indexed by leader pc — nil when lowering bailed out
	// and the interpreter must be used). Both are built once in Compile.
	Fused []FusedSpan
	clos  []closFn

	// wg is the whole-work-group compilation (lockstep barrier-region
	// loops over SoA register banks) — nil when buildWG bailed out and
	// the wg backend must fall back to the per-item paths.
	wg *wgProgram

	// sum is the static access summary of the kernel's AST (strided refs,
	// rejects, barrier report), computed once at compile time. The wg
	// backend's second-chance certificate evaluates it per launch shape.
	sum *analysis.KernelSummary

	// scratch pools per-work-group execution state (*wgScratch). A compiled
	// kernel is otherwise immutable, so one Kernel may execute work-groups
	// from many goroutines concurrently.
	scratch sync.Pool
}

// NDRange describes a kernel launch: the full work-group grid of the
// original enqueue plus the rectangular slice of groups this launch
// actually executes (FluidiCL's CPU subkernels launch slices; a plain
// launch has GroupBase = 0 and GroupCount = NumGroups).
type NDRange struct {
	Dims       int
	LocalSize  [3]int
	NumGroups  [3]int // full grid of the original NDRange
	GroupBase  [3]int // first group (in full-grid coordinates) of this slice
	GroupCount [3]int // extent of this slice
}

// NewNDRange1D builds a full 1-D launch with the given global and local
// sizes (global must be a multiple of local).
func NewNDRange1D(global, local int) NDRange {
	return NewNDRange(1, [3]int{global, 1, 1}, [3]int{local, 1, 1})
}

// NewNDRange2D builds a full 2-D launch.
func NewNDRange2D(gx, gy, lx, ly int) NDRange {
	return NewNDRange(2, [3]int{gx, gy, 1}, [3]int{lx, ly, 1})
}

// NewNDRange builds a full launch covering the whole grid.
func NewNDRange(dims int, global, local [3]int) NDRange {
	nd := NDRange{Dims: dims, LocalSize: local}
	for d := 0; d < 3; d++ {
		if local[d] <= 0 {
			local[d] = 1
			nd.LocalSize[d] = 1
		}
		if global[d] <= 0 {
			global[d] = local[d]
		}
		if global[d]%local[d] != 0 {
			panic(fmt.Sprintf("vm: global size %d not a multiple of local size %d in dim %d", global[d], local[d], d))
		}
		nd.NumGroups[d] = global[d] / local[d]
		nd.GroupCount[d] = nd.NumGroups[d]
	}
	return nd
}

// TotalGroups returns the number of work-groups in the full grid.
func (nd NDRange) TotalGroups() int {
	return nd.NumGroups[0] * nd.NumGroups[1] * nd.NumGroups[2]
}

// LaunchGroups returns the number of work-groups in this launch's slice.
func (nd NDRange) LaunchGroups() int {
	return nd.GroupCount[0] * nd.GroupCount[1] * nd.GroupCount[2]
}

// WorkItemsPerGroup returns the work-group size.
func (nd NDRange) WorkItemsPerGroup() int {
	return nd.LocalSize[0] * nd.LocalSize[1] * nd.LocalSize[2]
}

// FlatGroupID flattens full-grid group coordinates, matching the paper's
// Figure 5 numbering (x fastest).
func (nd NDRange) FlatGroupID(g [3]int) int {
	return g[2]*nd.NumGroups[1]*nd.NumGroups[0] + g[1]*nd.NumGroups[0] + g[0]
}

// GroupFromFlat converts a flattened group ID back to full-grid coordinates.
func (nd NDRange) GroupFromFlat(flat int) [3]int {
	nx, ny := nd.NumGroups[0], nd.NumGroups[1]
	z := flat / (nx * ny)
	rem := flat % (nx * ny)
	return [3]int{rem % nx, rem / nx, z}
}

// GroupAt returns the full-grid coordinates of the i-th group of this
// launch's slice (x fastest within the slice).
func (nd NDRange) GroupAt(i int) [3]int {
	cx, cy := nd.GroupCount[0], nd.GroupCount[1]
	z := i / (cx * cy)
	rem := i % (cx * cy)
	return [3]int{
		nd.GroupBase[0] + rem%cx,
		nd.GroupBase[1] + rem/cx,
		nd.GroupBase[2] + z,
	}
}

// Slice returns a copy of nd restricted to the flattened group range
// [loFlat, hiFlat] rounded out to a rectangular slice of the grid. The
// returned NDRange may cover more groups than the range; callers are
// expected to guard execution with the flattened lo/hi parameters (this is
// exactly the paper's §5.2 offset-calculation scheme).
func (nd NDRange) Slice(loFlat, hiFlat int) NDRange {
	s := nd
	nx, ny := nd.NumGroups[0], nd.NumGroups[1]
	rowSz := nx
	planeSz := nx * ny
	loPlane, hiPlane := loFlat/planeSz, hiFlat/planeSz
	if loPlane == hiPlane {
		loRow, hiRow := (loFlat%planeSz)/rowSz, (hiFlat%planeSz)/rowSz
		if loRow == hiRow {
			// Within one row: exact x range.
			s.GroupBase = [3]int{loFlat % rowSz, loRow, loPlane}
			s.GroupCount = [3]int{hiFlat%rowSz - loFlat%rowSz + 1, 1, 1}
			return s
		}
		// Within one plane: whole rows.
		s.GroupBase = [3]int{0, loRow, loPlane}
		s.GroupCount = [3]int{nx, hiRow - loRow + 1, 1}
		return s
	}
	// Spans planes: whole planes.
	s.GroupBase = [3]int{0, 0, loPlane}
	s.GroupCount = [3]int{nx, ny, hiPlane - loPlane + 1}
	return s
}

// Stats aggregates the dynamic execution profile of one or more work-groups.
type Stats struct {
	WorkGroups int
	WorkItems  int

	IntOps     int64
	FloatOps   int64
	SpecialOps int64 // sqrt/exp/pow/...
	Branches   int64

	GlobalLoads      int64
	GlobalStores     int64
	GlobalLoadBytes  int64
	GlobalStoreBytes int64
	LocalAccesses    int64
	Barriers         int64

	// WarpTransactions estimates GPU memory transactions: per static memory
	// op, per 32-work-item warp, accesses to consecutive addresses coalesce
	// into one transaction.
	WarpTransactions int64

	// SeqBytes/RandBytes classify per-work-item access locality for the CPU
	// cache model: an access within 64 bytes of the same instruction's
	// previous access by the same work-item is sequential.
	SeqBytes  int64
	RandBytes int64

	// ParamReadMask/ParamWriteMask record which pointer parameters the
	// executed work-items dynamically loaded from / stored to (bit i =
	// parameter slot i). WrLo/WrHi bound the written byte offsets per slot,
	// valid only while the matching write bit is set. The runtime
	// cross-checks these against the static analyzer's summaries: a dynamic
	// access outside the static summary is a hard failure.
	ParamReadMask  uint64
	ParamWriteMask uint64
	WrLo, WrHi     [16]int32
}

// noteGlobalRead records a dynamic load from parameter slot.
func (s *Stats) noteGlobalRead(slot int32) {
	if slot < 64 {
		s.ParamReadMask |= 1 << uint(slot)
	}
}

// noteGlobalWrite records a dynamic store of the 4 bytes at off to
// parameter slot.
func (s *Stats) noteGlobalWrite(slot, off int32) {
	if slot >= 64 {
		return
	}
	bit := uint64(1) << uint(slot)
	if int(slot) < len(s.WrLo) {
		if s.ParamWriteMask&bit == 0 || off < s.WrLo[slot] {
			s.WrLo[slot] = off
		}
		if s.ParamWriteMask&bit == 0 || off+4 > s.WrHi[slot] {
			s.WrHi[slot] = off + 4
		}
	}
	s.ParamWriteMask |= bit
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.WorkGroups += o.WorkGroups
	s.WorkItems += o.WorkItems
	s.IntOps += o.IntOps
	s.FloatOps += o.FloatOps
	s.SpecialOps += o.SpecialOps
	s.Branches += o.Branches
	s.GlobalLoads += o.GlobalLoads
	s.GlobalStores += o.GlobalStores
	s.GlobalLoadBytes += o.GlobalLoadBytes
	s.GlobalStoreBytes += o.GlobalStoreBytes
	s.LocalAccesses += o.LocalAccesses
	s.Barriers += o.Barriers
	s.WarpTransactions += o.WarpTransactions
	s.SeqBytes += o.SeqBytes
	s.RandBytes += o.RandBytes
	s.ParamReadMask |= o.ParamReadMask
	for i := 0; i < len(o.WrLo); i++ {
		bit := uint64(1) << uint(i)
		if o.ParamWriteMask&bit == 0 {
			continue
		}
		if s.ParamWriteMask&bit == 0 || o.WrLo[i] < s.WrLo[i] {
			s.WrLo[i] = o.WrLo[i]
		}
		if s.ParamWriteMask&bit == 0 || o.WrHi[i] > s.WrHi[i] {
			s.WrHi[i] = o.WrHi[i]
		}
	}
	s.ParamWriteMask |= o.ParamWriteMask
}

// UndoRecord is one overwritten global-memory word.
type UndoRecord struct {
	Buf []byte
	Off int
	Old [4]byte
}

// UndoLog captures global stores so a work-group's effects can be rolled
// back (the simulator uses this when a work-group turns out to have aborted
// mid-flight because the CPU's completion status arrived during its
// execution window).
type UndoLog struct {
	recs []UndoRecord
}

// Rollback undoes all recorded stores, newest first, and clears the log.
func (u *UndoLog) Rollback() {
	for i := len(u.recs) - 1; i >= 0; i-- {
		r := u.recs[i]
		copy(r.Buf[r.Off:r.Off+4], r.Old[:])
	}
	u.recs = u.recs[:0]
}

// Len returns the number of recorded stores.
func (u *UndoLog) Len() int { return len(u.recs) }
