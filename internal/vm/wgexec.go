package vm

// Lockstep whole-work-group execution.
//
// The engine keeps the work-items of one group partitioned into sets by
// current basic-block leader pc. Each iteration pops the set with the
// smallest pc (merging any sets that meet at the same block), charges the
// block against every member's step budget, runs the block's banked steps —
// each a single call that loops over the whole set against the SoA register
// banks — and then applies the terminator: fallthrough/jump move the set,
// conditional branches partition it, RET retires members, and barriers park
// them until the phase ends.
//
// Under the noninterference certificate (wgcert.go) any schedule that
// preserves each work-item's own program order produces identical buffers
// and register trajectories, so the min-pc policy is purely a locality
// heuristic. Stats come out identical to the interpreter too: every counter
// the banked steps touch is an order-independent sum, mask, or min/max —
// except the memory-locality tracker, which is order-sensitive, so the
// steps record each item's (memID, offset) stream in program order and the
// phase end replays the streams through the ordinary memTracker in exactly
// the interpreter's per-item, per-warp call sequence.
//
// Error parity is by presence, not by text: all engines error on the same
// launches (each item's trace, including its step budget, is identical),
// but the failing work-item the message names — and buffer contents on the
// error path — may differ because set order decides who trips first. This
// mirrors the closure backend's documented budget-pc divergence, and tests
// compare buffers only on error-free runs.

// wgAcc is one recorded global access, replayed through the memTracker at
// phase end.
type wgAcc struct {
	id  int32
	off int32
}

// wgSet is an ordered set of work-items whose next block starts at pc.
type wgSet struct {
	pc    int
	items []int32
}

// wstep executes one (possibly fused) instruction for every work-item in
// set. It returns false when execution failed; the error is in wmach.err.
type wstep func(m *wmach, set []int32) bool

// wmach is the lockstep engine's execution context: SoA register banks plus
// the per-group state the other backends keep in cmach.
type wmach struct {
	k      *Kernel
	nd     NDRange
	group  [3]int
	args   []Arg
	locals [][]byte
	tr     *memTracker
	stat   Stats
	st     *Stats
	def    *DeferredWrites
	undo   *UndoLog

	maxSteps int64
	err      error

	n  int       // work-items per group
	ib []int64   // int banks: ib[reg*n + t]
	fb []float64 // float banks: fb[reg*n + t]
	// priv[slot] holds n per-item slabs back to back; item t's slab is
	// priv[slot][t*privSz[slot] : (t+1)*privSz[slot]].
	priv   [][]byte
	privSz []int
	lid0   []int64 // local ids per item
	lid1   []int64
	lid2   []int64
	steps  []int64 // per-item step budget

	rec  [][]wgAcc // per-item (memID, off) streams for this phase
	work []*wgSet
	free []*wgSet

	// Uniform-control-flow fast paths. full is true while the set being
	// dispatched is the whole group in ascending order, letting hot steps
	// run bounds-check-free range loops; uniform is true while the current
	// phase has never partitioned, enabling the transposed tracker replay;
	// budgetScalar charges one shared step counter until the group first
	// diverges.
	full         bool
	uniform      bool
	budgetScalar bool
	stepsAll     int64
	lastB        []int32 // transposed tracker: last offset per (memID, item)
	seenB        []bool  // lastB validity per (memID, item)

	// Columnar access log (wgfuse.go era). While colMode — the phase is
	// still uniform, so every dispatch is the full group — each dynamic
	// global access is recorded as one contiguous column of n offsets
	// (colBuf[j*n:(j+1)*n], memID in colIDs[j]) instead of n per-item
	// stream appends. replayCols consumes the columns directly with the
	// replayFast math; colFlush transposes them into rec the moment any
	// step needs per-item recording or the phase first partitions, so the
	// invariant holds: colMode implies rec is empty and the columns, in
	// order, are exactly every item's program-order access stream.
	colMode bool
	colIDs  []int32
	colBuf  []int32

	// fuse selects the fused block closures (wgfuse.go) for this group;
	// resolved once at group entry from the FLUIDICL_WG_FUSE knob.
	fuse bool

	parked    int
	done      int
	barrierPC int
	diverged  bool
}

// release drops references to caller-owned memory so the pooled machine
// never retains buffers or stats beyond the work-group that used it.
func (m *wmach) release() {
	m.args, m.locals, m.tr, m.st = nil, nil, nil, nil
	m.def, m.undo, m.err = nil, nil, nil
}

// wmFor returns the scratch's lockstep machine sized and zeroed for one
// work-group of k with n work-items.
func (s *wgScratch) wmFor(k *Kernel, n int) *wmach {
	if s.wm == nil {
		s.wm = &wmach{}
	}
	m := s.wm
	m.n = n
	m.ib = sizedI64(m.ib, k.NumI*n)
	m.fb = sizedF64(m.fb, k.NumF*n)
	m.steps = sizedI64(m.steps, n)
	m.lid0 = growI64(m.lid0, n)
	m.lid1 = growI64(m.lid1, n)
	m.lid2 = growI64(m.lid2, n)
	if len(m.priv) != len(k.PrivArrs) {
		m.priv = make([][]byte, len(k.PrivArrs))
		m.privSz = make([]int, len(k.PrivArrs))
	}
	for i, pa := range k.PrivArrs {
		sz := pa.Len * pa.Elem.Size()
		m.privSz[i] = sz
		tot := sz * n
		if cap(m.priv[i]) < tot {
			m.priv[i] = make([]byte, tot)
		} else {
			m.priv[i] = m.priv[i][:tot]
			clear(m.priv[i])
		}
	}
	for len(m.rec) < n {
		m.rec = append(m.rec, nil)
	}
	m.rec = m.rec[:n]
	for t := range m.rec {
		m.rec[t] = m.rec[t][:0]
	}
	m.lastB = growI32(m.lastB, k.NumMemOps*n)
	m.seenB = sizedBool(m.seenB, k.NumMemOps*n)
	m.free = append(m.free, m.work...)
	m.work = m.work[:0]
	m.parked, m.done = 0, 0
	m.stepsAll = 0
	m.budgetScalar = true
	m.diverged = false
	m.err = nil
	return m
}

func sizedI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func sizedF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func sizedBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func (m *wmach) takeSet(pc int) *wgSet {
	var s *wgSet
	if ln := len(m.free); ln > 0 {
		s = m.free[ln-1]
		m.free = m.free[:ln-1]
	} else {
		s = &wgSet{}
	}
	s.pc = pc
	s.items = s.items[:0]
	return s
}

func (m *wmach) freeSet(s *wgSet) {
	m.free = append(m.free, s)
}

// push enqueues s, merging it into an already-queued set at the same pc
// (concatenation order is irrelevant under the certificate) and dropping it
// when empty.
func (m *wmach) push(s *wgSet) {
	if len(s.items) == 0 {
		m.freeSet(s)
		return
	}
	for _, q := range m.work {
		if q.pc == s.pc {
			q.items = append(q.items, s.items...)
			m.freeSet(s)
			return
		}
	}
	m.work = append(m.work, s)
}

// popMin removes and returns the queued set with the smallest pc.
func (m *wmach) popMin() *wgSet {
	best := 0
	for i := 1; i < len(m.work); i++ {
		if m.work[i].pc < m.work[best].pc {
			best = i
		}
	}
	s := m.work[best]
	last := len(m.work) - 1
	m.work[best] = m.work[last]
	m.work[last] = nil
	m.work = m.work[:last]
	return s
}

// recAcc records one global access of item t for the phase-end tracker
// replay. Steps that record per item force the columnar log out first so
// the per-item streams stay in program order.
func (m *wmach) recAcc(t int32, id, off int32) {
	if id >= 0 {
		if m.colMode {
			m.colFlush()
		}
		m.rec[t] = append(m.rec[t], wgAcc{id: id, off: off})
	}
}

// colReserve grows the columnar log by k columns in one step and returns
// the index of the first. A caller holding several column subslices MUST
// reserve them all in one call: a later growth can reallocate the backing
// array, silently orphaning subslices taken before it (their writes would
// land in the dead array and the live columns would replay as zeros).
func (m *wmach) colReserve(k int) int {
	n := m.n
	j := len(m.colIDs)
	need := (j + k) * n
	if cap(m.colBuf) < need {
		grown := make([]int32, need, need*2)
		copy(grown, m.colBuf)
		m.colBuf = grown
	} else {
		m.colBuf = m.colBuf[:need]
	}
	return j
}

// colFor appends a new access column for one dynamic global access of
// memID id and returns its n-offset slice. Caller fills col[t] for every
// item before reserving any further column; only valid while colMode.
func (m *wmach) colFor(id int32) []int32 {
	n := m.n
	j := m.colReserve(1)
	m.colIDs = append(m.colIDs, id)
	return m.colBuf[j*n : (j+1)*n]
}

// colFor2 reserves two columns atomically so both subslices stay valid.
func (m *wmach) colFor2(id1, id2 int32) ([]int32, []int32) {
	n := m.n
	j := m.colReserve(2)
	m.colIDs = append(m.colIDs, id1, id2)
	return m.colBuf[j*n : (j+1)*n], m.colBuf[(j+1)*n : (j+2)*n]
}

// colFlush transposes the columnar log into the per-item rec streams and
// leaves columnar mode. Because every access of the phase so far went to a
// column, appending the columns in order reconstructs each item's exact
// program-order stream.
func (m *wmach) colFlush() {
	n := m.n
	for j, id := range m.colIDs {
		col := m.colBuf[j*n : j*n+n]
		for t := 0; t < n; t++ {
			m.rec[t] = append(m.rec[t], wgAcc{id: id, off: col[t]})
		}
	}
	m.colIDs = m.colIDs[:0]
	m.colBuf = m.colBuf[:0]
	m.colMode = false
}

// replay drives the recorded access streams through the memTracker in the
// interpreter's exact order: items ascending, each opening a warp slot,
// each stream in program order.
func (m *wmach) replay() {
	for t := 0; t < m.n; t++ {
		first := t%warpSize == 0
		m.tr.nextWI(first)
		for _, a := range m.rec[t] {
			m.tr.access(a.id, a.off, first, m.st)
		}
		m.rec[t] = m.rec[t][:0]
	}
}

// replayFast is the transposed replay for phases that never partitioned:
// every item recorded the same static access sequence, so the j-th access
// of every stream shares one memID and one occurrence index. The CPU
// stride stats depend only on each item's own stream (banked last/seen
// state), and the warp comparison of item t's occ-th access against item
// t-1's reduces to comparing the j-th offsets of adjacent streams — so one
// column-major pass computes the memTracker's exact totals with no
// occurrence bookkeeping and no per-memID offset lists.
func (m *wmach) replayFast() {
	n := m.n
	if n == 0 {
		return
	}
	stream0 := m.rec[0]
	for j := range stream0 {
		id := int(stream0[j].id)
		base := id * n
		lastB := m.lastB[base : base+n]
		seenB := m.seenB[base : base+n]
		var seq, rand, warp int64
		var prevOff int32
		for t := 0; t < n; t++ {
			off := m.rec[t][j].off
			if seenB[t] {
				d := off - lastB[t]
				if d < 0 {
					d = -d
				}
				if d <= cacheLineBytes {
					seq++
				} else {
					rand++
				}
			} else {
				rand++
				seenB[t] = true
			}
			lastB[t] = off
			if t%warpSize == 0 {
				warp++
			} else {
				d := off - prevOff
				if d < 0 {
					d = -d
				}
				if d > 4 {
					warp++
				}
			}
			prevOff = off
		}
		m.st.SeqBytes += 4 * seq
		m.st.RandBytes += 4 * rand
		m.st.WarpTransactions += warp
	}
	for t := 0; t < n; t++ {
		m.rec[t] = m.rec[t][:0]
	}
	// The banked stride state is per phase, like the memTracker's
	// (nextWI resets it for every item at each phase boundary).
	clear(m.seenB)
}

// replayCols is replayFast over the columnar log: the phase never left
// columnar mode, so the j-th column already is the j-th access of every
// item's (identical, static) sequence — the transposed walk runs over the
// contiguous column instead of indirecting through n per-item slices.
func (m *wmach) replayCols() {
	n := m.n
	if n == 0 {
		return
	}
	for j, idv := range m.colIDs {
		id := int(idv)
		base := id * n
		lastB := m.lastB[base : base+n]
		seenB := m.seenB[base : base+n]
		col := m.colBuf[j*n : j*n+n]
		var seq, rand, warp int64
		var prevOff int32
		for t := 0; t < n; t++ {
			off := col[t]
			if seenB[t] {
				d := off - lastB[t]
				if d < 0 {
					d = -d
				}
				if d <= cacheLineBytes {
					seq++
				} else {
					rand++
				}
			} else {
				rand++
				seenB[t] = true
			}
			lastB[t] = off
			if t%warpSize == 0 {
				warp++
			} else {
				d := off - prevOff
				if d < 0 {
					d = -d
				}
				if d > 4 {
					warp++
				}
			}
			prevOff = off
		}
		m.st.SeqBytes += 4 * seq
		m.st.RandBytes += 4 * rand
		m.st.WarpTransactions += warp
	}
	m.colIDs = m.colIDs[:0]
	m.colBuf = m.colBuf[:0]
	clear(m.seenB)
}

// execWGLockstep executes one certified work-group on the lockstep engine.
func (k *Kernel) execWGLockstep(nd NDRange, group [3]int, args []Arg, opts ExecOpts, sc *wgScratch) (Stats, error) {
	backendCtr.wgLoopWGs.Add(1)
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = defaultMaxSteps
	}
	nWI := nd.WorkItemsPerGroup()
	m := sc.wmFor(k, nWI)
	m.k = k
	m.nd, m.group = nd, group
	m.args = args
	m.locals = sc.localsFor(k)
	m.tr = sc.trackerFor(k)
	m.stat = Stats{WorkGroups: 1, WorkItems: nWI}
	m.st = &m.stat
	m.def, m.undo = opts.Def, opts.Undo
	m.maxSteps = maxSteps
	m.fuse = WGFuseEnabled()

	err := m.runGroup()
	st := m.stat
	m.release()
	return st, err
}

// runGroup runs the whole group phase by phase until every item returns.
func (m *wmach) runGroup() error {
	k := m.k
	wg := k.wg
	n := m.n

	lx, ly := m.nd.LocalSize[0], m.nd.LocalSize[1]
	for t := 0; t < n; t++ {
		m.lid0[t] = int64(t % lx)
		m.lid1[t] = int64((t / lx) % ly)
		m.lid2[t] = int64(t / (lx * ly))
	}
	for i, p := range k.Params {
		switch p.Kind {
		case ArgInt:
			bank := m.ib[int(p.IReg)*n : int(p.IReg)*n+n]
			v := m.args[i].I
			for t := range bank {
				bank[t] = v
			}
		case ArgFloat:
			bank := m.fb[int(p.FReg)*n : int(p.FReg)*n+n]
			v := float64(float32(m.args[i].F))
			for t := range bank {
				bank[t] = v
			}
		}
	}

	entry := 0
	for {
		m.parked, m.barrierPC = 0, -1
		m.uniform = true
		m.colMode = true
		m.colIDs = m.colIDs[:0]
		m.colBuf = m.colBuf[:0]
		s := m.takeSet(entry)
		for t := 0; t < n; t++ {
			s.items = append(s.items, int32(t))
		}
		m.work = append(m.work, s)

		for len(m.work) > 0 {
			s := m.popMin()
			blk := wg.blocks[s.pc]
			m.full = m.uniform && len(s.items) == n
			if m.budgetScalar {
				if m.full {
					if m.stepsAll += blk.nInstr; m.stepsAll > m.maxSteps {
						m.err = &execError{k.Name, blk.start, "instruction budget exceeded (possible infinite loop)"}
						m.freeSet(s)
						return m.err
					}
				} else {
					// First divergent block of the group: fan the shared
					// counter out so every item keeps its exact total.
					for t := range m.steps {
						m.steps[t] = m.stepsAll
					}
					m.budgetScalar = false
				}
			}
			if !m.budgetScalar {
				for _, t := range s.items {
					if m.steps[t] += blk.nInstr; m.steps[t] > m.maxSteps {
						m.err = &execError{k.Name, blk.start, "instruction budget exceeded (possible infinite loop)"}
						m.freeSet(s)
						return m.err
					}
				}
			}
			steps := blk.steps
			if m.fuse && blk.fsteps != nil {
				steps = blk.fsteps
			}
			for _, stp := range steps {
				if !stp(m, s.items) {
					m.freeSet(s)
					return m.err
				}
			}
			switch blk.term.kind {
			case wtFall:
				s.pc = blk.term.next
				m.push(s)
			case wtJmp:
				m.stat.Branches += int64(len(s.items))
				s.pc = blk.term.tgt
				m.push(s)
			case wtCond:
				m.stat.Branches += int64(len(s.items))
				base := int(blk.term.condReg) * n
				jz := blk.term.jz
				ib := m.ib
				if m.full {
					// Dynamic uniformity scan: when the whole group agrees
					// on the branch, move the set wholesale. Semantically
					// identical to partitioning into one non-empty and one
					// empty set, but skips rebuilding the item list on every
					// trip around a uniform loop.
					allZ, allNZ := true, true
					for _, v := range ib[base : base+n] {
						if v == 0 {
							allNZ = false
						} else {
							allZ = false
						}
						if !allZ && !allNZ {
							break
						}
					}
					if allZ || allNZ {
						if allZ == jz {
							s.pc = blk.term.tgt
						} else {
							s.pc = blk.term.next
						}
						m.push(s)
						break
					}
				}
				taken := m.takeSet(blk.term.tgt)
				fall := m.takeSet(blk.term.next)
				for _, t := range s.items {
					if (ib[base+int(t)] == 0) == jz {
						taken.items = append(taken.items, t)
					} else {
						fall.items = append(fall.items, t)
					}
				}
				if len(taken.items) > 0 && len(fall.items) > 0 {
					if m.colMode {
						m.colFlush()
					}
					m.uniform = false
				}
				m.freeSet(s)
				m.push(taken)
				m.push(fall)
			case wtRet:
				m.done += len(s.items)
				m.freeSet(s)
			case wtBarrier:
				if m.barrierPC == -1 {
					m.barrierPC = blk.term.next
				} else if m.barrierPC != blk.term.next {
					m.diverged = true
				}
				m.parked += len(s.items)
				m.freeSet(s)
			}
		}

		if m.diverged {
			m.err = &execError{k.Name, m.barrierPC, "work-items diverged to different barriers"}
			return m.err
		}
		if m.uniform {
			if m.colMode {
				m.replayCols()
			} else {
				m.replayFast()
			}
		} else {
			m.replay()
		}
		if m.parked == 0 {
			return nil
		}
		if m.done > 0 {
			m.err = &execError{k.Name, m.barrierPC, "barrier not reached by all work-items"}
			return m.err
		}
		m.stat.Barriers++
		entry = m.barrierPC
	}
}
