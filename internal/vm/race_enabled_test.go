//go:build race

package vm

// raceEnabled reports whether the race detector is on; its instrumentation
// allocates, so allocs/op guards skip under -race.
const raceEnabled = true
