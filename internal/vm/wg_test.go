package vm

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Tests for the whole-work-group lockstep backend: parity against the
// per-item engines on barrier shapes the certificate accepts, and correct
// fallback (never wrong answers) on the shapes it must reject.

// revSrc is the local-memory reversal kernel: one barrier, a __local array
// written by local id and read reversed.
const revSrc = `
__kernel void rev(__global float* a, int n) {
    __local float tmp[16];
    int l = get_local_id(0);
    int g = get_global_id(0);
    tmp[l] = a[g];
    barrier(CLK_LOCAL_MEM_FENCE);
    a[g] = tmp[15 - l] + 1.0f;
}
`

func floatBuf(n int, f func(i int) float32) []byte {
	buf := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(f(i)))
	}
	return buf
}

// runWGParity executes the launch under interp and wg and requires identical
// buffers, Stats, and error presence. It returns the wg-side error.
func runWGParity(t *testing.T, k *Kernel, nd NDRange, mkArgs func() []Arg) error {
	t.Helper()
	run := func(be Backend) ([]string, Stats, error) {
		args := mkArgs()
		st, err := k.ExecLaunch(nd, args, ExecOpts{Backend: be})
		var bufs []string
		for _, a := range args {
			if a.Kind == ArgBuffer {
				bufs = append(bufs, string(a.Buf))
			}
		}
		return bufs, st, err
	}
	bufI, stI, errI := run(BackendInterp)
	bufW, stW, errW := run(BackendWG)
	if (errI == nil) != (errW == nil) {
		t.Fatalf("error disagreement: interp=%v wg=%v", errI, errW)
	}
	if errI != nil {
		return errW
	}
	if stI != stW {
		t.Fatalf("Stats diverge:\ninterp: %+v\nwg:     %+v", stI, stW)
	}
	for i := range bufI {
		if bufI[i] != bufW[i] {
			t.Fatalf("buffer %d differs between interp and wg", i)
		}
	}
	return nil
}

func TestWGBarrierParity(t *testing.T) {
	k := MustCompile(revSrc, "rev")
	if k.wg == nil {
		t.Fatal("wg compilation rejected the rev kernel")
	}
	before := BackendSnapshot()
	if err := runWGParity(t, k, NewNDRange1D(32, 16), func() []Arg {
		return []Arg{BufArg(floatBuf(32, func(i int) float32 { return float32(i) * 0.5 })), IntArg(32)}
	}); err != nil {
		t.Fatal(err)
	}
	after := BackendSnapshot()
	if got := after.WGLoopWGs - before.WGLoopWGs; got != 2 {
		t.Errorf("WGLoopWGs advanced by %d, want 2 (both groups on the lockstep engine)", got)
	}
	if after.WGFallbackWGs != before.WGFallbackWGs {
		t.Errorf("WGFallbackWGs advanced for a certified kernel")
	}
}

func TestWGBarrierInLoopParity(t *testing.T) {
	k := MustCompile(`
__kernel void iterrev(__global float* a, int rounds) {
    __local float tmp[16];
    int l = get_local_id(0);
    int g = get_global_id(0);
    float v = a[g];
    for (int r = 0; r < rounds; r++) {
        tmp[l] = v;
        barrier(CLK_LOCAL_MEM_FENCE);
        v = tmp[15 - l] * 0.5f + 1.0f;
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    a[g] = v;
}
`, "iterrev")
	if k.wg == nil {
		t.Fatal("wg compilation rejected the barrier-in-loop kernel")
	}
	if len(k.wg.regions) != 3 {
		t.Errorf("expected 3 barrier regions (entry + two resumes), got %d", len(k.wg.regions))
	}
	if err := runWGParity(t, k, NewNDRange1D(16, 16), func() []Arg {
		return []Arg{BufArg(floatBuf(16, func(i int) float32 { return float32(i) - 3 })), IntArg(5)}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWG2DLocalParity(t *testing.T) {
	k := MustCompile(`
__kernel void t2d(__global float* a, int w) {
    __local float tile[16];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    tile[ly*4 + lx] = a[gy*w + gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    a[gy*w + gx] = tile[lx*4 + ly] + 2.0f;
}
`, "t2d")
	if k.wg == nil {
		t.Fatal("wg compilation rejected the 2D local kernel")
	}
	const w = 8
	if err := runWGParity(t, k, NewNDRange2D(w, w, 4, 4), func() []Arg {
		return []Arg{BufArg(floatBuf(w*w, func(i int) float32 { return float32(i%7) * 1.25 })), IntArg(w)}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWGDivergentBarrierFallback(t *testing.T) {
	// The barrier hides under control flow the static analyzer flags as
	// work-item-divergent (condition on get_global_id), so buildWG must
	// reject the kernel and the wg backend must fall back — with correct
	// results, since g >= 0 is dynamically uniform (always true).
	k := MustCompile(`
__kernel void divb(__global float* a, int n) {
    __local float tmp[16];
    int l = get_local_id(0);
    int g = get_global_id(0);
    tmp[l] = a[g];
    if (g >= 0) {
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    a[g] = tmp[15 - l];
}
`, "divb")
	if k.wg != nil {
		t.Fatal("wg compilation accepted a divergent-barrier kernel")
	}
	before := BackendSnapshot()
	if err := runWGParity(t, k, NewNDRange1D(16, 16), func() []Arg {
		return []Arg{
			BufArg(floatBuf(16, func(i int) float32 { return float32(i) })),
			IntArg(16),
		}
	}); err != nil {
		t.Fatal(err)
	}
	after := BackendSnapshot()
	if after.WGLoopWGs != before.WGLoopWGs {
		t.Errorf("lockstep engine ran a rejected kernel")
	}
	if after.WGFallbackWGs == before.WGFallbackWGs {
		t.Errorf("WGFallbackWGs did not advance on the fallback path")
	}
}

func TestWGUncertifiedFallback(t *testing.T) {
	// Structurally fine (wg compiles), but the store index is loaded from a
	// buffer, so the launch-time certificate sees TOP and must refuse: the
	// scatter may collide across work-items, where lockstep block order and
	// interp item order would disagree. idx maps item l to slot 15-l, so the
	// sequential result is well-defined and must be reproduced exactly.
	k := MustCompile(`
__kernel void scatter(__global float* a, __global int* idx, int n) {
    int l = get_local_id(0);
    a[idx[l]] = (float)l;
}
`, "scatter")
	if k.wg == nil {
		t.Fatal("wg compilation rejected the scatter kernel (expected launch-time fallback instead)")
	}
	before := BackendSnapshot()
	if err := runWGParity(t, k, NewNDRange1D(16, 16), func() []Arg {
		ib := make([]byte, 4*16)
		for i := 0; i < 16; i++ {
			binary.LittleEndian.PutUint32(ib[4*i:], uint32(15-i))
		}
		return []Arg{BufArg(make([]byte, 4*16)), BufArg(ib), IntArg(16)}
	}); err != nil {
		t.Fatal(err)
	}
	after := BackendSnapshot()
	if after.WGLoopWGs != before.WGLoopWGs {
		t.Errorf("lockstep engine ran an uncertified launch")
	}
	if after.WGFallbackWGs == before.WGFallbackWGs {
		t.Errorf("WGFallbackWGs did not advance on the uncertified path")
	}
}

func TestWGAliasedBuffersFallback(t *testing.T) {
	// Two buffer params backed by the same storage defeat the certificate's
	// per-object disjointness, so the group must fall back even though the
	// index forms certify. Parity against interp with the same aliasing.
	k := MustCompile(`
__kernel void axpy(__global float* x, __global float* y, int n) {
    int g = get_global_id(0);
    y[g] = x[g] * 2.0f;
}
`, "axpy")
	if k.wg == nil {
		t.Fatal("wg compilation rejected the axpy kernel")
	}
	shared := floatBuf(16, func(i int) float32 { return float32(i) })
	before := BackendSnapshot()
	run := func(be Backend) string {
		buf := append([]byte(nil), shared...)
		if _, err := k.ExecLaunch(NewNDRange1D(16, 16),
			[]Arg{BufArg(buf), BufArg(buf), IntArg(16)}, ExecOpts{Backend: be}); err != nil {
			t.Fatal(err)
		}
		return string(buf)
	}
	if run(BackendInterp) != run(BackendWG) {
		t.Fatal("aliased-buffer results differ between interp and wg")
	}
	if got := BackendSnapshot().WGLoopWGs; got != before.WGLoopWGs {
		t.Errorf("lockstep engine ran an aliased launch")
	}
}

func TestWGPrivateArrayFallback(t *testing.T) {
	// Barrier-free kernels with private arrays must not build a wg program:
	// the per-item engines share one un-cleared slab across a group's items
	// (see buildWG), which lockstep cannot reproduce.
	k := MustCompile(`
__kernel void privsum(__global float* a, int n) {
    float acc[4];
    int g = get_global_id(0);
    acc[0] = a[g];
    a[g] = acc[0] + 1.0f;
}
`, "privsum")
	if k.wg != nil {
		t.Fatal("wg compilation accepted a barrier-free kernel with a private array")
	}
	if err := runWGParity(t, k, NewNDRange1D(16, 16), func() []Arg {
		return []Arg{BufArg(floatBuf(16, func(i int) float32 { return float32(i) })), IntArg(16)}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWGAbortRollbackParity(t *testing.T) {
	// A certified kernel that faults mid-group: with an undo log, rolling
	// back must restore the buffers exactly on every backend, and error
	// presence must agree (the faulting work-item and partial writes may
	// differ — set order decides who trips first).
	k := MustCompile(`
__kernel void oob(__global float* a, int off) {
    int g = get_global_id(0);
    a[g + off] = 1.0f;
}
`, "oob")
	if k.wg == nil {
		t.Fatal("wg compilation rejected the oob kernel")
	}
	orig := floatBuf(16, func(i int) float32 { return float32(i) * 0.25 })
	for _, be := range []Backend{BackendInterp, BackendClosure, BackendWG} {
		buf := append([]byte(nil), orig...)
		var undo UndoLog
		_, err := k.ExecWorkGroup(NewNDRange1D(16, 16), [3]int{0, 0, 0},
			[]Arg{BufArg(buf), IntArg(8)}, ExecOpts{Undo: &undo, Backend: be})
		if err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("%v: expected out-of-range store error, got %v", be, err)
		}
		undo.Rollback()
		if string(buf) != string(orig) {
			t.Fatalf("%v: rollback did not restore the buffer after mid-group abort", be)
		}
	}

	// Same abort under deferred writes: the log is simply dropped, so the
	// buffers must be untouched without any rollback.
	for _, be := range []Backend{BackendInterp, BackendWG} {
		buf := append([]byte(nil), orig...)
		args := []Arg{BufArg(buf), IntArg(8)}
		var def DeferredWrites
		def.begin(len(args))
		_, err := k.ExecWorkGroup(NewNDRange1D(16, 16), [3]int{0, 0, 0}, args,
			ExecOpts{Def: &def, Backend: be})
		if err == nil {
			t.Fatalf("%v: expected out-of-range store error under deferred writes", be)
		}
		if string(buf) != string(orig) {
			t.Fatalf("%v: deferred-writes abort mutated the buffers", be)
		}
	}
}

func TestWGCompileCounters(t *testing.T) {
	before := BackendSnapshot()
	k := MustCompile(revSrc, "rev")
	after := BackendSnapshot()
	if k.wg == nil {
		t.Fatal("wg compilation rejected the rev kernel")
	}
	if got := after.WGKernels - before.WGKernels; got != 1 {
		t.Errorf("WGKernels advanced by %d, want 1", got)
	}
	if got := after.WGRegions - before.WGRegions; got != 2 {
		t.Errorf("WGRegions advanced by %d, want 2 (entry + one barrier resume)", got)
	}
}

func TestWGBudgetErrorParity(t *testing.T) {
	// The banked budget check mirrors the block-batched closure check, so
	// all backends raise the budget error on the same launches.
	k := MustCompile(`__kernel void f(__global int* a) { while (true) { a[0] = 1; } }`, "f")
	for _, be := range []Backend{BackendInterp, BackendClosure, BackendWG} {
		_, err := k.ExecWorkGroup(NewNDRange1D(1, 1), [3]int{0, 0, 0},
			[]Arg{BufArg(make([]byte, 4))}, ExecOpts{MaxSteps: 10000, Backend: be})
		if err == nil || !strings.Contains(err.Error(), "instruction budget exceeded") {
			t.Fatalf("%v: budget error not raised: %v", be, err)
		}
	}
}

func TestDisasmWGGolden(t *testing.T) {
	k := MustCompile(revSrc, "rev")
	got := k.Disasm()
	if !strings.Contains(got, "; -- wg region") || !strings.Contains(got, "; wg.loop") {
		t.Fatalf("disasm lacks wg annotations:\n%s", got)
	}
	golden := filepath.Join("testdata", "disasm_wg.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if got != string(want) {
		t.Errorf("wg disasm drifted from %s (UPDATE_GOLDEN=1 to regenerate)\ngot:\n%s", golden, got)
	}
}
