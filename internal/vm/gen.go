package vm

// Random MiniCL kernel generation, shared by the VM's differential test
// (compiler+VM vs the independent AST interpreter) and the analyzer's
// differential test (dynamic access sets vs static summaries).

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenProgram returns a random — but deterministic, well-typed and
// terminating — MiniCL kernel named "diff" over the fixed signature
// (__global float* fbuf, __global int* ibuf, int n, int p1, float fp).
func GenProgram(r *rand.Rand) string {
	g := &progGen{r: r}
	return g.generate()
}

// progGen generates random—but deterministic, well-typed, terminating—kernels.
type progGen struct {
	r      *rand.Rand
	b      strings.Builder
	indent int
	// in-scope variable names by type; the first nRO entries of ints are
	// read-only (parameters like n, whose mutation would break the
	// safe-index/safe-divisor invariants).
	ints   []string
	nROInt int
	floats []string
	nVars  int
	nLoops int
	depth  int
}

func (g *progGen) w(format string, args ...interface{}) {
	g.b.WriteString(strings.Repeat("    ", g.indent))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteString("\n")
}

func (g *progGen) freshVar() string {
	g.nVars++
	return fmt.Sprintf("v%d", g.nVars)
}

// intExpr produces a random int-typed expression using in-scope variables.
func (g *progGen) intExpr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(21)-10)
		case 1:
			if len(g.ints) > 0 {
				return g.ints[g.r.Intn(len(g.ints))]
			}
			return "i"
		default:
			return "i"
		}
	}
	switch g.r.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 3:
		// Division and modulo by a guaranteed-nonzero constant.
		return fmt.Sprintf("(%s %s %d)", g.intExpr(depth-1),
			[]string{"/", "%"}[g.r.Intn(2)], g.r.Intn(9)+1)
	case 4:
		return fmt.Sprintf("min(%s, %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 5:
		return fmt.Sprintf("max(abs(%s), %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 6:
		return fmt.Sprintf("(%s ? %s : %s)", g.boolExpr(depth-1), g.intExpr(depth-1), g.intExpr(depth-1))
	default:
		return fmt.Sprintf("(int)%s", g.floatExpr(depth-1))
	}
}

func (g *progGen) floatExpr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%.3ff", g.r.Float64()*8-4)
		case 1:
			if len(g.floats) > 0 {
				return g.floats[g.r.Intn(len(g.floats))]
			}
			return "fp"
		default:
			return "fp"
		}
	}
	switch g.r.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.floatExpr(depth-1), g.floatExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.floatExpr(depth-1), g.floatExpr(depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.floatExpr(depth-1), g.floatExpr(depth-1))
	case 3:
		// Divide by something bounded away from zero.
		return fmt.Sprintf("(%s / (fabs(%s) + 1.0f))", g.floatExpr(depth-1), g.floatExpr(depth-1))
	case 4:
		return fmt.Sprintf("sqrt(fabs(%s))", g.floatExpr(depth-1))
	case 5:
		return fmt.Sprintf("fmin(%s, fmax(%s, -8.0f))", g.floatExpr(depth-1), g.floatExpr(depth-1))
	case 6:
		return fmt.Sprintf("(%s ? %s : %s)", g.boolExpr(depth-1), g.floatExpr(depth-1), g.floatExpr(depth-1))
	default:
		return fmt.Sprintf("(float)%s", g.intExpr(depth-1))
	}
}

func (g *progGen) boolExpr(depth int) string {
	if depth <= 0 {
		return fmt.Sprintf("(%s < %s)", g.intExpr(0), g.intExpr(0))
	}
	switch g.r.Intn(5) {
	case 0:
		return fmt.Sprintf("(%s %s %s)", g.intExpr(depth-1),
			[]string{"<", "<=", ">", ">=", "==", "!="}[g.r.Intn(6)], g.intExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s %s %s)", g.floatExpr(depth-1),
			[]string{"<", "<=", ">", ">="}[g.r.Intn(4)], g.floatExpr(depth-1))
	case 2:
		return fmt.Sprintf("(%s && %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
	case 3:
		return fmt.Sprintf("(%s || %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
	default:
		return fmt.Sprintf("(!%s)", g.boolExpr(depth-1))
	}
}

func (g *progGen) stmts(budget int) {
	for s := 0; s < budget; s++ {
		switch g.r.Intn(10) {
		case 0, 1:
			v := g.freshVar()
			g.w("int %s = %s;", v, g.intExpr(2))
			g.ints = append(g.ints, v)
		case 2, 3:
			v := g.freshVar()
			g.w("float %s = %s;", v, g.floatExpr(2))
			g.floats = append(g.floats, v)
		case 4:
			if len(g.ints) > g.nROInt {
				v := g.ints[g.nROInt+g.r.Intn(len(g.ints)-g.nROInt)]
				g.w("%s %s %s;", v, []string{"=", "+=", "-=", "*="}[g.r.Intn(4)], g.intExpr(2))
			}
		case 5:
			if len(g.floats) > 0 {
				v := g.floats[g.r.Intn(len(g.floats))]
				g.w("%s %s %s;", v, []string{"=", "+=", "-=", "*="}[g.r.Intn(4)], g.floatExpr(2))
			}
		case 6:
			if g.depth < 2 {
				g.depth++
				g.w("if (%s) {", g.boolExpr(2))
				g.indent++
				nI, nF := len(g.ints), len(g.floats)
				g.stmts(budget / 2)
				g.ints, g.floats = g.ints[:nI], g.floats[:nF]
				g.indent--
				if g.r.Intn(2) == 0 {
					g.w("} else {")
					g.indent++
					g.stmts(budget / 2)
					g.ints, g.floats = g.ints[:nI], g.floats[:nF]
					g.indent--
				}
				g.w("}")
				g.depth--
			}
		case 7:
			if g.depth < 2 {
				g.depth++
				g.nLoops++
				l := fmt.Sprintf("l%d", g.nLoops)
				g.w("for (int %s = 0; %s < %d; %s++) {", l, l, g.r.Intn(6)+1, l)
				g.indent++
				// Loop counters are readable but never assignment targets
				// (mutating one could diverge the two engines' step
				// budgets): insert into the read-only prefix.
				g.ints = append(g.ints, "")
				copy(g.ints[g.nROInt+1:], g.ints[g.nROInt:])
				g.ints[g.nROInt] = l
				g.nROInt++
				nI, nF := len(g.ints), len(g.floats)
				g.stmts(budget / 2)
				g.ints, g.floats = g.ints[:nI], g.floats[:nF]
				g.nROInt--
				g.ints = append(g.ints[:g.nROInt], g.ints[g.nROInt+1:]...)
				g.indent--
				g.w("}")
				g.depth--
			}
		case 8:
			// Buffer update at a safe index.
			g.w("fbuf[abs(%s) %% n] = %s;", g.intExpr(1), g.floatExpr(2))
		case 9:
			g.w("ibuf[abs(%s) %% n] = %s;", g.intExpr(1), g.intExpr(2))
		}
	}
}

func (g *progGen) generate() string {
	g.b.Reset()
	g.w("__kernel void diff(__global float* fbuf, __global int* ibuf, int n, int p1, float fp) {")
	g.indent++
	g.w("int i = get_global_id(0);")
	g.w("if (i < n) {")
	g.indent++
	g.ints = []string{"i", "n", "p1"}
	g.nROInt = 2 // i and n are read-only (index and divisor safety)
	g.floats = []string{"fp"}
	g.stmts(8)
	g.w("fbuf[i] = %s;", g.floatExpr(3))
	g.w("ibuf[i] = %s;", g.intExpr(3))
	g.indent--
	g.w("}")
	g.indent--
	g.w("}")
	return g.b.String()
}
