// Package ocl is a vendor-runtime-shaped host API over one simulated device:
// contexts, buffers, programs, kernels and in-order command queues, mirroring
// the OpenCL subset FluidiCL builds on (clCreateBuffer,
// clEnqueueWriteBuffer/ReadBuffer, clEnqueueNDRangeKernel, clFinish).
//
// FluidiCL (package core) sits on top of two ocl.Context values — one for
// the CPU OpenCL runtime, one for the GPU runtime — exactly as the paper's
// Figure 4 shows it sitting on top of two vendor runtimes.
package ocl

import (
	"fmt"
	"sync"

	"fluidicl/internal/clc"
	"fluidicl/internal/device"
	"fluidicl/internal/sim"
	"fluidicl/internal/vm"
)

// Context owns one device's resources (a vendor runtime instance).
type Context struct {
	Env *sim.Env
	Dev *device.Device
}

// NewContext creates a context for dev.
func NewContext(env *sim.Env, dev *device.Device) *Context {
	return &Context{Env: env, Dev: dev}
}

// Buffer is a device-resident memory object.
type Buffer struct {
	Ctx  *Context
	Size int
	data []byte
}

// CreateBuffer allocates a device buffer of size bytes.
func (c *Context) CreateBuffer(size int) *Buffer {
	return &Buffer{Ctx: c, Size: size, data: make([]byte, size)}
}

// Bytes exposes the device-resident backing store. Host code must not touch
// it directly; it exists so kernels and transfers can bind to it.
func (b *Buffer) Bytes() []byte { return b.data }

// Program is a compiled translation unit for this context's device.
type Program struct {
	Ctx     *Context
	Source  string
	Prog    *clc.Program
	Info    *clc.ProgramInfo
	kernels map[string]*vm.Kernel
}

// buildEntry is one cached compilation: the immutable artifacts shared by
// every Program built from the same source.
type buildEntry struct {
	prog    *clc.Program
	info    *clc.ProgramInfo
	kernels map[string]*vm.Kernel
}

// buildCache memoizes compilation by exact source text. Compiled programs,
// program info and vm kernels are immutable after construction (a vm.Kernel's
// only mutable field is its internal scratch pool, which is concurrency-safe),
// so one compilation can back any number of contexts, simulations and
// goroutines. Simulated build cost is unaffected — compilation happens on the
// host, outside virtual time.
var buildCache struct {
	sync.Mutex
	m map[string]*buildEntry
}

// BuildProgram parses, checks and compiles MiniCL source for this device
// (clBuildProgram). Transformation passes, if any, must have been applied to
// the source already — this mirrors vendor runtimes compiling whatever
// source they are handed. Identical source compiles once per process; repeat
// builds are served from a cache.
func (c *Context) BuildProgram(src string) (*Program, error) {
	buildCache.Lock()
	defer buildCache.Unlock()
	if buildCache.m == nil {
		buildCache.m = map[string]*buildEntry{}
	}
	e, ok := buildCache.m[src]
	if !ok {
		prog, err := clc.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("ocl: build failed: %w", err)
		}
		info, err := clc.Check(prog)
		if err != nil {
			return nil, fmt.Errorf("ocl: build failed: %w", err)
		}
		e = &buildEntry{prog: prog, info: info, kernels: map[string]*vm.Kernel{}}
		for name, ki := range info.Kernels {
			k, err := vm.Compile(ki)
			if err != nil {
				return nil, fmt.Errorf("ocl: compiling kernel %q: %w", name, err)
			}
			e.kernels[name] = k
		}
		buildCache.m[src] = e // failed builds are never cached
	}
	return &Program{Ctx: c, Source: src, Prog: e.prog, Info: e.info, kernels: e.kernels}, nil
}

// Kernel is a kernel object from a built program (clCreateKernel).
type Kernel struct {
	Name string
	VM   *vm.Kernel
	Info *clc.KernelInfo
}

// CreateKernel looks up a kernel by name.
func (p *Program) CreateKernel(name string) (*Kernel, error) {
	k, ok := p.kernels[name]
	if !ok {
		return nil, fmt.Errorf("ocl: kernel %q not found", name)
	}
	return &Kernel{Name: name, VM: k, Info: p.Info.Kernels[name]}, nil
}

// MustKernel is CreateKernel for known-good names.
func (p *Program) MustKernel(name string) *Kernel {
	k, err := p.CreateKernel(name)
	if err != nil {
		panic(err)
	}
	return k
}

// ArgKind classifies kernel arguments at the API level.
type ArgKind int

// Argument kinds.
const (
	ArgBuf ArgKind = iota
	ArgInt
	ArgFloat
)

// Arg is a host-level kernel argument; buffer arguments name Buffer objects
// and are bound to device bytes at enqueue time (clSetKernelArg).
type Arg struct {
	Kind ArgKind
	Buf  *Buffer
	I    int64
	F    float64
}

// BufArg makes a buffer argument.
func BufArg(b *Buffer) Arg { return Arg{Kind: ArgBuf, Buf: b} }

// IntArg makes an int argument.
func IntArg(v int64) Arg { return Arg{Kind: ArgInt, I: v} }

// FloatArg makes a float argument.
func FloatArg(v float64) Arg { return Arg{Kind: ArgFloat, F: v} }

// bind lowers API args to VM args against this device's memory.
func bind(args []Arg) []vm.Arg {
	out := make([]vm.Arg, len(args))
	for i, a := range args {
		switch a.Kind {
		case ArgBuf:
			out[i] = vm.BufArg(a.Buf.data)
		case ArgInt:
			out[i] = vm.IntArg(a.I)
		default:
			out[i] = vm.FloatArg(a.F)
		}
	}
	return out
}

// CommandQueue is an in-order command queue (clCreateCommandQueue).
type CommandQueue struct {
	Ctx *Context
	q   *device.Queue
}

// CreateQueue creates a named in-order command queue.
func (c *Context) CreateQueue(name string) *CommandQueue {
	return &CommandQueue{Ctx: c, q: c.Dev.NewQueue(name)}
}

// EnqueueWriteBuffer copies host bytes into the device buffer
// (clEnqueueWriteBuffer). src is read at transfer-completion time; callers
// that reuse src must snapshot it first (FluidiCL does — paper §5.5).
func (q *CommandQueue) EnqueueWriteBuffer(b *Buffer, src []byte) *sim.Event {
	return q.EnqueueWriteBufferTagged(b, src, "write")
}

// EnqueueWriteBufferTagged is EnqueueWriteBuffer with a trace label naming
// the transfer's role (FluidiCL tags its status-word ships "status").
func (q *CommandQueue) EnqueueWriteBufferTagged(b *Buffer, src []byte, label string) *sim.Event {
	if len(src) > b.Size {
		panic(fmt.Sprintf("ocl: write of %d bytes into %d-byte buffer", len(src), b.Size))
	}
	t := &device.Transfer{
		Bytes:    len(src),
		Apply:    func() { copy(b.data, src) },
		Label:    label,
		ToDevice: true,
	}
	q.q.Enqueue(t)
	return t.Done
}

// EnqueueWriteBufferAt copies host bytes into the device buffer starting at
// byte offset off (clEnqueueWriteBuffer with a non-zero offset). FluidiCL
// uses it to ship only the byte range a CPU subkernel provably wrote.
func (q *CommandQueue) EnqueueWriteBufferAt(b *Buffer, off int, src []byte) *sim.Event {
	return q.EnqueueWriteBufferAtTagged(b, off, src, "write")
}

// EnqueueWriteBufferAtTagged is EnqueueWriteBufferAt with a trace label
// naming the transfer's role (FluidiCL tags its CPU-to-GPU result ships
// "ship").
func (q *CommandQueue) EnqueueWriteBufferAtTagged(b *Buffer, off int, src []byte, label string) *sim.Event {
	if off < 0 || off+len(src) > b.Size {
		panic(fmt.Sprintf("ocl: write of %d bytes at offset %d into %d-byte buffer", len(src), off, b.Size))
	}
	t := &device.Transfer{
		Bytes:    len(src),
		Apply:    func() { copy(b.data[off:], src) },
		Label:    label,
		ToDevice: true,
	}
	q.q.Enqueue(t)
	return t.Done
}

// Span is a half-open [Off, End) byte range of a buffer, used by scatter
// writes (EnqueueWriteBufferSpansTagged).
type Span struct {
	Off, End int
}

// EnqueueWriteBufferSpansTagged copies the given byte ranges of src — a host
// image indexed in buffer coordinates, so span [Off, End) of the buffer is
// filled from src[Off:End] — into the device buffer as ONE link transfer
// whose payload is the sum of the span lengths. This models a driver-batched
// scatter update: the whole delta pays a single link latency instead of one
// per range. The N-way delta-refresh planner uses it to bring a stale device
// copy current. Spans must be sorted, disjoint and in-range; both spans and
// src are read at transfer-completion time and must stay untouched until the
// returned event fires.
func (q *CommandQueue) EnqueueWriteBufferSpansTagged(b *Buffer, spans []Span, src []byte, label string) *sim.Event {
	total := 0
	prev := 0
	for _, s := range spans {
		if s.Off < prev || s.End > b.Size || s.End > len(src) || s.Off > s.End {
			panic(fmt.Sprintf("ocl: scatter write span [%d,%d) invalid for %d-byte buffer (prev end %d, src %d)",
				s.Off, s.End, b.Size, prev, len(src)))
		}
		total += s.End - s.Off
		prev = s.End
	}
	t := &device.Transfer{
		Bytes: total,
		Apply: func() {
			for _, s := range spans {
				copy(b.data[s.Off:s.End], src[s.Off:s.End])
			}
		},
		Label:    label,
		ToDevice: true,
	}
	q.q.Enqueue(t)
	return t.Done
}

// EnqueueReadBuffer copies the device buffer into host bytes
// (clEnqueueReadBuffer). dst is written at transfer-completion time.
func (q *CommandQueue) EnqueueReadBuffer(b *Buffer, dst []byte) *sim.Event {
	if len(dst) > b.Size {
		panic(fmt.Sprintf("ocl: read of %d bytes from %d-byte buffer", len(dst), b.Size))
	}
	t := &device.Transfer{
		Bytes: len(dst),
		Apply: func() { copy(dst, b.data[:len(dst)]) },
		Label: "read",
	}
	q.q.Enqueue(t)
	return t.Done
}

// EnqueueReadBufferAt copies the device buffer's byte range [off, off+len(dst))
// into host bytes (clEnqueueReadBuffer with a non-zero offset).
func (q *CommandQueue) EnqueueReadBufferAt(b *Buffer, off int, dst []byte) *sim.Event {
	return q.EnqueueReadBufferAtTagged(b, off, dst, "read")
}

// EnqueueReadBufferAtTagged is EnqueueReadBufferAt with a trace label naming
// the transfer's role (the N-way runtime tags its chunk-result reads "ship").
func (q *CommandQueue) EnqueueReadBufferAtTagged(b *Buffer, off int, dst []byte, label string) *sim.Event {
	if off < 0 || off+len(dst) > b.Size {
		panic(fmt.Sprintf("ocl: read of %d bytes at offset %d from %d-byte buffer", len(dst), off, b.Size))
	}
	t := &device.Transfer{
		Bytes: len(dst),
		Apply: func() { copy(dst, b.data[off:off+len(dst)]) },
		Label: label,
	}
	q.q.Enqueue(t)
	return t.Done
}

// EnqueueCopyBuffer copies src to dst within the device
// (clEnqueueCopyBuffer); it does not cross the host link.
func (q *CommandQueue) EnqueueCopyBuffer(src, dst *Buffer) *sim.Event {
	if src.Size > dst.Size {
		panic("ocl: copy source larger than destination")
	}
	n := src.Size
	c := &device.Call{
		Duration: q.Ctx.Dev.Cfg.CopyTime(n),
		Fn:       func() { copy(dst.data[:n], src.data[:n]) },
		Label:    "copy",
	}
	q.q.Enqueue(c)
	return c.Done
}

// LaunchOpts carries FluidiCL-level execution options through to the device.
type LaunchOpts struct {
	Abort    device.AbortQuery
	MidAbort bool
	Split    bool
	// Backend selects the VM execution engine (vm.BackendAuto uses the
	// process default).
	Backend vm.Backend
}

// EnqueueNDRangeKernel enqueues a kernel execution
// (clEnqueueNDRangeKernel). The returned result is populated when the
// event fires.
func (q *CommandQueue) EnqueueNDRangeKernel(k *Kernel, nd vm.NDRange, args []Arg, opts LaunchOpts) (*sim.Event, *device.LaunchResult) {
	l := &device.Launch{
		Kernel:   k.VM,
		ND:       nd,
		Args:     bind(args),
		Abort:    opts.Abort,
		MidAbort: opts.MidAbort,
		Split:    opts.Split,
		Backend:  opts.Backend,
		Label:    k.Name,
	}
	q.q.Enqueue(l)
	return l.Done, l.Result
}

// EnqueueCall runs a host callback at this queue position (zero duration);
// the returned event fires after the callback runs.
func (q *CommandQueue) EnqueueCall(fn func()) *sim.Event {
	c := &device.Call{Fn: fn}
	q.q.Enqueue(c)
	return c.Done
}

// EnqueueMarker returns an event that fires when all previously enqueued
// commands have completed.
func (q *CommandQueue) EnqueueMarker() *sim.Event {
	c := &device.Call{}
	q.q.Enqueue(c)
	return c.Done
}

// Finish blocks the calling process until the queue drains (clFinish).
func (q *CommandQueue) Finish(p *sim.Proc) {
	p.Wait(q.EnqueueMarker())
}
