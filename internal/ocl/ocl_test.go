package ocl

import (
	"encoding/binary"
	"math"
	"testing"

	"fluidicl/internal/device"
	"fluidicl/internal/sim"
	"fluidicl/internal/vm"
)

func f32buf(vals ...float32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
	}
	return b
}

func f32at(b []byte, i int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
}

const vaddSrc = `
__kernel void vadd(__global float* a, __global float* b, __global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) { c[i] = a[i] + b[i]; }
}
`

func TestFullHostProgramFlow(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.TeslaC2070()))
	prog, err := ctx.BuildProgram(vaddSrc)
	if err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("vadd")
	if err != nil {
		t.Fatal(err)
	}
	n := 64
	a := make([]float32, n)
	b := make([]float32, n)
	for i := range a {
		a[i], b[i] = float32(i), 1
	}
	bufA := ctx.CreateBuffer(4 * n)
	bufB := ctx.CreateBuffer(4 * n)
	bufC := ctx.CreateBuffer(4 * n)
	out := make([]byte, 4*n)
	q := ctx.CreateQueue("app")
	env.Go("host", func(p *sim.Proc) {
		q.EnqueueWriteBuffer(bufA, f32buf(a...))
		q.EnqueueWriteBuffer(bufB, f32buf(b...))
		q.EnqueueNDRangeKernel(k, vm.NewNDRange1D(n, 16),
			[]Arg{BufArg(bufA), BufArg(bufB), BufArg(bufC), IntArg(int64(n))}, LaunchOpts{})
		p.Wait(q.EnqueueReadBuffer(bufC, out))
	})
	env.Run()
	for i := 0; i < n; i++ {
		if got := f32at(out, i); got != float32(i)+1 {
			t.Fatalf("out[%d] = %v, want %v", i, got, float32(i)+1)
		}
	}
	if env.Now() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestBuildError(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.XeonW3550()))
	if _, err := ctx.BuildProgram("__kernel void f() { undefined_var = 1; }"); err == nil {
		t.Fatal("expected build error")
	}
	if _, err := ctx.BuildProgram("not a kernel at all"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestCreateKernelUnknownName(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.XeonW3550()))
	prog, err := ctx.BuildProgram(vaddSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.CreateKernel("nope"); err == nil {
		t.Fatal("expected unknown-kernel error")
	}
}

func TestCopyBufferStaysOnDevice(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.TeslaC2070()))
	q := ctx.CreateQueue("app")
	src := ctx.CreateBuffer(16)
	dst := ctx.CreateBuffer(16)
	var copyDone sim.Time
	env.Go("host", func(p *sim.Proc) {
		p.Wait(q.EnqueueWriteBuffer(src, []byte{9, 9, 9, 9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}))
		after := p.Now()
		p.Wait(q.EnqueueCopyBuffer(src, dst))
		copyDone = p.Now() - after
	})
	env.Run()
	if dst.Bytes()[0] != 9 {
		t.Fatal("copy did not happen")
	}
	// Device-internal copy must be much cheaper than a PCIe round trip.
	if copyDone >= ctx.Dev.Cfg.Link.TransferTime(16) {
		t.Fatalf("internal copy took %v, not cheaper than link transfer %v",
			copyDone, ctx.Dev.Cfg.Link.TransferTime(16))
	}
}

func TestFinishWaitsForAllCommands(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.TeslaC2070()))
	q := ctx.CreateQueue("app")
	buf := ctx.CreateBuffer(1 << 20)
	var finishAt sim.Time
	env.Go("host", func(p *sim.Proc) {
		q.EnqueueWriteBuffer(buf, make([]byte, 1<<20))
		q.EnqueueWriteBuffer(buf, make([]byte, 1<<20))
		q.Finish(p)
		finishAt = p.Now()
	})
	env.Run()
	want := 2 * ctx.Dev.Cfg.Link.TransferTime(1<<20)
	if math.Abs(finishAt-want) > 1e-9 {
		t.Fatalf("Finish at %v, want %v", finishAt, want)
	}
}

func TestWriteSizeValidation(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.TeslaC2070()))
	q := ctx.CreateQueue("app")
	buf := ctx.CreateBuffer(4)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized write not rejected")
		}
	}()
	q.EnqueueWriteBuffer(buf, make([]byte, 8))
}

func TestOutInOutAnalysisExposed(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.XeonW3550()))
	prog, err := ctx.BuildProgram(vaddSrc)
	if err != nil {
		t.Fatal(err)
	}
	k := prog.MustKernel("vadd")
	if !k.Info.ParamAccess["c"].Out() {
		t.Fatal("c should be out-only")
	}
	if !k.Info.ParamAccess["a"].In() {
		t.Fatal("a should be in-only")
	}
}

func TestTwoContextsShareNothing(t *testing.T) {
	env := sim.NewEnv()
	gpu := NewContext(env, device.New(env, device.TeslaC2070()))
	cpu := NewContext(env, device.New(env, device.XeonW3550()))
	bg := gpu.CreateBuffer(4)
	bc := cpu.CreateBuffer(4)
	qg := gpu.CreateQueue("g")
	env.Go("host", func(p *sim.Proc) {
		p.Wait(qg.EnqueueWriteBuffer(bg, []byte{1, 2, 3, 4}))
	})
	env.Run()
	if bc.Bytes()[0] != 0 {
		t.Fatal("CPU buffer affected by GPU write: address spaces not discrete")
	}
	if bg.Bytes()[0] != 1 {
		t.Fatal("GPU write lost")
	}
}

func TestLaunchResultPopulated(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.TeslaC2070()))
	prog, err := ctx.BuildProgram(vaddSrc)
	if err != nil {
		t.Fatal(err)
	}
	k := prog.MustKernel("vadd")
	n := 64
	bufs := []*Buffer{ctx.CreateBuffer(4 * n), ctx.CreateBuffer(4 * n), ctx.CreateBuffer(4 * n)}
	q := ctx.CreateQueue("app")
	var res *device.LaunchResult
	env.Go("host", func(p *sim.Proc) {
		ev, r := q.EnqueueNDRangeKernel(k, vm.NewNDRange1D(n, 16),
			[]Arg{BufArg(bufs[0]), BufArg(bufs[1]), BufArg(bufs[2]), IntArg(int64(n))}, LaunchOpts{})
		p.Wait(ev)
		res = r
	})
	env.Run()
	if res == nil || res.Executed != 4 || !res.Started || res.Err != nil {
		t.Fatalf("result = %+v", res)
	}
	if res.Stats.WorkItems != n {
		t.Fatalf("stats work-items = %d, want %d", res.Stats.WorkItems, n)
	}
}

func TestQueuesOnSameDeviceShareTheLink(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.TeslaC2070()))
	q1 := ctx.CreateQueue("a")
	q2 := ctx.CreateQueue("b")
	n := 1 << 20
	b1, b2 := ctx.CreateBuffer(n), ctx.CreateBuffer(n)
	env.Go("host", func(p *sim.Proc) {
		e1 := q1.EnqueueWriteBuffer(b1, make([]byte, n))
		e2 := q2.EnqueueWriteBuffer(b2, make([]byte, n))
		p.WaitAll(e1, e2)
	})
	env.Run()
	one := ctx.Dev.Cfg.Link.TransferTime(n)
	if env.Now() < 1.9*one {
		t.Fatalf("transfers overlapped on one link: %v < %v", env.Now(), 2*one)
	}
}

func TestEnqueueCallOrdering(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.XeonW3550()))
	q := ctx.CreateQueue("app")
	var order []int
	env.Go("host", func(p *sim.Proc) {
		q.EnqueueWriteBuffer(ctx.CreateBuffer(1024), make([]byte, 1024))
		q.EnqueueCall(func() { order = append(order, 1) })
		q.EnqueueWriteBuffer(ctx.CreateBuffer(1024), make([]byte, 1024))
		ev := q.EnqueueCall(func() { order = append(order, 2) })
		p.Wait(ev)
	})
	env.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestReadSizeValidation(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.TeslaC2070()))
	q := ctx.CreateQueue("app")
	buf := ctx.CreateBuffer(4)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized read not rejected")
		}
	}()
	q.EnqueueReadBuffer(buf, make([]byte, 8))
}

func TestCopySizeValidation(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.TeslaC2070()))
	q := ctx.CreateQueue("app")
	src, dst := ctx.CreateBuffer(8), ctx.CreateBuffer(4)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized copy not rejected")
		}
	}()
	q.EnqueueCopyBuffer(src, dst)
}

func TestPartialRead(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.TeslaC2070()))
	q := ctx.CreateQueue("app")
	buf := ctx.CreateBuffer(16)
	dst := make([]byte, 8)
	env.Go("host", func(p *sim.Proc) {
		p.Wait(q.EnqueueWriteBuffer(buf, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}))
		p.Wait(q.EnqueueReadBuffer(buf, dst))
	})
	env.Run()
	for i := 0; i < 8; i++ {
		if dst[i] != byte(i+1) {
			t.Fatalf("dst[%d] = %d", i, dst[i])
		}
	}
}
