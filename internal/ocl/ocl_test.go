package ocl

import (
	"encoding/binary"
	"math"
	"testing"

	"fluidicl/internal/device"
	"fluidicl/internal/sim"
	"fluidicl/internal/vm"
)

func f32buf(vals ...float32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
	}
	return b
}

func f32at(b []byte, i int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
}

const vaddSrc = `
__kernel void vadd(__global float* a, __global float* b, __global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) { c[i] = a[i] + b[i]; }
}
`

func TestFullHostProgramFlow(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.TeslaC2070()))
	prog, err := ctx.BuildProgram(vaddSrc)
	if err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("vadd")
	if err != nil {
		t.Fatal(err)
	}
	n := 64
	a := make([]float32, n)
	b := make([]float32, n)
	for i := range a {
		a[i], b[i] = float32(i), 1
	}
	bufA := ctx.CreateBuffer(4 * n)
	bufB := ctx.CreateBuffer(4 * n)
	bufC := ctx.CreateBuffer(4 * n)
	out := make([]byte, 4*n)
	q := ctx.CreateQueue("app")
	env.Go("host", func(p *sim.Proc) {
		q.EnqueueWriteBuffer(bufA, f32buf(a...))
		q.EnqueueWriteBuffer(bufB, f32buf(b...))
		q.EnqueueNDRangeKernel(k, vm.NewNDRange1D(n, 16),
			[]Arg{BufArg(bufA), BufArg(bufB), BufArg(bufC), IntArg(int64(n))}, LaunchOpts{})
		p.Wait(q.EnqueueReadBuffer(bufC, out))
	})
	env.Run()
	for i := 0; i < n; i++ {
		if got := f32at(out, i); got != float32(i)+1 {
			t.Fatalf("out[%d] = %v, want %v", i, got, float32(i)+1)
		}
	}
	if env.Now() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestBuildError(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.XeonW3550()))
	if _, err := ctx.BuildProgram("__kernel void f() { undefined_var = 1; }"); err == nil {
		t.Fatal("expected build error")
	}
	if _, err := ctx.BuildProgram("not a kernel at all"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestCreateKernelUnknownName(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.XeonW3550()))
	prog, err := ctx.BuildProgram(vaddSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.CreateKernel("nope"); err == nil {
		t.Fatal("expected unknown-kernel error")
	}
}

func TestCopyBufferStaysOnDevice(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.TeslaC2070()))
	q := ctx.CreateQueue("app")
	src := ctx.CreateBuffer(16)
	dst := ctx.CreateBuffer(16)
	var copyDone sim.Time
	env.Go("host", func(p *sim.Proc) {
		p.Wait(q.EnqueueWriteBuffer(src, []byte{9, 9, 9, 9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}))
		after := p.Now()
		p.Wait(q.EnqueueCopyBuffer(src, dst))
		copyDone = p.Now() - after
	})
	env.Run()
	if dst.Bytes()[0] != 9 {
		t.Fatal("copy did not happen")
	}
	// Device-internal copy must be much cheaper than a PCIe round trip.
	if copyDone >= ctx.Dev.Cfg.Link.TransferTime(16) {
		t.Fatalf("internal copy took %v, not cheaper than link transfer %v",
			copyDone, ctx.Dev.Cfg.Link.TransferTime(16))
	}
}

func TestFinishWaitsForAllCommands(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.TeslaC2070()))
	q := ctx.CreateQueue("app")
	buf := ctx.CreateBuffer(1 << 20)
	var finishAt sim.Time
	env.Go("host", func(p *sim.Proc) {
		q.EnqueueWriteBuffer(buf, make([]byte, 1<<20))
		q.EnqueueWriteBuffer(buf, make([]byte, 1<<20))
		q.Finish(p)
		finishAt = p.Now()
	})
	env.Run()
	want := 2 * ctx.Dev.Cfg.Link.TransferTime(1<<20)
	if math.Abs(finishAt-want) > 1e-9 {
		t.Fatalf("Finish at %v, want %v", finishAt, want)
	}
}

func TestWriteSizeValidation(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.TeslaC2070()))
	q := ctx.CreateQueue("app")
	buf := ctx.CreateBuffer(4)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized write not rejected")
		}
	}()
	q.EnqueueWriteBuffer(buf, make([]byte, 8))
}

func TestOutInOutAnalysisExposed(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.XeonW3550()))
	prog, err := ctx.BuildProgram(vaddSrc)
	if err != nil {
		t.Fatal(err)
	}
	k := prog.MustKernel("vadd")
	if !k.Info.ParamAccess["c"].Out() {
		t.Fatal("c should be out-only")
	}
	if !k.Info.ParamAccess["a"].In() {
		t.Fatal("a should be in-only")
	}
}

func TestTwoContextsShareNothing(t *testing.T) {
	env := sim.NewEnv()
	gpu := NewContext(env, device.New(env, device.TeslaC2070()))
	cpu := NewContext(env, device.New(env, device.XeonW3550()))
	bg := gpu.CreateBuffer(4)
	bc := cpu.CreateBuffer(4)
	qg := gpu.CreateQueue("g")
	env.Go("host", func(p *sim.Proc) {
		p.Wait(qg.EnqueueWriteBuffer(bg, []byte{1, 2, 3, 4}))
	})
	env.Run()
	if bc.Bytes()[0] != 0 {
		t.Fatal("CPU buffer affected by GPU write: address spaces not discrete")
	}
	if bg.Bytes()[0] != 1 {
		t.Fatal("GPU write lost")
	}
}

func TestLaunchResultPopulated(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.TeslaC2070()))
	prog, err := ctx.BuildProgram(vaddSrc)
	if err != nil {
		t.Fatal(err)
	}
	k := prog.MustKernel("vadd")
	n := 64
	bufs := []*Buffer{ctx.CreateBuffer(4 * n), ctx.CreateBuffer(4 * n), ctx.CreateBuffer(4 * n)}
	q := ctx.CreateQueue("app")
	var res *device.LaunchResult
	env.Go("host", func(p *sim.Proc) {
		ev, r := q.EnqueueNDRangeKernel(k, vm.NewNDRange1D(n, 16),
			[]Arg{BufArg(bufs[0]), BufArg(bufs[1]), BufArg(bufs[2]), IntArg(int64(n))}, LaunchOpts{})
		p.Wait(ev)
		res = r
	})
	env.Run()
	if res == nil || res.Executed != 4 || !res.Started || res.Err != nil {
		t.Fatalf("result = %+v", res)
	}
	if res.Stats.WorkItems != n {
		t.Fatalf("stats work-items = %d, want %d", res.Stats.WorkItems, n)
	}
}

func TestQueuesOnSameDeviceShareTheLink(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.TeslaC2070()))
	q1 := ctx.CreateQueue("a")
	q2 := ctx.CreateQueue("b")
	n := 1 << 20
	b1, b2 := ctx.CreateBuffer(n), ctx.CreateBuffer(n)
	env.Go("host", func(p *sim.Proc) {
		e1 := q1.EnqueueWriteBuffer(b1, make([]byte, n))
		e2 := q2.EnqueueWriteBuffer(b2, make([]byte, n))
		p.WaitAll(e1, e2)
	})
	env.Run()
	one := ctx.Dev.Cfg.Link.TransferTime(n)
	if env.Now() < 1.9*one {
		t.Fatalf("transfers overlapped on one link: %v < %v", env.Now(), 2*one)
	}
}

func TestEnqueueCallOrdering(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.XeonW3550()))
	q := ctx.CreateQueue("app")
	var order []int
	env.Go("host", func(p *sim.Proc) {
		q.EnqueueWriteBuffer(ctx.CreateBuffer(1024), make([]byte, 1024))
		q.EnqueueCall(func() { order = append(order, 1) })
		q.EnqueueWriteBuffer(ctx.CreateBuffer(1024), make([]byte, 1024))
		ev := q.EnqueueCall(func() { order = append(order, 2) })
		p.Wait(ev)
	})
	env.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestReadSizeValidation(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.TeslaC2070()))
	q := ctx.CreateQueue("app")
	buf := ctx.CreateBuffer(4)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized read not rejected")
		}
	}()
	q.EnqueueReadBuffer(buf, make([]byte, 8))
}

func TestCopySizeValidation(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.TeslaC2070()))
	q := ctx.CreateQueue("app")
	src, dst := ctx.CreateBuffer(8), ctx.CreateBuffer(4)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized copy not rejected")
		}
	}()
	q.EnqueueCopyBuffer(src, dst)
}

func TestPartialRead(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.TeslaC2070()))
	q := ctx.CreateQueue("app")
	buf := ctx.CreateBuffer(16)
	dst := make([]byte, 8)
	env.Go("host", func(p *sim.Proc) {
		p.Wait(q.EnqueueWriteBuffer(buf, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}))
		p.Wait(q.EnqueueReadBuffer(buf, dst))
	})
	env.Run()
	for i := 0; i < 8; i++ {
		if dst[i] != byte(i+1) {
			t.Fatalf("dst[%d] = %d", i, dst[i])
		}
	}
}

// TestScatterWriteSpans exercises the delta-refresh primitive: a spans write
// must land exactly the listed byte ranges on the device, leave the gaps
// untouched, and bill the link for ONE transfer whose payload is the sum of
// the span lengths (single latency for the whole delta).
func TestScatterWriteSpans(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.TeslaC2070()))
	const size = 64
	buf := ctx.CreateBuffer(size)
	q := ctx.CreateQueue("app")

	base := make([]byte, size)
	for i := range base {
		base[i] = 0xEE
	}
	src := make([]byte, size)
	for i := range src {
		src[i] = byte(i + 1)
	}
	spans := []Span{{Off: 4, End: 12}, {Off: 20, End: 21}, {Off: 40, End: 64}}
	got := make([]byte, size)
	env.Go("host", func(p *sim.Proc) {
		p.Wait(q.EnqueueWriteBuffer(buf, base))
		p.Wait(q.EnqueueWriteBufferSpansTagged(buf, spans, src, "refresh"))
		p.Wait(q.EnqueueReadBuffer(buf, got))
	})
	env.Run()

	want := make([]byte, size)
	copy(want, base)
	covered := func(i int) bool {
		for _, s := range spans {
			if i >= s.Off && i < s.End {
				return true
			}
		}
		return false
	}
	for i := range want {
		if covered(i) {
			want[i] = src[i]
		}
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("byte %d = %#x, want %#x (covered=%v)", i, got[i], want[i], covered(i))
		}
	}
	sum := env.Meter.Summary().ByKind("GPU")
	// size (full write) + 8+1+24 (scatter payload); the refresh-labeled part
	// must also land in the BytesRefresh column.
	if wantH2D := int64(size + 33); sum.BytesH2D != wantH2D {
		t.Fatalf("BytesH2D = %d, want %d (scatter payload must be the span-length sum)", sum.BytesH2D, wantH2D)
	}
	if sum.BytesRefresh != 33 {
		t.Fatalf("BytesRefresh = %d, want 33", sum.BytesRefresh)
	}
}

// TestScatterWriteSpanValidation: malformed spans (out of order, overlapping
// or out of range) must panic immediately at enqueue time.
func TestScatterWriteSpanValidation(t *testing.T) {
	env := sim.NewEnv()
	ctx := NewContext(env, device.New(env, device.TeslaC2070()))
	buf := ctx.CreateBuffer(16)
	q := ctx.CreateQueue("app")
	src := make([]byte, 16)
	for _, bad := range [][]Span{
		{{Off: 8, End: 12}, {Off: 0, End: 4}}, // out of order
		{{Off: 0, End: 8}, {Off: 4, End: 12}}, // overlapping
		{{Off: 0, End: 32}},                   // past buffer end
		{{Off: 6, End: 2}},                    // reversed
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("spans %v: no panic", bad)
				}
			}()
			q.EnqueueWriteBufferSpansTagged(buf, bad, src, "refresh")
		}()
	}
}
